// Package index provides the spatial indexes used by the IMTAO pipeline:
// a static KD-tree for nearest-neighbour queries with predicate filtering
// (the "nearest unassigned task" primitive of the sequential assignment
// algorithm) and a dynamic uniform grid supporting removal.
//
// Both indexes answer queries over a set of identified points: callers
// register (id, point) pairs and queries return ids. Distances are Euclidean.
package index

import (
	"math"
	"sort"

	"imtao/internal/geo"
)

// Item is an identified point stored in an index.
type Item struct {
	ID    int
	Point geo.Point
}

// KDTree is a static 2-d tree over a fixed set of items. Items cannot be
// inserted or removed after construction; queries accept an acceptance
// predicate instead, which is how the assignment loop excludes
// already-assigned tasks without rebuilding.
type KDTree struct {
	nodes []kdNode
	root  int
}

type kdNode struct {
	item        Item
	left, right int // -1 when absent
	axis        uint8
	bounds      geo.Rect // bounding rect of the subtree, for pruning
}

// NewKDTree builds a balanced KD-tree over items in O(n log n).
// The input slice is not retained or modified.
func NewKDTree(items []Item) *KDTree {
	t := &KDTree{root: -1}
	if len(items) == 0 {
		return t
	}
	buf := make([]Item, len(items))
	copy(buf, items)
	t.nodes = make([]kdNode, 0, len(items))
	t.root = t.build(buf, 0)
	return t
}

// Len returns the number of items in the tree.
func (t *KDTree) Len() int { return len(t.nodes) }

func (t *KDTree) build(items []Item, axis uint8) int {
	if len(items) == 0 {
		return -1
	}
	mid := len(items) / 2
	if axis == 0 {
		sort.Slice(items, func(i, j int) bool {
			if items[i].Point.X != items[j].Point.X {
				return items[i].Point.X < items[j].Point.X
			}
			return items[i].ID < items[j].ID
		})
	} else {
		sort.Slice(items, func(i, j int) bool {
			if items[i].Point.Y != items[j].Point.Y {
				return items[i].Point.Y < items[j].Point.Y
			}
			return items[i].ID < items[j].ID
		})
	}
	idx := len(t.nodes)
	t.nodes = append(t.nodes, kdNode{item: items[mid], axis: axis, left: -1, right: -1})
	next := 1 - axis
	left := t.build(items[:mid], next)
	right := t.build(items[mid+1:], next)
	n := &t.nodes[idx]
	n.left, n.right = left, right
	n.bounds = geo.Rect{Min: n.item.Point, Max: n.item.Point}
	if left >= 0 {
		n.bounds = n.bounds.Union(t.nodes[left].bounds)
	}
	if right >= 0 {
		n.bounds = n.bounds.Union(t.nodes[right].bounds)
	}
	return idx
}

// Nearest returns the item closest to q among those accepted by accept
// (accept == nil accepts everything). ok is false when no item is accepted.
// Ties in distance break toward the smaller ID so results are deterministic.
func (t *KDTree) Nearest(q geo.Point, accept func(Item) bool) (Item, bool) {
	best := Item{ID: -1}
	bestD := math.Inf(1)
	var rec func(int)
	rec = func(ni int) {
		if ni < 0 {
			return
		}
		n := &t.nodes[ni]
		if n.bounds.Dist2(q) > bestD {
			return
		}
		d := q.Dist2(n.item.Point)
		if (d < bestD || (d == bestD && n.item.ID < best.ID)) && (accept == nil || accept(n.item)) {
			best, bestD = n.item, d
		}
		var near, far int
		var delta float64
		if n.axis == 0 {
			delta = q.X - n.item.Point.X
		} else {
			delta = q.Y - n.item.Point.Y
		}
		if delta < 0 {
			near, far = n.left, n.right
		} else {
			near, far = n.right, n.left
		}
		rec(near)
		if delta*delta <= bestD {
			rec(far)
		}
	}
	rec(t.root)
	return best, best.ID >= 0
}

// KNearest returns up to k accepted items ordered by increasing distance to q.
func (t *KDTree) KNearest(q geo.Point, k int, accept func(Item) bool) []Item {
	if k <= 0 || t.root < 0 {
		return nil
	}
	h := &maxHeap{}
	var rec func(int)
	rec = func(ni int) {
		if ni < 0 {
			return
		}
		n := &t.nodes[ni]
		if h.Len() == k && n.bounds.Dist2(q) > h.top().d {
			return
		}
		if accept == nil || accept(n.item) {
			h.push(entry{d: q.Dist2(n.item.Point), it: n.item}, k)
		}
		var near, far int
		var delta float64
		if n.axis == 0 {
			delta = q.X - n.item.Point.X
		} else {
			delta = q.Y - n.item.Point.Y
		}
		if delta < 0 {
			near, far = n.left, n.right
		} else {
			near, far = n.right, n.left
		}
		rec(near)
		if h.Len() < k || delta*delta <= h.top().d {
			rec(far)
		}
	}
	rec(t.root)
	out := h.sorted()
	items := make([]Item, len(out))
	for i, e := range out {
		items[i] = e.it
	}
	return items
}

// InRange returns all accepted items within radius r of q, in no particular
// order.
func (t *KDTree) InRange(q geo.Point, r float64, accept func(Item) bool) []Item {
	if r < 0 || t.root < 0 {
		return nil
	}
	r2 := r * r
	var out []Item
	var rec func(int)
	rec = func(ni int) {
		if ni < 0 {
			return
		}
		n := &t.nodes[ni]
		if n.bounds.Dist2(q) > r2 {
			return
		}
		if q.Dist2(n.item.Point) <= r2 && (accept == nil || accept(n.item)) {
			out = append(out, n.item)
		}
		rec(n.left)
		rec(n.right)
	}
	rec(t.root)
	return out
}

// entry pairs an item with its squared distance for heap ordering.
type entry struct {
	d  float64
	it Item
}

// maxHeap is a bounded max-heap on distance used by KNearest.
type maxHeap struct{ es []entry }

func (h *maxHeap) Len() int   { return len(h.es) }
func (h *maxHeap) top() entry { return h.es[0] }
func (h *maxHeap) less(i, j int) bool {
	if h.es[i].d != h.es[j].d {
		return h.es[i].d > h.es[j].d
	}
	return h.es[i].it.ID > h.es[j].it.ID // larger ID = "worse" on ties
}

func (h *maxHeap) push(e entry, k int) {
	if len(h.es) == k {
		// Replace the root if e is better (smaller distance / smaller ID).
		if e.d > h.es[0].d || (e.d == h.es[0].d && e.it.ID > h.es[0].it.ID) {
			return
		}
		h.es[0] = e
		h.siftDown(0)
		return
	}
	h.es = append(h.es, e)
	i := len(h.es) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.es[i], h.es[parent] = h.es[parent], h.es[i]
		i = parent
	}
}

func (h *maxHeap) siftDown(i int) {
	n := len(h.es)
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && h.less(l, m) {
			m = l
		}
		if r < n && h.less(r, m) {
			m = r
		}
		if m == i {
			return
		}
		h.es[i], h.es[m] = h.es[m], h.es[i]
		i = m
	}
}

func (h *maxHeap) sorted() []entry {
	out := make([]entry, len(h.es))
	copy(out, h.es)
	sort.Slice(out, func(i, j int) bool {
		if out[i].d != out[j].d {
			return out[i].d < out[j].d
		}
		return out[i].it.ID < out[j].it.ID
	})
	return out
}
