package index

import (
	"math/rand"
	"testing"

	"imtao/internal/geo"
)

// Edge-case batteries for the spatial indexes: duplicate locations,
// collinear layouts, single items, and adversarial query positions.

func TestKDTreeDuplicateLocations(t *testing.T) {
	items := []Item{
		{0, geo.Pt(5, 5)},
		{1, geo.Pt(5, 5)},
		{2, geo.Pt(5, 5)},
		{3, geo.Pt(9, 9)},
	}
	tr := NewKDTree(items)
	got, ok := tr.Nearest(geo.Pt(5, 5), nil)
	if !ok || got.ID != 0 {
		t.Fatalf("tie must break to the smallest ID, got %v", got)
	}
	// Filtering the smallest exposes the next duplicate.
	got, _ = tr.Nearest(geo.Pt(5, 5), func(it Item) bool { return it.ID != 0 })
	if got.ID != 1 {
		t.Fatalf("filtered tie = %v", got)
	}
	// KNearest over duplicates keeps deterministic ID order.
	ks := tr.KNearest(geo.Pt(5, 5), 3, nil)
	if len(ks) != 3 || ks[0].ID != 0 || ks[1].ID != 1 || ks[2].ID != 2 {
		t.Fatalf("KNearest over duplicates = %v", ks)
	}
}

func TestKDTreeCollinear(t *testing.T) {
	var items []Item
	for i := 0; i < 50; i++ {
		items = append(items, Item{i, geo.Pt(float64(i), 0)})
	}
	tr := NewKDTree(items)
	for q := 0; q < 50; q++ {
		got, ok := tr.Nearest(geo.Pt(float64(q)+0.2, 10), nil)
		if !ok || got.ID != q {
			t.Fatalf("query %d: got %v", q, got)
		}
	}
}

func TestKDTreeSingleItem(t *testing.T) {
	tr := NewKDTree([]Item{{7, geo.Pt(1, 2)}})
	if tr.Len() != 1 {
		t.Fatal("Len")
	}
	got, ok := tr.Nearest(geo.Pt(100, 100), nil)
	if !ok || got.ID != 7 {
		t.Fatalf("Nearest = %v", got)
	}
	if ks := tr.KNearest(geo.Pt(0, 0), 5, nil); len(ks) != 1 {
		t.Fatalf("KNearest = %v", ks)
	}
}

func TestKDTreeKNearestKExceedsN(t *testing.T) {
	items := []Item{{0, geo.Pt(0, 0)}, {1, geo.Pt(1, 0)}}
	tr := NewKDTree(items)
	ks := tr.KNearest(geo.Pt(0, 0), 10, nil)
	if len(ks) != 2 {
		t.Fatalf("KNearest k>n = %v", ks)
	}
}

func TestGridDuplicateLocations(t *testing.T) {
	g := NewGrid(geo.NewRect(geo.Pt(0, 0), geo.Pt(10, 10)), 4, 2)
	g.Insert(Item{2, geo.Pt(5, 5)})
	g.Insert(Item{1, geo.Pt(5, 5)})
	got, ok := g.Nearest(geo.Pt(5, 5))
	if !ok || got.ID != 1 {
		t.Fatalf("grid tie must break to the smallest ID, got %v", got)
	}
	g.Remove(1)
	got, _ = g.Nearest(geo.Pt(5, 5))
	if got.ID != 2 {
		t.Fatalf("after removal = %v", got)
	}
}

func TestGridSingleCellDegenerate(t *testing.T) {
	// A grid whose bounds have zero area must still work.
	g := NewGrid(geo.Rect{Min: geo.Pt(3, 3), Max: geo.Pt(3, 3)}, 2, 2)
	g.Insert(Item{0, geo.Pt(3, 3)})
	g.Insert(Item{1, geo.Pt(4, 4)})
	got, ok := g.Nearest(geo.Pt(3.4, 3.4))
	if !ok || got.ID != 0 {
		t.Fatalf("degenerate grid Nearest = %v", got)
	}
}

func TestGridStressInsertRemove(t *testing.T) {
	rng := rand.New(rand.NewSource(201))
	bounds := geo.NewRect(geo.Pt(0, 0), geo.Pt(500, 500))
	g := NewGrid(bounds, 100, 4)
	live := map[int]geo.Point{}
	for op := 0; op < 5000; op++ {
		switch rng.Intn(3) {
		case 0, 1: // insert (replace allowed)
			id := rng.Intn(200)
			p := geo.Pt(rng.Float64()*500, rng.Float64()*500)
			g.Insert(Item{id, p})
			live[id] = p
		case 2: // remove
			id := rng.Intn(200)
			want := false
			if _, ok := live[id]; ok {
				want = true
				delete(live, id)
			}
			if got := g.Remove(id); got != want {
				t.Fatalf("op %d: Remove(%d) = %v, want %v", op, id, got, want)
			}
		}
		if g.Len() != len(live) {
			t.Fatalf("op %d: Len %d != %d", op, g.Len(), len(live))
		}
	}
	// Final cross-check of nearest queries against the live map.
	items := make([]Item, 0, len(live))
	for id, p := range live {
		items = append(items, Item{id, p})
	}
	for q := 0; q < 50; q++ {
		p := geo.Pt(rng.Float64()*500, rng.Float64()*500)
		want, wok := LinearNearest(items, p, nil)
		got, gok := g.Nearest(p)
		if wok != gok || (wok && want.ID != got.ID) {
			t.Fatalf("query %v: grid %v/%v linear %v/%v", p, got, gok, want, wok)
		}
	}
}
