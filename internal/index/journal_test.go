package index

import (
	"math/rand"
	"sort"
	"testing"

	"imtao/internal/geo"
)

func sortedItems(g *Grid) []Item {
	items := g.Items()
	sort.Slice(items, func(i, j int) bool { return items[i].ID < items[j].ID })
	return items
}

// TestGridJournalRewind drives random Insert/Remove/replace batches between
// Mark and Rewind and checks the grid is restored to the marked state exactly
// — the copy-on-write contract the phase-2 trial engine relies on.
func TestGridJournalRewind(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(120)
		g := NewGrid(geo.NewRect(geo.Pt(0, 0), geo.Pt(1000, 1000)), n, 4)
		for _, it := range randItems(rng, n, 1000) {
			g.Insert(it)
		}
		before := sortedItems(g)

		g.Mark()
		muts := 1 + rng.Intn(3*n)
		for m := 0; m < muts; m++ {
			id := rng.Intn(n + 20) // hits present, absent, and fresh IDs
			switch rng.Intn(3) {
			case 0:
				g.Insert(Item{ID: id, Point: geo.Pt(rng.Float64()*1000, rng.Float64()*1000)})
			case 1:
				g.Remove(id)
			default: // replace: move an existing ID to a new location
				g.Insert(Item{ID: rng.Intn(n), Point: geo.Pt(rng.Float64()*1000, rng.Float64()*1000)})
			}
		}
		g.Rewind()

		after := sortedItems(g)
		if len(after) != len(before) {
			t.Fatalf("trial %d: %d items after rewind, want %d", trial, len(after), len(before))
		}
		for i := range before {
			if after[i] != before[i] {
				t.Fatalf("trial %d: item %d is %+v after rewind, want %+v",
					trial, i, after[i], before[i])
			}
		}
		if g.Len() != len(before) {
			t.Fatalf("trial %d: Len = %d, want %d", trial, g.Len(), len(before))
		}
		if g.JournalLen() != 0 {
			t.Fatalf("trial %d: journal not drained: %d ops", trial, g.JournalLen())
		}
		// Nearest queries must agree with the restored content.
		q := geo.Pt(rng.Float64()*1000, rng.Float64()*1000)
		want, wok := LinearNearest(before, q, nil)
		got, gok := g.Nearest(q)
		if wok != gok || got.ID != want.ID {
			t.Fatalf("trial %d: Nearest after rewind = %+v/%v, want %+v/%v",
				trial, got, gok, want, wok)
		}
	}
}

// TestGridRewindWithoutMark asserts Rewind is a no-op when nothing was marked.
func TestGridRewindWithoutMark(t *testing.T) {
	g := NewGrid(geo.NewRect(geo.Pt(0, 0), geo.Pt(10, 10)), 4, 4)
	g.Insert(Item{ID: 1, Point: geo.Pt(1, 1)})
	g.Rewind()
	if g.Len() != 1 || !g.Contains(1) {
		t.Fatal("Rewind without Mark must leave the grid untouched")
	}
}

// TestGridJournalDisabledByDefault asserts mutations outside a Mark/Rewind
// window cost no journal entries.
func TestGridJournalDisabledByDefault(t *testing.T) {
	g := NewGrid(geo.NewRect(geo.Pt(0, 0), geo.Pt(10, 10)), 4, 4)
	g.Insert(Item{ID: 1, Point: geo.Pt(1, 1)})
	g.Remove(1)
	if g.JournalLen() != 0 {
		t.Fatalf("journal recorded %d ops without a Mark", g.JournalLen())
	}
}
