package index

import (
	"math/rand"
	"sort"
	"testing"

	"imtao/internal/geo"
)

func randItems(rng *rand.Rand, n int, scale float64) []Item {
	items := make([]Item, n)
	for i := range items {
		items[i] = Item{ID: i, Point: geo.Pt(rng.Float64()*scale, rng.Float64()*scale)}
	}
	return items
}

func TestKDTreeEmpty(t *testing.T) {
	tr := NewKDTree(nil)
	if tr.Len() != 0 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if _, ok := tr.Nearest(geo.Pt(0, 0), nil); ok {
		t.Error("Nearest on empty tree must report !ok")
	}
	if got := tr.KNearest(geo.Pt(0, 0), 3, nil); got != nil {
		t.Errorf("KNearest on empty tree = %v", got)
	}
	if got := tr.InRange(geo.Pt(0, 0), 10, nil); got != nil {
		t.Errorf("InRange on empty tree = %v", got)
	}
}

func TestKDTreeNearestSimple(t *testing.T) {
	items := []Item{
		{0, geo.Pt(0, 0)},
		{1, geo.Pt(10, 0)},
		{2, geo.Pt(5, 5)},
	}
	tr := NewKDTree(items)
	got, ok := tr.Nearest(geo.Pt(9, 1), nil)
	if !ok || got.ID != 1 {
		t.Fatalf("Nearest = %+v, ok=%v", got, ok)
	}
	// Filter out the winner; next best must surface.
	got, ok = tr.Nearest(geo.Pt(9, 1), func(it Item) bool { return it.ID != 1 })
	if !ok || got.ID != 2 {
		t.Fatalf("filtered Nearest = %+v, ok=%v", got, ok)
	}
	// Reject everything.
	if _, ok := tr.Nearest(geo.Pt(9, 1), func(Item) bool { return false }); ok {
		t.Error("all-rejecting filter must yield !ok")
	}
}

func TestKDTreeNearestMatchesLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 30; trial++ {
		items := randItems(rng, 1+rng.Intn(300), 1000)
		tr := NewKDTree(items)
		for q := 0; q < 20; q++ {
			p := geo.Pt(rng.Float64()*1200-100, rng.Float64()*1200-100)
			// Random filter: exclude ids divisible by k.
			k := 2 + rng.Intn(5)
			accept := func(it Item) bool { return it.ID%k != 0 }
			want, wok := LinearNearest(items, p, accept)
			got, gok := tr.Nearest(p, accept)
			if wok != gok || (wok && want.ID != got.ID) {
				t.Fatalf("trial %d: kd=%v/%v linear=%v/%v query=%v", trial, got, gok, want, wok, p)
			}
		}
	}
}

func TestKDTreeKNearestMatchesLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		items := randItems(rng, 1+rng.Intn(200), 500)
		tr := NewKDTree(items)
		p := geo.Pt(rng.Float64()*500, rng.Float64()*500)
		k := 1 + rng.Intn(12)
		got := tr.KNearest(p, k, nil)
		// Reference: sort by distance then ID.
		ref := make([]Item, len(items))
		copy(ref, items)
		sort.Slice(ref, func(i, j int) bool {
			di, dj := p.Dist2(ref[i].Point), p.Dist2(ref[j].Point)
			if di != dj {
				return di < dj
			}
			return ref[i].ID < ref[j].ID
		})
		if k > len(ref) {
			k = len(ref)
		}
		if len(got) != k {
			t.Fatalf("trial %d: got %d items, want %d", trial, len(got), k)
		}
		for i := range got {
			if got[i].ID != ref[i].ID {
				t.Fatalf("trial %d: rank %d got %v want %v", trial, i, got[i], ref[i])
			}
		}
	}
}

func TestKDTreeKNearestFiltered(t *testing.T) {
	items := []Item{
		{0, geo.Pt(1, 0)}, {1, geo.Pt(2, 0)}, {2, geo.Pt(3, 0)}, {3, geo.Pt(4, 0)},
	}
	tr := NewKDTree(items)
	got := tr.KNearest(geo.Pt(0, 0), 2, func(it Item) bool { return it.ID%2 == 1 })
	if len(got) != 2 || got[0].ID != 1 || got[1].ID != 3 {
		t.Fatalf("filtered KNearest = %v", got)
	}
	if got := tr.KNearest(geo.Pt(0, 0), 0, nil); got != nil {
		t.Errorf("k=0 must return nil, got %v", got)
	}
}

func TestKDTreeInRange(t *testing.T) {
	items := []Item{
		{0, geo.Pt(0, 0)}, {1, geo.Pt(3, 0)}, {2, geo.Pt(0, 4)}, {3, geo.Pt(10, 10)},
	}
	tr := NewKDTree(items)
	got := tr.InRange(geo.Pt(0, 0), 4, nil)
	ids := idSet(got)
	if len(ids) != 3 || !ids[0] || !ids[1] || !ids[2] {
		t.Fatalf("InRange = %v", got)
	}
	if got := tr.InRange(geo.Pt(0, 0), -1, nil); got != nil {
		t.Errorf("negative radius = %v", got)
	}
}

func idSet(items []Item) map[int]bool {
	m := make(map[int]bool, len(items))
	for _, it := range items {
		m[it.ID] = true
	}
	return m
}

func TestGridInsertRemove(t *testing.T) {
	g := NewGrid(geo.NewRect(geo.Pt(0, 0), geo.Pt(100, 100)), 10, 4)
	g.Insert(Item{1, geo.Pt(10, 10)})
	g.Insert(Item{2, geo.Pt(90, 90)})
	if g.Len() != 2 || !g.Contains(1) || !g.Contains(2) {
		t.Fatalf("after insert: len=%d", g.Len())
	}
	if !g.Remove(1) {
		t.Fatal("Remove(1) should succeed")
	}
	if g.Remove(1) {
		t.Fatal("double Remove(1) should fail")
	}
	if g.Len() != 1 || g.Contains(1) {
		t.Fatalf("after remove: len=%d", g.Len())
	}
	// Re-insert with a new location replaces.
	g.Insert(Item{2, geo.Pt(5, 5)})
	if g.Len() != 1 {
		t.Fatalf("replace should not grow: len=%d", g.Len())
	}
	got, ok := g.Nearest(geo.Pt(0, 0))
	if !ok || got.ID != 2 || !got.Point.Eq(geo.Pt(5, 5)) {
		t.Fatalf("Nearest after replace = %+v", got)
	}
}

func TestGridNearestEmpty(t *testing.T) {
	g := NewGrid(geo.NewRect(geo.Pt(0, 0), geo.Pt(1, 1)), 1, 1)
	if _, ok := g.Nearest(geo.Pt(0, 0)); ok {
		t.Error("empty grid Nearest must report !ok")
	}
}

func TestGridNearestMatchesLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	bounds := geo.NewRect(geo.Pt(0, 0), geo.Pt(1000, 1000))
	for trial := 0; trial < 20; trial++ {
		items := randItems(rng, 1+rng.Intn(400), 1000)
		g := NewGrid(bounds, len(items), 3)
		for _, it := range items {
			g.Insert(it)
		}
		// Remove a random third.
		live := make([]Item, 0, len(items))
		for _, it := range items {
			if rng.Intn(3) == 0 {
				g.Remove(it.ID)
			} else {
				live = append(live, it)
			}
		}
		for q := 0; q < 20; q++ {
			p := geo.Pt(rng.Float64()*1400-200, rng.Float64()*1400-200)
			want, wok := LinearNearest(live, p, nil)
			got, gok := g.Nearest(p)
			if wok != gok || (wok && want.ID != got.ID) {
				t.Fatalf("trial %d: grid=%v/%v linear=%v/%v q=%v", trial, got, gok, want, wok, p)
			}
		}
	}
}

func TestGridInRange(t *testing.T) {
	g := NewGrid(geo.NewRect(geo.Pt(0, 0), geo.Pt(100, 100)), 100, 4)
	g.Insert(Item{0, geo.Pt(50, 50)})
	g.Insert(Item{1, geo.Pt(53, 54)})
	g.Insert(Item{2, geo.Pt(90, 90)})
	got := g.InRange(geo.Pt(50, 50), 6)
	ids := idSet(got)
	if len(ids) != 2 || !ids[0] || !ids[1] {
		t.Fatalf("InRange = %v", got)
	}
	if got := g.InRange(geo.Pt(50, 50), -1); got != nil {
		t.Errorf("negative radius = %v", got)
	}
}

func TestGridItemsSnapshot(t *testing.T) {
	g := NewGrid(geo.NewRect(geo.Pt(0, 0), geo.Pt(10, 10)), 4, 2)
	g.Insert(Item{7, geo.Pt(1, 1)})
	g.Insert(Item{9, geo.Pt(2, 2)})
	items := g.Items()
	if len(items) != 2 {
		t.Fatalf("Items = %v", items)
	}
	ids := idSet(items)
	if !ids[7] || !ids[9] {
		t.Fatalf("Items = %v", items)
	}
}

func TestGridOutOfBoundsPoints(t *testing.T) {
	// Points outside the declared bounds must still be stored and found.
	g := NewGrid(geo.NewRect(geo.Pt(0, 0), geo.Pt(10, 10)), 4, 2)
	g.Insert(Item{1, geo.Pt(-50, -50)})
	g.Insert(Item{2, geo.Pt(100, 100)})
	got, ok := g.Nearest(geo.Pt(-40, -40))
	if !ok || got.ID != 1 {
		t.Fatalf("Nearest = %+v, ok=%v", got, ok)
	}
	got, ok = g.Nearest(geo.Pt(99, 99))
	if !ok || got.ID != 2 {
		t.Fatalf("Nearest = %+v, ok=%v", got, ok)
	}
}

func BenchmarkKDTreeNearest(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	items := randItems(rng, 10000, 2000)
	tr := NewKDTree(items)
	qs := make([]geo.Point, 256)
	for i := range qs {
		qs[i] = geo.Pt(rng.Float64()*2000, rng.Float64()*2000)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Nearest(qs[i%len(qs)], nil)
	}
}

func BenchmarkGridNearest(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	items := randItems(rng, 10000, 2000)
	g := NewGrid(geo.NewRect(geo.Pt(0, 0), geo.Pt(2000, 2000)), len(items), 4)
	for _, it := range items {
		g.Insert(it)
	}
	qs := make([]geo.Point, 256)
	for i := range qs {
		qs[i] = geo.Pt(rng.Float64()*2000, rng.Float64()*2000)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Nearest(qs[i%len(qs)])
	}
}

func BenchmarkLinearNearest(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	items := randItems(rng, 10000, 2000)
	qs := make([]geo.Point, 256)
	for i := range qs {
		qs[i] = geo.Pt(rng.Float64()*2000, rng.Float64()*2000)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		LinearNearest(items, qs[i%len(qs)], nil)
	}
}
