package index

import (
	"math"

	"imtao/internal/geo"
)

// Grid is a dynamic uniform-grid index supporting insertion and removal.
// The sequential assignment loop removes each task the moment it is assigned,
// so the dynamic structure is a natural fit; the KD-tree covers the static
// filtered-query style instead. Both are benchmarked against each other and
// against a linear scan in the ablation benches.
//
// Item IDs must be non-negative: presence is tracked in dense epoch-stamped
// slot arrays indexed by ID, which turns the former map lookups in the
// phase-2 trial loop into two array reads and makes Reset O(1).
type Grid struct {
	bounds geo.Rect
	cell   float64
	nx, ny int
	cells  [][]Item
	count  int

	// slotPt/slotEpoch replace a byID map: id is present iff
	// slotEpoch[id] == epoch, and slotPt[id] then holds its point.
	// Reset bumps epoch instead of clearing, so a pooled Grid restarts
	// without touching the (potentially large) slot arrays.
	slotPt    []geo.Point
	slotEpoch []uint32
	epoch     uint32

	// journal records every mutation applied between Mark and Rewind so the
	// grid can be restored to the marked state — the copy-on-write snapshot
	// mechanism of the phase-2 trial engine: one shared pool serves many
	// what-if trials, each rewound instead of rebuilt.
	journal    []journalOp
	journaling bool
}

// journalOp is one recorded mutation; insert reports what was DONE, so
// Rewind applies the inverse.
type journalOp struct {
	insert bool
	it     Item
}

// NewGrid creates a grid covering bounds with roughly targetPerCell items per
// cell assuming n items uniformly spread. n and targetPerCell merely size the
// cells; any number of items may be inserted.
func NewGrid(bounds geo.Rect, n, targetPerCell int) *Grid {
	g := &Grid{}
	g.Reset(bounds, n, targetPerCell)
	return g
}

// Reset re-initialises the grid to cover bounds with the given sizing,
// discarding all stored items. It reuses the cell and item backing arrays
// when they are large enough, so a pooled Grid can serve many short-lived
// index builds without re-allocating — the hot pattern of the trial
// re-assignments in phase 2.
func (g *Grid) Reset(bounds geo.Rect, n, targetPerCell int) {
	if targetPerCell <= 0 {
		targetPerCell = 4
	}
	if n <= 0 {
		n = 1
	}
	area := bounds.Area()
	if area <= 0 {
		area = 1
	}
	cell := math.Sqrt(area * float64(targetPerCell) / float64(n))
	if cell <= 0 || math.IsNaN(cell) {
		cell = 1
	}
	nx := int(math.Ceil(bounds.Width()/cell)) + 1
	ny := int(math.Ceil(bounds.Height()/cell)) + 1
	if nx < 1 {
		nx = 1
	}
	if ny < 1 {
		ny = 1
	}
	g.bounds = bounds
	g.cell = cell
	g.nx, g.ny = nx, ny
	if cap(g.cells) >= nx*ny {
		g.cells = g.cells[:nx*ny]
		for i := range g.cells {
			g.cells[i] = g.cells[i][:0]
		}
	} else {
		g.cells = make([][]Item, nx*ny)
	}
	g.epoch++
	if g.epoch == 0 {
		// Epoch wrapped: stale stamps from 2^32 resets ago could alias, so
		// pay for one full clear and restart at 1 (0 stays "never present").
		clear(g.slotEpoch)
		g.epoch = 1
	}
	g.count = 0
	g.journal = g.journal[:0]
	g.journaling = false
}

// ensureSlot grows the slot arrays to cover id.
func (g *Grid) ensureSlot(id int) {
	if id < len(g.slotEpoch) {
		return
	}
	n := len(g.slotEpoch) * 2
	if n <= id {
		n = id + 1
	}
	pt := make([]geo.Point, n)
	copy(pt, g.slotPt)
	ep := make([]uint32, n)
	copy(ep, g.slotEpoch)
	g.slotPt, g.slotEpoch = pt, ep
}

// has reports whether id is currently stored.
func (g *Grid) has(id int) bool {
	return id >= 0 && id < len(g.slotEpoch) && g.slotEpoch[id] == g.epoch
}

// Mark starts (or restarts) journaling: every Insert/Remove from here on is
// recorded so Rewind can undo it. Only one mark is held at a time; a second
// Mark discards the first. Journaling costs one slice append per mutation.
func (g *Grid) Mark() {
	g.journal = g.journal[:0]
	g.journaling = true
}

// Rewind undoes every mutation recorded since Mark, restoring the grid to
// the marked state, and stops journaling. Without a prior Mark it is a no-op.
func (g *Grid) Rewind() {
	g.journaling = false
	for i := len(g.journal) - 1; i >= 0; i-- {
		op := g.journal[i]
		if op.insert {
			g.Remove(op.it.ID)
		} else {
			g.Insert(op.it)
		}
	}
	g.journal = g.journal[:0]
}

// JournalLen returns the number of mutations recorded since Mark — the
// copy-on-write footprint of the current trial.
func (g *Grid) JournalLen() int { return len(g.journal) }

// Len returns the number of items currently stored.
func (g *Grid) Len() int { return g.count }

func (g *Grid) cellIndex(p geo.Point) (int, int) {
	cx := int((p.X - g.bounds.Min.X) / g.cell)
	cy := int((p.Y - g.bounds.Min.Y) / g.cell)
	if cx < 0 {
		cx = 0
	}
	if cx >= g.nx {
		cx = g.nx - 1
	}
	if cy < 0 {
		cy = 0
	}
	if cy >= g.ny {
		cy = g.ny - 1
	}
	return cx, cy
}

// Insert adds an item. Inserting an ID that is already present replaces its
// location. IDs must be non-negative.
func (g *Grid) Insert(it Item) {
	g.ensureSlot(it.ID)
	if g.slotEpoch[it.ID] == g.epoch {
		old := g.slotPt[it.ID]
		g.removeAt(it.ID, old)
		g.count--
		if g.journaling {
			g.journal = append(g.journal, journalOp{insert: false, it: Item{ID: it.ID, Point: old}})
		}
	}
	cx, cy := g.cellIndex(it.Point)
	i := cy*g.nx + cx
	g.cells[i] = append(g.cells[i], it)
	g.slotPt[it.ID] = it.Point
	g.slotEpoch[it.ID] = g.epoch
	g.count++
	if g.journaling {
		g.journal = append(g.journal, journalOp{insert: true, it: it})
	}
}

// Remove deletes the item with the given id, reporting whether it was present.
func (g *Grid) Remove(id int) bool {
	if !g.has(id) {
		return false
	}
	p := g.slotPt[id]
	g.removeAt(id, p)
	g.slotEpoch[id] = 0
	g.count--
	if g.journaling {
		g.journal = append(g.journal, journalOp{insert: false, it: Item{ID: id, Point: p}})
	}
	return true
}

func (g *Grid) removeAt(id int, p geo.Point) {
	cx, cy := g.cellIndex(p)
	i := cy*g.nx + cx
	cell := g.cells[i]
	for j, it := range cell {
		if it.ID == id {
			cell[j] = cell[len(cell)-1]
			g.cells[i] = cell[:len(cell)-1]
			return
		}
	}
}

// Contains reports whether an item with the given id is stored.
func (g *Grid) Contains(id int) bool { return g.has(id) }

// Nearest returns the stored item closest to q. ok is false when the grid is
// empty. Ties break toward the smaller ID.
func (g *Grid) Nearest(q geo.Point) (Item, bool) {
	if g.count == 0 {
		return Item{ID: -1}, false
	}
	qx, qy := g.cellIndex(q)
	best := Item{ID: -1}
	bestD := math.Inf(1)
	// Expand rings of cells around q until the closest possible point of the
	// next unexplored ring cannot beat the best found.
	maxRing := g.nx + g.ny
	for ring := 0; ring <= maxRing; ring++ {
		if best.ID >= 0 {
			// Minimum distance to any cell in this ring.
			minDist := (float64(ring) - 1) * g.cell
			if minDist > 0 && minDist*minDist > bestD {
				break
			}
		}
		g.scanRing(qx, qy, ring, func(it Item) {
			d := q.Dist2(it.Point)
			if d < bestD || (d == bestD && it.ID < best.ID) {
				best, bestD = it, d
			}
		})
	}
	return best, best.ID >= 0
}

// scanRing visits every item in the square ring of cells at L∞ cell-distance
// ring from (qx, qy).
func (g *Grid) scanRing(qx, qy, ring int, visit func(Item)) {
	if ring == 0 {
		g.scanCell(qx, qy, visit)
		return
	}
	x0, x1 := qx-ring, qx+ring
	y0, y1 := qy-ring, qy+ring
	for x := x0; x <= x1; x++ {
		g.scanCell(x, y0, visit)
		g.scanCell(x, y1, visit)
	}
	for y := y0 + 1; y <= y1-1; y++ {
		g.scanCell(x0, y, visit)
		g.scanCell(x1, y, visit)
	}
}

func (g *Grid) scanCell(cx, cy int, visit func(Item)) {
	if cx < 0 || cx >= g.nx || cy < 0 || cy >= g.ny {
		return
	}
	for _, it := range g.cells[cy*g.nx+cx] {
		visit(it)
	}
}

// InRange returns all items within radius r of q.
func (g *Grid) InRange(q geo.Point, r float64) []Item {
	return g.InRangeAppend(nil, q, r)
}

// InRangeAppend appends all items within radius r of q to out and returns
// the extended slice. Passing a recycled out[:0] makes repeated range
// queries allocation-free once the buffer has grown — the admissibility
// prefilter in the phase-2 game calls this once per iteration.
func (g *Grid) InRangeAppend(out []Item, q geo.Point, r float64) []Item {
	if r < 0 || g.count == 0 {
		return out
	}
	r2 := r * r
	lo := geo.Pt(q.X-r, q.Y-r)
	hi := geo.Pt(q.X+r, q.Y+r)
	x0, y0 := g.cellIndex(lo)
	x1, y1 := g.cellIndex(hi)
	for cy := y0; cy <= y1; cy++ {
		for cx := x0; cx <= x1; cx++ {
			for _, it := range g.cells[cy*g.nx+cx] {
				if q.Dist2(it.Point) <= r2 {
					out = append(out, it)
				}
			}
		}
	}
	return out
}

// Items returns a snapshot of all stored items in unspecified order.
func (g *Grid) Items() []Item {
	return g.ItemsAppend(make([]Item, 0, g.count))
}

// ItemsAppend appends every stored item to out and returns the extended
// slice — the allocation-free variant of Items for recycled buffers.
func (g *Grid) ItemsAppend(out []Item) []Item {
	for _, cell := range g.cells {
		out = append(out, cell...)
	}
	return out
}

// LinearNearest is the reference brute-force nearest-neighbour used in tests
// and the index-choice ablation. Ties break toward the smaller ID.
func LinearNearest(items []Item, q geo.Point, accept func(Item) bool) (Item, bool) {
	best := Item{ID: -1}
	bestD := math.Inf(1)
	for _, it := range items {
		if accept != nil && !accept(it) {
			continue
		}
		d := q.Dist2(it.Point)
		if d < bestD || (d == bestD && it.ID < best.ID) {
			best, bestD = it, d
		}
	}
	return best, best.ID >= 0
}
