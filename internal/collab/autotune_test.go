package collab

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"imtao/internal/obs"
	"imtao/internal/routing"
)

// eventCapture records obs events for assertion.
type eventCapture struct {
	mu     sync.Mutex
	events []string
	fields []map[string]any
}

func (c *eventCapture) Event(name string, fields ...obs.Field) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.events = append(c.events, name)
	m := make(map[string]any, len(fields))
	for _, f := range fields {
		m[f.Key] = f.Value
	}
	c.fields = append(c.fields, m)
}

func (c *eventCapture) find(name string) (map[string]any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, e := range c.events {
		if e == name {
			return c.fields[i], true
		}
	}
	return nil, false
}

// TestShardAutoPicksFromLadder: ShardAuto probes the candidate ladder,
// records the decision in the report, and runs the game at the picked count
// — bit-identically to requesting that count explicitly.
func TestShardAutoPicksFromLadder(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	in := separatedInstance(rng, 4)
	p1 := phase1(in)

	got, rep := RunSharded(in, p1, ShardConfig{Config: seqConfig(), Shards: ShardAuto, Seed: 7})
	if rep.ShardsRequested != ShardAuto {
		t.Fatalf("ShardsRequested = %d, want ShardAuto (%d)", rep.ShardsRequested, ShardAuto)
	}
	if rep.Auto == nil {
		t.Fatal("auto run left Report.Auto nil")
	}
	if rep.Auto.Parallelism != autotuneRefParallelism {
		t.Fatalf("modeled parallelism %d, want the fixed reference %d when ShardParallelism is 0",
			rep.Auto.Parallelism, autotuneRefParallelism)
	}
	if len(rep.Auto.Ladder) == 0 {
		t.Fatal("empty probe ladder")
	}
	inLadder := false
	bestCost := rep.Auto.Ladder[0].Cost
	for _, pr := range rep.Auto.Ladder {
		if pr.Cost < bestCost {
			bestCost = pr.Cost
		}
		if pr.Shards == rep.Auto.Picked {
			inLadder = true
			if pr.Cost != bestCost {
				// The first probe at the minimum cost wins; by the time we
				// see the picked entry its cost must be the running min.
				t.Fatalf("picked count %d does not carry the minimal cost", rep.Auto.Picked)
			}
		}
		if pr.Cost <= 0 {
			t.Fatalf("probe s%d has non-positive cost %g", pr.Shards, pr.Cost)
		}
	}
	if !inLadder {
		t.Fatalf("picked count %d not in the probe ladder %+v", rep.Auto.Picked, rep.Auto.Ladder)
	}
	if err := routing.SolutionFeasible(in, got.Solution); err != nil {
		t.Fatal(err)
	}
	if err := got.VerifyEquilibrium(in, nil); err != nil {
		t.Fatal(err)
	}

	// Determinism: the pick and the full outcome repeat.
	again, rep2 := RunSharded(in, p1, ShardConfig{Config: seqConfig(), Shards: ShardAuto, Seed: 7})
	rep.ShardWall, rep2.ShardWall = nil, nil
	if !reflect.DeepEqual(rep.Auto, rep2.Auto) || !reflect.DeepEqual(got.Solution, again.Solution) {
		t.Fatal("auto run not deterministic")
	}

	// The auto run IS the explicit run at the picked count.
	explicit, erep := RunSharded(in, p1, ShardConfig{Config: seqConfig(), Shards: rep.Auto.Picked, Seed: 7})
	if !reflect.DeepEqual(got.Solution, explicit.Solution) {
		t.Fatalf("auto(picked=%d) diverged from the explicit run", rep.Auto.Picked)
	}
	if rep.Shards != erep.Shards {
		t.Fatalf("effective shards %d vs explicit %d", rep.Shards, erep.Shards)
	}

	// A caller-set ShardParallelism flows into the model instead of the
	// reference.
	_, rep3 := RunSharded(in, p1, ShardConfig{
		Config: seqConfig(), Shards: ShardAuto, Seed: 7, ShardParallelism: 3,
	})
	if rep3.Auto == nil || rep3.Auto.Parallelism != 3 {
		t.Fatalf("ShardParallelism=3 not reflected in the model: %+v", rep3.Auto)
	}
}

// TestShardAutoIneligibleFallback: configurations the sharded engine falls
// back to the unsharded game for (here RBDC's random recipients) must do so
// under ShardAuto too, without probing.
func TestShardAutoIneligibleFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(94))
	in := randomInstance(rng, 4, 16, 40)
	p1 := phase1(in)

	cfg := seqConfig()
	cfg.Recipient = RandomRecipient
	cfg.Rng = rand.New(rand.NewSource(9))
	_, rep := RunSharded(in, p1, ShardConfig{Config: cfg, Shards: ShardAuto, Seed: 1})
	if rep.Shards != 1 || rep.ShardsRequested != ShardAuto {
		t.Fatalf("ineligible auto run: %+v", rep)
	}
	if rep.Auto != nil {
		t.Fatal("ineligible run must not probe")
	}
}

// TestShardClampSurfaced (satellite): requesting more than 64 shards clamps
// to the interference-word width — surfaced in the report and as a
// shard_clamp obs event, never silently.
func TestShardClampSurfaced(t *testing.T) {
	rng := rand.New(rand.NewSource(95))
	in := separatedInstance(rng, 3)
	p1 := phase1(in)

	cap := &eventCapture{}
	cfg := seqConfig()
	cfg.Obs = cap
	got, rep := RunSharded(in, p1, ShardConfig{Config: cfg, Shards: 100, Seed: 7})
	if rep.ShardsRequested != 100 {
		t.Fatalf("ShardsRequested = %d, want 100", rep.ShardsRequested)
	}
	if rep.Shards > 64 {
		t.Fatalf("effective shards %d above the 64-shard mask width", rep.Shards)
	}
	fields, ok := cap.find("shard_clamp")
	if !ok {
		t.Fatalf("no shard_clamp event emitted; events: %v", cap.events)
	}
	if fields["requested"] != 100 || fields["clamped"] != 64 {
		t.Fatalf("shard_clamp fields = %v", fields)
	}
	if err := got.VerifyEquilibrium(in, nil); err != nil {
		t.Fatal(err)
	}

	// Below the clamp no event fires.
	cap2 := &eventCapture{}
	cfg.Obs = cap2
	if _, rep := RunSharded(in, p1, ShardConfig{Config: cfg, Shards: 8, Seed: 7}); rep.ShardsRequested != 8 {
		t.Fatalf("ShardsRequested = %d, want 8", rep.ShardsRequested)
	}
	if _, ok := cap2.find("shard_clamp"); ok {
		t.Fatal("shard_clamp fired without a clamp")
	}
}
