package collab

import (
	"slices"
	"sort"

	"imtao/internal/assign"
	"imtao/internal/index"
	"imtao/internal/model"
)

// workerPool is the available worker set C.W_left with the bookkeeping the
// optimized game loop needs each iteration without rebuilding anything:
// an incrementally maintained ID-sorted view (the legacy loop re-sorted a
// map every iteration), the home center of each member, a per-center member
// count (to price pruning without scans), and an optional spatial index over
// member locations for the admissibility prefilter.
//
// Membership lives in a dense home array indexed by worker ID instead of a
// map, and the candidate lists are carved from reusable scratch buffers, so
// the steady-state game iteration touches the pool without allocating
// (DESIGN.md §13). The scratch returned by candidates/admissible is valid
// until the next candidates/admissible call.
type workerPool struct {
	in *model.Instance
	// home[w] is w's home center while w is in the pool, -1 otherwise.
	home   []int32
	size   int
	sorted []model.WorkerID // members in ascending ID order
	counts []int            // members homed at each center
	// grid indexes member locations when the travel metric declares a speed
	// bound (model.SpeedBounded or the instance's uniform Speed); vmax is
	// that bound. A nil grid means admissibility falls back to an exact
	// linear travel-time scan.
	grid *index.Grid
	vmax float64
	// items/cands are the recycled range-query and candidate-list scratch.
	items []index.Item
	cands []model.WorkerID
	// mask/maskBit, when mask is non-nil, gate admission: add is a no-op
	// unless mask[w] == maskBit. The sharded engine (shard.go) installs each
	// worker's shard-membership bitset and the shard's own bit, so a phase-A
	// pool only ever circulates its shard-exclusive workers — including own
	// workers freed by an accepted reassignment, which route through add too.
	mask    []uint64
	maskBit uint64
}

// poolSpeedBound resolves the instance's admission-prefilter speed bound:
// the uniform Speed for straight-line instances, MaxSpeed for SpeedBounded
// metrics, and 0 (no bound — exact scans only) otherwise.
func poolSpeedBound(in *model.Instance) float64 {
	if in.Metric == nil {
		return in.Speed
	}
	if sb, ok := in.Metric.(model.SpeedBounded); ok {
		return sb.MaxSpeed()
	}
	return 0
}

func newWorkerPool(in *model.Instance, spatial bool) *workerPool {
	p := &workerPool{
		in:     in,
		home:   make([]int32, len(in.Workers)),
		sorted: make([]model.WorkerID, 0, len(in.Workers)),
		counts: make([]int, len(in.Centers)),
	}
	for i := range p.home {
		p.home[i] = -1
	}
	if spatial {
		if v := poolSpeedBound(in); v > 0 {
			p.vmax = v
			p.grid = index.NewGrid(in.Bounds, max(len(in.Workers)/4, 1), 4)
		}
	}
	return p
}

func (p *workerPool) len() int { return p.size }

func (p *workerPool) has(w model.WorkerID) bool { return p.home[w] >= 0 }

func (p *workerPool) homeOf(w model.WorkerID) model.CenterID {
	return model.CenterID(p.home[w])
}

// add inserts w (homed at home) into the pool; present members are left
// untouched.
func (p *workerPool) add(w model.WorkerID, home model.CenterID) {
	if p.home[w] >= 0 {
		return
	}
	if p.mask != nil && p.mask[w] != p.maskBit {
		return
	}
	p.home[w] = int32(home)
	p.size++
	i := sort.Search(len(p.sorted), func(j int) bool { return p.sorted[j] >= w })
	p.sorted = append(p.sorted, 0)
	copy(p.sorted[i+1:], p.sorted[i:])
	p.sorted[i] = w
	p.counts[home]++
	if p.grid != nil {
		p.grid.Insert(index.Item{ID: int(w), Point: p.in.Worker(w).Loc})
	}
}

// remove deletes w from the pool; absent members are a no-op.
func (p *workerPool) remove(w model.WorkerID) {
	home := p.home[w]
	if home < 0 {
		return
	}
	p.home[w] = -1
	p.size--
	i := sort.Search(len(p.sorted), func(j int) bool { return p.sorted[j] >= w })
	copy(p.sorted[i:], p.sorted[i+1:])
	p.sorted = p.sorted[:len(p.sorted)-1]
	p.counts[home]--
	if p.grid != nil {
		p.grid.Remove(int(w))
	}
}

// candidates returns the members not homed at ci, in ascending ID order —
// the legacy candidate list, served from the maintained sorted view. The
// returned slice is pool scratch, valid until the next candidates/admissible
// call.
func (p *workerPool) candidates(ci model.CenterID) []model.WorkerID {
	out := p.cands[:0]
	for _, w := range p.sorted {
		if model.CenterID(p.home[w]) != ci {
			out = append(out, w)
		}
	}
	p.cands = out
	return out
}

// admissible returns the candidates (members not homed at ci) that pass the
// admission-slack check for center c, in ascending ID order, plus the count
// pruned. With a spatial bound the scan is a grid range query of radius
// (slack+pad)·vmax — conservatively inflated so floating point can only
// over-admit — with an exact travel-time re-check per hit; otherwise every
// candidate gets the exact check. When onPruned is non-nil the exact linear
// path is forced and the hook observes every pruned candidate (test hook).
// The returned slice is pool scratch, valid until the next
// candidates/admissible call.
func (p *workerPool) admissible(c *model.Center, ci model.CenterID, slack float64,
	onPruned func(model.WorkerID)) ([]model.WorkerID, int) {

	nonOwn := len(p.sorted) - p.counts[ci]
	if p.grid != nil && onPruned == nil {
		r := (slack + assign.PrunePad) * p.vmax
		if r > 0 {
			r += r*1e-9 + 1e-12
		}
		p.items = p.grid.InRangeAppend(p.items[:0], c.Loc, r)
		cands := p.cands[:0]
		for _, it := range p.items {
			w := model.WorkerID(it.ID)
			if model.CenterID(p.home[w]) == ci {
				continue
			}
			if assign.WorkerAdmissible(p.in, c, w, slack) {
				cands = append(cands, w)
			}
		}
		slices.Sort(cands)
		p.cands = cands
		return cands, nonOwn - len(cands)
	}

	cands := p.cands[:0]
	pruned := 0
	for _, w := range p.sorted {
		if model.CenterID(p.home[w]) == ci {
			continue
		}
		if assign.WorkerAdmissible(p.in, c, w, slack) {
			cands = append(cands, w)
		} else {
			pruned++
			if onPruned != nil {
				onPruned(w)
			}
		}
	}
	p.cands = cands
	return cands, pruned
}
