package collab

import (
	"encoding/binary"
	"hash/fnv"
	"math/rand"
	"reflect"
	"testing"

	"imtao/internal/assign"
	"imtao/internal/model"
)

// fingerprintSolution hashes the full assignment output — every route and
// every transfer — mirroring the bench harness's fingerprint, so equality
// here is equality of the whole solution.
func fingerprintSolution(sol *model.Solution) uint64 {
	h := fnv.New64a()
	word := func(v uint64) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], v)
		h.Write(b[:])
	}
	for ci := range sol.PerCenter {
		for _, r := range sol.PerCenter[ci].Routes {
			word(uint64(ci))
			word(uint64(r.Worker))
			for _, tid := range r.Tasks {
				word(uint64(tid))
			}
			word(^uint64(0))
		}
	}
	for _, tr := range sol.Transfers {
		word(uint64(tr.Src))
		word(uint64(tr.Dst))
		word(uint64(tr.Worker))
	}
	return h.Sum64()
}

// stripEngineDiagnostics zeroes the TraceStep fields outside the cross-engine
// equivalence contract: the wall clock and the trial/memo/prune/resume
// counters (the optimized engine does strictly less work).
func stripEngineDiagnostics(trace []TraceStep) []TraceStep {
	out := append([]TraceStep(nil), trace...)
	for i := range out {
		out[i].Duration = 0
		out[i].Trials = 0
		out[i].MemoHits = 0
		out[i].Pruned = 0
		out[i].Resumed = 0
	}
	return out
}

// optAssigner is assign.Optimal without a budget — deterministic, so the
// engines must agree bit-for-bit on it too.
func optAssigner(in *model.Instance, c *model.Center, ws []model.WorkerID, ts []model.TaskID) assign.Result {
	return assign.Optimal(in, c, ws, ts)
}

// engineCases enumerates the paper's method grid for both per-center
// assigners: BDC/DC/RBDC × {Sequential, Optimal}, plus the recipient- and
// candidate-policy ablations under Sequential. Optimal runs with PruneOn
// (exact for the unbudgeted enumeration, see PruneMode docs). opt marks the
// cases whose phase 1 must also run Optimal — pruning assumes the initial
// state is a fixed point of the game's own assigner, as core.Run guarantees
// by using one assigner for both phases.
func engineCases() []struct {
	name string
	opt  bool
	cfg  Config
} {
	return []struct {
		name string
		opt  bool
		cfg  Config
	}{
		{"Seq-BDC", false, Config{Scope: FullReassign, Assigner: assign.Sequential}},
		{"Seq-DC", false, Config{Scope: LeftoverOnly, Assigner: assign.Sequential}},
		{"Seq-RBDC", false, Config{Recipient: RandomRecipient, Assigner: assign.Sequential}},
		{"Seq-MaxLeftover", false, Config{Recipient: MaxLeftover, Assigner: assign.Sequential}},
		{"Seq-NearestWorker", false, Config{Candidate: NearestWorker, Assigner: assign.Sequential}},
		{"Seq-BDC-par", false, Config{Scope: FullReassign, Assigner: assign.Sequential, Parallelism: 4}},
		{"Opt-BDC", true, Config{Scope: FullReassign, Assigner: optAssigner, Prune: PruneOn}},
		{"Opt-DC", true, Config{Scope: LeftoverOnly, Assigner: optAssigner, Prune: PruneOn}},
		{"Opt-RBDC", true, Config{Recipient: RandomRecipient, Assigner: optAssigner, Prune: PruneOn}},
		{"Opt-BDC-noprune", true, Config{Scope: FullReassign, Assigner: optAssigner}},
	}
}

// TestRunMatchesReferenceAcrossMethods is the tentpole equivalence test: the
// optimized engine must be bit-identical to the frozen pre-engine loop —
// same routes, same transfers, same trace (diagnostics aside), same
// fingerprint — across every method × assigner combination.
func TestRunMatchesReferenceAcrossMethods(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 8; trial++ {
		// Optimal's VTDS enumeration is exponential, so its grid runs on a
		// small instance; the Sequential grid gets a larger one.
		inSeq := randomInstance(rng, 2+rng.Intn(5), 6+rng.Intn(24), 12+rng.Intn(60))
		inOpt := randomInstance(rng, 2+rng.Intn(2), 4+rng.Intn(5), 8+rng.Intn(8))
		p1Seq := phase1(inSeq)
		var p1Opt []assign.Result
		for ci := range inOpt.Centers {
			c := inOpt.Center(model.CenterID(ci))
			p1Opt = append(p1Opt, assign.Optimal(inOpt, c, c.Workers, c.Tasks))
		}
		for _, tc := range engineCases() {
			in, p1 := inSeq, p1Seq
			if tc.opt {
				in, p1 = inOpt, p1Opt
			}
			cfg := tc.cfg
			ref := cfg
			if cfg.Recipient == RandomRecipient {
				// Each engine consumes the same stream from its own RNG.
				cfg.Rng = rand.New(rand.NewSource(int64(trial)))
				ref.Rng = rand.New(rand.NewSource(int64(trial)))
			}
			got := Run(in, p1, cfg)
			want := RunReference(in, p1, ref)
			if !reflect.DeepEqual(got.Solution, want.Solution) {
				t.Fatalf("trial %d %s: solutions differ", trial, tc.name)
			}
			if gf, wf := fingerprintSolution(got.Solution), fingerprintSolution(want.Solution); gf != wf {
				t.Fatalf("trial %d %s: fingerprints differ: %x vs %x", trial, tc.name, gf, wf)
			}
			if got.Iterations != want.Iterations {
				t.Fatalf("trial %d %s: iterations %d vs %d", trial, tc.name, got.Iterations, want.Iterations)
			}
			gt := stripEngineDiagnostics(got.Trace)
			wt := stripEngineDiagnostics(want.Trace)
			if !reflect.DeepEqual(gt, wt) {
				for i := range gt {
					if i >= len(wt) || !reflect.DeepEqual(gt[i], wt[i]) {
						t.Fatalf("trial %d %s: trace diverges at step %d:\n got  %+v\n want %+v",
							trial, tc.name, i, gt[i], wt[i])
					}
				}
				t.Fatalf("trial %d %s: trace lengths differ: %d vs %d", trial, tc.name, len(gt), len(wt))
			}
		}
	}
}

// TestRunMatchesReferenceOnFig1 pins the equivalence on the worked example.
func TestRunMatchesReferenceOnFig1(t *testing.T) {
	in := paperFig1()
	p1 := phase1(in)
	got := Run(in, p1, seqConfig())
	want := RunReference(in, p1, seqConfig())
	if !reflect.DeepEqual(got.Solution, want.Solution) {
		t.Fatal("solutions differ on Fig. 1")
	}
	if !reflect.DeepEqual(stripEngineDiagnostics(got.Trace), stripEngineDiagnostics(want.Trace)) {
		t.Fatal("traces differ on Fig. 1")
	}
}

// TestRunEngineCountersFire asserts the optimizations actually engage on a
// pruning-friendly instance: some candidates pruned, every evaluated trial
// resumed, and the w/o-C baseline untouched by comparison.
func TestRunEngineCountersFire(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	var pruned, resumed, trials int
	for trial := 0; trial < 10; trial++ {
		in := randomInstance(rng, 3+rng.Intn(4), 10+rng.Intn(20), 20+rng.Intn(50))
		p1 := phase1(in)
		res := Run(in, p1, seqConfig())
		for _, step := range res.Trace {
			pruned += step.Pruned
			resumed += step.Resumed
			trials += step.Trials
		}
	}
	if pruned == 0 {
		t.Fatal("admissibility pruning never fired across 10 random instances")
	}
	if trials == 0 {
		t.Fatal("no trials evaluated — degenerate test instances")
	}
	if resumed != trials {
		t.Fatalf("Sequential engine evaluated %d trials but resumed only %d", trials, resumed)
	}
}

// TestPrunedCandidatesNeverImprove is the pruning-soundness property test:
// via the test hook, every pruned candidate's FULL trial is replayed and must
// yield exactly the recipient's current assigned count — i.e. pruning only
// ever drops candidates whose best response is a no-op. Covered for both the
// full-reassign (BDC) and leftover-only (DC) scopes.
func TestPrunedCandidatesNeverImprove(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	for _, scope := range []Scope{FullReassign, LeftoverOnly} {
		checked := 0
		for trial := 0; trial < 12; trial++ {
			in := randomInstance(rng, 2+rng.Intn(4), 8+rng.Intn(16), 16+rng.Intn(40))
			p1 := phase1(in)
			cfg := seqConfig()
			cfg.Scope = scope
			cfg.prunedHook = func(ci model.CenterID, w model.WorkerID,
				baseWS []model.WorkerID, leftTasks []model.TaskID, assigned int) {
				checked++
				center := in.Center(ci)
				var full assign.Result
				if scope == LeftoverOnly {
					full = assign.Sequential(in, center, []model.WorkerID{w}, leftTasks)
					if got := full.AssignedCount(); got != 0 {
						t.Fatalf("scope %v: pruned DC candidate %d served %d leftover tasks", scope, w, got)
					}
					return
				}
				ws := append(append([]model.WorkerID(nil), baseWS...), w)
				full = assign.Sequential(in, center, ws, center.Tasks)
				if got := full.AssignedCount(); got != assigned {
					t.Fatalf("scope %v: pruned candidate %d changed assigned count %d → %d",
						scope, w, assigned, got)
				}
			}
			Run(in, p1, cfg)
		}
		if checked == 0 {
			t.Fatalf("scope %v: hook never saw a pruned candidate", scope)
		}
		t.Logf("scope %v: verified %d pruned candidates", scope, checked)
	}
}

// TestRunNoMemoMatchesMemo pins the memo as semantics-preserving under the
// new engine and checks the disabled-memo path leaves the per-step MemoHits
// at zero.
func TestRunNoMemoMatchesMemo(t *testing.T) {
	in := seededInstance(37, 4, 24, 80)
	p1 := phase1(in)
	cfg := seqConfig()
	withMemo := Run(in, p1, cfg)
	cfg.noMemo = true
	without := Run(in, p1, cfg)
	if !reflect.DeepEqual(withMemo.Solution, without.Solution) {
		t.Fatal("memo changed the solution")
	}
	for _, step := range without.Trace {
		if step.MemoHits != 0 {
			t.Fatalf("memo disabled but step reports %d hits", step.MemoHits)
		}
	}
}
