package collab

import (
	"math/rand"
	"testing"

	"imtao/internal/assign"
	"imtao/internal/geo"
	"imtao/internal/metrics"
	"imtao/internal/model"
	"imtao/internal/routing"
)

// phase1 runs the sequential assigner independently per center.
func phase1(in *model.Instance) []assign.Result {
	out := make([]assign.Result, len(in.Centers))
	for ci := range in.Centers {
		c := in.Center(model.CenterID(ci))
		out[ci] = assign.Sequential(in, c, c.Workers, c.Tasks)
	}
	return out
}

// paperFig1 builds an instance in the spirit of the paper's Fig. 1 worked
// example: three centers; c0 has a surplus worker that, once dispatched to
// c2 and combined with a full reassignment, raises both the total assigned
// count and fairness.
//
// Geometry (speed 1, expiry 10, maxT 1):
//
//	c0 at (0,0):  workers w0 (0,1), w1 (1,0); task t0 (0,2).
//	c1 at (100,0): worker w2 (100,1); tasks t1 (100,2), t2 (100,60) [unreachable].
//	c2 at (40,0):  worker w3 (40,30) [marginal]; tasks t3 (40,28), t4 (40,4), t5 (40,55).
//
// Independent phase: c0 assigns t0 (ρ=1, one worker spare); c1 assigns t1
// (ρ=1/2); c2's w3 arrives at the center at t=30, too late for anything
// (every task expired) — wait, expiry 10 means even t4 is tight for w3:
// 30 + 4 > 10. So c2 assigns nothing with w3?! To mirror the paper we give
// w3 a feasible nearby task t3 via a custom expiry.
func paperFig1() *model.Instance {
	in := &model.Instance{
		Centers: []model.Center{
			{ID: 0, Loc: geo.Pt(0, 0)},
			{ID: 1, Loc: geo.Pt(100, 0)},
			{ID: 2, Loc: geo.Pt(40, 0)},
		},
		Speed:  1,
		Bounds: geo.NewRect(geo.Pt(-10, -10), geo.Pt(150, 100)),
	}
	addTask := func(c model.CenterID, x, y, e float64) {
		id := model.TaskID(len(in.Tasks))
		in.Tasks = append(in.Tasks, model.Task{ID: id, Center: c, Loc: geo.Pt(x, y), Expiry: e, Reward: 1})
		in.Centers[c].Tasks = append(in.Centers[c].Tasks, id)
	}
	addWorker := func(c model.CenterID, x, y float64, maxT int) {
		id := model.WorkerID(len(in.Workers))
		in.Workers = append(in.Workers, model.Worker{ID: id, Home: c, Loc: geo.Pt(x, y), MaxT: maxT})
		in.Centers[c].Workers = append(in.Centers[c].Workers, id)
	}
	// Center 0: two workers, one task.
	addWorker(0, 0, 1, 1)
	addWorker(0, 1, 0, 1)
	addTask(0, 0, 2, 10)
	// Center 1: one worker, two tasks (one unreachable).
	addWorker(1, 100, 1, 1)
	addTask(1, 100, 2, 10)
	addTask(1, 100, 60, 10)
	// Center 2: one marginal worker, three tasks; only t3 is deliverable by
	// w3 (long expiry), t4 is deliverable by a dispatched c0 worker, t5 is
	// out of reach for everyone.
	addWorker(2, 40, 30, 1)
	addTask(2, 40, 28, 80)
	addTask(2, 40, 4, 50)
	addTask(2, 40, 55, 10)
	return in
}

func seqConfig() Config {
	return Config{Recipient: MinRatio, Scope: FullReassign, Assigner: assign.Sequential}
}

func TestNoCollaboration(t *testing.T) {
	in := paperFig1()
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	p1 := phase1(in)
	sol := NoCollaboration(in, p1)
	if err := routing.SolutionFeasible(in, sol); err != nil {
		t.Fatal(err)
	}
	// c0: 1 task; c1: 1 task; c2: w3 takes the nearest task it can (t3).
	if got := sol.AssignedCount(); got != 3 {
		t.Fatalf("w/o-C assigned = %d, want 3", got)
	}
	rhos := metrics.Ratios(in, sol)
	if rhos[0] != 1 || rhos[1] != 0.5 {
		t.Fatalf("rhos = %v", rhos)
	}
}

func TestRunImprovesAssignmentAndFairness(t *testing.T) {
	in := paperFig1()
	p1 := phase1(in)
	base := NoCollaboration(in, p1)
	res := Run(in, p1, seqConfig())
	if err := routing.SolutionFeasible(in, res.Solution); err != nil {
		t.Fatal(err)
	}
	if res.Solution.AssignedCount() <= base.AssignedCount() {
		t.Fatalf("collaboration did not help: %d vs %d",
			res.Solution.AssignedCount(), base.AssignedCount())
	}
	uBase := metrics.SolutionUnfairness(in, base)
	uBDC := metrics.SolutionUnfairness(in, res.Solution)
	if uBDC >= uBase {
		t.Fatalf("unfairness did not drop: %v vs %v", uBDC, uBase)
	}
	if len(res.Solution.Transfers) == 0 {
		t.Fatal("expected at least one workforce transfer")
	}
	// The dispatched worker must come from center 0 (the only surplus).
	for _, tr := range res.Solution.Transfers {
		if tr.Src != 0 {
			t.Fatalf("transfer from unexpected source: %+v", tr)
		}
		if w := in.Worker(tr.Worker); w.Home != tr.Src {
			t.Fatalf("transfer source does not match worker home: %+v", tr)
		}
	}
}

func TestRunTraceIsMonotone(t *testing.T) {
	in := paperFig1()
	p1 := phase1(in)
	res := Run(in, p1, seqConfig())
	prevAssigned := NoCollaboration(in, p1).AssignedCount()
	for _, step := range res.Trace {
		if step.Accepted {
			if step.Assigned < prevAssigned {
				t.Fatalf("assigned count decreased at iteration %d", step.Iteration)
			}
			if step.RhoAfter <= step.RhoBefore {
				t.Fatalf("accepted step without ratio gain: %+v", step)
			}
			prevAssigned = step.Assigned
		} else if step.RhoAfter != step.RhoBefore {
			t.Fatalf("rejected step changed rho: %+v", step)
		}
	}
}

func TestRunTerminatesAtEquilibrium(t *testing.T) {
	// After Run finishes, re-running collaboration on the resulting state
	// must produce no further accepted transfers (Nash equilibrium: no
	// center can improve unilaterally). We verify via a second Run seeded
	// with the final routes reconstructed as phase-1 results.
	in := paperFig1()
	p1 := phase1(in)
	res := Run(in, p1, seqConfig())

	// Rebuild phase-1-shaped results from the final solution.
	again := make([]assign.Result, len(in.Centers))
	assigned := res.Solution.AssignedTasks()
	usedWorkers := map[model.WorkerID]bool{}
	for ci := range in.Centers {
		again[ci].Routes = res.Solution.PerCenter[ci].Routes
		for _, r := range res.Solution.PerCenter[ci].Routes {
			usedWorkers[r.Worker] = true
		}
		for _, tid := range in.Centers[ci].Tasks {
			if !assigned[tid] {
				again[ci].LeftTasks = append(again[ci].LeftTasks, tid)
			}
		}
	}
	for _, w := range in.Workers {
		if !usedWorkers[w.ID] {
			again[w.Home].LeftWorkers = append(again[w.Home].LeftWorkers, w.ID)
		}
	}
	res2 := Run(in, again, seqConfig())
	for _, step := range res2.Trace {
		if step.Accepted {
			t.Fatalf("post-equilibrium run accepted a transfer: %+v", step)
		}
	}
}

func TestRunDCNeverBreaksExistingRoutes(t *testing.T) {
	in := paperFig1()
	p1 := phase1(in)
	cfg := seqConfig()
	cfg.Scope = LeftoverOnly
	res := Run(in, p1, cfg)
	if err := routing.SolutionFeasible(in, res.Solution); err != nil {
		t.Fatal(err)
	}
	// Every phase-1 route must appear unchanged in the DC solution.
	for ci := range in.Centers {
		for _, orig := range p1[ci].Routes {
			found := false
			for _, r := range res.Solution.PerCenter[ci].Routes {
				if r.Worker == orig.Worker && len(r.Tasks) == len(orig.Tasks) {
					same := true
					for k := range r.Tasks {
						if r.Tasks[k] != orig.Tasks[k] {
							same = false
							break
						}
					}
					if same {
						found = true
						break
					}
				}
			}
			if !found {
				t.Fatalf("DC modified an existing route of center %d: %+v", ci, orig)
			}
		}
	}
}

func TestRunBDCBeatsDCOnFig1(t *testing.T) {
	// In the Fig. 1 narrative DC fails because leftover tasks are out of
	// reach for the dispatched worker, while BDC reshuffles and wins.
	// t4 (reachable from c0's spare worker) is taken by nobody in phase 1 —
	// actually w3 takes t3 and t4 is leftover and reachable, so DC also
	// helps here; the BDC ≥ DC dominance is what we assert.
	in := paperFig1()
	p1 := phase1(in)
	bdc := Run(in, p1, seqConfig())
	cfgDC := seqConfig()
	cfgDC.Scope = LeftoverOnly
	dc := Run(in, p1, cfgDC)
	if bdc.Solution.AssignedCount() < dc.Solution.AssignedCount() {
		t.Fatalf("BDC %d < DC %d", bdc.Solution.AssignedCount(), dc.Solution.AssignedCount())
	}
}

func TestRunRandomRecipientIsSeededDeterministic(t *testing.T) {
	in := paperFig1()
	p1 := phase1(in)
	cfg := seqConfig()
	cfg.Recipient = RandomRecipient
	cfg.Rng = rand.New(rand.NewSource(7))
	a := Run(in, p1, cfg)
	cfg.Rng = rand.New(rand.NewSource(7))
	b := Run(in, p1, cfg)
	if a.Solution.AssignedCount() != b.Solution.AssignedCount() || len(a.Trace) != len(b.Trace) {
		t.Fatal("same seed must give identical RBDC runs")
	}
}

func TestRunNoRecipients(t *testing.T) {
	// Every center fully assigned: collaboration is a no-op.
	in := paperFig1()
	// Drop the unreachable tasks so phase 1 achieves ρ=1 everywhere except
	// centers that still have spare... simpler: build a trivially easy scene.
	easy := &model.Instance{
		Centers: []model.Center{
			{ID: 0, Loc: geo.Pt(0, 0), Tasks: []model.TaskID{0}, Workers: []model.WorkerID{0}},
		},
		Tasks:   []model.Task{{ID: 0, Center: 0, Loc: geo.Pt(1, 0), Expiry: 100, Reward: 1}},
		Workers: []model.Worker{{ID: 0, Home: 0, Loc: geo.Pt(0, 0), MaxT: 4}},
		Speed:   1,
		Bounds:  in.Bounds,
	}
	p1 := phase1(easy)
	res := Run(easy, p1, seqConfig())
	if len(res.Trace) != 0 || res.Iterations != 0 {
		t.Fatalf("no-op collaboration ran %d iterations", res.Iterations)
	}
	if res.Solution.AssignedCount() != 1 {
		t.Fatal("solution must carry the phase-1 routes")
	}
}

// Property: on random instances, BDC collaboration never reduces the total
// assigned count relative to w/o-C, the final solution is always feasible,
// and transfers reference real surplus workers.
func TestRunRandomInstancesInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 25; trial++ {
		in := randomInstance(rng, 2+rng.Intn(5), 3+rng.Intn(12), 8+rng.Intn(40))
		p1 := phase1(in)
		base := NoCollaboration(in, p1)
		res := Run(in, p1, seqConfig())
		if err := routing.SolutionFeasible(in, res.Solution); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if res.Solution.AssignedCount() < base.AssignedCount() {
			t.Fatalf("trial %d: collaboration reduced assignment %d -> %d",
				trial, base.AssignedCount(), res.Solution.AssignedCount())
		}
		seen := map[model.WorkerID]bool{}
		for _, tr := range res.Solution.Transfers {
			if seen[tr.Worker] {
				t.Fatalf("trial %d: worker %d transferred twice", trial, tr.Worker)
			}
			seen[tr.Worker] = true
			if tr.Src == tr.Dst {
				t.Fatalf("trial %d: self transfer %+v", trial, tr)
			}
		}
	}
}

// randomInstance builds a multi-center instance with Voronoi-free direct
// attachment: entities are attached to the nearest center by brute force.
func randomInstance(rng *rand.Rand, nc, nw, nt int) *model.Instance {
	in := &model.Instance{
		Speed:  300,
		Bounds: geo.NewRect(geo.Pt(0, 0), geo.Pt(1000, 1000)),
	}
	for i := 0; i < nc; i++ {
		in.Centers = append(in.Centers, model.Center{
			ID: model.CenterID(i), Loc: geo.Pt(rng.Float64()*1000, rng.Float64()*1000),
		})
	}
	nearest := func(p geo.Point) model.CenterID {
		best, bd := 0, p.Dist2(in.Centers[0].Loc)
		for i := 1; i < nc; i++ {
			if d := p.Dist2(in.Centers[i].Loc); d < bd {
				best, bd = i, d
			}
		}
		return model.CenterID(best)
	}
	for i := 0; i < nt; i++ {
		p := geo.Pt(rng.Float64()*1000, rng.Float64()*1000)
		c := nearest(p)
		id := model.TaskID(i)
		in.Tasks = append(in.Tasks, model.Task{ID: id, Center: c, Loc: p, Expiry: 1 + rng.Float64(), Reward: 1})
		in.Centers[c].Tasks = append(in.Centers[c].Tasks, id)
	}
	for i := 0; i < nw; i++ {
		p := geo.Pt(rng.Float64()*1000, rng.Float64()*1000)
		c := nearest(p)
		id := model.WorkerID(i)
		in.Workers = append(in.Workers, model.Worker{ID: id, Home: c, Loc: p, MaxT: 4})
		in.Centers[c].Workers = append(in.Centers[c].Workers, id)
	}
	return in
}

func TestNearestWorkerPolicyStillImproves(t *testing.T) {
	rng := rand.New(rand.NewSource(151))
	for trial := 0; trial < 15; trial++ {
		in := randomInstance(rng, 2+rng.Intn(4), 4+rng.Intn(10), 8+rng.Intn(30))
		p1 := phase1(in)
		base := NoCollaboration(in, p1).AssignedCount()
		cfg := seqConfig()
		cfg.Candidate = NearestWorker
		out := Run(in, p1, cfg)
		if err := routing.SolutionFeasible(in, out.Solution); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if out.Solution.AssignedCount() < base {
			t.Fatalf("trial %d: nearest-worker collaboration lost tasks", trial)
		}
	}
}

func TestNearestWorkerNeverBeatsBestResponse(t *testing.T) {
	// The best-response step evaluates a superset of candidates each
	// iteration, so on the recipient it picks it can only do better or
	// equal per step. Globally the orderings can differ; we assert the
	// common-case dominance on a batch of random instances in aggregate.
	rng := rand.New(rand.NewSource(152))
	var brTotal, nwTotal int
	for trial := 0; trial < 15; trial++ {
		in := randomInstance(rng, 3, 8, 24)
		p1 := phase1(in)
		br := Run(in, p1, seqConfig())
		cfg := seqConfig()
		cfg.Candidate = NearestWorker
		nw := Run(in, p1, cfg)
		brTotal += br.Solution.AssignedCount()
		nwTotal += nw.Solution.AssignedCount()
	}
	if nwTotal > brTotal {
		t.Fatalf("nearest-worker aggregate %d beats best-response %d", nwTotal, brTotal)
	}
}

func TestMaxLeftoverPolicy(t *testing.T) {
	rng := rand.New(rand.NewSource(153))
	for trial := 0; trial < 10; trial++ {
		in := randomInstance(rng, 3, 8, 24)
		p1 := phase1(in)
		base := NoCollaboration(in, p1).AssignedCount()
		cfg := seqConfig()
		cfg.Recipient = MaxLeftover
		out := Run(in, p1, cfg)
		if err := routing.SolutionFeasible(in, out.Solution); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if out.Solution.AssignedCount() < base {
			t.Fatalf("trial %d: max-leftover lost tasks", trial)
		}
	}
}
