package collab

// Component-parallel boundary reconcile (DESIGN.md §16). The serialized
// exchange game of §15 is the Amdahl bottleneck of the sharded engine: phase
// A scales with the shard count, phase B ran on one goroutine regardless.
// This file removes the bottleneck for disconnected conflict graphs.
//
// The key fact is confinement: the interference masks are built from the
// admission-slack bound — the same physics the pruning engine trusts — over
// the phase-1 recipient set, which only shrinks as ρ rises. So at exchange
// time a worker admissible to recipient c carries the bit of c's shard, all
// of a worker's shard bits lie inside one connected component of the
// conflict graph, and a best-response scan by a component-K recipient can
// never accept (or even find improving) a worker homed outside K. The
// serialized exchange therefore factors into independent per-component
// subgames, and the global min-(ρ, center ID) recipient rule makes the
// serialized sequence exactly the deterministic interleave of the component
// sequences — the same replay argument mergeIndependent proves for the
// empty-cut case, applied one level up. Components run concurrently under
// ShardParallelism; the merge below reconstructs the serialized trace,
// transfer log and routes bit-for-bit (diagnostics counters aside).
//
// Greedy coloring of the conflict graph (greedyColorShards) feeds the
// telemetry gauge and the autotune cost model: within one color class
// shards are pairwise non-adjacent, so a low chromatic number certifies a
// sparse cut whose components stay small — the regime where this path wins.

import (
	"math/bits"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"imtao/internal/assign"
	"imtao/internal/metrics"
	"imtao/internal/model"
	"imtao/internal/provenance"
	"imtao/internal/slab"
)

// shardComponents labels each shard with its connected component in the
// conflict graph. Components are numbered by first appearance in shard
// order (shard 0's component is 0), so the labeling is canonical and
// deterministic.
func shardComponents(adj *[64]uint64, nShards int) ([]int, int) {
	compOf := make([]int, nShards)
	for s := range compOf {
		compOf[s] = -1
	}
	nComp := 0
	for s := 0; s < nShards; s++ {
		if compOf[s] >= 0 {
			continue
		}
		var seen uint64
		frontier := uint64(1) << s
		for frontier != 0 {
			t := bits.TrailingZeros64(frontier)
			frontier &^= uint64(1) << t
			if seen&(uint64(1)<<t) != 0 {
				continue
			}
			seen |= uint64(1) << t
			compOf[t] = nComp
			frontier |= adj[t] &^ seen
		}
		nComp++
	}
	return compOf, nComp
}

// greedyColorShards colors the shard conflict graph greedily in shard
// order, each shard taking the lowest color unused by its already-colored
// neighbors. Returns the per-shard colors and the color count (≤ max degree
// + 1). Deterministic; purely diagnostic — the reconcile parallelizes by
// component, the coloring certifies cut sparsity for the report, the
// imtao_shard_colors gauge and the autotune model.
func greedyColorShards(adj *[64]uint64, nShards int) ([]int, int) {
	colors := make([]int, nShards)
	nColors := 0
	for s := 0; s < nShards; s++ {
		var used uint64
		nb := adj[s] &^ (uint64(1) << s)
		for nb != 0 {
			t := bits.TrailingZeros64(nb)
			nb &^= uint64(1) << t
			if t < s {
				used |= uint64(1) << colors[t]
			}
		}
		c := bits.TrailingZeros64(^used)
		colors[s] = c
		if c+1 > nColors {
			nColors = c + 1
		}
	}
	return colors, nColors
}

// reconcileComponents plays the boundary exchange game per conflict
// component concurrently and merges the outcomes into the exact serialized
// exchange result. merged/memo/priorTransfers are the phase-A merge
// products RunSharded builds for the serialized game; the returned Result
// is shaped like that game's Finish — full routes, full transfer log
// (prior + new), and a trace holding only the exchange steps — so the
// caller's report/trace assembly is path-independent.
func reconcileComponents(in *model.Instance, cfg ShardConfig, shardOf, compOf []int,
	nComp int, merged []assign.Result, memo []map[model.WorkerID]assign.Result,
	priorTransfers []model.Transfer) Result {

	n := len(in.Centers)
	members := make([][]model.CenterID, nComp)
	for ci := range in.Centers {
		k := compOf[shardOf[ci]]
		members[k] = append(members[k], model.CenterID(ci))
	}
	// Pool gate: a worker belongs to the component of its home shard — by
	// confinement the only component whose pool it can ever circulate in.
	compMask := make([]uint64, len(in.Workers))
	for w := range compMask {
		compMask[w] = uint64(compOf[shardOf[in.Workers[w].Home]])
	}
	// Phase-A transfers are intra-shard (shard games move workers between
	// their own members only), so each prior transfer replays in exactly one
	// component's resume; order within a component follows the global
	// concatenation order.
	compTransfers := make([][]model.Transfer, nComp)
	for _, tr := range priorTransfers {
		k := compOf[shardOf[tr.Dst]]
		compTransfers[k] = append(compTransfers[k], tr)
	}
	// Per-component memo views: fresh arrays so concurrent games never
	// share mutable slots; the maps themselves are read/invalidated only by
	// the owning component's game (memo[ci] belongs to ci's shard's comp).
	compMemo := make([][]map[model.WorkerID]assign.Result, nComp)
	for k := 0; k < nComp; k++ {
		cm := make([]map[model.WorkerID]assign.Result, n)
		for _, ci := range members[k] {
			cm[ci] = memo[ci]
		}
		compMemo[k] = cm
	}

	compPar := cfg.ShardParallelism
	if compPar <= 0 {
		compPar = runtime.GOMAXPROCS(0)
	}
	if compPar > nComp {
		compPar = nComp
	}
	innerPar := cfg.Parallelism
	if compPar > 1 {
		innerPar = 1
	}

	// One exchange subgame per component, resumed from the merged states,
	// restricted to the component's centers and (via the pool gate) its
	// workers. Fixed result slots keep the merge deterministic at every
	// parallelism.
	games := make([]*Game, nComp)
	solus := make([]Result, nComp)
	// Per-component provenance logs, created upfront in component order —
	// the same determinism contract as the phase-A shard logs.
	provLogs := make([]*provenance.GameLog, nComp)
	if cfg.Ledger != nil {
		for k := range provLogs {
			provLogs[k] = cfg.Ledger.NewGameLog(provenance.StageExchange, k)
		}
	}
	runComp := func(k int) {
		bcfg := cfg.Config
		bcfg.members = members[k]
		bcfg.poolMask = compMask
		bcfg.poolBit = uint64(k)
		bcfg.Parallelism = innerPar
		bcfg.Prov = provLogs[k]
		bcfg.resume = &resumeState{transfers: compTransfers[k], memo: compMemo[k]}
		g := NewGame(in, merged, bcfg)
		for g.Step() {
		}
		solus[k] = g.Finish()
		games[k] = g
	}
	if compPar <= 1 {
		for k := 0; k < nComp; k++ {
			runComp(k)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(compPar)
		for w := 0; w < compPar; w++ {
			go func() {
				defer wg.Done()
				for {
					k := int(next.Add(1) - 1)
					if k >= nComp {
						return
					}
					runComp(k)
				}
			}()
		}
		wg.Wait()
	}

	return mergeExchange(in, cfg, merged, shardOf, compOf, games, solus, priorTransfers)
}

// mergeExchange interleaves the per-component exchange sequences into the
// serialized exchange game's exact output. Structurally this is
// mergeIndependent with components in place of shards and the merged
// phase-A state in place of phase 1: real steps merge by the live global
// min-(ρ, center ID), the global ρ vector/assigned total replay from
// per-step deltas (component traces carry component-local Φ/U_ρ/Rhos —
// recomputed globally here), stranded recipients synthesize their reject
// steps in final-(ρ, id) order gated by union-pool liveness, and the
// transfer log extends the prior log in merged step order.
func mergeExchange(in *model.Instance, cfg ShardConfig, merged []assign.Result,
	shardOf, compOf []int, games []*Game, solus []Result,
	priorTransfers []model.Transfer) Result {

	n := len(in.Centers)
	nComp := len(games)

	rho := make([]float64, n)
	assignedTotal := 0
	prevAssigned := make([]int, nComp)
	for ci := range in.Centers {
		a := countTasks(merged[ci].Routes)
		rho[ci] = metrics.Ratio(a, len(in.Centers[ci].Tasks))
		assignedTotal += a
		prevAssigned[compOf[shardOf[ci]]] += a
	}

	// Stranded recipients of each component, ordered by their FINAL ρ (the
	// component pool died under them; their ratio never moves again).
	stranded := make([][]model.CenterID, nComp)
	for k := 0; k < nComp; k++ {
		stranded[k] = append(stranded[k], games[k].recipients...)
		fin := games[k].rhoVec
		sort.Slice(stranded[k], func(i, j int) bool {
			a, b := stranded[k][i], stranded[k][j]
			if fin[a] != fin[b] {
				return fin[a] < fin[b]
			}
			return a < b
		})
	}

	pos := make([]int, nComp)
	spos := make([]int, nComp)
	poolLive := func() bool {
		for k := 0; k < nComp; k++ {
			if pos[k] < len(solus[k].Trace) || games[k].pool.len() > 0 {
				return true
			}
		}
		return false
	}

	totalSteps := 0
	for k := 0; k < nComp; k++ {
		totalSteps += len(solus[k].Trace) + len(stranded[k])
	}
	trace := make([]TraceStep, 0, totalSteps)
	newTransfers := make([]model.Transfer, 0, totalSteps)
	var rhos slab.Arena[float64]
	rhos.Reserve(totalSteps * n)
	for {
		best, bestSynth := -1, false
		var bestR model.CenterID
		for k := 0; k < nComp; k++ {
			var r model.CenterID
			var synth bool
			switch {
			case pos[k] < len(solus[k].Trace):
				r = solus[k].Trace[pos[k]].Recipient
			case spos[k] < len(stranded[k]):
				r, synth = stranded[k][spos[k]], true
			default:
				continue
			}
			if best < 0 || rho[r] < rho[bestR] || (rho[r] == rho[bestR] && r < bestR) {
				best, bestR, bestSynth = k, r, synth
			}
		}
		if best < 0 {
			break
		}
		var step TraceStep
		if bestSynth {
			if !poolLive() {
				break
			}
			spos[best]++
			step = TraceStep{Recipient: bestR, Accepted: false,
				RhoBefore: rho[bestR], RhoAfter: rho[bestR]}
		} else {
			step = solus[best].Trace[pos[best]]
			pos[best]++
			assignedTotal += step.Assigned - prevAssigned[best]
			prevAssigned[best] = step.Assigned
			rho[step.Recipient] = step.RhoAfter
			if step.Accepted {
				newTransfers = append(newTransfers,
					model.Transfer{Src: step.Source, Dst: step.Recipient, Worker: step.Worker})
			}
		}
		rv := rhos.Copy(rho)
		step.Iteration = len(trace) + 1
		step.Assigned = assignedTotal
		step.Rhos = rv
		step.Unfairness = metrics.Unfairness(rv)
		step.Phi = metrics.Phi(rv)
		trace = append(trace, step)
	}

	if len(trace) == 0 {
		trace = nil
	}

	sol := model.NewSolution(in)
	for ci := range in.Centers {
		sol.PerCenter[ci].Routes = solus[compOf[shardOf[ci]]].Solution.PerCenter[ci].Routes
	}
	// Nil-preserving concatenation: a run with no transfers at all must
	// leave Transfers nil, exactly like the serialized game's Finish.
	sol.Transfers = append(append([]model.Transfer(nil), priorTransfers...), newTransfers...)

	res := Result{Solution: sol, Trace: trace, Iterations: len(trace)}
	// Mirror Game.Finish's memo exposure: the component games' end-state
	// caches merge per center (each center is cached by exactly one
	// component). Note the serialized game may cache strictly more — under
	// PruneOff its candidate lists span other components' pools — but every
	// missing entry falls back to a fresh trial in VerifyEquilibrium.
	if cfg.Scope != LeftoverOnly && !cfg.noMemo {
		anyMemo := false
		outMemo := make([]map[model.WorkerID]assign.Result, n)
		for ci := range in.Centers {
			if m := games[compOf[shardOf[ci]]].memo[ci]; m != nil {
				outMemo[ci] = m
				anyMemo = true
			}
		}
		if anyMemo {
			res.trialMemo = outMemo
		}
	}
	return res
}
