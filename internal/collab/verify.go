package collab

import (
	"fmt"

	"imtao/internal/assign"
	"imtao/internal/metrics"
	"imtao/internal/model"
)

// VerifyEquilibrium checks that a collaboration outcome is a fixed point of
// the best-response dynamics of Algorithm 3: for every center whose ratio is
// below one, no single additional available worker would strictly raise its
// assignment ratio under the given assigner. It returns nil at equilibrium
// and a descriptive error naming the first improving deviation otherwise.
//
// The available pool is reconstructed from the solution: every worker that
// appears in no route is available (from its home center).
func VerifyEquilibrium(in *model.Instance, sol *model.Solution, assigner Assigner) error {
	if assigner == nil {
		assigner = assign.Sequential
	}
	used := make(map[model.WorkerID]bool)
	borrowedBy := make(map[model.CenterID][]model.WorkerID)
	for ci := range sol.PerCenter {
		for _, r := range sol.PerCenter[ci].Routes {
			used[r.Worker] = true
		}
	}
	for _, tr := range sol.Transfers {
		borrowedBy[tr.Dst] = append(borrowedBy[tr.Dst], tr.Worker)
	}
	var pool []model.WorkerID
	for _, w := range in.Workers {
		if !used[w.ID] && !isBorrowed(sol.Transfers, w.ID) {
			pool = append(pool, w.ID)
		}
	}

	for ci := range in.Centers {
		center := in.Center(model.CenterID(ci))
		assigned := sol.PerCenter[ci].AssignedCount()
		rho := metrics.Ratio(assigned, len(center.Tasks))
		if rho >= 1 {
			continue
		}
		// The center's current worker set: own workers not lent out, plus
		// its borrowed workers.
		lent := make(map[model.WorkerID]bool)
		for _, tr := range sol.Transfers {
			if tr.Src == model.CenterID(ci) {
				lent[tr.Worker] = true
			}
		}
		var workers []model.WorkerID
		for _, w := range center.Workers {
			if !lent[w] {
				workers = append(workers, w)
			}
		}
		workers = append(workers, borrowedBy[model.CenterID(ci)]...)

		for _, cand := range pool {
			if in.Worker(cand).Home == model.CenterID(ci) {
				continue
			}
			trial := assigner(in, center, append(append([]model.WorkerID(nil), workers...), cand), center.Tasks)
			newRho := metrics.Ratio(trial.AssignedCount(), len(center.Tasks))
			if newRho > rho+rhoEps {
				return fmt.Errorf(
					"collab: center %d can improve ρ %.4f → %.4f by borrowing worker %d — not an equilibrium",
					ci, rho, newRho, cand)
			}
		}
	}
	return nil
}

func isBorrowed(transfers []model.Transfer, w model.WorkerID) bool {
	for _, tr := range transfers {
		if tr.Worker == w {
			return true
		}
	}
	return false
}
