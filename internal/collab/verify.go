package collab

import (
	"fmt"

	"imtao/internal/assign"
	"imtao/internal/metrics"
	"imtao/internal/model"
)

// VerifyEquilibrium checks that a collaboration outcome is a fixed point of
// the best-response dynamics of Algorithm 3: for every center whose ratio is
// below one, no single additional available worker would strictly raise its
// assignment ratio under the given assigner. It returns nil at equilibrium
// and a descriptive error naming the first improving deviation otherwise.
//
// The available pool is reconstructed from the solution: every worker that
// appears in no route is available (from its home center).
//
// With a nil or assign.Sequential assigner the verifier uses the same exact
// accelerations as Run: candidates outside a center's admission slack are
// skipped (their deviation provably cannot improve ρ), and the rest are
// evaluated by prefix-resume against one baseline run per center instead of
// a full re-assignment each. The verdict is identical either way.
func VerifyEquilibrium(in *model.Instance, sol *model.Solution, assigner Assigner) error {
	return verifyEquilibrium(in, sol, assigner, nil)
}

// VerifyEquilibrium checks the run's own solution, reusing the trial cache
// that survived the game: a center that dropped out evaluated every pool
// candidate against its final state in its last turn, which is exactly the
// deviation the verifier probes, so most trials come from the cache instead
// of re-running the assigner. Cache misses (e.g. workers returned to the
// pool after the center's last turn) fall back to fresh evaluation; the
// verdict is identical to the package-level VerifyEquilibrium.
func (r *Result) VerifyEquilibrium(in *model.Instance, assigner Assigner) error {
	return verifyEquilibrium(in, r.Solution, assigner, r.trialMemo)
}

func verifyEquilibrium(in *model.Instance, sol *model.Solution, assigner Assigner,
	memo []map[model.WorkerID]assign.Result) error {
	seq := isSequentialAssigner(assigner)
	if assigner == nil {
		assigner = assign.Sequential
	}
	in.PrepareMetric()
	used := make(map[model.WorkerID]bool)
	borrowedBy := make(map[model.CenterID][]model.WorkerID)
	for ci := range sol.PerCenter {
		for _, r := range sol.PerCenter[ci].Routes {
			used[r.Worker] = true
		}
	}
	for _, tr := range sol.Transfers {
		borrowedBy[tr.Dst] = append(borrowedBy[tr.Dst], tr.Worker)
	}
	var pool []model.WorkerID
	for _, w := range in.Workers {
		if !used[w.ID] && !isBorrowed(sol.Transfers, w.ID) {
			pool = append(pool, w.ID)
		}
	}

	for ci := range in.Centers {
		center := in.Center(model.CenterID(ci))
		assigned := sol.PerCenter[ci].AssignedCount()
		rho := metrics.Ratio(assigned, len(center.Tasks))
		if rho >= 1 {
			continue
		}
		// The center's current worker set: own workers not lent out, plus
		// its borrowed workers.
		lent := make(map[model.WorkerID]bool)
		for _, tr := range sol.Transfers {
			if tr.Src == model.CenterID(ci) {
				lent[tr.Worker] = true
			}
		}
		var workers []model.WorkerID
		for _, w := range center.Workers {
			if !lent[w] {
				workers = append(workers, w)
			}
		}
		workers = append(workers, borrowedBy[model.CenterID(ci)]...)

		// Sequential-only accelerations: the admission slack prunes
		// candidates that cannot take any first task, and the remaining
		// deviations resume from one baseline run instead of re-running the
		// whole worker set each (both exact — DESIGN.md §11).
		slack := 0.0
		var runner *assign.TrialRunner
		if seq {
			slack = assign.AdmissionSlack(in, center, center.Tasks)
		}

		for _, cand := range pool {
			if in.Worker(cand).Home == model.CenterID(ci) {
				continue
			}
			if seq && !assign.WorkerAdmissible(in, center, cand, slack) {
				continue
			}
			trial, cached := assign.Result{}, false
			if ci < len(memo) && memo[ci] != nil {
				trial, cached = memo[ci][cand]
			}
			if !cached {
				if seq {
					if runner == nil {
						baseline := assigner(in, center, workers, center.Tasks)
						if base, ok := assign.NewTrialBase(in, center, workers, baseline.Routes, baseline.LeftTasks); ok {
							runner = base.NewRunner()
							defer runner.Release()
						}
					}
					if runner != nil {
						trial = runner.Trial(cand)
					} else {
						trial = assigner(in, center, append(append([]model.WorkerID(nil), workers...), cand), center.Tasks)
					}
				} else {
					trial = assigner(in, center, append(append([]model.WorkerID(nil), workers...), cand), center.Tasks)
				}
			}
			newRho := metrics.Ratio(trial.AssignedCount(), len(center.Tasks))
			if newRho > rho+rhoEps {
				return fmt.Errorf(
					"collab: center %d can improve ρ %.4f → %.4f by borrowing worker %d — not an equilibrium",
					ci, rho, newRho, cand)
			}
		}
	}
	return nil
}

func isBorrowed(transfers []model.Transfer, w model.WorkerID) bool {
	for _, tr := range transfers {
		if tr.Worker == w {
			return true
		}
	}
	return false
}
