package collab

import (
	"math/rand"
	"reflect"
	"testing"

	"imtao/internal/assign"
	"imtao/internal/geo"
	"imtao/internal/model"
	"imtao/internal/routing"
)

// pairedBlobsInstance builds `pairs` metro regions, each a contiguous
// 1200-wide strip, with the strips separated by far more than the admission
// radius. Splitting each strip in two (Shards = 2·pairs) yields a non-empty
// interference cut inside every strip but none across strips — a conflict
// graph with `pairs` components of two shards each, the geometry the
// component-parallel reconcile exists for.
func pairedBlobsInstance(rng *rand.Rand, pairs int) *model.Instance {
	const spacing = 40000.0
	in := &model.Instance{
		Speed:  300,
		Bounds: geo.NewRect(geo.Pt(0, 0), geo.Pt(float64(pairs)*spacing+1200, 1000)),
	}
	for g := 0; g < pairs; g++ {
		ox := float64(g) * spacing
		first := len(in.Centers)
		nc := 4 + rng.Intn(3)
		for i := 0; i < nc; i++ {
			in.Centers = append(in.Centers, model.Center{
				ID:  model.CenterID(len(in.Centers)),
				Loc: geo.Pt(ox+rng.Float64()*1200, rng.Float64()*1000),
			})
		}
		nearest := func(p geo.Point) model.CenterID {
			best, bd := first, p.Dist2(in.Centers[first].Loc)
			for ci := first + 1; ci < len(in.Centers); ci++ {
				if d := p.Dist2(in.Centers[ci].Loc); d < bd {
					best, bd = ci, d
				}
			}
			return model.CenterID(best)
		}
		for i, nt := 0, 30+rng.Intn(30); i < nt; i++ {
			p := geo.Pt(ox+rng.Float64()*1200, rng.Float64()*1000)
			c := nearest(p)
			id := model.TaskID(len(in.Tasks))
			in.Tasks = append(in.Tasks, model.Task{ID: id, Center: c, Loc: p, Expiry: 1 + rng.Float64(), Reward: 1})
			in.Centers[c].Tasks = append(in.Centers[c].Tasks, id)
		}
		for i, nw := 0, 10+rng.Intn(10); i < nw; i++ {
			p := geo.Pt(ox+rng.Float64()*1200, rng.Float64()*1000)
			c := nearest(p)
			id := model.WorkerID(len(in.Workers))
			in.Workers = append(in.Workers, model.Worker{ID: id, Home: c, Loc: p, MaxT: 4})
			in.Centers[c].Workers = append(in.Centers[c].Workers, id)
		}
	}
	return in
}

// TestReconcileComponentsBitIdentical is the property test of the
// component-parallel reconcile (satellite of DESIGN.md §16): on non-empty
// cuts whose conflict graph splits into several components, the concurrent
// reconcile must reproduce the serialized PR 8 exchange bit-for-bit —
// routes, transfer log (order included), iteration count, and the full
// trace with its Φ segments — at every ShardParallelism, and the outcome
// must still be a verified global Nash equilibrium.
func TestReconcileComponentsBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	multiComp := 0
	for trial := 0; trial < 6; trial++ {
		pairs := 2 + rng.Intn(2)
		in := pairedBlobsInstance(rng, pairs)
		p1 := phase1(in)
		k := 2 * pairs

		scfg := ShardConfig{Config: seqConfig(), Shards: k, Seed: 7}
		scfg.serialReconcile = true
		serial, srep := RunSharded(in, p1, scfg)
		if srep.EmptyCut {
			t.Fatalf("trial %d: empty cut — instance not exercising the reconcile", trial)
		}
		if srep.Components > 1 {
			multiComp++
		}

		for _, par := range []int{0, 1, 2, 4} {
			got, rep := RunSharded(in, p1, ShardConfig{
				Config: seqConfig(), Shards: k, Seed: 7, ShardParallelism: par,
			})
			if rep.Components != srep.Components || rep.Colors != srep.Colors {
				t.Fatalf("trial %d par=%d: component/color profile diverged: %d/%d vs %d/%d",
					trial, par, rep.Components, rep.Colors, srep.Components, srep.Colors)
			}
			if !reflect.DeepEqual(got.Solution, serial.Solution) {
				t.Fatalf("trial %d par=%d: solutions diverged from serialized exchange", trial, par)
			}
			if got.Iterations != serial.Iterations {
				t.Fatalf("trial %d par=%d: iterations %d vs %d", trial, par, got.Iterations, serial.Iterations)
			}
			gt, st := stripEngineDiagnostics(got.Trace), stripEngineDiagnostics(serial.Trace)
			if !reflect.DeepEqual(gt, st) {
				for i := range gt {
					if !reflect.DeepEqual(gt[i], st[i]) {
						t.Fatalf("trial %d par=%d: traces diverge at step %d:\n  component: %+v\n  serialized: %+v",
							trial, par, i, gt[i], st[i])
					}
				}
				t.Fatalf("trial %d par=%d: trace lengths diverge: %d vs %d", trial, par, len(gt), len(st))
			}
			// Φ per-step equality is implied by the trace equality above;
			// assert the segment boundaries agree too so a future trace
			// change cannot silently drop the invariant.
			if !reflect.DeepEqual(rep.ShardIterations, srep.ShardIterations) ||
				rep.ExchangeIterations != srep.ExchangeIterations {
				t.Fatalf("trial %d par=%d: segment boundaries diverged", trial, par)
			}
			if err := routing.SolutionFeasible(in, got.Solution); err != nil {
				t.Fatalf("trial %d par=%d: %v", trial, par, err)
			}
			if err := got.VerifyEquilibrium(in, nil); err != nil {
				t.Fatalf("trial %d par=%d: %v", trial, par, err)
			}
		}
	}
	if multiComp == 0 {
		t.Fatal("no trial produced a multi-component conflict graph — the concurrent merge never ran")
	}
}

// TestShardComponentsAndColoring pins the graph helpers: component labels
// are canonical (first appearance), coloring is proper, and both are
// consistent with the adjacency.
func TestShardComponentsAndColoring(t *testing.T) {
	// 0–1 2–3–4 5 : two edges + a path + an isolated vertex.
	var adj [64]uint64
	link := func(a, b int) {
		adj[a] |= 1 << b
		adj[b] |= 1 << a
	}
	link(0, 1)
	link(2, 3)
	link(3, 4)

	compOf, nComp := shardComponents(&adj, 6)
	if nComp != 3 || !reflect.DeepEqual(compOf, []int{0, 0, 1, 1, 1, 2}) {
		t.Fatalf("components = %v (n=%d)", compOf, nComp)
	}

	colors, nColors := greedyColorShards(&adj, 6)
	if nColors < 2 || nColors > 3 {
		t.Fatalf("chromatic estimate %d for a path + edge", nColors)
	}
	for s := 0; s < 6; s++ {
		nb := adj[s]
		for tgt := 0; tgt < 6; tgt++ {
			if nb&(1<<tgt) != 0 && tgt != s && colors[s] == colors[tgt] {
				t.Fatalf("improper coloring: shards %d and %d are adjacent with color %d", s, tgt, colors[s])
			}
		}
	}

	// A complete graph needs n colors and forms one component.
	var kn [64]uint64
	for a := 0; a < 4; a++ {
		for b := a + 1; b < 4; b++ {
			kn[a] |= 1 << b
			kn[b] |= 1 << a
		}
	}
	if _, n := shardComponents(&kn, 4); n != 1 {
		t.Fatalf("K4 components = %d", n)
	}
	if _, c := greedyColorShards(&kn, 4); c != 4 {
		t.Fatalf("K4 colors = %d", c)
	}
}

// TestReconcileResumedGameStepZeroAlloc extends the §13 zero-alloc gate to
// the exchange-subgame shape the component reconcile runs: a game resumed
// from a prior transfer log, member-restricted and pool-masked. A warmed
// steady-state Step must not touch the heap.
func TestReconcileResumedGameStepZeroAlloc(t *testing.T) {
	in := skewedInstance(200)
	p1 := phase1(in)
	cfg := Config{Scope: FullReassign, Assigner: assign.Sequential, Parallelism: 1}

	// A prefix of the unsharded run's transfer log stands in for the
	// phase-A transfers the reconcile resumes from.
	full := Run(in, p1, cfg)
	prior := full.Solution.Transfers[:len(full.Solution.Transfers)/4]

	members := make([]model.CenterID, len(in.Centers))
	for i := range members {
		members[i] = model.CenterID(i)
	}
	mask := make([]uint64, len(in.Workers))
	for i := range mask {
		mask[i] = 1
	}
	cfg.members, cfg.poolMask, cfg.poolBit = members, mask, 1
	cfg.resume = &resumeState{transfers: append([]model.Transfer(nil), prior...)}
	g := NewGame(in, p1, cfg)
	for i := 0; i < 60; i++ {
		if !g.Step() {
			t.Fatalf("game over after %d iterations — instance too small to meter", i)
		}
	}
	const runs = 30
	g.Reserve(runs + 2)
	allocs := testing.AllocsPerRun(runs, func() {
		if !g.Step() {
			t.Fatalf("game ended mid-measurement")
		}
	})
	if allocs != 0 {
		t.Fatalf("resumed reconcile-shape iteration allocates: %.2f allocs/iter (want 0)", allocs)
	}
}
