package collab

import (
	"math/rand"
	"strings"
	"testing"
)

func TestVerifyEquilibriumAcceptsRunOutput(t *testing.T) {
	rng := rand.New(rand.NewSource(141))
	checked := 0
	for trial := 0; trial < 20; trial++ {
		in := randomInstance(rng, 2+rng.Intn(4), 4+rng.Intn(10), 8+rng.Intn(30))
		p1 := phase1(in)
		out := Run(in, p1, seqConfig())
		if err := VerifyEquilibrium(in, out.Solution, nil); err != nil {
			t.Fatalf("trial %d: Algorithm 3 outcome rejected: %v", trial, err)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no trials ran")
	}
}

func TestVerifyEquilibriumRejectsPhase1WhenImprovable(t *testing.T) {
	// On the Fig. 1 scenario the phase-1 (no collaboration) solution is NOT
	// an equilibrium: center 2 can improve by borrowing c0's spare worker.
	in := paperFig1()
	p1 := phase1(in)
	sol := NoCollaboration(in, p1)
	err := VerifyEquilibrium(in, sol, nil)
	if err == nil {
		t.Fatal("improvable state accepted as equilibrium")
	}
	if !strings.Contains(err.Error(), "can improve") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestVerifyEquilibriumFullyAssigned(t *testing.T) {
	// A solution with every center at ρ = 1 is trivially an equilibrium.
	rng := rand.New(rand.NewSource(142))
	in := randomInstance(rng, 2, 12, 4) // plenty of workers
	p1 := phase1(in)
	out := Run(in, p1, seqConfig())
	if out.Solution.AssignedCount() == len(in.Tasks) {
		if err := VerifyEquilibrium(in, out.Solution, nil); err != nil {
			t.Fatal(err)
		}
	}
}
