package collab

import (
	"math/bits"

	"imtao/internal/assign"
	"imtao/internal/game"
	"imtao/internal/metrics"
	"imtao/internal/model"
)

// CMCTAGame adapts a (small) CMCTA collaboration state to the generic
// game.Game interface of paper §V-C: players are the recipient centers,
// a player's strategy is a borrowing worker set BWS(c) — a subset of the
// available worker pool, encoded as a bitmask index — and utilities are the
// UUP of Eq. 4 evaluated by actually re-running the per-center assigner
// under the joint strategy.
//
// When two centers claim the same pool worker, the worker stays home (the
// platform cannot dispatch one worker twice); both claimants simply do not
// receive it. Strategy spaces are exponential in the pool size, so the
// adapter enforces a pool cap; it exists for analysis and testing, while
// Algorithm 3 (Run) is the scalable path.
type CMCTAGame struct {
	in       *model.Instance
	assigner Assigner
	// players[i] is the center id of player i.
	players []model.CenterID
	// pool is the ordered available worker set; bit k of a strategy mask
	// selects pool[k].
	pool []model.WorkerID
	// baseline ratios for non-player centers (they keep their phase-1
	// assignment).
	baseRho []float64
	// ownWorkers[i] lists player i's own workers (from phase 1).
	ownWorkers map[model.CenterID][]model.WorkerID

	// memo caches per-player ratios: key = player index, received mask.
	memo map[memoKey]float64
}

type memoKey struct {
	player int
	mask   int
}

// MaxPoolSize bounds the strategy-space exponent of the adapter.
const MaxPoolSize = 12

// NewCMCTAGame builds the adapter from a phase-1 state. It returns nil when
// the available pool exceeds MaxPoolSize (use Run / Algorithm 3 instead).
func NewCMCTAGame(in *model.Instance, phase1 []assign.Result, assigner Assigner) *CMCTAGame {
	if assigner == nil {
		assigner = assign.Sequential
	}
	g := &CMCTAGame{
		in:         in,
		assigner:   assigner,
		baseRho:    make([]float64, len(in.Centers)),
		ownWorkers: make(map[model.CenterID][]model.WorkerID),
		memo:       make(map[memoKey]float64),
	}
	for ci := range in.Centers {
		assigned := 0
		for _, r := range phase1[ci].Routes {
			assigned += len(r.Tasks)
		}
		g.baseRho[ci] = metrics.Ratio(assigned, len(in.Centers[ci].Tasks))
		if g.baseRho[ci] < 1 {
			g.players = append(g.players, model.CenterID(ci))
		}
		g.ownWorkers[model.CenterID(ci)] = append([]model.WorkerID(nil), in.Centers[ci].Workers...)
		for _, w := range phase1[ci].LeftWorkers {
			g.pool = append(g.pool, w)
		}
	}
	if len(g.pool) > MaxPoolSize {
		return nil
	}
	return g
}

// Players returns the recipient centers acting as players.
func (g *CMCTAGame) Players() []model.CenterID { return g.players }

// Pool returns the available worker pool indexed by strategy bits.
func (g *CMCTAGame) Pool() []model.WorkerID { return g.pool }

// NumPlayers implements game.Game.
func (g *CMCTAGame) NumPlayers() int { return len(g.players) }

// NumStrategies implements game.Game: every subset of the pool.
func (g *CMCTAGame) NumStrategies(int) int { return 1 << len(g.pool) }

// Utility implements game.Game with the UUP of Eq. 4 under the joint
// strategy: ρ of the player minus the mean ρ of all other centers.
func (g *CMCTAGame) Utility(i int, joint []int) float64 {
	rhos := g.ratios(joint)
	return metrics.UUP(rhos, int(g.players[i]))
}

// Unfairness returns the platform unfairness U_ρ under a joint strategy.
func (g *CMCTAGame) Unfairness(joint []int) float64 {
	return metrics.Unfairness(g.ratios(joint))
}

// AssignedCount returns the total assigned tasks under a joint strategy.
func (g *CMCTAGame) AssignedCount(joint []int) int {
	rhos := g.ratios(joint)
	total := 0.0
	for ci, r := range rhos {
		total += r * float64(len(g.in.Centers[ci].Tasks))
	}
	return int(total + 0.5)
}

// ratios computes all centers' ρ under the joint strategy, resolving worker
// conflicts (a worker claimed by more than one player is dispatched to no
// one) and re-running the assigner for players whose effective borrow set is
// non-empty.
func (g *CMCTAGame) ratios(joint []int) []float64 {
	rhos := append([]float64(nil), g.baseRho...)
	// Count claims per pool worker.
	claims := make([]int, len(g.pool))
	for _, mask := range joint {
		for k := 0; k < len(g.pool); k++ {
			if mask&(1<<k) != 0 {
				claims[k]++
			}
		}
	}
	for pi, ci := range g.players {
		mask := joint[pi]
		effective := 0
		for k := 0; k < len(g.pool); k++ {
			bit := 1 << k
			if mask&bit != 0 && claims[k] == 1 && !g.isOwn(ci, g.pool[k]) {
				effective |= bit
			}
		}
		if effective == 0 {
			continue
		}
		key := memoKey{player: pi, mask: effective}
		if rho, ok := g.memo[key]; ok {
			rhos[ci] = rho
			continue
		}
		workers := append([]model.WorkerID(nil), g.ownWorkers[ci]...)
		for k := 0; k < len(g.pool); k++ {
			if effective&(1<<k) != 0 {
				workers = append(workers, g.pool[k])
			}
		}
		c := g.in.Center(ci)
		res := g.assigner(g.in, c, workers, c.Tasks)
		rho := metrics.Ratio(res.AssignedCount(), len(c.Tasks))
		g.memo[key] = rho
		rhos[ci] = rho
	}
	return rhos
}

func (g *CMCTAGame) isOwn(c model.CenterID, w model.WorkerID) bool {
	return g.in.Worker(w).Home == c
}

// StrategySize returns the number of workers selected by a strategy mask —
// handy for interpreting dynamics traces.
func StrategySize(mask int) int { return bits.OnesCount(uint(mask)) }

// Verify that CMCTAGame satisfies the game interface.
var _ game.Game = (*CMCTAGame)(nil)
