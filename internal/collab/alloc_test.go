package collab

import (
	"math/rand"
	"testing"

	"imtao/internal/assign"
	"imtao/internal/geo"
	"imtao/internal/model"
	"imtao/internal/provenance"
)

// The zero-allocation gates of DESIGN.md §13: a warmed-up serial game
// iteration, and the trial engine's rebind/trial cycle, must not touch the
// heap. The protocol mirrors real steady state — warm the engine until its
// recycled buffers reach high-water capacity, reserve the per-iteration
// output tail, then meter with testing.AllocsPerRun.

// skewedInstance builds an instance with a long collaboration game: one
// rich center holding a large spare workforce next to several task-heavy
// starved centers. Every spare worker has MaxT 1, so each accepted dispatch
// raises the recipient's assigned count by exactly one — the game runs for
// roughly one iteration per spare worker, giving the metering loop a long
// accepted-iteration steady state (random balanced instances converge in a
// handful of iterations).
func skewedInstance(spare int) *model.Instance {
	rng := rand.New(rand.NewSource(42))
	in := &model.Instance{
		Speed:  1,
		Bounds: geo.NewRect(geo.Pt(0, 0), geo.Pt(100, 100)),
	}
	addCenter := func(x, y float64) model.CenterID {
		id := model.CenterID(len(in.Centers))
		in.Centers = append(in.Centers, model.Center{ID: id, Loc: geo.Pt(x, y)})
		return id
	}
	addTask := func(c model.CenterID, x, y float64) {
		id := model.TaskID(len(in.Tasks))
		in.Tasks = append(in.Tasks, model.Task{ID: id, Center: c, Loc: geo.Pt(x, y), Expiry: 1e4, Reward: 1})
		in.Centers[c].Tasks = append(in.Centers[c].Tasks, id)
	}
	addWorker := func(c model.CenterID, x, y float64) {
		id := model.WorkerID(len(in.Workers))
		in.Workers = append(in.Workers, model.Worker{ID: id, Home: c, Loc: geo.Pt(x, y), MaxT: 1})
		in.Centers[c].Workers = append(in.Centers[c].Workers, id)
	}
	rich := addCenter(50, 50)
	for i := 0; i < spare+5; i++ {
		addWorker(rich, 45+10*rng.Float64(), 45+10*rng.Float64())
	}
	for i := 0; i < 5; i++ {
		addTask(rich, 45+10*rng.Float64(), 45+10*rng.Float64())
	}
	corners := [][2]float64{{15, 15}, {85, 15}, {15, 85}, {85, 85}}
	for _, xy := range corners {
		c := addCenter(xy[0], xy[1])
		for i := 0; i < 2; i++ {
			addWorker(c, xy[0]+5*rng.Float64(), xy[1]+5*rng.Float64())
		}
		for i := 0; i < spare; i++ {
			addTask(c, xy[0]-5+10*rng.Float64(), xy[1]-5+10*rng.Float64())
		}
	}
	return in
}

// steadyGame builds a game big enough to have a long accepted-iteration
// steady state, warms it, and returns it ready for metering.
func steadyGame(t *testing.T, cfg Config) *Game {
	t.Helper()
	in := skewedInstance(200)
	p1 := phase1(in)
	g := NewGame(in, p1, cfg)
	// Warm until the per-center promotion buffers, the trial base, the
	// runner arenas and the pool scratch have all hit their high-water
	// marks; the residual growth events (a borrowed worker pushing a
	// sorted set past its capacity) die out after the first stretch of
	// accepted iterations.
	for i := 0; i < 120; i++ {
		if !g.Step() {
			t.Fatalf("game over after %d iterations — instance too small to meter", i)
		}
	}
	return g
}

func TestGameStepSteadyStateZeroAlloc(t *testing.T) {
	g := steadyGame(t, Config{Scope: FullReassign, Assigner: assign.Sequential, Parallelism: 1})
	const runs = 30
	g.Reserve(runs + 2)
	allocs := testing.AllocsPerRun(runs, func() {
		if !g.Step() {
			t.Fatalf("game ended mid-measurement")
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state game iteration allocates: %.2f allocs/iter (want 0)", allocs)
	}
}

// TestTrialRunnerRebindTrialZeroAlloc pins the per-iteration trial cycle of
// the resume engine: Reset the base on the center's current assignment,
// Rebind the persistent runner, run a trial. After warm-up the whole cycle
// is allocation-free — every result slice comes from the runner's arenas.
func TestTrialRunnerRebindTrialZeroAlloc(t *testing.T) {
	in := seededInstance(9, 4, 120, 1200)
	in.PrepareMetric()
	center := in.Center(0)
	baseline := assign.Sequential(in, center, center.Workers, center.Tasks)
	base, ok := assign.NewTrialBase(in, center, center.Workers, baseline.Routes, baseline.LeftTasks)
	if !ok {
		t.Fatal("baseline does not line up with the serve order")
	}
	// A candidate homed elsewhere, so it is not in the baseline worker set.
	var cand model.WorkerID = -1
	for _, w := range in.Centers[1].Workers {
		cand = w
		break
	}
	if cand < 0 {
		t.Fatal("no foreign candidate available")
	}
	runner := base.NewRunner()
	defer runner.Release()
	for i := 0; i < 3; i++ { // grow arenas and the trial grid to high water
		runner.Rebind(base)
		runner.Trial(cand)
	}
	allocs := testing.AllocsPerRun(50, func() {
		runner.Rebind(base)
		r := runner.Trial(cand)
		if r.AssignedCount() < 0 {
			t.Fatal("impossible")
		}
	})
	if allocs != 0 {
		t.Fatalf("trial rebind+resume cycle allocates: %.2f allocs (want 0)", allocs)
	}
}

// TestGameStepProvenanceBoundedAlloc pins the enabled-path recording cost:
// with a decision ledger attached, a warmed steady-state iteration may only
// touch the heap for the ledger's own amortized arena growth — a small
// constant per iteration on average, not per trial (the per-candidate
// TrialRec and route-task payloads land in geometrically grown slabs).
func TestGameStepProvenanceBoundedAlloc(t *testing.T) {
	led := provenance.NewLedger()
	cfg := Config{Scope: FullReassign, Assigner: assign.Sequential, Parallelism: 1,
		Prov: led.NewGameLog(provenance.StageGame, -1)}
	g := steadyGame(t, cfg)
	const runs = 30
	g.Reserve(runs + 2)
	allocs := testing.AllocsPerRun(runs, func() {
		if !g.Step() {
			t.Fatalf("game ended mid-measurement")
		}
	})
	// The gate is deliberately loose against growth-spike timing, but tight
	// enough that accidental per-trial boxing (one alloc per candidate would
	// show up as tens per iteration here) fails immediately.
	const maxAllocs = 6
	if allocs > maxAllocs {
		t.Fatalf("provenance-enabled iteration allocates %.2f allocs/iter (gate %d)", allocs, maxAllocs)
	}
}
