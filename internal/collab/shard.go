package collab

// Region-sharded phase-2 engine (DESIGN.md §15–16). RunSharded partitions
// the centers into geographic shards with the voronoi task-weighted k-means
// machinery (or picks the count itself under ShardAuto — autotune.go),
// proves which workers can interact with which shards (the worker-overlap
// interference graph), plays one best-response game per shard concurrently
// over the home-shard workers, and reconciles the boundary workers with an
// exchange game resumed from the merged shard states — run per conflict
// component concurrently and replayed into the serialized order when the
// conflict graph is disconnected (reconcile.go), as one serialized game
// otherwise. The reconcile game runs the ordinary best-response dynamics to
// a fixed point, so the final state is a global pure Nash equilibrium
// (Result.VerifyEquilibrium); when the interference cut is empty the shard
// games ARE the global game and RunSharded reconstructs the exact
// reference sequence — routes, transfers and trace bit-identical to
// Run/RunReference.

import (
	"math/bits"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"imtao/internal/assign"
	"imtao/internal/geo"
	"imtao/internal/index"
	"imtao/internal/metrics"
	"imtao/internal/model"
	"imtao/internal/obs"
	"imtao/internal/provenance"
	"imtao/internal/slab"
	"imtao/internal/voronoi"
)

// Shard-engine metrics, aggregated across every sharded run of the process.
var (
	mShardGames = obs.Default.Counter("imtao_shard_games_total",
		"phase-A shard games played (one per shard per sharded run)")
	mShardGameSeconds = obs.Default.Quantile("imtao_shard_game_seconds",
		"wall time of one phase-A shard game, pool-queue wait included; the "+
			"p99/p50 spread is the shard skew straggler view")
	mShardIterSeconds = obs.Default.Quantile("imtao_shard_iter_seconds",
		"wall time of one shard-game iteration across every shard of every "+
			"sharded run — the per-shard counterpart of imtao_collab_iter_seconds")
	mShardBoundary = obs.Default.Gauge("imtao_shard_boundary_workers",
		"boundary workers of the most recent sharded run — workers admissible "+
			"to recipient centers in more than one shard, settled by the "+
			"exchange game instead of a phase-A pool")
	mShardConflicts = obs.Default.Gauge("imtao_shard_conflict_edges",
		"interference-graph edges of the most recent sharded run — shard "+
			"pairs sharing at least one boundary worker")
	mShardSkew = obs.Default.Gauge("imtao_shard_skew",
		"max/mean phase-A shard game wall time of the most recent sharded "+
			"run — 1.0 is perfectly balanced shards")
	mExchangeIters = obs.Default.Counter("imtao_shard_exchange_iterations_total",
		"serialized exchange-round iterations of the boundary reconcile game")
	mExchangeTransfers = obs.Default.Counter("imtao_shard_exchange_transfers_total",
		"workforce dispatches accepted during boundary reconciliation")
	mShardColors = obs.Default.Gauge("imtao_shard_colors",
		"greedy chromatic number of the shard conflict graph in the most "+
			"recent sharded run — low colors mean a sparse cut whose boundary "+
			"reconcile parallelizes well")
	mShardLoadSkew = obs.Default.Gauge("imtao_shard_load_skew",
		"max/mean per-shard task load of the most recent sharded partition — "+
			"the static counterpart of the wall-time imtao_shard_skew gauge; "+
			"1.0 is a perfectly load-balanced partition")
	mShardAutoShards = obs.Default.Gauge("imtao_shard_autotune_shards",
		"shard count picked by the most recent ShardAuto probe")
	mShardAutoProbes = obs.Default.Gauge("imtao_shard_autotune_probes",
		"candidate ladder size of the most recent ShardAuto probe")
)

// ShardConfig configures a sharded collaboration run.
type ShardConfig struct {
	Config
	// Shards is the requested geographic shard count. Values above 64 are
	// clamped (the interference bitsets are one machine word — the clamp is
	// surfaced in ShardReport.ShardsRequested and a shard_clamp obs event);
	// duplicate center locations can reduce the effective count further.
	// ≤ 1 runs the unsharded engine, except ShardAuto (-1), which probes a
	// candidate ladder and picks the count minimizing the modeled critical
	// path (autotune.go).
	Shards int
	// Seed drives the k-means shard partition (voronoi.PartitionPoints):
	// the same seed always produces the same shard map.
	Seed int64
	// ShardParallelism bounds the goroutines playing phase-A shard games
	// concurrently. 0 means GOMAXPROCS; 1 plays the shards serially. The
	// output is bit-identical at every setting: each shard game is
	// deterministic and the results are merged in shard order. When shard
	// games run concurrently their inner trial parallelism is forced to 1.
	// The same bound drives the component-parallel boundary reconcile
	// (reconcile.go).
	ShardParallelism int
	// Ledger, when non-nil, receives the sharded run's full decision record:
	// one game log per phase-A shard (in shard order), then one exchange log
	// per reconcile component (in component order; a single serialized one
	// under serialReconcile or a caller iteration cap). The deterministic
	// log-creation order is what lets provenance.Replay re-derive the merge
	// interleave from the recorded per-step ρ values alone. The fallback
	// paths that run the unsharded engine record one global game log.
	Ledger *provenance.Ledger
	// serialReconcile forces the single serialized exchange game of
	// DESIGN.md §15 instead of the component-parallel reconcile. Test hook:
	// the reconcile_test property suite pins the two paths bit-identical.
	// MaxIterations > 0 implies it (per-component caps would diverge from
	// the serialized game's single global cap).
	serialReconcile bool
}

// ShardReport describes the partition and reconciliation work of one
// sharded run.
type ShardReport struct {
	// ShardsRequested is the caller's ShardConfig.Shards verbatim —
	// ShardAuto (-1) for an autotuned run, and possibly above the effective
	// count when the 64-shard interference-word clamp or duplicate center
	// locations reduced it.
	ShardsRequested int
	// Shards is the effective shard count; ShardOf maps each center to its
	// shard label.
	Shards  int
	ShardOf []int
	// ExclusiveWorkers can only ever interact with one shard, so their
	// phase-A placement is final; BoundaryWorkers are admissible to
	// recipient centers of two or more shards — phase A settles them
	// tentatively within their home shard and the exchange game re-contests
	// them globally. ConflictEdges counts shard pairs sharing at least one
	// boundary worker; EmptyCut reports a boundary-free partition — the
	// case where the shard games provably reproduce the global game.
	ExclusiveWorkers int
	BoundaryWorkers  int
	ConflictEdges    int
	EmptyCut         bool
	// Components and Colors describe the shard conflict graph: its connected
	// components (the unit of boundary-reconcile parallelism — non-adjacent
	// shard groups reconcile concurrently) and its greedy chromatic number
	// (the density diagnostic behind the autotune cost model; 1 when the cut
	// is empty). LoadSkew is max/mean per-shard task load of the partition —
	// the static skew the task-weighted partitioner minimizes.
	Components int
	Colors     int
	LoadSkew   float64
	// Auto carries the ShardAuto probe — the candidate ladder with per-count
	// interference stats and modeled costs, and the picked count. Nil unless
	// the run was requested with Shards: ShardAuto.
	Auto *ShardAutotune
	// ShardIterations and ShardWall are the per-shard phase-A iteration
	// counts and wall times, in shard order. With a non-empty cut the final
	// trace is the shard traces concatenated in this order followed by the
	// exchange-game steps, so these lengths segment it.
	ShardIterations []int
	ShardWall       []time.Duration
	// ExchangeIterations and ExchangeTransfers are the serialized boundary
	// reconcile game's iteration and accepted-dispatch counts (zero when the
	// cut is empty — reconciliation is skipped entirely).
	ExchangeIterations int
	ExchangeTransfers  int
}

// PlanShards partitions the instance's centers into at most shards
// geographic groups with the seeded task-weighted k-means partitioner
// (voronoi.PartitionWeightedPoints — weights are per-center task counts, so
// shard mass tracks game work rather than center count; a bounded rebalance
// pass then caps the residual load skew) and returns the center→shard
// labels plus the effective shard count. Deterministic per (instance,
// shards, seed).
func PlanShards(in *model.Instance, shards int, seed int64) ([]int, int) {
	pts := make([]geo.Point, len(in.Centers))
	weights := make([]float64, len(in.Centers))
	for i := range in.Centers {
		pts[i] = in.Centers[i].Loc
		weights[i] = float64(len(in.Centers[i].Tasks))
	}
	return voronoi.PartitionWeightedPoints(seed, pts, weights, shards)
}

// shardTaskLoads returns the per-shard task counts of a partition and their
// max/mean skew (1.0 when perfectly balanced; 0 mean degenerates to 0).
func shardTaskLoads(in *model.Instance, shardOf []int, nShards int) ([]float64, float64) {
	loads := make([]float64, nShards)
	var total float64
	for ci := range in.Centers {
		l := float64(len(in.Centers[ci].Tasks))
		loads[shardOf[ci]] += l
		total += l
	}
	if total == 0 {
		return loads, 0
	}
	var maxL float64
	for _, l := range loads {
		if l > maxL {
			maxL = l
		}
	}
	return loads, maxL * float64(nShards) / total
}

// interference is the worker-overlap analysis of a shard partition.
type interference struct {
	// mask[w] is the bitset of shards worker w can interact with: its home
	// shard plus every shard holding a recipient center it is admissible to.
	// Zero means w can never enter any pool (a used worker of a
	// non-recipient center) — it never circulates.
	mask      []uint64
	exclusive int
	boundary  int
	conflicts int
	// adj[s] is the conflict-graph adjacency bitset of shard s (its own bit
	// included): the union of the masks of every boundary worker touching s.
	// The component/coloring analysis of the parallel boundary reconcile
	// (reconcile.go) and the autotune cost model both read it.
	adj [64]uint64
}

// shardInterference computes the interference graph: which shards each
// potentially-poolable worker can interact with. A worker is poolable when
// it starts in the phase-1 leftover pool or is owned by a recipient center
// (whose own workers can be freed back into the pool by an accepted
// reassignment); a poolable worker touches shard S when its home center is
// in S or some recipient center of S admits it under the admission-slack
// check — the same physics bound the pruning engine uses, evaluated over
// the static FullReassign scope (or the initial, maximal leftover set for
// DC, whose slack only shrinks). Two shards conflict iff some worker
// touches both.
func shardInterference(in *model.Instance, phase1 []assign.Result,
	shardOf []int, scope Scope) interference {

	nW := len(in.Workers)
	inf := interference{mask: make([]uint64, nW)}

	recipient := make([]bool, len(in.Centers))
	for ci := range in.Centers {
		assigned := countTasks(phase1[ci].Routes)
		if metrics.Ratio(assigned, len(in.Centers[ci].Tasks)) < 1 {
			recipient[ci] = true
		}
	}

	// Poolable workers get their home-shard bit.
	for ci := range in.Centers {
		bit := uint64(1) << shardOf[ci]
		for _, w := range phase1[ci].LeftWorkers {
			inf.mask[w] |= bit
		}
		if recipient[ci] {
			for _, w := range in.Centers[ci].Workers {
				inf.mask[w] |= bit
			}
		}
	}

	// Candidate edges: recipient center → admissible poolable workers. With
	// a speed bound the scan per center is a grid range query of the same
	// conservatively inflated admission radius the game pool uses; otherwise
	// every poolable worker gets the exact travel-time check.
	var grid *index.Grid
	vmax := poolSpeedBound(in)
	var poolable []model.WorkerID
	for w, m := range inf.mask {
		if m != 0 {
			poolable = append(poolable, model.WorkerID(w))
		}
	}
	if vmax > 0 {
		grid = index.NewGrid(in.Bounds, max(len(poolable)/4, 1), 4)
		for _, w := range poolable {
			grid.Insert(index.Item{ID: int(w), Point: in.Worker(w).Loc})
		}
	}
	var items []index.Item
	for ci := range in.Centers {
		if !recipient[ci] {
			continue
		}
		c := in.Center(model.CenterID(ci))
		var slack float64
		if scope == LeftoverOnly {
			slack = assign.AdmissionSlack(in, c, phase1[ci].LeftTasks)
		} else {
			slack = assign.AdmissionSlack(in, c, c.Tasks)
		}
		bit := uint64(1) << shardOf[ci]
		if grid != nil {
			r := (slack + assign.PrunePad) * vmax
			if r > 0 {
				r += r*1e-9 + 1e-12
			}
			items = grid.InRangeAppend(items[:0], c.Loc, r)
			for _, it := range items {
				w := model.WorkerID(it.ID)
				if in.Worker(w).Home != model.CenterID(ci) &&
					assign.WorkerAdmissible(in, c, w, slack) {
					inf.mask[w] |= bit
				}
			}
		} else {
			for _, w := range poolable {
				if in.Worker(w).Home != model.CenterID(ci) &&
					assign.WorkerAdmissible(in, c, w, slack) {
					inf.mask[w] |= bit
				}
			}
		}
	}

	// Boundary/conflict accounting: a worker whose bitset spans >1 shard is
	// a boundary worker and adds its shard pairs to the conflict graph.
	for _, m := range inf.mask {
		switch bits.OnesCount64(m) {
		case 0:
		case 1:
			inf.exclusive++
		default:
			inf.boundary++
			for mm := m; mm != 0; {
				s := bits.TrailingZeros64(mm)
				mm &= mm - 1
				inf.adj[s] |= m
			}
		}
	}
	for s := range inf.adj {
		inf.conflicts += bits.OnesCount64(inf.adj[s] &^ (uint64(1)<<(s+1) - 1))
	}
	return inf
}

// RunSharded executes the collaboration game through the region-sharded
// engine: concurrent per-shard best-response dynamics over the
// shard-exclusive workers, then a serialized exchange game that settles the
// boundary workers and drives the merged state to a global Nash equilibrium.
// The instance is not mutated.
//
// Determinism: the outcome is bit-identical across ShardParallelism
// settings and repeated runs (deterministic assigners). When the
// interference cut is empty the result — routes, transfers and trace — is
// additionally bit-identical to Run/RunReference (diagnostics and Duration
// aside); otherwise the result is a different, but verified, equilibrium of
// the same game.
//
// The sharded path engages for MinRatio/BestResponse dynamics with an
// assigner admitting the admissibility-pruning argument (the built-in
// Sequential, or any assigner the caller vouches for via PruneOn — the
// interference graph is built from the same admission-slack bound).
// Everything else — RandomRecipient, NearestWorker, budgeted assigners
// under PruneOff — falls back to the unsharded Run, reported as one shard.
// Config.MaxIterations, when set, caps each shard game and the exchange
// game individually.
func RunSharded(in *model.Instance, phase1 []assign.Result, cfg ShardConfig) (Result, ShardReport) {
	requested := cfg.Shards
	k := requested
	eligible := cfg.Recipient == MinRatio && cfg.Candidate == BestResponse &&
		(isSequentialAssigner(cfg.Assigner) || cfg.Prune == PruneOn)
	var auto *ShardAutotune
	if k == ShardAuto && eligible && len(in.Centers) >= 2 {
		in.PrepareMetric()
		in.EnsureHot()
		auto = autotuneShards(in, phase1, cfg)
		k = auto.Picked
		mShardAutoShards.Set(float64(k))
		mShardAutoProbes.Set(float64(len(auto.Ladder)))
	}
	if k > 64 {
		// The interference bitsets are one machine word; surface the clamp
		// instead of hiding it (ShardsRequested keeps the original ask).
		if obs.Enabled(cfg.Obs) {
			cfg.Obs.Event("shard_clamp",
				obs.F("requested", requested), obs.F("clamped", 64))
		}
		k = 64
	}
	if k <= 1 || len(in.Centers) < 2 || !eligible {
		if cfg.Ledger != nil {
			cfg.Config.Prov = cfg.Ledger.NewGameLog(provenance.StageGame, -1)
		}
		res := Run(in, phase1, cfg.Config)
		rep := singleShardReport(in, res)
		rep.ShardsRequested = requested
		rep.Auto = auto
		return res, rep
	}

	in.PrepareMetric()
	in.EnsureHot()
	shardOf, nShards := PlanShards(in, k, cfg.Seed)
	if nShards <= 1 {
		if cfg.Ledger != nil {
			cfg.Config.Prov = cfg.Ledger.NewGameLog(provenance.StageGame, -1)
		}
		res := Run(in, phase1, cfg.Config)
		rep := singleShardReport(in, res)
		rep.ShardsRequested = requested
		rep.Auto = auto
		return res, rep
	}
	inf := shardInterference(in, phase1, shardOf, cfg.Scope)
	_, loadSkew := shardTaskLoads(in, shardOf, nShards)
	compOf, nComp := shardComponents(&inf.adj, nShards)
	_, nColors := greedyColorShards(&inf.adj, nShards)
	mShardBoundary.Set(float64(inf.boundary))
	mShardConflicts.Set(float64(inf.conflicts))
	mShardLoadSkew.Set(loadSkew)
	mShardColors.Set(float64(nColors))

	members := make([][]model.CenterID, nShards)
	for ci := range in.Centers {
		s := shardOf[ci]
		members[s] = append(members[s], model.CenterID(ci))
	}
	// Phase-A pools partition the poolable workers by HOME shard: every
	// worker plays in exactly one shard's game, so the games' mutable state
	// is disjoint and they run concurrently without coordination. When the
	// interference cut is empty the home partition coincides with the
	// interference masks (every poolable worker's mask is exactly its home
	// bit), which is what makes the shard games provable restrictions of
	// the global game; with a non-empty cut, boundary workers are settled
	// tentatively in their home shard and re-contested by every admissible
	// center in the exchange game.
	homeMask := make([]uint64, len(in.Workers))
	for w := range homeMask {
		homeMask[w] = uint64(1) << shardOf[in.Workers[w].Home]
	}

	// Phase A: one restricted game per shard over its member centers and
	// home-shard workers. Games are independent by construction — disjoint
	// center sets, disjoint pools — so they run concurrently on a bounded
	// pool, each with its own trial base, runners, scratch and arenas (the
	// zero-alloc steady state holds per shard). Results land in fixed
	// slots: the merge below is deterministic at every parallelism.
	games := make([]*Game, nShards)
	solus := make([]Result, nShards)
	walls := make([]time.Duration, nShards)
	// Per-shard provenance logs, created upfront in shard order so the
	// ledger's log sequence is deterministic at every ShardParallelism.
	provLogs := make([]*provenance.GameLog, nShards)
	if cfg.Ledger != nil {
		for s := range provLogs {
			provLogs[s] = cfg.Ledger.NewGameLog(provenance.StageGame, s)
		}
	}
	innerPar := cfg.Parallelism
	shardPar := cfg.ShardParallelism
	if shardPar <= 0 {
		shardPar = runtime.GOMAXPROCS(0)
	}
	if shardPar > nShards {
		shardPar = nShards
	}
	if shardPar > 1 {
		innerPar = 1
	}
	runShard := func(s int) {
		scfg := cfg.Config
		scfg.members = members[s]
		scfg.poolMask = homeMask
		scfg.poolBit = uint64(1) << s
		scfg.Parallelism = innerPar
		scfg.Prov = provLogs[s]
		t0 := time.Now()
		g := NewGame(in, phase1, scfg)
		for g.Step() {
		}
		solus[s] = g.Finish()
		walls[s] = time.Since(t0)
		games[s] = g
		mShardGames.Inc()
		mShardGameSeconds.ObserveDuration(walls[s])
		for i := range solus[s].Trace {
			mShardIterSeconds.ObserveDuration(solus[s].Trace[i].Duration)
		}
	}
	if shardPar <= 1 {
		for s := 0; s < nShards; s++ {
			runShard(s)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(shardPar)
		for g := 0; g < shardPar; g++ {
			go func() {
				defer wg.Done()
				for {
					s := int(next.Add(1) - 1)
					if s >= nShards {
						return
					}
					runShard(s)
				}
			}()
		}
		wg.Wait()
	}

	rep := ShardReport{
		ShardsRequested:  requested,
		Shards:           nShards,
		ShardOf:          shardOf,
		ExclusiveWorkers: inf.exclusive,
		BoundaryWorkers:  inf.boundary,
		ConflictEdges:    inf.conflicts,
		EmptyCut:         inf.boundary == 0,
		Components:       nComp,
		Colors:           nColors,
		LoadSkew:         loadSkew,
		Auto:             auto,
		ShardIterations:  make([]int, nShards),
		ShardWall:        walls,
	}
	var wallMax, wallSum time.Duration
	for s := 0; s < nShards; s++ {
		rep.ShardIterations[s] = solus[s].Iterations
		wallSum += walls[s]
		if walls[s] > wallMax {
			wallMax = walls[s]
		}
	}
	if wallSum > 0 {
		mShardSkew.Set(float64(wallMax) * float64(nShards) / float64(wallSum))
	}

	if rep.EmptyCut {
		// No worker can touch two shards: the shard games are exactly the
		// global game's per-shard subsequences, and interleaving them by
		// the global min-ρ rule reconstructs the reference run verbatim.
		return mergeIndependent(in, phase1, shardOf, games, solus, cfg.noMemo), rep
	}

	// Phase B: boundary reconciliation. The exchange game is the ordinary
	// best-response dynamics resumed from the merged shard states with the
	// full worker pool — boundary workers included for the first time — so
	// every center (including those that dropped out of a shard game)
	// re-probes its improving deviations against the global pool. The
	// carried trial memos answer the shard-local candidates instantly; only
	// cross-shard candidates cost fresh trials. The dynamics terminates at a
	// state with no improving transfer anywhere: a global Nash equilibrium.
	//
	// When the conflict graph splits into several components, the exchange
	// decomposes: admissibility confines every worker's exchange-time moves
	// to one component, so the per-component games run concurrently and a
	// min-(ρ, id) replay reconstructs the serialized sequence bit-for-bit
	// (reconcile.go, DESIGN.md §16). One component — or a caller-set
	// MaxIterations, whose global cap has no per-component equivalent —
	// keeps the single serialized game below.
	merged := make([]assign.Result, len(in.Centers))
	var priorTransfers []model.Transfer
	for s := 0; s < nShards; s++ {
		priorTransfers = append(priorTransfers, solus[s].Solution.Transfers...)
	}
	memo := make([]map[model.WorkerID]assign.Result, len(in.Centers))
	for ci := range in.Centers {
		g := games[shardOf[ci]]
		st := &g.states[ci]
		used := make(map[model.WorkerID]bool, len(st.routes))
		for i := range st.routes {
			used[st.routes[i].Worker] = true
		}
		var lws []model.WorkerID
		for _, w := range st.own {
			if !used[w] {
				lws = append(lws, w)
			}
		}
		merged[ci] = assign.Result{Routes: st.routes, LeftTasks: st.leftTasks, LeftWorkers: lws}
		memo[ci] = g.memo[ci]
	}
	var resB Result
	if nComp > 1 && !cfg.serialReconcile && cfg.MaxIterations <= 0 {
		resB = reconcileComponents(in, cfg, shardOf, compOf, nComp, merged, memo, priorTransfers)
	} else {
		bcfg := cfg.Config
		bcfg.resume = &resumeState{transfers: priorTransfers, memo: memo}
		if cfg.Ledger != nil {
			bcfg.Prov = cfg.Ledger.NewGameLog(provenance.StageExchange, 0)
		}
		gB := NewGame(in, merged, bcfg)
		for gB.Step() {
		}
		resB = gB.Finish()
	}
	rep.ExchangeIterations = resB.Iterations
	rep.ExchangeTransfers = len(resB.Solution.Transfers) - len(priorTransfers)
	mExchangeIters.Add(int64(rep.ExchangeIterations))
	mExchangeTransfers.Add(int64(rep.ExchangeTransfers))

	// Final trace: shard traces in shard order (shard-local ρ/Φ semantics),
	// then the exchange steps (global semantics), renumbered consecutively.
	total := rep.ExchangeIterations
	for s := 0; s < nShards; s++ {
		total += solus[s].Iterations
	}
	trace := make([]TraceStep, 0, total)
	for s := 0; s < nShards; s++ {
		for i := range solus[s].Trace {
			step := solus[s].Trace[i]
			step.Iteration = len(trace) + 1
			trace = append(trace, step)
		}
	}
	for i := range resB.Trace {
		step := resB.Trace[i]
		step.Iteration = len(trace) + 1
		trace = append(trace, step)
	}
	resB.Trace = trace
	resB.Iterations = len(trace)
	return resB, rep
}

// singleShardReport wraps an unsharded result as a one-shard report — the
// fallback path of RunSharded.
func singleShardReport(in *model.Instance, res Result) ShardReport {
	return ShardReport{
		Shards:          1,
		ShardOf:         make([]int, len(in.Centers)),
		EmptyCut:        true,
		Components:      1,
		Colors:          1,
		LoadSkew:        1,
		ShardIterations: []int{res.Iterations},
		ShardWall:       []time.Duration{0},
	}
}

// mergeIndependent reconstructs the global game from independent shard
// games (empty interference cut). Every global iteration happens at the
// min-ρ recipient; with an empty cut that recipient's candidates, trials
// and state updates are exactly its shard game's next step, so a merge by
// (ρ, center ID) — the MinRatioCenter rule — replays the global sequence
// verbatim. Centers stranded by an exhausted shard pool (recipients whose
// shard game ended with no step for them) reject with an empty candidate
// list in the global game; those steps are synthesized here, and the merge
// stops where the global game would — when the union pool is empty.
func mergeIndependent(in *model.Instance, phase1 []assign.Result, shardOf []int,
	games []*Game, solus []Result, noMemo bool) Result {

	n := len(in.Centers)
	nShards := len(games)

	// Global state replay: the ρ vector and assigned total evolve exactly
	// as in the reference loop, driven by the shard steps' deltas.
	rho := make([]float64, n)
	assignedTotal := 0
	prevAssigned := make([]int, nShards)
	for ci := range in.Centers {
		a := countTasks(phase1[ci].Routes)
		rho[ci] = metrics.Ratio(a, len(in.Centers[ci].Tasks))
		assignedTotal += a
		prevAssigned[shardOf[ci]] += a
	}

	// Stranded recipients: still in their shard game's recipient set at its
	// end (the shard pool ran dry first). The global game rejects each in
	// (ρ, ID) order interleaved with the remaining real steps — their ρ is
	// final, so the order within a shard is fixed now. Sort by the shard
	// game's FINAL ρ (games[s].rhoVec), not the phase-1 value: a stranded
	// recipient that accepted dispatches before its pool died carries its
	// raised ratio into the remaining global order.
	stranded := make([][]model.CenterID, nShards)
	for s := 0; s < nShards; s++ {
		stranded[s] = append(stranded[s], games[s].recipients...)
		fin := games[s].rhoVec
		sort.Slice(stranded[s], func(i, j int) bool {
			a, b := stranded[s][i], stranded[s][j]
			if fin[a] != fin[b] {
				return fin[a] < fin[b]
			}
			return a < b
		})
	}

	// poolLive reports whether the union pool still has a worker: some shard
	// either has real steps pending (its pool was live at that local time)
	// or finished with a non-empty pool. Once false, the global game is
	// over — stranded recipients past that point never reject.
	pos := make([]int, nShards)
	spos := make([]int, nShards)
	poolLive := func() bool {
		for s := 0; s < nShards; s++ {
			if pos[s] < len(solus[s].Trace) || games[s].pool.len() > 0 {
				return true
			}
		}
		return false
	}

	totalSteps := 0
	for s := 0; s < nShards; s++ {
		totalSteps += len(solus[s].Trace) + len(stranded[s])
	}
	trace := make([]TraceStep, 0, totalSteps)
	var transfers []model.Transfer
	var rhos slab.Arena[float64]
	rhos.Reserve(totalSteps * n)
	for {
		best, bestSynth := -1, false
		var bestR model.CenterID
		for s := 0; s < nShards; s++ {
			var r model.CenterID
			var synth bool
			switch {
			case pos[s] < len(solus[s].Trace):
				r = solus[s].Trace[pos[s]].Recipient
			case spos[s] < len(stranded[s]):
				r, synth = stranded[s][spos[s]], true
			default:
				continue
			}
			if best < 0 || rho[r] < rho[bestR] || (rho[r] == rho[bestR] && r < bestR) {
				best, bestR, bestSynth = s, r, synth
			}
		}
		if best < 0 {
			break
		}
		var step TraceStep
		if bestSynth {
			if !poolLive() {
				break
			}
			spos[best]++
			step = TraceStep{Recipient: bestR, Accepted: false,
				RhoBefore: rho[bestR], RhoAfter: rho[bestR]}
		} else {
			step = solus[best].Trace[pos[best]]
			pos[best]++
			assignedTotal += step.Assigned - prevAssigned[best]
			prevAssigned[best] = step.Assigned
			rho[step.Recipient] = step.RhoAfter
			if step.Accepted {
				transfers = append(transfers,
					model.Transfer{Src: step.Source, Dst: step.Recipient, Worker: step.Worker})
			}
		}
		rv := rhos.Copy(rho)
		step.Iteration = len(trace) + 1
		step.Assigned = assignedTotal
		step.Rhos = rv
		step.Unfairness = metrics.Unfairness(rv)
		step.Phi = metrics.Phi(rv)
		trace = append(trace, step)
	}

	sol := model.NewSolution(in)
	for ci := range in.Centers {
		sol.PerCenter[ci].Routes = solus[shardOf[ci]].Solution.PerCenter[ci].Routes
	}
	sol.Transfers = transfers
	res := Result{Solution: sol, Trace: trace, Iterations: len(trace)}
	if !noMemo {
		anyMemo := false
		memo := make([]map[model.WorkerID]assign.Result, n)
		for ci := range in.Centers {
			if m := games[shardOf[ci]].memo[ci]; m != nil {
				memo[ci] = m
				anyMemo = true
			}
		}
		if anyMemo {
			res.trialMemo = memo
		}
	}
	return res
}
