// Package collab implements phase 2 of IMTAO: the game-theoretic
// inter-center workforce transfer of paper §V (Algorithm 3).
//
// Centers are players; a recipient center's strategy is its borrowing worker
// set BWS(c); utilities are the UUP of Eq. 4. The best-response dynamics is
// specialised exactly as in the paper: in every iteration the recipient
// center with the lowest assignment ratio extends its BWS by the single
// available worker that maximises its post-reassignment ratio, keeps the
// move iff the ratio strictly improves, and drops out of the game otherwise.
// The loop reaches a state where no center can unilaterally improve — a pure
// Nash equilibrium of the collaboration game.
//
// The reassignment step is pluggable, giving the paper's baselines:
//
//	BDC  — bi-directional collaboration: re-run the per-center assigner over
//	       all of the recipient's workers (own + borrowed + candidate).
//	DC   — decomposed collaboration: the candidate worker only receives
//	       leftover tasks; prior routes stay frozen.
//	RBDC — BDC with the recipient picked uniformly at random instead of
//	       by minimum ratio.
//
// Run is the optimized engine (DESIGN.md §11): admissibility pruning skips
// candidates that provably cannot take a task, the resumable trial engine of
// the assign package replays only the serve-order suffix each trial
// perturbs, and the game bookkeeping (ρ vector, assigned counts, candidate
// pool) is maintained incrementally. RunReference (frozen.go) is the
// preserved pre-engine loop; both produce bit-identical solutions and
// traces (modulo the trial/memo/prune counters and Duration).
package collab

import (
	"math/rand"
	"reflect"
	"sort"
	"time"

	"imtao/internal/assign"
	"imtao/internal/metrics"
	"imtao/internal/model"
	"imtao/internal/obs"
)

// Game-progress counters, aggregated across every collaboration run of the
// process.
var (
	mIterations = obs.Default.Counter("imtao_collab_iterations_total",
		"game iterations executed (accepted + rejected)")
	mTransfers = obs.Default.Counter("imtao_collab_transfers_total",
		"accepted workforce dispatches")
	mRejections = obs.Default.Counter("imtao_collab_rejections_total",
		"iterations ending with a center leaving the game")
	mTrials = obs.Default.Counter("imtao_collab_trials_total",
		"trial re-assignments evaluated (memo hits and pruned candidates excluded)")
	mMemoHits = obs.Default.Counter("imtao_collab_memo_hits_total",
		"trial results served from the cross-iteration cache; while the memo is "+
			"enabled, memo_hits + memo_misses = candidate lookups, so the hit "+
			"ratio is hits/(hits+misses)")
	mMemoMisses = obs.Default.Counter("imtao_collab_memo_misses_total",
		"trial lookups that missed the cache and were evaluated; complement of "+
			"imtao_collab_memo_hits_total per lookup — neither counter moves "+
			"when the memo is disabled")
	mPruned = obs.Default.Counter("imtao_collab_candidates_pruned_total",
		"pool candidates skipped by admissibility pruning (their trials "+
			"provably return the baseline assignment)")
	mResumed = obs.Default.Counter("imtao_collab_resume_trials_total",
		"trials served by the prefix-resume engine instead of a full "+
			"re-assignment")
	mSnapshotBytes = obs.Default.Gauge("imtao_collab_snapshot_bytes",
		"estimated footprint of the current recipient's trial-base snapshot "+
			"(serve order, baseline routes, leftover-task pool)")
)

// RecipientPolicy selects the recipient center each iteration.
type RecipientPolicy int

const (
	// MinRatio picks the center with the lowest assignment ratio
	// (paper Algorithm 3 line 13) — the BDC/DC setting.
	MinRatio RecipientPolicy = iota
	// RandomRecipient picks uniformly at random — the RBDC baseline.
	RandomRecipient
	// MaxLeftover picks the center with the most unassigned tasks — an
	// ablation alternative (DESIGN.md §6) that chases volume rather than
	// fairness.
	MaxLeftover
)

// Scope selects how a recipient reassigns after borrowing a worker.
type Scope int

const (
	// FullReassign re-runs the assigner over the recipient's complete
	// worker set — the paper's bi-directional collaboration.
	FullReassign Scope = iota
	// LeftoverOnly gives the borrowed worker leftover tasks without touching
	// existing routes — the paper's decomposed collaboration (DC).
	LeftoverOnly
)

// Assigner is a per-center assignment routine: Sequential or Optimal from
// the assign package (or any custom policy with the same contract).
type Assigner func(in *model.Instance, c *model.Center, workers []model.WorkerID, tasks []model.TaskID) assign.Result

// CandidatePolicy selects how the dispatched worker is chosen among the
// available pool each iteration (Algorithm 3 line 14).
type CandidatePolicy int

const (
	// BestResponse evaluates every available worker by re-assignment and
	// picks the ratio-maximising one — the paper's best-response step.
	BestResponse CandidatePolicy = iota
	// NearestWorker picks the available worker closest to the recipient
	// center — a cheap heuristic ablation that skips the trial
	// re-assignments (one evaluation per iteration instead of |pool|).
	NearestWorker
)

// PruneMode selects whether admissibility pruning filters trial candidates.
type PruneMode int

// Pruning soundness (DESIGN.md §11) rests on two conditions. First, the
// assigner must give a pruned worker — one that cannot feasibly deliver any
// first task — an empty route, so a pruned candidate's trial equals a plain
// re-run over the unchanged worker set. Second, that plain re-run must not
// itself beat the recipient's CURRENT routes: the phase-1 state has to be a
// fixed point of (or dominate) the game's assigner over the same worker set,
// or the reference dynamics could accept a pruned candidate on the strength
// of the re-run alone. core.Run satisfies this by construction — one
// assigner drives both phases — as do a Sequential game over an Optimal
// phase 1 (Optimal dominates) and every LeftoverOnly run (a pruned DC trial
// serves zero leftover tasks regardless of provenance).
const (
	// PruneAuto (the default) enables pruning exactly when the first
	// condition is provable without caller assumptions: the built-in
	// assign.Sequential (or a nil Assigner, which defaults to it). Custom
	// assigners run unpruned because the pruning argument is
	// assigner-specific.
	PruneAuto PruneMode = iota
	// PruneOn forces pruning. The caller asserts the soundness conditions
	// above — the first holds for assign.Sequential and for unbudgeted
	// assign.Optimal, whose enumeration grows from feasible singletons.
	PruneOn
	// PruneOff disables pruning — required for wall-clock-dependent
	// assigners (e.g. budgeted Optimal), where a pruned candidate's trial
	// is not reproducible anyway, and for phase-1 states produced by a
	// weaker assigner than the game's.
	PruneOff
)

// Config configures a collaboration run.
type Config struct {
	Recipient RecipientPolicy
	Candidate CandidatePolicy
	Scope     Scope
	Assigner  Assigner
	// Rng drives RandomRecipient; ignored otherwise. Required when
	// Recipient == RandomRecipient.
	Rng *rand.Rand
	// MaxIterations caps the game loop as a safety net; 0 means the natural
	// bound (every worker transferred once plus every center dropped once).
	MaxIterations int
	// Parallelism bounds the goroutines evaluating best-response trials
	// within one game iteration. 0 means GOMAXPROCS; 1 forces the legacy
	// serial path. Results are bit-identical at every setting: trials are
	// written to fixed slots and the winner is selected by a serial scan
	// (max ρ, ties to the lowest worker ID). Custom Assigners must be safe
	// for concurrent calls when Parallelism != 1.
	Parallelism int
	// Prune selects admissibility pruning (DESIGN.md §11). The zero value
	// PruneAuto prunes for the built-in Sequential assigner only; pruning
	// never changes the solution or trace beyond the Trials/MemoHits/Pruned
	// counters.
	Prune PruneMode
	// Obs receives one "game_iter" event per iteration carrying the
	// potential Φ, the full ρ vector, trial/memo/prune counts and the
	// iteration latency. Nil (or obs.Nop) disables emission; the TraceStep
	// record is filled either way.
	Obs obs.Observer
	// Tracer records one game_iter span per iteration with one child trial
	// span per evaluated candidate (carrying its resume/full outcome), so a
	// Perfetto timeline shows where the game's wall-clock goes. Nil (the
	// default) records nothing at zero cost.
	Tracer *obs.Tracer
	// TraceParent is the span the iteration spans attach under — core.Run
	// passes its phase-2 span; zero parents them at the trace root.
	TraceParent obs.SpanID
	// noMemo disables the cross-iteration trial cache. Test hook only: the
	// cache is semantics-preserving for deterministic assigners, so there is
	// no reason to expose it.
	noMemo bool
	// prunedHook, when non-nil, forces the exact (index-free) admissibility
	// scan and observes every pruned candidate together with the recipient
	// state needed to replay its full trial. Test hook backing the
	// pruning-soundness property test.
	prunedHook func(recipient model.CenterID, w model.WorkerID,
		baseWS []model.WorkerID, leftTasks []model.TaskID, assigned int)
}

// sequentialPtr identifies the built-in Sequential assigner by code pointer,
// surviving the Assigner func-type conversion.
var sequentialPtr = reflect.ValueOf(assign.Sequential).Pointer()

// isSequentialAssigner reports whether a is nil (defaults to Sequential) or
// assign.Sequential itself — the engines that admit exact pruning and
// prefix-resume trials.
func isSequentialAssigner(a Assigner) bool {
	return a == nil || reflect.ValueOf(a).Pointer() == sequentialPtr
}

// TraceStep records one iteration of the collaboration game, feeding the
// convergence analysis of paper Fig. 11.
type TraceStep struct {
	Iteration  int
	Recipient  model.CenterID
	Worker     model.WorkerID // worker evaluated (undefined when none available)
	Source     model.CenterID // the worker's home center
	Accepted   bool
	RhoBefore  float64
	RhoAfter   float64
	Assigned   int     // platform-wide assigned tasks after the step
	Unfairness float64 // platform-wide U_ρ after the step
	// Phi is the game potential Φ after the step — the sum of per-center
	// assignment ratios (metrics.Phi), monotonically non-decreasing along
	// the dynamics.
	Phi float64
	// Rhos is the full per-center ratio vector after the step.
	Rhos []float64
	// Trials counts the trial re-assignments evaluated this iteration;
	// MemoHits counts candidates served from the cross-iteration cache
	// instead.
	Trials   int
	MemoHits int
	// Pruned counts pool candidates skipped this iteration by admissibility
	// pruning — their trials provably return the baseline. Resumed counts
	// evaluated trials served by the prefix-resume engine instead of a full
	// re-assignment. Both are zero under RunReference; together with Trials
	// and MemoHits they are diagnostics, not part of the cross-engine
	// equivalence contract.
	Pruned  int
	Resumed int
	// Duration is the iteration's wall-clock time. It is the one TraceStep
	// field outside the determinism contract — everything else (minus the
	// counter diagnostics above) is bit-identical across parallelism levels
	// and engines.
	Duration time.Duration
}

// Result bundles the collaboration outcome.
type Result struct {
	Solution *model.Solution
	Trace    []TraceStep
	// Iterations is the number of game iterations executed (accepted or
	// rejected), matching η in Algorithm 3.
	Iterations int
	// trialMemo is the surviving (recipient, worker) → trial cache at game
	// end. Every entry was computed against its center's final state (stale
	// entries are dropped the moment a center's state changes), so the
	// equilibrium check can reuse them verbatim — see
	// Result.VerifyEquilibrium. Populated only for FullReassign runs; DC
	// trials have different semantics than the verifier's. Pruned
	// candidates have no entry; the verifier re-prunes them instead.
	trialMemo []map[model.WorkerID]assign.Result
}

// NoCollaboration assembles the phase-1 results into a Solution without any
// workforce transfer — the paper's w/o-C baseline.
func NoCollaboration(in *model.Instance, phase1 []assign.Result) *model.Solution {
	sol := model.NewSolution(in)
	for ci := range in.Centers {
		sol.PerCenter[ci].Routes = cloneRoutes(phase1[ci].Routes)
	}
	return sol
}

// Run executes the multi-center collaboration game (paper Algorithm 3) on
// top of the phase-1 per-center results and returns the final solution with
// its iteration trace. The instance is not mutated.
//
// This is the optimized engine: bit-identical to RunReference in solution,
// transfers and trace (Trials/MemoHits/Pruned/Resumed and Duration aside),
// but with admissibility pruning, prefix-resume trials and incremental
// bookkeeping — see DESIGN.md §11 for the architecture and the exactness
// arguments.
func Run(in *model.Instance, phase1 []assign.Result, cfg Config) Result {
	seqEngine := isSequentialAssigner(cfg.Assigner)
	if cfg.Assigner == nil {
		cfg.Assigner = assign.Sequential
	}
	// Idempotent: a no-op when core.Run already prepared the instance, and
	// a safety net for direct callers so the trial re-assignments below hit
	// the memoized snap path of a node metric.
	in.PrepareMetric()
	n := len(in.Centers)

	pruneOn := cfg.Prune == PruneOn || (cfg.Prune == PruneAuto && seqEngine)
	if cfg.Candidate == NearestWorker {
		// NearestWorker picks its single candidate over the FULL pool;
		// pre-filtering would change which worker is chosen, so pruning is
		// disabled rather than applied unsoundly.
		pruneOn = false
	}

	// Per-center mutable state.
	type centerState struct {
		routes    []model.Route
		leftTasks []model.TaskID
		// own is the set of workers homed here and not lent out.
		own map[model.WorkerID]bool
		// borrowed workers received from other centers, in arrival order.
		borrowed []model.WorkerID
		// workers is own ∪ borrowed in ascending ID order, maintained
		// incrementally (the legacy loop rebuilt and sorted it per
		// iteration).
		workers []model.WorkerID
		// assigned is countTasks(routes), maintained incrementally.
		assigned int
		rho      float64
		// slack caches assign.AdmissionSlack for the pruning scope; valid
		// until slackOK is cleared (LeftoverOnly invalidates on accept —
		// its slack covers the mutable leftover set; FullReassign's covers
		// the static center.Tasks).
		slack   float64
		slackOK bool
	}
	states := make([]centerState, n)
	pool := newWorkerPool(in, pruneOn)
	totalAssigned := 0
	rhoVec := make([]float64, n)
	for ci := range in.Centers {
		st := &states[ci]
		st.routes = cloneRoutes(phase1[ci].Routes)
		st.leftTasks = append([]model.TaskID(nil), phase1[ci].LeftTasks...)
		st.own = make(map[model.WorkerID]bool, len(in.Centers[ci].Workers))
		for _, w := range in.Centers[ci].Workers {
			st.own[w] = true
		}
		st.workers = append([]model.WorkerID(nil), in.Centers[ci].Workers...)
		sort.Slice(st.workers, func(i, j int) bool { return st.workers[i] < st.workers[j] })
		st.assigned = countTasks(st.routes)
		totalAssigned += st.assigned
		st.rho = metrics.Ratio(st.assigned, len(in.Centers[ci].Tasks))
		rhoVec[ci] = st.rho
		for _, w := range phase1[ci].LeftWorkers {
			pool.add(w, model.CenterID(ci))
		}
	}

	// Line 3–10: recipient set C' = centers with ρ < 1.
	var recipients []model.CenterID
	for ci := range in.Centers {
		if states[ci].rho < 1 {
			recipients = append(recipients, model.CenterID(ci))
		}
	}

	maxIter := cfg.MaxIterations
	if maxIter <= 0 {
		// Every accepted iteration raises the recipient's assigned count by
		// at least one task and every rejection permanently removes a
		// center, so |S| + |C| bounds the game length.
		maxIter = len(in.Tasks) + n + 1
	}

	res := Result{}
	var transfers []model.Transfer

	// memo caches trial re-assignment results per (recipient, worker). A
	// trial depends only on the recipient's state (worker set, routes,
	// leftover tasks) and the candidate, so an entry stays valid until the
	// recipient's state changes: the whole per-center map is dropped when the
	// center accepts a dispatch (its routes/borrowed/leftTasks change) or
	// lends one of its own workers out (its worker set shrinks). Workers that
	// leave the pool simply stop being looked up.
	//
	// In the paper-exact dynamics every turn ends by either mutating the
	// recipient (accept) or removing it from the game (reject), so the cache
	// cannot re-hit during Run itself with the built-in policies; it exists
	// to carry each center's final-state trials out of the game, where
	// Result.VerifyEquilibrium reuses them instead of re-running the
	// assigner over the whole pool, and to keep future recipient policies
	// that revisit centers incremental for free.
	memo := make([]map[model.WorkerID]assign.Result, n)

	// baselines caches Sequential(workers, center.Tasks) per center for the
	// prefix-resume engine — the trial base every resumed trial replays a
	// suffix of. Invalidated exactly like memo (the base depends on the same
	// state); an accepted trial IS the new baseline, so steady-state
	// iterations never run the assigner for it.
	baselines := make([]*assign.Result, n)

	for iter := 1; iter <= maxIter && len(recipients) > 0 && pool.len() > 0; iter++ {
		iterStart := time.Now()
		res.Iterations = iter
		mIterations.Inc()
		var iterTS obs.TraceSpan
		if cfg.Tracer != nil {
			iterTS = cfg.Tracer.Start(cfg.TraceParent, "game_iter", obs.F("iter", iter))
		}
		// Line 13: recipient selection — served from the maintained ρ
		// vector instead of a per-iteration rebuild.
		var ci model.CenterID
		switch cfg.Recipient {
		case RandomRecipient:
			ci = recipients[cfg.Rng.Intn(len(recipients))]
		case MaxLeftover:
			ci = recipients[0]
			for _, c := range recipients[1:] {
				if len(states[c].leftTasks) > len(states[ci].leftTasks) ||
					(len(states[c].leftTasks) == len(states[ci].leftTasks) && c < ci) {
					ci = c
				}
			}
		default:
			ci = metrics.MinRatioCenter(rhoVec, recipients)
		}
		st := &states[ci]
		center := in.Center(ci)

		// Candidate workers: available pool minus the recipient's own
		// (its own unused workers are already in its worker set). With
		// pruning, candidates that cannot feasibly deliver any first task
		// are dropped here — their trials provably return the baseline and
		// can never win the strict-improvement scan below.
		var cands []model.WorkerID
		pruned := 0
		var prunedList []model.WorkerID
		switch {
		case cfg.Candidate == NearestWorker:
			cands = pool.candidates(ci)
			if len(cands) > 1 {
				// Heuristic ablation: only evaluate the nearest available
				// worker. Ties break by ID via the pre-sorted order.
				best := cands[0]
				bd := in.Worker(best).Loc.Dist2(center.Loc)
				for _, w := range cands[1:] {
					if d := in.Worker(w).Loc.Dist2(center.Loc); d < bd {
						best, bd = w, d
					}
				}
				cands = []model.WorkerID{best}
			}
		case pruneOn:
			if !st.slackOK {
				if cfg.Scope == LeftoverOnly {
					st.slack = assign.AdmissionSlack(in, center, st.leftTasks)
				} else {
					st.slack = assign.AdmissionSlack(in, center, center.Tasks)
				}
				st.slackOK = true
			}
			var onPruned func(model.WorkerID)
			if cfg.prunedHook != nil {
				onPruned = func(w model.WorkerID) { prunedList = append(prunedList, w) }
			}
			cands, pruned = pool.admissible(center, ci, st.slack, onPruned)
		default:
			cands = pool.candidates(ci)
		}
		mPruned.Add(int64(pruned))

		// Line 14: best response — the candidate maximising the
		// post-reassignment ratio. Line 15: evaluated via re-assignment.
		// Trials are independent of each other, so cache misses are
		// evaluated concurrently into fixed slots; the winner is then picked
		// by the same serial scan as the reference loop, keeping the output
		// bit-identical.
		var baseWS []model.WorkerID
		if cfg.Scope != LeftoverOnly {
			baseWS = st.workers
		}
		for _, w := range prunedList {
			cfg.prunedHook(ci, w, baseWS, st.leftTasks, st.assigned)
		}

		// The prefix-resume trial base: for the Sequential engine, trials
		// resume from the candidate's serve-order position against the
		// center's baseline assignment instead of re-running every worker.
		var base *assign.TrialBase
		if seqEngine && len(cands) > 0 {
			if cfg.Scope == LeftoverOnly {
				// DC trials serve one worker over the leftover tasks: the
				// baseline is the empty assignment over those tasks.
				base, _ = assign.NewTrialBase(in, center, nil, nil, st.leftTasks)
			} else {
				if baselines[ci] == nil {
					r := cfg.Assigner(in, center, baseWS, center.Tasks)
					baselines[ci] = &r
				}
				b, ok := assign.NewTrialBase(in, center, baseWS, baselines[ci].Routes, baselines[ci].LeftTasks)
				if ok {
					base = b
				}
			}
			if base != nil {
				mSnapshotBytes.Set(float64(base.FootprintBytes()))
			}
		}
		trials, evaluated := evalTrials(in, center, cands, baseWS, st.leftTasks, cfg, memo[ci], base, iterTS.ID())
		resumed := 0
		if base != nil {
			resumed = evaluated
		}
		hits := len(cands) - evaluated
		mTrials.Add(int64(evaluated))
		mResumed.Add(int64(resumed))
		if !cfg.noMemo {
			mMemoMisses.Add(int64(evaluated))
			mMemoHits.Add(int64(hits))
			if memo[ci] == nil {
				memo[ci] = make(map[model.WorkerID]assign.Result, len(cands))
			}
			for i, w := range cands {
				memo[ci][w] = trials[i]
			}
		}

		bestRho := st.rho
		bestIdx := -1
		var bestRes assign.Result
		bestAssigned := st.assigned
		for i := range cands {
			trial := trials[i]
			newAssigned := trial.AssignedCount()
			if cfg.Scope == LeftoverOnly {
				newAssigned += st.assigned
			}
			newRho := metrics.Ratio(newAssigned, len(center.Tasks))
			if newRho > bestRho+rhoEps {
				bestRho = newRho
				bestIdx = i
				bestRes = trial
				bestAssigned = newAssigned
			}
		}

		step := TraceStep{
			Iteration: iter, Recipient: ci, RhoBefore: st.rho,
			Trials: evaluated, MemoHits: hits, Pruned: pruned, Resumed: resumed,
		}
		if bestIdx < 0 {
			// Lines 20–21: no improving dispatch — the center leaves C'.
			step.Accepted = false
			step.RhoAfter = st.rho
			recipients = removeCenter(recipients, ci)
			mRejections.Inc()
		} else {
			// Lines 16–19: accept the dispatch and update the assignment.
			w := cands[bestIdx]
			src := pool.homeOf(w)
			pool.remove(w)
			step.Worker = w
			step.Source = src
			step.Accepted = true
			step.RhoAfter = bestRho

			// The lender loses the worker from its own set.
			delete(states[src].own, w)
			states[src].workers = removeSortedID(states[src].workers, w)
			st.borrowed = append(st.borrowed, w)
			st.workers = insertSortedID(st.workers, w)
			transfers = append(transfers, model.Transfer{Src: src, Dst: ci, Worker: w})
			mTransfers.Inc()
			// Both centers' states changed: the recipient's routes, borrowed
			// set and leftover tasks, and the lender's own-worker set. Their
			// cached trials (and trial bases) are stale; every other
			// center's remain valid.
			memo[ci] = nil
			memo[src] = nil
			baselines[src] = nil

			if cfg.Scope == LeftoverOnly {
				st.routes = append(st.routes, cloneRoutes(bestRes.Routes)...)
				st.leftTasks = append([]model.TaskID(nil), bestRes.LeftTasks...)
				// The leftover set shrank, so the cached admission slack
				// (computed over it) is stale.
				st.slackOK = false
			} else {
				st.routes = cloneRoutes(bestRes.Routes)
				st.leftTasks = append([]model.TaskID(nil), bestRes.LeftTasks...)
				// The accepted trial IS Sequential over the new worker set:
				// it becomes the next trial base without another run.
				if seqEngine {
					stored := bestRes
					baselines[ci] = &stored
				} else {
					baselines[ci] = nil
				}
				// Bi-directional update: sync the pool with the recipient's
				// own workers' new usage. Own workers used by the new plan
				// leave the pool; own workers now unused become available.
				leftSet := make(map[model.WorkerID]bool, len(bestRes.LeftWorkers))
				for _, lw := range bestRes.LeftWorkers {
					leftSet[lw] = true
				}
				for ow := range st.own {
					if leftSet[ow] {
						pool.add(ow, ci)
					} else {
						pool.remove(ow)
					}
				}
			}
			totalAssigned += bestAssigned - st.assigned
			st.assigned = bestAssigned
			st.rho = bestRho
			rhoVec[ci] = bestRho
			if st.rho >= 1-rhoEps {
				recipients = removeCenter(recipients, ci)
			}
		}
		// Unfairness and Φ are recomputed from the maintained ρ vector each
		// step: incremental float updates would drift from the reference
		// bit pattern, while the vector itself is maintained exactly.
		rv := append([]float64(nil), rhoVec...)
		step.Assigned = totalAssigned
		step.Unfairness = metrics.Unfairness(rv)
		step.Phi = metrics.Phi(rv)
		step.Rhos = rv
		step.Duration = time.Since(iterStart)
		res.Trace = append(res.Trace, step)
		emitGameIter(cfg.Obs, &step)
		if cfg.Tracer != nil {
			iterTS.End(
				obs.F("recipient", int(ci)),
				obs.F("accepted", step.Accepted),
				obs.F("trials", evaluated),
				obs.F("memo_hits", hits),
				obs.F("pruned", pruned),
				obs.F("resumed", resumed),
				obs.F("rho_after", step.RhoAfter))
		}
	}

	sol := model.NewSolution(in)
	for ci := range states {
		sol.PerCenter[ci].Routes = cloneRoutes(states[ci].routes)
	}
	sol.Transfers = transfers
	res.Solution = sol
	if cfg.Scope != LeftoverOnly && !cfg.noMemo {
		res.trialMemo = memo
	}
	return res
}

// emitGameIter publishes one game_iter telemetry event for a completed
// iteration; shared by Run and RunReference so the stream schema stays
// identical across engines.
func emitGameIter(o obs.Observer, step *TraceStep) {
	if !obs.Enabled(o) {
		return
	}
	fields := make([]obs.Field, 0, 16)
	fields = append(fields,
		obs.F("iter", step.Iteration),
		obs.F("recipient", int(step.Recipient)),
		obs.F("accepted", step.Accepted))
	if step.Accepted {
		fields = append(fields,
			obs.F("worker", int(step.Worker)),
			obs.F("source", int(step.Source)))
	}
	fields = append(fields,
		obs.F("rho_before", step.RhoBefore),
		obs.F("rho_after", step.RhoAfter),
		obs.F("phi", step.Phi),
		obs.F("rhos", step.Rhos),
		obs.F("assigned", step.Assigned),
		obs.F("unfairness", step.Unfairness),
		obs.F("trials", step.Trials),
		obs.F("memo_hits", step.MemoHits),
		obs.F("pruned", step.Pruned),
		obs.F("resumed", step.Resumed),
		obs.F("duration_ms", obs.DurationMs(step.Duration)))
	o.Event("game_iter", fields...)
}

const rhoEps = 1e-12

func countTasks(routes []model.Route) int {
	n := 0
	for _, r := range routes {
		n += len(r.Tasks)
	}
	return n
}

func cloneRoutes(rs []model.Route) []model.Route {
	out := make([]model.Route, len(rs))
	for i, r := range rs {
		out[i] = model.Route{Worker: r.Worker, Center: r.Center, Tasks: append([]model.TaskID(nil), r.Tasks...)}
	}
	return out
}

func removeCenter(cs []model.CenterID, c model.CenterID) []model.CenterID {
	for i, x := range cs {
		if x == c {
			return append(cs[:i], cs[i+1:]...)
		}
	}
	return cs
}

// insertSortedID returns ids (ascending) with w inserted in order.
func insertSortedID(ids []model.WorkerID, w model.WorkerID) []model.WorkerID {
	i := sort.Search(len(ids), func(j int) bool { return ids[j] >= w })
	ids = append(ids, 0)
	copy(ids[i+1:], ids[i:])
	ids[i] = w
	return ids
}

// removeSortedID returns ids (ascending) with w removed, preserving order.
func removeSortedID(ids []model.WorkerID, w model.WorkerID) []model.WorkerID {
	i := sort.Search(len(ids), func(j int) bool { return ids[j] >= w })
	if i == len(ids) || ids[i] != w {
		return ids
	}
	copy(ids[i:], ids[i+1:])
	return ids[:len(ids)-1]
}
