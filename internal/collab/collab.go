// Package collab implements phase 2 of IMTAO: the game-theoretic
// inter-center workforce transfer of paper §V (Algorithm 3).
//
// Centers are players; a recipient center's strategy is its borrowing worker
// set BWS(c); utilities are the UUP of Eq. 4. The best-response dynamics is
// specialised exactly as in the paper: in every iteration the recipient
// center with the lowest assignment ratio extends its BWS by the single
// available worker that maximises its post-reassignment ratio, keeps the
// move iff the ratio strictly improves, and drops out of the game otherwise.
// The loop reaches a state where no center can unilaterally improve — a pure
// Nash equilibrium of the collaboration game.
//
// The reassignment step is pluggable, giving the paper's baselines:
//
//	BDC  — bi-directional collaboration: re-run the per-center assigner over
//	       all of the recipient's workers (own + borrowed + candidate).
//	DC   — decomposed collaboration: the candidate worker only receives
//	       leftover tasks; prior routes stay frozen.
//	RBDC — BDC with the recipient picked uniformly at random instead of
//	       by minimum ratio.
package collab

import (
	"math/rand"
	"sort"
	"time"

	"imtao/internal/assign"
	"imtao/internal/metrics"
	"imtao/internal/model"
	"imtao/internal/obs"
)

// Game-progress counters, aggregated across every collaboration run of the
// process.
var (
	mIterations = obs.Default.Counter("imtao_collab_iterations_total",
		"game iterations executed (accepted + rejected)")
	mTransfers = obs.Default.Counter("imtao_collab_transfers_total",
		"accepted workforce dispatches")
	mRejections = obs.Default.Counter("imtao_collab_rejections_total",
		"iterations ending with a center leaving the game")
	mTrials = obs.Default.Counter("imtao_collab_trials_total",
		"trial re-assignments evaluated (memo hits excluded)")
	mMemoHits = obs.Default.Counter("imtao_collab_memo_hits_total",
		"trial results served from the cross-iteration cache")
	mMemoMisses = obs.Default.Counter("imtao_collab_memo_misses_total",
		"trial lookups that missed the cache and were evaluated")
)

// RecipientPolicy selects the recipient center each iteration.
type RecipientPolicy int

const (
	// MinRatio picks the center with the lowest assignment ratio
	// (paper Algorithm 3 line 13) — the BDC/DC setting.
	MinRatio RecipientPolicy = iota
	// RandomRecipient picks uniformly at random — the RBDC baseline.
	RandomRecipient
	// MaxLeftover picks the center with the most unassigned tasks — an
	// ablation alternative (DESIGN.md §6) that chases volume rather than
	// fairness.
	MaxLeftover
)

// Scope selects how a recipient reassigns after borrowing a worker.
type Scope int

const (
	// FullReassign re-runs the assigner over the recipient's complete
	// worker set — the paper's bi-directional collaboration.
	FullReassign Scope = iota
	// LeftoverOnly gives the borrowed worker leftover tasks without touching
	// existing routes — the paper's decomposed collaboration (DC).
	LeftoverOnly
)

// Assigner is a per-center assignment routine: Sequential or Optimal from
// the assign package (or any custom policy with the same contract).
type Assigner func(in *model.Instance, c *model.Center, workers []model.WorkerID, tasks []model.TaskID) assign.Result

// CandidatePolicy selects how the dispatched worker is chosen among the
// available pool each iteration (Algorithm 3 line 14).
type CandidatePolicy int

const (
	// BestResponse evaluates every available worker by re-assignment and
	// picks the ratio-maximising one — the paper's best-response step.
	BestResponse CandidatePolicy = iota
	// NearestWorker picks the available worker closest to the recipient
	// center — a cheap heuristic ablation that skips the trial
	// re-assignments (one evaluation per iteration instead of |pool|).
	NearestWorker
)

// Config configures a collaboration run.
type Config struct {
	Recipient RecipientPolicy
	Candidate CandidatePolicy
	Scope     Scope
	Assigner  Assigner
	// Rng drives RandomRecipient; ignored otherwise. Required when
	// Recipient == RandomRecipient.
	Rng *rand.Rand
	// MaxIterations caps the game loop as a safety net; 0 means the natural
	// bound (every worker transferred once plus every center dropped once).
	MaxIterations int
	// Parallelism bounds the goroutines evaluating best-response trials
	// within one game iteration. 0 means GOMAXPROCS; 1 forces the legacy
	// serial path. Results are bit-identical at every setting: trials are
	// written to fixed slots and the winner is selected by a serial scan
	// (max ρ, ties to the lowest worker ID). Custom Assigners must be safe
	// for concurrent calls when Parallelism != 1.
	Parallelism int
	// Obs receives one "game_iter" event per iteration carrying the
	// potential Φ, the full ρ vector, trial/memo counts and the iteration
	// latency. Nil (or obs.Nop) disables emission; the TraceStep record is
	// filled either way.
	Obs obs.Observer
	// noMemo disables the cross-iteration trial cache. Test hook only: the
	// cache is semantics-preserving for deterministic assigners, so there is
	// no reason to expose it.
	noMemo bool
}

// TraceStep records one iteration of the collaboration game, feeding the
// convergence analysis of paper Fig. 11.
type TraceStep struct {
	Iteration  int
	Recipient  model.CenterID
	Worker     model.WorkerID // worker evaluated (undefined when none available)
	Source     model.CenterID // the worker's home center
	Accepted   bool
	RhoBefore  float64
	RhoAfter   float64
	Assigned   int     // platform-wide assigned tasks after the step
	Unfairness float64 // platform-wide U_ρ after the step
	// Phi is the game potential Φ after the step — the sum of per-center
	// assignment ratios (metrics.Phi), monotonically non-decreasing along
	// the dynamics.
	Phi float64
	// Rhos is the full per-center ratio vector after the step.
	Rhos []float64
	// Trials counts the trial re-assignments evaluated this iteration;
	// MemoHits counts candidates served from the cross-iteration cache
	// instead.
	Trials   int
	MemoHits int
	// Duration is the iteration's wall-clock time. It is the one TraceStep
	// field outside the determinism contract — everything else is
	// bit-identical across parallelism levels.
	Duration time.Duration
}

// Result bundles the collaboration outcome.
type Result struct {
	Solution *model.Solution
	Trace    []TraceStep
	// Iterations is the number of game iterations executed (accepted or
	// rejected), matching η in Algorithm 3.
	Iterations int
	// trialMemo is the surviving (recipient, worker) → trial cache at game
	// end. Every entry was computed against its center's final state (stale
	// entries are dropped the moment a center's state changes), so the
	// equilibrium check can reuse them verbatim — see
	// Result.VerifyEquilibrium. Populated only for FullReassign runs; DC
	// trials have different semantics than the verifier's.
	trialMemo []map[model.WorkerID]assign.Result
}

// NoCollaboration assembles the phase-1 results into a Solution without any
// workforce transfer — the paper's w/o-C baseline.
func NoCollaboration(in *model.Instance, phase1 []assign.Result) *model.Solution {
	sol := model.NewSolution(in)
	for ci := range in.Centers {
		sol.PerCenter[ci].Routes = cloneRoutes(phase1[ci].Routes)
	}
	return sol
}

// Run executes the multi-center collaboration game (paper Algorithm 3) on
// top of the phase-1 per-center results and returns the final solution with
// its iteration trace. The instance is not mutated.
func Run(in *model.Instance, phase1 []assign.Result, cfg Config) Result {
	if cfg.Assigner == nil {
		cfg.Assigner = assign.Sequential
	}
	// Idempotent: a no-op when core.Run already prepared the instance, and
	// a safety net for direct callers so the trial re-assignments below hit
	// the memoized snap path of a node metric.
	in.PrepareMetric()
	n := len(in.Centers)

	// Per-center mutable state.
	type centerState struct {
		routes    []model.Route
		leftTasks []model.TaskID
		// own is the set of workers homed here and not lent out.
		own map[model.WorkerID]bool
		// borrowed workers received from other centers, in arrival order.
		borrowed []model.WorkerID
		rho      float64
	}
	states := make([]centerState, n)
	// pool is the available worker set C.W_left: worker -> home center.
	pool := make(map[model.WorkerID]model.CenterID)
	for ci := range in.Centers {
		st := &states[ci]
		st.routes = cloneRoutes(phase1[ci].Routes)
		st.leftTasks = append([]model.TaskID(nil), phase1[ci].LeftTasks...)
		st.own = make(map[model.WorkerID]bool, len(in.Centers[ci].Workers))
		for _, w := range in.Centers[ci].Workers {
			st.own[w] = true
		}
		st.rho = metrics.Ratio(countTasks(st.routes), len(in.Centers[ci].Tasks))
		for _, w := range phase1[ci].LeftWorkers {
			pool[w] = model.CenterID(ci)
		}
	}

	// Line 3–10: recipient set C' = centers with ρ < 1.
	var recipients []model.CenterID
	for ci := range in.Centers {
		if states[ci].rho < 1 {
			recipients = append(recipients, model.CenterID(ci))
		}
	}

	maxIter := cfg.MaxIterations
	if maxIter <= 0 {
		// Every accepted iteration raises the recipient's assigned count by
		// at least one task and every rejection permanently removes a
		// center, so |S| + |C| bounds the game length.
		maxIter = len(in.Tasks) + n + 1
	}

	res := Result{}
	var transfers []model.Transfer
	rhos := func() []float64 {
		out := make([]float64, n)
		for i := range states {
			out[i] = states[i].rho
		}
		return out
	}
	totalAssigned := func() int {
		t := 0
		for i := range states {
			t += countTasks(states[i].routes)
		}
		return t
	}

	workerSetOf := func(ci model.CenterID) []model.WorkerID {
		st := &states[ci]
		out := make([]model.WorkerID, 0, len(st.own)+len(st.borrowed))
		for w := range st.own {
			out = append(out, w)
		}
		out = append(out, st.borrowed...)
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out
	}

	// memo caches trial re-assignment results per (recipient, worker). A
	// trial depends only on the recipient's state (worker set, routes,
	// leftover tasks) and the candidate, so an entry stays valid until the
	// recipient's state changes: the whole per-center map is dropped when the
	// center accepts a dispatch (its routes/borrowed/leftTasks change) or
	// lends one of its own workers out (its worker set shrinks). Workers that
	// leave the pool simply stop being looked up.
	//
	// In the paper-exact dynamics every turn ends by either mutating the
	// recipient (accept) or removing it from the game (reject), so the cache
	// cannot re-hit during Run itself with the built-in policies; it exists
	// to carry each center's final-state trials out of the game, where
	// Result.VerifyEquilibrium reuses them instead of re-running the
	// assigner over the whole pool, and to keep future recipient policies
	// that revisit centers incremental for free.
	memo := make([]map[model.WorkerID]assign.Result, n)

	for iter := 1; iter <= maxIter && len(recipients) > 0 && len(pool) > 0; iter++ {
		iterStart := time.Now()
		res.Iterations = iter
		mIterations.Inc()
		// Line 13: recipient selection.
		var ci model.CenterID
		switch cfg.Recipient {
		case RandomRecipient:
			ci = recipients[cfg.Rng.Intn(len(recipients))]
		case MaxLeftover:
			ci = recipients[0]
			for _, c := range recipients[1:] {
				if len(states[c].leftTasks) > len(states[ci].leftTasks) ||
					(len(states[c].leftTasks) == len(states[ci].leftTasks) && c < ci) {
					ci = c
				}
			}
		default:
			ci = metrics.MinRatioCenter(rhos(), recipients)
		}
		st := &states[ci]
		center := in.Center(ci)

		// Candidate workers: available pool minus the recipient's own
		// (its own unused workers are already in its worker set).
		cands := make([]model.WorkerID, 0, len(pool))
		for w := range pool {
			if !st.own[w] {
				cands = append(cands, w)
			}
		}
		sort.Slice(cands, func(i, j int) bool { return cands[i] < cands[j] })
		if cfg.Candidate == NearestWorker && len(cands) > 1 {
			// Heuristic ablation: only evaluate the nearest available
			// worker. Ties break by ID via the pre-sorted order.
			best := cands[0]
			bd := in.Worker(best).Loc.Dist2(center.Loc)
			for _, w := range cands[1:] {
				if d := in.Worker(w).Loc.Dist2(center.Loc); d < bd {
					best, bd = w, d
				}
			}
			cands = []model.WorkerID{best}
		}

		// Line 14: best response — the candidate maximising the
		// post-reassignment ratio. Line 15: evaluated via re-assignment.
		// Trials are independent of each other (each re-assigns a copy of the
		// recipient's worker set), so cache misses are evaluated concurrently
		// into fixed slots; the winner is then picked by the same serial scan
		// as the legacy loop, keeping the output bit-identical.
		var baseWS []model.WorkerID
		if cfg.Scope != LeftoverOnly {
			baseWS = workerSetOf(ci)
		}
		trials, evaluated := evalTrials(in, center, cands, baseWS, st.leftTasks, cfg, memo[ci])
		hits := len(cands) - evaluated
		mTrials.Add(int64(evaluated))
		mMemoMisses.Add(int64(evaluated))
		mMemoHits.Add(int64(hits))
		if !cfg.noMemo {
			if memo[ci] == nil {
				memo[ci] = make(map[model.WorkerID]assign.Result, len(cands))
			}
			for i, w := range cands {
				memo[ci][w] = trials[i]
			}
		}

		curAssigned := countTasks(st.routes)
		bestRho := st.rho
		bestIdx := -1
		var bestRes assign.Result
		for i := range cands {
			trial := trials[i]
			newAssigned := trial.AssignedCount()
			if cfg.Scope == LeftoverOnly {
				newAssigned += curAssigned
			}
			newRho := metrics.Ratio(newAssigned, len(center.Tasks))
			if newRho > bestRho+rhoEps {
				bestRho = newRho
				bestIdx = i
				bestRes = trial
			}
		}

		step := TraceStep{
			Iteration: iter, Recipient: ci, RhoBefore: st.rho,
			Trials: evaluated, MemoHits: hits,
		}
		if bestIdx < 0 {
			// Lines 20–21: no improving dispatch — the center leaves C'.
			step.Accepted = false
			step.RhoAfter = st.rho
			recipients = removeCenter(recipients, ci)
			mRejections.Inc()
		} else {
			// Lines 16–19: accept the dispatch and update the assignment.
			w := cands[bestIdx]
			src := pool[w]
			delete(pool, w)
			step.Worker = w
			step.Source = src
			step.Accepted = true
			step.RhoAfter = bestRho

			// The lender loses the worker from its own set.
			delete(states[src].own, w)
			st.borrowed = append(st.borrowed, w)
			transfers = append(transfers, model.Transfer{Src: src, Dst: ci, Worker: w})
			mTransfers.Inc()
			// Both centers' states changed: the recipient's routes, borrowed
			// set and leftover tasks, and the lender's own-worker set. Their
			// cached trials are stale; every other center's remain valid.
			memo[ci] = nil
			memo[src] = nil

			if cfg.Scope == LeftoverOnly {
				st.routes = append(st.routes, cloneRoutes(bestRes.Routes)...)
				st.leftTasks = append([]model.TaskID(nil), bestRes.LeftTasks...)
			} else {
				st.routes = cloneRoutes(bestRes.Routes)
				st.leftTasks = append([]model.TaskID(nil), bestRes.LeftTasks...)
				// Bi-directional update: sync the pool with the recipient's
				// own workers' new usage. Own workers used by the new plan
				// leave the pool; own workers now unused become available.
				leftSet := make(map[model.WorkerID]bool, len(bestRes.LeftWorkers))
				for _, lw := range bestRes.LeftWorkers {
					leftSet[lw] = true
				}
				for ow := range st.own {
					if leftSet[ow] {
						pool[ow] = ci
					} else {
						delete(pool, ow)
					}
				}
			}
			st.rho = bestRho
			if st.rho >= 1-rhoEps {
				recipients = removeCenter(recipients, ci)
			}
		}
		rv := rhos()
		step.Assigned = totalAssigned()
		step.Unfairness = metrics.Unfairness(rv)
		step.Phi = metrics.Phi(rv)
		step.Rhos = rv
		step.Duration = time.Since(iterStart)
		res.Trace = append(res.Trace, step)
		if obs.Enabled(cfg.Obs) {
			fields := make([]obs.Field, 0, 14)
			fields = append(fields,
				obs.F("iter", step.Iteration),
				obs.F("recipient", int(step.Recipient)),
				obs.F("accepted", step.Accepted))
			if step.Accepted {
				fields = append(fields,
					obs.F("worker", int(step.Worker)),
					obs.F("source", int(step.Source)))
			}
			fields = append(fields,
				obs.F("rho_before", step.RhoBefore),
				obs.F("rho_after", step.RhoAfter),
				obs.F("phi", step.Phi),
				obs.F("rhos", step.Rhos),
				obs.F("assigned", step.Assigned),
				obs.F("unfairness", step.Unfairness),
				obs.F("trials", step.Trials),
				obs.F("memo_hits", step.MemoHits),
				obs.F("duration_ms", obs.DurationMs(step.Duration)))
			cfg.Obs.Event("game_iter", fields...)
		}
	}

	sol := model.NewSolution(in)
	for ci := range states {
		sol.PerCenter[ci].Routes = cloneRoutes(states[ci].routes)
	}
	sol.Transfers = transfers
	res.Solution = sol
	if cfg.Scope != LeftoverOnly && !cfg.noMemo {
		res.trialMemo = memo
	}
	return res
}

const rhoEps = 1e-12

func countTasks(routes []model.Route) int {
	n := 0
	for _, r := range routes {
		n += len(r.Tasks)
	}
	return n
}

func cloneRoutes(rs []model.Route) []model.Route {
	out := make([]model.Route, len(rs))
	for i, r := range rs {
		out[i] = model.Route{Worker: r.Worker, Center: r.Center, Tasks: append([]model.TaskID(nil), r.Tasks...)}
	}
	return out
}

func removeCenter(cs []model.CenterID, c model.CenterID) []model.CenterID {
	for i, x := range cs {
		if x == c {
			return append(cs[:i], cs[i+1:]...)
		}
	}
	return cs
}
