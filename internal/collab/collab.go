// Package collab implements phase 2 of IMTAO: the game-theoretic
// inter-center workforce transfer of paper §V (Algorithm 3).
//
// Centers are players; a recipient center's strategy is its borrowing worker
// set BWS(c); utilities are the UUP of Eq. 4. The best-response dynamics is
// specialised exactly as in the paper: in every iteration the recipient
// center with the lowest assignment ratio extends its BWS by the single
// available worker that maximises its post-reassignment ratio, keeps the
// move iff the ratio strictly improves, and drops out of the game otherwise.
// The loop reaches a state where no center can unilaterally improve — a pure
// Nash equilibrium of the collaboration game.
//
// The reassignment step is pluggable, giving the paper's baselines:
//
//	BDC  — bi-directional collaboration: re-run the per-center assigner over
//	       all of the recipient's workers (own + borrowed + candidate).
//	DC   — decomposed collaboration: the candidate worker only receives
//	       leftover tasks; prior routes stay frozen.
//	RBDC — BDC with the recipient picked uniformly at random instead of
//	       by minimum ratio.
//
// Run is the optimized engine (DESIGN.md §11): admissibility pruning skips
// candidates that provably cannot take a task, the resumable trial engine of
// the assign package replays only the serve-order suffix each trial
// perturbs, and the game bookkeeping (ρ vector, assigned counts, candidate
// pool) is maintained incrementally. The engine is exposed as a stepwise
// Game (NewGame/Step/Finish) so harnesses can observe or meter individual
// iterations; Run is the canonical loop over it. In the warmed-up steady
// state one accepted Step performs zero heap allocations (DESIGN.md §13):
// every per-iteration slice comes from recycled scratch, slab arenas or the
// double-buffered per-center promotion buffers. RunReference (frozen.go) is
// the preserved pre-engine loop; both produce bit-identical solutions and
// traces (modulo the trial/memo/prune counters and Duration).
package collab

import (
	"math/rand"
	"reflect"
	"slices"
	"sort"
	"time"

	"imtao/internal/assign"
	"imtao/internal/metrics"
	"imtao/internal/model"
	"imtao/internal/obs"
	"imtao/internal/provenance"
	"imtao/internal/slab"
)

// Game-progress counters, aggregated across every collaboration run of the
// process.
var (
	mIterations = obs.Default.Counter("imtao_collab_iterations_total",
		"game iterations executed (accepted + rejected)")
	mTransfers = obs.Default.Counter("imtao_collab_transfers_total",
		"accepted workforce dispatches")
	mRejections = obs.Default.Counter("imtao_collab_rejections_total",
		"iterations ending with a center leaving the game")
	mTrials = obs.Default.Counter("imtao_collab_trials_total",
		"trial re-assignments evaluated (memo hits and pruned candidates excluded)")
	mMemoHits = obs.Default.Counter("imtao_collab_memo_hits_total",
		"trial results served from the cross-iteration cache; while the memo is "+
			"enabled, memo_hits + memo_misses = candidate lookups, so the hit "+
			"ratio is hits/(hits+misses)")
	mMemoMisses = obs.Default.Counter("imtao_collab_memo_misses_total",
		"trial lookups that missed the cache and were evaluated; complement of "+
			"imtao_collab_memo_hits_total per lookup — neither counter moves "+
			"when the memo is disabled")
	mPruned = obs.Default.Counter("imtao_collab_candidates_pruned_total",
		"pool candidates skipped by admissibility pruning (their trials "+
			"provably return the baseline assignment)")
	mResumed = obs.Default.Counter("imtao_collab_resume_trials_total",
		"trials served by the prefix-resume engine instead of a full "+
			"re-assignment")
	mSnapshotBytes = obs.Default.Gauge("imtao_collab_snapshot_bytes",
		"estimated footprint of the current recipient's trial-base snapshot "+
			"(serve order, baseline routes, leftover-task pool)")
	mIterSeconds = obs.Default.Quantile("imtao_collab_iter_seconds",
		"wall time of one game iteration (best-response trial sweep + "+
			"dispatch); exact-rank p50/p90/p99/p999 over every iteration of "+
			"the process")
	mGamePhi = obs.Default.Gauge("imtao_game_phi",
		"potential Φ after the most recent game iteration — falling toward "+
			"its fixed point while the game converges")
)

// RecipientPolicy selects the recipient center each iteration.
type RecipientPolicy int

const (
	// MinRatio picks the center with the lowest assignment ratio
	// (paper Algorithm 3 line 13) — the BDC/DC setting.
	MinRatio RecipientPolicy = iota
	// RandomRecipient picks uniformly at random — the RBDC baseline.
	RandomRecipient
	// MaxLeftover picks the center with the most unassigned tasks — an
	// ablation alternative (DESIGN.md §6) that chases volume rather than
	// fairness.
	MaxLeftover
)

// Scope selects how a recipient reassigns after borrowing a worker.
type Scope int

const (
	// FullReassign re-runs the assigner over the recipient's complete
	// worker set — the paper's bi-directional collaboration.
	FullReassign Scope = iota
	// LeftoverOnly gives the borrowed worker leftover tasks without touching
	// existing routes — the paper's decomposed collaboration (DC).
	LeftoverOnly
)

// Assigner is a per-center assignment routine: Sequential or Optimal from
// the assign package (or any custom policy with the same contract).
type Assigner func(in *model.Instance, c *model.Center, workers []model.WorkerID, tasks []model.TaskID) assign.Result

// CandidatePolicy selects how the dispatched worker is chosen among the
// available pool each iteration (Algorithm 3 line 14).
type CandidatePolicy int

const (
	// BestResponse evaluates every available worker by re-assignment and
	// picks the ratio-maximising one — the paper's best-response step.
	BestResponse CandidatePolicy = iota
	// NearestWorker picks the available worker closest to the recipient
	// center — a cheap heuristic ablation that skips the trial
	// re-assignments (one evaluation per iteration instead of |pool|).
	NearestWorker
)

// PruneMode selects whether admissibility pruning filters trial candidates.
type PruneMode int

// Pruning soundness (DESIGN.md §11) rests on two conditions. First, the
// assigner must give a pruned worker — one that cannot feasibly deliver any
// first task — an empty route, so a pruned candidate's trial equals a plain
// re-run over the unchanged worker set. Second, that plain re-run must not
// itself beat the recipient's CURRENT routes: the phase-1 state has to be a
// fixed point of (or dominate) the game's assigner over the same worker set,
// or the reference dynamics could accept a pruned candidate on the strength
// of the re-run alone. core.Run satisfies this by construction — one
// assigner drives both phases — as do a Sequential game over an Optimal
// phase 1 (Optimal dominates) and every LeftoverOnly run (a pruned DC trial
// serves zero leftover tasks regardless of provenance).
const (
	// PruneAuto (the default) enables pruning exactly when the first
	// condition is provable without caller assumptions: the built-in
	// assign.Sequential (or a nil Assigner, which defaults to it). Custom
	// assigners run unpruned because the pruning argument is
	// assigner-specific.
	PruneAuto PruneMode = iota
	// PruneOn forces pruning. The caller asserts the soundness conditions
	// above — the first holds for assign.Sequential and for unbudgeted
	// assign.Optimal, whose enumeration grows from feasible singletons.
	PruneOn
	// PruneOff disables pruning — required for wall-clock-dependent
	// assigners (e.g. budgeted Optimal), where a pruned candidate's trial
	// is not reproducible anyway, and for phase-1 states produced by a
	// weaker assigner than the game's.
	PruneOff
)

// Config configures a collaboration run.
type Config struct {
	Recipient RecipientPolicy
	Candidate CandidatePolicy
	Scope     Scope
	Assigner  Assigner
	// Rng drives RandomRecipient; ignored otherwise. Required when
	// Recipient == RandomRecipient.
	Rng *rand.Rand
	// MaxIterations caps the game loop as a safety net; 0 means the natural
	// bound (every worker transferred once plus every center dropped once).
	MaxIterations int
	// Parallelism bounds the goroutines evaluating best-response trials
	// within one game iteration. 0 means GOMAXPROCS; 1 forces the legacy
	// serial path. Results are bit-identical at every setting: trials are
	// written to fixed slots and the winner is selected by a serial scan
	// (max ρ, ties to the lowest worker ID). Custom Assigners must be safe
	// for concurrent calls when Parallelism != 1.
	Parallelism int
	// Prune selects admissibility pruning (DESIGN.md §11). The zero value
	// PruneAuto prunes for the built-in Sequential assigner only; pruning
	// never changes the solution or trace beyond the Trials/MemoHits/Pruned
	// counters.
	Prune PruneMode
	// Obs receives one "game_iter" event per iteration carrying the
	// potential Φ, the full ρ vector, trial/memo/prune counts and the
	// iteration latency. Nil (or obs.Nop) disables emission; the TraceStep
	// record is filled either way.
	Obs obs.Observer
	// Tracer records one game_iter span per iteration with one child trial
	// span per evaluated candidate (carrying its resume/full outcome), so a
	// Perfetto timeline shows where the game's wall-clock goes. Nil (the
	// default) records nothing at zero cost.
	Tracer *obs.Tracer
	// TraceParent is the span the iteration spans attach under — core.Run
	// passes its phase-2 span; zero parents them at the trace root.
	TraceParent obs.SpanID
	// Prov, when non-nil, records every iteration of this game into the
	// provenance ledger's game log: recipient, candidate trials with their
	// memo/full/resumed provenance, prune counts and admission slack,
	// Δρ/ΔΦ, and the accepted route delta. Nil (the default) keeps the
	// disabled path at a single pointer check per iteration — the
	// zero-allocation steady state is unchanged (alloc_test.go).
	Prov *provenance.GameLog
	// noMemo disables the cross-iteration trial cache. Test hook only: the
	// cache is semantics-preserving for deterministic assigners, so there is
	// no reason to expose it.
	noMemo bool
	// prunedHook, when non-nil, forces the exact (index-free) admissibility
	// scan and observes every pruned candidate together with the recipient
	// state needed to replay its full trial. Test hook backing the
	// pruning-soundness property test.
	prunedHook func(recipient model.CenterID, w model.WorkerID,
		baseWS []model.WorkerID, leftTasks []model.TaskID, assigned int)
	// members restricts the game to a subset of centers — the sharded
	// engine's phase-A games (shard.go). Only member centers are initialized,
	// selected as recipients or allowed to lend; TraceStep.Rhos/Assigned/
	// Unfairness/Phi switch to shard-local semantics (the member-ordered ρ
	// vector and the members' assigned total). Nil means every center plays
	// (the unsharded engine, global semantics).
	members []model.CenterID
	// poolMask/poolBit gate pool admission per worker: with a non-nil mask a
	// worker enters the pool only when poolMask[w] == poolBit — the sharded
	// engine passes each worker's shard-membership bitset and the shard's own
	// bit, so exactly the shard-exclusive workers circulate in phase A while
	// boundary workers wait for the reconcile game. The gate covers both the
	// initial LeftWorkers admission and own workers returning to the pool
	// after an accepted reassignment.
	poolMask []uint64
	poolBit  uint64
	// resume seeds the game from a mid-dynamics state instead of a fresh
	// phase-1 one: prior transfers are replayed into the own/borrowed sets
	// (and appended to the transfer log), and the per-center trial memos of
	// the prior games are carried over. The caller asserts the input results
	// describe each center's CURRENT routes/leftovers/unused-own-workers and
	// that every memo entry was computed against that exact center state —
	// the sharded engine's phase-B reconcile game satisfies both by
	// construction (shard.go).
	resume *resumeState
}

// resumeState carries a prior game's outcome into a resumed Game — see
// Config.resume.
type resumeState struct {
	transfers []model.Transfer
	memo      []map[model.WorkerID]assign.Result
}

// sequentialPtr identifies the built-in Sequential assigner by code pointer,
// surviving the Assigner func-type conversion.
var sequentialPtr = reflect.ValueOf(assign.Sequential).Pointer()

// isSequentialAssigner reports whether a is nil (defaults to Sequential) or
// assign.Sequential itself — the engines that admit exact pruning and
// prefix-resume trials.
func isSequentialAssigner(a Assigner) bool {
	return a == nil || reflect.ValueOf(a).Pointer() == sequentialPtr
}

// TraceStep records one iteration of the collaboration game, feeding the
// convergence analysis of paper Fig. 11.
type TraceStep struct {
	Iteration  int
	Recipient  model.CenterID
	Worker     model.WorkerID // worker evaluated (undefined when none available)
	Source     model.CenterID // the worker's home center
	Accepted   bool
	RhoBefore  float64
	RhoAfter   float64
	Assigned   int     // platform-wide assigned tasks after the step
	Unfairness float64 // platform-wide U_ρ after the step
	// Phi is the game potential Φ after the step — the sum of per-center
	// assignment ratios (metrics.Phi), monotonically non-decreasing along
	// the dynamics.
	Phi float64
	// Rhos is the full per-center ratio vector after the step.
	Rhos []float64
	// Trials counts the trial re-assignments evaluated this iteration;
	// MemoHits counts candidates served from the cross-iteration cache
	// instead.
	Trials   int
	MemoHits int
	// Pruned counts pool candidates skipped this iteration by admissibility
	// pruning — their trials provably return the baseline. Resumed counts
	// evaluated trials served by the prefix-resume engine instead of a full
	// re-assignment. Both are zero under RunReference; together with Trials
	// and MemoHits they are diagnostics, not part of the cross-engine
	// equivalence contract.
	Pruned  int
	Resumed int
	// Duration is the iteration's wall-clock time. It is the one TraceStep
	// field outside the determinism contract — everything else (minus the
	// counter diagnostics above) is bit-identical across parallelism levels
	// and engines.
	Duration time.Duration
}

// Result bundles the collaboration outcome.
type Result struct {
	Solution *model.Solution
	Trace    []TraceStep
	// Iterations is the number of game iterations executed (accepted or
	// rejected), matching η in Algorithm 3.
	Iterations int
	// trialMemo is the surviving (recipient, worker) → trial cache at game
	// end. Every entry was computed against its center's final state (stale
	// entries are dropped the moment a center's state changes), so the
	// equilibrium check can reuse them verbatim — see
	// Result.VerifyEquilibrium. Populated only for FullReassign runs; DC
	// trials have different semantics than the verifier's. Pruned
	// candidates have no entry; the verifier re-prunes them instead.
	trialMemo []map[model.WorkerID]assign.Result
}

// NoCollaboration assembles the phase-1 results into a Solution without any
// workforce transfer — the paper's w/o-C baseline.
func NoCollaboration(in *model.Instance, phase1 []assign.Result) *model.Solution {
	sol := model.NewSolution(in)
	for ci := range in.Centers {
		sol.PerCenter[ci].Routes = cloneRoutes(phase1[ci].Routes)
	}
	return sol
}

// promoBuf is one half of a center's double-buffered result promotion: a
// flat task slab backing every route of one accepted assignment plus its
// leftover tasks, a route header array pointing into it, and the unused
// worker list. Promoting an accepted trial deep-copies it out of the trial
// runner's arenas (which recycle next iteration) without allocating once the
// buffers reach their high-water capacity.
type promoBuf struct {
	routes []model.Route
	tasks  []model.TaskID // all route tasks, then the leftover tasks
	left   []model.TaskID // the leftover view into tasks' tail
	lws    []model.WorkerID
}

// promote deep-copies r into the buffer. The copy is laid out
// structure-of-arrays style: one contiguous task slab with capacity-clamped
// route views, so the next trial base walks one cache-friendly array.
func (pb *promoBuf) promote(r *assign.Result) {
	total := 0
	for i := range r.Routes {
		total += len(r.Routes[i].Tasks)
	}
	// The buffers regrow with geometric headroom: an accepted dispatch
	// typically adds one route and one task, so exact sizing would realloc
	// on every single accept instead of amortising to zero.
	need := total + len(r.LeftTasks)
	if cap(pb.tasks) < need {
		pb.tasks = make([]model.TaskID, need, growCap(cap(pb.tasks), need))
	} else {
		pb.tasks = pb.tasks[:need]
	}
	if cap(pb.routes) < len(r.Routes) {
		pb.routes = make([]model.Route, len(r.Routes), growCap(cap(pb.routes), len(r.Routes)))
	} else {
		pb.routes = pb.routes[:len(r.Routes)]
	}
	if cap(pb.lws) < len(r.LeftWorkers) {
		pb.lws = make([]model.WorkerID, len(r.LeftWorkers), growCap(cap(pb.lws), len(r.LeftWorkers)))
	} else {
		pb.lws = pb.lws[:len(r.LeftWorkers)]
	}
	off := 0
	for i := range r.Routes {
		rt := &r.Routes[i]
		n := len(rt.Tasks)
		copy(pb.tasks[off:off+n], rt.Tasks)
		pb.routes[i] = model.Route{Worker: rt.Worker, Center: rt.Center,
			Tasks: pb.tasks[off : off+n : off+n]}
		off += n
	}
	copy(pb.tasks[off:], r.LeftTasks)
	pb.left = pb.tasks[off:len(pb.tasks):len(pb.tasks)]
	copy(pb.lws, r.LeftWorkers)
}

// centerState is one center's mutable game state. The former per-field maps
// (own-worker set, trial memo keys) are ID-sorted slices maintained
// incrementally, and accepted assignments live in the double-buffered
// promotion slabs — one buffer holds the live state the current iteration's
// trials alias, the other receives the accepted result, then they flip.
type centerState struct {
	routes    []model.Route
	leftTasks []model.TaskID
	// own is the ID-sorted set of workers homed here and not lent out.
	own []model.WorkerID
	// borrowed workers received from other centers, in arrival order.
	borrowed []model.WorkerID
	// workers is own ∪ borrowed in ascending ID order, maintained
	// incrementally (the legacy loop rebuilt and sorted it per iteration).
	workers []model.WorkerID
	// assigned is countTasks(routes), maintained incrementally.
	assigned int
	rho      float64
	// slack caches assign.AdmissionSlack for the pruning scope; valid
	// until slackOK is cleared (LeftoverOnly invalidates on accept —
	// its slack covers the mutable leftover set; FullReassign's covers
	// the static center.Tasks).
	slack   float64
	slackOK bool
	// baseline caches the assigner result the prefix-resume engine replays
	// against — the trial base. An accepted trial IS the new baseline
	// (promoted), so steady-state iterations never run the assigner for it;
	// lending a worker out clears baselineOK (the worker set changed).
	baseline   assign.Result
	baselineOK bool
	// promo double-buffers result promotion: promo[flip] backs the live
	// routes/leftTasks/baseline, promo[1-flip] receives the next accepted
	// result (whose trial slices alias promo[flip] — a single buffer would
	// overwrite its own source).
	promo [2]promoBuf
	flip  int
}

// Game is the stepwise optimized collaboration engine. NewGame captures the
// phase-1 state, each Step executes one iteration of Algorithm 3's
// best-response dynamics (returning false once the game is over), and Finish
// assembles the Result and releases pooled scratch. Run wraps the three for
// the common case; harnesses that meter individual iterations (the
// allocation benchmarks) drive Step directly.
//
// A Game is single-use and not safe for concurrent use; within one Step,
// trial evaluation fans out per Config.Parallelism.
type Game struct {
	in        *model.Instance
	cfg       Config
	seqEngine bool
	pruneOn   bool

	states        []centerState
	pool          *workerPool
	totalAssigned int
	rhoVec        []float64
	recipients    []model.CenterID
	memo          []map[model.WorkerID]assign.Result
	// members mirrors cfg.members (nil for the global game); memberRhos is
	// the preallocated member-ordered ρ scratch the shard-local trace path
	// fills each step before snapshotting it into the rhos arena.
	members    []model.CenterID
	memberRhos []float64

	// base is the per-iteration trial-base snapshot, reset in place;
	// runners are the long-lived trial evaluators rebound to it (slot 0
	// serves the serial path, slots 0..P-1 the parallel path).
	base    assign.TrialBase
	runners []*assign.TrialRunner
	// seqScratch serves the Sequential engine's re-baseline runs (a
	// recipient that lent a worker since its last visit) from recycled
	// buffers; the result is promoted into the center's buffers like an
	// accepted trial.
	seqScratch assign.SequentialScratch
	// trials/missIdx are the per-iteration evaluation scratch.
	trials  []assign.Result
	missIdx []int
	// rhos carves the per-step ρ-vector snapshots (TraceStep.Rhos) from one
	// growing slab instead of one allocation per iteration. Never reset:
	// the snapshots are part of the returned trace.
	rhos slab.Arena[float64]

	maxIter   int
	iter      int
	res       Result
	transfers []model.Transfer
	done      bool
}

// Run executes the multi-center collaboration game (paper Algorithm 3) on
// top of the phase-1 per-center results and returns the final solution with
// its iteration trace. The instance is not mutated.
//
// This is the optimized engine: bit-identical to RunReference in solution,
// transfers and trace (Trials/MemoHits/Pruned/Resumed and Duration aside),
// but with admissibility pruning, prefix-resume trials, incremental
// bookkeeping and recycled per-iteration memory — see DESIGN.md §11 and §13
// for the architecture and the exactness arguments.
func Run(in *model.Instance, phase1 []assign.Result, cfg Config) Result {
	g := NewGame(in, phase1, cfg)
	for g.Step() {
	}
	return g.Finish()
}

// NewGame captures the phase-1 state and prepares the stepwise engine. The
// instance is treated as immutable for the game's lifetime.
func NewGame(in *model.Instance, phase1 []assign.Result, cfg Config) *Game {
	g := &Game{in: in, cfg: cfg}
	g.seqEngine = isSequentialAssigner(cfg.Assigner)
	if g.cfg.Assigner == nil {
		g.cfg.Assigner = assign.Sequential
	}
	// Idempotent: a no-op when core.Run already prepared the instance, and
	// a safety net for direct callers so the trial re-assignments below hit
	// the memoized snap path of a node metric.
	in.PrepareMetric()
	in.EnsureHot()
	n := len(in.Centers)

	g.pruneOn = cfg.Prune == PruneOn || (cfg.Prune == PruneAuto && g.seqEngine)
	if cfg.Candidate == NearestWorker {
		// NearestWorker picks its single candidate over the FULL pool;
		// pre-filtering would change which worker is chosen, so pruning is
		// disabled rather than applied unsoundly.
		g.pruneOn = false
	}

	g.states = make([]centerState, n)
	g.pool = newWorkerPool(in, g.pruneOn)
	g.pool.mask, g.pool.maskBit = cfg.poolMask, cfg.poolBit
	g.rhoVec = make([]float64, n)
	g.members = cfg.members
	if g.members != nil {
		g.memberRhos = make([]float64, len(g.members))
	}
	initCenter := func(ci model.CenterID) {
		st := &g.states[ci]
		st.promo[0].promote(&phase1[ci])
		st.routes = st.promo[0].routes
		st.leftTasks = st.promo[0].left
		st.own = append([]model.WorkerID(nil), in.Centers[ci].Workers...)
		slices.Sort(st.own)
		st.workers = append(make([]model.WorkerID, 0, len(st.own)+8), st.own...)
		st.assigned = countTasks(st.routes)
		g.totalAssigned += st.assigned
		st.rho = metrics.Ratio(st.assigned, len(in.Centers[ci].Tasks))
		g.rhoVec[ci] = st.rho
		for _, w := range phase1[ci].LeftWorkers {
			g.pool.add(w, ci)
		}
	}
	// Line 3–10: recipient set C' = centers with ρ < 1 (member centers only
	// for a shard-restricted game — non-members keep zero states and never
	// appear as recipients or lenders: the pool gate keeps their workers out,
	// and candidate home centers are always pool members' homes).
	if g.members == nil {
		for ci := range in.Centers {
			initCenter(model.CenterID(ci))
		}
		for ci := range in.Centers {
			if g.states[ci].rho < 1 {
				g.recipients = append(g.recipients, model.CenterID(ci))
			}
		}
	} else {
		for _, ci := range g.members {
			initCenter(ci)
		}
		for _, ci := range g.members {
			if g.states[ci].rho < 1 {
				g.recipients = append(g.recipients, ci)
			}
		}
		slices.Sort(g.recipients)
	}

	g.maxIter = cfg.MaxIterations
	if g.maxIter <= 0 {
		// Every accepted iteration raises the recipient's assigned count by
		// at least one task and every rejection permanently removes a
		// center, so |S| + |C| bounds the game length.
		g.maxIter = len(in.Tasks) + n + 1
	}

	// memo caches trial re-assignment results per (recipient, worker). A
	// trial depends only on the recipient's state (worker set, routes,
	// leftover tasks) and the candidate, so an entry stays valid until the
	// recipient's state changes: entries are stored only when a center
	// leaves the game (its state is final from then on) and the per-center
	// map is dropped when the center later lends one of its own workers out
	// (its worker set shrinks). In the paper-exact dynamics every turn ends
	// by either mutating the recipient (accept — nothing worth caching) or
	// removing it from the game (reject — its final-state trials), so the
	// cache cannot re-hit during Run itself with the built-in policies; it
	// exists to carry each center's final-state trials out of the game,
	// where Result.VerifyEquilibrium reuses them instead of re-running the
	// assigner over the whole pool.
	g.memo = make([]map[model.WorkerID]assign.Result, n)

	if cfg.resume != nil {
		// Replay the prior transfers into the worker-set bookkeeping: the
		// input results already describe each center's current routes and
		// unused own workers, so only the own/borrowed/workers sets (built
		// above from the static center rosters) need the lends applied. The
		// replayed transfers seed the transfer log so the final Solution
		// carries the full history.
		for _, tr := range cfg.resume.transfers {
			src, dst := &g.states[tr.Src], &g.states[tr.Dst]
			src.own = removeSortedID(src.own, tr.Worker)
			src.workers = removeSortedID(src.workers, tr.Worker)
			dst.borrowed = appendGrown(dst.borrowed, tr.Worker)
			dst.workers = insertSortedID(dst.workers, tr.Worker)
			g.pool.remove(tr.Worker)
			g.transfers = append(g.transfers, tr)
		}
		// Carry the prior games' trial memos: every entry was computed
		// against its center's current (resumed) state, so the usual
		// invalidation rules — drop a center's map when it lends — keep
		// working from here.
		if cfg.resume.memo != nil && !cfg.noMemo {
			for ci, m := range cfg.resume.memo {
				if m != nil {
					g.memo[ci] = m
				}
			}
		}
	}
	return g
}

// Iterations returns the number of iterations executed so far.
func (g *Game) Iterations() int { return g.iter }

// Over reports whether the game has terminated (a subsequent Step would
// return false).
func (g *Game) Over() bool {
	return g.done || g.iter >= g.maxIter || len(g.recipients) == 0 || g.pool.len() == 0
}

// Reserve pre-grows the per-iteration output buffers — the trace, the
// transfer log and the ρ-snapshot slab — for n further iterations. Purely a
// performance hint: a reserved steady-state Step appends its outputs without
// growing anything, which the zero-allocation gates rely on.
func (g *Game) Reserve(n int) {
	if cap(g.res.Trace)-len(g.res.Trace) < n {
		t := make([]TraceStep, len(g.res.Trace), len(g.res.Trace)+n)
		copy(t, g.res.Trace)
		g.res.Trace = t
	}
	if cap(g.transfers)-len(g.transfers) < n {
		t := make([]model.Transfer, len(g.transfers), len(g.transfers)+n)
		copy(t, g.transfers)
		g.transfers = t
	}
	rhoLen := len(g.rhoVec)
	if g.members != nil {
		rhoLen = len(g.members)
	}
	g.rhos.Reserve(n * rhoLen)
}

// Step executes one game iteration (Algorithm 3 lines 13–21) and reports
// whether it ran; false means the game was already over and no state
// changed. After the first false, Finish assembles the Result.
func (g *Game) Step() bool {
	if g.Over() {
		return false
	}
	g.iter++
	iter := g.iter
	iterStart := time.Now()
	cfg := &g.cfg
	in := g.in
	g.res.Iterations = iter
	mIterations.Inc()
	var iterTS obs.TraceSpan
	if cfg.Tracer != nil {
		iterTS = cfg.Tracer.Start(cfg.TraceParent, "game_iter", obs.F("iter", iter))
	}
	// Line 13: recipient selection — served from the maintained ρ vector
	// instead of a per-iteration rebuild.
	var ci model.CenterID
	switch cfg.Recipient {
	case RandomRecipient:
		ci = g.recipients[cfg.Rng.Intn(len(g.recipients))]
	case MaxLeftover:
		ci = g.recipients[0]
		for _, c := range g.recipients[1:] {
			if len(g.states[c].leftTasks) > len(g.states[ci].leftTasks) ||
				(len(g.states[c].leftTasks) == len(g.states[ci].leftTasks) && c < ci) {
				ci = c
			}
		}
	default:
		ci = metrics.MinRatioCenter(g.rhoVec, g.recipients)
	}
	st := &g.states[ci]
	center := in.Center(ci)

	// Candidate workers: available pool minus the recipient's own (its own
	// unused workers are already in its worker set). With pruning,
	// candidates that cannot feasibly deliver any first task are dropped
	// here — their trials provably return the baseline and can never win
	// the strict-improvement scan below. The candidate list is pool
	// scratch, valid for this iteration only.
	var cands []model.WorkerID
	pruned := 0
	var prunedList []model.WorkerID
	switch {
	case cfg.Candidate == NearestWorker:
		cands = g.pool.candidates(ci)
		if len(cands) > 1 {
			// Heuristic ablation: only evaluate the nearest available
			// worker. Ties break by ID via the pre-sorted order.
			best := cands[0]
			bd := in.Worker(best).Loc.Dist2(center.Loc)
			for _, w := range cands[1:] {
				if d := in.Worker(w).Loc.Dist2(center.Loc); d < bd {
					best, bd = w, d
				}
			}
			cands[0] = best
			cands = cands[:1]
		}
	case g.pruneOn:
		if !st.slackOK {
			if cfg.Scope == LeftoverOnly {
				st.slack = assign.AdmissionSlack(in, center, st.leftTasks)
			} else {
				st.slack = assign.AdmissionSlack(in, center, center.Tasks)
			}
			st.slackOK = true
		}
		var onPruned func(model.WorkerID)
		if cfg.prunedHook != nil {
			onPruned = func(w model.WorkerID) { prunedList = append(prunedList, w) }
		}
		cands, pruned = g.pool.admissible(center, ci, st.slack, onPruned)
	default:
		cands = g.pool.candidates(ci)
	}
	mPruned.Add(int64(pruned))
	// Provenance captures the admission slack that did the cutting while it
	// is still live (DC invalidates the cache on accept, below).
	provSlack := -1.0
	if g.pruneOn && cfg.Candidate != NearestWorker {
		provSlack = st.slack
	}

	// Line 14: best response — the candidate maximising the
	// post-reassignment ratio. Line 15: evaluated via re-assignment.
	// Trials are independent of each other, so cache misses are evaluated
	// concurrently into fixed slots; the winner is then picked by the same
	// serial scan as the reference loop, keeping the output bit-identical.
	var baseWS []model.WorkerID
	if cfg.Scope != LeftoverOnly {
		baseWS = st.workers
	}
	for _, w := range prunedList {
		cfg.prunedHook(ci, w, baseWS, st.leftTasks, st.assigned)
	}

	// The prefix-resume trial base: for the Sequential engine, trials
	// resume from the candidate's serve-order position against the center's
	// baseline assignment instead of re-running every worker. The base and
	// its runners are long-lived — Reset/Rebind recycle their arrays.
	var base *assign.TrialBase
	if g.seqEngine && len(cands) > 0 {
		if cfg.Scope == LeftoverOnly {
			// DC trials serve one worker over the leftover tasks: the
			// baseline is the empty assignment over those tasks.
			if g.base.Reset(in, center, nil, nil, st.leftTasks) {
				base = &g.base
			}
		} else {
			if !st.baselineOK {
				// seqEngine holds here, so the scratch run IS the configured
				// assigner; its result lives in recycled buffers, so promote
				// it into the center's spare buffer and flip, exactly like an
				// accepted trial. The flip matters: trial results alias the
				// baseline's route storage (the preserved-suffix fast path),
				// so the baseline must occupy the buffer the next accepted
				// promotion does NOT write. st.routes/st.leftTasks keep the
				// center's current assignment — the baseline is a trial-
				// resume aid, not the state (they coincide only when phase 1
				// used the same assigner).
				fresh := g.seqScratch.Run(in, center, baseWS, center.Tasks)
				pb := &st.promo[1-st.flip]
				pb.promote(&fresh)
				st.flip = 1 - st.flip
				st.baseline = assign.Result{Routes: pb.routes,
					LeftTasks: pb.left, LeftWorkers: pb.lws, Stats: fresh.Stats}
				st.baselineOK = true
			}
			if g.base.Reset(in, center, baseWS, st.baseline.Routes, st.baseline.LeftTasks) {
				base = &g.base
			}
		}
		if base != nil {
			mSnapshotBytes.Set(float64(base.FootprintBytes()))
		}
	}
	trials, evaluated := g.evalTrials(center, cands, baseWS, st.leftTasks, g.memo[ci], base, iterTS.ID())
	resumed := 0
	if base != nil {
		resumed = evaluated
	}
	hits := len(cands) - evaluated
	mTrials.Add(int64(evaluated))
	mResumed.Add(int64(resumed))
	if !cfg.noMemo {
		mMemoMisses.Add(int64(evaluated))
		mMemoHits.Add(int64(hits))
	}

	bestRho := st.rho
	bestIdx := -1
	bestAssigned := st.assigned
	for i := range cands {
		newAssigned := trials[i].AssignedCount()
		if cfg.Scope == LeftoverOnly {
			newAssigned += st.assigned
		}
		newRho := metrics.Ratio(newAssigned, len(center.Tasks))
		if newRho > bestRho+rhoEps {
			bestRho = newRho
			bestIdx = i
			bestAssigned = newAssigned
		}
	}

	step := TraceStep{
		Iteration: iter, Recipient: ci, RhoBefore: st.rho,
		Trials: evaluated, MemoHits: hits, Pruned: pruned, Resumed: resumed,
	}
	// provDelta/provReplace carry the accepted route delta to the ledger
	// hook below; locals so the disabled path costs nothing.
	var provDelta []model.Route
	provReplace := false
	if bestIdx < 0 {
		// Lines 20–21: no improving dispatch — the center leaves C'. Its
		// state is final, so its trials are promoted into the
		// cross-iteration cache here (the only point an entry can outlive
		// the iteration — trial slices live in recycled arenas otherwise).
		if !cfg.noMemo {
			if g.memo[ci] == nil {
				g.memo[ci] = make(map[model.WorkerID]assign.Result, len(cands))
			}
			for i, w := range cands {
				g.memo[ci][w] = cloneResult(&trials[i])
			}
		}
		step.Accepted = false
		step.RhoAfter = st.rho
		g.recipients = removeCenter(g.recipients, ci)
		mRejections.Inc()
	} else {
		// Lines 16–19: accept the dispatch and update the assignment.
		bestRes := &trials[bestIdx]
		w := cands[bestIdx]
		src := g.pool.homeOf(w)
		g.pool.remove(w)
		step.Worker = w
		step.Source = src
		step.Accepted = true
		step.RhoAfter = bestRho

		// The lender loses the worker from its own set.
		g.states[src].own = removeSortedID(g.states[src].own, w)
		g.states[src].workers = removeSortedID(g.states[src].workers, w)
		st.borrowed = appendGrown(st.borrowed, w)
		st.workers = insertSortedID(st.workers, w)
		g.transfers = append(g.transfers, model.Transfer{Src: src, Dst: ci, Worker: w})
		mTransfers.Inc()
		// Both centers' states changed: the recipient's routes, borrowed
		// set and leftover tasks, and the lender's own-worker set. Both
		// centers' cached trials are stale; every other center's remain
		// valid. (Within one game the recipient never has cached trials —
		// only rejected centers do, and they never return as recipients —
		// but a resumed game carries drop-time memos for centers that play
		// again, so the recipient's entry is cleared explicitly.)
		g.memo[src] = nil
		g.memo[ci] = nil
		// The lender's trial baseline usually survives the lend: a worker
		// with an empty route consumes nothing from the task pool, so
		// Sequential over the set minus that worker serves every other
		// worker identically — the new baseline is the old one with w
		// dropped from LeftWorkers. The pool tracks the CURRENT state's
		// unused workers, not the baseline's, so membership is checked
		// against the baseline itself; a miss means w was used there and
		// the baseline is truly stale (possible only while the lender
		// still carries a non-Sequential phase-1 assignment).
		if srcSt := &g.states[src]; srcSt.baselineOK {
			n := len(srcSt.baseline.LeftWorkers)
			srcSt.baseline.LeftWorkers = removeSortedID(srcSt.baseline.LeftWorkers, w)
			if len(srcSt.baseline.LeftWorkers) == n {
				srcSt.baselineOK = false
			}
		}

		if cfg.Scope == LeftoverOnly {
			st.routes = append(st.routes, cloneRoutes(bestRes.Routes)...)
			st.leftTasks = append(st.leftTasks[:0:0], bestRes.LeftTasks...)
			// The leftover set shrank, so the cached admission slack
			// (computed over it) is stale.
			st.slackOK = false
			// DC appends the trial's routes to the frozen prior ones.
			provDelta = bestRes.Routes
		} else {
			// Promote the accepted result out of the trial arenas into the
			// center's spare promotion buffer — the live buffer may back
			// the very slices bestRes aliases — then flip. The promoted
			// copy is both the new current state and (for the Sequential
			// engine) the next trial base: the accepted trial IS Sequential
			// over the new worker set.
			pb := &st.promo[1-st.flip]
			pb.promote(bestRes)
			st.flip = 1 - st.flip
			st.routes = pb.routes
			st.leftTasks = pb.left
			// FullReassign replaces the recipient's complete route set.
			provDelta, provReplace = st.routes, true
			if g.seqEngine {
				st.baseline = assign.Result{Routes: pb.routes,
					LeftTasks: pb.left, LeftWorkers: pb.lws, Stats: bestRes.Stats}
				st.baselineOK = true
			} else {
				st.baselineOK = false
			}
			// Bi-directional update: sync the pool with the recipient's own
			// workers' new usage. Own workers used by the new plan leave
			// the pool; own workers now unused become available. Both sides
			// are ID-sorted for the built-in assigners, so a merge walk
			// replaces the former membership map; an unsorted LeftWorkers
			// (custom assigner) falls back to the map.
			lws := bestRes.LeftWorkers
			if slices.IsSorted(lws) {
				li := 0
				for _, ow := range st.own {
					for li < len(lws) && lws[li] < ow {
						li++
					}
					if li < len(lws) && lws[li] == ow {
						g.pool.add(ow, ci)
					} else {
						g.pool.remove(ow)
					}
				}
			} else {
				leftSet := make(map[model.WorkerID]bool, len(lws))
				for _, lw := range lws {
					leftSet[lw] = true
				}
				for _, ow := range st.own {
					if leftSet[ow] {
						g.pool.add(ow, ci)
					} else {
						g.pool.remove(ow)
					}
				}
			}
		}
		g.totalAssigned += bestAssigned - st.assigned
		st.assigned = bestAssigned
		st.rho = bestRho
		g.rhoVec[ci] = bestRho
		if st.rho >= 1-rhoEps {
			g.recipients = removeCenter(g.recipients, ci)
		}
	}
	// Unfairness and Φ are recomputed from the maintained ρ vector each
	// step: incremental float updates would drift from the reference bit
	// pattern, while the vector itself is maintained exactly. A
	// shard-restricted game snapshots the member-ordered vector instead —
	// its trace carries shard-local Φ/U_ρ (DESIGN.md §15).
	var rv []float64
	if g.members == nil {
		rv = g.rhos.Copy(g.rhoVec)
	} else {
		for i, mci := range g.members {
			g.memberRhos[i] = g.rhoVec[mci]
		}
		rv = g.rhos.Copy(g.memberRhos)
	}
	step.Assigned = g.totalAssigned
	step.Unfairness = metrics.Unfairness(rv)
	step.Phi = metrics.Phi(rv)
	step.Rhos = rv
	step.Duration = time.Since(iterStart)
	mIterSeconds.ObserveDuration(step.Duration)
	mGamePhi.Set(step.Phi)
	g.res.Trace = append(g.res.Trace, step)
	if cfg.Prov != nil {
		cfg.Prov.RecordIter(provenance.IterInfo{
			Iter: iter, Recipient: ci, Accepted: step.Accepted,
			Worker: step.Worker, Source: step.Source,
			RhoBefore: step.RhoBefore, RhoAfter: step.RhoAfter,
			Phi: step.Phi, Pruned: pruned, Slack: provSlack,
		}, cands, trials, g.missIdx, base != nil, provDelta, provReplace)
	}
	emitGameIter(cfg.Obs, &step)
	if cfg.Tracer != nil {
		iterTS.End(
			obs.F("recipient", int(ci)),
			obs.F("accepted", step.Accepted),
			obs.F("trials", evaluated),
			obs.F("memo_hits", hits),
			obs.F("pruned", pruned),
			obs.F("resumed", resumed),
			obs.F("rho_after", step.RhoAfter))
	}
	return true
}

// Finish releases the engine's pooled scratch and assembles the final
// Result. Idempotent; Step returns false afterwards.
func (g *Game) Finish() Result {
	if !g.done {
		g.done = true
		for _, r := range g.runners {
			if r != nil {
				r.Release()
			}
		}
		g.runners = nil
		sol := model.NewSolution(g.in)
		for ci := range g.states {
			sol.PerCenter[ci].Routes = cloneRoutes(g.states[ci].routes)
		}
		sol.Transfers = g.transfers
		g.res.Solution = sol
		if g.cfg.Scope != LeftoverOnly && !g.cfg.noMemo {
			g.res.trialMemo = g.memo
		}
	}
	return g.res
}

// emitGameIter publishes one game_iter telemetry event for a completed
// iteration; shared by Run and RunReference so the stream schema stays
// identical across engines.
func emitGameIter(o obs.Observer, step *TraceStep) {
	if !obs.Enabled(o) {
		return
	}
	fields := make([]obs.Field, 0, 16)
	fields = append(fields,
		obs.F("iter", step.Iteration),
		obs.F("recipient", int(step.Recipient)),
		obs.F("accepted", step.Accepted))
	if step.Accepted {
		fields = append(fields,
			obs.F("worker", int(step.Worker)),
			obs.F("source", int(step.Source)))
	}
	fields = append(fields,
		obs.F("rho_before", step.RhoBefore),
		obs.F("rho_after", step.RhoAfter),
		obs.F("phi", step.Phi),
		obs.F("rhos", step.Rhos),
		obs.F("assigned", step.Assigned),
		obs.F("unfairness", step.Unfairness),
		obs.F("trials", step.Trials),
		obs.F("memo_hits", step.MemoHits),
		obs.F("pruned", step.Pruned),
		obs.F("resumed", step.Resumed),
		obs.F("duration_ms", obs.DurationMs(step.Duration)))
	o.Event("game_iter", fields...)
}

const rhoEps = 1e-12

// growCap picks a reallocation capacity: at least double the old buffer,
// with a floor of the immediate need plus slack.
func growCap(oldCap, need int) int {
	c := 2 * oldCap
	if c < need+need/4+16 {
		c = need + need/4 + 16
	}
	return c
}

func countTasks(routes []model.Route) int {
	n := 0
	for _, r := range routes {
		n += len(r.Tasks)
	}
	return n
}

func cloneRoutes(rs []model.Route) []model.Route {
	out := make([]model.Route, len(rs))
	for i, r := range rs {
		out[i] = model.Route{Worker: r.Worker, Center: r.Center, Tasks: append([]model.TaskID(nil), r.Tasks...)}
	}
	return out
}

// cloneResult deep-copies a trial result out of its runner's arenas so it
// can outlive the iteration (the memo promotion on reject).
func cloneResult(r *assign.Result) assign.Result {
	return assign.Result{
		Routes:      cloneRoutes(r.Routes),
		LeftTasks:   append([]model.TaskID(nil), r.LeftTasks...),
		LeftWorkers: append([]model.WorkerID(nil), r.LeftWorkers...),
		Stats:       r.Stats,
	}
}

func removeCenter(cs []model.CenterID, c model.CenterID) []model.CenterID {
	for i, x := range cs {
		if x == c {
			return append(cs[:i], cs[i+1:]...)
		}
	}
	return cs
}

// insertSortedID returns ids (ascending) with w inserted in order.
func insertSortedID(ids []model.WorkerID, w model.WorkerID) []model.WorkerID {
	i := sort.Search(len(ids), func(j int) bool { return ids[j] >= w })
	ids = appendGrown(ids, 0)
	copy(ids[i+1:], ids[i:])
	ids[i] = w
	return ids
}

// appendGrown is append with growCap headroom: the borrowed/worker sets grow
// by one element per accepted iteration for hundreds of iterations, so the
// built-in small-slice doubling would re-allocate on a majority of steps.
func appendGrown[T any](s []T, v T) []T {
	if len(s) == cap(s) {
		grown := make([]T, len(s), growCap(cap(s), len(s)+1))
		copy(grown, s)
		s = grown
	}
	return append(s, v)
}

// removeSortedID returns ids (ascending) with w removed, preserving order.
func removeSortedID(ids []model.WorkerID, w model.WorkerID) []model.WorkerID {
	i := sort.Search(len(ids), func(j int) bool { return ids[j] >= w })
	if i == len(ids) || ids[i] != w {
		return ids
	}
	copy(ids[i:], ids[i+1:])
	return ids[:len(ids)-1]
}
