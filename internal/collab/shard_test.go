package collab

import (
	"math/rand"
	"reflect"
	"testing"

	"imtao/internal/assign"
	"imtao/internal/geo"
	"imtao/internal/model"
	"imtao/internal/routing"
	"imtao/internal/voronoi"
)

// separatedInstance builds `groups` dense metro blobs separated by far more
// than the admission radius ((slack+pad)·speed ≤ ~900 here, blob spacing
// 20000), so no worker is ever admissible to a foreign blob's centers: any
// shard partition along blob lines has an empty interference cut.
func separatedInstance(rng *rand.Rand, groups int) *model.Instance {
	const spacing = 20000.0
	in := &model.Instance{
		Speed:  300,
		Bounds: geo.NewRect(geo.Pt(0, 0), geo.Pt(float64(groups)*spacing+1000, 1000)),
	}
	for g := 0; g < groups; g++ {
		ox := float64(g) * spacing
		first := len(in.Centers)
		nc := 2 + rng.Intn(3)
		for i := 0; i < nc; i++ {
			in.Centers = append(in.Centers, model.Center{
				ID:  model.CenterID(len(in.Centers)),
				Loc: geo.Pt(ox+rng.Float64()*1000, rng.Float64()*1000),
			})
		}
		nearest := func(p geo.Point) model.CenterID {
			best, bd := first, p.Dist2(in.Centers[first].Loc)
			for ci := first + 1; ci < len(in.Centers); ci++ {
				if d := p.Dist2(in.Centers[ci].Loc); d < bd {
					best, bd = ci, d
				}
			}
			return model.CenterID(best)
		}
		for i, nt := 0, 15+rng.Intn(30); i < nt; i++ {
			p := geo.Pt(ox+rng.Float64()*1000, rng.Float64()*1000)
			c := nearest(p)
			id := model.TaskID(len(in.Tasks))
			in.Tasks = append(in.Tasks, model.Task{ID: id, Center: c, Loc: p, Expiry: 1 + rng.Float64(), Reward: 1})
			in.Centers[c].Tasks = append(in.Centers[c].Tasks, id)
		}
		for i, nw := 0, 5+rng.Intn(10); i < nw; i++ {
			p := geo.Pt(ox+rng.Float64()*1000, rng.Float64()*1000)
			c := nearest(p)
			id := model.WorkerID(len(in.Workers))
			in.Workers = append(in.Workers, model.Worker{ID: id, Home: c, Loc: p, MaxT: 4})
			in.Centers[c].Workers = append(in.Centers[c].Workers, id)
		}
	}
	return in
}

// TestShardedEmptyCutBitIdentical is the property test of the empty-cut
// guarantee: whenever the interference cut is empty, RunSharded reproduces
// the unsharded engine — and therefore RunReference — bit-identically:
// routes, transfers (order included), iteration count and the full trace
// (diagnostics aside). Separated metro instances make the cut provably
// empty for every shard count that splits along blob lines; shard counts
// above the blob count may split a blob (non-empty cut), in which case the
// run must still reach a verified equilibrium.
func TestShardedEmptyCutBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	for trial := 0; trial < 6; trial++ {
		groups := 2 + rng.Intn(3)
		in := separatedInstance(rng, groups)
		p1 := phase1(in)
		want := Run(in, p1, seqConfig())
		ref := RunReference(in, p1, seqConfig())
		if !reflect.DeepEqual(want.Solution, ref.Solution) {
			t.Fatalf("trial %d: engine vs reference diverged before sharding", trial)
		}
		emptyCuts := 0
		for _, k := range []int{1, 2, 3, 4, 6, 8} {
			got, rep := RunSharded(in, p1, ShardConfig{Config: seqConfig(), Shards: k, Seed: 7})
			if k <= groups && !rep.EmptyCut {
				t.Fatalf("trial %d shards=%d: expected empty cut on %d separated blobs, got %d boundary workers",
					trial, k, groups, rep.BoundaryWorkers)
			}
			if rep.EmptyCut {
				emptyCuts++
				if !reflect.DeepEqual(got.Solution, want.Solution) {
					t.Fatalf("trial %d shards=%d: empty cut but solutions differ", trial, k)
				}
				if fingerprintSolution(got.Solution) != fingerprintSolution(ref.Solution) {
					t.Fatalf("trial %d shards=%d: fingerprint diverged from RunReference", trial, k)
				}
				if got.Iterations != want.Iterations {
					t.Fatalf("trial %d shards=%d: iterations %d vs %d", trial, k, got.Iterations, want.Iterations)
				}
				if !reflect.DeepEqual(stripEngineDiagnostics(got.Trace), stripEngineDiagnostics(want.Trace)) {
					t.Fatalf("trial %d shards=%d: traces differ", trial, k)
				}
			} else {
				if err := routing.SolutionFeasible(in, got.Solution); err != nil {
					t.Fatalf("trial %d shards=%d: %v", trial, k, err)
				}
			}
			if err := got.VerifyEquilibrium(in, nil); err != nil {
				t.Fatalf("trial %d shards=%d: %v", trial, k, err)
			}
		}
		if emptyCuts < groups {
			t.Fatalf("trial %d: only %d empty-cut shard counts over %d blobs — instance not exercising the merge",
				trial, emptyCuts, groups)
		}
	}
}

// TestShardedConflictedEquilibrium: dense instances where the interference
// cut is never empty must still reach a verified global Nash equilibrium,
// with the potential Φ monotone within every phase-A shard segment and
// within the exchange segment, and the whole run deterministic — across
// repeats and across ShardParallelism settings.
func TestShardedConflictedEquilibrium(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	for trial := 0; trial < 6; trial++ {
		in := randomInstance(rng, 4+rng.Intn(4), 20+rng.Intn(20), 40+rng.Intn(60))
		p1 := phase1(in)
		for _, k := range []int{2, 4} {
			got, rep := RunSharded(in, p1, ShardConfig{Config: seqConfig(), Shards: k, Seed: 3})
			if err := routing.SolutionFeasible(in, got.Solution); err != nil {
				t.Fatalf("trial %d shards=%d: %v", trial, k, err)
			}
			if err := got.VerifyEquilibrium(in, nil); err != nil {
				t.Fatalf("trial %d shards=%d: %v", trial, k, err)
			}
			// Φ monotone per segment: the trace is the shard traces in shard
			// order followed by the exchange steps, with segment lengths in
			// the report.
			seg, start := 0, 0
			bounds := append(append([]int(nil), rep.ShardIterations...), rep.ExchangeIterations)
			for _, n := range bounds {
				prev := -1.0
				for i := start; i < start+n; i++ {
					if got.Trace[i].Phi < prev {
						t.Fatalf("trial %d shards=%d: Φ dropped %.6f → %.6f at step %d (segment %d)",
							trial, k, prev, got.Trace[i].Phi, i, seg)
					}
					prev = got.Trace[i].Phi
				}
				start += n
				seg++
			}
			if start != len(got.Trace) {
				t.Fatalf("trial %d shards=%d: segments cover %d steps, trace has %d",
					trial, k, start, len(got.Trace))
			}

			// Determinism: bit-identical on repeat and at forced shard
			// concurrency.
			again, rep2 := RunSharded(in, p1, ShardConfig{Config: seqConfig(), Shards: k, Seed: 3})
			rep.ShardWall, rep2.ShardWall = nil, nil // wall clocks differ by nature
			if !reflect.DeepEqual(got.Solution, again.Solution) || !reflect.DeepEqual(rep, rep2) {
				t.Fatalf("trial %d shards=%d: repeat run diverged", trial, k)
			}
			par, _ := RunSharded(in, p1, ShardConfig{
				Config: seqConfig(), Shards: k, Seed: 3, ShardParallelism: 4,
			})
			if !reflect.DeepEqual(got.Solution, par.Solution) ||
				!reflect.DeepEqual(stripEngineDiagnostics(got.Trace), stripEngineDiagnostics(par.Trace)) {
				t.Fatalf("trial %d shards=%d: ShardParallelism changed the outcome", trial, k)
			}
		}
	}
}

// TestShardedDCScope: the leftover-only (DC) scope runs through the sharded
// engine too — phase A dispatches leftovers within each home shard, the
// exchange game finishes globally — deterministically and without ever
// losing tasks versus no collaboration.
func TestShardedDCScope(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	for trial := 0; trial < 6; trial++ {
		in := randomInstance(rng, 3+rng.Intn(4), 10+rng.Intn(16), 30+rng.Intn(40))
		p1 := phase1(in)
		cfg := seqConfig()
		cfg.Scope = LeftoverOnly
		got, _ := RunSharded(in, p1, ShardConfig{Config: cfg, Shards: 3, Seed: 5})
		if err := routing.SolutionFeasible(in, got.Solution); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if base := NoCollaboration(in, p1).AssignedCount(); got.Solution.AssignedCount() < base {
			t.Fatalf("trial %d: sharded DC lost tasks: %d < %d", trial, got.Solution.AssignedCount(), base)
		}
		again, _ := RunSharded(in, p1, ShardConfig{Config: cfg, Shards: 3, Seed: 5})
		if !reflect.DeepEqual(got.Solution, again.Solution) {
			t.Fatalf("trial %d: DC sharded run not deterministic", trial)
		}
	}
}

// TestShardedFallback: configurations the sharded engine cannot prove safe
// — random recipients, non-best-response candidates, budget-style assigners
// without PruneOn — fall back to the unsharded engine bit-identically, and
// report a single shard.
func TestShardedFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(84))
	in := randomInstance(rng, 4, 16, 40)
	p1 := phase1(in)

	rbdc := seqConfig()
	rbdc.Recipient = RandomRecipient
	rbdc.Rng = rand.New(rand.NewSource(9))
	got, rep := RunSharded(in, p1, ShardConfig{Config: rbdc, Shards: 4, Seed: 1})
	if rep.Shards != 1 || !rep.EmptyCut {
		t.Fatalf("RBDC did not fall back: %+v", rep)
	}
	rbdc.Rng = rand.New(rand.NewSource(9))
	want := Run(in, p1, rbdc)
	if !reflect.DeepEqual(got.Solution, want.Solution) {
		t.Fatal("RBDC fallback diverged from Run")
	}

	nw := seqConfig()
	nw.Candidate = NearestWorker
	if _, rep := RunSharded(in, p1, ShardConfig{Config: nw, Shards: 4, Seed: 1}); rep.Shards != 1 {
		t.Fatalf("NearestWorker did not fall back: %+v", rep)
	}

	custom := seqConfig()
	custom.Assigner = func(in *model.Instance, c *model.Center, ws []model.WorkerID, ts []model.TaskID) assign.Result {
		return assign.Sequential(in, c, ws, ts)
	}
	if _, rep := RunSharded(in, p1, ShardConfig{Config: custom, Shards: 4, Seed: 1}); rep.Shards != 1 {
		t.Fatalf("custom assigner without PruneOn did not fall back: %+v", rep)
	}

	// Shards ≤ 1 is the unsharded engine by definition.
	got1, rep1 := RunSharded(in, p1, ShardConfig{Config: seqConfig(), Shards: 1, Seed: 1})
	if rep1.Shards != 1 {
		t.Fatalf("shards=1 reported %d shards", rep1.Shards)
	}
	if !reflect.DeepEqual(got1.Solution, Run(in, p1, seqConfig()).Solution) {
		t.Fatal("shards=1 diverged from Run")
	}
}

// TestShardMemberGameStepZeroAlloc extends the DESIGN.md §13 gate to the
// sharded phase-A hot path: a warmed member-restricted, pool-masked game
// iteration — exactly what each shard runs — must not touch the heap.
func TestShardMemberGameStepZeroAlloc(t *testing.T) {
	in := skewedInstance(200)
	p1 := phase1(in)
	cfg := Config{Scope: FullReassign, Assigner: assign.Sequential, Parallelism: 1}
	members := make([]model.CenterID, len(in.Centers))
	for i := range members {
		members[i] = model.CenterID(i)
	}
	mask := make([]uint64, len(in.Workers))
	for i := range mask {
		mask[i] = 1
	}
	cfg.members, cfg.poolMask, cfg.poolBit = members, mask, 1
	g := NewGame(in, p1, cfg)
	for i := 0; i < 120; i++ {
		if !g.Step() {
			t.Fatalf("game over after %d iterations — instance too small to meter", i)
		}
	}
	const runs = 30
	g.Reserve(runs + 2)
	allocs := testing.AllocsPerRun(runs, func() {
		if !g.Step() {
			t.Fatalf("game ended mid-measurement")
		}
	})
	if allocs != 0 {
		t.Fatalf("sharded steady-state iteration allocates: %.2f allocs/iter (want 0)", allocs)
	}
}

// TestPlanShardsEdgeCases (satellite): degenerate partition inputs — more
// shards than centers, and all-coincident center locations — must produce
// well-formed canonical shard maps, and the full run must survive them.
func TestPlanShardsEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(96))

	// Shards ≥ centers: every center gets a shard of its own (labels are a
	// permutation image under first-appearance canonicalization).
	in := randomInstance(rng, 5, 20, 40)
	p1 := phase1(in)
	for _, k := range []int{5, 6, 12, 64} {
		shardOf, n := PlanShards(in, k, 7)
		if n > len(in.Centers) {
			t.Fatalf("k=%d: %d shards from %d centers", k, n, len(in.Centers))
		}
		seen := 0
		for i, s := range shardOf {
			if s < 0 || s >= n {
				t.Fatalf("k=%d: label %d out of range [0,%d)", k, s, n)
			}
			if s > seen {
				t.Fatalf("k=%d: label %d at center %d before %d — not canonical", k, s, i, seen)
			}
			if s == seen {
				seen++
			}
		}
		got, rep := RunSharded(in, p1, ShardConfig{Config: seqConfig(), Shards: k, Seed: 7})
		if err := got.VerifyEquilibrium(in, nil); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if rep.Shards != len(rep.ShardIterations) {
			t.Fatalf("k=%d: report inconsistency: %d shards, %d segments", k, rep.Shards, len(rep.ShardIterations))
		}
	}

	// All-coincident centers: the partition collapses to one shard and the
	// run degrades to the unsharded engine.
	co := randomInstance(rng, 4, 16, 30)
	for ci := range co.Centers {
		co.Centers[ci].Loc = geo.Pt(500, 500)
	}
	p1co := phase1(co)
	if _, n := PlanShards(co, 3, 7); n != 1 {
		t.Fatalf("coincident centers produced %d shards, want 1", n)
	}
	got, rep := RunSharded(co, p1co, ShardConfig{Config: seqConfig(), Shards: 3, Seed: 7})
	if rep.Shards != 1 || !rep.EmptyCut {
		t.Fatalf("coincident centers: %+v", rep)
	}
	if !reflect.DeepEqual(got.Solution, Run(co, p1co, seqConfig()).Solution) {
		t.Fatal("coincident-center fallback diverged from the unsharded engine")
	}
}

// TestShardMapStableAcrossParallelism (satellite): the shard map is a pure
// function of (instance, shards, seed) — ShardParallelism must never leak
// into the partition or the canonical labeling.
func TestShardMapStableAcrossParallelism(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	for trial := 0; trial < 4; trial++ {
		in := randomInstance(rng, 6+rng.Intn(4), 24+rng.Intn(16), 50+rng.Intn(30))
		p1 := phase1(in)
		var base []int
		for _, par := range []int{0, 1, 2, 4, 8} {
			_, rep := RunSharded(in, p1, ShardConfig{
				Config: seqConfig(), Shards: 4, Seed: 11, ShardParallelism: par,
			})
			if base == nil {
				base = rep.ShardOf
				continue
			}
			if !reflect.DeepEqual(base, rep.ShardOf) {
				t.Fatalf("trial %d: ShardOf changed under ShardParallelism=%d: %v vs %v",
					trial, par, rep.ShardOf, base)
			}
		}
	}
}

// hotspotInstance builds the heterogeneous-load geography of the Hotspot
// workload preset at collab-test scale: uniformly spread centers, demand
// piled onto a dense core, tasks and workers attached to their nearest
// center. Count-balanced shard partitions skew badly here.
func hotspotInstance(rng *rand.Rand, centers, tasks, workers int) *model.Instance {
	in := &model.Instance{
		Speed:  300,
		Bounds: geo.NewRect(geo.Pt(0, 0), geo.Pt(10000, 10000)),
	}
	for i := 0; i < centers; i++ {
		in.Centers = append(in.Centers, model.Center{
			ID:  model.CenterID(i),
			Loc: geo.Pt(rng.Float64()*10000, rng.Float64()*10000),
		})
	}
	nearest := func(p geo.Point) model.CenterID {
		best, bd := 0, p.Dist2(in.Centers[0].Loc)
		for ci := 1; ci < len(in.Centers); ci++ {
			if d := p.Dist2(in.Centers[ci].Loc); d < bd {
				best, bd = ci, d
			}
		}
		return model.CenterID(best)
	}
	sample := func() geo.Point {
		if rng.Float64() < 0.7 {
			return geo.Pt(3000+rng.NormFloat64()*500, 3000+rng.NormFloat64()*500)
		}
		return geo.Pt(rng.Float64()*10000, rng.Float64()*10000)
	}
	for i := 0; i < tasks; i++ {
		p := sample()
		c := nearest(p)
		id := model.TaskID(len(in.Tasks))
		in.Tasks = append(in.Tasks, model.Task{ID: id, Center: c, Loc: p, Expiry: 1 + rng.Float64(), Reward: 1})
		in.Centers[c].Tasks = append(in.Centers[c].Tasks, id)
	}
	for i := 0; i < workers; i++ {
		p := sample()
		c := nearest(p)
		id := model.WorkerID(len(in.Workers))
		in.Workers = append(in.Workers, model.Worker{ID: id, Home: c, Loc: p, MaxT: 4})
		in.Centers[c].Workers = append(in.Centers[c].Workers, id)
	}
	return in
}

// TestWeightedPlanReducesHotspotSkew (acceptance): on hotspot-heterogeneous
// geographies the task-weighted PlanShards partition carries less task-load
// skew than the count-balanced PR 8 partitioner (plain PartitionPoints over
// the same center locations), in aggregate across seeds.
func TestWeightedPlanReducesHotspotSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(98))
	var sumW, sumU float64
	for trial := 0; trial < 6; trial++ {
		in := hotspotInstance(rng, 24, 400, 100)
		pts := make([]geo.Point, len(in.Centers))
		for ci := range in.Centers {
			pts[ci] = in.Centers[ci].Loc
		}

		shardOf, n := PlanShards(in, 6, 7)
		_, skewW := shardTaskLoads(in, shardOf, n)

		labels, nu := voronoi.PartitionPoints(7, pts, 6)
		_, skewU := shardTaskLoads(in, labels, nu)

		sumW += skewW
		sumU += skewU
	}
	if sumW >= sumU {
		t.Fatalf("task-weighted partition does not reduce hotspot load skew: %.3f vs %.3f (mean over trials)",
			sumW/6, sumU/6)
	}
}
