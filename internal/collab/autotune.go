package collab

// ShardAuto probe (DESIGN.md §16). The caller historically guessed the
// shard count; autotuneShards picks it from the instance's interference
// profile instead. For each candidate count on a small ladder it plans the
// (task-weighted) partition, builds the worker-overlap interference graph —
// the exact structures the real run uses — and scores a modeled critical
// path: a superlinear per-shard game cost spread over the configured
// parallelism for phase A, plus a serialized boundary-reconcile cost
// β·B·k for phase B. The pick is the ladder's cost argmin, ties to the
// smaller count.
//
// The model is deliberately a pure function of (instance, phase 1, seed,
// ShardParallelism): when ShardParallelism is 0 (GOMAXPROCS at run time)
// the model uses a fixed reference parallelism instead of the machine's
// core count, so the same instance picks the same count on a laptop, a CI
// runner and a 64-core box — the committed benchmark baselines stay
// machine-independent and perfgate can hold the pick to exact equality.

import (
	"math"

	"imtao/internal/assign"
	"imtao/internal/model"
)

// ShardAuto, as ShardConfig.Shards (imtao.WithShards(0) at the public
// surface), asks RunSharded to pick the shard count itself.
const ShardAuto = -1

// Autotune cost-model constants.
const (
	// autotuneAlpha is the superlinearity of game cost in pool size:
	// wall ∝ load^α. Fitted to the committed BENCH_shard.json scaling —
	// the 100k uncapped game's phase-2 wall across 1/2/4/8 shards gives
	// α ≈ 1.33–1.41 (total work N^α·k^(1-α) against the measured
	// 13.7/10.3/8.7/5.9 s ladder).
	autotuneAlpha = 1.4
	// autotuneRefParallelism is the modeled worker count when the caller
	// left ShardParallelism at 0 (GOMAXPROCS): a fixed reference keeps the
	// pick machine-independent (see the package comment).
	autotuneRefParallelism = 8
	// autotuneExchangeWeight scales the exchange term β·B·k: B boundary
	// workers re-contested by an exchange whose step count grows roughly
	// linearly with the shard count k (each extra shard fragments the
	// boundary routes further and adds another round of re-contesting),
	// while the merge replay is inherently serial. Charging the full
	// serialized cost — no per-component discount — is what stops the model
	// from over-sharding; the measured 10k/100k ladders admit any β in
	// [0.26, 0.48], and 0.36 sits mid-range.
	autotuneExchangeWeight = 0.36
)

// ShardProbe is one candidate shard count's probe: the partition and
// interference profile the real run would see, and its modeled cost.
type ShardProbe struct {
	// Shards is the candidate count; EffectiveShards what the partitioner
	// produced for it (duplicate center locations can collapse clusters).
	Shards          int
	EffectiveShards int
	// Interference profile at this count (see ShardReport).
	BoundaryWorkers int
	ConflictEdges   int
	Components      int
	Colors          int
	LoadSkew        float64
	// Cost is the modeled critical path in load^α units — comparable across
	// the ladder, not a wall-clock prediction.
	Cost float64
}

// ShardAutotune is the record of one ShardAuto decision, attached to
// ShardReport.Auto.
type ShardAutotune struct {
	// Parallelism is the modeled worker count: ShardParallelism when the
	// caller set it, the fixed reference otherwise.
	Parallelism int
	Ladder      []ShardProbe
	// Picked is the chosen shard count — the ladder's Cost argmin.
	Picked int
}

// autotuneLadder is the candidate shard-count ladder, clipped per instance
// to the 64-shard mask width and the center count.
var autotuneLadder = [...]int{1, 2, 4, 8, 16, 32, 64}

// autotuneShards probes the ladder and returns the decision record. The
// caller guarantees eligibility and ≥ 2 centers.
func autotuneShards(in *model.Instance, phase1 []assign.Result, cfg ShardConfig) *ShardAutotune {
	p := cfg.ShardParallelism
	if p <= 0 {
		p = autotuneRefParallelism
	}
	at := &ShardAutotune{Parallelism: p}

	var totalLoad float64
	for ci := range in.Centers {
		totalLoad += float64(len(in.Centers[ci].Tasks))
	}

	best := -1
	for _, k := range autotuneLadder {
		if k > 64 || (k > len(in.Centers) && k > 1) {
			break
		}
		pr := probeShardCount(in, phase1, cfg, k, p, totalLoad)
		at.Ladder = append(at.Ladder, pr)
		if best < 0 || pr.Cost < at.Ladder[best].Cost {
			best = len(at.Ladder) - 1
		}
	}
	at.Picked = at.Ladder[best].Shards
	return at
}

// probeShardCount plans candidate count k and scores the modeled critical
// path at parallelism p.
func probeShardCount(in *model.Instance, phase1 []assign.Result, cfg ShardConfig,
	k, p int, totalLoad float64) ShardProbe {

	pr := ShardProbe{Shards: k, EffectiveShards: 1,
		Components: 1, Colors: 1, LoadSkew: 1}
	if k <= 1 {
		pr.Cost = math.Pow(totalLoad, autotuneAlpha)
		return pr
	}
	shardOf, nShards := PlanShards(in, k, cfg.Seed)
	pr.EffectiveShards = nShards
	if nShards <= 1 {
		// Collapsed partition: this candidate IS the unsharded game.
		pr.Cost = math.Pow(totalLoad, autotuneAlpha)
		return pr
	}
	inf := shardInterference(in, phase1, shardOf, cfg.Scope)
	loads, skew := shardTaskLoads(in, shardOf, nShards)
	_, nComp := shardComponents(&inf.adj, nShards)
	_, nColors := greedyColorShards(&inf.adj, nShards)
	pr.BoundaryWorkers = inf.boundary
	pr.ConflictEdges = inf.conflicts
	pr.Components = nComp
	pr.Colors = nColors
	pr.LoadSkew = skew

	// Phase A: per-shard game cost load^α, spread over p goroutines; the
	// critical path is at least the heaviest shard and at least the mean
	// lane (the LPT bound).
	var sumW, maxW float64
	for _, l := range loads {
		w := math.Pow(l, autotuneAlpha)
		sumW += w
		if w > maxW {
			maxW = w
		}
	}
	phaseA := sumW / float64(p)
	if maxW > phaseA {
		phaseA = maxW
	}

	// Phase B: the measured sweeps show the exchange does NOT parallelize
	// away — its step count grows roughly linearly with the shard count
	// (each extra shard fragments boundary routes into one more round of
	// re-contesting), every step rescans the boundary pool, and the trace
	// merge replays serially. So the model charges the full serialized cost
	// β·B·k with no per-component discount; that pessimism is exactly what
	// keeps the argmin off the over-sharded end of the ladder.
	exch := autotuneExchangeWeight * float64(inf.boundary) * float64(nShards)

	pr.Cost = phaseA + exch
	return pr
}
