package collab

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"imtao/internal/assign"
	"imtao/internal/model"
	"imtao/internal/obs"
)

// Trial-pool health metrics. Occupancy tracks live evaluation goroutines;
// queue wait (time between dispatch and a goroutine picking a trial up)
// needs a clock read per trial, so it only records when obs.EnableTiming is
// on.
var (
	mPoolWorkers = obs.Default.Gauge("imtao_collab_pool_workers",
		"live trial-evaluation goroutines")
	mPoolDispatched = obs.Default.Counter("imtao_collab_pool_trials_total",
		"trial evaluations dispatched to the parallel pool")
	mPoolQueueWait = obs.Default.Histogram("imtao_collab_pool_queue_wait_seconds",
		"time a dispatched trial waited before evaluation started (only with timing enabled)",
		obs.TimeBuckets)
)

// parallelism resolves a Config.Parallelism value: 0 (and negatives) mean
// GOMAXPROCS, 1 is the serial path.
func parallelism(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// evalTrials returns one trial re-assignment result per candidate worker,
// in candidate order, plus the number of trials actually evaluated (cache
// hits excluded). Results already present in cache are reused verbatim; the
// misses are evaluated — concurrently when cfg.Parallelism != 1 — each
// goroutine writing its result to a fixed slot so the output is independent
// of scheduling order.
//
// When base is non-nil, misses are served by the prefix-resume engine: each
// evaluation replays only the serve-order suffix the candidate perturbs
// against base's snapshot (assign.TrialBase), with one pooled journaled grid
// per goroutine. A nil base falls back to one full assigner run per miss.
//
// baseWS is the recipient's current worker set (ignored for LeftoverOnly);
// each full-run trial appends its candidate to a private copy, so the shared
// slice is never mutated. leftTasks is read-only for the assigners.
//
// With a tracer configured, every evaluated miss is wrapped in a "trial"
// span parented to traceParent (the iteration span) carrying the candidate
// worker and its evaluation outcome — "resumed" when the prefix-resume
// engine served it, "full" for a complete assigner run. Memo hits record no
// span (they cost no wall-clock worth a timeline row); their count rides on
// the iteration span instead.
func evalTrials(in *model.Instance, center *model.Center, cands []model.WorkerID,
	baseWS []model.WorkerID, leftTasks []model.TaskID, cfg Config,
	cache map[model.WorkerID]assign.Result, base *assign.TrialBase,
	traceParent obs.SpanID) ([]assign.Result, int) {

	trials := make([]assign.Result, len(cands))
	misses := make([]int, 0, len(cands))
	for i, w := range cands {
		if r, ok := cache[w]; ok {
			trials[i] = r
		} else {
			misses = append(misses, i)
		}
	}
	if len(misses) == 0 {
		return trials, 0
	}

	tr := cfg.Tracer
	outcome := "full"
	if base != nil {
		outcome = "resumed"
	}

	// newEval builds one evaluator (plus its cleanup) per executing
	// goroutine: a TrialRunner owns mutable scratch (the journaled grid), so
	// it cannot be shared across goroutines. The runner is also returned so
	// trial spans can read its per-trial replay profile; nil on the
	// full-run path.
	newEval := func() (eval func(int) assign.Result, done func(), runner *assign.TrialRunner) {
		if base != nil {
			r := base.NewRunner()
			return func(i int) assign.Result { return r.Trial(cands[i]) }, r.Release, r
		}
		return func(i int) assign.Result {
			w := cands[i]
			if cfg.Scope == LeftoverOnly {
				return cfg.Assigner(in, center, []model.WorkerID{w}, leftTasks)
			}
			ws := make([]model.WorkerID, len(baseWS)+1)
			copy(ws, baseWS)
			ws[len(baseWS)] = w
			return cfg.Assigner(in, center, ws, center.Tasks)
		}, func() {}, nil
	}

	// tracedEval wraps one miss evaluation in a "trial" span carrying the
	// candidate, the evaluation outcome, and — on the resume path — the
	// replay profile of the differential engine.
	tracedEval := func(eval func(int) assign.Result, runner *assign.TrialRunner, i int) assign.Result {
		ts := tr.Start(traceParent, "trial",
			obs.F("worker", int(cands[i])), obs.F("outcome", outcome))
		r := eval(i)
		if runner != nil {
			copied, replayed := runner.LastReplay()
			ts.End(obs.F("assigned", r.AssignedCount()), obs.F("scanned", r.Stats.TasksScanned),
				obs.F("routes_copied", copied), obs.F("routes_replayed", replayed))
		} else {
			ts.End(obs.F("assigned", r.AssignedCount()), obs.F("scanned", r.Stats.TasksScanned))
		}
		return r
	}

	workers := parallelism(cfg.Parallelism)
	if workers > len(misses) {
		workers = len(misses)
	}
	if workers <= 1 {
		eval, done, runner := newEval()
		for _, i := range misses {
			if tr == nil {
				trials[i] = eval(i)
			} else {
				trials[i] = tracedEval(eval, runner, i)
			}
		}
		done()
		return trials, len(misses)
	}

	mPoolDispatched.Add(int64(len(misses)))
	dispatched := time.Now()
	timed := obs.TimingOn()
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for g := 0; g < workers; g++ {
		go func() {
			defer wg.Done()
			mPoolWorkers.Add(1)
			defer mPoolWorkers.Add(-1)
			eval, done, runner := newEval()
			defer done()
			for {
				k := next.Add(1) - 1
				if int(k) >= len(misses) {
					return
				}
				if timed {
					mPoolQueueWait.Observe(time.Since(dispatched).Seconds())
				}
				i := misses[k]
				if tr == nil {
					trials[i] = eval(i)
				} else {
					trials[i] = tracedEval(eval, runner, i)
				}
			}
		}()
	}
	wg.Wait()
	return trials, len(misses)
}
