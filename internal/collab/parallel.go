package collab

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"imtao/internal/assign"
	"imtao/internal/model"
	"imtao/internal/obs"
)

// Trial-pool health metrics. Occupancy tracks live evaluation goroutines;
// queue wait (time between dispatch and a goroutine picking a trial up)
// needs a clock read per trial, so it only records when obs.EnableTiming is
// on.
var (
	mPoolWorkers = obs.Default.Gauge("imtao_collab_pool_workers",
		"live trial-evaluation goroutines")
	mPoolDispatched = obs.Default.Counter("imtao_collab_pool_trials_total",
		"trial evaluations dispatched to the parallel pool")
	mPoolQueueWait = obs.Default.Histogram("imtao_collab_pool_queue_wait_seconds",
		"time a dispatched trial waited before evaluation started (only with timing enabled)",
		obs.TimeBuckets)
)

// parallelism resolves a Config.Parallelism value: 0 (and negatives) mean
// GOMAXPROCS, 1 is the serial path.
func parallelism(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// runner returns the long-lived trial evaluator for the given slot, rebound
// to base (recycling its arenas and rebuilding its pooled grid). Slot 0
// serves the serial path; the parallel path binds one slot per goroutine.
// Runners survive across iterations — the per-iteration Rebind is what lets
// every trial slice come from recycled arena memory instead of the heap.
func (g *Game) runner(slot int, base *assign.TrialBase) *assign.TrialRunner {
	for len(g.runners) <= slot {
		g.runners = append(g.runners, nil)
	}
	if g.runners[slot] == nil {
		g.runners[slot] = base.NewRunner()
	} else {
		g.runners[slot].Rebind(base)
	}
	return g.runners[slot]
}

// fullTrial evaluates one candidate by a complete assigner run — the
// fallback when no prefix-resume base is available (custom assigners, or a
// baseline that does not line up with the serve order).
func (g *Game) fullTrial(center *model.Center, cand model.WorkerID,
	baseWS []model.WorkerID, leftTasks []model.TaskID) assign.Result {
	if g.cfg.Scope == LeftoverOnly {
		return g.cfg.Assigner(g.in, center, []model.WorkerID{cand}, leftTasks)
	}
	ws := make([]model.WorkerID, len(baseWS)+1)
	copy(ws, baseWS)
	ws[len(baseWS)] = cand
	return g.cfg.Assigner(g.in, center, ws, center.Tasks)
}

// tracedTrial wraps one miss evaluation in a "trial" span carrying the
// candidate, the evaluation outcome, and — on the resume path — the replay
// profile of the differential engine.
func (g *Game) tracedTrial(runner *assign.TrialRunner, center *model.Center,
	cand model.WorkerID, baseWS []model.WorkerID, leftTasks []model.TaskID,
	traceParent obs.SpanID) assign.Result {
	outcome := "full"
	if runner != nil {
		outcome = "resumed"
	}
	ts := g.cfg.Tracer.Start(traceParent, "trial",
		obs.F("worker", int(cand)), obs.F("outcome", outcome))
	var r assign.Result
	if runner != nil {
		r = runner.Trial(cand)
		copied, replayed := runner.LastReplay()
		ts.End(obs.F("assigned", r.AssignedCount()), obs.F("scanned", r.Stats.TasksScanned),
			obs.F("routes_copied", copied), obs.F("routes_replayed", replayed))
	} else {
		r = g.fullTrial(center, cand, baseWS, leftTasks)
		ts.End(obs.F("assigned", r.AssignedCount()), obs.F("scanned", r.Stats.TasksScanned))
	}
	return r
}

// evalTrials returns one trial re-assignment result per candidate worker,
// in candidate order, plus the number of trials actually evaluated (cache
// hits excluded). Results already present in cache are reused verbatim; the
// misses are evaluated — concurrently when cfg.Parallelism != 1 — each
// writing its result to a fixed slot so the output is independent of
// scheduling order.
//
// When base is non-nil, misses are served by the prefix-resume engine: each
// evaluation replays only the serve-order suffix the candidate perturbs
// against base's snapshot (assign.TrialBase), through the game's persistent
// per-slot runners (rebound here, so their arenas recycle instead of
// allocating). A nil base falls back to one full assigner run per miss.
//
// The returned slice is the game's per-iteration scratch: every result in
// it — and every slice those results carry — is valid only until the next
// evalTrials call. baseWS is the recipient's current worker set (ignored
// for LeftoverOnly); each full-run trial appends its candidate to a private
// copy, so the shared slice is never mutated. leftTasks is read-only for
// the assigners.
//
// With a tracer configured, every evaluated miss is wrapped in a "trial"
// span parented to traceParent (the iteration span) carrying the candidate
// worker and its evaluation outcome — "resumed" when the prefix-resume
// engine served it, "full" for a complete assigner run. Memo hits record no
// span (they cost no wall-clock worth a timeline row); their count rides on
// the iteration span instead.
func (g *Game) evalTrials(center *model.Center, cands []model.WorkerID,
	baseWS []model.WorkerID, leftTasks []model.TaskID,
	cache map[model.WorkerID]assign.Result, base *assign.TrialBase,
	traceParent obs.SpanID) ([]assign.Result, int) {

	if cap(g.trials) < len(cands) {
		g.trials = make([]assign.Result, len(cands))
	}
	trials := g.trials[:len(cands)]
	misses := g.missIdx[:0]
	for i, w := range cands {
		if r, ok := cache[w]; ok {
			trials[i] = r
		} else {
			misses = append(misses, i)
		}
	}
	g.missIdx = misses
	if len(misses) == 0 {
		return trials, 0
	}
	tr := g.cfg.Tracer

	workers := parallelism(g.cfg.Parallelism)
	if workers > len(misses) {
		workers = len(misses)
	}
	if workers <= 1 {
		var runner *assign.TrialRunner
		if base != nil {
			runner = g.runner(0, base)
		}
		for _, i := range misses {
			switch {
			case tr != nil:
				trials[i] = g.tracedTrial(runner, center, cands[i], baseWS, leftTasks, traceParent)
			case runner != nil:
				trials[i] = runner.Trial(cands[i])
			default:
				trials[i] = g.fullTrial(center, cands[i], baseWS, leftTasks)
			}
		}
		return trials, len(misses)
	}

	g.evalParallel(center, cands, baseWS, leftTasks, cache, base, traceParent,
		trials, misses, workers)
	return trials, len(misses)
}

// evalParallel runs the concurrent miss-evaluation pool. It lives in its own
// frame so the goroutine closure does not capture evalTrials' locals — a
// captured-and-reassigned variable is forced onto the heap at declaration,
// which would charge the serial path one allocation per iteration for a
// branch it never takes.
//
// One persistent runner per slot; goroutines pull miss indices from a shared
// atomic queue and write to fixed slots. The goroutine spawns themselves
// allocate — parallel games trade a little per-iteration garbage for
// wall-clock; the zero-allocation guarantee targets the serial engine.
func (g *Game) evalParallel(center *model.Center, cands []model.WorkerID,
	baseWS []model.WorkerID, leftTasks []model.TaskID,
	cache map[model.WorkerID]assign.Result, base *assign.TrialBase,
	traceParent obs.SpanID, trials []assign.Result, misses []int, workers int) {

	tr := g.cfg.Tracer
	if base != nil {
		for s := 0; s < workers; s++ {
			g.runner(s, base)
		}
	}
	mPoolDispatched.Add(int64(len(misses)))
	dispatched := time.Now()
	timed := obs.TimingOn()
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for s := 0; s < workers; s++ {
		go func(slot int) {
			defer wg.Done()
			mPoolWorkers.Add(1)
			defer mPoolWorkers.Add(-1)
			var runner *assign.TrialRunner
			if base != nil {
				runner = g.runners[slot]
			}
			for {
				k := next.Add(1) - 1
				if int(k) >= len(misses) {
					return
				}
				if timed {
					mPoolQueueWait.Observe(time.Since(dispatched).Seconds())
				}
				i := misses[k]
				switch {
				case tr != nil:
					trials[i] = g.tracedTrial(runner, center, cands[i], baseWS, leftTasks, traceParent)
				case runner != nil:
					trials[i] = runner.Trial(cands[i])
				default:
					trials[i] = g.fullTrial(center, cands[i], baseWS, leftTasks)
				}
			}
		}(s)
	}
	wg.Wait()
}
