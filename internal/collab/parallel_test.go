package collab

import (
	"math/rand"
	"reflect"
	"testing"

	"imtao/internal/assign"
	"imtao/internal/model"
)

// seededInstance builds a random multi-center instance via the shared
// collab_test helper, from a bare seed.
func seededInstance(seed int64, nc, nw, nt int) *model.Instance {
	return randomInstance(rand.New(rand.NewSource(seed)), nc, nw, nt)
}

// stripDurations zeroes the one TraceStep field outside the determinism
// contract (per-iteration wall clock) so traces can be compared bit-for-bit.
func stripDurations(trace []TraceStep) []TraceStep {
	out := append([]TraceStep(nil), trace...)
	for i := range out {
		out[i].Duration = 0
	}
	return out
}

// TestRunParallelismDeterminism checks that every recipient/candidate/scope
// combination produces bit-identical results at Parallelism 1 and 8,
// including the full iteration trace.
func TestRunParallelismDeterminism(t *testing.T) {
	in := seededInstance(7, 6, 40, 160)
	p1 := phase1(in)
	cases := []struct {
		name string
		cfg  Config
	}{
		{"BDC", Config{Scope: FullReassign, Assigner: assign.Sequential}},
		{"DC", Config{Scope: LeftoverOnly, Assigner: assign.Sequential}},
		{"MaxLeftover", Config{Recipient: MaxLeftover, Assigner: assign.Sequential}},
		{"NearestWorker", Config{Candidate: NearestWorker, Assigner: assign.Sequential}},
		{"RBDC", Config{Recipient: RandomRecipient, Assigner: assign.Sequential}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			serialCfg, parCfg := tc.cfg, tc.cfg
			serialCfg.Parallelism = 1
			parCfg.Parallelism = 8
			if tc.cfg.Recipient == RandomRecipient {
				serialCfg.Rng = rand.New(rand.NewSource(3))
				parCfg.Rng = rand.New(rand.NewSource(3))
			}
			serial := Run(in, p1, serialCfg)
			parallel := Run(in, p1, parCfg)
			if serial.Iterations != parallel.Iterations {
				t.Fatalf("iterations: serial %d, parallel %d", serial.Iterations, parallel.Iterations)
			}
			if !reflect.DeepEqual(stripDurations(serial.Trace), stripDurations(parallel.Trace)) {
				t.Fatalf("traces differ")
			}
			if !reflect.DeepEqual(serial.Solution.Transfers, parallel.Solution.Transfers) {
				t.Fatalf("transfers differ:\nserial   %v\nparallel %v",
					serial.Solution.Transfers, parallel.Solution.Transfers)
			}
			if !reflect.DeepEqual(serial.Solution.PerCenter, parallel.Solution.PerCenter) {
				t.Fatalf("per-center routes differ")
			}
		})
	}
}

// TestMemoNeverChangesResults compares a memoized run against one with the
// cache disabled (the noMemo test hook): the game must be bit-identical —
// the cache only ever returns what a fresh evaluation would compute — and
// the memoized run must never issue more assigner calls.
func TestMemoNeverChangesResults(t *testing.T) {
	in := seededInstance(11, 5, 30, 120)
	p1 := phase1(in)

	counter := func(n *int) Assigner {
		return func(in *model.Instance, c *model.Center, ws []model.WorkerID, ts []model.TaskID) assign.Result {
			*n++
			return assign.Sequential(in, c, ws, ts)
		}
	}
	var memoCalls, freshCalls int
	memoized := Run(in, p1, Config{Assigner: counter(&memoCalls), Parallelism: 1})
	fresh := Run(in, p1, Config{Assigner: counter(&freshCalls), Parallelism: 1, noMemo: true})

	if !reflect.DeepEqual(stripDurations(memoized.Trace), stripDurations(fresh.Trace)) {
		t.Fatalf("memoized run diverged from unmemoized reference")
	}
	if !reflect.DeepEqual(memoized.Solution.PerCenter, fresh.Solution.PerCenter) {
		t.Fatalf("memoized solution diverged from unmemoized reference")
	}
	if memoized.Iterations < 3 {
		t.Fatalf("instance too easy to exercise memoization (only %d iterations)", memoized.Iterations)
	}
	if memoCalls > freshCalls {
		t.Fatalf("memoization added work: %d calls memoized vs %d unmemoized", memoCalls, freshCalls)
	}
}

// TestCachedVerifyReusesTrials measures the memo where it pays off: the
// equilibrium verifier. A center that dropped out of the game evaluated
// every pool candidate against its final state, which is exactly what the
// verifier re-derives; Result.VerifyEquilibrium must reach the same verdict
// as the package-level verifier with strictly fewer assigner calls.
func TestCachedVerifyReusesTrials(t *testing.T) {
	in := seededInstance(11, 5, 30, 120)
	p1 := phase1(in)
	res := Run(in, p1, Config{Assigner: assign.Sequential})

	counter := func(n *int) Assigner {
		return func(in *model.Instance, c *model.Center, ws []model.WorkerID, ts []model.TaskID) assign.Result {
			*n++
			return assign.Sequential(in, c, ws, ts)
		}
	}
	var cachedCalls, freshCalls int
	cachedErr := res.VerifyEquilibrium(in, counter(&cachedCalls))
	freshErr := VerifyEquilibrium(in, res.Solution, counter(&freshCalls))

	if (cachedErr == nil) != (freshErr == nil) {
		t.Fatalf("verdicts differ: cached %v, fresh %v", cachedErr, freshErr)
	}
	if cachedErr != nil {
		t.Fatalf("BDC outcome is not an equilibrium: %v", cachedErr)
	}
	if freshCalls == 0 {
		t.Skip("final pool empty; nothing for the verifier to probe")
	}
	if cachedCalls >= freshCalls {
		t.Fatalf("trial cache ineffective: %d assigner calls cached vs %d fresh", cachedCalls, freshCalls)
	}
	t.Logf("verifier assigner calls: %d cached vs %d fresh", cachedCalls, freshCalls)
}

// TestEvalTrialsSlots checks the fixed-slot contract directly: results land
// at their candidate's index regardless of parallelism, and cached entries
// are returned verbatim.
func TestEvalTrialsSlots(t *testing.T) {
	in := seededInstance(3, 4, 24, 96)
	center := in.Center(0)
	var cands []model.WorkerID
	for _, w := range in.Workers {
		cands = append(cands, w.ID)
	}
	base := center.Workers
	for _, par := range []int{1, 2, 8} {
		g := &Game{in: in, cfg: Config{Assigner: assign.Sequential, Parallelism: par}}
		got, evaluated := g.evalTrials(center, cands, base, nil, nil, nil, 0)
		if len(got) != len(cands) {
			t.Fatalf("par=%d: %d results for %d candidates", par, len(got), len(cands))
		}
		if evaluated != len(cands) {
			t.Fatalf("par=%d: evaluated %d of %d uncached candidates", par, evaluated, len(cands))
		}
		for i, w := range cands {
			ws := append(append([]model.WorkerID(nil), base...), w)
			want := assign.Sequential(in, center, ws, center.Tasks)
			if !reflect.DeepEqual(got[i], want) {
				t.Fatalf("par=%d: slot %d (worker %d) mismatch", par, i, w)
			}
		}
	}
	// Cache hits bypass the assigner entirely.
	cache := map[model.WorkerID]assign.Result{}
	poisoned := func(in *model.Instance, c *model.Center, ws []model.WorkerID, ts []model.TaskID) assign.Result {
		t.Fatalf("assigner called despite full cache")
		return assign.Result{}
	}
	for _, w := range cands {
		ws := append(append([]model.WorkerID(nil), base...), w)
		cache[w] = assign.Sequential(in, center, ws, center.Tasks)
	}
	g := &Game{in: in, cfg: Config{Assigner: poisoned, Parallelism: 4}}
	got, evaluated := g.evalTrials(center, cands, base, nil, cache, nil, 0)
	if evaluated != 0 {
		t.Fatalf("full cache but %d trials evaluated", evaluated)
	}
	for i, w := range cands {
		if !reflect.DeepEqual(got[i], cache[w]) {
			t.Fatalf("cached slot %d (worker %d) not returned verbatim", i, w)
		}
	}
}
