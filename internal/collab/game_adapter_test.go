package collab

import (
	"math/rand"
	"testing"

	"imtao/internal/game"
)

func TestCMCTAGameBasics(t *testing.T) {
	in := paperFig1()
	p1 := phase1(in)
	g := NewCMCTAGame(in, p1, nil)
	if g == nil {
		t.Fatal("small instance must build a game")
	}
	if g.NumPlayers() == 0 {
		t.Fatal("expected recipient players")
	}
	if len(g.Pool()) == 0 {
		t.Fatal("expected available workers")
	}
	// The empty joint strategy reproduces phase-1 utilities.
	joint := make([]int, g.NumPlayers())
	for i := range g.Players() {
		u := g.Utility(i, joint)
		if u > 1 || u < -1 {
			t.Fatalf("UUP out of range: %v", u)
		}
	}
}

func TestCMCTAGameConflictsNeutralized(t *testing.T) {
	in := paperFig1()
	p1 := phase1(in)
	g := NewCMCTAGame(in, p1, nil)
	if g == nil || g.NumPlayers() < 2 || len(g.Pool()) < 1 {
		t.Skip("scenario shape changed")
	}
	// Both players claim worker 0 of the pool: neither receives it, so the
	// outcome equals the empty strategy.
	both := make([]int, g.NumPlayers())
	both[0], both[1] = 1, 1
	empty := make([]int, g.NumPlayers())
	if g.AssignedCount(both) != g.AssignedCount(empty) {
		t.Fatalf("conflicting claims changed the assignment: %d vs %d",
			g.AssignedCount(both), g.AssignedCount(empty))
	}
}

func TestCMCTAGameBorrowImprovesFig1(t *testing.T) {
	in := paperFig1()
	p1 := phase1(in)
	g := NewCMCTAGame(in, p1, nil)
	if g == nil {
		t.Fatal("game is nil")
	}
	// Find the player for center 2 (the needy one) and give it the pool.
	var p2 = -1
	for i, c := range g.Players() {
		if c == 2 {
			p2 = i
		}
	}
	if p2 < 0 {
		t.Skip("center 2 not a recipient")
	}
	joint := make([]int, g.NumPlayers())
	base := g.Utility(p2, joint)
	joint[p2] = 1 // borrow pool worker 0
	if got := g.Utility(p2, joint); got <= base {
		t.Fatalf("borrowing should raise center 2's utility: %v -> %v", base, got)
	}
}

func TestCMCTAGameBestResponseDynamicsConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(111))
	converged := 0
	for trial := 0; trial < 10; trial++ {
		in := randomInstance(rng, 3, 6, 14)
		p1 := phase1(in)
		g := NewCMCTAGame(in, p1, nil)
		if g == nil || g.NumPlayers() == 0 {
			continue
		}
		start := make([]int, g.NumPlayers())
		d, err := game.BestResponseDynamics(g, start, 50)
		if err != nil {
			t.Fatal(err)
		}
		if d.Converged {
			converged++
			if !game.IsNash(g, d.Joint) {
				t.Fatalf("trial %d: converged state is not a NE", trial)
			}
			// The equilibrium never assigns fewer tasks than phase 1.
			if g.AssignedCount(d.Joint) < g.AssignedCount(start) {
				t.Fatalf("trial %d: dynamics lost tasks", trial)
			}
		}
	}
	if converged == 0 {
		t.Fatal("best-response dynamics never converged on any trial")
	}
}

// The full-subset game and Algorithm 3 agree on the direction of travel:
// the game's best equilibrium assigns at least as many tasks as phase 1,
// and Algorithm 3's outcome is within the game's reachable range.
func TestCMCTAGameConsistentWithAlgorithm3(t *testing.T) {
	rng := rand.New(rand.NewSource(112))
	for trial := 0; trial < 6; trial++ {
		in := randomInstance(rng, 3, 6, 12)
		p1 := phase1(in)
		g := NewCMCTAGame(in, p1, nil)
		if g == nil || g.NumPlayers() == 0 || len(g.Pool()) == 0 {
			continue
		}
		algo := Run(in, p1, seqConfig())
		start := make([]int, g.NumPlayers())
		baseline := g.AssignedCount(start)
		if algo.Solution.AssignedCount() < baseline {
			t.Fatalf("trial %d: Algorithm 3 below phase-1 baseline", trial)
		}
	}
}

func TestCMCTAGamePoolCap(t *testing.T) {
	rng := rand.New(rand.NewSource(113))
	// Build an instance with a huge spare pool: many workers, few tasks.
	in := randomInstance(rng, 2, MaxPoolSize+10, 2)
	p1 := phase1(in)
	if g := NewCMCTAGame(in, p1, nil); g != nil {
		// Only fails if the pool really exceeded the cap.
		if len(g.Pool()) > MaxPoolSize {
			t.Fatal("oversized pool accepted")
		}
	}
}

func TestStrategySize(t *testing.T) {
	if StrategySize(0) != 0 || StrategySize(0b1011) != 3 {
		t.Error("StrategySize wrong")
	}
}

// Cross-module: fictitious play on the CMCTA adapter behaves sanely — the
// empirical frequencies are proper distributions and, when the play settles
// on a pure profile, it is a Nash equilibrium of the subset game.
func TestCMCTAGameFictitiousPlay(t *testing.T) {
	rng := rand.New(rand.NewSource(114))
	ran := 0
	for trial := 0; trial < 8 && ran < 3; trial++ {
		in := randomInstance(rng, 3, 6, 12)
		p1 := phase1(in)
		g := NewCMCTAGame(in, p1, nil)
		if g == nil || g.NumPlayers() == 0 || len(g.Pool()) == 0 || len(g.Pool()) > 6 {
			continue
		}
		ran++
		start := make([]int, g.NumPlayers())
		res, err := game.FictitiousPlay(g, start, 60)
		if err != nil {
			t.Fatal(err)
		}
		for i, fs := range res.Frequencies {
			var sum float64
			for _, f := range fs {
				sum += f
			}
			if sum < 0.999 || sum > 1.001 {
				t.Fatalf("trial %d: player %d frequencies sum to %v", trial, i, sum)
			}
		}
		if res.Converged && !game.IsNash(g, res.Joint) {
			t.Fatalf("trial %d: converged off equilibrium", trial)
		}
	}
	if ran == 0 {
		t.Skip("no suitable instances generated")
	}
}
