package collab

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"imtao/internal/assign"
	"imtao/internal/metrics"
	"imtao/internal/model"
	"imtao/internal/obs"
)

// RunReference is the frozen pre-engine collaboration loop: every iteration
// rebuilds the candidate list from the pool map, re-derives the ρ vector and
// total assigned count from scratch, and evaluates one full assigner run per
// candidate — no admissibility pruning, no prefix-resume. It is kept
// verbatim as the behavioral reference for the optimized Run (DESIGN.md
// §11): the equivalence tests assert bit-identical routes, transfers and
// trace against it, and the `imtao-bench -game` speedup is measured against
// it. Do not optimize this function.
func RunReference(in *model.Instance, phase1 []assign.Result, cfg Config) Result {
	if cfg.Assigner == nil {
		cfg.Assigner = assign.Sequential
	}
	in.PrepareMetric()
	n := len(in.Centers)

	// Per-center mutable state.
	type centerState struct {
		routes    []model.Route
		leftTasks []model.TaskID
		// own is the set of workers homed here and not lent out.
		own map[model.WorkerID]bool
		// borrowed workers received from other centers, in arrival order.
		borrowed []model.WorkerID
		rho      float64
	}
	states := make([]centerState, n)
	// pool is the available worker set C.W_left: worker -> home center.
	pool := make(map[model.WorkerID]model.CenterID)
	for ci := range in.Centers {
		st := &states[ci]
		st.routes = cloneRoutes(phase1[ci].Routes)
		st.leftTasks = append([]model.TaskID(nil), phase1[ci].LeftTasks...)
		st.own = make(map[model.WorkerID]bool, len(in.Centers[ci].Workers))
		for _, w := range in.Centers[ci].Workers {
			st.own[w] = true
		}
		st.rho = metrics.Ratio(countTasks(st.routes), len(in.Centers[ci].Tasks))
		for _, w := range phase1[ci].LeftWorkers {
			pool[w] = model.CenterID(ci)
		}
	}

	// Line 3–10: recipient set C' = centers with ρ < 1.
	var recipients []model.CenterID
	for ci := range in.Centers {
		if states[ci].rho < 1 {
			recipients = append(recipients, model.CenterID(ci))
		}
	}

	maxIter := cfg.MaxIterations
	if maxIter <= 0 {
		maxIter = len(in.Tasks) + n + 1
	}

	res := Result{}
	var transfers []model.Transfer
	rhos := func() []float64 {
		out := make([]float64, n)
		for i := range states {
			out[i] = states[i].rho
		}
		return out
	}
	totalAssigned := func() int {
		t := 0
		for i := range states {
			t += countTasks(states[i].routes)
		}
		return t
	}

	workerSetOf := func(ci model.CenterID) []model.WorkerID {
		st := &states[ci]
		out := make([]model.WorkerID, 0, len(st.own)+len(st.borrowed))
		for w := range st.own {
			out = append(out, w)
		}
		out = append(out, st.borrowed...)
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out
	}

	memo := make([]map[model.WorkerID]assign.Result, n)

	for iter := 1; iter <= maxIter && len(recipients) > 0 && len(pool) > 0; iter++ {
		iterStart := time.Now()
		res.Iterations = iter
		mIterations.Inc()
		// Line 13: recipient selection.
		var ci model.CenterID
		switch cfg.Recipient {
		case RandomRecipient:
			ci = recipients[cfg.Rng.Intn(len(recipients))]
		case MaxLeftover:
			ci = recipients[0]
			for _, c := range recipients[1:] {
				if len(states[c].leftTasks) > len(states[ci].leftTasks) ||
					(len(states[c].leftTasks) == len(states[ci].leftTasks) && c < ci) {
					ci = c
				}
			}
		default:
			ci = metrics.MinRatioCenter(rhos(), recipients)
		}
		st := &states[ci]
		center := in.Center(ci)

		// Candidate workers: available pool minus the recipient's own.
		cands := make([]model.WorkerID, 0, len(pool))
		for w := range pool {
			if !st.own[w] {
				cands = append(cands, w)
			}
		}
		sort.Slice(cands, func(i, j int) bool { return cands[i] < cands[j] })
		if cfg.Candidate == NearestWorker && len(cands) > 1 {
			best := cands[0]
			bd := in.Worker(best).Loc.Dist2(center.Loc)
			for _, w := range cands[1:] {
				if d := in.Worker(w).Loc.Dist2(center.Loc); d < bd {
					best, bd = w, d
				}
			}
			cands = []model.WorkerID{best}
		}

		// Line 14–15: best response via one full re-assignment per candidate.
		var baseWS []model.WorkerID
		if cfg.Scope != LeftoverOnly {
			baseWS = workerSetOf(ci)
		}
		trials, evaluated := evalTrialsRef(in, center, cands, baseWS, st.leftTasks, cfg, memo[ci])
		hits := len(cands) - evaluated
		mTrials.Add(int64(evaluated))
		if !cfg.noMemo {
			mMemoMisses.Add(int64(evaluated))
			mMemoHits.Add(int64(hits))
			if memo[ci] == nil {
				memo[ci] = make(map[model.WorkerID]assign.Result, len(cands))
			}
			for i, w := range cands {
				memo[ci][w] = trials[i]
			}
		}

		curAssigned := countTasks(st.routes)
		bestRho := st.rho
		bestIdx := -1
		var bestRes assign.Result
		for i := range cands {
			trial := trials[i]
			newAssigned := trial.AssignedCount()
			if cfg.Scope == LeftoverOnly {
				newAssigned += curAssigned
			}
			newRho := metrics.Ratio(newAssigned, len(center.Tasks))
			if newRho > bestRho+rhoEps {
				bestRho = newRho
				bestIdx = i
				bestRes = trial
			}
		}

		step := TraceStep{
			Iteration: iter, Recipient: ci, RhoBefore: st.rho,
			Trials: evaluated, MemoHits: hits,
		}
		if bestIdx < 0 {
			step.Accepted = false
			step.RhoAfter = st.rho
			recipients = removeCenter(recipients, ci)
			mRejections.Inc()
		} else {
			w := cands[bestIdx]
			src := pool[w]
			delete(pool, w)
			step.Worker = w
			step.Source = src
			step.Accepted = true
			step.RhoAfter = bestRho

			delete(states[src].own, w)
			st.borrowed = append(st.borrowed, w)
			transfers = append(transfers, model.Transfer{Src: src, Dst: ci, Worker: w})
			mTransfers.Inc()
			memo[ci] = nil
			memo[src] = nil

			if cfg.Scope == LeftoverOnly {
				st.routes = append(st.routes, cloneRoutes(bestRes.Routes)...)
				st.leftTasks = append([]model.TaskID(nil), bestRes.LeftTasks...)
			} else {
				st.routes = cloneRoutes(bestRes.Routes)
				st.leftTasks = append([]model.TaskID(nil), bestRes.LeftTasks...)
				leftSet := make(map[model.WorkerID]bool, len(bestRes.LeftWorkers))
				for _, lw := range bestRes.LeftWorkers {
					leftSet[lw] = true
				}
				for ow := range st.own {
					if leftSet[ow] {
						pool[ow] = ci
					} else {
						delete(pool, ow)
					}
				}
			}
			st.rho = bestRho
			if st.rho >= 1-rhoEps {
				recipients = removeCenter(recipients, ci)
			}
		}
		rv := rhos()
		step.Assigned = totalAssigned()
		step.Unfairness = metrics.Unfairness(rv)
		step.Phi = metrics.Phi(rv)
		step.Rhos = rv
		step.Duration = time.Since(iterStart)
		mIterSeconds.ObserveDuration(step.Duration)
		mGamePhi.Set(step.Phi)
		res.Trace = append(res.Trace, step)
		emitGameIter(cfg.Obs, &step)
	}

	sol := model.NewSolution(in)
	for ci := range states {
		sol.PerCenter[ci].Routes = cloneRoutes(states[ci].routes)
	}
	sol.Transfers = transfers
	res.Solution = sol
	if cfg.Scope != LeftoverOnly && !cfg.noMemo {
		res.trialMemo = memo
	}
	return res
}

// evalTrialsRef is the frozen full-trial evaluator backing RunReference:
// every cache miss costs one complete assigner run over the recipient's
// worker set plus the candidate.
func evalTrialsRef(in *model.Instance, center *model.Center, cands []model.WorkerID,
	baseWS []model.WorkerID, leftTasks []model.TaskID, cfg Config,
	cache map[model.WorkerID]assign.Result) ([]assign.Result, int) {

	trials := make([]assign.Result, len(cands))
	misses := make([]int, 0, len(cands))
	for i, w := range cands {
		if r, ok := cache[w]; ok {
			trials[i] = r
		} else {
			misses = append(misses, i)
		}
	}
	if len(misses) == 0 {
		return trials, 0
	}

	eval := func(i int) assign.Result {
		w := cands[i]
		if cfg.Scope == LeftoverOnly {
			return cfg.Assigner(in, center, []model.WorkerID{w}, leftTasks)
		}
		ws := make([]model.WorkerID, len(baseWS)+1)
		copy(ws, baseWS)
		ws[len(baseWS)] = w
		return cfg.Assigner(in, center, ws, center.Tasks)
	}

	workers := parallelism(cfg.Parallelism)
	if workers > len(misses) {
		workers = len(misses)
	}
	if workers <= 1 {
		for _, i := range misses {
			trials[i] = eval(i)
		}
		return trials, len(misses)
	}

	mPoolDispatched.Add(int64(len(misses)))
	dispatched := time.Now()
	timed := obs.TimingOn()
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for g := 0; g < workers; g++ {
		go func() {
			defer wg.Done()
			mPoolWorkers.Add(1)
			defer mPoolWorkers.Add(-1)
			for {
				k := next.Add(1) - 1
				if int(k) >= len(misses) {
					return
				}
				if timed {
					mPoolQueueWait.Observe(time.Since(dispatched).Seconds())
				}
				i := misses[k]
				trials[i] = eval(i)
			}
		}()
	}
	wg.Wait()
	return trials, len(misses)
}
