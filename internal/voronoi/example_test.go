package voronoi_test

import (
	"fmt"

	"imtao/internal/geo"
	"imtao/internal/voronoi"
)

// Partitioning a square service area between two sites: the bisector splits
// it in half, and points are assigned to their nearest site.
func ExampleNewDiagram() {
	bounds := geo.NewRect(geo.Pt(0, 0), geo.Pt(10, 10))
	d, err := voronoi.NewDiagram([]geo.Point{geo.Pt(2, 5), geo.Pt(8, 5)}, bounds)
	if err != nil {
		panic(err)
	}
	fmt.Printf("cell areas: %.0f %.0f\n", d.Cells[0].Area(), d.Cells[1].Area())
	fmt.Println("nearest site of (1,1):", d.NearestSite(geo.Pt(1, 1)))
	fmt.Println("nearest site of (9,9):", d.NearestSite(geo.Pt(9, 9)))
	// Output:
	// cell areas: 50 50
	// nearest site of (1,1): 0
	// nearest site of (9,9): 1
}

// Lloyd relaxation spreads clumped sites into a balanced layout.
func ExampleLloyd() {
	bounds := geo.NewRect(geo.Pt(0, 0), geo.Pt(100, 100))
	clumped := []geo.Point{geo.Pt(10, 10), geo.Pt(12, 10), geo.Pt(10, 12), geo.Pt(12, 12)}
	relaxed, err := voronoi.Lloyd(clumped, bounds, 50, 1e-6)
	if err != nil {
		panic(err)
	}
	before, _ := voronoi.CellAreas(clumped, bounds)
	after, _ := voronoi.CellAreas(relaxed, bounds)
	spread := func(xs []float64) float64 {
		mn, mx := xs[0], xs[0]
		for _, x := range xs {
			if x < mn {
				mn = x
			}
			if x > mx {
				mx = x
			}
		}
		return mx - mn
	}
	fmt.Println("more balanced:", spread(after) < spread(before)/2)
	// Output: more balanced: true
}
