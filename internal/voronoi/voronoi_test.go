package voronoi

import (
	"math"
	"math/rand"
	"testing"

	"imtao/internal/geo"
)

func randSites(rng *rand.Rand, n int, scale float64) []geo.Point {
	pts := make([]geo.Point, n)
	for i := range pts {
		pts[i] = geo.Pt(rng.Float64()*scale, rng.Float64()*scale)
	}
	return pts
}

func TestNewDelaunayErrors(t *testing.T) {
	if _, err := NewDelaunay(nil); err == nil {
		t.Error("empty sites must error")
	}
	if _, err := NewDelaunay([]geo.Point{geo.Pt(1, 1), geo.Pt(1, 1)}); err == nil {
		t.Error("duplicate sites must error")
	}
}

func TestDelaunaySmall(t *testing.T) {
	// One or two sites: valid, no triangles.
	d, err := NewDelaunay([]geo.Point{geo.Pt(0, 0)})
	if err != nil || len(d.Triangles) != 0 {
		t.Fatalf("single site: %v, %d triangles", err, len(d.Triangles))
	}
	d, err = NewDelaunay([]geo.Point{geo.Pt(0, 0), geo.Pt(1, 0)})
	if err != nil || len(d.Triangles) != 0 {
		t.Fatalf("two sites: %v, %d triangles", err, len(d.Triangles))
	}
	// Three sites: exactly one triangle.
	d, err = NewDelaunay([]geo.Point{geo.Pt(0, 0), geo.Pt(4, 0), geo.Pt(0, 4)})
	if err != nil || len(d.Triangles) != 1 {
		t.Fatalf("three sites: %v, %d triangles", err, len(d.Triangles))
	}
}

func TestDelaunaySquare(t *testing.T) {
	// A unit square triangulates into 2 triangles.
	d, err := NewDelaunay([]geo.Point{geo.Pt(0, 0), geo.Pt(1, 0), geo.Pt(1, 1), geo.Pt(0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Triangles) != 2 {
		t.Fatalf("square: %d triangles, want 2", len(d.Triangles))
	}
}

// The empty-circumcircle property is THE Delaunay invariant: no site lies
// strictly inside any triangle's circumcircle.
func TestDelaunayEmptyCircumcircle(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 15; trial++ {
		sites := randSites(rng, 4+rng.Intn(60), 1000)
		d, err := NewDelaunay(sites)
		if err != nil {
			t.Fatal(err)
		}
		for _, tri := range d.Triangles {
			a, b, c := sites[tri.V[0]], sites[tri.V[1]], sites[tri.V[2]]
			if geo.Orientation(a, b, c) <= 0 {
				t.Fatalf("trial %d: triangle %v not CCW", trial, tri)
			}
			for si, s := range sites {
				if si == tri.V[0] || si == tri.V[1] || si == tri.V[2] {
					continue
				}
				if geo.InCircumcircle(a, b, c, s) {
					t.Fatalf("trial %d: site %d violates empty circumcircle of %v", trial, si, tri)
				}
			}
		}
	}
}

// Triangle count of a Delaunay triangulation: 2n - 2 - h where h is the
// number of hull vertices.
func TestDelaunayTriangleCount(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 10; trial++ {
		sites := randSites(rng, 5+rng.Intn(40), 1000)
		d, err := NewDelaunay(sites)
		if err != nil {
			t.Fatal(err)
		}
		hull := geo.ConvexHull(sites)
		want := 2*len(sites) - 2 - len(hull)
		if len(d.Triangles) != want {
			t.Fatalf("trial %d: %d triangles, want %d (n=%d, hull=%d)",
				trial, len(d.Triangles), want, len(sites), len(hull))
		}
	}
}

func TestDelaunayNeighborsSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	sites := randSites(rng, 30, 500)
	d, err := NewDelaunay(sites)
	if err != nil {
		t.Fatal(err)
	}
	nb := d.Neighbors()
	for i, ns := range nb {
		if len(ns) == 0 {
			t.Errorf("site %d has no neighbours", i)
		}
		for _, j := range ns {
			found := false
			for _, k := range nb[j] {
				if k == i {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("adjacency not symmetric: %d->%d", i, j)
			}
		}
	}
}

func TestNewDiagramErrors(t *testing.T) {
	b := geo.NewRect(geo.Pt(0, 0), geo.Pt(10, 10))
	if _, err := NewDiagram(nil, b); err == nil {
		t.Error("empty sites must error")
	}
	if _, err := NewDiagram([]geo.Point{geo.Pt(1, 1), geo.Pt(1, 1)}, b); err == nil {
		t.Error("duplicate sites must error")
	}
}

func TestDiagramSingleSite(t *testing.T) {
	b := geo.NewRect(geo.Pt(0, 0), geo.Pt(10, 10))
	d, err := NewDiagram([]geo.Point{geo.Pt(5, 5)}, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.Cells[0].Area()-100) > 1e-6 {
		t.Errorf("single cell area = %v", d.Cells[0].Area())
	}
	if d.NearestSite(geo.Pt(3, 3)) != 0 {
		t.Error("NearestSite must be 0")
	}
}

func TestDiagramTwoSites(t *testing.T) {
	b := geo.NewRect(geo.Pt(0, 0), geo.Pt(10, 10))
	d, err := NewDiagram([]geo.Point{geo.Pt(2, 5), geo.Pt(8, 5)}, b)
	if err != nil {
		t.Fatal(err)
	}
	// Bisector at x=5 splits the square in half.
	if math.Abs(d.Cells[0].Area()-50) > 1e-6 || math.Abs(d.Cells[1].Area()-50) > 1e-6 {
		t.Errorf("cell areas = %v, %v", d.Cells[0].Area(), d.Cells[1].Area())
	}
	if d.NearestSite(geo.Pt(1, 1)) != 0 || d.NearestSite(geo.Pt(9, 9)) != 1 {
		t.Error("nearest-site misassigns")
	}
}

// The fundamental Voronoi property: each cell contains exactly the points of
// the bounds nearest to its site, and cells tile the bounds.
func TestDiagramNearestSiteProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	bounds := geo.NewRect(geo.Pt(0, 0), geo.Pt(2000, 2000))
	for trial := 0; trial < 8; trial++ {
		sites := randSites(rng, 3+rng.Intn(40), 2000)
		d, err := NewDiagram(sites, bounds)
		if err != nil {
			t.Fatal(err)
		}
		// Tiling: total area equals bounds area.
		if got := d.TotalArea(); math.Abs(got-bounds.Area()) > 1e-3*bounds.Area() {
			t.Fatalf("trial %d: total cell area %v != bounds area %v", trial, got, bounds.Area())
		}
		// Sample random points; the cell containing each must be its nearest site.
		for q := 0; q < 200; q++ {
			p := geo.Pt(rng.Float64()*2000, rng.Float64()*2000)
			want := bruteNearest(sites, p)
			got := d.NearestSite(p)
			if got != want && sites[got].Dist(p) > sites[want].Dist(p)+1e-9 {
				t.Fatalf("trial %d: NearestSite(%v) = %d, want %d", trial, p, got, want)
			}
			// Geometry check: point must lie in the cell of its nearest site
			// (allowing boundary fuzz).
			if !d.Cells[want].Contains(p) {
				// p may sit on a boundary shared with another equally-near cell.
				dNear := sites[want].Dist(p)
				onBoundary := false
				for i := range sites {
					if i != want && math.Abs(sites[i].Dist(p)-dNear) < 1e-6 {
						onBoundary = true
						break
					}
				}
				if !onBoundary {
					t.Fatalf("trial %d: cell %d does not contain its nearest point %v", trial, want, p)
				}
			}
		}
	}
}

func bruteNearest(sites []geo.Point, p geo.Point) int {
	best, bd := 0, math.Inf(1)
	for i, s := range sites {
		if d := s.Dist2(p); d < bd {
			best, bd = i, d
		}
	}
	return best
}

func TestDiagramAssign(t *testing.T) {
	bounds := geo.NewRect(geo.Pt(0, 0), geo.Pt(10, 10))
	sites := []geo.Point{geo.Pt(2, 5), geo.Pt(8, 5)}
	d, err := NewDiagram(sites, bounds)
	if err != nil {
		t.Fatal(err)
	}
	points := []geo.Point{geo.Pt(1, 1), geo.Pt(9, 9), geo.Pt(2.4, 5), geo.Pt(7, 5)}
	got := d.Assign(points)
	if len(got[0]) != 2 || got[0][0] != 0 || got[0][1] != 2 {
		t.Errorf("site 0 points = %v", got[0])
	}
	if len(got[1]) != 2 || got[1][0] != 1 || got[1][1] != 3 {
		t.Errorf("site 1 points = %v", got[1])
	}
}

func TestDiagramCellsContainTheirSites(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	bounds := geo.NewRect(geo.Pt(0, 0), geo.Pt(1000, 1000))
	sites := randSites(rng, 25, 1000)
	d, err := NewDiagram(sites, bounds)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range sites {
		if !d.Cells[i].Contains(s) {
			t.Errorf("cell %d does not contain its own site %v", i, s)
		}
	}
}

func BenchmarkDelaunay50(b *testing.B) {
	rng := rand.New(rand.NewSource(16))
	sites := randSites(rng, 50, 2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewDelaunay(sites); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDiagram50(b *testing.B) {
	rng := rand.New(rand.NewSource(17))
	sites := randSites(rng, 50, 2000)
	bounds := geo.NewRect(geo.Pt(0, 0), geo.Pt(2000, 2000))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewDiagram(sites, bounds); err != nil {
			b.Fatal(err)
		}
	}
}
