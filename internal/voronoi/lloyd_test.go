package voronoi

import (
	"math"
	"math/rand"
	"testing"

	"imtao/internal/geo"
)

func TestLloydEvensOutCells(t *testing.T) {
	rng := rand.New(rand.NewSource(121))
	bounds := geo.NewRect(geo.Pt(0, 0), geo.Pt(1000, 1000))
	sites := make([]geo.Point, 16)
	// Start with a badly clumped placement.
	for i := range sites {
		sites[i] = geo.Pt(100+rng.Float64()*150, 100+rng.Float64()*150)
	}
	before, err := CellAreas(sites, bounds)
	if err != nil {
		t.Fatal(err)
	}
	relaxed, err := Lloyd(sites, bounds, 40, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	after, err := CellAreas(relaxed, bounds)
	if err != nil {
		t.Fatal(err)
	}
	if spread(after) >= spread(before)*0.5 {
		t.Fatalf("Lloyd did not even out cells: spread %v -> %v", spread(before), spread(after))
	}
	// Total area is conserved (cells still tile the bounds).
	if math.Abs(total(after)-bounds.Area()) > 1e-3*bounds.Area() {
		t.Fatalf("area not conserved: %v", total(after))
	}
	// Input untouched.
	if !sites[0].Eq(geo.Pt(sites[0].X, sites[0].Y)) {
		t.Fatal("input mutated")
	}
}

func TestLloydStableOnCentroidal(t *testing.T) {
	// A perfectly regular grid is already centroidal; Lloyd must not move
	// sites meaningfully.
	bounds := geo.NewRect(geo.Pt(0, 0), geo.Pt(400, 400))
	var sites []geo.Point
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			sites = append(sites, geo.Pt(50+float64(i)*100, 50+float64(j)*100))
		}
	}
	relaxed, err := Lloyd(sites, bounds, 5, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	for i := range sites {
		if relaxed[i].Dist(sites[i]) > 1e-6 {
			t.Fatalf("site %d moved %v on a centroidal layout", i, relaxed[i].Dist(sites[i]))
		}
	}
}

func TestLloydErrors(t *testing.T) {
	bounds := geo.NewRect(geo.Pt(0, 0), geo.Pt(10, 10))
	if _, err := Lloyd(nil, bounds, 3, 0); err == nil {
		t.Error("no sites must error")
	}
	if _, err := CellAreas(nil, bounds); err == nil {
		t.Error("no sites must error")
	}
}

func spread(xs []float64) float64 {
	mn, mx := xs[0], xs[0]
	for _, x := range xs[1:] {
		mn = math.Min(mn, x)
		mx = math.Max(mx, x)
	}
	return mx - mn
}

func total(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}
