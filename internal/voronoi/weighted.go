package voronoi

import (
	"errors"
	"math"
	"math/rand"
	"sort"

	"imtao/internal/geo"
)

// KMeansWeighted is KMeans with a per-point weight on the Lloyd updates:
// centroids are weight-weighted means, so they drift toward heavy mass and
// dense regions end up covered by more, spatially smaller clusters. It
// backs the load-balanced shard partitioner (DESIGN.md §16): points are
// center locations, weights are per-center task counts, so cluster mass
// tracks game work rather than center count.
//
// Seeding stays UNWEIGHTED k-means++ (uniform first seed, D² afterwards)
// deliberately: weighted seeding piles seeds onto heavy regions, and two
// seeds inside one tight cluster let Lloyd converge with that cluster torn
// in half — exactly the geometry the sharded engine's empty-cut contract
// cannot afford. Geometry-spread seeds keep attachment cluster-atomic on
// well-separated inputs; the weights then act only through the centroid
// drift (and the caller's rebalance pass).
//
// A nil weights slice or an all-zero total degrades to the unweighted
// behavior (every weight treated as 1); individual zero weights are valid
// and simply contribute no mass.
func KMeansWeighted(rng *rand.Rand, points []geo.Point, weights []float64, k, iterations int) ([]geo.Point, error) {
	if k <= 0 {
		return nil, errors.New("voronoi: k must be positive")
	}
	if len(points) < k {
		return nil, errors.New("voronoi: fewer points than clusters")
	}
	if weights != nil && len(weights) != len(points) {
		return nil, errors.New("voronoi: weights length mismatch")
	}
	if iterations <= 0 {
		iterations = 32
	}
	w := func(i int) float64 {
		if weights == nil {
			return 1
		}
		return weights[i]
	}
	var totalW float64
	for i := range points {
		totalW += w(i)
	}
	if totalW <= 0 {
		weights = nil
		totalW = float64(len(points))
	}

	// Unweighted k-means++ seeding (see the doc comment for why the weights
	// stay out of the seed distribution).
	centers := make([]geo.Point, 0, k)
	centers = append(centers, points[rng.Intn(len(points))])
	d2 := make([]float64, len(points))
	for len(centers) < k {
		var total float64
		for i, p := range points {
			best := math.Inf(1)
			for _, c := range centers {
				if d := p.Dist2(c); d < best {
					best = d
				}
			}
			d2[i] = best
			total += d2[i]
		}
		if total == 0 {
			// Remaining points coincide with existing centers; place
			// duplicates (degenerate but defined).
			centers = append(centers, points[rng.Intn(len(points))])
			continue
		}
		r := rng.Float64() * total
		for i := range points {
			r -= d2[i]
			if r <= 0 {
				centers = append(centers, points[i])
				break
			}
		}
	}

	assign := make([]int, len(points))
	for it := 0; it < iterations; it++ {
		changed := false
		for i, p := range points {
			best, bd := 0, math.Inf(1)
			for ci, c := range centers {
				if d := p.Dist2(c); d < bd {
					best, bd = ci, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		// Recompute weighted means.
		sums := make([]geo.Point, k)
		mass := make([]float64, k)
		for i, p := range points {
			sums[assign[i]] = sums[assign[i]].Add(p.Scale(w(i)))
			mass[assign[i]] += w(i)
		}
		for ci := range centers {
			if mass[ci] == 0 {
				// Re-seed an empty (massless) cluster on the heaviest
				// misfit: the point with the largest weighted distance to
				// its current center.
				far, fd := 0, -1.0
				for i, p := range points {
					if d := p.Dist2(centers[assign[i]]) * w(i); d > fd {
						far, fd = i, d
					}
				}
				centers[ci] = points[far]
				changed = true
				continue
			}
			centers[ci] = sums[ci].Scale(1 / mass[ci])
		}
		if !changed {
			break
		}
	}
	return centers, nil
}

// PartitionWeightedPoints is the load-balanced sibling of PartitionPoints:
// points cluster under KMeansWeighted, then a bounded greedy rebalance pass
// shifts boundary points from overweight clusters to underweight neighbors
// so per-cluster mass approaches the mean. Labels are canonicalized by
// first appearance exactly like PartitionPoints, and the result is a pure
// function of (seed, points, weights, k) — deterministic under any caller
// parallelism.
//
// The rebalance is bounded (a few passes, at most 2·len(points) moves) and
// conservative: a point only moves to the non-source cluster costing it the
// least added distance, and only while the move strictly shrinks the
// squared-load imbalance (donor minus recipient exceeds the point's
// weight). Clusters left empty are dropped, so the returned count can be
// below k.
func PartitionWeightedPoints(seed int64, points []geo.Point, weights []float64, k int) ([]int, int) {
	labels := make([]int, len(points))
	if len(points) == 0 {
		return labels, 0
	}
	if k > len(points) {
		k = len(points)
	}
	if k <= 1 {
		return labels, 1
	}

	rng := rand.New(rand.NewSource(seed))
	centers, err := KMeansWeighted(rng, points, weights, k, 0)
	if err != nil {
		// Unreachable after the clamps above; degrade to one cluster.
		return labels, 1
	}

	for i, p := range points {
		best, bd := 0, math.Inf(1)
		for ci, c := range centers {
			if d := p.Dist2(c); d < bd {
				best, bd = ci, d
			}
		}
		labels[i] = best
	}

	rebalanceLabels(points, weights, centers, labels)

	// Canonical relabeling by first appearance.
	remap := make([]int, len(centers))
	for i := range remap {
		remap[i] = -1
	}
	next := 0
	for i, l := range labels {
		if remap[l] < 0 {
			remap[l] = next
			next++
		}
		labels[i] = remap[l]
	}
	return labels, next
}

const (
	maxRebalancePasses = 8
	// rebalanceMaxStretch is the single-linkage coherence gate on rebalance
	// moves, in squared-distance units: a point may move only if its nearest
	// neighbor inside the destination cluster is at most 2× as far (squared
	// ≤ 4×) as its nearest neighbor remaining in the source cluster. On a
	// contiguous geography boundary points have destination neighbors at
	// source-neighbor range and move freely; a point whose only route to the
	// destination crosses an empty gap — a well-separated blob — never
	// moves, so balancing cannot tear a coherent blob apart (the property
	// the sharded engine's empty-cut contract leans on). A gate on centroid
	// distances cannot express this: a cluster spanning two blobs parks its
	// centroid mid-gap, making every centroid ratio look tame.
	rebalanceMaxStretch = 4.0
)

// rebalanceLabels runs the bounded greedy load-rebalance in place. Each
// applied move strictly decreases Σ load² (the donor exceeds the recipient
// by more than the moved weight), so the pass loop terminates even without
// the move budget; the budget caps worst-case work. Candidate order is
// (distance penalty, point index) — fully deterministic.
func rebalanceLabels(points []geo.Point, weights []float64, centers []geo.Point, labels []int) {
	n := len(centers)
	if n <= 1 {
		return
	}
	w := func(i int) float64 {
		if weights == nil {
			return 1
		}
		return weights[i]
	}
	loads := make([]float64, n)
	var total float64
	for i := range points {
		loads[labels[i]] += w(i)
		total += w(i)
	}
	if total <= 0 {
		return
	}
	mean := total / float64(n)
	maxMoves := 2 * len(points)
	moves := 0

	type move struct {
		i, dst  int
		penalty float64
	}
	var cands []move
	for pass := 0; pass < maxRebalancePasses && moves < maxMoves; pass++ {
		cands = cands[:0]
		for i, p := range points {
			src := labels[i]
			wi := w(i)
			if wi <= 0 || loads[src] <= mean {
				continue
			}
			// Single-linkage gate inputs: nearest neighbor in the source
			// cluster and per-cluster nearest neighbor elsewhere.
			nearSrc := math.Inf(1)
			nearDst := make([]float64, n)
			for ci := range nearDst {
				nearDst[ci] = math.Inf(1)
			}
			for j, q := range points {
				if j == i {
					continue
				}
				d := p.Dist2(q)
				if labels[j] == src {
					if d < nearSrc {
						nearSrc = d
					}
				} else if d < nearDst[labels[j]] {
					nearDst[labels[j]] = d
				}
			}
			dCur := p.Dist2(centers[src])
			best, bp := -1, math.Inf(1)
			for ci, c := range centers {
				if ci == src || loads[ci] >= mean || loads[src]-loads[ci] <= wi {
					continue
				}
				// A lone point in its cluster (nearSrc = +Inf) may go
				// anywhere; otherwise the destination must hold a neighbor
				// within the coherence stretch.
				if nearDst[ci] > rebalanceMaxStretch*nearSrc {
					continue
				}
				d := p.Dist2(c)
				if pen := d - dCur; pen < bp {
					best, bp = ci, pen
				}
			}
			if best >= 0 {
				cands = append(cands, move{i, best, bp})
			}
		}
		sort.Slice(cands, func(a, b int) bool {
			if cands[a].penalty != cands[b].penalty {
				return cands[a].penalty < cands[b].penalty
			}
			return cands[a].i < cands[b].i
		})
		applied := false
		for _, m := range cands {
			if moves >= maxMoves {
				break
			}
			src, wi := labels[m.i], w(m.i)
			// Re-check against live loads: earlier moves this pass may have
			// already balanced either side.
			if src == m.dst || loads[src] <= mean || loads[m.dst] >= mean || loads[src]-loads[m.dst] <= wi {
				continue
			}
			labels[m.i] = m.dst
			loads[src] -= wi
			loads[m.dst] += wi
			moves++
			applied = true
		}
		if !applied {
			break
		}
	}
}
