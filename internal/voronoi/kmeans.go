package voronoi

import (
	"errors"
	"math"
	"math/rand"

	"imtao/internal/geo"
)

// KMeans clusters points into k centers with Lloyd-style k-means
// (k-means++ seeding, Euclidean distance). It backs the demand-aware
// center-placement ablation: the paper drops centers uniformly at random,
// while a real platform would site depots where the demand is.
//
// It returns the k center locations. Empty clusters are re-seeded on the
// farthest point from any center, so exactly k distinct centers come back
// whenever the input has at least k distinct points.
func KMeans(rng *rand.Rand, points []geo.Point, k, iterations int) ([]geo.Point, error) {
	if k <= 0 {
		return nil, errors.New("voronoi: k must be positive")
	}
	if len(points) < k {
		return nil, errors.New("voronoi: fewer points than clusters")
	}
	if iterations <= 0 {
		iterations = 32
	}

	// k-means++ seeding.
	centers := make([]geo.Point, 0, k)
	centers = append(centers, points[rng.Intn(len(points))])
	d2 := make([]float64, len(points))
	for len(centers) < k {
		var total float64
		for i, p := range points {
			best := math.Inf(1)
			for _, c := range centers {
				if d := p.Dist2(c); d < best {
					best = d
				}
			}
			d2[i] = best
			total += best
		}
		if total == 0 {
			// All remaining points coincide with existing centers; place
			// duplicates (degenerate but defined).
			centers = append(centers, points[rng.Intn(len(points))])
			continue
		}
		r := rng.Float64() * total
		for i := range points {
			r -= d2[i]
			if r <= 0 {
				centers = append(centers, points[i])
				break
			}
		}
	}

	assign := make([]int, len(points))
	for it := 0; it < iterations; it++ {
		changed := false
		for i, p := range points {
			best, bd := 0, math.Inf(1)
			for ci, c := range centers {
				if d := p.Dist2(c); d < bd {
					best, bd = ci, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		// Recompute means.
		sums := make([]geo.Point, k)
		counts := make([]int, k)
		for i, p := range points {
			sums[assign[i]] = sums[assign[i]].Add(p)
			counts[assign[i]]++
		}
		for ci := range centers {
			if counts[ci] == 0 {
				// Re-seed an empty cluster on the farthest point.
				far, fd := 0, -1.0
				for i, p := range points {
					if d := p.Dist2(centers[assign[i]]); d > fd {
						far, fd = i, d
					}
				}
				centers[ci] = points[far]
				changed = true
				continue
			}
			centers[ci] = sums[ci].Scale(1 / float64(counts[ci]))
		}
		if !changed {
			break
		}
	}
	return centers, nil
}

// WithinClusterSS returns the sum of squared distances of each point to its
// nearest center — the k-means objective, used to compare placements.
func WithinClusterSS(points, centers []geo.Point) float64 {
	var total float64
	for _, p := range points {
		best := math.Inf(1)
		for _, c := range centers {
			if d := p.Dist2(c); d < best {
				best = d
			}
		}
		total += best
	}
	return total
}
