package voronoi

import (
	"imtao/internal/geo"
	"imtao/internal/index"
)

// Diagram is a Voronoi diagram over a set of sites, clipped to a bounding
// rectangle. Cell i contains exactly the points of Bounds closer to site i
// than to any other site, which is the delivery-region semantics of paper
// Definition 1 / Algorithm 1.
type Diagram struct {
	Sites  []geo.Point
	Bounds geo.Rect
	Cells  []geo.Polygon

	tree *index.KDTree
}

// NewDiagram computes the Voronoi diagram of sites clipped to bounds.
// Cell geometry is built by half-plane intersection per site (O(n) half
// planes per cell, O(n²) total) — exact, robust, and instantaneous at the
// paper's scale of |C| ≤ 60 centers; the Delaunay dual is exposed separately
// for neighbour queries.
func NewDiagram(sites []geo.Point, bounds geo.Rect) (*Diagram, error) {
	if len(sites) == 0 {
		return nil, ErrTooFewSites
	}
	for i := 0; i < len(sites); i++ {
		for j := i + 1; j < len(sites); j++ {
			if sites[i].Eq(sites[j]) {
				return nil, ErrDuplicateSites
			}
		}
	}
	d := &Diagram{
		Sites:  append([]geo.Point(nil), sites...),
		Bounds: bounds,
		Cells:  make([]geo.Polygon, len(sites)),
	}
	items := make([]index.Item, len(sites))
	for i, s := range sites {
		items[i] = index.Item{ID: i, Point: s}
	}
	d.tree = index.NewKDTree(items)

	for i, si := range d.Sites {
		cell := geo.RectPolygon(bounds)
		for j, sj := range d.Sites {
			if i == j {
				continue
			}
			// Keep the half-plane of points nearer to si than sj: the left
			// side of the perpendicular bisector directed so si is on it.
			mid := geo.Mid(si, sj)
			dir := sj.Sub(si)
			// Perpendicular (rotate dir by +90°): points left of
			// (mid -> mid+perp) satisfy perp × (p-mid) >= 0 ⇔ nearer to si.
			perp := geo.Pt(-dir.Y, dir.X)
			a := mid
			b := mid.Add(perp)
			if geo.Orientation(a, b, si) < 0 {
				a, b = b, a
			}
			cell = cell.ClipHalfPlane(a, b)
			if len(cell) == 0 {
				break
			}
		}
		d.Cells[i] = cell
	}
	return d, nil
}

// NearestSite returns the index of the site closest to p, breaking distance
// ties toward the smaller index (deterministic partitions).
func (d *Diagram) NearestSite(p geo.Point) int {
	it, _ := d.tree.Nearest(p, nil) // non-empty by construction
	return it.ID
}

// Assign partitions points among sites: result[i] lists the indices of points
// whose nearest site is i. This is paper Algorithm 1 with both the task and
// the worker stream expressed as one call each.
func (d *Diagram) Assign(points []geo.Point) [][]int {
	out := make([][]int, len(d.Sites))
	for pi, p := range points {
		s := d.NearestSite(p)
		out[s] = append(out[s], pi)
	}
	return out
}

// CellOf returns the clipped cell polygon of site i.
func (d *Diagram) CellOf(i int) geo.Polygon { return d.Cells[i] }

// TotalArea returns the summed area of all cells; for sites inside Bounds it
// equals the bounds area (used as a diagram sanity invariant in tests).
func (d *Diagram) TotalArea() float64 {
	var a float64
	for _, c := range d.Cells {
		a += c.Area()
	}
	return a
}
