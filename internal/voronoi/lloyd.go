package voronoi

import (
	"imtao/internal/geo"
)

// Lloyd performs Lloyd relaxation: it repeatedly moves every site to the
// centroid of its Voronoi cell. The result is a centroidal Voronoi
// tessellation with evenly sized cells — the balanced-center-placement
// ablation of DESIGN.md §6 (the paper places centers uniformly at random;
// real platforms would site their depots more evenly).
//
// iterations bounds the relaxation rounds; the function returns early when
// the largest site movement drops below tol. The input slice is not
// modified.
func Lloyd(sites []geo.Point, bounds geo.Rect, iterations int, tol float64) ([]geo.Point, error) {
	cur := append([]geo.Point(nil), sites...)
	if tol <= 0 {
		tol = 1e-6
	}
	for it := 0; it < iterations; it++ {
		d, err := NewDiagram(cur, bounds)
		if err != nil {
			return nil, err
		}
		moved := 0.0
		next := make([]geo.Point, len(cur))
		for i, cell := range d.Cells {
			if len(cell) < 3 {
				next[i] = cur[i] // degenerate cell: keep the site in place
				continue
			}
			next[i] = cell.Centroid()
			if m := next[i].Dist(cur[i]); m > moved {
				moved = m
			}
		}
		cur = next
		if moved < tol {
			break
		}
	}
	return cur, nil
}

// CellAreas returns the area of every site's clipped cell — the spread of
// these areas quantifies how balanced a placement is.
func CellAreas(sites []geo.Point, bounds geo.Rect) ([]float64, error) {
	d, err := NewDiagram(sites, bounds)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(d.Cells))
	for i, cell := range d.Cells {
		out[i] = cell.Area()
	}
	return out, nil
}
