// Package voronoi implements the service-area partition of the IMTAO paper
// (§IV-A): a Delaunay triangulation built with the Bowyer–Watson incremental
// algorithm, its Voronoi dual with explicit cell geometry clipped to a
// bounding rectangle, and a nearest-site locator used to assign workers and
// tasks to their distribution centers (paper Algorithm 1).
package voronoi

import (
	"errors"
	"fmt"
	"math"

	"imtao/internal/geo"
)

// Triangle is a triangle over site indices. Vertices are stored in
// counter-clockwise order; indices < 0 refer to the synthetic super-triangle
// vertices and never leak out of the package.
type Triangle struct {
	V [3]int
}

// Delaunay is a Delaunay triangulation over a fixed set of sites.
type Delaunay struct {
	Sites     []geo.Point
	Triangles []Triangle
}

// ErrTooFewSites is returned when a triangulation or diagram is requested
// over fewer sites than the structure needs.
var ErrTooFewSites = errors.New("voronoi: need at least one site")

// ErrDuplicateSites is returned when two sites coincide; Voronoi cells are
// undefined for coincident sites.
var ErrDuplicateSites = errors.New("voronoi: duplicate sites")

// NewDelaunay triangulates the given sites with Bowyer–Watson in expected
// O(n log n) for random input (worst case O(n²), irrelevant at |C| ≤ 60).
// At least three non-collinear sites are needed for a non-empty
// triangulation; with fewer, Triangles is empty but the locator still works.
func NewDelaunay(sites []geo.Point) (*Delaunay, error) {
	if len(sites) == 0 {
		return nil, ErrTooFewSites
	}
	for i := 0; i < len(sites); i++ {
		for j := i + 1; j < len(sites); j++ {
			if sites[i].Eq(sites[j]) {
				return nil, fmt.Errorf("%w: site %d and %d at %v", ErrDuplicateSites, i, j, sites[i])
			}
		}
	}
	d := &Delaunay{Sites: append([]geo.Point(nil), sites...)}
	if len(sites) < 3 {
		return d, nil
	}
	d.triangulate()
	return d, nil
}

// vertex returns the location of site index v, where negative indices map to
// the super-triangle corners st.
func vertex(sites []geo.Point, st [3]geo.Point, v int) geo.Point {
	if v < 0 {
		return st[-v-1]
	}
	return sites[v]
}

type btri struct {
	v    [3]int
	dead bool
}

func (d *Delaunay) triangulate() {
	// Super-triangle comfortably containing all sites.
	bounds := geo.BoundingRect(d.Sites)
	c := bounds.Center()
	span := math.Max(bounds.Width(), bounds.Height())
	if span == 0 {
		span = 1
	}
	m := span * 64
	st := [3]geo.Point{
		geo.Pt(c.X-2*m, c.Y-m),
		geo.Pt(c.X+2*m, c.Y-m),
		geo.Pt(c.X, c.Y+2*m),
	}
	tris := []btri{{v: [3]int{-1, -2, -3}}}

	for si := range d.Sites {
		p := d.Sites[si]
		// Find all triangles whose circumcircle contains p ("bad" triangles).
		type edge struct{ a, b int }
		edgeCount := make(map[edge]int)
		var bad []int
		for ti := range tris {
			t := &tris[ti]
			if t.dead {
				continue
			}
			a := vertex(d.Sites, st, t.v[0])
			b := vertex(d.Sites, st, t.v[1])
			cc := vertex(d.Sites, st, t.v[2])
			if geo.InCircumcircle(a, b, cc, p) {
				t.dead = true
				bad = append(bad, ti)
				for e := 0; e < 3; e++ {
					u, v := t.v[e], t.v[(e+1)%3]
					key := edge{u, v}
					if u > v {
						key = edge{v, u}
					}
					edgeCount[key]++
				}
			}
		}
		// Boundary edges appear exactly once among this round's bad
		// triangles. Keep the orientation they had in the dead triangle so
		// new triangles stay CCW around the cavity.
		var boundary []edge
		for _, ti := range bad {
			t := &tris[ti]
			for e := 0; e < 3; e++ {
				u, v := t.v[e], t.v[(e+1)%3]
				key := edge{u, v}
				if u > v {
					key = edge{v, u}
				}
				if edgeCount[key] == 1 {
					boundary = append(boundary, edge{u, v})
				}
			}
		}
		// Retriangulate the cavity.
		for _, e := range boundary {
			tris = append(tris, btri{v: [3]int{e.a, e.b, si}})
		}
		// Compact occasionally to keep the scan cheap.
		if len(tris) > 4*(len(d.Sites)+4) {
			live := tris[:0]
			for _, t := range tris {
				if !t.dead {
					live = append(live, t)
				}
			}
			tris = live
		}
	}

	// Emit triangles that do not touch the super-triangle.
	for _, t := range tris {
		if t.dead || t.v[0] < 0 || t.v[1] < 0 || t.v[2] < 0 {
			continue
		}
		// Normalise to CCW.
		a, b, cc := d.Sites[t.v[0]], d.Sites[t.v[1]], d.Sites[t.v[2]]
		tri := Triangle{V: t.v}
		if geo.Orientation(a, b, cc) < 0 {
			tri.V[1], tri.V[2] = tri.V[2], tri.V[1]
		}
		d.Triangles = append(d.Triangles, tri)
	}
}

// Neighbors returns, for each site, the set of site indices sharing a
// Delaunay edge with it. Centers adjacent in this graph are natural
// workforce-transfer partners; the collaboration ablations use it.
func (d *Delaunay) Neighbors() [][]int {
	adj := make([]map[int]bool, len(d.Sites))
	for i := range adj {
		adj[i] = make(map[int]bool)
	}
	for _, t := range d.Triangles {
		for e := 0; e < 3; e++ {
			u, v := t.V[e], t.V[(e+1)%3]
			adj[u][v] = true
			adj[v][u] = true
		}
	}
	out := make([][]int, len(d.Sites))
	for i, m := range adj {
		for v := range m {
			out[i] = append(out[i], v)
		}
		sortInts(out[i])
	}
	return out
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
