package voronoi

import (
	"math"
	"math/rand"

	"imtao/internal/geo"
)

// PartitionPoints groups points into at most k geographic clusters with the
// package's seeded k-means and returns one cluster label per point plus the
// number of distinct clusters produced. It is the center-partitioner entry
// point behind the sharded collaboration engine (DESIGN.md §15): the labels
// are a pure function of (seed, points, k) — the rand.Rand driving the
// k-means++ initialization is derived from seed here rather than inherited
// from caller state, so the same run seed always yields the same shard map
// regardless of what consumed the caller's RNG earlier.
//
// Labels are canonicalized by first appearance: the cluster of points[0] is
// 0, the next previously-unseen cluster is 1, and so on. k-means' internal
// cluster numbering (an artifact of seeding order) therefore never leaks
// into the result. k is clamped to [1, len(points)]; clusters that end up
// empty after the final nearest-center assignment are dropped, so the
// returned count can be below k. Ties in the nearest-center assignment go
// to the lowest cluster index, matching KMeans' own assignment rule.
func PartitionPoints(seed int64, points []geo.Point, k int) ([]int, int) {
	labels := make([]int, len(points))
	if len(points) == 0 {
		return labels, 0
	}
	if k > len(points) {
		k = len(points)
	}
	if k <= 1 {
		return labels, 1
	}

	rng := rand.New(rand.NewSource(seed))
	centers, err := KMeans(rng, points, k, 0)
	if err != nil {
		// Unreachable after the clamps above; degrade to one cluster.
		return labels, 1
	}

	for i, p := range points {
		best, bd := 0, math.Inf(1)
		for ci, c := range centers {
			if d := p.Dist2(c); d < bd {
				best, bd = ci, d
			}
		}
		labels[i] = best
	}

	// Canonical relabeling by first appearance.
	remap := make([]int, len(centers))
	for i := range remap {
		remap[i] = -1
	}
	next := 0
	for i, l := range labels {
		if remap[l] < 0 {
			remap[l] = next
			next++
		}
		labels[i] = remap[l]
	}
	return labels, next
}
