package voronoi

import (
	"encoding/binary"
	"hash/fnv"
	"math/rand"
	"reflect"
	"testing"

	"imtao/internal/geo"
)

func partitionFingerprint(labels []int, k int) uint64 {
	h := fnv.New64a()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(k))
	h.Write(b[:])
	for _, l := range labels {
		binary.LittleEndian.PutUint64(b[:], uint64(l))
		h.Write(b[:])
	}
	return h.Sum64()
}

func partitionPoints(n int, seed int64) []geo.Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geo.Point, n)
	for i := range pts {
		pts[i] = geo.Pt(rng.Float64()*1000, rng.Float64()*1000)
	}
	return pts
}

// TestPartitionPointsDeterministic pins the partition to the seed: the
// labels are a pure function of (seed, points, k), never of caller RNG
// state or call order, and the exact partition of a fixed input is pinned
// by fingerprint so an accidental change to the seeding or relabeling rules
// fails loudly.
func TestPartitionPointsDeterministic(t *testing.T) {
	pts := partitionPoints(40, 5)
	l1, k1 := PartitionPoints(11, pts, 4)
	// Burn caller-side RNG state between calls: it must not matter.
	rand.New(rand.NewSource(99)).Float64()
	l2, k2 := PartitionPoints(11, pts, 4)
	if k1 != k2 || !reflect.DeepEqual(l1, l2) {
		t.Fatalf("partition not deterministic: %v (k=%d) vs %v (k=%d)", l1, k1, l2, k2)
	}
	// Regression pin of the exact partition (satellite: shard partitions are
	// deterministic per seed). If k-means seeding or the canonical
	// relabeling changes, this fingerprint changes with it.
	const pinned = uint64(0xe7e3dd8afa4f6b61)
	if got := partitionFingerprint(l1, k1); got != pinned {
		t.Fatalf("partition fingerprint %#x, pinned %#x — seeded k-means output changed", got, pinned)
	}
}

// TestPartitionPointsCanonicalLabels: labels are canonicalized by first
// appearance, so the internal cluster numbering of the k-means seeding can
// never leak: label 0 is points[0]'s cluster and new labels appear in
// increasing order.
func TestPartitionPointsCanonicalLabels(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		pts := partitionPoints(30, seed)
		labels, k := PartitionPoints(seed*7, pts, 5)
		if labels[0] != 0 {
			t.Fatalf("seed %d: labels[0] = %d, want 0", seed, labels[0])
		}
		seen := 0
		for i, l := range labels {
			if l < 0 || l >= k {
				t.Fatalf("seed %d: label %d out of range [0,%d)", seed, l, k)
			}
			if l > seen {
				t.Fatalf("seed %d: label %d at index %d appears before %d", seed, l, i, seen)
			}
			if l == seen {
				seen++
			}
		}
		if seen != k {
			t.Fatalf("seed %d: %d distinct labels, reported k=%d", seed, seen, k)
		}
	}
}

func TestPartitionPointsClamps(t *testing.T) {
	if labels, k := PartitionPoints(1, nil, 4); k != 0 || len(labels) != 0 {
		t.Fatalf("empty input: k=%d labels=%v", k, labels)
	}
	pts := partitionPoints(3, 2)
	labels, k := PartitionPoints(1, pts, 10) // k > len(points)
	if k > len(pts) {
		t.Fatalf("k=%d exceeds point count %d", k, len(pts))
	}
	if labels, k = PartitionPoints(1, pts, 1); k != 1 {
		t.Fatalf("k=1: got %d clusters", k)
	} else {
		for _, l := range labels {
			if l != 0 {
				t.Fatalf("k=1: nonzero label %v", labels)
			}
		}
	}
	// Single shard of identical points never errors.
	same := []geo.Point{geo.Pt(1, 1), geo.Pt(1, 1), geo.Pt(1, 1)}
	if _, k := PartitionPoints(3, same, 2); k < 1 {
		t.Fatalf("degenerate points: k=%d", k)
	}
}
