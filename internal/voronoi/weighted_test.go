package voronoi

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"imtao/internal/geo"
)

// hotspotPoints builds a heterogeneous geography: a dense downtown cluster
// plus a sparse uniform background, with weights that pile onto the
// downtown points. The stress case for count-balanced partitions.
func hotspotPoints(n int, seed int64) ([]geo.Point, []float64) {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geo.Point, n)
	wts := make([]float64, n)
	for i := range pts {
		if i < n/3 {
			pts[i] = geo.Pt(300+rng.NormFloat64()*40, 300+rng.NormFloat64()*40)
			wts[i] = 50 + rng.Float64()*50
		} else {
			pts[i] = geo.Pt(rng.Float64()*1000, rng.Float64()*1000)
			wts[i] = 1 + rng.Float64()*4
		}
	}
	return pts, wts
}

func loadSkew(labels []int, weights []float64, k int) float64 {
	loads := make([]float64, k)
	var total float64
	for i, l := range labels {
		loads[l] += weights[i]
		total += weights[i]
	}
	max := 0.0
	for _, l := range loads {
		if l > max {
			max = l
		}
	}
	return max * float64(k) / total
}

// TestPartitionWeightedDeterministic pins PartitionWeightedPoints the same
// way PartitionPoints is pinned: labels are a pure function of
// (seed, points, weights, k), immune to caller RNG state, and the exact
// partition of a fixed input is fingerprint-pinned so a change to the
// seeding, Lloyd weighting or rebalance rules fails loudly.
func TestPartitionWeightedDeterministic(t *testing.T) {
	pts, wts := hotspotPoints(40, 5)
	l1, k1 := PartitionWeightedPoints(11, pts, wts, 4)
	rand.New(rand.NewSource(99)).Float64()
	l2, k2 := PartitionWeightedPoints(11, pts, wts, 4)
	if k1 != k2 || !reflect.DeepEqual(l1, l2) {
		t.Fatalf("weighted partition not deterministic: %v (k=%d) vs %v (k=%d)", l1, k1, l2, k2)
	}
	const pinned = uint64(0xc9b4d0cb0983a942)
	if got := partitionFingerprint(l1, k1); got != pinned {
		t.Fatalf("weighted partition fingerprint %#x, pinned %#x — weighted k-means output changed", got, pinned)
	}
}

// TestPartitionWeightedCanonicalLabels: first-appearance canonicalization
// holds for the weighted sibling too.
func TestPartitionWeightedCanonicalLabels(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		pts, wts := hotspotPoints(30, seed)
		labels, k := PartitionWeightedPoints(seed*7, pts, wts, 5)
		seen := 0
		for i, l := range labels {
			if l < 0 || l >= k {
				t.Fatalf("seed %d: label %d out of range [0,%d)", seed, l, k)
			}
			if l > seen {
				t.Fatalf("seed %d: label %d at index %d appears before %d", seed, l, i, seen)
			}
			if l == seen {
				seen++
			}
		}
		if seen != k {
			t.Fatalf("seed %d: %d labels appear, k=%d", seed, seen, k)
		}
	}
}

// TestPartitionWeightedReducesSkew is the partitioner's reason to exist:
// on a hotspot geography the task-weighted partition carries materially
// less load skew (max shard load · k / total) than the count-balanced
// PartitionPoints, across seeds and cluster counts.
func TestPartitionWeightedReducesSkew(t *testing.T) {
	betterOrEqual, worse := 0, 0
	var sumUnw, sumW float64
	for seed := int64(1); seed <= 10; seed++ {
		pts, wts := hotspotPoints(60, seed)
		for _, k := range []int{4, 8} {
			lu, ku := PartitionPoints(seed, pts, k)
			lw, kw := PartitionWeightedPoints(seed, pts, wts, k)
			if ku != kw {
				// Different effective counts make skews incomparable; the
				// weighted one dropping a cluster on this geography would
				// itself be a bug worth seeing.
				t.Fatalf("seed %d k %d: effective counts diverge (%d vs %d)", seed, k, ku, kw)
			}
			su := loadSkew(lu, wts, ku)
			sw := loadSkew(lw, wts, kw)
			sumUnw += su
			sumW += sw
			if sw <= su {
				betterOrEqual++
			} else {
				worse++
			}
		}
	}
	if sumW >= sumUnw {
		t.Fatalf("weighted partition does not reduce mean load skew: %.3f vs %.3f (better %d, worse %d)",
			sumW, sumUnw, betterOrEqual, worse)
	}
	if betterOrEqual < worse {
		t.Fatalf("weighted partition loses more often than it wins: better %d, worse %d", betterOrEqual, worse)
	}
}

// TestKMeansWeightedEdgeCases covers the degenerate inputs the sharded
// engine can hand the weighted clusterer.
func TestKMeansWeightedEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := partitionPoints(10, 3)

	if _, err := KMeansWeighted(rng, pts, nil, 0, 8); err == nil {
		t.Error("k=0 must error")
	}
	if _, err := KMeansWeighted(rng, pts, nil, len(pts)+1, 8); err == nil {
		t.Error("k > len(points) must error")
	}
	if _, err := KMeansWeighted(rng, pts, []float64{1}, 2, 8); err == nil {
		t.Error("weights length mismatch must error")
	}

	// Nil weights and all-zero weights degrade to unit weights: same
	// centers from the same RNG stream.
	c1, err := KMeansWeighted(rand.New(rand.NewSource(7)), pts, nil, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	zero := make([]float64, len(pts))
	c2, err := KMeansWeighted(rand.New(rand.NewSource(7)), pts, zero, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(c1, c2) {
		t.Errorf("all-zero weights must match nil weights: %v vs %v", c1, c2)
	}

	// Individual zero weights are legal and contribute no centroid mass.
	wts := make([]float64, len(pts))
	for i := range wts {
		wts[i] = 1
	}
	wts[0] = 0
	if _, err := KMeansWeighted(rng, pts, wts, 3, 8); err != nil {
		t.Fatalf("zero individual weight: %v", err)
	}

	// All-coincident points: clusters collapse but the call must not spin
	// or crash, and every returned center is the common location.
	same := make([]geo.Point, 6)
	for i := range same {
		same[i] = geo.Pt(42, 42)
	}
	centers, err := KMeansWeighted(rng, same, nil, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range centers {
		if !c.Eq(geo.Pt(42, 42)) {
			t.Fatalf("coincident input produced center %v", c)
		}
	}
}

// TestPartitionWeightedCentroidPull: with Lloyd updates weighted, a heavy
// point drags its cluster centroid toward itself — the mechanism load
// balancing rides on. Verified indirectly: the weighted partition assigns
// fewer points to the heavy point's cluster than the unweighted one on a
// two-cluster dumbbell with one massive endpoint.
func TestPartitionWeightedCentroidPull(t *testing.T) {
	// A dumbbell: 8 points on the left, 8 on the right, one left point
	// carrying half the total mass.
	var pts []geo.Point
	var wts []float64
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 8; i++ {
		pts = append(pts, geo.Pt(rng.Float64()*100, rng.Float64()*100))
		wts = append(wts, 1)
	}
	for i := 0; i < 8; i++ {
		pts = append(pts, geo.Pt(900+rng.Float64()*100, rng.Float64()*100))
		wts = append(wts, 1)
	}
	wts[0] = 16

	labels, k := PartitionWeightedPoints(5, pts, wts, 2)
	if k != 2 {
		t.Fatalf("dumbbell produced %d clusters", k)
	}
	skew := loadSkew(labels, wts, k)
	// Perfect split is 1.0; the count-balanced split of the dumbbell is
	// (16+8)/32·2 = 1.5. The weighted partition must land strictly closer
	// to balance.
	if skew >= 1.5 || math.IsNaN(skew) {
		t.Fatalf("weighted dumbbell skew %.3f, want < 1.5", skew)
	}
}
