package voronoi

import (
	"math/rand"
	"testing"

	"imtao/internal/geo"
)

func TestKMeansErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(191))
	pts := []geo.Point{geo.Pt(0, 0), geo.Pt(1, 1)}
	if _, err := KMeans(rng, pts, 0, 10); err == nil {
		t.Error("k=0 must fail")
	}
	if _, err := KMeans(rng, pts, 3, 10); err == nil {
		t.Error("k > n must fail")
	}
}

func TestKMeansRecoversSeparatedClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(192))
	truth := []geo.Point{geo.Pt(100, 100), geo.Pt(900, 100), geo.Pt(500, 900)}
	var pts []geo.Point
	for _, c := range truth {
		for i := 0; i < 60; i++ {
			pts = append(pts, geo.Pt(c.X+rng.NormFloat64()*20, c.Y+rng.NormFloat64()*20))
		}
	}
	centers, err := KMeans(rng, pts, 3, 50)
	if err != nil {
		t.Fatal(err)
	}
	// Every true cluster center must have a recovered center nearby.
	for _, want := range truth {
		best := 1e18
		for _, got := range centers {
			if d := want.Dist(got); d < best {
				best = d
			}
		}
		if best > 30 {
			t.Fatalf("cluster at %v not recovered (nearest center %v away)", want, best)
		}
	}
}

func TestKMeansImprovesObjectiveOverRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(193))
	var pts []geo.Point
	for i := 0; i < 300; i++ {
		pts = append(pts, geo.Pt(rng.Float64()*1000, rng.Float64()*1000))
	}
	centers, err := KMeans(rng, pts, 10, 50)
	if err != nil {
		t.Fatal(err)
	}
	kmSS := WithinClusterSS(pts, centers)
	// Average over a few random placements.
	var randSS float64
	const trials = 5
	for tr := 0; tr < trials; tr++ {
		randCenters := make([]geo.Point, 10)
		for i := range randCenters {
			randCenters[i] = geo.Pt(rng.Float64()*1000, rng.Float64()*1000)
		}
		randSS += WithinClusterSS(pts, randCenters)
	}
	randSS /= trials
	if kmSS >= randSS {
		t.Fatalf("k-means SS %v not better than random placement %v", kmSS, randSS)
	}
}

func TestKMeansDuplicatePoints(t *testing.T) {
	rng := rand.New(rand.NewSource(194))
	pts := make([]geo.Point, 20)
	for i := range pts {
		pts[i] = geo.Pt(5, 5) // all identical
	}
	centers, err := KMeans(rng, pts, 3, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(centers) != 3 {
		t.Fatalf("centers = %d", len(centers))
	}
	if got := WithinClusterSS(pts, centers); got != 0 {
		t.Fatalf("SS = %v on degenerate input", got)
	}
}
