package voronoi

import (
	"math"
	"testing"

	"imtao/internal/geo"
)

// FuzzDiagramNearestSite drives the diagram with fuzzer-chosen site layouts
// and verifies the fundamental property: NearestSite agrees with brute
// force up to distance ties.
func FuzzDiagramNearestSite(f *testing.F) {
	f.Add(100.0, 100.0, 500.0, 900.0, 900.0, 100.0, 333.0, 777.0)
	f.Add(0.0, 0.0, 1000.0, 1000.0, 0.0, 1000.0, 500.0, 500.0)
	f.Add(1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0)
	f.Fuzz(func(t *testing.T, x1, y1, x2, y2, x3, y3, qx, qy float64) {
		clampF := func(v float64) float64 {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 0
			}
			return math.Mod(math.Abs(v), 1000)
		}
		sites := []geo.Point{
			geo.Pt(clampF(x1), clampF(y1)),
			geo.Pt(clampF(x2), clampF(y2)),
			geo.Pt(clampF(x3), clampF(y3)),
		}
		// Skip duplicate-site layouts — rejected by construction.
		for i := 0; i < 3; i++ {
			for j := i + 1; j < 3; j++ {
				if sites[i].Eq(sites[j]) {
					t.Skip()
				}
			}
		}
		bounds := geo.NewRect(geo.Pt(0, 0), geo.Pt(1000, 1000))
		d, err := NewDiagram(sites, bounds)
		if err != nil {
			t.Fatal(err)
		}
		q := geo.Pt(clampF(qx), clampF(qy))
		got := d.NearestSite(q)
		want := bruteNearest(sites, q)
		if got != want && math.Abs(sites[got].Dist(q)-sites[want].Dist(q)) > 1e-9 {
			t.Fatalf("NearestSite(%v) = %d (d=%v), brute %d (d=%v)",
				q, got, sites[got].Dist(q), want, sites[want].Dist(q))
		}
		// Cells tile the bounds.
		if a := d.TotalArea(); math.Abs(a-bounds.Area()) > 1e-3*bounds.Area() {
			t.Fatalf("cells do not tile bounds: %v vs %v", a, bounds.Area())
		}
	})
}
