package assign

import (
	"sort"

	"imtao/internal/model"
)

// The paper fixes every reward at s.r = 1, making "maximize assigned tasks"
// and "maximize collected reward" the same objective. Real platforms price
// tasks differently, so this file provides the reward-weighted
// generalisation: a sequential assigner whose greedy step weighs a task's
// reward against the detour it costs. With uniform rewards it reduces to a
// pure nearest-task rule like Algorithm 2 (up to tie-breaking among
// equally-near tasks).

// SequentialByReward assigns tasks per center like Sequential but greedily
// maximises reward-per-travel-hour at each step: among the feasible
// unassigned tasks, each worker repeatedly takes the one with the highest
// r / Δt where Δt is the incremental travel time (deterministic tie-break:
// nearer task, then smaller ID). Workers are served marginal-first exactly
// as in Algorithm 2.
func SequentialByReward(in *model.Instance, c *model.Center, workers []model.WorkerID, tasks []model.TaskID) Result {
	res := Result{}
	if len(workers) == 0 {
		res.LeftTasks = append([]model.TaskID(nil), tasks...)
		return res
	}
	order := append([]model.WorkerID(nil), workers...)
	sort.Slice(order, func(i, j int) bool {
		di := in.Worker(order[i]).Loc.Dist2(c.Loc)
		dj := in.Worker(order[j]).Loc.Dist2(c.Loc)
		if di != dj {
			return di > dj
		}
		return order[i] < order[j]
	})

	remaining := append([]model.TaskID(nil), tasks...)
	cref := in.CenterRef(c.ID)
	for _, wid := range order {
		w := in.Worker(wid)
		route := model.Route{Worker: wid, Center: c.ID}
		t := in.TravelTimeRef(w.Loc, in.WorkerRef(wid), c.Loc, cref)
		cur, curRef := c.Loc, cref
		for len(route.Tasks) < w.MaxT && len(remaining) > 0 {
			bestIdx := -1
			bestScore := -1.0
			bestDt := 0.0
			for i, tid := range remaining {
				task := in.Task(tid)
				dt := in.TravelTimeRef(cur, curRef, task.Loc, in.TaskRef(tid))
				if t+dt > task.Expiry+timeEps {
					continue
				}
				// Guard the zero-distance case: a task at the worker's
				// position is free reward and always wins.
				score := task.Reward / (dt + 1e-12)
				better := score > bestScore
				if score == bestScore && bestIdx >= 0 {
					if dt != bestDt {
						better = dt < bestDt
					} else {
						better = tid < remaining[bestIdx]
					}
				}
				if better {
					bestIdx, bestScore, bestDt = i, score, dt
				}
			}
			if bestIdx < 0 {
				break
			}
			tid := remaining[bestIdx]
			task := in.Task(tid)
			t += bestDt
			cur, curRef = task.Loc, in.TaskRef(tid)
			route.Tasks = append(route.Tasks, tid)
			remaining[bestIdx] = remaining[len(remaining)-1]
			remaining = remaining[:len(remaining)-1]
		}
		if len(route.Tasks) == 0 {
			res.LeftWorkers = append(res.LeftWorkers, wid)
		} else {
			res.Routes = append(res.Routes, route)
		}
	}
	res.LeftTasks = remaining
	sort.Slice(res.LeftTasks, func(i, j int) bool { return res.LeftTasks[i] < res.LeftTasks[j] })
	sort.Slice(res.LeftWorkers, func(i, j int) bool { return res.LeftWorkers[i] < res.LeftWorkers[j] })
	return res
}

// TotalReward sums the rewards of the tasks assigned in the result.
func (r *Result) TotalReward(in *model.Instance) float64 {
	var sum float64
	for _, rt := range r.Routes {
		for _, tid := range rt.Tasks {
			sum += in.Task(tid).Reward
		}
	}
	return sum
}
