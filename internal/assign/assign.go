// Package assign implements phase 1 of IMTAO: center-independent spatial
// task assignment. It provides the paper's two per-center assigners:
//
//   - Sequential — the efficient sequential task assignment heuristic
//     (paper Algorithm 2): workers sorted marginal-first, each greedily
//     extending a delivery sequence with the nearest unassigned task that
//     still meets its deadline.
//
//   - Optimal — the "Opt" baseline (paper §VI-A): enumerate every valid
//     task delivery set (VTDS) per worker, then resolve conflicts exactly
//     with branch-and-bound set packing maximizing the number of assigned
//     tasks.
//
// Both operate on an explicit worker/task list so that phase 2 can re-run
// them over a recipient center's own plus borrowed workers (the
// bi-directional collaboration of paper §V-D).
package assign

import (
	"math/rand"
	"sort"
	"sync"

	"imtao/internal/geo"
	"imtao/internal/index"
	"imtao/internal/model"
	"imtao/internal/obs"
	"imtao/internal/slab"
)

// Result is the outcome of a per-center assignment: the routes of A(c) —
// one per worker that received a non-empty VTDS — plus the unused workers
// c.W_left and unassigned tasks c.S_left that feed phase 2.
type Result struct {
	Routes      []model.Route
	LeftWorkers []model.WorkerID
	LeftTasks   []model.TaskID
	// Stats counts the work the call performed, feeding the obs layer's
	// per-center events and pipeline counters. Deterministic for a given
	// input, so results stay comparable across parallelism levels.
	Stats Stats
}

// Stats is the work profile of one assignment call.
type Stats struct {
	// TasksScanned counts candidate-task evaluations: nearest-neighbour
	// pool queries for Sequential, VTDS extension probes for Optimal.
	TasksScanned int
	// DeadlineRejections counts candidates discarded for missing their
	// deadline: sequence-ending nearest-task failures for Sequential,
	// infeasible VTDS extensions for Optimal.
	DeadlineRejections int
	// RouteExtensions counts accepted task placements: tasks appended to a
	// route for Sequential, feasible VTDS extensions for Optimal.
	RouteExtensions int
}

// Pipeline-wide work counters, aggregated once per assignment call from the
// local Stats so the hot loops never touch shared cache lines.
var (
	mCalls = obs.Default.Counter("imtao_assign_calls_total",
		"per-center assignment calls (phase 1 and phase-2 trials)")
	mTasksScanned = obs.Default.Counter("imtao_assign_tasks_scanned_total",
		"candidate-task evaluations across all assignment calls")
	mDeadlineRej = obs.Default.Counter("imtao_assign_deadline_rejections_total",
		"task candidates rejected for missing their deadline")
	mRouteExt = obs.Default.Counter("imtao_assign_route_extensions_total",
		"accepted task placements (route extensions)")
)

func recordStats(s Stats) {
	mCalls.Inc()
	mTasksScanned.Add(int64(s.TasksScanned))
	mDeadlineRej.Add(int64(s.DeadlineRejections))
	mRouteExt.Add(int64(s.RouteExtensions))
}

// AssignedCount returns the number of tasks assigned in the result.
func (r *Result) AssignedCount() int {
	n := 0
	for _, rt := range r.Routes {
		n += len(rt.Tasks)
	}
	return n
}

// WorkerOrder selects the order in which Sequential serves workers.
// The paper sorts by distance from the center descending ("marginal workers
// first", Algorithm 2 line 4); the alternatives exist for the ablation study.
type WorkerOrder int

const (
	// MarginalFirst is the paper's order: farthest worker from the center
	// first, so workers with the least remaining delivery time get the
	// first pick of tasks.
	MarginalFirst WorkerOrder = iota
	// NearestFirst is the reverse of the paper's order.
	NearestFirst
	// ByID serves workers in ID order (arrival order).
	ByID
	// RandomOrder shuffles workers with the Options RNG.
	RandomOrder
)

// Options tunes Sequential. The zero value reproduces the paper exactly.
type Options struct {
	Order WorkerOrder
	// Rng is required only for RandomOrder.
	Rng *rand.Rand
	// LinearScan disables the grid index and finds nearest tasks by linear
	// scan — the index-choice ablation.
	LinearScan bool
	// Scan, when non-nil, observes per-worker scan decisions — currently the
	// sequence-ending deadline rejection of Algorithm 2 line 11. The
	// provenance ledger hangs its phase-1 scan events off this hook; trial
	// replays in phase 2 never set it.
	Scan ScanObserver
}

// ScanObserver receives the sequential assigner's per-worker scan decisions.
type ScanObserver interface {
	// RejectDeadline fires when worker w's greedy sequence ends because the
	// nearest remaining task t would be reached at arrive > expiry.
	RejectDeadline(w model.WorkerID, t model.TaskID, arrive, expiry float64)
}

// Sequential runs paper Algorithm 2 for center c over the given worker and
// task sets. Tasks are assigned in nearest-first order per worker; a worker's
// sequence ends when capacity is reached or the nearest remaining task can no
// longer meet its deadline. The returned routes pick up at center c.
func Sequential(in *model.Instance, c *model.Center, workers []model.WorkerID, tasks []model.TaskID) Result {
	return SequentialOpt(in, c, workers, tasks, Options{})
}

// SequentialOpt is Sequential with explicit options.
func SequentialOpt(in *model.Instance, c *model.Center, workers []model.WorkerID, tasks []model.TaskID, opt Options) Result {
	res := Result{}
	if len(workers) == 0 {
		res.LeftTasks = append([]model.TaskID(nil), tasks...)
		recordStats(res.Stats)
		return res
	}
	in.EnsureHot()
	wh := in.HotWorkers()

	// Algorithm 2 line 4: order workers. Ties break by ID for determinism.
	order := append([]model.WorkerID(nil), workers...)
	switch opt.Order {
	case MarginalFirst:
		sort.Slice(order, func(i, j int) bool {
			di := wh[order[i]].Loc.Dist2(c.Loc)
			dj := wh[order[j]].Loc.Dist2(c.Loc)
			if di != dj {
				return di > dj
			}
			return order[i] < order[j]
		})
	case NearestFirst:
		sort.Slice(order, func(i, j int) bool {
			di := wh[order[i]].Loc.Dist2(c.Loc)
			dj := wh[order[j]].Loc.Dist2(c.Loc)
			if di != dj {
				return di < dj
			}
			return order[i] < order[j]
		})
	case ByID:
		sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	case RandomOrder:
		rng := opt.Rng
		if rng == nil {
			rng = rand.New(rand.NewSource(0))
		}
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
	}

	// Unassigned-task pool with nearest queries.
	var pool taskPool
	if opt.LinearScan {
		pool = newLinearPool(in, tasks)
	} else {
		pool = newGridPool(in, tasks)
	}

	cref := in.CenterRef(c.ID)
	for _, wid := range order {
		route := serveWorker(in, c, cref, wid, pool, &res.Stats, nil, opt.Scan)
		if len(route.Tasks) == 0 {
			// Line 19: unused worker — available for workforce transfer.
			res.LeftWorkers = append(res.LeftWorkers, wid)
		} else {
			res.Routes = append(res.Routes, route)
		}
	}
	res.LeftTasks = pool.remaining()
	if gp, ok := pool.(*gridPool); ok {
		gp.release()
	}
	sort.Slice(res.LeftTasks, func(i, j int) bool { return res.LeftTasks[i] < res.LeftTasks[j] })
	sort.Slice(res.LeftWorkers, func(i, j int) bool { return res.LeftWorkers[i] < res.LeftWorkers[j] })
	recordStats(res.Stats)
	return res
}

// serveWorker runs the per-worker inner loop of Algorithm 2 (lines 7–18):
// greedily extend wid's delivery sequence with nearest feasible tasks,
// consuming them from the shared pool. The pool is the ONLY cross-worker
// state of the sequential assigner — a fact the resumable trial engine
// (trial.go) exploits to replay just a suffix of the serve order.
//
// A non-nil arena supplies the route's task slice from recycled scratch
// (the trial engine's per-iteration buffers); nil falls back to a fresh
// allocation for the one-shot phase-1 path. min(MaxT, pool.len()) bounds the
// final route length exactly, so the grab never overflows its reservation.
func serveWorker(in *model.Instance, c *model.Center, cref model.NodeRef, wid model.WorkerID, pool taskPool, stats *Stats, arena *slab.Arena[model.TaskID], scan ScanObserver) model.Route {
	w := &in.HotWorkers()[wid]
	route := model.Route{Worker: wid, Center: c.ID}
	if hint := min(int(w.MaxT), pool.len()); hint > 0 {
		if arena != nil {
			route.Tasks = arena.Grab(hint)
		} else {
			route.Tasks = make([]model.TaskID, 0, hint)
		}
	}
	// Algorithm 2 lines 7–8: travel to the center first (Eq. 1).
	t := in.TravelTimeRef(w.Loc, w.Ref, c.Loc, cref)
	extendServe(in, &route, t, c.Loc, cref, int(w.MaxT), pool, stats, scan)
	return route
}

// extendServe runs Algorithm 2's inner greedy loop (lines 9–18) from an
// explicit resume state: the route so far, the time accumulator t and the
// worker's current position. serveWorker starts it at the center; the trial
// engine (trial.go) resumes it at the end of a preserved baseline route to
// check whether the trial pool extends the sequence.
func extendServe(in *model.Instance, route *model.Route, t float64, cur geo.Point, curRef model.NodeRef, maxT int, pool taskPool, stats *Stats, scan ScanObserver) {
	th := in.HotTasks()
	for len(route.Tasks) < maxT && pool.len() > 0 {
		// Line 10: nearest unassigned task to the worker's position.
		sid, ok := pool.nearest(cur)
		if !ok {
			break
		}
		stats.TasksScanned++
		task := &th[sid]
		arrive := t + in.TravelTimeRef(cur, curRef, task.Loc, task.Ref)
		// Line 11: deadline check. Under the paper's uniform expiry a
		// failing nearest task means every remaining task fails too, so
		// the sequence ends here.
		if arrive > task.Expiry+timeEps {
			stats.DeadlineRejections++
			if scan != nil {
				scan.RejectDeadline(route.Worker, sid, arrive, task.Expiry)
			}
			break
		}
		pool.remove(sid)
		route.Tasks = append(route.Tasks, sid)
		stats.RouteExtensions++
		t = arrive
		cur, curRef = task.Loc, task.Ref
	}
}

const timeEps = 1e-9

// taskPool abstracts the unassigned-task set with nearest queries and
// removal, so the index choice can be ablated.
type taskPool interface {
	nearest(q geo.Point) (model.TaskID, bool)
	remove(model.TaskID)
	len() int
	remaining() []model.TaskID
}

type gridPool struct{ g *index.Grid }

// gridFree recycles gridPool instances (and their Grid backing arrays)
// across assignment calls. Phase 2 runs one full assignment per candidate
// trial, so without reuse every trial pays a fresh cells-array allocation;
// sync.Pool keeps the scratch per-P, which also suits the per-goroutine
// trial evaluation.
var gridFree = sync.Pool{New: func() any { return &gridPool{g: &index.Grid{}} }}

func newGridPool(in *model.Instance, tasks []model.TaskID) *gridPool {
	p := gridFree.Get().(*gridPool)
	p.g.Reset(in.Bounds, max(len(tasks), 1), 4)
	th := in.HotTasks()
	for _, id := range tasks {
		p.g.Insert(index.Item{ID: int(id), Point: th[id].Loc})
	}
	return p
}

// release returns the pool's scratch to the free list. The caller must not
// touch the gridPool afterwards.
func (p *gridPool) release() { gridFree.Put(p) }

func (p *gridPool) nearest(q geo.Point) (model.TaskID, bool) {
	it, ok := p.g.Nearest(q)
	return model.TaskID(it.ID), ok
}
func (p *gridPool) remove(id model.TaskID) { p.g.Remove(int(id)) }
func (p *gridPool) len() int               { return p.g.Len() }
func (p *gridPool) remaining() []model.TaskID {
	items := p.g.Items()
	out := make([]model.TaskID, len(items))
	for i, it := range items {
		out[i] = model.TaskID(it.ID)
	}
	return out
}

type linearPool struct {
	items []index.Item
	// slot maps item ID → index in items, turning remove into an O(1)
	// swap-delete instead of a scan. nearest already costs O(n), so before
	// this map the pool was O(n) twice per accepted task.
	slot map[int]int
}

func newLinearPool(in *model.Instance, tasks []model.TaskID) *linearPool {
	p := &linearPool{
		items: make([]index.Item, len(tasks)),
		slot:  make(map[int]int, len(tasks)),
	}
	for i, id := range tasks {
		p.items[i] = index.Item{ID: int(id), Point: in.Task(id).Loc}
		p.slot[int(id)] = i
	}
	return p
}

func (p *linearPool) nearest(q geo.Point) (model.TaskID, bool) {
	it, ok := index.LinearNearest(p.items, q, nil)
	return model.TaskID(it.ID), ok
}

func (p *linearPool) remove(id model.TaskID) {
	i, ok := p.slot[int(id)]
	if !ok {
		return
	}
	last := len(p.items) - 1
	if i != last {
		p.items[i] = p.items[last]
		p.slot[p.items[i].ID] = i
	}
	p.items = p.items[:last]
	delete(p.slot, int(id))
}
func (p *linearPool) len() int { return len(p.items) }
func (p *linearPool) remaining() []model.TaskID {
	out := make([]model.TaskID, len(p.items))
	for i, it := range p.items {
		out[i] = model.TaskID(it.ID)
	}
	return out
}
