package assign

import (
	"math/rand"
	"testing"

	"imtao/internal/geo"
	"imtao/internal/model"
)

// benchScene builds an instance with n tasks scattered uniformly over the
// bounds, matching the geometry the grid index sees in a real run.
func benchScene(n int) (*model.Instance, []model.TaskID, []geo.Point) {
	rng := rand.New(rand.NewSource(7))
	locs := make([]geo.Point, n)
	for i := range locs {
		locs[i] = geo.Pt(rng.Float64()*2000-1000, rng.Float64()*2000-1000)
	}
	in := centerScene(nil, locs, 1e9, n)
	_, ts := allIDs(in)
	queries := make([]geo.Point, 256)
	for i := range queries {
		queries[i] = geo.Pt(rng.Float64()*2000-1000, rng.Float64()*2000-1000)
	}
	return in, ts, queries
}

func BenchmarkGridPoolNearest(b *testing.B) {
	in, ts, queries := benchScene(4096)
	p := newGridPool(in, ts)
	defer p.release()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.nearest(queries[i%len(queries)])
	}
}

// BenchmarkGridPoolNearestRemove measures the phase-1 inner loop shape: a
// nearest query followed by removing the returned task, draining and
// rebuilding the pool as it empties.
func BenchmarkGridPoolNearestRemove(b *testing.B) {
	in, ts, queries := benchScene(4096)
	p := newGridPool(in, ts)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id, ok := p.nearest(queries[i%len(queries)])
		if !ok {
			b.StopTimer()
			p.release()
			p = newGridPool(in, ts)
			b.StartTimer()
			continue
		}
		p.remove(id)
	}
	b.StopTimer()
	p.release()
}

func BenchmarkLinearPoolNearest(b *testing.B) {
	in, ts, queries := benchScene(4096)
	p := newLinearPool(in, ts)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.nearest(queries[i%len(queries)])
	}
}

// BenchmarkLinearPoolRemove exercises the O(1) swap-delete against a drained
// and rebuilt pool.
func BenchmarkLinearPoolRemove(b *testing.B) {
	in, ts, _ := benchScene(4096)
	p := newLinearPool(in, ts)
	order := rand.New(rand.NewSource(11)).Perm(len(ts))
	j := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if j == len(order) {
			b.StopTimer()
			p = newLinearPool(in, ts)
			j = 0
			b.StartTimer()
		}
		p.remove(ts[order[j]])
		j++
	}
}
