package assign

import (
	"cmp"
	"slices"

	"imtao/internal/index"
	"imtao/internal/model"
	"imtao/internal/slab"
)

// SequentialScratch runs the paper-default Sequential assigner
// (SequentialOpt with Options{}) through recycled buffers: the worker order,
// the route task slices, the route headers, and both leftover sets all come
// from per-scratch storage that reaches high-water capacity and stays there.
// The phase-2 game uses one scratch for its re-baseline path — the fresh
// assigner run a recipient needs after lending a worker — which would
// otherwise be the last allocating operation in the steady state.
//
// Run returns results bit-identical to Sequential: the serve loop, the pool
// and the deadline checks are the shared serveWorker/extendServe code, and
// every ordering (marginal-first with ID ties, ID-sorted leftover sets) is a
// total order, so the sort algorithm cannot influence the output.
type SequentialScratch struct {
	order  []model.WorkerID
	routes []model.Route
	lws    []model.WorkerID
	left   []model.TaskID
	items  []index.Item
	tasks  slab.Arena[model.TaskID]
}

// Run is Sequential(in, c, workers, tasks) drawing every result slice from
// the scratch. The Result — and every slice it carries — is valid only until
// the next Run; callers that keep it must deep-copy first.
func (s *SequentialScratch) Run(in *model.Instance, c *model.Center,
	workers []model.WorkerID, tasks []model.TaskID) Result {

	res := Result{}
	if len(workers) == 0 {
		s.left = append(s.left[:0], tasks...)
		res.LeftTasks = s.left
		recordStats(res.Stats)
		return res
	}
	in.EnsureHot()
	wh := in.HotWorkers()

	// Marginal-first with ID tiebreak is a total order over unique ids, so
	// SortFunc agrees with SequentialOpt's sort.Slice element for element.
	s.order = append(s.order[:0], workers...)
	order := s.order
	slices.SortFunc(order, func(a, b model.WorkerID) int {
		da := wh[a].Loc.Dist2(c.Loc)
		db := wh[b].Loc.Dist2(c.Loc)
		if da != db {
			if da > db {
				return -1
			}
			return 1
		}
		return cmp.Compare(a, b)
	})

	pool := newGridPool(in, tasks)
	s.tasks.Reset()

	routes := s.routes[:0]
	lws := s.lws[:0]
	cref := in.CenterRef(c.ID)
	for _, wid := range order {
		route := serveWorker(in, c, cref, wid, pool, &res.Stats, &s.tasks, nil)
		if len(route.Tasks) == 0 {
			lws = append(lws, wid)
		} else {
			routes = append(routes, route)
		}
	}
	s.items = pool.g.ItemsAppend(s.items[:0])
	left := s.left[:0]
	for _, it := range s.items {
		left = append(left, model.TaskID(it.ID))
	}
	pool.release()
	slices.Sort(left)
	slices.Sort(lws)
	s.routes, s.lws, s.left = routes, lws, left

	res.Routes = routes
	res.LeftWorkers = lws
	res.LeftTasks = left
	recordStats(res.Stats)
	return res
}
