package assign

import (
	"sort"
	"time"

	"imtao/internal/model"
	"imtao/internal/routing"
)

// OptimalOptions tunes the Opt baseline.
type OptimalOptions struct {
	// TimeBudget caps the whole per-center computation — VTDS enumeration
	// plus branch-and-bound conflict resolution; zero means unlimited.
	// When the budget expires the best packing over the candidates found so
	// far is returned (still at least as good as a greedy pick, because
	// candidates are explored largest-first). The paper's Opt runs to
	// completion; the budget exists to keep huge inputs bounded.
	TimeBudget time.Duration
}

// Optimal computes a per-center task assignment maximizing the number of
// assigned tasks — the paper's "Opt" baseline. It enumerates every VTDS of
// every worker (feasible task subsets of size ≤ maxT, paper §VI-A) and then
// solves the conflict-resolution problem exactly by branch-and-bound set
// packing. Ties between equal-count packings break toward lexicographically
// smaller worker routes, making the result deterministic.
func Optimal(in *model.Instance, c *model.Center, workers []model.WorkerID, tasks []model.TaskID) Result {
	return OptimalOpt(in, c, workers, tasks, OptimalOptions{})
}

// OptimalOpt is Optimal with explicit options.
func OptimalOpt(in *model.Instance, c *model.Center, workers []model.WorkerID, tasks []model.TaskID, opt OptimalOptions) Result {
	res := Result{}
	if len(workers) == 0 || len(tasks) == 0 {
		res.LeftTasks = append([]model.TaskID(nil), tasks...)
		res.LeftWorkers = append([]model.WorkerID(nil), workers...)
		sortResult(&res)
		recordStats(res.Stats)
		return res
	}

	// Dense task indexing for the bitset.
	taskIdx := make(map[model.TaskID]int, len(tasks))
	for i, id := range tasks {
		taskIdx[id] = i
	}
	n := len(tasks)

	// The time budget covers enumeration and packing together. Enumeration
	// gets at most half the budget so the packing search always has room to
	// assemble a solution from whatever candidates exist.
	deadline := time.Time{}
	enumDeadline := time.Time{}
	if opt.TimeBudget > 0 {
		now := time.Now()
		deadline = now.Add(opt.TimeBudget)
		enumDeadline = now.Add(opt.TimeBudget / 2)
	}

	// Enumerate candidate VTDS per worker. Feasibility is hereditary
	// (dropping tasks from a feasible sequence keeps it feasible), so DFS
	// extension enumerates exactly the feasible subsets.
	type candidate struct {
		mask bitset
		ids  []model.TaskID // feasible order
	}
	workerList := append([]model.WorkerID(nil), workers...)
	sort.Slice(workerList, func(i, j int) bool { return workerList[i] < workerList[j] })
	cands := make([][]candidate, len(workerList))
	var enumSteps int
	enumExpired := false
	for wi, wid := range workerList {
		w := in.Worker(wid)
		var sets []candidate
		var cur []model.TaskID
		var rec func(start int)
		rec = func(start int) {
			if len(cur) >= w.MaxT || enumExpired {
				return
			}
			for ti := start; ti < n; ti++ {
				enumSteps++
				if enumSteps&255 == 0 && !enumDeadline.IsZero() && time.Now().After(enumDeadline) {
					enumExpired = true
					return
				}
				cur = append(cur, tasks[ti])
				res.Stats.TasksScanned++
				if order, ok := routing.BestOrder(in, w, c, cur); ok {
					res.Stats.RouteExtensions++
					mask := newBitset(n)
					for _, id := range cur {
						mask.set(taskIdx[id])
					}
					sets = append(sets, candidate{mask: mask, ids: append([]model.TaskID(nil), order...)})
					rec(ti + 1)
				} else {
					res.Stats.DeadlineRejections++
				}
				cur = cur[:len(cur)-1]
			}
		}
		rec(0)
		// If the enumeration budget expired, guarantee at least the
		// feasible singletons so the packing can still use every worker
		// (never worse than a greedy one-task-per-worker plan).
		if enumExpired {
			have := make(map[int]bool)
			for _, cand := range sets {
				if len(cand.ids) == 1 {
					have[taskIdx[cand.ids[0]]] = true
				}
			}
			for ti := 0; ti < n; ti++ {
				if have[ti] {
					continue
				}
				one := []model.TaskID{tasks[ti]}
				if order, ok := routing.BestOrder(in, w, c, one); ok {
					mask := newBitset(n)
					mask.set(ti)
					sets = append(sets, candidate{mask: mask, ids: append([]model.TaskID(nil), order...)})
				}
			}
		}
		// Largest candidates first so branch-and-bound finds strong
		// incumbents early; ties by first task ID for determinism.
		sort.Slice(sets, func(a, b int) bool {
			if len(sets[a].ids) != len(sets[b].ids) {
				return len(sets[a].ids) > len(sets[b].ids)
			}
			return lessTaskSlices(sets[a].ids, sets[b].ids)
		})
		cands[wi] = sets
	}

	// Branch and bound over workers: pick one candidate (or none) per worker,
	// masks disjoint, maximize total size.
	// maxGain[wi] = max candidate size for worker wi (for the upper bound).
	maxGain := make([]int, len(workerList)+1)
	for wi := len(workerList) - 1; wi >= 0; wi-- {
		g := 0
		if len(cands[wi]) > 0 {
			g = len(cands[wi][0].ids)
		}
		maxGain[wi] = maxGain[wi+1] + g
	}

	best := make([]int, len(workerList)) // candidate index per worker, -1 = none
	chosen := make([]int, len(workerList))
	bestCount := -1
	used := newBitset(n)
	var expired bool
	var steps int

	var rec func(wi, count int)
	rec = func(wi, count int) {
		if expired {
			return
		}
		steps++
		if steps&1023 == 0 && !deadline.IsZero() && time.Now().After(deadline) {
			expired = true
			return
		}
		if count+maxGain[wi] <= bestCount {
			return // cannot beat the incumbent
		}
		if wi == len(workerList) {
			if count > bestCount {
				bestCount = count
				copy(best, chosen)
			}
			return
		}
		for ci := range cands[wi] {
			cand := &cands[wi][ci]
			if used.intersects(cand.mask) {
				continue
			}
			used.or(cand.mask)
			chosen[wi] = ci
			rec(wi+1, count+len(cand.ids))
			used.andNot(cand.mask)
		}
		chosen[wi] = -1
		rec(wi+1, count)
	}
	for i := range chosen {
		chosen[i] = -1
	}
	rec(0, 0)

	// Materialise the best packing.
	assigned := newBitset(n)
	for wi, wid := range workerList {
		ci := best[wi]
		if ci < 0 || ci >= len(cands[wi]) {
			res.LeftWorkers = append(res.LeftWorkers, wid)
			continue
		}
		cand := &cands[wi][ci]
		res.Routes = append(res.Routes, model.Route{
			Worker: wid, Center: c.ID, Tasks: append([]model.TaskID(nil), cand.ids...),
		})
		assigned.or(cand.mask)
	}
	for i, id := range tasks {
		if !assigned.get(i) {
			res.LeftTasks = append(res.LeftTasks, id)
		}
	}
	sortResult(&res)
	recordStats(res.Stats)
	return res
}

func sortResult(res *Result) {
	sort.Slice(res.LeftTasks, func(i, j int) bool { return res.LeftTasks[i] < res.LeftTasks[j] })
	sort.Slice(res.LeftWorkers, func(i, j int) bool { return res.LeftWorkers[i] < res.LeftWorkers[j] })
	sort.Slice(res.Routes, func(i, j int) bool { return res.Routes[i].Worker < res.Routes[j].Worker })
}

func lessTaskSlices(a, b []model.TaskID) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// bitset is a fixed-capacity bitmap over dense task indices.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int)      { b[i/64] |= 1 << (i % 64) }
func (b bitset) get(i int) bool { return b[i/64]&(1<<(i%64)) != 0 }

func (b bitset) intersects(o bitset) bool {
	for i := range b {
		if b[i]&o[i] != 0 {
			return true
		}
	}
	return false
}

func (b bitset) or(o bitset) {
	for i := range b {
		b[i] |= o[i]
	}
}

func (b bitset) andNot(o bitset) {
	for i := range b {
		b[i] &^= o[i]
	}
}
