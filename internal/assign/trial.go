package assign

import (
	"math"
	"slices"
	"sort"

	"imtao/internal/geo"
	"imtao/internal/index"
	"imtao/internal/model"
	"imtao/internal/obs"
	"imtao/internal/slab"
)

// Differential-replay work profile: routes copied verbatim from the baseline
// versus routes actually re-served (diff check failed, or the trial pool
// extended a short route).
var (
	mRoutesCopied = obs.Default.Counter("imtao_trial_routes_copied_total",
		"baseline routes copied verbatim by differential trial replay")
	mRoutesReplayed = obs.Default.Counter("imtao_trial_routes_replayed_total",
		"suffix routes re-served during trial replay (preservation check failed or route extended)")
	mEmptyCand = obs.Default.Counter("imtao_trial_empty_candidate_total",
		"trials whose candidate route came back empty (result is the baseline verbatim)")
)

// This file implements the resumable phase-2 trial engine (DESIGN.md §11).
//
// A best-response trial asks: "what would Sequential produce for center c if
// candidate worker w joined the current worker set?" The sequential assigner
// has exactly one piece of cross-worker state — the unassigned-task pool —
// so inserting one candidate at position k of the marginal-first serve order
// leaves positions 0..k-1 bit-identical to the baseline run. A trial
// therefore only needs to (a) restore the pool to its state after position
// k-1, (b) serve the candidate, and (c) replay the baseline suffix. The pool
// restore is O(tasks consumed by the suffix) via the index.Grid op journal
// (Mark/Rewind) instead of O(|S|) pool rebuilds per trial.
//
// Memory discipline (DESIGN.md §13): TrialBase and TrialRunner are reusable.
// The game resets one base per iteration (Reset) and rebinds long-lived
// per-goroutine runners to it (Rebind); every slice a trial emits comes from
// the runner's slab arenas, recycled on Rebind. In the steady state a whole
// game iteration performs zero heap allocations.
//
// PrunePad is the conservative admission-slack margin: a worker is pruned
// only when its center travel time exceeds the slack by more than the pad,
// so floating-point noise can only over-admit (costing a wasted trial),
// never falsely prune (which would break bit-identity).
const PrunePad = 1e-9

// AdmissionSlack returns max over tasks of (expiry + timeEps − tt(c, s)):
// the largest center-arrival time at which a worker could still deliver at
// least one of the given tasks as its FIRST task. A worker w with
// tt(w→c) > slack + PrunePad fails the Algorithm 2 deadline check on every
// first task, produces an empty route, leaves the pool untouched, and so
// yields a trial identical to the baseline — it can be pruned without
// evaluation. Returns -Inf when tasks is empty (nobody is admissible).
func AdmissionSlack(in *model.Instance, c *model.Center, tasks []model.TaskID) float64 {
	in.EnsureHot()
	th := in.HotTasks()
	cref := in.CenterRef(c.ID)
	slack := math.Inf(-1)
	for _, sid := range tasks {
		task := &th[sid]
		s := task.Expiry + timeEps - in.TravelTimeRef(c.Loc, cref, task.Loc, task.Ref)
		if s > slack {
			slack = s
		}
	}
	return slack
}

// WorkerAdmissible reports whether wid could feasibly deliver a first task
// for center c given the slack from AdmissionSlack.
func WorkerAdmissible(in *model.Instance, c *model.Center, wid model.WorkerID, slack float64) bool {
	in.EnsureHot()
	w := &in.HotWorkers()[wid]
	tt := in.TravelTimeRef(w.Loc, w.Ref, c.Loc, in.CenterRef(c.ID))
	return tt <= slack+PrunePad
}

// orderEnt pairs a worker with its cached squared center distance so the
// serve order sorts without re-deriving distances or allocating a closure.
type orderEnt struct {
	d2  float64
	wid model.WorkerID
}

// TrialBase is an immutable snapshot of one center's current assignment —
// serve order, per-position routes, leftover tasks and unused workers — from
// which many single-candidate trials can be answered incrementally. Reset it
// once per game iteration (the backing arrays are recycled); run trials
// through per-goroutine TrialRunners rebound to it.
type TrialBase struct {
	in   *model.Instance
	c    *model.Center
	cref model.NodeRef
	// th/wh are the instance's SoA hot slab, cached so the replay loops walk
	// contiguous arrays instead of the wider entity structs.
	th []model.TaskHot
	wh []model.WorkerHot

	// order is the baseline worker set in Sequential's marginal-first serve
	// order (distance from the center descending, ties to the smaller ID);
	// dist2 caches each worker's squared center distance for the insertion
	// search. ord is the sort scratch combining both.
	order []model.WorkerID
	dist2 []float64
	ord   []orderEnt
	// routes are the baseline routes, which Sequential emits in serve order;
	// routeAt[j] indexes routes for position j (-1 when order[j] went
	// unused) and cumRoutes[j] counts routes among positions < j.
	routes    []model.Route
	routeAt   []int32
	cumRoutes []int32
	// stepT holds serveWorker's time accumulators for every baseline route,
	// flattened into one slab: route ri's accumulators are
	// stepT[stepOff[ri]:stepOff[ri+1]], where entry i is the time after
	// serving the first i tasks (entry 0 is the worker→center arrival),
	// bit-identical to the baseline run's — same query sequence, same
	// addition order. It is the resume state for the differential replay:
	// divergence at step d restarts Algorithm 2's loop from the step-d
	// accumulator, and a preserved short route extends from the final entry.
	stepT   []float64
	stepOff []int32
	// baseLeft are the baseline unused workers (ID-sorted) and leftTasks the
	// baseline leftover tasks (ID-sorted) — the pool end state E shared by
	// every runner.
	baseLeft  []model.WorkerID
	leftTasks []model.TaskID
	// poolBounds/poolSize size the runners' trial grids for the worst-case
	// pool population — every task the baseline touches, not just the
	// leftovers the grid starts from. A position-0 trial re-inserts every
	// route's tasks, so sizing by len(leftTasks) (near zero at equilibrium)
	// would collapse the grid to a handful of giant cells and turn every
	// Nearest into a linear scan. The tight bounding rect matters for the
	// same reason: one center's tasks cover a sliver of the map, and
	// whole-map cells sized for a uniform spread dump the entire cluster
	// into one cell.
	poolBounds geo.Rect
	poolSize   int
}

// NewTrialBase snapshots the baseline assignment (workers, their routes, and
// the leftover tasks) for center c. routes must be the Sequential result for
// exactly this worker set — the constructor validates that they line up with
// the serve order and returns ok=false otherwise, signalling the caller to
// fall back to full re-assignment. The snapshot aliases the caller's routes
// and leftTasks; both are treated as immutable.
func NewTrialBase(in *model.Instance, c *model.Center, workers []model.WorkerID, routes []model.Route, leftTasks []model.TaskID) (*TrialBase, bool) {
	b := &TrialBase{}
	if !b.Reset(in, c, workers, routes, leftTasks) {
		return nil, false
	}
	return b, true
}

// Reset re-snapshots the base in place, recycling every backing array — the
// per-iteration entry point of the game engine. Same contract and validation
// as NewTrialBase; on ok=false the base must not be used until a successful
// Reset.
func (b *TrialBase) Reset(in *model.Instance, c *model.Center, workers []model.WorkerID, routes []model.Route, leftTasks []model.TaskID) bool {
	in.EnsureHot()
	b.in = in
	b.c = c
	b.cref = in.CenterRef(c.ID)
	b.th = in.HotTasks()
	b.wh = in.HotWorkers()
	b.routes = routes
	b.leftTasks = leftTasks

	b.ord = b.ord[:0]
	for _, wid := range workers {
		b.ord = append(b.ord, orderEnt{d2: b.wh[wid].Loc.Dist2(c.Loc), wid: wid})
	}
	// Marginal-first serve order: distance descending, ties to the smaller
	// ID — a strict total order, so any sorting algorithm lands on the same
	// permutation.
	slices.SortFunc(b.ord, func(x, y orderEnt) int {
		if x.d2 != y.d2 {
			if x.d2 > y.d2 {
				return -1
			}
			return 1
		}
		if x.wid != y.wid {
			if x.wid < y.wid {
				return -1
			}
			return 1
		}
		return 0
	})
	b.order = b.order[:0]
	b.dist2 = b.dist2[:0]
	b.routeAt = b.routeAt[:0]
	b.cumRoutes = append(b.cumRoutes[:0], 0)
	b.baseLeft = b.baseLeft[:0]
	r := 0
	for _, e := range b.ord {
		b.order = append(b.order, e.wid)
		b.dist2 = append(b.dist2, e.d2)
		if r < len(routes) && routes[r].Worker == e.wid {
			b.routeAt = append(b.routeAt, int32(r))
			r++
		} else {
			b.routeAt = append(b.routeAt, -1)
			b.baseLeft = append(b.baseLeft, e.wid)
		}
		b.cumRoutes = append(b.cumRoutes, int32(r))
	}
	if r != len(routes) {
		// The routes do not correspond to this worker set's serve order —
		// they came from a different assigner or a stale state.
		return false
	}
	slices.Sort(b.baseLeft)
	lo, hi := c.Loc, c.Loc
	grow := func(p geo.Point) {
		if p.X < lo.X {
			lo.X = p.X
		}
		if p.X > hi.X {
			hi.X = p.X
		}
		if p.Y < lo.Y {
			lo.Y = p.Y
		}
		if p.Y > hi.Y {
			hi.Y = p.Y
		}
	}
	b.poolSize = len(leftTasks)
	for _, sid := range leftTasks {
		grow(b.th[sid].Loc)
	}
	for ri := range routes {
		b.poolSize += len(routes[ri].Tasks)
		for _, sid := range routes[ri].Tasks {
			grow(b.th[sid].Loc)
		}
	}
	b.poolBounds = geo.Rect{Min: lo, Max: hi}
	b.stepT = b.stepT[:0]
	b.stepOff = append(b.stepOff[:0], 0)
	for ri := range routes {
		rt := &routes[ri]
		w := &b.wh[rt.Worker]
		t := in.TravelTimeRef(w.Loc, w.Ref, c.Loc, b.cref)
		b.stepT = append(b.stepT, t)
		cur, curRef := c.Loc, b.cref
		for _, sid := range rt.Tasks {
			task := &b.th[sid]
			t += in.TravelTimeRef(cur, curRef, task.Loc, task.Ref)
			b.stepT = append(b.stepT, t)
			cur, curRef = task.Loc, task.Ref
		}
		b.stepOff = append(b.stepOff, int32(len(b.stepT)))
	}
	return true
}

// stepsOf returns route ri's resume accumulators (see stepT).
func (b *TrialBase) stepsOf(ri int32) []float64 {
	return b.stepT[b.stepOff[ri]:b.stepOff[ri+1]]
}

// FootprintBytes estimates the snapshot's memory footprint (order, route
// tables and leftover-task pool), feeding the snapshot-bytes gauge.
func (b *TrialBase) FootprintBytes() int64 {
	n := int64(len(b.order))*(8+8+8) + int64(len(b.leftTasks))*8
	for _, rt := range b.routes {
		n += int64(len(rt.Tasks))*16 + 88
	}
	return n
}

// TrialRunner answers trials against one TrialBase. It owns a pooled grid
// holding the trial task pool plus the slab arenas every result slice is
// carved from; Rebind rebuilds the grid for a freshly Reset base and recycles
// the arenas, so a runner serves a whole game with a one-time high-water
// allocation. Results are valid until the runner's next Rebind — promote
// (deep-copy) anything that must live longer. Runners are NOT safe for
// concurrent use — create one per goroutine and Release when done.
type TrialRunner struct {
	b       *TrialBase
	pool    *gridPool
	peakOps int
	// lastCopied/lastReplayed profile the most recent Trial call for the
	// tracing layer: suffix routes taken verbatim vs re-served.
	lastCopied, lastReplayed int
	// stolen and freed are the differential replay's symmetric difference
	// between the trial pool and the baseline pool at the current worker
	// boundary: stolen = consumed in the trial, still available in the
	// baseline; freed = available in the trial, consumed in the baseline.
	// Reset per trial; both stay tiny (bounded by the replayed workers'
	// capacities), so linear scans beat maps.
	stolen []diffTask
	freed  []diffTask
	// Result-slice arenas, recycled per Rebind (one game iteration).
	tids slab.Arena[model.TaskID]
	wids slab.Arena[model.WorkerID]
	rts  slab.Arena[model.Route]
}

// diffTask is a pool-difference entry with its location cached for the
// geometric preservation checks.
type diffTask struct {
	id model.TaskID
	pt geo.Point
}

func diffIndex(s []diffTask, id model.TaskID) int {
	for i := range s {
		if s[i].id == id {
			return i
		}
	}
	return -1
}

func containsTask(s []model.TaskID, id model.TaskID) bool {
	for _, x := range s {
		if x == id {
			return true
		}
	}
	return false
}

// updateDiff folds one replayed worker's (baseline route, trial route) pair
// into the pool difference: tasks the baseline consumed but the trial did
// not become freed (or stop being stolen), tasks the trial consumed but the
// baseline did not become stolen (or stop being freed).
func (r *TrialRunner) updateDiff(base, trial []model.TaskID) {
	for _, x := range base {
		if containsTask(trial, x) {
			continue
		}
		if i := diffIndex(r.stolen, x); i >= 0 {
			r.stolen = append(r.stolen[:i], r.stolen[i+1:]...)
		} else {
			r.freed = append(r.freed, diffTask{x, r.b.th[x].Loc})
		}
	}
	for _, x := range trial {
		if containsTask(base, x) {
			continue
		}
		if i := diffIndex(r.freed, x); i >= 0 {
			r.freed = append(r.freed[:i], r.freed[i+1:]...)
		} else {
			r.stolen = append(r.stolen, diffTask{x, r.b.th[x].Loc})
		}
	}
}

// divergeStep returns the first step at which the baseline route stops
// replaying bit-identically against the current trial pool, or -1 when the
// whole route is preserved. Only two things can change a greedy
// nearest-first query: the chosen task is gone (stolen), or a freed task
// wins the Grid.Nearest comparison — smaller squared distance, ties to the
// smaller ID. Removing never-chosen tasks cannot promote a different
// winner, and an identical prefix fixes the arrival times, so deadline
// checks repeat verbatim up to the divergence point.
func (r *TrialRunner) divergeStep(rt *model.Route) int {
	b := r.b
	cur := b.c.Loc
	for i, sid := range rt.Tasks {
		if diffIndex(r.stolen, sid) >= 0 {
			return i
		}
		p := b.th[sid].Loc
		if len(r.freed) > 0 {
			ds := cur.Dist2(p)
			for _, e := range r.freed {
				de := cur.Dist2(e.pt)
				if de < ds || (de == ds && e.id < sid) {
					return i
				}
			}
		}
		cur = p
	}
	return -1
}

// NewRunner creates a runner whose task pool starts at the baseline start
// state S_0 — every task the assignment began with. Trials restore the pool
// to the candidate's serve position k by REMOVING the prefix consumption,
// which marginal-first makes near-free: borrowed candidates are far from
// the center, so k sits near the front and the prefix is almost empty
// (whereas restoring from the end state would re-insert nearly the whole
// suffix on every trial).
func (b *TrialBase) NewRunner() *TrialRunner {
	r := &TrialRunner{pool: gridFree.Get().(*gridPool)}
	r.Rebind(b)
	return r
}

// Rebind points the runner at a (typically freshly Reset) base: the trial
// grid is rebuilt to the base's start state and the result arenas are
// recycled, invalidating every Result this runner produced since the last
// Rebind. Call once per game iteration instead of creating a new runner.
func (r *TrialRunner) Rebind(b *TrialBase) {
	r.b = b
	r.tids.Reset()
	r.wids.Reset()
	r.rts.Reset()
	g := r.pool.g
	g.Reset(b.poolBounds, max(b.poolSize, 1), 4)
	for _, id := range b.leftTasks {
		g.Insert(index.Item{ID: int(id), Point: b.th[id].Loc})
	}
	for ri := range b.routes {
		for _, tid := range b.routes[ri].Tasks {
			g.Insert(index.Item{ID: int(tid), Point: b.th[tid].Loc})
		}
	}
}

// Release returns the runner's grid scratch to the shared free list. The
// runner must not be used afterwards.
func (r *TrialRunner) Release() {
	r.pool.release()
	r.pool = nil
}

// PeakJournalOps reports the largest per-trial journal this runner has seen
// — the copy-on-write cost ceiling of its trials.
func (r *TrialRunner) PeakJournalOps() int { return r.peakOps }

// LastReplay profiles the most recent Trial call: how many suffix routes
// were copied verbatim (preservation check held, zero pool queries) vs
// re-served through the differential replay. Deterministic for a given
// trial, so span args built from it stay comparable across parallelism.
func (r *TrialRunner) LastReplay() (copied, replayed int) {
	return r.lastCopied, r.lastReplayed
}

// Trial returns exactly what Sequential(in, c, baseWorkers∪{cand}, tasks)
// would return (up to nil-vs-empty slice spelling), by resuming from cand's
// position in the serve order. cand must not be in the baseline worker set.
// The result's slices live in the runner's arenas: valid until the next
// Rebind, shared with no other trial.
func (r *TrialRunner) Trial(cand model.WorkerID) Result {
	b := r.b
	var res Result
	cd2 := b.wh[cand].Loc.Dist2(b.c.Loc)
	// cand's serve-order position: first index holding a worker served
	// after cand. cand is not in order, so the ID tiebreak never ties.
	k := sort.Search(len(b.order), func(j int) bool {
		if b.dist2[j] != cd2 {
			return b.dist2[j] < cd2
		}
		return b.order[j] > cand
	})

	g := r.pool.g
	g.Mark()
	// Advance the pool from start state S_0 to the full run's state at
	// position k by consuming the prefix exactly as the baseline did: the
	// prefix 0..k-1 is bit-identical to the baseline, so S_k = S_0 minus
	// its routes' tasks. Marginal-first keeps k — and this loop — small.
	for j := 0; j < k; j++ {
		if ri := b.routeAt[j]; ri >= 0 {
			for _, tid := range b.routes[ri].Tasks {
				g.Remove(int(tid))
			}
		}
	}

	candRoute := serveWorker(b.in, b.c, b.cref, cand, r.pool, &res.Stats, &r.tids, nil)
	if len(candRoute.Tasks) == 0 {
		// The candidate takes nothing, so the suffix replays identically:
		// the trial IS the baseline plus one more unused worker.
		mEmptyCand.Add(1)
		r.lastCopied, r.lastReplayed = len(b.routes), 0
		if n := g.JournalLen(); n > r.peakOps {
			r.peakOps = n
		}
		g.Rewind()
		res.Routes = b.routes
		res.LeftTasks = b.leftTasks
		res.LeftWorkers = insertSortedWorker(&r.wids, b.baseLeft, cand)
		recordStats(res.Stats)
		return res
	}

	res.Routes = r.rts.Grab(len(b.order) + 1)
	res.Routes = append(res.Routes, b.routes[:b.cumRoutes[k]]...)
	res.Routes = append(res.Routes, candRoute)
	res.LeftWorkers = r.wids.Grab(len(b.order) + 1)
	for j := 0; j < k; j++ {
		if b.routeAt[j] < 0 {
			res.LeftWorkers = append(res.LeftWorkers, b.order[j])
		}
	}

	// Differential suffix replay. The candidate consumed at most MaxT tasks;
	// every suffix worker whose baseline route provably survives that
	// perturbation (routePreserved) is copied without a single pool query,
	// and the pool difference is threaded through the workers that do
	// re-serve. Once both difference sets drain, the perturbation is
	// absorbed: the rest of the suffix — and the leftover-task set — is the
	// baseline verbatim.
	r.stolen = r.stolen[:0]
	r.freed = r.freed[:0]
	for _, tid := range candRoute.Tasks {
		r.stolen = append(r.stolen, diffTask{tid, b.th[tid].Loc})
	}
	copied, replayed := 0, 0
	absorbed := false
	for j := k; j < len(b.order); j++ {
		if len(r.stolen) == 0 && len(r.freed) == 0 {
			// Trial pool == baseline pool at this boundary: every remaining
			// query repeats verbatim, including route endings.
			for ; j < len(b.order); j++ {
				if ri := b.routeAt[j]; ri >= 0 {
					res.Routes = append(res.Routes, b.routes[ri])
					copied++
				} else {
					res.LeftWorkers = append(res.LeftWorkers, b.order[j])
				}
			}
			absorbed = true
			break
		}
		wid := b.order[j]
		ri := b.routeAt[j]
		if ri < 0 {
			// Baseline-unused worker: its single ending query must run
			// against the real trial pool (a stolen blocker or a freed task
			// can hand it a route).
			rt := serveWorker(b.in, b.c, b.cref, wid, r.pool, &res.Stats, &r.tids, nil)
			if len(rt.Tasks) == 0 {
				res.LeftWorkers = append(res.LeftWorkers, wid)
			} else {
				res.Routes = append(res.Routes, rt)
				r.updateDiff(nil, rt.Tasks)
			}
			continue
		}
		rt := &b.routes[ri]
		wcap := int(b.wh[wid].MaxT)
		if d := r.divergeStep(rt); d >= 0 {
			// The prefix rt.Tasks[:d] replays verbatim (no stolen task and no
			// freed winner before step d): consume it from the trial pool and
			// resume Algorithm 2's loop from the stored step-d state instead
			// of re-serving the whole route.
			for _, tid := range rt.Tasks[:d] {
				g.Remove(int(tid))
			}
			cur, curRef := b.c.Loc, b.cref
			if d > 0 {
				prev := rt.Tasks[d-1]
				cur, curRef = b.th[prev].Loc, b.th[prev].Ref
			}
			// min(wcap, d + pool.len()) bounds the resumed route's final
			// length, so the arena reservation never overflows.
			rt2 := model.Route{Worker: wid, Center: b.c.ID,
				Tasks: r.tids.Grab(min(wcap, d+r.pool.len()))}
			rt2.Tasks = append(rt2.Tasks, rt.Tasks[:d]...)
			extendServe(b.in, &rt2, b.stepsOf(ri)[d], cur, curRef, wcap, r.pool, &res.Stats, nil)
			if len(rt2.Tasks) == 0 {
				res.LeftWorkers = append(res.LeftWorkers, wid)
			} else {
				res.Routes = append(res.Routes, rt2)
			}
			r.updateDiff(rt.Tasks, rt2.Tasks)
			replayed++
			continue
		}
		// The route replays verbatim — consume its tasks from the trial pool.
		for _, tid := range rt.Tasks {
			g.Remove(int(tid))
		}
		if len(rt.Tasks) < wcap {
			// The baseline sequence ended early (deadline or empty pool); the
			// trial pool may extend it. Resume Algorithm 2's loop from the
			// route's end state instead of replaying it.
			last := rt.Tasks[len(rt.Tasks)-1]
			trialRt := model.Route{Worker: wid, Center: b.c.ID,
				Tasks: r.tids.Grab(min(wcap, len(rt.Tasks)+r.pool.len()))}
			trialRt.Tasks = append(trialRt.Tasks, rt.Tasks...)
			extendServe(b.in, &trialRt, b.stepsOf(ri)[len(rt.Tasks)], b.th[last].Loc,
				b.th[last].Ref, wcap, r.pool, &res.Stats, nil)
			if len(trialRt.Tasks) > len(rt.Tasks) {
				res.Routes = append(res.Routes, trialRt)
				r.updateDiff(nil, trialRt.Tasks[len(rt.Tasks):])
				replayed++
				continue
			}
		}
		res.Routes = append(res.Routes, *rt)
		copied++
	}
	mRoutesCopied.Add(int64(copied))
	mRoutesReplayed.Add(int64(replayed))
	r.lastCopied, r.lastReplayed = copied, replayed

	if absorbed {
		res.LeftTasks = b.leftTasks
	} else {
		// The drained loop's difference sets ARE the leftover delta: trial
		// leftovers = (baseline leftovers − stolen) ∪ freed. Building from
		// them skips a full pool iteration per trial.
		lt := r.tids.Grab(len(b.leftTasks) + len(r.freed))
		for _, id := range b.leftTasks {
			if diffIndex(r.stolen, id) < 0 {
				lt = append(lt, id)
			}
		}
		for _, e := range r.freed {
			lt = append(lt, e.id)
		}
		slices.Sort(lt)
		res.LeftTasks = lt
	}
	if n := g.JournalLen(); n > r.peakOps {
		r.peakOps = n
	}
	g.Rewind()
	slices.Sort(res.LeftWorkers)
	recordStats(res.Stats)
	return res
}

// insertSortedWorker returns a copy of sorted (ascending IDs) with w
// inserted in order, carved from the given arena.
func insertSortedWorker(a *slab.Arena[model.WorkerID], sorted []model.WorkerID, w model.WorkerID) []model.WorkerID {
	i := sort.Search(len(sorted), func(j int) bool { return sorted[j] >= w })
	out := a.Grab(len(sorted) + 1)
	out = append(out, sorted[:i]...)
	out = append(out, w)
	return append(out, sorted[i:]...)
}
