package assign

import (
	"math/rand"
	"testing"

	"imtao/internal/geo"
	"imtao/internal/model"
	"imtao/internal/routing"
)

// centerScene builds a single-center instance with the given worker and task
// locations, uniform expiry and capacity, speed 1.
func centerScene(workerLocs, taskLocs []geo.Point, expiry float64, maxT int) *model.Instance {
	in := &model.Instance{
		Centers: []model.Center{{ID: 0, Loc: geo.Pt(0, 0)}},
		Speed:   1,
		Bounds:  geo.NewRect(geo.Pt(-1000, -1000), geo.Pt(1000, 1000)),
	}
	for i, l := range taskLocs {
		in.Tasks = append(in.Tasks, model.Task{ID: model.TaskID(i), Center: 0, Loc: l, Expiry: expiry, Reward: 1})
		in.Centers[0].Tasks = append(in.Centers[0].Tasks, model.TaskID(i))
	}
	for i, l := range workerLocs {
		in.Workers = append(in.Workers, model.Worker{ID: model.WorkerID(i), Home: 0, Loc: l, MaxT: maxT})
		in.Centers[0].Workers = append(in.Centers[0].Workers, model.WorkerID(i))
	}
	return in
}

func allIDs(in *model.Instance) ([]model.WorkerID, []model.TaskID) {
	return in.Centers[0].Workers, in.Centers[0].Tasks
}

func TestSequentialBasic(t *testing.T) {
	// One worker at the center, tasks strung to the right within reach.
	in := centerScene(
		[]geo.Point{geo.Pt(0, 0)},
		[]geo.Point{geo.Pt(1, 0), geo.Pt(2, 0), geo.Pt(3, 0)},
		100, 4,
	)
	ws, ts := allIDs(in)
	res := Sequential(in, in.Center(0), ws, ts)
	if got := res.AssignedCount(); got != 3 {
		t.Fatalf("assigned %d, want 3", got)
	}
	if len(res.LeftWorkers) != 0 || len(res.LeftTasks) != 0 {
		t.Fatalf("leftovers: workers %v tasks %v", res.LeftWorkers, res.LeftTasks)
	}
	// Nearest-first greedy on a line must be the sweep 0,1,2.
	want := []model.TaskID{0, 1, 2}
	for i, id := range res.Routes[0].Tasks {
		if id != want[i] {
			t.Fatalf("route = %v, want %v", res.Routes[0].Tasks, want)
		}
	}
}

func TestSequentialCapacity(t *testing.T) {
	in := centerScene(
		[]geo.Point{geo.Pt(0, 0)},
		[]geo.Point{geo.Pt(1, 0), geo.Pt(2, 0), geo.Pt(3, 0)},
		100, 2,
	)
	ws, ts := allIDs(in)
	res := Sequential(in, in.Center(0), ws, ts)
	if got := res.AssignedCount(); got != 2 {
		t.Fatalf("assigned %d, want 2 (capacity)", got)
	}
	if len(res.LeftTasks) != 1 || res.LeftTasks[0] != 2 {
		t.Fatalf("left tasks = %v, want [2]", res.LeftTasks)
	}
}

func TestSequentialDeadline(t *testing.T) {
	// Expiry 2.5: worker can reach task 0 (t=1) and task 1 (t=2) but not 2 (t=3).
	in := centerScene(
		[]geo.Point{geo.Pt(0, 0)},
		[]geo.Point{geo.Pt(1, 0), geo.Pt(2, 0), geo.Pt(3, 0)},
		2.5, 4,
	)
	ws, ts := allIDs(in)
	res := Sequential(in, in.Center(0), ws, ts)
	if got := res.AssignedCount(); got != 2 {
		t.Fatalf("assigned %d, want 2 (deadline)", got)
	}
}

func TestSequentialUnusedWorker(t *testing.T) {
	// Worker so far away that the pick-up alone exceeds every deadline.
	in := centerScene(
		[]geo.Point{geo.Pt(500, 0)},
		[]geo.Point{geo.Pt(1, 0)},
		2, 4,
	)
	ws, ts := allIDs(in)
	res := Sequential(in, in.Center(0), ws, ts)
	if res.AssignedCount() != 0 {
		t.Fatal("nothing should be assignable")
	}
	if len(res.LeftWorkers) != 1 || res.LeftWorkers[0] != 0 {
		t.Fatalf("left workers = %v", res.LeftWorkers)
	}
	if len(res.LeftTasks) != 1 {
		t.Fatalf("left tasks = %v", res.LeftTasks)
	}
}

func TestSequentialMarginalFirst(t *testing.T) {
	// Two workers: w0 at the center, w1 far away. One task reachable only if
	// the far (marginal) worker gets it first... actually the marginal worker
	// has LESS slack; the paper gives marginal workers first pick so they are
	// not left idle. Construct: one task, deadline tight enough that only
	// quick service works; both workers could serve it, but marginal-first
	// gives it to w1.
	in := centerScene(
		[]geo.Point{geo.Pt(0, 0), geo.Pt(5, 0)},
		[]geo.Point{geo.Pt(1, 0)},
		10, 4,
	)
	ws, ts := allIDs(in)
	res := Sequential(in, in.Center(0), ws, ts)
	if res.AssignedCount() != 1 {
		t.Fatalf("assigned %d, want 1", res.AssignedCount())
	}
	if res.Routes[0].Worker != 1 {
		t.Fatalf("marginal worker 1 should get the task, got worker %d", res.Routes[0].Worker)
	}
	// NearestFirst flips the choice.
	res = SequentialOpt(in, in.Center(0), ws, ts, Options{Order: NearestFirst})
	if res.Routes[0].Worker != 0 {
		t.Fatalf("nearest-first should give the task to worker 0, got %d", res.Routes[0].Worker)
	}
}

func TestSequentialEmptyInputs(t *testing.T) {
	in := centerScene([]geo.Point{geo.Pt(0, 0)}, []geo.Point{geo.Pt(1, 0)}, 100, 4)
	res := Sequential(in, in.Center(0), nil, in.Centers[0].Tasks)
	if res.AssignedCount() != 0 || len(res.LeftTasks) != 1 {
		t.Fatal("no workers: everything left")
	}
	res = Sequential(in, in.Center(0), in.Centers[0].Workers, nil)
	if res.AssignedCount() != 0 || len(res.LeftWorkers) != 1 {
		t.Fatal("no tasks: worker left")
	}
}

func TestSequentialZeroCapacityWorker(t *testing.T) {
	in := centerScene([]geo.Point{geo.Pt(0, 0)}, []geo.Point{geo.Pt(1, 0)}, 100, 0)
	ws, ts := allIDs(in)
	res := Sequential(in, in.Center(0), ws, ts)
	if res.AssignedCount() != 0 || len(res.LeftWorkers) != 1 {
		t.Fatalf("zero-capacity worker must stay unused: %+v", res)
	}
}

// Property: sequential routes always satisfy the VTDS conditions and never
// assign a task twice.
func TestSequentialRoutesAlwaysFeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 60; trial++ {
		nw, nt := 1+rng.Intn(8), 1+rng.Intn(30)
		wl := make([]geo.Point, nw)
		tl := make([]geo.Point, nt)
		for i := range wl {
			wl[i] = geo.Pt(rng.Float64()*200-100, rng.Float64()*200-100)
		}
		for i := range tl {
			tl[i] = geo.Pt(rng.Float64()*200-100, rng.Float64()*200-100)
		}
		in := centerScene(wl, tl, 50+rng.Float64()*200, 1+rng.Intn(5))
		ws, ts := allIDs(in)
		res := Sequential(in, in.Center(0), ws, ts)
		seen := map[model.TaskID]bool{}
		for _, r := range res.Routes {
			w := in.Worker(r.Worker)
			if !routing.OrderFeasible(in, w, in.Center(0), r.Tasks) {
				t.Fatalf("trial %d: infeasible route %v", trial, r)
			}
			for _, id := range r.Tasks {
				if seen[id] {
					t.Fatalf("trial %d: task %d assigned twice", trial, id)
				}
				seen[id] = true
			}
		}
		if len(seen)+len(res.LeftTasks) != nt {
			t.Fatalf("trial %d: task conservation broken: %d+%d != %d",
				trial, len(seen), len(res.LeftTasks), nt)
		}
		if len(res.Routes)+len(res.LeftWorkers) != nw {
			t.Fatalf("trial %d: worker conservation broken", trial)
		}
	}
}

// Property: the linear-scan pool and the grid pool give identical results.
func TestSequentialIndexAblationAgrees(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for trial := 0; trial < 30; trial++ {
		nw, nt := 1+rng.Intn(6), 1+rng.Intn(25)
		wl := make([]geo.Point, nw)
		tl := make([]geo.Point, nt)
		for i := range wl {
			wl[i] = geo.Pt(rng.Float64()*300, rng.Float64()*300)
		}
		for i := range tl {
			tl[i] = geo.Pt(rng.Float64()*300, rng.Float64()*300)
		}
		in := centerScene(wl, tl, 100+rng.Float64()*400, 1+rng.Intn(4))
		in.Centers[0].Loc = geo.Pt(150, 150)
		ws, ts := allIDs(in)
		a := SequentialOpt(in, in.Center(0), ws, ts, Options{})
		b := SequentialOpt(in, in.Center(0), ws, ts, Options{LinearScan: true})
		if a.AssignedCount() != b.AssignedCount() {
			t.Fatalf("trial %d: grid=%d linear=%d", trial, a.AssignedCount(), b.AssignedCount())
		}
		if len(a.Routes) != len(b.Routes) {
			t.Fatalf("trial %d: route count mismatch", trial)
		}
		for i := range a.Routes {
			if a.Routes[i].Worker != b.Routes[i].Worker || len(a.Routes[i].Tasks) != len(b.Routes[i].Tasks) {
				t.Fatalf("trial %d: route %d differs: %v vs %v", trial, i, a.Routes[i], b.Routes[i])
			}
			for j := range a.Routes[i].Tasks {
				if a.Routes[i].Tasks[j] != b.Routes[i].Tasks[j] {
					t.Fatalf("trial %d: route %d task %d differs", trial, i, j)
				}
			}
		}
	}
}

func TestSequentialDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	wl := make([]geo.Point, 6)
	tl := make([]geo.Point, 20)
	for i := range wl {
		wl[i] = geo.Pt(rng.Float64()*100, rng.Float64()*100)
	}
	for i := range tl {
		tl[i] = geo.Pt(rng.Float64()*100, rng.Float64()*100)
	}
	in := centerScene(wl, tl, 500, 4)
	ws, ts := allIDs(in)
	a := Sequential(in, in.Center(0), ws, ts)
	b := Sequential(in, in.Center(0), ws, ts)
	if a.AssignedCount() != b.AssignedCount() || len(a.Routes) != len(b.Routes) {
		t.Fatal("Sequential is not deterministic")
	}
}

func TestSequentialRandomOrder(t *testing.T) {
	in := centerScene(
		[]geo.Point{geo.Pt(0, 1), geo.Pt(1, 0), geo.Pt(2, 2)},
		[]geo.Point{geo.Pt(3, 0), geo.Pt(0, 3), geo.Pt(4, 4)},
		100, 1,
	)
	ws, ts := allIDs(in)
	// Nil Rng falls back to a fixed seed: deterministic.
	a := SequentialOpt(in, in.Center(0), ws, ts, Options{Order: RandomOrder})
	b := SequentialOpt(in, in.Center(0), ws, ts, Options{Order: RandomOrder})
	if a.AssignedCount() != b.AssignedCount() {
		t.Fatal("nil-rng random order must be deterministic")
	}
	// Seeded Rng reproduces.
	c := SequentialOpt(in, in.Center(0), ws, ts, Options{Order: RandomOrder, Rng: rand.New(rand.NewSource(5))})
	d := SequentialOpt(in, in.Center(0), ws, ts, Options{Order: RandomOrder, Rng: rand.New(rand.NewSource(5))})
	if c.AssignedCount() != d.AssignedCount() || len(c.Routes) != len(d.Routes) {
		t.Fatal("seeded random order must reproduce")
	}
	// Everything reachable still gets assigned (capacity 1 each, 3 tasks).
	if a.AssignedCount() != 3 {
		t.Fatalf("assigned %d, want 3", a.AssignedCount())
	}
}
