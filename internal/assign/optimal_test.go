package assign

import (
	"math/rand"
	"testing"
	"time"

	"imtao/internal/geo"
	"imtao/internal/model"
	"imtao/internal/routing"
)

func TestOptimalBasic(t *testing.T) {
	in := centerScene(
		[]geo.Point{geo.Pt(0, 0)},
		[]geo.Point{geo.Pt(1, 0), geo.Pt(2, 0), geo.Pt(3, 0)},
		100, 4,
	)
	ws, ts := allIDs(in)
	res := Optimal(in, in.Center(0), ws, ts)
	if got := res.AssignedCount(); got != 3 {
		t.Fatalf("assigned %d, want 3", got)
	}
	if err := feasibleResult(in, &res); err != "" {
		t.Fatal(err)
	}
}

func TestOptimalBeatsGreedyWhenGreedyTrapsItself(t *testing.T) {
	// Greedy nearest-first can waste the only worker's capacity on close
	// tasks and strand an urgent far one. Layout: two near tasks with loose
	// deadlines, one far task whose deadline only allows going there first.
	in := centerScene(
		[]geo.Point{geo.Pt(0, 0)},
		[]geo.Point{geo.Pt(1, 0), geo.Pt(2, 0), geo.Pt(10, 0)},
		100, 4,
	)
	in.Tasks[2].Expiry = 10.5 // reachable only near-directly
	ws, ts := allIDs(in)
	seq := Sequential(in, in.Center(0), ws, ts)
	opt := Optimal(in, in.Center(0), ws, ts)
	if opt.AssignedCount() < 3 {
		t.Fatalf("optimal must assign all 3, got %d", opt.AssignedCount())
	}
	if seq.AssignedCount() > opt.AssignedCount() {
		t.Fatalf("greedy %d beats optimal %d?!", seq.AssignedCount(), opt.AssignedCount())
	}
	if err := feasibleResult(in, &opt); err != "" {
		t.Fatal(err)
	}
}

func TestOptimalEmpty(t *testing.T) {
	in := centerScene([]geo.Point{geo.Pt(0, 0)}, []geo.Point{geo.Pt(1, 0)}, 100, 4)
	res := Optimal(in, in.Center(0), nil, in.Centers[0].Tasks)
	if res.AssignedCount() != 0 || len(res.LeftTasks) != 1 {
		t.Fatal("no workers")
	}
	res = Optimal(in, in.Center(0), in.Centers[0].Workers, nil)
	if res.AssignedCount() != 0 || len(res.LeftWorkers) != 1 {
		t.Fatal("no tasks")
	}
}

func TestOptimalConflictResolution(t *testing.T) {
	// Two workers, two tasks in opposite directions with tight deadlines so
	// each worker can serve at most one. Optimal must split them.
	in := centerScene(
		[]geo.Point{geo.Pt(0, 0), geo.Pt(0, 0)},
		[]geo.Point{geo.Pt(5, 0), geo.Pt(-5, 0)},
		5.5, 4,
	)
	ws, ts := allIDs(in)
	res := Optimal(in, in.Center(0), ws, ts)
	if got := res.AssignedCount(); got != 2 {
		t.Fatalf("assigned %d, want 2", got)
	}
	if len(res.Routes) != 2 {
		t.Fatalf("want both workers used, got %d routes", len(res.Routes))
	}
}

// Property: Optimal is never worse than Sequential, always feasible, and
// matches a brute-force reference on tiny instances.
func TestOptimalDominatesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 40; trial++ {
		nw, nt := 1+rng.Intn(3), 1+rng.Intn(7)
		wl := make([]geo.Point, nw)
		tl := make([]geo.Point, nt)
		for i := range wl {
			wl[i] = geo.Pt(rng.Float64()*60-30, rng.Float64()*60-30)
		}
		for i := range tl {
			tl[i] = geo.Pt(rng.Float64()*60-30, rng.Float64()*60-30)
		}
		in := centerScene(wl, tl, 20+rng.Float64()*60, 1+rng.Intn(3))
		ws, ts := allIDs(in)
		seq := Sequential(in, in.Center(0), ws, ts)
		opt := Optimal(in, in.Center(0), ws, ts)
		if opt.AssignedCount() < seq.AssignedCount() {
			t.Fatalf("trial %d: optimal %d < sequential %d", trial, opt.AssignedCount(), seq.AssignedCount())
		}
		if err := feasibleResult(in, &opt); err != "" {
			t.Fatalf("trial %d: %s", trial, err)
		}
	}
}

func TestOptimalTimeBudgetStillReturnsSolution(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	wl := make([]geo.Point, 6)
	tl := make([]geo.Point, 24)
	for i := range wl {
		wl[i] = geo.Pt(rng.Float64()*40, rng.Float64()*40)
	}
	for i := range tl {
		tl[i] = geo.Pt(rng.Float64()*40, rng.Float64()*40)
	}
	in := centerScene(wl, tl, 1000, 4)
	ws, ts := allIDs(in)
	res := OptimalOpt(in, in.Center(0), ws, ts, OptimalOptions{TimeBudget: time.Millisecond})
	if err := feasibleResult(in, &res); err != "" {
		t.Fatal(err)
	}
	if res.AssignedCount() == 0 {
		t.Fatal("budgeted run should still assign something")
	}
}

func TestOptimalDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	wl := make([]geo.Point, 3)
	tl := make([]geo.Point, 8)
	for i := range wl {
		wl[i] = geo.Pt(rng.Float64()*50, rng.Float64()*50)
	}
	for i := range tl {
		tl[i] = geo.Pt(rng.Float64()*50, rng.Float64()*50)
	}
	in := centerScene(wl, tl, 200, 3)
	ws, ts := allIDs(in)
	a := Optimal(in, in.Center(0), ws, ts)
	b := Optimal(in, in.Center(0), ws, ts)
	if a.AssignedCount() != b.AssignedCount() || len(a.Routes) != len(b.Routes) {
		t.Fatal("Optimal is not deterministic")
	}
	for i := range a.Routes {
		if a.Routes[i].Worker != b.Routes[i].Worker {
			t.Fatal("route order differs between runs")
		}
	}
}

// feasibleResult checks route feasibility, task uniqueness and conservation.
func feasibleResult(in *model.Instance, res *Result) string {
	seen := map[model.TaskID]bool{}
	for _, r := range res.Routes {
		w := in.Worker(r.Worker)
		c := in.Center(r.Center)
		if !routing.OrderFeasible(in, w, c, r.Tasks) {
			return "infeasible route"
		}
		for _, id := range r.Tasks {
			if seen[id] {
				return "task assigned twice"
			}
			seen[id] = true
		}
	}
	return ""
}

func BenchmarkSequential100Tasks(b *testing.B) {
	rng := rand.New(rand.NewSource(44))
	wl := make([]geo.Point, 10)
	tl := make([]geo.Point, 100)
	for i := range wl {
		wl[i] = geo.Pt(rng.Float64()*500, rng.Float64()*500)
	}
	for i := range tl {
		tl[i] = geo.Pt(rng.Float64()*500, rng.Float64()*500)
	}
	in := centerScene(wl, tl, 2000, 4)
	ws, ts := allIDs(in)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Sequential(in, in.Center(0), ws, ts)
	}
}

func BenchmarkOptimal12Tasks(b *testing.B) {
	rng := rand.New(rand.NewSource(45))
	wl := make([]geo.Point, 3)
	tl := make([]geo.Point, 12)
	for i := range wl {
		wl[i] = geo.Pt(rng.Float64()*50, rng.Float64()*50)
	}
	for i := range tl {
		tl[i] = geo.Pt(rng.Float64()*50, rng.Float64()*50)
	}
	in := centerScene(wl, tl, 200, 4)
	ws, ts := allIDs(in)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Optimal(in, in.Center(0), ws, ts)
	}
}

func TestOptimalTinyBudgetStillUsesAllWorkers(t *testing.T) {
	// With an extremely tight budget the enumeration expires almost
	// immediately; the singleton fallback must still let every worker take
	// a task when tasks are plentiful and reachable.
	rng := rand.New(rand.NewSource(46))
	wl := make([]geo.Point, 5)
	tl := make([]geo.Point, 40)
	for i := range wl {
		wl[i] = geo.Pt(rng.Float64()*20, rng.Float64()*20)
	}
	for i := range tl {
		tl[i] = geo.Pt(rng.Float64()*20, rng.Float64()*20)
	}
	in := centerScene(wl, tl, 1e6, 4)
	ws, ts := allIDs(in)
	res := OptimalOpt(in, in.Center(0), ws, ts, OptimalOptions{TimeBudget: time.Microsecond})
	if err := feasibleResult(in, &res); err != "" {
		t.Fatal(err)
	}
	if res.AssignedCount() < len(ws) {
		t.Fatalf("assigned %d with %d workers; singleton fallback failed", res.AssignedCount(), len(ws))
	}
}
