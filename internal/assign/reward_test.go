package assign

import (
	"math/rand"
	"testing"

	"imtao/internal/geo"
	"imtao/internal/model"
	"imtao/internal/routing"
)

func TestSequentialByRewardPrefersHighValue(t *testing.T) {
	// Two tasks at equal distance, very different rewards, capacity 1:
	// the reward-aware assigner must take the valuable one.
	in := centerScene(
		[]geo.Point{geo.Pt(0, 0)},
		[]geo.Point{geo.Pt(5, 0), geo.Pt(-5, 0)},
		100, 1,
	)
	in.Tasks[1].Reward = 10
	res := SequentialByReward(in, in.Center(0), in.Centers[0].Workers, in.Centers[0].Tasks)
	if res.AssignedCount() != 1 {
		t.Fatalf("assigned %d", res.AssignedCount())
	}
	if res.Routes[0].Tasks[0] != 1 {
		t.Fatalf("took task %d, want the reward-10 task", res.Routes[0].Tasks[0])
	}
	if got := res.TotalReward(in); got != 10 {
		t.Fatalf("TotalReward = %v", got)
	}
}

func TestSequentialByRewardUniformMatchesCount(t *testing.T) {
	// With uniform rewards it behaves like a nearest-style greedy: same
	// assigned COUNT as Sequential on easy instances (routes may differ).
	rng := rand.New(rand.NewSource(161))
	for trial := 0; trial < 20; trial++ {
		nw, nt := 1+rng.Intn(5), 1+rng.Intn(20)
		wl := make([]geo.Point, nw)
		tl := make([]geo.Point, nt)
		for i := range wl {
			wl[i] = geo.Pt(rng.Float64()*100, rng.Float64()*100)
		}
		for i := range tl {
			tl[i] = geo.Pt(rng.Float64()*100, rng.Float64()*100)
		}
		in := centerScene(wl, tl, 1e6, 4) // no deadline pressure
		ws, ts := allIDs(in)
		a := Sequential(in, in.Center(0), ws, ts)
		b := SequentialByReward(in, in.Center(0), ws, ts)
		if a.AssignedCount() != b.AssignedCount() {
			t.Fatalf("trial %d: count %d vs %d under uniform rewards (no deadlines)",
				trial, a.AssignedCount(), b.AssignedCount())
		}
	}
}

func TestSequentialByRewardFeasibility(t *testing.T) {
	rng := rand.New(rand.NewSource(162))
	for trial := 0; trial < 30; trial++ {
		nw, nt := 1+rng.Intn(6), 1+rng.Intn(25)
		wl := make([]geo.Point, nw)
		tl := make([]geo.Point, nt)
		for i := range wl {
			wl[i] = geo.Pt(rng.Float64()*200-100, rng.Float64()*200-100)
		}
		for i := range tl {
			tl[i] = geo.Pt(rng.Float64()*200-100, rng.Float64()*200-100)
		}
		in := centerScene(wl, tl, 50+rng.Float64()*150, 1+rng.Intn(4))
		for i := range in.Tasks {
			in.Tasks[i].Reward = 1 + rng.Float64()*9
		}
		ws, ts := allIDs(in)
		res := SequentialByReward(in, in.Center(0), ws, ts)
		seen := map[model.TaskID]bool{}
		for _, r := range res.Routes {
			if !routing.OrderFeasible(in, in.Worker(r.Worker), in.Center(0), r.Tasks) {
				t.Fatalf("trial %d: infeasible route", trial)
			}
			for _, tid := range r.Tasks {
				if seen[tid] {
					t.Fatalf("trial %d: duplicate task", trial)
				}
				seen[tid] = true
			}
		}
		if len(seen)+len(res.LeftTasks) != nt {
			t.Fatalf("trial %d: conservation broken", trial)
		}
	}
}

func TestSequentialByRewardEmpty(t *testing.T) {
	in := centerScene([]geo.Point{geo.Pt(0, 0)}, []geo.Point{geo.Pt(1, 0)}, 100, 4)
	res := SequentialByReward(in, in.Center(0), nil, in.Centers[0].Tasks)
	if res.AssignedCount() != 0 || len(res.LeftTasks) != 1 {
		t.Fatal("no workers")
	}
}

func TestSequentialByRewardBeatsCountGreedyOnReward(t *testing.T) {
	// A cluster of cheap nearby tasks vs a valuable slightly-farther one
	// with capacity 1: Sequential takes the nearest (cheap), ByReward takes
	// the valuable one.
	in := centerScene(
		[]geo.Point{geo.Pt(0, 0)},
		[]geo.Point{geo.Pt(1, 0), geo.Pt(3, 0)},
		100, 1,
	)
	in.Tasks[0].Reward = 1
	in.Tasks[1].Reward = 100
	ws, ts := allIDs(in)
	count := Sequential(in, in.Center(0), ws, ts)
	reward := SequentialByReward(in, in.Center(0), ws, ts)
	if reward.TotalReward(in) <= count.TotalReward(in) {
		t.Fatalf("reward-aware %v should beat count-greedy %v on reward",
			reward.TotalReward(in), count.TotalReward(in))
	}
}
