package assign

import (
	"math/rand"
	"reflect"
	"testing"

	"imtao/internal/geo"
	"imtao/internal/model"
	"imtao/internal/roadnet"
)

// randomCenterScene builds a single-center instance with nw workers and nt
// tasks scattered around the center, with per-task expiries spread so some
// workers can reach first tasks and some cannot (exercising both served and
// empty trial routes).
func randomCenterScene(rng *rand.Rand, nw, nt int) *model.Instance {
	var wl, tl []geo.Point
	for i := 0; i < nw; i++ {
		wl = append(wl, geo.Pt(rng.Float64()*200-100, rng.Float64()*200-100))
	}
	for i := 0; i < nt; i++ {
		tl = append(tl, geo.Pt(rng.Float64()*200-100, rng.Float64()*200-100))
	}
	in := centerScene(wl, tl, 0, 1+rng.Intn(4))
	for i := range in.Tasks {
		in.Tasks[i].Expiry = 20 + rng.Float64()*180
	}
	in.Speed = 1 + rng.Float64()*4
	return in
}

// normalizeResult flattens the representation freedoms the trial engine is
// allowed: nil vs empty slices and the Stats work profile (a resumed trial
// only pays for the suffix it replays, so its counters are intentionally
// smaller than a full run's).
func normalizeResult(r Result) Result {
	r.Stats = Stats{}
	if len(r.Routes) == 0 {
		r.Routes = nil
	}
	if len(r.LeftWorkers) == 0 {
		r.LeftWorkers = nil
	}
	if len(r.LeftTasks) == 0 {
		r.LeftTasks = nil
	}
	return r
}

// checkTrialMatchesFull asserts, for every worker outside the baseline set,
// that the prefix-resume trial returns exactly what a full Sequential run over
// the extended worker set would.
func checkTrialMatchesFull(t *testing.T, in *model.Instance, trial int, base []model.WorkerID) {
	t.Helper()
	c := in.Center(0)
	tasks := in.Centers[0].Tasks
	baseline := Sequential(in, c, base, tasks)
	tb, ok := NewTrialBase(in, c, base, baseline.Routes, baseline.LeftTasks)
	if !ok {
		t.Fatalf("trial %d: NewTrialBase rejected a genuine Sequential baseline", trial)
	}
	runner := tb.NewRunner()
	defer runner.Release()

	inBase := make(map[model.WorkerID]bool, len(base))
	for _, w := range base {
		inBase[w] = true
	}
	for _, w := range in.Centers[0].Workers {
		if inBase[w] {
			continue
		}
		got := normalizeResult(runner.Trial(w))
		ws := append(append([]model.WorkerID(nil), base...), w)
		want := normalizeResult(Sequential(in, c, ws, tasks))
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d cand %d:\n got  %+v\n want %+v", trial, w, got, want)
		}
	}
}

// TestTrialMatchesFullRunEuclidean is the core equivalence property of the
// resumable trial engine on straight-line instances: Trial(cand) ==
// Sequential(base ∪ {cand}) bit-for-bit, for every insertion position.
func TestTrialMatchesFullRunEuclidean(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 60; trial++ {
		in := randomCenterScene(rng, 2+rng.Intn(10), 1+rng.Intn(30))
		all := in.Centers[0].Workers
		// A random proper subset is the baseline; the rest are candidates.
		k := rng.Intn(len(all))
		base := append([]model.WorkerID(nil), all[:k]...)
		checkTrialMatchesFull(t, in, trial, base)
	}
}

// TestTrialMatchesFullRunRoadNetwork repeats the equivalence property under
// the road-network metric, where travel times are asymmetric to the straight
// line and the snap memo is in play.
func TestTrialMatchesFullRunRoadNetwork(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 20; trial++ {
		in := randomCenterScene(rng, 2+rng.Intn(8), 1+rng.Intn(20))
		net, err := roadnet.New(in.Bounds, 12, 12, in.Speed)
		if err != nil {
			t.Fatal(err)
		}
		net.SetCongestion(geo.Pt(rng.Float64()*200-100, rng.Float64()*200-100), 1+rng.Float64()*3)
		in.Metric = net
		in.PrepareMetric()
		all := in.Centers[0].Workers
		base := append([]model.WorkerID(nil), all[:rng.Intn(len(all))]...)
		checkTrialMatchesFull(t, in, trial, base)
	}
}

// TestTrialEmptyBase covers the DC-shaped trial: no baseline workers, the
// candidate alone over the leftover tasks.
func TestTrialEmptyBase(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		in := randomCenterScene(rng, 1+rng.Intn(6), 1+rng.Intn(20))
		checkTrialMatchesFull(t, in, trial, nil)
	}
}

// TestNewTrialBaseRejectsForeignRoutes asserts the constructor detects routes
// that cannot be a Sequential outcome for the given worker set and signals
// the caller to fall back to full evaluation.
func TestNewTrialBaseRejectsForeignRoutes(t *testing.T) {
	in := centerScene(
		[]geo.Point{geo.Pt(0, 1), geo.Pt(0, 2)},
		[]geo.Point{geo.Pt(1, 0), geo.Pt(2, 0)},
		100, 2,
	)
	ws, ts := allIDs(in)
	res := Sequential(in, in.Center(0), ws, ts)
	if len(res.Routes) == 0 {
		t.Fatal("scene must produce at least one route")
	}
	// Routes referencing a worker outside the set cannot line up.
	bad := cloneResultRoutes(res.Routes)
	bad[0].Worker = 99
	if _, ok := NewTrialBase(in, in.Center(0), ws, bad, res.LeftTasks); ok {
		t.Fatal("NewTrialBase accepted routes for a foreign worker")
	}
}

// TestAdmissionSlackPrunesExactly asserts the pruning predicate: a worker
// failing WorkerAdmissible yields an empty route (baseline-identical trial),
// on both metrics.
func TestAdmissionSlackPrunesExactly(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 40; trial++ {
		in := randomCenterScene(rng, 2+rng.Intn(8), 1+rng.Intn(20))
		// Tighten the deadlines so distant workers actually get pruned.
		for i := range in.Tasks {
			in.Tasks[i].Expiry = 10 + rng.Float64()*60
		}
		if trial%2 == 1 {
			net, err := roadnet.New(in.Bounds, 10, 10, in.Speed)
			if err != nil {
				t.Fatal(err)
			}
			in.Metric = net
			in.PrepareMetric()
		}
		c := in.Center(0)
		tasks := in.Centers[0].Tasks
		slack := AdmissionSlack(in, c, tasks)
		for _, w := range in.Centers[0].Workers {
			if WorkerAdmissible(in, c, w, slack) {
				continue
			}
			res := Sequential(in, c, []model.WorkerID{w}, tasks)
			if got := res.AssignedCount(); got != 0 {
				t.Fatalf("trial %d: pruned worker %d assigned %d tasks", trial, w, got)
			}
		}
	}
}

func cloneResultRoutes(rs []model.Route) []model.Route {
	out := make([]model.Route, len(rs))
	for i, r := range rs {
		out[i] = model.Route{Worker: r.Worker, Center: r.Center, Tasks: append([]model.TaskID(nil), r.Tasks...)}
	}
	return out
}
