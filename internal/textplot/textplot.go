// Package textplot renders small ASCII line charts for the benchmark CLI,
// approximating the figures of the paper in terminal output: multiple named
// series over a shared x axis, auto-scaled y axis, and a legend.
package textplot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named line of a chart.
type Series struct {
	Name   string
	Values []float64
}

// markers cycles through per-series plot glyphs.
var markers = []byte{'*', 'o', '+', 'x', '#', '@', '%', '~'}

// Chart holds everything needed to render one plot.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	XTicks []string // one label per x position; optional
	Series []Series
	Width  int // plot area width in columns  (default 60)
	Height int // plot area height in rows    (default 16)
}

// Render draws the chart into a string. Series of different lengths are
// allowed; each series is spread uniformly over the x axis.
func (c Chart) Render() string {
	w, h := c.Width, c.Height
	if w <= 0 {
		w = 60
	}
	if h <= 0 {
		h = 16
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	maxLen := 0
	for _, s := range c.Series {
		for _, v := range s.Values {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		if len(s.Values) > maxLen {
			maxLen = len(s.Values)
		}
	}
	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	if maxLen == 0 || math.IsInf(lo, 1) {
		b.WriteString("(no data)\n")
		return b.String()
	}
	if hi == lo {
		hi = lo + 1
	}
	pad := (hi - lo) * 0.05
	lo, hi = lo-pad, hi+pad

	grid := make([][]byte, h)
	for y := range grid {
		grid[y] = []byte(strings.Repeat(" ", w))
	}
	for si, s := range c.Series {
		m := markers[si%len(markers)]
		n := len(s.Values)
		if n == 0 {
			continue
		}
		prevX, prevY := -1, -1
		for i, v := range s.Values {
			x := 0
			if n > 1 {
				x = i * (w - 1) / (n - 1)
			}
			y := int(math.Round((hi - v) / (hi - lo) * float64(h-1)))
			if y < 0 {
				y = 0
			}
			if y >= h {
				y = h - 1
			}
			// Connect to the previous point with a faint line.
			if prevX >= 0 {
				steps := x - prevX
				for t := 1; t < steps; t++ {
					ix := prevX + t
					iy := prevY + (y-prevY)*t/steps
					if grid[iy][ix] == ' ' {
						grid[iy][ix] = '.'
					}
				}
			}
			grid[y][x] = m
			prevX, prevY = x, y
		}
	}

	yTop := formatTick(hi)
	yBot := formatTick(lo)
	lab := len(yTop)
	if len(yBot) > lab {
		lab = len(yBot)
	}
	for y := 0; y < h; y++ {
		tick := strings.Repeat(" ", lab)
		switch y {
		case 0:
			tick = fmt.Sprintf("%*s", lab, yTop)
		case h - 1:
			tick = fmt.Sprintf("%*s", lab, yBot)
		case h / 2:
			tick = fmt.Sprintf("%*s", lab, formatTick((hi+lo)/2))
		}
		fmt.Fprintf(&b, "%s |%s\n", tick, string(grid[y]))
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", lab), strings.Repeat("-", w))
	if len(c.XTicks) > 0 {
		fmt.Fprintf(&b, "%s  %s\n", strings.Repeat(" ", lab), spreadTicks(c.XTicks, w))
	}
	if c.XLabel != "" || c.YLabel != "" {
		fmt.Fprintf(&b, "%s  x: %s   y: %s\n", strings.Repeat(" ", lab), c.XLabel, c.YLabel)
	}
	for si, s := range c.Series {
		fmt.Fprintf(&b, "%s    %c %s\n", strings.Repeat(" ", lab), markers[si%len(markers)], s.Name)
	}
	return b.String()
}

func formatTick(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 1000:
		return fmt.Sprintf("%.0f", v)
	case av >= 10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// spreadTicks lays the x tick labels across the axis width.
func spreadTicks(ticks []string, w int) string {
	if len(ticks) == 0 {
		return ""
	}
	out := []byte(strings.Repeat(" ", w+8))
	n := len(ticks)
	for i, t := range ticks {
		x := 0
		if n > 1 {
			x = i * (w - 1) / (n - 1)
		}
		start := x - len(t)/2
		if start < 0 {
			start = 0
		}
		if start+len(t) > len(out) {
			start = len(out) - len(t)
		}
		copy(out[start:], t)
	}
	return strings.TrimRight(string(out), " ")
}
