package textplot

import (
	"strings"
	"testing"
)

func TestRenderBasic(t *testing.T) {
	out := Chart{
		Title:  "demo",
		XLabel: "x",
		YLabel: "y",
		XTicks: []string{"1", "2", "3"},
		Series: []Series{
			{Name: "up", Values: []float64{1, 2, 3}},
			{Name: "down", Values: []float64{3, 2, 1}},
		},
	}.Render()
	for _, want := range []string{"demo", "up", "down", "x: x", "y: y", "+--"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	// Both markers must appear.
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Errorf("markers missing:\n%s", out)
	}
}

func TestRenderEmpty(t *testing.T) {
	out := Chart{Title: "empty"}.Render()
	if !strings.Contains(out, "(no data)") {
		t.Errorf("empty chart: %q", out)
	}
}

func TestRenderConstantSeries(t *testing.T) {
	out := Chart{Series: []Series{{Name: "flat", Values: []float64{5, 5, 5}}}}.Render()
	if !strings.Contains(out, "*") {
		t.Errorf("flat series must still plot:\n%s", out)
	}
}

func TestRenderSinglePoint(t *testing.T) {
	out := Chart{Series: []Series{{Name: "dot", Values: []float64{7}}}}.Render()
	if !strings.Contains(out, "*") {
		t.Errorf("single point must plot:\n%s", out)
	}
}

func TestRenderCustomSize(t *testing.T) {
	out := Chart{
		Width: 20, Height: 5,
		Series: []Series{{Name: "s", Values: []float64{0, 10}}},
	}.Render()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// 5 plot rows + axis + legend.
	if len(lines) < 6 {
		t.Errorf("unexpected line count %d:\n%s", len(lines), out)
	}
	for _, l := range lines[:5] {
		if len(l) > 20+10 {
			t.Errorf("row too wide: %q", l)
		}
	}
}

func TestSpreadTicks(t *testing.T) {
	got := spreadTicks([]string{"a", "b", "c"}, 20)
	if !strings.Contains(got, "a") || !strings.Contains(got, "b") || !strings.Contains(got, "c") {
		t.Errorf("ticks missing: %q", got)
	}
	if spreadTicks(nil, 20) != "" {
		t.Error("no ticks must render empty")
	}
}

func TestFormatTick(t *testing.T) {
	cases := []struct {
		v    float64
		want string
	}{
		{12345, "12345"},
		{42.42, "42.4"},
		{0.1234, "0.123"},
	}
	for _, c := range cases {
		if got := formatTick(c.v); got != c.want {
			t.Errorf("formatTick(%v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestRenderManySeriesMarkerWrap(t *testing.T) {
	ch := Chart{}
	for i := 0; i < 10; i++ { // more series than distinct markers
		ch.Series = append(ch.Series, Series{
			Name:   "s",
			Values: []float64{float64(i), float64(10 - i)},
		})
	}
	out := ch.Render()
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Errorf("marker wrap failed:\n%s", out)
	}
	lines := strings.Count(out, "\n")
	if lines < 16 {
		t.Errorf("missing rows: %d", lines)
	}
}

func TestRenderEmptySeriesAmongFull(t *testing.T) {
	out := Chart{Series: []Series{
		{Name: "empty"},
		{Name: "full", Values: []float64{1, 2}},
	}}.Render()
	if !strings.Contains(out, "full") || !strings.Contains(out, "empty") {
		t.Errorf("legend broken:\n%s", out)
	}
}
