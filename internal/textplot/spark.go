package textplot

import (
	"math"
	"strings"
)

// sparkLevels are the eight block glyphs of a sparkline, lowest to highest.
var sparkLevels = []rune("▁▂▃▄▅▆▇█")

// Spark renders values as a one-line unicode sparkline scaled to the series'
// own [min, max] range, keeping the last width points when the series is
// longer (the natural view for a live dashboard feeding newest-last).
// Non-finite values render as a space. A flat series renders at the lowest
// level; an empty one returns "".
func Spark(values []float64, width int) string {
	if width <= 0 {
		width = 60
	}
	if len(values) > width {
		values = values[len(values)-width:]
	}
	if len(values) == 0 {
		return ""
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range values {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	if math.IsInf(lo, 1) { // nothing finite
		return strings.Repeat(" ", len(values))
	}
	var b strings.Builder
	for _, v := range values {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			b.WriteByte(' ')
			continue
		}
		level := 0
		if hi > lo {
			level = int((v - lo) / (hi - lo) * float64(len(sparkLevels)-1))
			if level < 0 {
				level = 0
			}
			if level >= len(sparkLevels) {
				level = len(sparkLevels) - 1
			}
		}
		b.WriteRune(sparkLevels[level])
	}
	return b.String()
}
