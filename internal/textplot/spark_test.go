package textplot

import (
	"math"
	"strings"
	"testing"
	"unicode/utf8"
)

func TestSpark(t *testing.T) {
	if got := Spark(nil, 10); got != "" {
		t.Errorf("empty series: %q, want \"\"", got)
	}
	// Monotone ramp touches both extremes, in order.
	got := Spark([]float64{0, 1, 2, 3, 4, 5, 6, 7}, 10)
	if got != "▁▂▃▄▅▆▇█" {
		t.Errorf("ramp = %q", got)
	}
	// Flat series renders at the lowest level, not blank.
	if got := Spark([]float64{5, 5, 5}, 10); got != "▁▁▁" {
		t.Errorf("flat = %q", got)
	}
	// Longer than width keeps the newest points.
	got = Spark([]float64{9, 9, 9, 0, 8}, 2)
	if utf8.RuneCountInString(got) != 2 {
		t.Fatalf("width clamp: %q has %d runes", got, utf8.RuneCountInString(got))
	}
	if []rune(got)[0] != '▁' || []rune(got)[1] != '█' {
		t.Errorf("tail window = %q, want low-high", got)
	}
	// Non-finite values render as spaces without poisoning the scale.
	got = Spark([]float64{1, math.NaN(), 2}, 10)
	if !strings.Contains(got, " ") || utf8.RuneCountInString(got) != 3 {
		t.Errorf("NaN handling: %q", got)
	}
	if got := Spark([]float64{math.NaN(), math.Inf(1)}, 10); got != "  " {
		t.Errorf("all non-finite: %q, want two spaces", got)
	}
}
