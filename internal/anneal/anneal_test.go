package anneal

import (
	"math/rand"
	"testing"

	"imtao/internal/core"
	"imtao/internal/geo"
	"imtao/internal/model"
	"imtao/internal/routing"
	"imtao/internal/workload"
)

func instance(t *testing.T, seed int64) *model.Instance {
	t.Helper()
	p := workload.Defaults(workload.SYN)
	p.NumTasks, p.NumWorkers, p.NumCenters = 120, 30, 6
	p.Seed = seed
	raw, err := workload.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	in, _, err := core.Partition(raw)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestOptimizeImprovesOverHomePlacement(t *testing.T) {
	in := instance(t, 1)
	base, err := core.Run(in, core.Config{Method: core.Method{Assigner: core.Seq, Collab: core.WoC}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Optimize(in, Config{Iterations: 1500, Rng: rand.New(rand.NewSource(2))})
	if err != nil {
		t.Fatal(err)
	}
	if res.Assigned < base.Assigned {
		t.Fatalf("annealing %d below the home placement %d", res.Assigned, base.Assigned)
	}
	if err := routing.SolutionFeasible(in, res.Solution); err != nil {
		t.Fatal(err)
	}
	if res.Evaluations <= 0 {
		t.Fatal("no evaluations recorded")
	}
}

func TestOptimizeBoundsIMTAOFromAbove(t *testing.T) {
	// The annealer's search space strictly contains IMTAO's reachable
	// states, so with enough iterations its best score should match or
	// exceed IMTAO's on the primary objective (up to search noise; we allow
	// a one-task slack and check across seeds in aggregate).
	var annealTotal, imtaoTotal int
	for seed := int64(1); seed <= 3; seed++ {
		in := instance(t, seed)
		imtao, err := core.Run(in, core.Config{Method: core.Method{Assigner: core.Seq, Collab: core.BDC}})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Optimize(in, Config{Iterations: 3000, Rng: rand.New(rand.NewSource(seed))})
		if err != nil {
			t.Fatal(err)
		}
		annealTotal += res.Assigned
		imtaoTotal += imtao.Assigned
	}
	if annealTotal < imtaoTotal-3 {
		t.Fatalf("annealing aggregate %d clearly below IMTAO %d", annealTotal, imtaoTotal)
	}
}

func TestOptimizeTransfersConsistent(t *testing.T) {
	in := instance(t, 4)
	res, err := Optimize(in, Config{Iterations: 800, Rng: rand.New(rand.NewSource(5))})
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range res.Solution.Transfers {
		if in.Worker(tr.Worker).Home != tr.Src {
			t.Fatalf("transfer source mismatch: %+v", tr)
		}
		if res.Placement[tr.Worker] != tr.Dst {
			t.Fatalf("placement/transfer mismatch: %+v", tr)
		}
	}
}

func TestOptimizeDefaultsAndDeterminism(t *testing.T) {
	in := instance(t, 6)
	a, err := Optimize(in, Config{Iterations: 500, Rng: rand.New(rand.NewSource(7))})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Optimize(in, Config{Iterations: 500, Rng: rand.New(rand.NewSource(7))})
	if err != nil {
		t.Fatal(err)
	}
	if a.Assigned != b.Assigned || a.Unfairness != b.Unfairness {
		t.Fatal("same seed must reproduce the run")
	}
}

func TestOptimizeEmptyCenters(t *testing.T) {
	in := &model.Instance{Speed: 1, Bounds: geo.NewRect(geo.Pt(0, 0), geo.Pt(1, 1))}
	if _, err := Optimize(in, Config{Rng: rand.New(rand.NewSource(1))}); err == nil {
		t.Fatal("no centers must error")
	}
}
