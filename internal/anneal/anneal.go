// Package anneal provides a global-search comparator for the CMCTA
// problem: simulated annealing over the assignment of workers to centers.
// IMTAO restricts itself to dispatching phase-1 surplus workers one at a
// time; the annealer may place ANY worker at ANY center and therefore
// explores a strict superset of IMTAO's reachable states. It is far more
// expensive and comes with no equilibrium semantics — its role is to
// estimate how much headroom the game-theoretic heuristic leaves on the
// table (EXPERIMENTS.md ablation, "upper bound" analysis).
package anneal

import (
	"math"
	"math/rand"

	"imtao/internal/assign"
	"imtao/internal/metrics"
	"imtao/internal/model"
)

// Config tunes the annealer.
type Config struct {
	// Iterations is the number of proposed moves; default 2000.
	Iterations int
	// InitialTemp and FinalTemp bound the geometric cooling schedule;
	// defaults 1.0 → 0.01.
	InitialTemp, FinalTemp float64
	// UnfairnessWeight trades the secondary objective against the primary:
	// score = assigned − UnfairnessWeight·U_ρ·|S|. Default 0.1·|S| scaling
	// keeps the primary objective dominant, matching the paper's
	// lexicographic intent.
	UnfairnessWeight float64
	// Rng drives proposals and acceptance; required.
	Rng *rand.Rand
	// Assigner evaluates a placement (default: assign.Sequential).
	Assigner func(in *model.Instance, c *model.Center, ws []model.WorkerID, ts []model.TaskID) assign.Result
}

// Result is the annealer's outcome.
type Result struct {
	Solution   *model.Solution
	Assigned   int
	Unfairness float64
	// Placement[w] is the center each worker serves in the best state.
	Placement []model.CenterID
	// Evaluations counts full platform re-assignments performed.
	Evaluations int
}

// Optimize runs simulated annealing over worker→center placements, starting
// from the home placement (every worker at its own center). Each move
// re-places one random worker at a random center and re-runs the per-center
// assigner for the affected centers only.
func Optimize(in *model.Instance, cfg Config) (*Result, error) {
	if cfg.Rng == nil {
		cfg.Rng = rand.New(rand.NewSource(1))
	}
	if cfg.Iterations <= 0 {
		cfg.Iterations = 2000
	}
	if cfg.InitialTemp <= 0 {
		cfg.InitialTemp = 1
	}
	if cfg.FinalTemp <= 0 || cfg.FinalTemp >= cfg.InitialTemp {
		cfg.FinalTemp = cfg.InitialTemp / 100
	}
	if cfg.Assigner == nil {
		cfg.Assigner = assign.Sequential
	}
	if cfg.UnfairnessWeight == 0 {
		cfg.UnfairnessWeight = 0.1
	}
	nC := len(in.Centers)
	if nC == 0 {
		return nil, model.ErrBadReference
	}

	// placement[w] = serving center.
	placement := make([]model.CenterID, len(in.Workers))
	for i, w := range in.Workers {
		placement[i] = w.Home
	}

	// Per-center cached evaluation.
	workersOf := func(pl []model.CenterID, c model.CenterID) []model.WorkerID {
		var out []model.WorkerID
		for wi, pc := range pl {
			if pc == c {
				out = append(out, model.WorkerID(wi))
			}
		}
		return out
	}
	evals := 0
	assignedOf := make([]int, nC)
	routesOf := make([][]model.Route, nC)
	evalCenter := func(pl []model.CenterID, ci model.CenterID) (int, []model.Route) {
		evals++
		c := in.Center(ci)
		res := cfg.Assigner(in, c, workersOf(pl, ci), c.Tasks)
		return res.AssignedCount(), res.Routes
	}
	for ci := 0; ci < nC; ci++ {
		assignedOf[ci], routesOf[ci] = evalCenter(placement, model.CenterID(ci))
	}

	score := func(assigned []int) float64 {
		total := 0
		rhos := make([]float64, nC)
		for ci := 0; ci < nC; ci++ {
			total += assigned[ci]
			rhos[ci] = metrics.Ratio(assigned[ci], len(in.Centers[ci].Tasks))
		}
		return float64(total) - cfg.UnfairnessWeight*metrics.Unfairness(rhos)*float64(len(in.Tasks))
	}

	cur := score(assignedOf)
	bestScore := cur
	bestPlacement := append([]model.CenterID(nil), placement...)
	bestAssigned := append([]int(nil), assignedOf...)
	bestRoutes := cloneRouteSets(routesOf)

	cooling := math.Pow(cfg.FinalTemp/cfg.InitialTemp, 1/float64(cfg.Iterations))
	temp := cfg.InitialTemp
	for it := 0; it < cfg.Iterations; it++ {
		w := cfg.Rng.Intn(len(placement))
		from := placement[w]
		to := model.CenterID(cfg.Rng.Intn(nC))
		if to == from {
			temp *= cooling
			continue
		}
		placement[w] = to
		newFromA, newFromR := evalCenter(placement, from)
		newToA, newToR := evalCenter(placement, to)
		oldFromA, oldToA := assignedOf[from], assignedOf[to]
		oldFromR, oldToR := routesOf[from], routesOf[to]
		assignedOf[from], assignedOf[to] = newFromA, newToA
		routesOf[from], routesOf[to] = newFromR, newToR
		next := score(assignedOf)
		accept := next >= cur || cfg.Rng.Float64() < math.Exp((next-cur)/math.Max(temp, 1e-12))
		if accept {
			cur = next
			if cur > bestScore {
				bestScore = cur
				copy(bestPlacement, placement)
				copy(bestAssigned, assignedOf)
				bestRoutes = cloneRouteSets(routesOf)
			}
		} else {
			placement[w] = from
			assignedOf[from], assignedOf[to] = oldFromA, oldToA
			routesOf[from], routesOf[to] = oldFromR, oldToR
		}
		temp *= cooling
	}

	sol := model.NewSolution(in)
	total := 0
	rhos := make([]float64, nC)
	for ci := 0; ci < nC; ci++ {
		sol.PerCenter[ci].Routes = bestRoutes[ci]
		total += bestAssigned[ci]
		rhos[ci] = metrics.Ratio(bestAssigned[ci], len(in.Centers[ci].Tasks))
	}
	for wi, pc := range bestPlacement {
		if home := in.Workers[wi].Home; pc != home {
			sol.Transfers = append(sol.Transfers, model.Transfer{
				Src: home, Dst: pc, Worker: model.WorkerID(wi),
			})
		}
	}
	return &Result{
		Solution:    sol,
		Assigned:    total,
		Unfairness:  metrics.Unfairness(rhos),
		Placement:   bestPlacement,
		Evaluations: evals,
	}, nil
}

func cloneRouteSets(sets [][]model.Route) [][]model.Route {
	out := make([][]model.Route, len(sets))
	for i, rs := range sets {
		out[i] = make([]model.Route, len(rs))
		for j, r := range rs {
			out[i][j] = model.Route{Worker: r.Worker, Center: r.Center, Tasks: append([]model.TaskID(nil), r.Tasks...)}
		}
	}
	return out
}
