package obs

import (
	"math"
	"runtime"
	"sync"
	"testing"
	"time"
)

// TestRuntimeSamplerSample checks one synchronous sample publishes sane
// vitals: a live process has goroutines, a heap goal, and a GOMAXPROCS.
func TestRuntimeSamplerSample(t *testing.T) {
	r := NewRegistry()
	s := NewRuntimeSampler(time.Hour, r, nil)
	v := s.Sample()
	if v.Goroutines < 1 {
		t.Errorf("Goroutines = %d, want ≥ 1", v.Goroutines)
	}
	if v.GoMaxProcs < 1 {
		t.Errorf("GoMaxProcs = %d, want ≥ 1", v.GoMaxProcs)
	}
	if v.HeapGoalBytes <= 0 {
		t.Errorf("HeapGoalBytes = %d, want > 0", v.HeapGoalBytes)
	}
	if v.MemTotalBytes <= 0 {
		t.Errorf("MemTotalBytes = %d, want > 0", v.MemTotalBytes)
	}
	if last, ok := s.Last(); !ok || last != v {
		t.Errorf("Last() = %+v, %v; want the vitals just sampled", last, ok)
	}
	if s.Samples() != 1 {
		t.Errorf("Samples = %d, want 1", s.Samples())
	}
	if cost := s.SampleCost(); cost.Count != 1 {
		t.Errorf("SampleCost count = %d, want 1", cost.Count)
	}
}

// captureObserver records events for assertions.
type captureObserver struct {
	mu     sync.Mutex
	names  []string
	fields [][]Field
}

func (c *captureObserver) Event(name string, fields ...Field) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.names = append(c.names, name)
	c.fields = append(c.fields, append([]Field(nil), fields...))
}

// TestRuntimeSamplerEmitsEvent: an enabled observer receives one
// "runtime_sample" event per sample with the headline vitals fields.
func TestRuntimeSamplerEmitsEvent(t *testing.T) {
	cap := &captureObserver{}
	s := NewRuntimeSampler(time.Hour, NewRegistry(), cap)
	s.Sample()
	if len(cap.names) != 1 || cap.names[0] != "runtime_sample" {
		t.Fatalf("observer saw %v, want one runtime_sample event", cap.names)
	}
	found := false
	for _, f := range cap.fields[0] {
		if f.Key == "goroutines" {
			found = true
		}
	}
	if !found {
		t.Errorf("runtime_sample event lacks goroutines field: %+v", cap.fields[0])
	}
}

// TestRuntimeSamplerStopIsClean pins the shutdown contract from three sides:
// the background goroutine exits (no leak), the sample counter freezes (no
// sample after Stop), and Stop is idempotent — all verified under -race by
// the race CI lane.
func TestRuntimeSamplerStopIsClean(t *testing.T) {
	before := runtime.NumGoroutine()

	s := NewRuntimeSampler(time.Millisecond, NewRegistry(), nil)
	s.Start()
	if !s.Running() {
		t.Fatal("Running() = false after Start")
	}
	s.Start() // second Start must be a no-op, not a second goroutine

	// Let the ticker fire at least once beyond the initial sample.
	deadline := time.Now().Add(2 * time.Second)
	for s.Samples() < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if s.Samples() < 2 {
		t.Fatalf("sampler took %d samples in 2s at 1ms interval", s.Samples())
	}

	s.Stop()
	if s.Running() {
		t.Error("Running() = true after Stop")
	}
	frozen := s.Samples()
	time.Sleep(20 * time.Millisecond)
	if got := s.Samples(); got != frozen {
		t.Errorf("sampler took %d samples after Stop", got-frozen)
	}
	s.Stop() // idempotent
	s.Stop() // and again, on an already-stopped sampler

	// Settle loop: GC/test goroutines need a moment to wind down; fail only
	// if the count stays elevated.
	for i := 0; i < 100; i++ {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines: %d before, %d after Stop settle — sampler leaked",
		before, runtime.NumGoroutine())
}

// TestRuntimeSamplerRestart: a stopped sampler can Start again.
func TestRuntimeSamplerRestart(t *testing.T) {
	s := NewRuntimeSampler(time.Hour, NewRegistry(), nil)
	s.Start()
	s.Stop()
	n := s.Samples()
	s.Start()
	defer s.Stop()
	if s.Samples() <= n {
		t.Errorf("restarted sampler took no immediate sample (%d ≤ %d)", s.Samples(), n)
	}
}

// TestRuntimeHistogramSubQuantile covers the windowed-delta helpers the
// bench uses to turn the runtime's cumulative GC-pause histogram into
// per-preset stats.
func TestRuntimeHistogramSubQuantile(t *testing.T) {
	prev := RuntimeHistogram{
		Buckets: []float64{math.Inf(-1), 1, 2, 4, math.Inf(1)},
		Counts:  []uint64{1, 2, 3, 0},
	}
	cur := RuntimeHistogram{
		Buckets: prev.Buckets,
		Counts:  []uint64{1, 6, 3, 2},
	}
	d := cur.Sub(prev)
	if got := d.Count(); got != 6 {
		t.Fatalf("delta Count = %d, want 6", got)
	}
	// Delta counts: [0, 4, 0, 2] → ranks 1-4 in (1,2], ranks 5-6 in (4,+Inf).
	if got := d.Quantile(0.5); got != 1.5 {
		t.Errorf("delta p50 = %g, want 1.5 (mid of (1,2])", got)
	}
	if got := d.Quantile(0.99); got != 4 {
		t.Errorf("delta p99 = %g, want 4 (finite edge of +Inf bucket)", got)
	}
	// -Inf-bottomed bucket reports its finite upper edge.
	lowOnly := RuntimeHistogram{Buckets: prev.Buckets, Counts: []uint64{3, 0, 0, 0}}
	if got := lowOnly.Quantile(0.5); got != 1 {
		t.Errorf("p50 of -Inf bucket = %g, want finite edge 1", got)
	}
	// Shape mismatch returns the current histogram unchanged.
	if got := cur.Sub(RuntimeHistogram{}); got.Count() != cur.Count() {
		t.Errorf("Sub with empty prev mutated the histogram")
	}
	if (RuntimeHistogram{}).Count() != 0 || (RuntimeHistogram{}).Quantile(0.5) != 0 {
		t.Error("empty histogram should count 0 and report quantile 0")
	}
}

// TestReadRuntimeHistogram: the GC-pause metric must be readable as a
// histogram on this toolchain (the bench depends on it).
func TestReadRuntimeHistogram(t *testing.T) {
	h, ok := ReadRuntimeHistogram("/sched/pauses/total/gc:seconds")
	if !ok {
		t.Fatal("GC pause histogram unavailable")
	}
	if len(h.Buckets) != len(h.Counts)+1 {
		t.Fatalf("bucket/count shape: %d boundaries, %d counts",
			len(h.Buckets), len(h.Counts))
	}
	if _, ok := ReadRuntimeHistogram("/sched/goroutines:goroutines"); ok {
		t.Error("non-histogram metric should report ok=false")
	}
}
