package obs

import (
	"math"
	"sync/atomic"
	"time"
)

// Quantile is a lock-free log-bucketed latency recorder with bounded
// relative error — the HDR-histogram idea specialised to float64 seconds.
//
// Samples land in logarithmic buckets derived directly from the float's bit
// pattern: 2^quantSubBits sub-buckets per power of two, so every recorded
// value is reconstructed to within ±1/2^(quantSubBits+1) relative error
// (~1.6% at the default 32 sub-buckets per octave). That is exact enough to
// report p50/p90/p99/p999 honestly while keeping Observe to a handful of
// atomic adds: no locks, no allocation, no clock reads — safe for the
// zero-allocation steady-state paths of the game engine (the AllocsPerRun
// gates in collab cover an Observe per iteration).
//
// Unlike the fixed-bucket Histogram (whose resolution collapses to "somewhere
// between 3ms and 10ms" at the decade boundaries), a Quantile answers "what
// is p999" directly, which is what the perf gate and imtao-top need.
//
// The zero value is NOT ready to use; construct with NewQuantile or
// Registry.Quantile (min/max tracking needs a sentinel).
type Quantile struct {
	count    atomic.Int64
	sumBits  atomic.Uint64
	minBits  atomic.Uint64 // Float64bits of the smallest sample (init +Inf)
	maxBits  atomic.Uint64 // Float64bits of the largest sample (init 0)
	rejected atomic.Int64  // non-finite samples dropped by Observe
	counts   [quantBuckets]atomic.Int64
}

const (
	// quantSubBits sub-divides every power of two into 2^quantSubBits
	// geometric sub-buckets: 5 → 32 sub-buckets, ≤ ~1.6% mid-point error.
	quantSubBits  = 5
	quantSubCount = 1 << quantSubBits
	// quantMinExp is the lowest covered octave, [2^-30, 2^-29) s ≈ 1ns —
	// below any latency the pipeline can measure; smaller samples (and
	// zero) clamp into bucket 0.
	quantMinExp = -30
	// quantOctaves octaves span up to 2^34 s ≈ 540 years; larger samples
	// clamp into the top bucket.
	quantOctaves = 64
	quantBuckets = quantOctaves * quantSubCount
)

// NewQuantile returns an empty recorder.
func NewQuantile() *Quantile {
	q := &Quantile{}
	q.minBits.Store(math.Float64bits(math.Inf(1)))
	return q
}

// quantIndex maps a positive finite sample to its bucket. The float's bit
// pattern already is (exponent, mantissa) in lexicographic order, so the
// bucket is the exponent octave plus the mantissa's top quantSubBits bits —
// no Log call, no branch beyond the range clamps.
func quantIndex(v float64) int {
	bits := math.Float64bits(v)
	e := int(bits>>52) - 1023 // subnormals give -1023 and clamp below
	if e < quantMinExp {
		return 0
	}
	if e >= quantMinExp+quantOctaves {
		return quantBuckets - 1
	}
	sub := int(bits>>(52-quantSubBits)) & (quantSubCount - 1)
	return (e-quantMinExp)<<quantSubBits + sub
}

// quantValue is the representative (mid-point) value of a bucket — the
// reconstruction every quantile read reports.
func quantValue(idx int) float64 {
	e := quantMinExp + idx>>quantSubBits
	sub := idx & (quantSubCount - 1)
	return math.Ldexp(1+(float64(sub)+0.5)/quantSubCount, e)
}

// Observe records one sample, in seconds. Non-finite samples (NaN, ±Inf) are
// rejected — counted in Rejected, never in the distribution — and negative
// or zero samples clamp into the smallest bucket: a torn clock can produce
// them, and dropping latency samples would silently bias the quantiles low.
// Observe is lock-free and allocation-free.
func (q *Quantile) Observe(v float64) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		q.rejected.Add(1)
		return
	}
	if v <= 0 {
		v = 0 // clamps to bucket 0; recorded in sum as 0
	}
	q.counts[quantIndex(v)].Add(1)
	q.count.Add(1)
	for {
		old := q.sumBits.Load()
		if q.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			break
		}
	}
	for {
		old := q.minBits.Load()
		if v >= math.Float64frombits(old) || q.minBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
	for {
		old := q.maxBits.Load()
		if v <= math.Float64frombits(old) || q.maxBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
}

// ObserveDuration records d as seconds.
func (q *Quantile) ObserveDuration(d time.Duration) { q.Observe(d.Seconds()) }

// Count returns the number of recorded samples.
func (q *Quantile) Count() int64 { return q.count.Load() }

// Sum returns the sum of recorded samples in seconds.
func (q *Quantile) Sum() float64 { return math.Float64frombits(q.sumBits.Load()) }

// Rejected returns the number of non-finite samples dropped by Observe.
func (q *Quantile) Rejected() int64 { return q.rejected.Load() }

// Max returns the exact largest recorded sample (0 with no samples).
func (q *Quantile) Max() float64 { return math.Float64frombits(q.maxBits.Load()) }

// Min returns the exact smallest recorded sample (+Inf with no samples).
func (q *Quantile) Min() float64 { return math.Float64frombits(q.minBits.Load()) }

// QuantileSnapshot is a point-in-time copy of a recorder, safe to read while
// Observe keeps running on the live instance.
type QuantileSnapshot struct {
	Count    int64
	Sum      float64
	Min, Max float64 // exact extremes; Min == +Inf, Max == 0 when empty
	Rejected int64
	counts   []int64
}

// Snapshot copies the recorder's state. The bucket copy is internally
// consistent for rank arithmetic (Count is re-derived from the copied
// buckets, so a mid-copy Observe cannot push a rank past the data).
func (q *Quantile) Snapshot() QuantileSnapshot {
	s := QuantileSnapshot{
		Sum:      q.Sum(),
		Min:      q.Min(),
		Max:      q.Max(),
		Rejected: q.Rejected(),
		counts:   make([]int64, quantBuckets),
	}
	var total int64
	for i := range q.counts {
		c := q.counts[i].Load()
		s.counts[i] = c
		total += c
	}
	s.Count = total
	return s
}

// Quantile returns the q-quantile (0 ≤ p ≤ 1) of the snapshot by the
// nearest-rank method over the log buckets: the value reported is the
// mid-point of the bucket holding rank ⌈p·n⌉, so it is within the recorder's
// relative-error bound of the exact order statistic. Empty snapshots return
// 0. p == 0 returns the exact minimum and p == 1 the exact maximum.
func (s QuantileSnapshot) Quantile(p float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if p <= 0 {
		return s.Min
	}
	if p >= 1 {
		return s.Max
	}
	rank := int64(math.Ceil(p * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, c := range s.counts {
		cum += c
		if cum >= rank {
			return quantValue(i)
		}
	}
	return s.Max
}

// Quantile reads one quantile from the live recorder (snapshot + read).
// Prefer Snapshot when reading several.
func (q *Quantile) Quantile(p float64) float64 { return q.Snapshot().Quantile(p) }

// summaryQuantiles are the quantile labels exported for every registered
// Quantile, in Prometheus summary exposition order.
var summaryQuantiles = []float64{0.5, 0.9, 0.99, 0.999}
