package obs

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestTracerSpanTree(t *testing.T) {
	tr := NewTracer(0)
	run := tr.Start(0, "run", F("method", "Seq-BDC"))
	p1 := tr.Start(run.ID(), "phase1")
	c0 := tr.Start(p1.ID(), "phase1_center", F("center", 0))
	c0.End(F("assigned", 7))
	p1.End()
	p2 := tr.Start(run.ID(), "phase2")
	it := tr.Start(p2.ID(), "game_iter", F("iter", 1))
	trial := tr.Start(it.ID(), "trial", F("worker", 3))
	trial.End(F("outcome", "resumed"))
	it.End(F("accepted", true))
	p2.End()
	run.End()

	spans := tr.Spans()
	if len(spans) != 6 {
		t.Fatalf("got %d spans, want 6", len(spans))
	}
	byID := make(map[SpanID]SpanInfo)
	for _, s := range spans {
		byID[s.ID] = s
	}
	// Walk trial → game_iter → phase2 → run → root.
	var names []string
	cur := trial.ID()
	for cur != 0 {
		s, ok := byID[cur]
		if !ok {
			t.Fatalf("broken parent chain at span %d", cur)
		}
		names = append(names, s.Name)
		cur = s.Parent
	}
	want := []string{"trial", "game_iter", "phase2", "run"}
	if len(names) != len(want) {
		t.Fatalf("chain %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("chain %v, want %v", names, want)
		}
	}
	// Merged args from Start and End.
	ts := byID[trial.ID()]
	if len(ts.Args) != 2 || ts.Args[0].Key != "worker" || ts.Args[1].Key != "outcome" {
		t.Errorf("trial args not merged: %+v", ts.Args)
	}
}

func TestTracerNilIsInertAndAllocationFree(t *testing.T) {
	var tr *Tracer
	s := tr.Start(0, "x")
	if s.ID() != 0 {
		t.Error("nil tracer span must have ID 0")
	}
	s.End()
	if tr.Len() != 0 || tr.Dropped() != 0 || tr.Spans() != nil {
		t.Error("nil tracer must report empty")
	}
	allocs := testing.AllocsPerRun(1000, func() {
		sp := tr.Start(0, "phase1_center")
		sp.End()
	})
	if allocs != 0 {
		t.Errorf("nil-tracer span path allocates %.1f/op, want 0", allocs)
	}
}

func TestTracerBounded(t *testing.T) {
	tr := NewTracer(3)
	for i := 0; i < 5; i++ {
		tr.Start(0, "s").End()
	}
	if tr.Len() != 3 {
		t.Errorf("Len = %d, want 3", tr.Len())
	}
	if tr.Dropped() != 2 {
		t.Errorf("Dropped = %d, want 2", tr.Dropped())
	}
}

func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(0)
	root := tr.Start(0, "run")
	const goroutines, per = 8, 200
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func() {
			defer wg.Done()
			for k := 0; k < per; k++ {
				s := tr.Start(root.ID(), "trial", F("k", k))
				s.End()
			}
		}()
	}
	wg.Wait()
	root.End()

	spans := tr.Spans()
	if len(spans) != goroutines*per+1 {
		t.Fatalf("got %d spans, want %d", len(spans), goroutines*per+1)
	}
	seen := make(map[SpanID]bool, len(spans))
	for _, s := range spans {
		if seen[s.ID] {
			t.Fatalf("duplicate span ID %d", s.ID)
		}
		seen[s.ID] = true
		if s.Name == "trial" && s.Parent != root.ID() {
			t.Fatalf("trial parented to %d, want %d", s.Parent, root.ID())
		}
	}
}

// chromeEvent is the subset of the trace-event schema the exporter emits.
type chromeEvent struct {
	Ph   string         `json:"ph"`
	Name string         `json:"name"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Args map[string]any `json:"args"`
}

func TestWriteChromeTrace(t *testing.T) {
	tr := NewTracer(0)
	run := tr.Start(0, "run")
	// Two overlapping children forked from the root, as phase-1 center
	// workers produce, plus a nested grandchild.
	a := tr.Start(run.ID(), "phase1_center", F("center", 0))
	b := tr.Start(run.ID(), "phase1_center", F("center", 1))
	g := tr.Start(a.ID(), "trial")
	time.Sleep(time.Millisecond)
	g.End()
	a.End()
	b.End()
	run.End()

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string         `json:"displayTimeUnit"`
		TraceEvents     []chromeEvent  `json:"traceEvents"`
		Metadata        map[string]any `json:"metadata"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("exporter emitted invalid JSON: %v\n%s", err, buf.String())
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit %q", doc.DisplayTimeUnit)
	}
	if doc.Metadata["dropped_spans"] != float64(0) {
		t.Errorf("dropped_spans = %v", doc.Metadata["dropped_spans"])
	}

	var events []chromeEvent
	for _, e := range doc.TraceEvents {
		if e.Ph == "X" {
			events = append(events, e)
		}
	}
	if len(events) != 4 {
		t.Fatalf("%d X events, want 4", len(events))
	}
	// Every event carries the span tree in args.
	byID := make(map[float64]chromeEvent)
	for _, e := range events {
		id, ok := e.Args["span_id"].(float64)
		if !ok {
			t.Fatalf("event %q lacks span_id args: %v", e.Name, e.Args)
		}
		byID[id] = e
	}
	for _, e := range events {
		if e.Name == "run" {
			continue
		}
		parent := e.Args["parent_id"].(float64)
		if _, ok := byID[parent]; !ok {
			t.Errorf("event %q parent %v not exported", e.Name, parent)
		}
	}
	// No two events on one tid may partially overlap — Chrome nests by
	// containment, so a partial overlap renders garbage.
	for i, e1 := range events {
		for _, e2 := range events[i+1:] {
			if e1.Tid != e2.Tid {
				continue
			}
			s1, e1e := e1.Ts, e1.Ts+e1.Dur
			s2, e2e := e2.Ts, e2.Ts+e2.Dur
			overlap := s1 < e2e && s2 < e1e
			contained := (s1 <= s2 && e2e <= e1e) || (s2 <= s1 && e1e <= e2e)
			if overlap && !contained {
				t.Errorf("partial overlap on tid %d: %q [%v,%v) vs %q [%v,%v)",
					e1.Tid, e1.Name, s1, e1e, e2.Name, s2, e2e)
			}
		}
	}
}
