package obs

import (
	"bytes"
	"encoding/json"
	"io"
	"strconv"
	"sync"
	"time"
)

// JSONL is an Observer that serializes every event as one JSON object per
// line, preserving field order:
//
//	{"seq":3,"t_ms":0.412,"schema_version":2,"event":"game_iter","iter":1,...}
//
// seq is a per-stream sequence number, t_ms the elapsed milliseconds since
// the stream was created, schema_version the record-schema version readers
// validate with CheckSchemaVersion. Writes are serialized by a mutex, so one JSONL may
// receive events from many goroutines; the first write error is latched and
// reported by Err.
type JSONL struct {
	mu    sync.Mutex
	w     io.Writer
	buf   bytes.Buffer
	seq   int64
	start time.Time
	clock func() time.Time
	err   error
}

// NewJSONL builds a JSONL observer writing to w.
func NewJSONL(w io.Writer) *JSONL {
	j := &JSONL{w: w, clock: time.Now}
	j.start = j.clock()
	return j
}

// SetClock replaces the time source — a test hook that makes the t_ms field
// deterministic for golden output.
func (j *JSONL) SetClock(fn func() time.Time) {
	j.mu.Lock()
	j.clock = fn
	j.start = fn()
	j.mu.Unlock()
}

// Event implements Observer.
func (j *JSONL) Event(name string, fields ...Field) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return
	}
	j.seq++
	j.buf.Reset()
	j.buf.WriteString(`{"seq":`)
	j.buf.WriteString(strconv.FormatInt(j.seq, 10))
	j.buf.WriteString(`,"t_ms":`)
	ms := float64(j.clock().Sub(j.start).Nanoseconds()) / 1e6
	j.buf.WriteString(strconv.FormatFloat(ms, 'f', 3, 64))
	j.buf.WriteString(`,"schema_version":`)
	j.buf.WriteString(strconv.Itoa(SchemaVersion))
	j.buf.WriteString(`,"event":`)
	appendJSONValue(&j.buf, name)
	appendFields(&j.buf, fields)
	j.buf.WriteString("}\n")
	if _, err := j.w.Write(j.buf.Bytes()); err != nil {
		j.err = err
	}
}

// appendFields renders `,"key":value` for every field — the shared event
// body encoding of the JSONL observer and the flight recorder.
func appendFields(buf *bytes.Buffer, fields []Field) {
	for _, f := range fields {
		buf.WriteByte(',')
		appendJSONValue(buf, f.Key)
		buf.WriteByte(':')
		appendJSONValue(buf, f.Value)
	}
}

// appendJSONValue marshals v into buf, substituting an error string for
// unmarshalable values so one bad field cannot corrupt the stream.
func appendJSONValue(buf *bytes.Buffer, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		b, _ = json.Marshal("!marshal: " + err.Error())
	}
	buf.Write(b)
}

// Err returns the first write error encountered, if any. Events after an
// error are dropped.
func (j *JSONL) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}
