package obs

import (
	"bytes"
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// SpanID identifies one span inside a Tracer. IDs are allocated from 1;
// zero is the root sentinel (a span whose parent is 0 is a trace root).
type SpanID uint64

// SpanInfo is one completed span of a trace: a named, timed region with a
// parent link. The span tree of a pipeline run nests
// run → phase1 → phase1_center and run → phase2 → game_iter → trial, with
// dijkstra spans (oracle table misses) attaching under the run.
type SpanInfo struct {
	ID     SpanID
	Parent SpanID
	Name   string
	Start  time.Time
	Dur    time.Duration
	Args   []Field
}

// Tracer records hierarchical spans into a bounded in-memory trace. It is
// safe for concurrent use: phase-1 center workers and phase-2 trial runners
// start and end spans from their own goroutines; ID allocation is one atomic
// add and completion is a short mutex-guarded append.
//
// A nil *Tracer is the disabled tracer: Start returns the inert zero
// TraceSpan without reading the clock or allocating, so untraced runs pay
// nothing. Instrumentation sites gate their Field construction on tr != nil.
//
// When the trace fills up (maxSpans completed spans), further spans are
// counted in Dropped and discarded — the trace keeps the run's prefix, which
// is what a timeline viewer needs, rather than growing without bound on a
// 100k-task run with hundreds of thousands of trials.
type Tracer struct {
	cap     int
	start   time.Time
	nextID  atomic.Uint64
	dropped atomic.Int64

	mu    sync.Mutex
	spans []SpanInfo
}

// DefaultTraceSpans is the default completed-span capacity of NewTracer —
// enough for every iteration and trial of a mid-scale run while bounding a
// 100k-task trace to tens of megabytes.
const DefaultTraceSpans = 1 << 18

// NewTracer returns a tracer bounded to maxSpans completed spans
// (DefaultTraceSpans when maxSpans <= 0).
func NewTracer(maxSpans int) *Tracer {
	if maxSpans <= 0 {
		maxSpans = DefaultTraceSpans
	}
	return &Tracer{cap: maxSpans, start: time.Now()}
}

// TraceSpan is an open span handle. The zero TraceSpan (from a nil Tracer)
// is inert: ID returns 0 and End does nothing.
type TraceSpan struct {
	tr     *Tracer
	id     SpanID
	parent SpanID
	name   string
	start  time.Time
	args   []Field
}

// Start opens a span under parent (0 = trace root) and returns its handle.
// On a nil tracer it returns the inert zero TraceSpan.
func (t *Tracer) Start(parent SpanID, name string, args ...Field) TraceSpan {
	if t == nil {
		return TraceSpan{}
	}
	return TraceSpan{
		tr:     t,
		id:     SpanID(t.nextID.Add(1)),
		parent: parent,
		name:   name,
		start:  time.Now(),
		args:   args,
	}
}

// ID returns the span's ID — the parent link for child spans. Zero for the
// inert span.
func (s TraceSpan) ID() SpanID { return s.id }

// End completes the span, merging args given at Start and End and recording
// it into the tracer.
func (s TraceSpan) End(args ...Field) {
	if s.tr == nil {
		return
	}
	dur := time.Since(s.start)
	all := s.args
	if len(args) > 0 {
		all = make([]Field, 0, len(s.args)+len(args))
		all = append(all, s.args...)
		all = append(all, args...)
	}
	s.tr.record(SpanInfo{ID: s.id, Parent: s.parent, Name: s.name, Start: s.start, Dur: dur, Args: all})
}

func (t *Tracer) record(sp SpanInfo) {
	t.mu.Lock()
	if len(t.spans) >= t.cap {
		t.mu.Unlock()
		t.dropped.Add(1)
		return
	}
	t.spans = append(t.spans, sp)
	t.mu.Unlock()
}

// Len returns the number of completed spans recorded so far.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// Dropped returns the number of spans discarded after the trace filled.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	return t.dropped.Load()
}

// Spans returns a copy of the completed spans in completion order.
func (t *Tracer) Spans() []SpanInfo {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]SpanInfo(nil), t.spans...)
}

// WriteChromeTrace writes the trace in Chrome trace-event JSON (the format
// ui.perfetto.dev and chrome://tracing open): one complete ("X") event per
// span with microsecond timestamps relative to the tracer's start.
//
// Chrome nests events on the same tid by time containment, so spans are laid
// out onto synthetic tracks: a span lands on its parent's track when the
// parent still encloses it, otherwise on the first track where it does not
// partially overlap an open span (concurrent siblings — phase-1 centers,
// parallel trials — fan out onto their own tracks). Every event additionally
// carries span_id and parent_id args, so the exact span tree survives the
// export independent of track layout.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	spans := t.Spans()
	// Parents sort before their children: by start time, longest first on
	// ties (a parent starts no later and ends no earlier than its child).
	sort.Slice(spans, func(i, j int) bool {
		if !spans[i].Start.Equal(spans[j].Start) {
			return spans[i].Start.Before(spans[j].Start)
		}
		if spans[i].Dur != spans[j].Dur {
			return spans[i].Dur > spans[j].Dur
		}
		return spans[i].ID < spans[j].ID
	})

	type open struct{ startNS, endNS int64 }
	var lanes [][]open // per-lane stack of open (containing) spans
	laneOf := make(map[SpanID]int, len(spans))
	lane := make([]int, len(spans))
	for i := range spans {
		s := &spans[i]
		startNS := s.Start.Sub(t.start).Nanoseconds()
		endNS := startNS + s.Dur.Nanoseconds()
		fits := func(li int) bool {
			st := lanes[li]
			for len(st) > 0 && st[len(st)-1].endNS <= startNS {
				st = st[:len(st)-1]
			}
			lanes[li] = st
			return len(st) == 0 ||
				(st[len(st)-1].startNS <= startNS && st[len(st)-1].endNS >= endNS)
		}
		chosen := -1
		if pl, ok := laneOf[s.Parent]; ok && fits(pl) {
			chosen = pl
		} else {
			for li := range lanes {
				if fits(li) {
					chosen = li
					break
				}
			}
			if chosen < 0 {
				lanes = append(lanes, nil)
				chosen = len(lanes) - 1
			}
		}
		lanes[chosen] = append(lanes[chosen], open{startNS, endNS})
		laneOf[s.ID] = chosen
		lane[i] = chosen
	}

	var buf bytes.Buffer
	buf.WriteString(`{"displayTimeUnit":"ms","traceEvents":[`)
	buf.WriteString(`{"ph":"M","pid":1,"tid":0,"name":"process_name","args":{"name":"imtao"}}`)
	for li := range lanes {
		buf.WriteString(`,{"ph":"M","pid":1,"tid":`)
		buf.WriteString(strconv.Itoa(li))
		buf.WriteString(`,"name":"thread_name","args":{"name":"track `)
		buf.WriteString(strconv.Itoa(li))
		buf.WriteString(`"}}`)
	}
	for i := range spans {
		s := &spans[i]
		buf.WriteString(`,{"ph":"X","pid":1,"cat":"imtao","tid":`)
		buf.WriteString(strconv.Itoa(lane[i]))
		buf.WriteString(`,"name":`)
		appendJSONValue(&buf, s.Name)
		buf.WriteString(`,"ts":`)
		buf.WriteString(strconv.FormatFloat(float64(s.Start.Sub(t.start).Nanoseconds())/1e3, 'f', 3, 64))
		buf.WriteString(`,"dur":`)
		buf.WriteString(strconv.FormatFloat(float64(s.Dur.Nanoseconds())/1e3, 'f', 3, 64))
		buf.WriteString(`,"args":{"span_id":`)
		buf.WriteString(strconv.FormatUint(uint64(s.ID), 10))
		buf.WriteString(`,"parent_id":`)
		buf.WriteString(strconv.FormatUint(uint64(s.Parent), 10))
		for _, f := range s.Args {
			buf.WriteByte(',')
			appendJSONValue(&buf, f.Key)
			buf.WriteByte(':')
			appendJSONValue(&buf, f.Value)
		}
		buf.WriteString(`}}`)
		if buf.Len() >= 1<<16 {
			if _, err := w.Write(buf.Bytes()); err != nil {
				return err
			}
			buf.Reset()
		}
	}
	buf.WriteString(`],"metadata":{"dropped_spans":`)
	buf.WriteString(strconv.FormatInt(t.Dropped(), 10))
	buf.WriteString("}}\n")
	_, err := w.Write(buf.Bytes())
	return err
}
