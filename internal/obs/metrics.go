package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. All methods are safe for
// concurrent use and lock-free.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n. n must be ≥ 0: counters are monotone, and a silent negative
// add would corrupt every rate() computed from the series downstream — so
// the contract is enforced with a panic, mirroring prometheus/client_golang.
func (c *Counter) Add(n int64) {
	if n < 0 {
		panic("obs: Counter.Add called with a negative delta; counters are monotone (use a Gauge)")
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down, stored as float64 bits.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds d to the gauge (CAS loop; safe for concurrent use).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket distribution with a running sum and count,
// exported in Prometheus histogram exposition (cumulative le buckets).
//
// Observe runs under a shared (read) lock so concurrent observers never
// serialize on each other — the per-bucket counters stay atomic — while the
// exporter takes the write lock for its snapshot. That snapshot is therefore
// consistent: the cumulative +Inf bucket always equals _count and _sum has
// no torn half-observation, which independent atomic loads could not
// guarantee while Observe runs concurrently.
type Histogram struct {
	mu      sync.RWMutex
	bounds  []float64 // ascending upper bounds; an implicit +Inf follows
	counts  []atomic.Int64
	sumBits atomic.Uint64
	count   atomic.Int64
}

// TimeBuckets is the default latency bucket layout in seconds: 1µs … 10s,
// decade steps with a 1-3 split — wide enough for both lock waits and whole
// pipeline phases.
var TimeBuckets = []float64{
	1e-6, 3e-6, 1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 0.1, 0.3, 1, 3, 10,
}

// Observe records one sample. Non-finite samples are rejected: NaN compares
// false against every bound, so sort.SearchFloat64s would land it in the
// +Inf bucket while poisoning _sum forever (NaN + x = NaN) — one bad sample
// would corrupt every scrape after it.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return
	}
	h.mu.RLock()
	i := sort.SearchFloat64s(h.bounds, v) // first bound ≥ v, len(bounds) = +Inf
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			break
		}
	}
	h.mu.RUnlock()
}

// snapshot returns a mutually consistent (buckets, sum, count) triple by
// excluding in-flight Observes for the duration of the reads.
func (h *Histogram) snapshot() (counts []int64, sum float64, count int64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	counts = make([]int64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	return counts, math.Float64frombits(h.sumBits.Load()), h.count.Load()
}

// Count returns the total number of samples observed. As a point read it
// may be mid-update relative to Sum; Registry.WriteTo snapshots instead.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed samples (point read, see Count).
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
	kindInfo
	kindQuantile
)

type metric struct {
	name, help string
	kind       metricKind
	counter    *Counter
	gauge      *Gauge
	hist       *Histogram
	quant      *Quantile
	labels     string // pre-rendered {k="v",...} for info metrics
}

// Registry is an ordered collection of named metrics with a Prometheus
// text-format exporter. Registration is idempotent by name: asking twice for
// the same counter returns the same instance, so package-level vars and
// repeated calls cannot double-register.
type Registry struct {
	mu      sync.Mutex
	metrics []*metric
	byName  map[string]*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*metric)}
}

// Default is the process-wide registry every instrumented package registers
// on, mirroring the promauto idiom. The /metrics endpoint of cmd/imtao-sim
// and the -metrics-out flag of cmd/imtao-bench snapshot it.
var Default = NewRegistry()

func (r *Registry) lookup(name, help string, kind metricKind) *metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byName[name]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("obs: metric %q re-registered with a different kind", name))
		}
		return m
	}
	m := &metric{name: name, help: help, kind: kind}
	r.metrics = append(r.metrics, m)
	r.byName[name] = m
	return m
}

// Counter returns the counter registered under name, creating it if needed.
func (r *Registry) Counter(name, help string) *Counter {
	m := r.lookup(name, help, kindCounter)
	if m.counter == nil {
		m.counter = &Counter{}
	}
	return m.counter
}

// Gauge returns the gauge registered under name, creating it if needed.
func (r *Registry) Gauge(name, help string) *Gauge {
	m := r.lookup(name, help, kindGauge)
	if m.gauge == nil {
		m.gauge = &Gauge{}
	}
	return m.gauge
}

// Histogram returns the histogram registered under name, creating it with
// the given ascending upper bucket bounds if needed (a +Inf bucket is
// implicit). The bounds of an existing histogram are kept.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	m := r.lookup(name, help, kindHistogram)
	if m.hist == nil {
		b := append([]float64(nil), bounds...)
		sort.Float64s(b)
		m.hist = &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
	}
	return m.hist
}

// Quantile returns the quantile recorder registered under name, creating it
// if needed. It is exported as a Prometheus summary: one line per quantile in
// summaryQuantiles plus _sum and _count.
func (r *Registry) Quantile(name, help string) *Quantile {
	m := r.lookup(name, help, kindQuantile)
	if m.quant == nil {
		m.quant = NewQuantile()
	}
	return m.quant
}

// Info registers (or updates) a constant info metric: a gauge fixed at 1
// whose labels carry the payload, e.g.
//
//	imtao_env_info{go_version="go1.24.0",gomaxprocs="8"} 1
//
// Labels are rendered sorted by key for deterministic output.
func (r *Registry) Info(name, help string, labels map[string]string) {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := "{"
	for i, k := range keys {
		if i > 0 {
			out += ","
		}
		out += k + "=" + strconv.Quote(labels[k])
	}
	out += "}"
	m := r.lookup(name, help, kindInfo)
	r.mu.Lock()
	m.labels = out
	r.mu.Unlock()
}

// WriteTo writes a Prometheus text-format (version 0.0.4) snapshot of every
// registered metric, in registration order.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	r.mu.Lock()
	metrics := append([]*metric(nil), r.metrics...)
	r.mu.Unlock()

	cw := &countWriter{w: w}
	for _, m := range metrics {
		var err error
		switch m.kind {
		case kindCounter:
			_, err = fmt.Fprintf(cw, "# HELP %s %s\n# TYPE %s counter\n%s %d\n",
				m.name, m.help, m.name, m.name, m.counter.Value())
		case kindGauge:
			_, err = fmt.Fprintf(cw, "# HELP %s %s\n# TYPE %s gauge\n%s %s\n",
				m.name, m.help, m.name, m.name, formatFloat(m.gauge.Value()))
		case kindInfo:
			r.mu.Lock()
			labels := m.labels
			r.mu.Unlock()
			_, err = fmt.Fprintf(cw, "# HELP %s %s\n# TYPE %s gauge\n%s%s 1\n",
				m.name, m.help, m.name, m.name, labels)
		case kindQuantile:
			q := m.quant
			if _, err = fmt.Fprintf(cw, "# HELP %s %s\n# TYPE %s summary\n",
				m.name, m.help, m.name); err != nil {
				break
			}
			snap := q.Snapshot()
			for _, p := range summaryQuantiles {
				v := math.NaN() // the Prometheus "no samples yet" convention
				if snap.Count > 0 {
					v = snap.Quantile(p)
				}
				if _, err = fmt.Fprintf(cw, "%s{quantile=%q} %s\n",
					m.name, formatFloat(p), formatFloat(v)); err != nil {
					break
				}
			}
			if err != nil {
				break
			}
			_, err = fmt.Fprintf(cw, "%s_sum %s\n%s_count %d\n",
				m.name, formatFloat(snap.Sum), m.name, snap.Count)
		case kindHistogram:
			h := m.hist
			if _, err = fmt.Fprintf(cw, "# HELP %s %s\n# TYPE %s histogram\n",
				m.name, m.help, m.name); err != nil {
				break
			}
			counts, sum, count := h.snapshot()
			var cum int64
			for i, b := range h.bounds {
				cum += counts[i]
				if _, err = fmt.Fprintf(cw, "%s_bucket{le=%q} %d\n",
					m.name, formatFloat(b), cum); err != nil {
					break
				}
			}
			if err != nil {
				break
			}
			cum += counts[len(h.bounds)]
			_, err = fmt.Fprintf(cw, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %s\n%s_count %d\n",
				m.name, cum, m.name, formatFloat(sum), m.name, count)
		}
		if err != nil {
			return cw.n, err
		}
	}
	return cw.n, nil
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
