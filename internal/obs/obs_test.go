package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestCountersConcurrent hammers every metric type from many goroutines;
// run with -race this doubles as the data-race check.
func TestCountersConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "counter")
	g := r.Gauge("g", "gauge")
	h := r.Histogram("h_seconds", "histogram", []float64{1, 10, 100})

	const goroutines, per = 8, 1000
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for i := 0; i < goroutines; i++ {
		go func() {
			defer wg.Done()
			for k := 0; k < per; k++ {
				c.Inc()
				c.Add(2)
				g.Add(0.5)
				h.Observe(float64(k % 200))
			}
		}()
	}
	wg.Wait()

	if got, want := c.Value(), int64(goroutines*per*3); got != want {
		t.Errorf("counter %d, want %d", got, want)
	}
	if got, want := g.Value(), float64(goroutines*per)*0.5; got != want {
		t.Errorf("gauge %g, want %g", got, want)
	}
	if got, want := h.Count(), int64(goroutines*per); got != want {
		t.Errorf("histogram count %d, want %d", got, want)
	}
	// Σ (k%200) for k in [0,1000) = 5 full cycles of 0..199.
	wantSum := float64(goroutines) * 5 * (199 * 200 / 2)
	if got := h.Sum(); got != wantSum {
		t.Errorf("histogram sum %g, want %g", got, wantSum)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "latencies", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.001, 0.01, 0.05, 0.5, 2, 100} {
		h.Observe(v)
	}
	var buf bytes.Buffer
	if _, err := r.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	want := `# HELP lat_seconds latencies
# TYPE lat_seconds histogram
lat_seconds_bucket{le="0.01"} 2
lat_seconds_bucket{le="0.1"} 3
lat_seconds_bucket{le="1"} 4
lat_seconds_bucket{le="+Inf"} 6
lat_seconds_sum 102.561
lat_seconds_count 6
`
	if buf.String() != want {
		t.Errorf("exposition mismatch:\ngot:\n%s\nwant:\n%s", buf.String(), want)
	}
}

func TestRegistryWriteToGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("runs_total", "pipeline runs").Add(3)
	r.Gauge("pool_workers", "live goroutines").Set(2.5)
	r.Info("env_info", "environment", map[string]string{"goos": "linux", "arch": "amd64"})

	var buf bytes.Buffer
	if _, err := r.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	want := `# HELP runs_total pipeline runs
# TYPE runs_total counter
runs_total 3
# HELP pool_workers live goroutines
# TYPE pool_workers gauge
pool_workers 2.5
# HELP env_info environment
# TYPE env_info gauge
env_info{arch="amd64",goos="linux"} 1
`
	if buf.String() != want {
		t.Errorf("exposition mismatch:\ngot:\n%s\nwant:\n%s", buf.String(), want)
	}
}

func TestRegistryIdempotentAndKindClash(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "first")
	b := r.Counter("x_total", "second registration is the same counter")
	if a != b {
		t.Error("same name must return the same counter")
	}
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter as a gauge must panic")
		}
	}()
	r.Gauge("x_total", "kind clash")
}

// TestJSONLGolden pins the encoder's exact output with a frozen clock.
func TestJSONLGolden(t *testing.T) {
	var buf bytes.Buffer
	j := NewJSONL(&buf)
	base := time.Unix(1000, 0)
	now := base
	j.SetClock(func() time.Time { return now })

	j.Event("run_start", F("method", "Seq-BDC"), F("centers", 20), F("parallel", true))
	now = base.Add(1500 * time.Microsecond)
	j.Event("game_iter", F("iter", 1), F("phi", 17.25), F("rhos", []float64{0.5, 1}))
	if err := j.Err(); err != nil {
		t.Fatal(err)
	}

	want := `{"seq":1,"t_ms":0.000,"schema_version":2,"event":"run_start","method":"Seq-BDC","centers":20,"parallel":true}
{"seq":2,"t_ms":1.500,"schema_version":2,"event":"game_iter","iter":1,"phi":17.25,"rhos":[0.5,1]}
`
	if buf.String() != want {
		t.Errorf("jsonl mismatch:\ngot:\n%s\nwant:\n%s", buf.String(), want)
	}
}

func TestJSONLConcurrent(t *testing.T) {
	var buf bytes.Buffer
	j := NewJSONL(&buf)
	const goroutines, per = 8, 50
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for i := 0; i < goroutines; i++ {
		go func() {
			defer wg.Done()
			for k := 0; k < per; k++ {
				j.Event("tick", F("k", k))
			}
		}()
	}
	wg.Wait()
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != goroutines*per {
		t.Fatalf("%d lines, want %d", len(lines), goroutines*per)
	}
	seen := make(map[int64]bool)
	for _, line := range lines {
		var ev struct {
			Seq   int64  `json:"seq"`
			Event string `json:"event"`
		}
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("invalid JSON line %q: %v", line, err)
		}
		if ev.Event != "tick" || seen[ev.Seq] {
			t.Fatalf("bad or duplicate event %+v", ev)
		}
		seen[ev.Seq] = true
	}
}

func TestSpan(t *testing.T) {
	var buf bytes.Buffer
	j := NewJSONL(&buf)
	sp := StartSpan(j, "phase1", F("centers", 4))
	d := sp.End(F("assigned", 10))
	if d < 0 {
		t.Errorf("negative duration %v", d)
	}
	var ev map[string]any
	if err := json.Unmarshal(buf.Bytes(), &ev); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"centers", "assigned", "duration_ms"} {
		if _, ok := ev[key]; !ok {
			t.Errorf("span event missing %q: %v", key, ev)
		}
	}
	// Inert span from a disabled observer.
	if d := StartSpan(Nop, "x").End(); d != 0 {
		t.Errorf("nop span measured %v", d)
	}
	if Enabled(Nop) || Enabled(nil) {
		t.Error("Nop and nil must report disabled")
	}
	if !Enabled(j) {
		t.Error("real observer must report enabled")
	}
}

func TestEnvMeta(t *testing.T) {
	meta := EnvMeta()
	for _, key := range []string{"go_version", "gomaxprocs", "num_cpu", "goos", "goarch"} {
		if meta[key] == "" {
			t.Errorf("EnvMeta missing %q", key)
		}
	}
	r := NewRegistry()
	RecordEnvInfo(r)
	var buf bytes.Buffer
	if _, err := r.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "imtao_env_info{") {
		t.Errorf("env info metric missing:\n%s", buf.String())
	}
}

func TestTimingGate(t *testing.T) {
	if TimingOn() {
		t.Error("timing must default off")
	}
	EnableTiming(true)
	if !TimingOn() {
		t.Error("EnableTiming(true) not visible")
	}
	EnableTiming(false)
}

// TestSchemaVersionStampedAndChecked: every emitted record carries the
// current schema_version, and CheckSchemaVersion rejects any other stream.
func TestSchemaVersionStampedAndChecked(t *testing.T) {
	var buf bytes.Buffer
	j := NewJSONL(&buf)
	j.Event("probe", F("k", 1))
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatal(err)
	}
	v, ok := rec[SchemaVersionKey].(float64)
	if !ok {
		t.Fatalf("record missing %q: %s", SchemaVersionKey, buf.String())
	}
	if int(v) != SchemaVersion {
		t.Fatalf("record schema_version %v, build %d", v, SchemaVersion)
	}
	if err := CheckSchemaVersion(SchemaVersion); err != nil {
		t.Fatalf("current version rejected: %v", err)
	}
	for _, bad := range []int{0, 1, SchemaVersion + 1} {
		if err := CheckSchemaVersion(bad); err == nil {
			t.Fatalf("version %d accepted by a version-%d reader", bad, SchemaVersion)
		}
	}
}
