package obs

import "fmt"

// SchemaVersion is the version stamped on every JSON Lines record this
// package emits — JSONL events, flight-recorder dumps, runtime samples and
// the provenance ledger records layered on the same encoder. Version 1 is
// the historical unversioned stream (no schema_version field at all);
// version 2 added the field itself. Bump it whenever a record type changes
// shape incompatibly, and readers built against the old shape will reject
// the stream instead of misparsing it.
const SchemaVersion = 2

// SchemaVersionKey is the JSON key carrying SchemaVersion on every record.
const SchemaVersionKey = "schema_version"

// CheckSchemaVersion validates a record's schema_version against this
// build's SchemaVersion. Readers call it per stream (the version is
// constant within one file) and surface the error instead of guessing at
// fields that may have moved.
func CheckSchemaVersion(v int) error {
	if v != SchemaVersion {
		return fmt.Errorf("obs: record schema_version %d, this build reads %d", v, SchemaVersion)
	}
	return nil
}
