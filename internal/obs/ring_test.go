package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestFlightRecorderRetainsTail(t *testing.T) {
	f := NewFlightRecorder(4)
	for i := 0; i < 10; i++ {
		f.Event("tick", F("i", i))
	}
	if f.Len() != 4 {
		t.Fatalf("Len = %d, want 4", f.Len())
	}
	if f.Total() != 10 {
		t.Fatalf("Total = %d, want 10", f.Total())
	}
	var buf bytes.Buffer
	if _, err := f.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("%d dump lines, want 4\n%s", len(lines), buf.String())
	}
	// The ring keeps the LAST 4 events: seqs 7..10 with their i fields.
	for k, line := range lines {
		var ev struct {
			Seq   uint64  `json:"seq"`
			TMs   float64 `json:"t_ms"`
			Event string  `json:"event"`
			I     int     `json:"i"`
		}
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("invalid dump line %q: %v", line, err)
		}
		if ev.Seq != uint64(7+k) || ev.I != 6+k || ev.Event != "tick" {
			t.Errorf("line %d = %+v, want seq %d i %d", k, ev, 7+k, 6+k)
		}
	}
}

func TestFlightRecorderEmptyAndNoFields(t *testing.T) {
	f := NewFlightRecorder(0) // default capacity
	var buf bytes.Buffer
	if n, err := f.WriteTo(&buf); err != nil || n != 0 {
		t.Fatalf("empty dump: n=%d err=%v", n, err)
	}
	f.Event("bare")
	buf.Reset()
	if _, err := f.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	var ev map[string]any
	if err := json.Unmarshal(buf.Bytes(), &ev); err != nil {
		t.Fatalf("bare event dump invalid: %v (%q)", err, buf.String())
	}
	if ev["event"] != "bare" {
		t.Errorf("event = %v", ev["event"])
	}
}

// TestFlightRecorderConcurrent dumps while emitters hammer the ring; under
// -race this is the lock-discipline check for the recorder.
func TestFlightRecorderConcurrent(t *testing.T) {
	f := NewFlightRecorder(64)
	const goroutines, per = 8, 500
	var wg sync.WaitGroup
	wg.Add(goroutines + 1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			var buf bytes.Buffer
			if _, err := f.WriteTo(&buf); err != nil {
				t.Error(err)
				return
			}
			for _, line := range strings.Split(strings.TrimRight(buf.String(), "\n"), "\n") {
				if line == "" {
					continue
				}
				if !json.Valid([]byte(line)) {
					t.Errorf("torn dump line %q", line)
					return
				}
			}
		}
	}()
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			for k := 0; k < per; k++ {
				f.Event("tick", F("g", g), F("k", k))
			}
		}(g)
	}
	wg.Wait()
	if f.Total() != goroutines*per {
		t.Errorf("Total = %d, want %d", f.Total(), goroutines*per)
	}
}

func TestMultiObserver(t *testing.T) {
	var a, b bytes.Buffer
	ja, jb := NewJSONL(&a), NewJSONL(&b)
	m := Multi(nil, Nop, ja, jb)
	m.Event("x", F("k", 1))
	if !strings.Contains(a.String(), `"event":"x"`) || !strings.Contains(b.String(), `"event":"x"`) {
		t.Errorf("fan-out failed: a=%q b=%q", a.String(), b.String())
	}
	if Multi() != Nop || Multi(nil, Nop) != Nop {
		t.Error("empty Multi must collapse to Nop")
	}
	if Multi(ja) != Observer(ja) {
		t.Error("single Multi must unwrap")
	}
}
