package obs

import (
	"bytes"
	"io"
	"strconv"
	"sync"
	"time"
)

// FlightRecorder is an Observer that keeps the last N events in a fixed-size
// ring buffer instead of streaming them anywhere — a post-mortem aid for
// long runs: tracing everything to disk is too expensive to leave on, but
// the most recent events are exactly what a panic, a stuck run, or an
// operator poking /debug/flightrecorder needs.
//
// Recording is lock-cheap: field rendering (the expensive part) happens
// outside the lock, and the critical section is one slot assignment. Dump
// (WriteTo) takes the same lock only long enough to snapshot the slots, so
// it can run concurrently with emitters from phase-1 workers and the trial
// pool.
type FlightRecorder struct {
	start time.Time

	mu   sync.Mutex
	buf  []flightRec
	next uint64 // total events ever recorded
}

type flightRec struct {
	seq    uint64
	tNS    int64
	name   string
	fields string // pre-rendered `,"k":v,...` JSON fragment ("" when no fields)
}

// DefaultFlightEvents is the default ring capacity of NewFlightRecorder.
const DefaultFlightEvents = 4096

// NewFlightRecorder returns a recorder holding the last n events
// (DefaultFlightEvents when n <= 0).
func NewFlightRecorder(n int) *FlightRecorder {
	if n <= 0 {
		n = DefaultFlightEvents
	}
	return &FlightRecorder{start: time.Now(), buf: make([]flightRec, n)}
}

// Event implements Observer, overwriting the oldest record once the ring is
// full.
func (f *FlightRecorder) Event(name string, fields ...Field) {
	t := time.Since(f.start)
	var frag string
	if len(fields) > 0 {
		var b bytes.Buffer
		appendFields(&b, fields)
		frag = b.String()
	}
	f.mu.Lock()
	slot := &f.buf[f.next%uint64(len(f.buf))]
	f.next++
	slot.seq = f.next
	slot.tNS = t.Nanoseconds()
	slot.name = name
	slot.fields = frag
	f.mu.Unlock()
}

// Len returns the number of events currently held (≤ the ring capacity).
func (f *FlightRecorder) Len() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := f.next
	if n > uint64(len(f.buf)) {
		n = uint64(len(f.buf))
	}
	return int(n)
}

// Total returns the number of events ever recorded, including overwritten
// ones.
func (f *FlightRecorder) Total() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.next
}

// WriteTo dumps the retained events oldest-first as JSON Lines in the same
// schema as the JSONL observer ({"seq":…,"t_ms":…,"event":…,…}); seq is the
// global event number, so a gap at the front tells the reader how much the
// ring has forgotten.
func (f *FlightRecorder) WriteTo(w io.Writer) (int64, error) {
	f.mu.Lock()
	n := uint64(len(f.buf))
	count := f.next
	if count > n {
		count = n
	}
	recs := make([]flightRec, 0, count)
	for i := f.next - count; i < f.next; i++ {
		recs = append(recs, f.buf[i%n])
	}
	f.mu.Unlock()

	var buf bytes.Buffer
	var written int64
	for _, r := range recs {
		buf.Reset()
		buf.WriteString(`{"seq":`)
		buf.WriteString(strconv.FormatUint(r.seq, 10))
		buf.WriteString(`,"t_ms":`)
		buf.WriteString(strconv.FormatFloat(float64(r.tNS)/1e6, 'f', 3, 64))
		buf.WriteString(`,"schema_version":`)
		buf.WriteString(strconv.Itoa(SchemaVersion))
		buf.WriteString(`,"event":`)
		appendJSONValue(&buf, r.name)
		buf.WriteString(r.fields)
		buf.WriteString("}\n")
		n, err := w.Write(buf.Bytes())
		written += int64(n)
		if err != nil {
			return written, err
		}
	}
	return written, nil
}
