package obs

import (
	"bytes"
	"math"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// TestCounterAddRejectsNegative pins the documented Add(n ≥ 0) contract:
// a negative delta would silently break monotonicity, so it panics instead.
func TestCounterAddRejectsNegative(t *testing.T) {
	var c Counter
	c.Add(0)
	c.Add(5)
	if c.Value() != 5 {
		t.Fatalf("Value = %d, want 5", c.Value())
	}
	defer func() {
		if recover() == nil {
			t.Error("Counter.Add(-1) must panic")
		}
		if c.Value() != 5 {
			t.Errorf("failed Add mutated the counter: %d", c.Value())
		}
	}()
	c.Add(-1)
}

// TestHistogramRejectsNonFinite is the regression test for the NaN
// corruption bug: sort.SearchFloat64s places NaN in the +Inf bucket (every
// comparison is false) and NaN + sum poisons _sum for every scrape after —
// so Observe must drop non-finite samples entirely.
func TestHistogramRejectsNonFinite(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("poison_seconds", "t", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(math.NaN())
	h.Observe(math.Inf(1))
	h.Observe(math.Inf(-1))
	h.Observe(2)
	if h.Count() != 2 {
		t.Errorf("Count = %d, want 2 (finite samples only)", h.Count())
	}
	if math.IsNaN(h.Sum()) {
		t.Fatal("NaN sample poisoned the histogram sum")
	}
	if h.Sum() != 2.5 {
		t.Errorf("Sum = %g, want 2.5", h.Sum())
	}
	var buf bytes.Buffer
	if _, err := r.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`poison_seconds_bucket{le="+Inf"} 2`,
		"poison_seconds_sum 2.5",
	} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("exposition lacks %q:\n%s", want, buf.String())
		}
	}
}

// TestHistogramSnapshotConsistent exercises the torn-read fix in
// Registry.WriteTo: while Observe runs concurrently, every exposition
// snapshot must satisfy +Inf cumulative bucket == _count (the invariant
// Prometheus clients rely on). Run under -race this also checks the lock
// discipline between Observe and the exporter.
func TestHistogramSnapshotConsistent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("work_seconds", "t", []float64{0.25, 0.5, 0.75})

	var stop atomic.Bool
	var wg sync.WaitGroup
	const writers = 4
	wg.Add(writers)
	for g := 0; g < writers; g++ {
		go func(g int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				h.Observe(float64(i%100) / 100)
			}
		}(g)
	}

	for snap := 0; snap < 200; snap++ {
		var buf bytes.Buffer
		if _, err := r.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		var inf, count int64
		var haveInf, haveCount bool
		for _, line := range strings.Split(buf.String(), "\n") {
			if v, ok := strings.CutPrefix(line, `work_seconds_bucket{le="+Inf"} `); ok {
				inf, _ = strconv.ParseInt(v, 10, 64)
				haveInf = true
			}
			if v, ok := strings.CutPrefix(line, "work_seconds_count "); ok {
				count, _ = strconv.ParseInt(v, 10, 64)
				haveCount = true
			}
		}
		if !haveInf || !haveCount {
			t.Fatalf("exposition missing bucket or count:\n%s", buf.String())
		}
		if inf != count {
			t.Fatalf("torn snapshot: +Inf bucket %d != _count %d", inf, count)
		}
	}
	stop.Store(true)
	wg.Wait()
}

// TestExpositionGolden pins the full Prometheus text exposition across every
// metric kind — counter, gauge, info, histogram — including the le label's
// shortest-float formatting ("1e-06", "0.001"), so an exporter change cannot
// silently break scrapers.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("imtao_runs_total", "pipeline runs").Add(42)
	r.Gauge("imtao_pool_workers", "live goroutines").Set(3.25)
	r.Info("imtao_env_info", "build environment",
		map[string]string{"goos": "linux", "go_version": "go1.24.0"})
	h := r.Histogram("imtao_wait_seconds", "waits",
		[]float64{1e-6, 0.001, 0.3, 1, 10})
	for _, v := range []float64{5e-7, 5e-4, 0.5, 2, 100} {
		h.Observe(v)
	}

	var buf bytes.Buffer
	if _, err := r.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	want := `# HELP imtao_runs_total pipeline runs
# TYPE imtao_runs_total counter
imtao_runs_total 42
# HELP imtao_pool_workers live goroutines
# TYPE imtao_pool_workers gauge
imtao_pool_workers 3.25
# HELP imtao_env_info build environment
# TYPE imtao_env_info gauge
imtao_env_info{go_version="go1.24.0",goos="linux"} 1
# HELP imtao_wait_seconds waits
# TYPE imtao_wait_seconds histogram
imtao_wait_seconds_bucket{le="1e-06"} 1
imtao_wait_seconds_bucket{le="0.001"} 2
imtao_wait_seconds_bucket{le="0.3"} 2
imtao_wait_seconds_bucket{le="1"} 3
imtao_wait_seconds_bucket{le="10"} 4
imtao_wait_seconds_bucket{le="+Inf"} 5
imtao_wait_seconds_sum 102.5005005
imtao_wait_seconds_count 5
`
	if buf.String() != want {
		t.Errorf("exposition mismatch:\ngot:\n%s\nwant:\n%s", buf.String(), want)
	}
}
