package obs

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"time"
)

// ProfileRing is a continuous profiler with bounded disk use: every interval
// it captures one CPU profile (sampled over a short window) and one heap
// profile into a directory, keeping only the most recent N of each kind.
// When a run later turns out to have been slow — or dies — the last few
// profiles are already on disk, covering the minutes that mattered, without
// anyone having attached a profiler in advance.
//
// CPU capture degrades gracefully: runtime/pprof allows one active CPU
// profile per process, so when something else holds it (go test -cpuprofile,
// an operator on /debug/pprof/profile) the ring records the miss in a
// counter and still captures the heap.
type ProfileRing struct {
	dir       string
	interval  time.Duration
	cpuWindow time.Duration
	keep      int

	cCaptures *Counter
	cCPUMiss  *Counter
	cErrors   *Counter

	mu   sync.Mutex
	seq  int
	stop chan struct{}
	done chan struct{}
}

// DefaultProfileKeep is how many profiles of each kind a ring retains when
// the caller passes keep <= 0.
const DefaultProfileKeep = 8

// NewProfileRing builds a ring writing into dir (created if missing). Every
// interval (min 1s enforced; <=0 selects 60s) one capture runs: a CPU
// profile sampled for cpuWindow (<=0 selects interval/4, capped at 10s) and
// a heap snapshot. keep bounds retained files per kind. Counters register on
// r (Default when nil).
func NewProfileRing(dir string, interval, cpuWindow time.Duration, keep int, r *Registry) (*ProfileRing, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	if interval <= 0 {
		interval = 60 * time.Second
	}
	if interval < time.Second {
		interval = time.Second
	}
	if cpuWindow <= 0 {
		cpuWindow = interval / 4
		if cpuWindow > 10*time.Second {
			cpuWindow = 10 * time.Second
		}
	}
	if cpuWindow >= interval {
		cpuWindow = interval / 2
	}
	if keep <= 0 {
		keep = DefaultProfileKeep
	}
	if r == nil {
		r = Default
	}
	return &ProfileRing{
		dir:       dir,
		interval:  interval,
		cpuWindow: cpuWindow,
		keep:      keep,
		cCaptures: r.Counter("imtao_profile_captures_total",
			"continuous-profile capture cycles completed"),
		cCPUMiss: r.Counter("imtao_profile_cpu_unavailable_total",
			"capture cycles that skipped CPU (another CPU profile was active)"),
		cErrors: r.Counter("imtao_profile_errors_total",
			"profile captures that failed to write"),
	}, nil
}

// Dir returns the directory the ring writes into.
func (p *ProfileRing) Dir() string { return p.dir }

// CaptureNow runs one capture cycle synchronously: a CPU profile sampled
// over the ring's window, a heap snapshot, and a prune of files beyond the
// retention bound. It returns the paths written (the CPU path is empty when
// the profiler was unavailable). cancel, when non-nil, cuts the CPU window
// short — the background loop passes its stop channel so Stop never waits a
// full window.
func (p *ProfileRing) CaptureNow(cancel <-chan struct{}) (cpuPath, heapPath string, err error) {
	p.mu.Lock()
	p.seq++
	seq := p.seq
	p.mu.Unlock()

	cpuPath = filepath.Join(p.dir, fmt.Sprintf("cpu-%06d.pprof", seq))
	if werr := p.captureCPU(cpuPath, cancel); werr != nil {
		cpuPath = ""
		if werr == errCPUBusy {
			p.cCPUMiss.Inc()
		} else {
			p.cErrors.Inc()
			err = werr
		}
	}

	heapPath = filepath.Join(p.dir, fmt.Sprintf("heap-%06d.pprof", seq))
	if werr := writeHeapProfile(heapPath); werr != nil {
		heapPath = ""
		p.cErrors.Inc()
		if err == nil {
			err = werr
		}
	}

	p.prune()
	p.cCaptures.Inc()
	return cpuPath, heapPath, err
}

var errCPUBusy = fmt.Errorf("obs: CPU profiler already active")

func (p *ProfileRing) captureCPU(path string, cancel <-chan struct{}) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		os.Remove(path)
		return errCPUBusy
	}
	t := time.NewTimer(p.cpuWindow)
	select {
	case <-t.C:
	case <-cancel:
		t.Stop()
	}
	pprof.StopCPUProfile()
	return f.Close()
}

func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := pprof.Lookup("heap").WriteTo(f, 0); err != nil {
		f.Close()
		os.Remove(path)
		return err
	}
	return f.Close()
}

// DumpNow writes an out-of-cycle heap profile named after reason — e.g.
// heap-panic.pprof next to the flight-recorder dump — outside the ring's
// numbering, so a crash artifact is never pruned away by later captures.
func (p *ProfileRing) DumpNow(reason string) (string, error) {
	reason = sanitizeReason(reason)
	path := filepath.Join(p.dir, "heap-"+reason+".pprof")
	if err := writeHeapProfile(path); err != nil {
		p.cErrors.Inc()
		return "", err
	}
	return path, nil
}

func sanitizeReason(reason string) string {
	if reason == "" {
		return "dump"
	}
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		default:
			return '-'
		}
	}, reason)
}

// prune removes numbered ring files beyond the retention bound, oldest
// first, per kind. Reason-named dumps (non-numeric suffix) are never pruned.
func (p *ProfileRing) prune() {
	for _, prefix := range []string{"cpu-", "heap-"} {
		matches, err := filepath.Glob(filepath.Join(p.dir, prefix+"*.pprof"))
		if err != nil {
			continue
		}
		var ring []string
		for _, m := range matches {
			base := strings.TrimSuffix(strings.TrimPrefix(filepath.Base(m), prefix), ".pprof")
			if len(base) == 6 && strings.Trim(base, "0123456789") == "" {
				ring = append(ring, m)
			}
		}
		sort.Strings(ring) // zero-padded seq sorts chronologically
		for len(ring) > p.keep {
			os.Remove(ring[0])
			ring = ring[1:]
		}
	}
}

// Running reports whether the background capture loop is active.
func (p *ProfileRing) Running() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stop != nil
}

// Start launches the periodic capture loop. No-op when already running.
func (p *ProfileRing) Start() {
	p.mu.Lock()
	if p.stop != nil {
		p.mu.Unlock()
		return
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	p.stop, p.done = stop, done
	p.mu.Unlock()

	go func() {
		defer close(done)
		t := time.NewTicker(p.interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				p.CaptureNow(stop)
			}
		}
	}()
}

// Stop halts the capture loop and waits for any in-flight capture to finish
// (the CPU window is cut short). Idempotent.
func (p *ProfileRing) Stop() {
	p.mu.Lock()
	stop, done := p.stop, p.done
	p.stop, p.done = nil, nil
	p.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}
