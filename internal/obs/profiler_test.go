package obs

import (
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"testing"
	"time"
)

// TestProfileRingCaptureAndPrune drives capture cycles synchronously and
// checks the ring invariant: at most keep files per kind, newest retained,
// every retained file a valid non-empty pprof payload.
func TestProfileRingCaptureAndPrune(t *testing.T) {
	dir := t.TempDir()
	p, err := NewProfileRing(dir, time.Hour, time.Millisecond, 2, NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, heap, err := p.CaptureNow(nil); err != nil {
			t.Fatalf("capture %d: %v", i, err)
		} else if heap == "" {
			t.Fatalf("capture %d wrote no heap profile", i)
		}
	}
	heaps, _ := filepath.Glob(filepath.Join(dir, "heap-*.pprof"))
	if len(heaps) != 2 {
		t.Errorf("retained %d heap profiles, want 2: %v", len(heaps), heaps)
	}
	for _, h := range heaps {
		fi, err := os.Stat(h)
		if err != nil || fi.Size() == 0 {
			t.Errorf("heap profile %s is empty or unreadable (%v)", h, err)
		}
	}
	// Newest survive: capture 3 and 4.
	if _, err := os.Stat(filepath.Join(dir, "heap-000004.pprof")); err != nil {
		t.Errorf("newest heap profile pruned: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "heap-000001.pprof")); err == nil {
		t.Error("oldest heap profile not pruned")
	}
	if p.cCaptures.Value() != 4 {
		t.Errorf("captures counter = %d, want 4", p.cCaptures.Value())
	}
}

// TestProfileRingCPUUnavailable: when another CPU profile is active the
// cycle skips CPU (counted), keeps the heap capture, and reports no error.
func TestProfileRingCPUUnavailable(t *testing.T) {
	dir := t.TempDir()
	p, err := NewProfileRing(dir, time.Hour, time.Millisecond, 4, NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	// Occupy the process-wide CPU profiler.
	hold, err := os.Create(filepath.Join(t.TempDir(), "hold.pprof"))
	if err != nil {
		t.Fatal(err)
	}
	defer hold.Close()
	if err := pprof.StartCPUProfile(hold); err != nil {
		t.Skipf("CPU profiler already held by the test harness: %v", err)
	}
	defer pprof.StopCPUProfile()

	cpu, heap, err := p.CaptureNow(nil)
	if err != nil {
		t.Fatalf("CaptureNow: %v", err)
	}
	if cpu != "" {
		t.Errorf("got CPU profile %q while profiler was busy", cpu)
	}
	if heap == "" {
		t.Error("heap capture should survive a busy CPU profiler")
	}
	if p.cCPUMiss.Value() != 1 {
		t.Errorf("cpu-miss counter = %d, want 1", p.cCPUMiss.Value())
	}
}

// TestProfileRingDumpNow: reason-named dumps land outside the ring and
// survive pruning; reasons are sanitized into safe filenames.
func TestProfileRingDumpNow(t *testing.T) {
	dir := t.TempDir()
	p, err := NewProfileRing(dir, time.Hour, time.Millisecond, 1, NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	path, err := p.DumpNow("panic: sim/phase 2")
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != "heap-panic--sim-phase-2.pprof" {
		t.Errorf("sanitized dump name = %s", filepath.Base(path))
	}
	for i := 0; i < 3; i++ {
		p.CaptureNow(nil)
	}
	if _, err := os.Stat(path); err != nil {
		t.Errorf("ring pruning removed the crash dump: %v", err)
	}
}

// TestProfileRingStopIsClean: Stop terminates the loop goroutine promptly
// (cutting the CPU window short) and is idempotent.
func TestProfileRingStopIsClean(t *testing.T) {
	before := runtime.NumGoroutine()
	p, err := NewProfileRing(t.TempDir(), time.Hour, time.Hour, 2, NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	if !p.Running() {
		t.Fatal("Running() = false after Start")
	}
	p.Start() // no-op
	p.Stop()
	if p.Running() {
		t.Error("Running() = true after Stop")
	}
	p.Stop() // idempotent
	for i := 0; i < 100; i++ {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines: %d before, %d after Stop settle — ring leaked",
		before, runtime.NumGoroutine())
}
