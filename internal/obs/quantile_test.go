package obs

import (
	"bytes"
	"math"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

// exactNearestRank is the reference quantile: rank ⌈p·n⌉ of the ascending
// sample — the same definition QuantileSnapshot.Quantile approximates per
// bucket (and the one internal/stats.Quantile implements for the bench).
func exactNearestRank(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(p*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// TestQuantileAccuracy pins the recorder's relative-error bound against the
// exact order statistics on several sample shapes: uniform, exponential
// (long-tailed, like latencies), and a bimodal fast-path/slow-path mix.
func TestQuantileAccuracy(t *testing.T) {
	const relTol = 0.04 // bucket mid-point error bound is ~1.6%; allow slack
	shapes := map[string]func(*rand.Rand) float64{
		"uniform":     func(r *rand.Rand) float64 { return 1e-4 + r.Float64() },
		"exponential": func(r *rand.Rand) float64 { return 1e-3 * r.ExpFloat64() },
		"bimodal": func(r *rand.Rand) float64 {
			if r.Intn(100) < 95 {
				return 50e-6 + 10e-6*r.Float64()
			}
			return 20e-3 + 5e-3*r.Float64()
		},
	}
	for name, gen := range shapes {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			q := NewQuantile()
			samples := make([]float64, 0, 20000)
			for i := 0; i < 20000; i++ {
				v := gen(rng)
				samples = append(samples, v)
				q.Observe(v)
			}
			sort.Float64s(samples)
			snap := q.Snapshot()
			if snap.Count != int64(len(samples)) {
				t.Fatalf("Count = %d, want %d", snap.Count, len(samples))
			}
			for _, p := range []float64{0.5, 0.9, 0.99, 0.999} {
				exact := exactNearestRank(samples, p)
				got := snap.Quantile(p)
				if rel := math.Abs(got-exact) / exact; rel > relTol {
					t.Errorf("p%g: recorder %.6g vs exact %.6g (rel err %.3f > %.3f)",
						p*100, got, exact, rel, relTol)
				}
			}
			if snap.Max != samples[len(samples)-1] {
				t.Errorf("Max = %g, want exact %g", snap.Max, samples[len(samples)-1])
			}
			if snap.Min != samples[0] {
				t.Errorf("Min = %g, want exact %g", snap.Min, samples[0])
			}
			if math.Abs(snap.Quantile(1)-samples[len(samples)-1]) != 0 {
				t.Errorf("Quantile(1) = %g, want exact max", snap.Quantile(1))
			}
		})
	}
}

// TestQuantileRejectsNonFinite: NaN and ±Inf must not enter the distribution
// or the sum — they are counted in Rejected instead.
func TestQuantileRejectsNonFinite(t *testing.T) {
	q := NewQuantile()
	q.Observe(0.5)
	q.Observe(math.NaN())
	q.Observe(math.Inf(1))
	q.Observe(math.Inf(-1))
	if q.Count() != 1 {
		t.Errorf("Count = %d, want 1", q.Count())
	}
	if q.Rejected() != 3 {
		t.Errorf("Rejected = %d, want 3", q.Rejected())
	}
	if math.IsNaN(q.Sum()) || q.Sum() != 0.5 {
		t.Errorf("Sum = %g, want 0.5", q.Sum())
	}
	if got := q.Quantile(0.5); math.Abs(got-0.5)/0.5 > 0.02 {
		t.Errorf("median %g drifted after non-finite rejections", got)
	}
}

// TestQuantileClampsOutOfRange: zero/negative samples land in the smallest
// bucket (not dropped), astronomically large ones in the largest.
func TestQuantileClampsOutOfRange(t *testing.T) {
	q := NewQuantile()
	q.Observe(0)
	q.Observe(-3)
	q.Observe(1e300)
	if q.Count() != 3 {
		t.Fatalf("Count = %d, want 3 (clamped, not dropped)", q.Count())
	}
	snap := q.Snapshot()
	if v := snap.Quantile(0.01); v > 2e-9 {
		t.Errorf("clamped-low sample reconstructs as %g, want ≈1ns bucket", v)
	}
	if v := snap.Quantile(0.99); v < 1e10 {
		t.Errorf("clamped-high sample reconstructs as %g, want top bucket", v)
	}
}

// TestQuantileObserveZeroAlloc pins the hot-path contract: Observe (and the
// ObserveDuration wrapper the engines call per iteration) must not touch the
// heap, or the PR 6 zero-allocation steady state would regress the moment a
// quantile recorder is wired in.
func TestQuantileObserveZeroAlloc(t *testing.T) {
	q := NewQuantile()
	d := 1237 * time.Microsecond
	if allocs := testing.AllocsPerRun(100, func() {
		q.ObserveDuration(d)
		q.Observe(0.25)
	}); allocs != 0 {
		t.Fatalf("Quantile.Observe allocates: %.2f allocs/op (want 0)", allocs)
	}
}

// TestQuantileConcurrent hammers one recorder from several goroutines (run
// under -race in CI) and checks nothing is lost.
func TestQuantileConcurrent(t *testing.T) {
	q := NewQuantile()
	const writers, per = 8, 5000
	var wg sync.WaitGroup
	wg.Add(writers)
	for g := 0; g < writers; g++ {
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < per; i++ {
				q.Observe(1e-4 * (1 + rng.Float64()))
			}
		}(g)
	}
	// Concurrent snapshots must stay internally consistent: the quantile
	// walk can never run past its own bucket copy.
	for i := 0; i < 50; i++ {
		snap := q.Snapshot()
		if snap.Count > 0 {
			if v := snap.Quantile(0.999); v <= 0 {
				t.Fatalf("mid-run snapshot returned %g for p999", v)
			}
		}
	}
	wg.Wait()
	if got := q.Count(); got != writers*per {
		t.Fatalf("Count = %d, want %d", got, writers*per)
	}
}

// TestRegistryQuantileExposition checks the Prometheus summary rendering:
// quantile lines, _sum/_count, idempotent registration, and the NaN
// convention for an empty recorder.
func TestRegistryQuantileExposition(t *testing.T) {
	r := NewRegistry()
	q := r.Quantile("imtao_iter_seconds", "game iteration latency")
	if r.Quantile("imtao_iter_seconds", "game iteration latency") != q {
		t.Fatal("re-registration returned a different instance")
	}

	var empty bytes.Buffer
	if _, err := r.WriteTo(&empty); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(empty.String(), `imtao_iter_seconds{quantile="0.5"} NaN`) {
		t.Errorf("empty summary should expose NaN quantiles:\n%s", empty.String())
	}
	if !strings.Contains(empty.String(), "imtao_iter_seconds_count 0") {
		t.Errorf("empty summary should expose _count 0:\n%s", empty.String())
	}

	for i := 1; i <= 1000; i++ {
		q.Observe(float64(i) / 1000) // 1ms … 1s
	}
	var buf bytes.Buffer
	if _, err := r.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE imtao_iter_seconds summary",
		`imtao_iter_seconds{quantile="0.5"} `,
		`imtao_iter_seconds{quantile="0.9"} `,
		`imtao_iter_seconds{quantile="0.99"} `,
		`imtao_iter_seconds{quantile="0.999"} `,
		"imtao_iter_seconds_count 1000",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition lacks %q:\n%s", want, out)
		}
	}
}
