// Package obs is the zero-dependency observability layer of the IMTAO
// pipeline. It provides two complementary views of a running system:
//
//   - Process-wide metrics — counters, gauges and histograms collected in a
//     Registry and exported as a Prometheus text-format snapshot
//     (Registry.WriteTo). Instrumented packages register their metrics on
//     the package-level Default registry, exactly like promauto, so the
//     /metrics endpoint of cmd/imtao-sim and the -metrics-out flag of
//     cmd/imtao-bench see every subsystem without any plumbing.
//
//   - Per-run event streams — an Observer receives named structured events
//     (game iterations, phase latencies, per-center assignment statistics)
//     from one pipeline run. The JSONL implementation serializes them one
//     JSON object per line; Nop discards them with zero allocation, so an
//     uninstrumented run pays nothing.
//
// Fine-grained latency histograms (lock wait, queue wait) additionally sit
// behind the process-wide EnableTiming gate: they need a time.Now pair on a
// hot path, so they stay off unless something is actually scraping them.
package obs

import (
	"sync/atomic"
	"time"
)

// Field is one key/value pair of a structured event. Values must be
// JSON-serializable (numbers, strings, bools, slices of those).
type Field struct {
	Key   string
	Value any
}

// F builds a Field.
func F(key string, value any) Field { return Field{Key: key, Value: value} }

// Observer receives structured telemetry events from a pipeline run.
// Implementations must be safe for concurrent use: phase 1 and the trial
// pool emit from worker goroutines.
type Observer interface {
	// Event records a named point-in-time event.
	Event(name string, fields ...Field)
}

type nopObserver struct{}

func (nopObserver) Event(string, ...Field) {}

// Nop is the no-op Observer: every event is discarded. It is the default
// wherever an Observer is optional.
var Nop Observer = nopObserver{}

// Enabled reports whether o is a real observer — non-nil and not Nop.
// Instrumentation sites use it to skip field construction entirely on
// unobserved runs.
func Enabled(o Observer) bool { return o != nil && o != Nop }

// Multi fans every event out to each enabled observer, letting one run feed
// a JSONL stream and a flight recorder at once. Disabled observers (nil,
// Nop) are dropped; with none left it returns Nop, with one it returns that
// observer unwrapped.
func Multi(observers ...Observer) Observer {
	var live []Observer
	for _, o := range observers {
		if Enabled(o) {
			live = append(live, o)
		}
	}
	switch len(live) {
	case 0:
		return Nop
	case 1:
		return live[0]
	}
	return multiObserver(live)
}

type multiObserver []Observer

func (m multiObserver) Event(name string, fields ...Field) {
	for _, o := range m {
		o.Event(name, fields...)
	}
}

// Span is a timed region. StartSpan captures the start time; End emits one
// event named after the span carrying a "duration_ms" field plus any fields
// given at either end. The zero Span (from a disabled observer) is inert.
type Span struct {
	o      Observer
	name   string
	start  time.Time
	fields []Field
}

// StartSpan opens a span on o. With a disabled observer it returns the inert
// zero Span without reading the clock.
func StartSpan(o Observer, name string, fields ...Field) Span {
	if !Enabled(o) {
		return Span{}
	}
	return Span{o: o, name: name, start: time.Now(), fields: fields}
}

// End closes the span, emitting its event. It returns the measured duration
// (zero for the inert span).
func (s Span) End(fields ...Field) time.Duration {
	if s.o == nil {
		return 0
	}
	d := time.Since(s.start)
	all := make([]Field, 0, len(s.fields)+len(fields)+1)
	all = append(all, s.fields...)
	all = append(all, fields...)
	all = append(all, F("duration_ms", DurationMs(d)))
	s.o.Event(s.name, all...)
	return d
}

// DurationMs converts a duration to fractional milliseconds, the unit every
// emitted latency field uses.
func DurationMs(d time.Duration) float64 {
	return float64(d.Nanoseconds()) / 1e6
}

// timing gates the fine-grained latency histograms (lock wait, queue wait):
// they cost a time.Now pair on hot paths, so they are off by default.
var timing atomic.Bool

// EnableTiming switches the fine-grained latency histograms on or off
// process-wide. cmd/imtao-sim enables it when serving /metrics and
// cmd/imtao-bench when -metrics-out is set.
func EnableTiming(on bool) { timing.Store(on) }

// TimingOn reports whether fine-grained latency histograms are collected.
func TimingOn() bool { return timing.Load() }
