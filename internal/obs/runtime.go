package obs

import (
	"math"
	"runtime/metrics"
	"sync"
	"time"
)

// RuntimeVitals is one snapshot of the Go runtime's health signals, read
// from runtime/metrics: scheduler pressure (goroutines, run-queue latency),
// memory pressure (live heap, GC goal, total mapped), and GC stop-the-world
// cost. Pause and latency quantiles are computed over the runtime's
// cumulative histograms, so they describe the whole process lifetime — the
// right view for "is this service healthy", with RuntimeHistogram.Sub
// available when a harness wants the distribution of one bounded window.
type RuntimeVitals struct {
	Goroutines     int64
	GoMaxProcs     int64
	HeapLiveBytes  int64 // /gc/heap/live — bytes of live objects after the last GC
	HeapGoalBytes  int64 // /gc/heap/goal — the pacer's current target
	MemTotalBytes  int64 // /memory/classes/total — all memory mapped by the runtime
	GCCycles       int64
	CgoCalls       int64
	GCPauseP50     float64 // seconds, /sched/pauses/total/gc
	GCPauseP99     float64
	SchedLatencyP50 float64 // seconds, /sched/latencies (run-queue wait)
	SchedLatencyP99 float64
}

// runtimeSampleNames are the runtime/metrics samples one vitals read takes.
// Reading them in one metrics.Read call gives a mutually consistent batch.
var runtimeSampleNames = []string{
	"/sched/goroutines:goroutines",
	"/sched/gomaxprocs:threads",
	"/gc/heap/live:bytes",
	"/gc/heap/goal:bytes",
	"/memory/classes/total:bytes",
	"/gc/cycles/total:gc-cycles",
	"/cgo/go-to-c-calls:calls",
	"/sched/pauses/total/gc:seconds",
	"/sched/latencies:seconds",
}

// RuntimeHistogram is a copy of a runtime/metrics Float64Histogram —
// bucket boundaries plus counts — that supports windowed differencing and
// quantile reads. The runtime's histograms are cumulative since process
// start; Sub turns two snapshots into the distribution of the interval.
type RuntimeHistogram struct {
	Buckets []float64 // boundaries, len(Counts)+1, may start/end at ±Inf
	Counts  []uint64
}

func copyRuntimeHistogram(h *metrics.Float64Histogram) RuntimeHistogram {
	if h == nil {
		return RuntimeHistogram{}
	}
	return RuntimeHistogram{
		Buckets: append([]float64(nil), h.Buckets...),
		Counts:  append([]uint64(nil), h.Counts...),
	}
}

// Sub returns the histogram of the window between prev and h (h - prev).
// Mismatched shapes (a runtime version change mid-process cannot happen;
// an empty prev is the common "since start" case) return h unchanged.
func (h RuntimeHistogram) Sub(prev RuntimeHistogram) RuntimeHistogram {
	if len(prev.Counts) != len(h.Counts) {
		return h
	}
	out := RuntimeHistogram{
		Buckets: h.Buckets,
		Counts:  make([]uint64, len(h.Counts)),
	}
	for i := range h.Counts {
		if h.Counts[i] >= prev.Counts[i] {
			out.Counts[i] = h.Counts[i] - prev.Counts[i]
		}
	}
	return out
}

// Count returns the total number of observations in the histogram.
func (h RuntimeHistogram) Count() uint64 {
	var n uint64
	for _, c := range h.Counts {
		n += c
	}
	return n
}

// Quantile returns the p-quantile by nearest rank over the buckets,
// reporting a bucket's midpoint (or its finite edge at the ±Inf ends).
// Empty histograms return 0.
func (h RuntimeHistogram) Quantile(p float64) float64 {
	total := h.Count()
	if total == 0 || len(h.Buckets) != len(h.Counts)+1 {
		return 0
	}
	rank := uint64(math.Ceil(p * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum >= rank {
			lo, hi := h.Buckets[i], h.Buckets[i+1]
			switch {
			case math.IsInf(lo, -1):
				return hi
			case math.IsInf(hi, 1):
				return lo
			default:
				return (lo + hi) / 2
			}
		}
	}
	return h.Buckets[len(h.Buckets)-1]
}

// ReadRuntimeHistogram reads one cumulative Float64Histogram metric by its
// runtime/metrics name ("/sched/pauses/total/gc:seconds",
// "/sched/latencies:seconds"). ok is false when the metric is unsupported
// or not a histogram.
func ReadRuntimeHistogram(name string) (RuntimeHistogram, bool) {
	s := []metrics.Sample{{Name: name}}
	metrics.Read(s)
	if s[0].Value.Kind() != metrics.KindFloat64Histogram {
		return RuntimeHistogram{}, false
	}
	return copyRuntimeHistogram(s[0].Value.Float64Histogram()), true
}

// RuntimeSampler periodically reads RuntimeVitals and publishes them as
// gauges on a Registry (so /metrics always carries fresh runtime health) and
// as "runtime_sample" events on an optional Observer (so the JSONL stream
// and the flight-recorder ring interleave vitals with pipeline events — a
// GC pause spike lands next to the game iteration it stretched).
//
// The sampler's own cost is measured: every Sample's duration feeds the
// <prefix>_sample_seconds quantile, which the perf gate holds tight so the
// watcher can never silently become the workload.
type RuntimeSampler struct {
	interval time.Duration
	obs      Observer

	gGoroutines *Gauge
	gGomaxprocs *Gauge
	gHeapLive   *Gauge
	gHeapGoal   *Gauge
	gMemTotal   *Gauge
	gGCCycles   *Gauge
	gCgoCalls   *Gauge
	gPauseP50   *Gauge
	gPauseP99   *Gauge
	gSchedP50   *Gauge
	gSchedP99   *Gauge
	cSamples    *Counter
	qSampleCost *Quantile

	mu      sync.Mutex
	samples []metrics.Sample // reused batch buffer, guarded by mu
	last    RuntimeVitals
	haveLast bool
	stop    chan struct{}
	done    chan struct{}
}

// DefaultSampleInterval is the RuntimeSampler period used when the caller
// passes a non-positive interval.
const DefaultSampleInterval = 2 * time.Second

// NewRuntimeSampler builds a sampler publishing on r (Default when nil)
// under the metric prefix "imtao_runtime". o, when enabled, additionally
// receives one "runtime_sample" event per sample; pass nil for none.
func NewRuntimeSampler(interval time.Duration, r *Registry, o Observer) *RuntimeSampler {
	if interval <= 0 {
		interval = DefaultSampleInterval
	}
	if r == nil {
		r = Default
	}
	s := &RuntimeSampler{
		interval: interval,
		obs:      o,
		gGoroutines: r.Gauge("imtao_runtime_goroutines",
			"live goroutines (/sched/goroutines)"),
		gGomaxprocs: r.Gauge("imtao_runtime_gomaxprocs_threads",
			"GOMAXPROCS (/sched/gomaxprocs)"),
		gHeapLive: r.Gauge("imtao_runtime_heap_live_bytes",
			"bytes of live heap objects after the last GC (/gc/heap/live)"),
		gHeapGoal: r.Gauge("imtao_runtime_heap_goal_bytes",
			"GC pacer heap goal (/gc/heap/goal)"),
		gMemTotal: r.Gauge("imtao_runtime_mem_total_bytes",
			"total memory mapped by the Go runtime (/memory/classes/total)"),
		gGCCycles: r.Gauge("imtao_runtime_gc_cycles_total",
			"completed GC cycles since process start (/gc/cycles/total)"),
		gCgoCalls: r.Gauge("imtao_runtime_cgo_calls_total",
			"cgo calls since process start (/cgo/go-to-c-calls)"),
		gPauseP50: r.Gauge("imtao_runtime_gc_pause_p50_seconds",
			"p50 GC stop-the-world pause since process start (/sched/pauses/total/gc)"),
		gPauseP99: r.Gauge("imtao_runtime_gc_pause_p99_seconds",
			"p99 GC stop-the-world pause since process start (/sched/pauses/total/gc)"),
		gSchedP50: r.Gauge("imtao_runtime_sched_latency_p50_seconds",
			"p50 goroutine run-queue wait since process start (/sched/latencies)"),
		gSchedP99: r.Gauge("imtao_runtime_sched_latency_p99_seconds",
			"p99 goroutine run-queue wait since process start (/sched/latencies)"),
		cSamples: r.Counter("imtao_runtime_samples_total",
			"runtime vitals samples taken"),
		qSampleCost: r.Quantile("imtao_runtime_sample_seconds",
			"cost of one runtime vitals sample (read + publish)"),
	}
	s.samples = make([]metrics.Sample, len(runtimeSampleNames))
	for i, name := range runtimeSampleNames {
		s.samples[i].Name = name
	}
	return s
}

// Sample takes one vitals snapshot now: reads the runtime metrics batch,
// updates the gauges, emits the observer event, and returns the vitals.
// Safe for concurrent use with a running sampler.
func (s *RuntimeSampler) Sample() RuntimeVitals {
	t0 := time.Now()
	s.mu.Lock()
	metrics.Read(s.samples)
	var v RuntimeVitals
	for i := range s.samples {
		val := &s.samples[i].Value
		switch s.samples[i].Name {
		case "/sched/goroutines:goroutines":
			v.Goroutines = asInt64(val)
		case "/sched/gomaxprocs:threads":
			v.GoMaxProcs = asInt64(val)
		case "/gc/heap/live:bytes":
			v.HeapLiveBytes = asInt64(val)
		case "/gc/heap/goal:bytes":
			v.HeapGoalBytes = asInt64(val)
		case "/memory/classes/total:bytes":
			v.MemTotalBytes = asInt64(val)
		case "/gc/cycles/total:gc-cycles":
			v.GCCycles = asInt64(val)
		case "/cgo/go-to-c-calls:calls":
			v.CgoCalls = asInt64(val)
		case "/sched/pauses/total/gc:seconds":
			if val.Kind() == metrics.KindFloat64Histogram {
				h := copyRuntimeHistogram(val.Float64Histogram())
				v.GCPauseP50 = h.Quantile(0.5)
				v.GCPauseP99 = h.Quantile(0.99)
			}
		case "/sched/latencies:seconds":
			if val.Kind() == metrics.KindFloat64Histogram {
				h := copyRuntimeHistogram(val.Float64Histogram())
				v.SchedLatencyP50 = h.Quantile(0.5)
				v.SchedLatencyP99 = h.Quantile(0.99)
			}
		}
	}
	s.last = v
	s.haveLast = true
	s.mu.Unlock()

	s.gGoroutines.Set(float64(v.Goroutines))
	s.gGomaxprocs.Set(float64(v.GoMaxProcs))
	s.gHeapLive.Set(float64(v.HeapLiveBytes))
	s.gHeapGoal.Set(float64(v.HeapGoalBytes))
	s.gMemTotal.Set(float64(v.MemTotalBytes))
	s.gGCCycles.Set(float64(v.GCCycles))
	s.gCgoCalls.Set(float64(v.CgoCalls))
	s.gPauseP50.Set(v.GCPauseP50)
	s.gPauseP99.Set(v.GCPauseP99)
	s.gSchedP50.Set(v.SchedLatencyP50)
	s.gSchedP99.Set(v.SchedLatencyP99)
	s.cSamples.Inc()

	if Enabled(s.obs) {
		s.obs.Event("runtime_sample",
			F("goroutines", v.Goroutines),
			F("heap_live_bytes", v.HeapLiveBytes),
			F("heap_goal_bytes", v.HeapGoalBytes),
			F("mem_total_bytes", v.MemTotalBytes),
			F("gc_cycles", v.GCCycles),
			F("gc_pause_p50_ms", v.GCPauseP50*1e3),
			F("gc_pause_p99_ms", v.GCPauseP99*1e3),
			F("sched_latency_p50_ms", v.SchedLatencyP50*1e3),
			F("sched_latency_p99_ms", v.SchedLatencyP99*1e3))
	}
	s.qSampleCost.ObserveDuration(time.Since(t0))
	return v
}

// asInt64 converts a runtime/metrics value to int64, tolerating both
// KindUint64 and KindFloat64 so a future kind change degrades gracefully.
func asInt64(v *metrics.Value) int64 {
	switch v.Kind() {
	case metrics.KindUint64:
		return int64(v.Uint64())
	case metrics.KindFloat64:
		return int64(v.Float64())
	default:
		return 0
	}
}

// Last returns the most recent vitals and whether any sample was taken yet.
func (s *RuntimeSampler) Last() (RuntimeVitals, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.last, s.haveLast
}

// Samples returns the number of samples taken so far.
func (s *RuntimeSampler) Samples() int64 { return s.cSamples.Value() }

// SampleCost returns a snapshot of the sampler's own per-sample cost.
func (s *RuntimeSampler) SampleCost() QuantileSnapshot { return s.qSampleCost.Snapshot() }

// Running reports whether the background sampling goroutine is active.
func (s *RuntimeSampler) Running() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stop != nil
}

// Start takes an immediate sample and then samples every interval on a
// background goroutine until Stop. Starting a running sampler is a no-op.
func (s *RuntimeSampler) Start() {
	s.mu.Lock()
	if s.stop != nil {
		s.mu.Unlock()
		return
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	s.stop, s.done = stop, done
	s.mu.Unlock()

	s.Sample()
	go func() {
		defer close(done)
		t := time.NewTicker(s.interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				s.Sample()
			}
		}
	}()
}

// Stop halts background sampling and waits for the goroutine to exit: after
// Stop returns, no further sample is taken or event emitted. Idempotent;
// safe to call on a never-started sampler. The sampler can be restarted.
func (s *RuntimeSampler) Stop() {
	s.mu.Lock()
	stop, done := s.stop, s.done
	s.stop, s.done = nil, nil
	s.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}
