package obs

import (
	"runtime"
	"runtime/debug"
	"strconv"
)

// EnvMeta describes the execution environment of the process — the metadata
// that makes a benchmark or metrics record from one host comparable with a
// record from another. A single-core container and a 32-way server produce
// indistinguishable parity numbers otherwise.
func EnvMeta() map[string]string {
	meta := map[string]string{
		"go_version": runtime.Version(),
		"gomaxprocs": strconv.Itoa(runtime.GOMAXPROCS(0)),
		"num_cpu":    strconv.Itoa(runtime.NumCPU()),
		"goos":       runtime.GOOS,
		"goarch":     runtime.GOARCH,
	}
	if rev := VCSRevision(); rev != "" {
		meta["vcs_revision"] = rev
	}
	return meta
}

// VCSRevision returns the VCS revision stamped into the binary by the go
// tool (empty when the build carries no VCS info, e.g. plain `go test`).
func VCSRevision() string {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return ""
	}
	for _, s := range info.Settings {
		if s.Key == "vcs.revision" {
			return s.Value
		}
	}
	return ""
}

// RecordEnvInfo publishes EnvMeta as the imtao_env_info metric on r, so a
// Prometheus snapshot records which build and host produced it.
func RecordEnvInfo(r *Registry) {
	r.Info("imtao_env_info", "build and host environment of this process", EnvMeta())
}
