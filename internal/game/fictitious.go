package game

import (
	"math"
)

// Fictitious play is the second classical learning dynamic (next to best
// response) for reaching equilibria: each round every player best-responds
// to the *empirical frequency* of the opponents' past play rather than to
// their latest move. For potential games and many classes beyond, the
// empirical frequencies converge to (mixed) equilibria; on the reference
// games in the tests fictitious play finds the pure NE best response
// dynamics can miss cycling into.

// FictitiousResult is the outcome of a fictitious-play run.
type FictitiousResult struct {
	// Joint is the final round's pure joint strategy.
	Joint []int
	// Frequencies[i][s] is the empirical frequency with which player i
	// played strategy s.
	Frequencies [][]float64
	// Rounds actually executed.
	Rounds int
	// Converged is true when the last quarter of the run used one fixed
	// joint strategy (an absorbing pure profile).
	Converged bool
}

// FictitiousPlay runs simultaneous-update fictitious play for maxRounds
// rounds from the given start profile. Each round every player picks the
// strategy maximizing expected utility against the product of opponents'
// empirical mixtures, estimated by sampling-free exact expectation for
// games whose joint space is small (≤ maxExpectationJoint states) and by
// best response to the opponents' modal strategies otherwise.
func FictitiousPlay(g Game, start []int, maxRounds int) (*FictitiousResult, error) {
	n := g.NumPlayers()
	if n == 0 {
		return nil, ErrEmptyGame
	}
	joint := append([]int(nil), start...)
	counts := make([][]float64, n)
	for i := range counts {
		counts[i] = make([]float64, g.NumStrategies(i))
		counts[i][joint[i]]++
	}

	jointSpace := 1
	exact := true
	for i := 0; i < n; i++ {
		jointSpace *= g.NumStrategies(i)
		if jointSpace > maxExpectationJoint {
			exact = false
			break
		}
	}

	lastChange := 0
	for round := 1; round <= maxRounds; round++ {
		next := make([]int, n)
		for i := 0; i < n; i++ {
			if exact {
				next[i] = bestVsMixture(g, i, counts, float64(round))
			} else {
				next[i] = bestVsModal(g, i, joint, counts)
			}
		}
		for i := range next {
			if next[i] != joint[i] {
				lastChange = round
			}
			joint[i] = next[i]
			counts[i][joint[i]]++
		}
		_ = round
	}

	res := &FictitiousResult{Joint: joint, Rounds: maxRounds}
	res.Frequencies = make([][]float64, n)
	total := float64(maxRounds + 1)
	for i := range counts {
		res.Frequencies[i] = make([]float64, len(counts[i]))
		for s, c := range counts[i] {
			res.Frequencies[i][s] = c / total
		}
	}
	res.Converged = lastChange <= maxRounds*3/4
	return res, nil
}

// maxExpectationJoint bounds the joint-strategy space for which exact
// expected utilities are computed.
const maxExpectationJoint = 1 << 16

// bestVsMixture returns player i's strategy maximizing exact expected
// utility against opponents' empirical mixtures.
func bestVsMixture(g Game, i int, counts [][]float64, rounds float64) int {
	n := g.NumPlayers()
	joint := make([]int, n)
	best, bestU := 0, math.Inf(-1)
	for s := 0; s < g.NumStrategies(i); s++ {
		joint[i] = s
		u := expectOver(g, i, joint, counts, 0, 1, rounds)
		if u > bestU+utilEps {
			best, bestU = s, u
		}
	}
	return best
}

// expectOver recursively enumerates opponents' strategies weighted by their
// empirical frequencies.
func expectOver(g Game, i int, joint []int, counts [][]float64, player int, weight, rounds float64) float64 {
	if weight == 0 {
		return 0
	}
	n := g.NumPlayers()
	if player == n {
		return weight * g.Utility(i, joint)
	}
	if player == i {
		return expectOver(g, i, joint, counts, player+1, weight, rounds)
	}
	var sum float64
	for s := 0; s < g.NumStrategies(player); s++ {
		p := counts[player][s] / (rounds)
		if p == 0 {
			continue
		}
		joint[player] = s
		sum += expectOver(g, i, joint, counts, player+1, weight*p, rounds)
	}
	return sum
}

// bestVsModal approximates fictitious play for large games: best response
// to each opponent's most frequent strategy.
func bestVsModal(g Game, i int, joint []int, counts [][]float64) int {
	n := g.NumPlayers()
	modal := make([]int, n)
	for p := 0; p < n; p++ {
		bi, bc := 0, -1.0
		for s, c := range counts[p] {
			if c > bc {
				bi, bc = s, c
			}
		}
		modal[p] = bi
	}
	modal[i] = joint[i]
	br, _ := BestResponse(g, i, modal)
	return br
}
