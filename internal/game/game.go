// Package game provides the strategic-game machinery behind the inter-center
// workforce transfer phase of IMTAO (paper §V): finite strategic games,
// exact-potential-game verification (Definition 11), pure Nash equilibrium
// checks, and best-response dynamics (§V-D).
//
// The multi-center collaboration game is defined in the collab package on
// top of this one; this package is deliberately problem-agnostic so the
// potential-game theory can be tested on reference games (congestion games,
// coordination games) independently of spatial crowdsourcing.
package game

import (
	"errors"
	"math"
)

// Game is a finite strategic game G = (C, ST, U): n players, each with a
// finite strategy set, and a utility function over joint strategies.
// A joint strategy is represented as a slice of per-player strategy indices.
type Game interface {
	// NumPlayers returns |C|.
	NumPlayers() int
	// NumStrategies returns |ST_i| for player i.
	NumStrategies(i int) int
	// Utility returns U_i(joint) — player i's utility under the joint
	// strategy.
	Utility(i int, joint []int) float64
}

// ErrEmptyGame is returned by dynamics on games with no players.
var ErrEmptyGame = errors.New("game: no players")

// utilEps tolerates floating-point noise in utility comparisons.
const utilEps = 1e-12

// BestResponse returns the strategy index maximizing player i's utility with
// the rest of the joint strategy held fixed, and the utility achieved.
// Ties break toward the smaller index so dynamics are deterministic.
func BestResponse(g Game, i int, joint []int) (int, float64) {
	work := append([]int(nil), joint...)
	best, bestU := 0, math.Inf(-1)
	for s := 0; s < g.NumStrategies(i); s++ {
		work[i] = s
		if u := g.Utility(i, work); u > bestU+utilEps {
			best, bestU = s, u
		}
	}
	return best, bestU
}

// IsNash reports whether the joint strategy is a pure Nash equilibrium: no
// player can improve its utility by a unilateral deviation.
func IsNash(g Game, joint []int) bool {
	for i := 0; i < g.NumPlayers(); i++ {
		cur := g.Utility(i, joint)
		_, best := BestResponse(g, i, joint)
		if best > cur+utilEps {
			return false
		}
	}
	return true
}

// Step records one move of the best-response dynamics.
type Step struct {
	Player   int
	From, To int
	Gain     float64
}

// Dynamics holds the outcome of running best-response dynamics.
type Dynamics struct {
	Joint     []int  // final joint strategy
	Steps     []Step // strategy switches, in order
	Converged bool   // true when a pure NE was reached within the round cap
}

// BestResponseDynamics runs round-robin best-response dynamics from the
// given starting joint strategy (player 0, 1, …, n−1, repeating) until no
// player switches for a full round or maxRounds is exhausted. For exact
// potential games convergence is guaranteed by the finite-improvement
// property; maxRounds guards non-potential games.
func BestResponseDynamics(g Game, start []int, maxRounds int) (*Dynamics, error) {
	n := g.NumPlayers()
	if n == 0 {
		return nil, ErrEmptyGame
	}
	joint := append([]int(nil), start...)
	d := &Dynamics{}
	for round := 0; round < maxRounds; round++ {
		switched := false
		for i := 0; i < n; i++ {
			cur := g.Utility(i, joint)
			br, brU := BestResponse(g, i, joint)
			if brU > cur+utilEps && br != joint[i] {
				d.Steps = append(d.Steps, Step{Player: i, From: joint[i], To: br, Gain: brU - cur})
				joint[i] = br
				switched = true
			}
		}
		if !switched {
			d.Converged = true
			break
		}
	}
	d.Joint = joint
	return d, nil
}

// PotentialCheck verifies the exact-potential property of Definition 11
// exhaustively: for every joint strategy and every unilateral deviation,
// the change in the deviator's utility must equal the change in phi.
// It returns the maximum absolute discrepancy observed; a game is an exact
// potential game for phi iff the result is (numerically) zero.
// The check enumerates the full joint-strategy space and is meant for the
// small reference games in tests.
func PotentialCheck(g Game, phi func(joint []int) float64) float64 {
	n := g.NumPlayers()
	joint := make([]int, n)
	var worst float64
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			base := phi(joint)
			for i := 0; i < n; i++ {
				orig := joint[i]
				u0 := g.Utility(i, joint)
				for s := 0; s < g.NumStrategies(i); s++ {
					if s == orig {
						continue
					}
					joint[i] = s
					dU := g.Utility(i, joint) - u0
					dPhi := phi(joint) - base
					if diff := math.Abs(dU - dPhi); diff > worst {
						worst = diff
					}
				}
				joint[i] = orig
			}
			return
		}
		for s := 0; s < g.NumStrategies(k); s++ {
			joint[k] = s
			rec(k + 1)
		}
	}
	rec(0)
	return worst
}

// FindPureNash enumerates the joint-strategy space and returns all pure Nash
// equilibria. Exponential; test-sized games only.
func FindPureNash(g Game) [][]int {
	n := g.NumPlayers()
	joint := make([]int, n)
	var out [][]int
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			if IsNash(g, joint) {
				out = append(out, append([]int(nil), joint...))
			}
			return
		}
		for s := 0; s < g.NumStrategies(k); s++ {
			joint[k] = s
			rec(k + 1)
		}
	}
	rec(0)
	return out
}

// TableGame is a concrete Game backed by explicit utility tables, used for
// reference games in tests and examples.
type TableGame struct {
	Strategies []int // strategy count per player
	// Payoff returns the utility of player i at the joint strategy.
	Payoff func(i int, joint []int) float64
}

// NumPlayers implements Game.
func (t *TableGame) NumPlayers() int { return len(t.Strategies) }

// NumStrategies implements Game.
func (t *TableGame) NumStrategies(i int) int { return t.Strategies[i] }

// Utility implements Game.
func (t *TableGame) Utility(i int, joint []int) float64 { return t.Payoff(i, joint) }
