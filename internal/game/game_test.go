package game

import (
	"math"
	"math/rand"
	"testing"
)

// congestionGame builds a classic 2-resource congestion game for n players:
// each player picks resource 0 or 1; the cost of a resource is its load, and
// utility is the negative cost. Congestion games are exact potential games
// with Rosenthal's potential.
func congestionGame(n int) (*TableGame, func([]int) float64) {
	g := &TableGame{
		Strategies: make([]int, n),
		Payoff: func(i int, joint []int) float64 {
			load := 0
			for _, s := range joint {
				if s == joint[i] {
					load++
				}
			}
			return -float64(load)
		},
	}
	for i := range g.Strategies {
		g.Strategies[i] = 2
	}
	phi := func(joint []int) float64 {
		// Rosenthal: Φ = -Σ_r Σ_{k=1..load_r} k
		loads := [2]int{}
		for _, s := range joint {
			loads[s]++
		}
		var p float64
		for _, l := range loads {
			p -= float64(l*(l+1)) / 2
		}
		return p
	}
	return g, phi
}

// matchingPennies is the canonical game with NO pure Nash equilibrium.
func matchingPennies() *TableGame {
	return &TableGame{
		Strategies: []int{2, 2},
		Payoff: func(i int, joint []int) float64 {
			match := joint[0] == joint[1]
			if (i == 0) == match {
				return 1
			}
			return -1
		},
	}
}

// coordinationGame rewards both players for matching, with strategy 1
// strictly better for both.
func coordinationGame() *TableGame {
	return &TableGame{
		Strategies: []int{2, 2},
		Payoff: func(i int, joint []int) float64 {
			if joint[0] != joint[1] {
				return 0
			}
			return float64(joint[0] + 1)
		},
	}
}

func TestBestResponse(t *testing.T) {
	g := coordinationGame()
	br, u := BestResponse(g, 0, []int{0, 1})
	if br != 1 || u != 2 {
		t.Fatalf("BestResponse = %d/%v, want 1/2", br, u)
	}
	// Ties break toward the smaller strategy index.
	flat := &TableGame{Strategies: []int{3}, Payoff: func(int, []int) float64 { return 7 }}
	br, _ = BestResponse(flat, 0, []int{2})
	if br != 0 {
		t.Fatalf("tie-break = %d, want 0", br)
	}
}

func TestIsNash(t *testing.T) {
	g := coordinationGame()
	if !IsNash(g, []int{1, 1}) {
		t.Error("(1,1) is a NE")
	}
	if !IsNash(g, []int{0, 0}) {
		t.Error("(0,0) is a (payoff-dominated) NE")
	}
	if IsNash(g, []int{0, 1}) {
		t.Error("(0,1) is not a NE")
	}
}

func TestFindPureNash(t *testing.T) {
	if got := FindPureNash(coordinationGame()); len(got) != 2 {
		t.Errorf("coordination game has 2 pure NE, found %d", len(got))
	}
	if got := FindPureNash(matchingPennies()); len(got) != 0 {
		t.Errorf("matching pennies has no pure NE, found %v", got)
	}
}

func TestCongestionGameIsExactPotential(t *testing.T) {
	for _, n := range []int{2, 3, 4} {
		g, phi := congestionGame(n)
		if worst := PotentialCheck(g, phi); worst > 1e-12 {
			t.Errorf("n=%d: potential discrepancy %v", n, worst)
		}
	}
}

func TestPotentialCheckDetectsNonPotential(t *testing.T) {
	g := matchingPennies()
	// Any candidate potential must fail; try the zero function.
	if worst := PotentialCheck(g, func([]int) float64 { return 0 }); worst < 1 {
		t.Errorf("matching pennies passed a bogus potential check: %v", worst)
	}
}

func TestBestResponseDynamicsConvergesOnPotentialGame(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(5)
		g, _ := congestionGame(n)
		start := make([]int, n)
		for i := range start {
			start[i] = rng.Intn(2)
		}
		d, err := BestResponseDynamics(g, start, 100)
		if err != nil {
			t.Fatal(err)
		}
		if !d.Converged {
			t.Fatalf("trial %d: no convergence on an exact potential game", trial)
		}
		if !IsNash(g, d.Joint) {
			t.Fatalf("trial %d: dynamics ended off-equilibrium at %v", trial, d.Joint)
		}
	}
}

func TestBestResponseDynamicsStepsImprove(t *testing.T) {
	g, phi := congestionGame(4)
	d, err := BestResponseDynamics(g, []int{0, 0, 0, 0}, 100)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range d.Steps {
		if s.Gain <= 0 {
			t.Fatalf("non-improving step recorded: %+v", s)
		}
	}
	// Potential at the end must be at least the starting potential.
	if phi(d.Joint) < phi([]int{0, 0, 0, 0})-1e-12 {
		t.Error("dynamics decreased the potential")
	}
}

func TestBestResponseDynamicsNonConvergent(t *testing.T) {
	// Matching pennies cycles forever; the round cap must stop it.
	d, err := BestResponseDynamics(matchingPennies(), []int{0, 0}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if d.Converged {
		t.Error("matching pennies cannot converge to a pure NE")
	}
}

func TestBestResponseDynamicsEmptyGame(t *testing.T) {
	g := &TableGame{Strategies: nil, Payoff: func(int, []int) float64 { return 0 }}
	if _, err := BestResponseDynamics(g, nil, 10); err == nil {
		t.Error("empty game must error")
	}
}

// Property (Lemma 1 analogue): in an exact potential game, the potential
// strictly increases along every improving unilateral deviation.
func TestPotentialTracksUnilateralGains(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	g, phi := congestionGame(5)
	joint := make([]int, 5)
	for trial := 0; trial < 200; trial++ {
		for i := range joint {
			joint[i] = rng.Intn(2)
		}
		i := rng.Intn(5)
		u0, p0 := g.Utility(i, joint), phi(joint)
		joint[i] = 1 - joint[i]
		u1, p1 := g.Utility(i, joint), phi(joint)
		if math.Abs((u1-u0)-(p1-p0)) > 1e-12 {
			t.Fatalf("potential mismatch: dU=%v dPhi=%v", u1-u0, p1-p0)
		}
	}
}

func TestFictitiousPlayCoordination(t *testing.T) {
	// From a miscoordinated start, fictitious play settles on a pure NE of
	// the coordination game.
	g := coordinationGame()
	res, err := FictitiousPlay(g, []int{0, 1}, 200)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("fictitious play did not settle on the coordination game")
	}
	if !IsNash(g, res.Joint) {
		t.Fatalf("settled on a non-equilibrium %v", res.Joint)
	}
}

func TestFictitiousPlayCongestion(t *testing.T) {
	rng := rand.New(rand.NewSource(171))
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(4)
		g, _ := congestionGame(n)
		start := make([]int, n)
		for i := range start {
			start[i] = rng.Intn(2)
		}
		res, err := FictitiousPlay(g, start, 300)
		if err != nil {
			t.Fatal(err)
		}
		if res.Converged && !IsNash(g, res.Joint) {
			t.Fatalf("trial %d: converged off equilibrium at %v", trial, res.Joint)
		}
		// Frequencies are proper distributions.
		for i, fs := range res.Frequencies {
			var sum float64
			for _, f := range fs {
				if f < 0 {
					t.Fatalf("negative frequency for player %d", i)
				}
				sum += f
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Fatalf("player %d frequencies sum to %v", i, sum)
			}
		}
	}
}

func TestFictitiousPlayMatchingPennies(t *testing.T) {
	// No pure NE exists; play must not falsely converge to one, and the
	// empirical frequencies should hover near the (0.5, 0.5) mixed NE.
	g := matchingPennies()
	res, err := FictitiousPlay(g, []int{0, 0}, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged && IsNash(g, res.Joint) {
		t.Fatal("matching pennies has no pure NE to converge to")
	}
	for i := 0; i < 2; i++ {
		if math.Abs(res.Frequencies[i][0]-0.5) > 0.15 {
			t.Errorf("player %d frequency %v far from the mixed NE", i, res.Frequencies[i])
		}
	}
}

func TestFictitiousPlayEmptyGame(t *testing.T) {
	g := &TableGame{Strategies: nil, Payoff: func(int, []int) float64 { return 0 }}
	if _, err := FictitiousPlay(g, nil, 10); err == nil {
		t.Error("empty game must error")
	}
}

func TestFictitiousPlayLargeGameModalPath(t *testing.T) {
	// 20 players with 3 strategies each: the joint space (3^20) far exceeds
	// the exact-expectation cap, forcing the modal-response path.
	n := 20
	g := &TableGame{
		Strategies: make([]int, n),
		Payoff: func(i int, joint []int) float64 {
			// Congestion over 3 resources.
			load := 0
			for _, s := range joint {
				if s == joint[i] {
					load++
				}
			}
			return -float64(load)
		},
	}
	for i := range g.Strategies {
		g.Strategies[i] = 3
	}
	start := make([]int, n) // everyone on resource 0: heavily congested
	res, err := FictitiousPlay(g, start, 100)
	if err != nil {
		t.Fatal(err)
	}
	// Simultaneous modal best response herds the crowd back and forth (a
	// classic artifact); the meaningful checks are that every player's
	// empirical play visited at least two resources and frequencies stay
	// proper distributions.
	for i, fs := range res.Frequencies {
		var sum float64
		visited := 0
		for _, f := range fs {
			sum += f
			if f > 0 {
				visited++
			}
		}
		if sum < 0.999 || sum > 1.001 {
			t.Fatalf("player %d frequencies sum to %v", i, sum)
		}
		if visited < 2 {
			t.Fatalf("player %d never left its start resource: %v", i, fs)
		}
	}
	if res.Rounds != 100 {
		t.Fatalf("rounds = %d", res.Rounds)
	}
}
