package game_test

import (
	"fmt"

	"imtao/internal/game"
)

// A two-player coordination game: both players want to match, and matching
// on strategy 1 pays more. Best-response dynamics from a miscoordinated
// start finds a pure Nash equilibrium.
func ExampleBestResponseDynamics() {
	g := &game.TableGame{
		Strategies: []int{2, 2},
		Payoff: func(i int, joint []int) float64 {
			if joint[0] != joint[1] {
				return 0
			}
			return float64(joint[0] + 1)
		},
	}
	d, err := game.BestResponseDynamics(g, []int{0, 1}, 100)
	if err != nil {
		panic(err)
	}
	fmt.Println(d.Converged, game.IsNash(g, d.Joint))
	// Output: true true
}

// Verifying the exact-potential property (paper Definition 11) of a
// congestion game against Rosenthal's potential.
func ExamplePotentialCheck() {
	g := &game.TableGame{
		Strategies: []int{2, 2, 2},
		Payoff: func(i int, joint []int) float64 {
			load := 0
			for _, s := range joint {
				if s == joint[i] {
					load++
				}
			}
			return -float64(load)
		},
	}
	phi := func(joint []int) float64 {
		loads := [2]int{}
		for _, s := range joint {
			loads[s]++
		}
		var p float64
		for _, l := range loads {
			p -= float64(l*(l+1)) / 2
		}
		return p
	}
	fmt.Printf("max discrepancy: %.0f\n", game.PotentialCheck(g, phi))
	// Output: max discrepancy: 0
}
