// Package slab provides the bump-pointer arenas behind the engine's
// zero-allocation steady state (DESIGN.md §13). An Arena hands out
// capacity-bounded sub-slices of one reusable backing buffer; resetting it
// recycles every grabbed slice at once. The phase-2 game grabs all of its
// per-trial and per-iteration slices — route task lists, leftover sets,
// unused-worker lists, ρ-vector copies — from arenas instead of make(),
// so a warmed-up game iteration performs zero heap allocations.
package slab

// Arena hands out capacity-bounded sub-slices of one reusable backing
// buffer.
//
// Ownership contract: a grabbed slice is valid until the arena's next
// Reset. All grabs between two resets coexist; anything that must outlive
// the reset has to be promoted — deep-copied — into longer-lived storage
// first.
//
// Grab(n) returns a len-0, cap-n slice: n must be an upper bound on the
// final length, or the first append past cap quietly escapes to a fresh
// heap allocation (correct, but no longer allocation-free). When the buffer
// runs out, Grab allocates a larger one and abandons the old — outstanding
// slices keep the old buffer alive, so nothing dangles; the steady state
// reaches a high-water capacity and stops allocating.
type Arena[T any] struct {
	buf []T
	off int
}

// Grab returns a zero-length slice with capacity n carved from the arena.
// The three-index slice keeps appends inside the reservation from touching
// the next grab's region.
func (a *Arena[T]) Grab(n int) []T {
	if a.off+n > len(a.buf) {
		size := 2 * len(a.buf)
		if size < n {
			size = n
		}
		if size < 64 {
			size = 64
		}
		a.buf = make([]T, size)
		a.off = 0
	}
	s := a.buf[a.off : a.off : a.off+n]
	a.off += n
	return s
}

// Copy grabs a slice of len(v) and copies v into it — the recycled
// counterpart of append([]T(nil), v...).
func (a *Arena[T]) Copy(v []T) []T {
	s := a.Grab(len(v))
	return append(s, v...)
}

// Reserve ensures the next n elements' worth of grabs will not allocate.
// Like an exhausted Grab it may abandon the current buffer for a larger one;
// previously grabbed slices stay valid on the old buffer.
func (a *Arena[T]) Reserve(n int) {
	if a.off+n <= len(a.buf) {
		return
	}
	size := 2 * len(a.buf)
	if size < n {
		size = n
	}
	a.buf = make([]T, size)
	a.off = 0
}

// Reset recycles the whole arena. Every slice grabbed since the previous
// reset is invalidated (its contents may be overwritten by future grabs).
func (a *Arena[T]) Reset() { a.off = 0 }
