// Package metrics implements the evaluation quantities of the paper:
// task assignment ratios ρ (Definition 9, Eq. 2), collaboration unfairness
// U_ρ (Definition 10, Eq. 3), the utility of unfair punishment UUP (Eq. 4)
// and the game's potential function Φ (Eq. 7).
package metrics

import (
	"math"

	"imtao/internal/model"
)

// Ratio returns the task assignment ratio ρ of one center given its assigned
// and total task counts. A center with no tasks needs nothing, so its ratio
// is defined as 1 — it is never a recipient in the collaboration game
// (consistent with the ρ < 1 filter of paper Algorithm 3 line 5).
func Ratio(assigned, total int) float64 {
	if total == 0 {
		return 1
	}
	return float64(assigned) / float64(total)
}

// Ratios returns the per-center assignment ratios ρ_i of a solution.
func Ratios(in *model.Instance, s *model.Solution) []float64 {
	out := make([]float64, len(in.Centers))
	for ci := range in.Centers {
		out[ci] = Ratio(s.PerCenter[ci].AssignedCount(), len(in.Centers[ci].Tasks))
	}
	return out
}

// Unfairness computes the collaboration unfairness U_ρ of Eq. 3: the mean
// absolute pairwise difference of assignment ratios. It is 0 for fewer than
// two centers.
func Unfairness(rhos []float64) float64 {
	n := len(rhos)
	if n < 2 {
		return 0
	}
	var sum float64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				sum += math.Abs(rhos[i] - rhos[j])
			}
		}
	}
	return sum / float64(n*(n-1))
}

// SolutionUnfairness is Unfairness over the ratios of a solution.
func SolutionUnfairness(in *model.Instance, s *model.Solution) float64 {
	return Unfairness(Ratios(in, s))
}

// UUP computes the utility of unfair punishment of center i (Eq. 4):
// its own ratio minus the mean ratio of all other centers. With a single
// center the second term is empty and the utility is just ρ_i.
func UUP(rhos []float64, i int) float64 {
	n := len(rhos)
	if n == 1 {
		return rhos[0]
	}
	var others float64
	for j, r := range rhos {
		if j != i {
			others += r
		}
	}
	return rhos[i] - others/float64(n-1)
}

// Potential computes the potential function Φ of Eq. 7, the sum of all
// centers' UUP utilities. Algebraically this sum telescopes to zero for any
// ratio vector — the paper's potential argument holds the other players'
// utilities fixed during a unilateral deviation (see the proof of Lemma 1),
// which the game package models explicitly. Potential is kept for
// completeness and as a numerical invariant exercised in tests.
func Potential(rhos []float64) float64 {
	var sum float64
	for i := range rhos {
		sum += UUP(rhos, i)
	}
	return sum
}

// Phi is the potential Φ of the collaboration game in the form the
// convergence analysis observes: the sum of per-center assignment ratios.
// With the other players' ratios held fixed — the unilateral-deviation
// semantics of the proof of Lemma 1 — a deviation that changes ρ_i by δ
// changes both the deviator's UUP (Eq. 4) and Phi by exactly δ, so Phi is
// an exact potential, and it is monotonically non-decreasing along the
// accepted best-response moves of Algorithm 3 (each accepted dispatch
// strictly raises the recipient's ratio and leaves every other ratio
// untouched). The obs layer emits it per game iteration.
func Phi(rhos []float64) float64 {
	var sum float64
	for _, r := range rhos {
		sum += r
	}
	return sum
}

// MinRatioCenter returns the index with the lowest ratio, breaking ties
// toward the smaller index — the recipient-selection rule of Algorithm 3
// line 13. among restricts the choice to the given center set; it must be
// non-empty.
func MinRatioCenter(rhos []float64, among []model.CenterID) model.CenterID {
	best := among[0]
	for _, c := range among[1:] {
		if rhos[c] < rhos[best] || (rhos[c] == rhos[best] && c < best) {
			best = c
		}
	}
	return best
}
