package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGini(t *testing.T) {
	if g := Gini([]float64{1, 1, 1, 1}); math.Abs(g) > 1e-12 {
		t.Errorf("equal values: Gini = %v", g)
	}
	// One person owns everything among 4: Gini = (n-1)/n = 0.75.
	if g := Gini([]float64{0, 0, 0, 1}); math.Abs(g-0.75) > 1e-12 {
		t.Errorf("concentrated: Gini = %v", g)
	}
	if g := Gini([]float64{5}); g != 0 {
		t.Errorf("single value: Gini = %v", g)
	}
	if g := Gini([]float64{0, 0}); g != 0 {
		t.Errorf("all-zero: Gini = %v", g)
	}
}

func TestJain(t *testing.T) {
	if j := Jain([]float64{1, 1, 1}); math.Abs(j-1) > 1e-12 {
		t.Errorf("equal values: Jain = %v", j)
	}
	// One non-zero among n: Jain = 1/n.
	if j := Jain([]float64{1, 0, 0, 0}); math.Abs(j-0.25) > 1e-12 {
		t.Errorf("concentrated: Jain = %v", j)
	}
	if j := Jain(nil); j != 1 {
		t.Errorf("empty: Jain = %v", j)
	}
	if j := Jain([]float64{0, 0}); j != 1 {
		t.Errorf("all-zero: Jain = %v", j)
	}
}

func TestMaxMinGap(t *testing.T) {
	if g := MaxMinGap([]float64{0.2, 0.9, 0.5}); math.Abs(g-0.7) > 1e-12 {
		t.Errorf("gap = %v", g)
	}
	if g := MaxMinGap(nil); g != 0 {
		t.Errorf("empty gap = %v", g)
	}
}

// Properties: Gini ∈ [0,1), Jain ∈ (0,1], U_ρ ≤ MaxMinGap, and all three
// agree on "perfectly fair".
func TestFairnessIndicesProperties(t *testing.T) {
	f := func(raw []float64) bool {
		vals := make([]float64, 0, len(raw))
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			vals = append(vals, math.Abs(math.Mod(v, 1)))
		}
		if len(vals) < 2 {
			return true
		}
		g, j := Gini(vals), Jain(vals)
		if g < -1e-12 || g >= 1 {
			return false
		}
		if j <= 0 || j > 1+1e-12 {
			return false
		}
		if Unfairness(vals) > MaxMinGap(vals)+1e-12 {
			return false
		}
		// Uniform vector: all indices report perfect fairness.
		uniform := make([]float64, len(vals))
		for i := range uniform {
			uniform[i] = 0.6
		}
		return Gini(uniform) < 1e-12 && math.Abs(Jain(uniform)-1) < 1e-12 && Unfairness(uniform) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
