package metrics

import (
	"imtao/internal/model"
	"imtao/internal/routing"
)

// Utilization summarises how the workforce is used by a solution — the
// operational view platform operators care about beyond the paper's two
// objectives.
type Utilization struct {
	// Workers is the total workforce size.
	Workers int
	// Active is the number of workers with a non-empty route.
	Active int
	// Dispatched is the number of workers sent to a foreign center.
	Dispatched int
	// TasksPerActive is the mean route length over active workers.
	TasksPerActive float64
	// MeanRouteHours is the mean total travel time of active workers'
	// routes (worker → center → deliveries).
	MeanRouteHours float64
	// MaxRouteHours is the longest route.
	MaxRouteHours float64
	// CapacityUsed is assigned tasks / Σ maxT over all workers — how much
	// of the fleet's theoretical capacity the plan consumes.
	CapacityUsed float64
}

// ComputeUtilization derives workforce statistics from a solution.
func ComputeUtilization(in *model.Instance, s *model.Solution) Utilization {
	u := Utilization{Workers: len(in.Workers), Dispatched: len(s.Transfers)}
	var capTotal int
	for _, w := range in.Workers {
		capTotal += w.MaxT
	}
	var tasks int
	var hours float64
	for ci := range s.PerCenter {
		for _, r := range s.PerCenter[ci].Routes {
			if len(r.Tasks) == 0 {
				continue
			}
			u.Active++
			tasks += len(r.Tasks)
			h := routing.TravelTime(in, in.Worker(r.Worker), in.Center(r.Center), r.Tasks)
			hours += h
			if h > u.MaxRouteHours {
				u.MaxRouteHours = h
			}
		}
	}
	if u.Active > 0 {
		u.TasksPerActive = float64(tasks) / float64(u.Active)
		u.MeanRouteHours = hours / float64(u.Active)
	}
	if capTotal > 0 {
		u.CapacityUsed = float64(tasks) / float64(capTotal)
	}
	return u
}
