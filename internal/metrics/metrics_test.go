package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"imtao/internal/geo"
	"imtao/internal/model"
)

func TestRatio(t *testing.T) {
	cases := []struct {
		assigned, total int
		want            float64
	}{
		{0, 0, 1}, // empty center needs nothing
		{0, 4, 0},
		{2, 4, 0.5},
		{4, 4, 1},
	}
	for _, c := range cases {
		if got := Ratio(c.assigned, c.total); got != c.want {
			t.Errorf("Ratio(%d,%d) = %v, want %v", c.assigned, c.total, got, c.want)
		}
	}
}

func TestUnfairnessPaperExample(t *testing.T) {
	// Paper §I: ratios (1.0, 0.5, 0.33) give U_ρ ≈ 0.45;
	// after dispatching w2: (1.0, 0.5, 0.67) gives ≈ 0.33.
	before := Unfairness([]float64{1.0, 0.5, 1.0 / 3})
	if math.Abs(before-0.4444) > 0.01 {
		t.Errorf("before = %v, paper reports ≈0.45", before)
	}
	after := Unfairness([]float64{1.0, 0.5, 2.0 / 3})
	if math.Abs(after-0.3333) > 0.01 {
		t.Errorf("after = %v, paper reports ≈0.33", after)
	}
	if after >= before {
		t.Error("collaboration must reduce unfairness in the paper example")
	}
}

func TestUnfairnessEdgeCases(t *testing.T) {
	if got := Unfairness(nil); got != 0 {
		t.Errorf("empty = %v", got)
	}
	if got := Unfairness([]float64{0.7}); got != 0 {
		t.Errorf("single = %v", got)
	}
	if got := Unfairness([]float64{0.5, 0.5, 0.5}); got != 0 {
		t.Errorf("uniform = %v", got)
	}
	if got := Unfairness([]float64{0, 1}); got != 1 {
		t.Errorf("max spread = %v, want 1", got)
	}
}

// Properties: U_ρ ∈ [0, max-min], symmetric under permutation, invariant
// under constant shifts.
func TestUnfairnessProperties(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) < 2 {
			return true
		}
		rhos := make([]float64, len(raw))
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			rhos[i] = math.Abs(math.Mod(v, 1))
		}
		u := Unfairness(rhos)
		mn, mx := rhos[0], rhos[0]
		for _, r := range rhos {
			mn = math.Min(mn, r)
			mx = math.Max(mx, r)
		}
		if u < -1e-12 || u > mx-mn+1e-12 {
			return false
		}
		// Permutation invariance: reverse.
		rev := make([]float64, len(rhos))
		for i, r := range rhos {
			rev[len(rhos)-1-i] = r
		}
		if math.Abs(Unfairness(rev)-u) > 1e-12 {
			return false
		}
		// Shift invariance.
		shifted := make([]float64, len(rhos))
		for i, r := range rhos {
			shifted[i] = r + 0.25
		}
		return math.Abs(Unfairness(shifted)-u) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUUP(t *testing.T) {
	rhos := []float64{1.0, 0.5, 0.3}
	// UUP_0 = 1 − (0.5+0.3)/2 = 0.6
	if got := UUP(rhos, 0); math.Abs(got-0.6) > 1e-12 {
		t.Errorf("UUP_0 = %v", got)
	}
	// UUP_2 = 0.3 − (1+0.5)/2 = −0.45
	if got := UUP(rhos, 2); math.Abs(got+0.45) > 1e-12 {
		t.Errorf("UUP_2 = %v", got)
	}
	if got := UUP([]float64{0.8}, 0); got != 0.8 {
		t.Errorf("single-center UUP = %v", got)
	}
}

// The potential Φ = Σ UUP telescopes to zero for any ratio vector — the
// documented algebraic identity behind the paper's Lemma 1 discussion.
func TestPotentialIdenticallyZero(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(20)
		rhos := make([]float64, n)
		for i := range rhos {
			rhos[i] = rng.Float64()
		}
		if got := Potential(rhos); math.Abs(got) > 1e-9 {
			t.Fatalf("trial %d: Φ = %v, want 0", trial, got)
		}
	}
}

func TestMinRatioCenter(t *testing.T) {
	rhos := []float64{0.9, 0.2, 0.2, 0.5}
	got := MinRatioCenter(rhos, []model.CenterID{0, 1, 2, 3})
	if got != 1 {
		t.Errorf("MinRatioCenter = %d, want 1 (tie toward smaller ID)", got)
	}
	got = MinRatioCenter(rhos, []model.CenterID{0, 3})
	if got != 3 {
		t.Errorf("restricted MinRatioCenter = %d, want 3", got)
	}
}

func TestRatiosAndSolutionUnfairness(t *testing.T) {
	in := &model.Instance{
		Centers: []model.Center{
			{ID: 0, Loc: geo.Pt(0, 0), Tasks: []model.TaskID{0, 1}},
			{ID: 1, Loc: geo.Pt(10, 0), Tasks: []model.TaskID{2}},
			{ID: 2, Loc: geo.Pt(20, 0)}, // no tasks → ρ = 1
		},
		Tasks: []model.Task{
			{ID: 0, Center: 0, Loc: geo.Pt(1, 0), Expiry: 10},
			{ID: 1, Center: 0, Loc: geo.Pt(2, 0), Expiry: 10},
			{ID: 2, Center: 1, Loc: geo.Pt(11, 0), Expiry: 10},
		},
		Workers: []model.Worker{{ID: 0, Home: 0, Loc: geo.Pt(0, 0), MaxT: 4}},
		Speed:   1,
		Bounds:  geo.NewRect(geo.Pt(0, 0), geo.Pt(30, 10)),
	}
	s := model.NewSolution(in)
	s.PerCenter[0].Routes = []model.Route{{Worker: 0, Center: 0, Tasks: []model.TaskID{0}}}
	rhos := Ratios(in, s)
	want := []float64{0.5, 0, 1}
	for i := range want {
		if math.Abs(rhos[i]-want[i]) > 1e-12 {
			t.Errorf("rho[%d] = %v, want %v", i, rhos[i], want[i])
		}
	}
	if got := SolutionUnfairness(in, s); math.Abs(got-Unfairness(want)) > 1e-12 {
		t.Errorf("SolutionUnfairness = %v", got)
	}
}

func TestComputeUtilization(t *testing.T) {
	in := &model.Instance{
		Centers: []model.Center{
			{ID: 0, Loc: geo.Pt(0, 0), Tasks: []model.TaskID{0, 1}, Workers: []model.WorkerID{0, 1}},
			{ID: 1, Loc: geo.Pt(100, 0), Tasks: []model.TaskID{2}},
		},
		Tasks: []model.Task{
			{ID: 0, Center: 0, Loc: geo.Pt(1, 0), Expiry: 100},
			{ID: 1, Center: 0, Loc: geo.Pt(2, 0), Expiry: 100},
			{ID: 2, Center: 1, Loc: geo.Pt(101, 0), Expiry: 100},
		},
		Workers: []model.Worker{
			{ID: 0, Home: 0, Loc: geo.Pt(0, 0), MaxT: 4},
			{ID: 1, Home: 0, Loc: geo.Pt(0, 0), MaxT: 4},
		},
		Speed:  1,
		Bounds: geo.NewRect(geo.Pt(0, 0), geo.Pt(200, 10)),
	}
	s := model.NewSolution(in)
	s.PerCenter[0].Routes = []model.Route{{Worker: 0, Center: 0, Tasks: []model.TaskID{0, 1}}}
	s.PerCenter[1].Routes = []model.Route{{Worker: 1, Center: 1, Tasks: []model.TaskID{2}}}
	s.Transfers = []model.Transfer{{Src: 0, Dst: 1, Worker: 1}}

	u := ComputeUtilization(in, s)
	if u.Workers != 2 || u.Active != 2 || u.Dispatched != 1 {
		t.Fatalf("counts: %+v", u)
	}
	if math.Abs(u.TasksPerActive-1.5) > 1e-12 {
		t.Errorf("TasksPerActive = %v", u.TasksPerActive)
	}
	// Worker 0: 0 -> c0 (0) -> t0 (1) -> t1 (1) = 2h. Worker 1: 100 to c1 +
	// 1 = 101h.
	if math.Abs(u.MaxRouteHours-101) > 1e-9 {
		t.Errorf("MaxRouteHours = %v", u.MaxRouteHours)
	}
	if math.Abs(u.MeanRouteHours-(2+101)/2.0) > 1e-9 {
		t.Errorf("MeanRouteHours = %v", u.MeanRouteHours)
	}
	if math.Abs(u.CapacityUsed-3.0/8.0) > 1e-12 {
		t.Errorf("CapacityUsed = %v", u.CapacityUsed)
	}
}

func TestComputeUtilizationEmpty(t *testing.T) {
	in := &model.Instance{
		Centers: []model.Center{{ID: 0, Loc: geo.Pt(0, 0)}},
		Speed:   1,
		Bounds:  geo.NewRect(geo.Pt(0, 0), geo.Pt(10, 10)),
	}
	s := model.NewSolution(in)
	u := ComputeUtilization(in, s)
	if u.Active != 0 || u.TasksPerActive != 0 || u.CapacityUsed != 0 {
		t.Fatalf("empty utilization: %+v", u)
	}
}
