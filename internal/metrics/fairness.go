package metrics

import (
	"math"
	"sort"
)

// The paper measures collaboration fairness with U_ρ (Eq. 3). The indices
// below are standard alternatives kept for extended analysis and the
// fairness-metric ablation: they let users confirm that IMTAO's improvements
// are not an artifact of the specific unfairness definition.

// Gini computes the Gini coefficient of the (non-negative) values:
// 0 = perfectly equal, values approaching 1 = maximally concentrated.
// It returns 0 for fewer than two values or an all-zero vector.
func Gini(values []float64) float64 {
	n := len(values)
	if n < 2 {
		return 0
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	var sum, weighted float64
	for i, v := range sorted {
		sum += v
		weighted += float64(i+1) * v
	}
	if sum == 0 {
		return 0
	}
	return (2*weighted - float64(n+1)*sum) / (float64(n) * sum)
}

// Jain computes Jain's fairness index: 1 = perfectly equal, 1/n = maximally
// unfair. It returns 1 for empty or all-zero input (nothing to be unfair
// about).
func Jain(values []float64) float64 {
	n := len(values)
	if n == 0 {
		return 1
	}
	var sum, sq float64
	for _, v := range values {
		sum += v
		sq += v * v
	}
	if sq == 0 {
		return 1
	}
	return sum * sum / (float64(n) * sq)
}

// MaxMinGap returns max - min of the values (0 for empty input): the
// worst-case pairwise ratio difference, an upper bound on U_ρ.
func MaxMinGap(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	mn, mx := values[0], values[0]
	for _, v := range values[1:] {
		mn = math.Min(mn, v)
		mx = math.Max(mx, v)
	}
	return mx - mn
}
