package perfgate

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func mustFlatten(t *testing.T, src string) map[string]any {
	t.Helper()
	var doc any
	if err := json.Unmarshal([]byte(src), &doc); err != nil {
		t.Fatal(err)
	}
	return Flatten(doc)
}

func TestFlattenKeysArraysByNameField(t *testing.T) {
	flat := mustFlatten(t, `{
		"benchmark": "game-engine",
		"presets": [
			{"name": "10k", "iterations": 139, "equilibrium_ok": true},
			{"name": "50k", "iterations": 767}
		]
	}`)
	for path, want := range map[string]any{
		"benchmark":                  "game-engine",
		"presets.10k.name":           "10k",
		"presets.10k.iterations":     float64(139),
		"presets.10k.equilibrium_ok": true,
		"presets.50k.iterations":     float64(767),
	} {
		if got, ok := flat[path]; !ok || got != want {
			t.Errorf("flat[%q] = %v (present=%v), want %v", path, got, ok, want)
		}
	}
}

func TestFlattenKeysPointsByParallelism(t *testing.T) {
	flat := mustFlatten(t, `{
		"datasets": [
			{"dataset": "SYN", "points": [
				{"parallelism": 1, "best_ms": 0.41},
				{"parallelism": 8, "best_ms": 0.39}
			]}
		]
	}`)
	if got := flat["datasets.SYN.points.8.best_ms"]; got != 0.39 {
		t.Errorf("points not keyed by parallelism: %v\nall: %v", got, flat)
	}
}

func TestFlattenFallsBackToIndex(t *testing.T) {
	// Duplicate names cannot key the array — indexes must kick in.
	flat := mustFlatten(t, `{"xs": [{"name": "a", "v": 1}, {"name": "a", "v": 2}]}`)
	if flat["xs.0.v"] != float64(1) || flat["xs.1.v"] != float64(2) {
		t.Errorf("index fallback failed: %v", flat)
	}
	// Scalar arrays index too.
	flat = mustFlatten(t, `{"xs": [10, 20]}`)
	if flat["xs.0"] != float64(10) || flat["xs.1"] != float64(20) {
		t.Errorf("scalar array: %v", flat)
	}
}

func TestMatchRuleWildcard(t *testing.T) {
	rules := []Rule{
		{Match: "presets.*.iterations", Direction: Equal},
		{Match: "presets.*.phase2_ms", Direction: HigherWorse, RelTol: 3},
	}
	if r, ok := matchRule("presets.10k.iterations", rules); !ok || r.Direction != Equal {
		t.Errorf("iterations rule: %+v ok=%v", r, ok)
	}
	if r, ok := matchRule("presets.50k.phase2_ms", rules); !ok || r.Direction != HigherWorse {
		t.Errorf("phase2_ms rule: %+v ok=%v", r, ok)
	}
	// A wildcard matches exactly one segment.
	if _, ok := matchRule("presets.10k.sub.iterations", rules); ok {
		t.Error("wildcard must not span segments")
	}
	if _, ok := matchRule("presets.iterations", rules); ok {
		t.Error("pattern longer than path must not match")
	}
}

func TestCompareDirections(t *testing.T) {
	base := map[string]any{"lat": 100.0, "rate": 0.99, "iters": 139.0, "fp": "d460", "ok": true}
	fresh := map[string]any{"lat": 100.0, "rate": 0.99, "iters": 139.0, "fp": "d460", "ok": true}
	rules := []Rule{
		{Match: "lat", Direction: HigherWorse, RelTol: 0.5},
		{Match: "rate", Direction: LowerWorse, AbsTol: 0.01},
		{Match: "iters", Direction: Equal},
		{Match: "fp", Direction: Equal},
		{Match: "ok", Direction: LowerWorse},
	}
	if rep := Compare(base, fresh, rules); !rep.OK() || rep.Gated != 5 {
		t.Fatalf("identical docs must pass: %+v", rep)
	}

	cases := []struct {
		name  string
		fresh map[string]any
		bad   bool
	}{
		{"latency within headroom", map[string]any{"lat": 149.0}, false},
		{"latency beyond headroom", map[string]any{"lat": 151.0}, true},
		{"latency improved a lot", map[string]any{"lat": 1.0}, false},
		{"rate dip within tol", map[string]any{"rate": 0.985}, false},
		{"rate collapsed", map[string]any{"rate": 0.9}, true},
		{"rate improved", map[string]any{"rate": 1.0}, false},
		{"iteration drift", map[string]any{"iters": 140.0}, true},
		{"fingerprint change", map[string]any{"fp": "beef"}, true},
		{"equilibrium lost", map[string]any{"ok": false}, true},
	}
	for _, tc := range cases {
		f := map[string]any{}
		for k, v := range fresh {
			f[k] = v
		}
		for k, v := range tc.fresh {
			f[k] = v
		}
		rep := Compare(base, f, rules)
		if got := rep.Regressions() > 0; got != tc.bad {
			var buf bytes.Buffer
			rep.Write(&buf, true)
			t.Errorf("%s: regression=%v, want %v\n%s", tc.name, got, tc.bad, buf.String())
		}
	}
}

func TestCompareIntersectionAndUngated(t *testing.T) {
	base := map[string]any{"a": 1.0, "b": 2.0, "c": 3.0}
	fresh := map[string]any{"a": 1.0, "c": 9.0, "d": 4.0}
	rules := []Rule{{Match: "a", Direction: Equal}}
	rep := Compare(base, fresh, rules)
	if rep.Gated != 1 || rep.Missing != 1 || rep.Ungated != 1 {
		t.Errorf("gated=%d missing=%d ungated=%d, want 1/1/1", rep.Gated, rep.Missing, rep.Ungated)
	}
	if !rep.OK() {
		t.Error("ungated drift in c must not fail the gate")
	}
}

func TestReportRequiresGatedComparisons(t *testing.T) {
	rep := Compare(map[string]any{"x": 1.0}, map[string]any{"x": 1.0},
		[]Rule{{Match: "nomatch", Direction: Equal}})
	if rep.OK() {
		t.Error("a gate that compared nothing must not pass")
	}
}

func TestLoadRules(t *testing.T) {
	rules, err := LoadRules(strings.NewReader(`{"rules": [
		{"match": "presets.*.phase2_ms", "direction": "higher_worse", "rel_tol": 3.0, "abs_tol": 250}
	]}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 1 || rules[0].RelTol != 3.0 || rules[0].AbsTol != 250 {
		t.Errorf("rules = %+v", rules)
	}
	for name, src := range map[string]string{
		"empty":         `{"rules": []}`,
		"bad direction": `{"rules": [{"match": "x", "direction": "sideways"}]}`,
		"no match":      `{"rules": [{"direction": "equal"}]}`,
		"negative tol":  `{"rules": [{"match": "x", "direction": "equal", "rel_tol": -1}]}`,
		"unknown field": `{"rules": [{"match": "x", "direction": "equal", "typo_tol": 1}]}`,
	} {
		if _, err := LoadRules(strings.NewReader(src)); err == nil {
			t.Errorf("%s: want error", name)
		}
	}
}
