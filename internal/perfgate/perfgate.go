// Package perfgate compares freshly produced benchmark artifacts
// (BENCH_*.json) against committed baselines and reports regressions.
//
// The gate is built for noisy CI machines: every gated metric carries an
// explicit direction and tolerance, so deterministic outputs (iteration
// counts, assignment totals, fingerprints) are compared exactly while
// wall-clock metrics get wide relative headroom. Comparison runs over the
// intersection of the two documents' metric paths — a baseline committed
// with three presets gates a fresh run that only exercised one, and extra
// metrics in either file are ignored rather than failed.
//
// Documents are flattened to dotted paths ("presets.10k.phase2_ms"); array
// elements are keyed by their "name", "dataset", or "parallelism" field
// when those are present and distinct, falling back to the element index,
// so bench presets stay addressable even if their order changes.
package perfgate

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Direction states which way a gated metric is allowed to move.
type Direction string

const (
	// HigherWorse gates a cost metric (latency, bytes): the fresh value
	// may not exceed baseline + tolerance.
	HigherWorse Direction = "higher_worse"
	// LowerWorse gates a quality metric (hit rate, speedup): the fresh
	// value may not fall below baseline - tolerance.
	LowerWorse Direction = "lower_worse"
	// Equal gates a deterministic metric: the fresh value must match the
	// baseline within tolerance (exactly, with zero tolerances).
	Equal Direction = "equal"
)

// Rule gates every metric path matching Match. Match is a dotted path where
// a "*" segment matches any single segment ("presets.*.phase2_ms"). The
// allowed drift is |base|*RelTol + AbsTol in the direction's bad sense.
// Booleans compare as 0/1; strings only support Equal (a non-Equal rule on
// a string still requires equality).
type Rule struct {
	Match     string    `json:"match"`
	Direction Direction `json:"direction"`
	RelTol    float64   `json:"rel_tol,omitempty"`
	AbsTol    float64   `json:"abs_tol,omitempty"`
}

// ruleFile is the on-disk rules schema (see perfgate.rules.json).
type ruleFile struct {
	Rules []Rule `json:"rules"`
}

// LoadRules parses a rules JSON document ({"rules":[{"match":...},...]}).
func LoadRules(r io.Reader) ([]Rule, error) {
	var f ruleFile
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("perfgate: rules: %w", err)
	}
	if len(f.Rules) == 0 {
		return nil, fmt.Errorf("perfgate: rules file defines no rules")
	}
	for i, r := range f.Rules {
		if r.Match == "" {
			return nil, fmt.Errorf("perfgate: rule %d has no match pattern", i)
		}
		switch r.Direction {
		case HigherWorse, LowerWorse, Equal:
		default:
			return nil, fmt.Errorf("perfgate: rule %q: unknown direction %q", r.Match, r.Direction)
		}
		if r.RelTol < 0 || r.AbsTol < 0 {
			return nil, fmt.Errorf("perfgate: rule %q: negative tolerance", r.Match)
		}
	}
	return f.Rules, nil
}

// Flatten reduces a decoded JSON document to a map of dotted metric paths
// to scalar leaves. Array elements are keyed by the first of their "name",
// "dataset", or "parallelism" fields that exists on every element with
// distinct scalar values; otherwise by index.
func Flatten(doc any) map[string]any {
	out := make(map[string]any)
	flattenInto(out, "", doc)
	return out
}

func flattenInto(out map[string]any, prefix string, v any) {
	switch x := v.(type) {
	case map[string]any:
		for k, val := range x {
			flattenInto(out, joinPath(prefix, k), val)
		}
	case []any:
		keys := elementKeys(x)
		for i, el := range x {
			flattenInto(out, joinPath(prefix, keys[i]), el)
		}
	default:
		out[prefix] = v
	}
}

func joinPath(prefix, seg string) string {
	if prefix == "" {
		return seg
	}
	return prefix + "." + seg
}

// arrayKeyFields, in precedence order, are the element fields that can key
// an array: bench presets carry "name", sweep groups "dataset", and sweep
// points "parallelism".
var arrayKeyFields = [...]string{"name", "dataset", "parallelism"}

func elementKeys(arr []any) []string {
	for _, field := range arrayKeyFields {
		keys := make([]string, len(arr))
		seen := make(map[string]bool, len(arr))
		ok := len(arr) > 0
		for i, el := range arr {
			m, isMap := el.(map[string]any)
			if !isMap {
				ok = false
				break
			}
			s := scalarKey(m[field])
			if s == "" || seen[s] {
				ok = false
				break
			}
			seen[s] = true
			keys[i] = s
		}
		if ok {
			return keys
		}
	}
	keys := make([]string, len(arr))
	for i := range arr {
		keys[i] = strconv.Itoa(i)
	}
	return keys
}

// scalarKey renders a value usable as a path segment, "" when it is not.
func scalarKey(v any) string {
	switch x := v.(type) {
	case string:
		if x == "" || strings.ContainsAny(x, ". ") {
			return ""
		}
		return x
	case float64:
		return strconv.FormatFloat(x, 'g', -1, 64)
	case bool:
		return strconv.FormatBool(x)
	}
	return ""
}

// Finding is one gated comparison.
type Finding struct {
	Path       string
	Rule       string // the Match pattern that gated this path
	Direction  Direction
	Base       any
	Fresh      any
	Regression bool
	Detail     string // human-readable verdict
}

// Report is the outcome of one Compare call.
type Report struct {
	Findings []Finding // gated comparisons, path-sorted
	Gated    int       // paths compared under a rule
	Ungated  int       // shared paths no rule matched (informational)
	Missing  int       // baseline paths absent from the fresh document
}

// Regressions returns the number of gated comparisons that failed.
func (r *Report) Regressions() int {
	n := 0
	for _, f := range r.Findings {
		if f.Regression {
			n++
		}
	}
	return n
}

// OK reports whether the gate passes: at least one metric was actually
// gated and none regressed. Zero gated comparisons is a failure — it means
// the rules and the artifacts no longer talk about the same metrics, which
// must not pass silently.
func (r *Report) OK() bool {
	return r.Gated > 0 && r.Regressions() == 0
}

// Write renders the report; with verbose every gated comparison prints,
// otherwise only regressions and the summary line.
func (r *Report) Write(w io.Writer, verbose bool) {
	for _, f := range r.Findings {
		if !f.Regression && !verbose {
			continue
		}
		status := "ok"
		if f.Regression {
			status = "REGRESSION"
		}
		fmt.Fprintf(w, "%-10s %-55s %s\n", status, f.Path, f.Detail)
	}
	fmt.Fprintf(w, "perfgate: %d gated, %d regressions, %d ungated, %d missing from fresh\n",
		r.Gated, r.Regressions(), r.Ungated, r.Missing)
}

// Compare gates every baseline path present in fresh under the first
// matching rule. Paths missing from fresh are counted but not failed
// (partial CI runs gate the presets they produced); paths with no matching
// rule are informational.
func Compare(base, fresh map[string]any, rules []Rule) *Report {
	paths := make([]string, 0, len(base))
	for p := range base {
		paths = append(paths, p)
	}
	sort.Strings(paths)

	rep := &Report{}
	for _, p := range paths {
		fv, ok := fresh[p]
		if !ok {
			rep.Missing++
			continue
		}
		rule, ok := matchRule(p, rules)
		if !ok {
			rep.Ungated++
			continue
		}
		rep.Gated++
		f := compareOne(p, rule, base[p], fv)
		rep.Findings = append(rep.Findings, f)
	}
	return rep
}

func matchRule(path string, rules []Rule) (Rule, bool) {
	segs := strings.Split(path, ".")
	for _, r := range rules {
		pat := strings.Split(r.Match, ".")
		if len(pat) != len(segs) {
			continue
		}
		ok := true
		for i, ps := range pat {
			if ps != "*" && ps != segs[i] {
				ok = false
				break
			}
		}
		if ok {
			return r, true
		}
	}
	return Rule{}, false
}

func compareOne(path string, rule Rule, bv, fv any) Finding {
	f := Finding{Path: path, Rule: rule.Match, Direction: rule.Direction, Base: bv, Fresh: fv}

	bn, bNum := asNumber(bv)
	fn, fNum := asNumber(fv)
	switch {
	case bNum && fNum:
		tol := math.Abs(bn)*rule.RelTol + rule.AbsTol
		delta := fn - bn
		switch rule.Direction {
		case HigherWorse:
			f.Regression = delta > tol
		case LowerWorse:
			f.Regression = -delta > tol
		case Equal:
			f.Regression = math.Abs(delta) > tol
		}
		f.Detail = fmt.Sprintf("base=%v fresh=%v delta=%+g tol=%g", bv, fv, delta, tol)
	default:
		// Non-numeric leaves (fingerprints, version strings) or a type
		// change between the documents: equality is the only meaningful
		// comparison, whatever the rule says.
		f.Regression = fmt.Sprintf("%v", bv) != fmt.Sprintf("%v", fv)
		f.Detail = fmt.Sprintf("base=%v fresh=%v", bv, fv)
	}
	return f
}

// asNumber converts a JSON leaf to a comparable float: numbers as-is,
// booleans as 0/1 (so equilibrium_ok gates as lower-is-worse too).
func asNumber(v any) (float64, bool) {
	switch x := v.(type) {
	case float64:
		return x, true
	case bool:
		if x {
			return 1, true
		}
		return 0, true
	case json.Number:
		n, err := x.Float64()
		return n, err == nil
	}
	return 0, false
}
