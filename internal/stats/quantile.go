package stats

import (
	"math"
	"sort"
	"time"
)

// Quantile returns the exact p-quantile (0 ≤ p ≤ 1) of xs by the
// nearest-rank method: the value at rank ⌈p·n⌉ of the ascending sample.
// This is the same definition the obs.Quantile recorder approximates with
// log buckets, so bench numbers computed here and live numbers scraped from
// /metrics agree up to the recorder's relative-error bound (property-tested
// in the obs package). xs is not modified; an empty sample returns 0.
func Quantile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return quantileSorted(sorted, p)
}

// QuantilesOf computes several quantiles of xs with one sort — use it over
// repeated Quantile calls when reporting a p50/p99/p999 triple.
func QuantilesOf(xs []float64, ps ...float64) []float64 {
	out := make([]float64, len(ps))
	if len(xs) == 0 {
		return out
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	for i, p := range ps {
		out[i] = quantileSorted(sorted, p)
	}
	return out
}

func quantileSorted(sorted []float64, p float64) float64 {
	i := int(math.Ceil(p*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// QuantileDur is Quantile over durations, for the latency sweeps in
// cmd/imtao-bench.
func QuantileDur(ds []time.Duration, p float64) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	i := int(math.Ceil(p*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
