package stats

import (
	"errors"
	"math"
)

// Paired significance tests for method comparisons: the experiment harness
// runs every method on the same seeded instances, so differences are
// naturally paired per seed.

// ErrTooFewPairs is returned when a test needs more data.
var ErrTooFewPairs = errors.New("stats: need at least two pairs")

// PairedT runs a paired t-test on the per-seed differences a[i] − b[i].
// It returns the t statistic and the two-sided p-value (normal
// approximation for df ≥ 30, Student-t via an incomplete-beta-free
// approximation below). A zero-variance difference vector returns t = ±Inf
// with p = 0 when the mean difference is non-zero, and t = 0, p = 1 when
// every pair ties.
func PairedT(a, b []float64) (t, p float64, err error) {
	if len(a) != len(b) {
		return 0, 0, errors.New("stats: paired samples must have equal length")
	}
	n := len(a)
	if n < 2 {
		return 0, 0, ErrTooFewPairs
	}
	diffs := make([]float64, n)
	for i := range a {
		diffs[i] = a[i] - b[i]
	}
	s := Summarize(diffs)
	if s.Std == 0 {
		if s.Mean == 0 {
			return 0, 1, nil
		}
		return math.Inf(sign(s.Mean)), 0, nil
	}
	t = s.Mean / (s.Std / math.Sqrt(float64(n)))
	p = 2 * (1 - studentCDF(math.Abs(t), float64(n-1)))
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	return t, p, nil
}

func sign(v float64) int {
	if v < 0 {
		return -1
	}
	return 1
}

// studentCDF approximates the Student-t CDF at x with df degrees of freedom
// using the Hill (1970) normal-correction expansion — accurate to ~1e-3 for
// df ≥ 3, which is ample for reporting experiment significance.
func studentCDF(x, df float64) float64 {
	if df <= 0 {
		return math.NaN()
	}
	// For large df the t distribution is normal.
	if df > 100 {
		return normalCDF(x)
	}
	// Transform t -> z via the Wallace approximation.
	a := df - 0.5
	b := 48 * a * a
	z := math.Sqrt(a * math.Log(1+x*x/df))
	z = z + (z*z*z+3*z)/b
	return normalCDF(z)
}

// normalCDF is Φ(x) via erfc.
func normalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// SignTest runs the two-sided sign test on the pairs: it counts how often
// a[i] > b[i] among non-ties and returns the number of wins, the number of
// non-tied pairs, and the two-sided binomial p-value (exact for n ≤ 30,
// normal approximation beyond).
func SignTest(a, b []float64) (wins, nonTies int, p float64, err error) {
	if len(a) != len(b) {
		return 0, 0, 0, errors.New("stats: paired samples must have equal length")
	}
	for i := range a {
		switch {
		case a[i] > b[i]:
			wins++
			nonTies++
		case a[i] < b[i]:
			nonTies++
		}
	}
	if nonTies == 0 {
		return 0, 0, 1, nil
	}
	k := wins
	if k > nonTies-k {
		k = nonTies - k
	}
	if nonTies <= 30 {
		// Exact two-sided binomial tail with p = 0.5.
		var tail float64
		for i := 0; i <= k; i++ {
			tail += binomPMF(nonTies, i)
		}
		p = math.Min(1, 2*tail)
		return wins, nonTies, p, nil
	}
	// Normal approximation with continuity correction.
	mean := float64(nonTies) / 2
	sd := math.Sqrt(float64(nonTies)) / 2
	z := (float64(k) + 0.5 - mean) / sd
	p = math.Min(1, 2*normalCDF(z))
	return wins, nonTies, p, nil
}

func binomPMF(n, k int) float64 {
	// C(n, k) * 0.5^n computed in log space for stability.
	lg := lgamma(float64(n+1)) - lgamma(float64(k+1)) - lgamma(float64(n-k+1))
	return math.Exp(lg + float64(n)*math.Log(0.5))
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}
