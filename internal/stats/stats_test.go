package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{5})
	if s.N != 1 || s.Mean != 5 || s.Std != 0 || s.Min != 5 || s.Max != 5 || s.Median != 5 {
		t.Fatalf("single summary = %+v", s)
	}
}

func TestSummarizeKnown(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || s.Mean != 5 {
		t.Fatalf("summary = %+v", s)
	}
	// Sample std of this classic dataset is sqrt(32/7).
	if math.Abs(s.Std-math.Sqrt(32.0/7)) > 1e-12 {
		t.Errorf("std = %v", s.Std)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Errorf("min/max = %v/%v", s.Min, s.Max)
	}
	if s.Median != 4.5 {
		t.Errorf("median = %v", s.Median)
	}
}

func TestSummarizeOddMedian(t *testing.T) {
	s := Summarize([]float64{3, 1, 2})
	if s.Median != 2 {
		t.Errorf("median = %v, want 2", s.Median)
	}
}

func TestSummarizeProperties(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, math.Mod(v, 1e6))
			}
		}
		if len(xs) == 0 {
			return true
		}
		s := Summarize(xs)
		if s.Min > s.Median+1e-9 || s.Median > s.Max+1e-9 {
			return false
		}
		if s.Mean < s.Min-1e-9 || s.Mean > s.Max+1e-9 {
			return false
		}
		if s.Std < 0 {
			return false
		}
		return s.CI95Lo <= s.Mean+1e-9 && s.Mean <= s.CI95Hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSeries(t *testing.T) {
	se := NewSeries("assigned", [][]float64{{1, 3}, {5, 5}, {7}})
	if se.Name != "assigned" || len(se.Points) != 3 {
		t.Fatalf("series = %+v", se)
	}
	means := se.Means()
	want := []float64{2, 5, 7}
	for i := range want {
		if means[i] != want[i] {
			t.Errorf("means[%d] = %v, want %v", i, means[i], want[i])
		}
	}
}
