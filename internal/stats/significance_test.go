package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestPairedTErrors(t *testing.T) {
	if _, _, err := PairedT([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch must fail")
	}
	if _, _, err := PairedT([]float64{1}, []float64{1}); err == nil {
		t.Error("single pair must fail")
	}
}

func TestPairedTTies(t *testing.T) {
	tt, p, err := PairedT([]float64{3, 3, 3}, []float64{3, 3, 3})
	if err != nil {
		t.Fatal(err)
	}
	if tt != 0 || p != 1 {
		t.Fatalf("all-ties: t=%v p=%v", tt, p)
	}
	// Constant non-zero difference: infinitely significant.
	tt, p, err = PairedT([]float64{4, 4, 4}, []float64{3, 3, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(tt, 1) || p != 0 {
		t.Fatalf("constant diff: t=%v p=%v", tt, p)
	}
}

func TestPairedTDetectsClearDifference(t *testing.T) {
	rng := rand.New(rand.NewSource(231))
	n := 20
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		base := rng.Float64() * 100
		a[i] = base + 5 + rng.NormFloat64() // consistently ~5 higher
		b[i] = base + rng.NormFloat64()
	}
	tt, p, err := PairedT(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if tt <= 0 {
		t.Fatalf("t = %v, want positive", tt)
	}
	if p > 0.01 {
		t.Fatalf("p = %v, want clearly significant", p)
	}
}

func TestPairedTNullIsInsignificant(t *testing.T) {
	rng := rand.New(rand.NewSource(232))
	significant := 0
	const trials = 50
	for trial := 0; trial < trials; trial++ {
		n := 12
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = rng.NormFloat64()
			b[i] = rng.NormFloat64()
		}
		_, p, err := PairedT(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if p < 0.05 {
			significant++
		}
	}
	// Under the null ~5% of trials are significant; allow generous slack.
	if significant > trials/4 {
		t.Fatalf("%d/%d null trials significant", significant, trials)
	}
}

func TestSignTest(t *testing.T) {
	// 9 wins out of 10 non-ties: clearly significant.
	a := []float64{2, 2, 2, 2, 2, 2, 2, 2, 2, 0}
	b := []float64{1, 1, 1, 1, 1, 1, 1, 1, 1, 1}
	wins, nonTies, p, err := SignTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if wins != 9 || nonTies != 10 {
		t.Fatalf("wins=%d nonTies=%d", wins, nonTies)
	}
	if p > 0.05 {
		t.Fatalf("p = %v, want significant", p)
	}
	// All ties.
	_, _, p, err = SignTest([]float64{1, 1}, []float64{1, 1})
	if err != nil || p != 1 {
		t.Fatalf("ties: p=%v err=%v", p, err)
	}
	// Balanced wins: insignificant.
	a = []float64{2, 0, 2, 0, 2, 0}
	b = []float64{1, 1, 1, 1, 1, 1}
	_, _, p, err = SignTest(a, b)
	if err != nil || p < 0.5 {
		t.Fatalf("balanced: p=%v err=%v", p, err)
	}
	if _, _, _, err := SignTest([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch must fail")
	}
}

func TestSignTestLargeNormalApprox(t *testing.T) {
	rng := rand.New(rand.NewSource(233))
	n := 100
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		a[i] = rng.Float64() + 0.3 // wins ~80% of the time
		b[i] = rng.Float64()
	}
	wins, nonTies, p, err := SignTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if nonTies != n {
		t.Fatalf("nonTies = %d", nonTies)
	}
	if wins <= n/2 {
		t.Fatalf("wins = %d, expected a clear majority", wins)
	}
	if p > 0.001 {
		t.Fatalf("p = %v, want very significant", p)
	}
}

func TestStudentCDFSanity(t *testing.T) {
	// Symmetric around 0.
	if got := studentCDF(0, 10); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("CDF(0) = %v", got)
	}
	// Approaches the normal for large df.
	if got, want := studentCDF(1.96, 1e6), normalCDF(1.96); math.Abs(got-want) > 1e-3 {
		t.Errorf("large-df CDF = %v, want %v", got, want)
	}
	// Known quantile: t_{0.975, df=10} ≈ 2.228.
	if got := studentCDF(2.228, 10); math.Abs(got-0.975) > 5e-3 {
		t.Errorf("CDF(2.228; 10) = %v, want ≈0.975", got)
	}
	if !math.IsNaN(studentCDF(1, 0)) {
		t.Error("df=0 must be NaN")
	}
}
