// Package stats provides the small statistical toolkit used by the
// experiment harness: summary statistics and multi-seed aggregation for the
// metric series reported in the paper's figures.
package stats

import (
	"math"
	"sort"
)

// Summary holds descriptive statistics of a sample.
type Summary struct {
	N              int
	Mean, Std      float64
	Min, Max       float64
	Median         float64
	CI95Lo, CI95Hi float64 // normal-approximation 95% confidence interval of the mean
}

// Summarize computes summary statistics. An empty sample yields a zero
// Summary with N == 0.
func Summarize(xs []float64) Summary {
	n := len(xs)
	if n == 0 {
		return Summary{}
	}
	var sum float64
	mn, mx := xs[0], xs[0]
	for _, x := range xs {
		sum += x
		mn = math.Min(mn, x)
		mx = math.Max(mx, x)
	}
	mean := sum / float64(n)
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	std := 0.0
	if n > 1 {
		std = math.Sqrt(ss / float64(n-1))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	med := sorted[n/2]
	if n%2 == 0 {
		med = (sorted[n/2-1] + sorted[n/2]) / 2
	}
	se := std / math.Sqrt(float64(n))
	return Summary{
		N: n, Mean: mean, Std: std, Min: mn, Max: mx, Median: med,
		CI95Lo: mean - 1.96*se, CI95Hi: mean + 1.96*se,
	}
}

// Series aggregates one metric across seeds for each point of a parameter
// sweep: Points[i] summarizes all seed runs at sweep position i.
type Series struct {
	Name   string
	Points []Summary
}

// NewSeries builds a Series from per-point samples: samples[i] holds the
// seed observations at sweep position i.
func NewSeries(name string, samples [][]float64) Series {
	s := Series{Name: name, Points: make([]Summary, len(samples))}
	for i, xs := range samples {
		s.Points[i] = Summarize(xs)
	}
	return s
}

// Means returns the per-point means of the series.
func (s Series) Means() []float64 {
	out := make([]float64, len(s.Points))
	for i, p := range s.Points {
		out[i] = p.Mean
	}
	return out
}
