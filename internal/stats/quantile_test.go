package stats

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"imtao/internal/obs"
)

// TestQuantileNearestRank pins the nearest-rank definition on hand-checked
// samples, including the edge ranks.
func TestQuantileNearestRank(t *testing.T) {
	xs := []float64{30, 10, 20, 40, 50} // unsorted on purpose
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 10}, {0.1, 10}, {0.2, 10}, {0.21, 20}, {0.5, 30},
		{0.8, 40}, {0.81, 50}, {0.99, 50}, {1, 50},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.p); got != c.want {
			t.Errorf("Quantile(p=%g) = %g, want %g", c.p, got, c.want)
		}
	}
	if xs[0] != 30 {
		t.Error("Quantile mutated its input")
	}
	if got := Quantile(nil, 0.5); got != 0 {
		t.Errorf("Quantile(nil) = %g, want 0", got)
	}
	if got := QuantilesOf(xs, 0.5, 1); got[0] != 30 || got[1] != 50 {
		t.Errorf("QuantilesOf = %v, want [30 50]", got)
	}
}

// TestQuantileDur mirrors the float64 path for durations.
func TestQuantileDur(t *testing.T) {
	ds := []time.Duration{3 * time.Millisecond, time.Millisecond, 2 * time.Millisecond}
	if got := QuantileDur(ds, 0.5); got != 2*time.Millisecond {
		t.Errorf("QuantileDur p50 = %v, want 2ms", got)
	}
	if got := QuantileDur(ds, 1); got != 3*time.Millisecond {
		t.Errorf("QuantileDur p100 = %v, want 3ms", got)
	}
	if got := QuantileDur(nil, 0.5); got != 0 {
		t.Errorf("QuantileDur(nil) = %v, want 0", got)
	}
}

// TestQuantileAgreesWithRecorder is the property test tying the two quantile
// implementations together: on identical samples, the exact nearest-rank
// value here and the log-bucketed obs.Quantile reconstruction must agree to
// within the recorder's documented relative-error bound. This is what lets
// BENCH_game.json (computed exactly) and /metrics (scraped from recorders)
// be compared directly.
func TestQuantileAgreesWithRecorder(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		n := 100 + rng.Intn(5000)
		xs := make([]float64, n)
		rec := obs.NewQuantile()
		for i := range xs {
			// Latency-shaped: log-uniform over 1µs … 1s.
			v := math.Exp(rng.Float64()*math.Log(1e6)) * 1e-6
			xs[i] = v
			rec.Observe(v)
		}
		snap := rec.Snapshot()
		for _, p := range []float64{0.5, 0.9, 0.99, 0.999} {
			exact := Quantile(xs, p)
			approx := snap.Quantile(p)
			if rel := math.Abs(approx-exact) / exact; rel > 0.04 {
				t.Errorf("trial %d p%g: exact %.6g vs recorder %.6g (rel err %.3f)",
					trial, p*100, exact, approx, rel)
			}
		}
		if snap.Quantile(1) != Quantile(xs, 1) {
			t.Errorf("trial %d: recorder max %g != exact max %g",
				trial, snap.Quantile(1), Quantile(xs, 1))
		}
	}
}
