// Package render draws CMCTA instances and solutions as standalone SVG
// documents: Voronoi cells of the service-area partition, center / worker /
// task glyphs, delivery routes, and inter-center workforce transfers.
// It exists for debugging, documentation and the visualize example; output
// is plain SVG 1.1 built with the standard library only.
package render

import (
	"fmt"
	"io"
	"strings"

	"imtao/internal/core"
	"imtao/internal/geo"
	"imtao/internal/model"
)

// palette cycles route colors per center.
var palette = []string{
	"#1f77b4", "#ff7f0e", "#2ca02c", "#d62728", "#9467bd",
	"#8c564b", "#e377c2", "#7f7f7f", "#bcbd22", "#17becf",
}

// Options tunes the rendering.
type Options struct {
	// WidthPx is the SVG pixel width; height follows the instance's aspect
	// ratio. Default 800.
	WidthPx float64
	// ShowCells draws the Voronoi partition.
	ShowCells bool
	// ShowRoutes draws delivery routes of the solution (ignored when no
	// solution is given).
	ShowRoutes bool
	// ShowTransfers draws dashed arrows for workforce transfers.
	ShowTransfers bool
}

// Instance renders the instance (and optional solution) as SVG to w.
func Instance(w io.Writer, in *model.Instance, sol *model.Solution, opt Options) error {
	if opt.WidthPx <= 0 {
		opt.WidthPx = 800
	}
	bw, bh := in.Bounds.Width(), in.Bounds.Height()
	if bw <= 0 || bh <= 0 {
		return fmt.Errorf("render: degenerate bounds %+v", in.Bounds)
	}
	scale := opt.WidthPx / bw
	heightPx := bh * scale
	// SVG y grows downward; flip.
	tx := func(p geo.Point) (float64, float64) {
		return (p.X - in.Bounds.Min.X) * scale, heightPx - (p.Y-in.Bounds.Min.Y)*scale
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">`+"\n",
		opt.WidthPx, heightPx, opt.WidthPx, heightPx)
	b.WriteString(`<rect width="100%" height="100%" fill="#fcfcfc"/>` + "\n")

	if opt.ShowCells {
		sites := make([]geo.Point, len(in.Centers))
		for i, c := range in.Centers {
			sites[i] = c.Loc
		}
		diagram, err := partitionDiagram(in)
		if err == nil {
			for ci, cell := range diagram {
				if len(cell) < 3 {
					continue
				}
				var pts []string
				for _, p := range cell {
					x, y := tx(p)
					pts = append(pts, fmt.Sprintf("%.1f,%.1f", x, y))
				}
				fmt.Fprintf(&b, `<polygon points="%s" fill="%s" fill-opacity="0.06" stroke="#bbb" stroke-width="1"/>`+"\n",
					strings.Join(pts, " "), palette[ci%len(palette)])
			}
		}
	}

	// Routes first so glyphs draw on top.
	if sol != nil && opt.ShowRoutes {
		for ci := range sol.PerCenter {
			color := palette[ci%len(palette)]
			for _, r := range sol.PerCenter[ci].Routes {
				if len(r.Tasks) == 0 {
					continue
				}
				wk := in.Worker(r.Worker)
				c := in.Center(r.Center)
				var pts []string
				for _, p := range routePoints(in, wk, c, r.Tasks) {
					x, y := tx(p)
					pts = append(pts, fmt.Sprintf("%.1f,%.1f", x, y))
				}
				fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.4" stroke-opacity="0.75"/>`+"\n",
					strings.Join(pts, " "), color)
			}
		}
	}

	if sol != nil && opt.ShowTransfers {
		for _, t := range sol.Transfers {
			x1, y1 := tx(in.Center(t.Src).Loc)
			x2, y2 := tx(in.Center(t.Dst).Loc)
			fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#d62728" stroke-width="1.6" stroke-dasharray="6 4"/>`+"\n",
				x1, y1, x2, y2)
		}
	}

	for _, task := range in.Tasks {
		x, y := tx(task.Loc)
		fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="2.2" fill="#444" fill-opacity="0.65"/>`+"\n", x, y)
	}
	for _, wk := range in.Workers {
		x, y := tx(wk.Loc)
		fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="5" height="5" fill="#2ca02c" fill-opacity="0.8"/>`+"\n", x-2.5, y-2.5)
	}
	for ci, c := range in.Centers {
		x, y := tx(c.Loc)
		fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="6" fill="%s" stroke="#222" stroke-width="1.2"/>`+"\n",
			x, y, palette[ci%len(palette)])
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="10" fill="#222">c%d</text>`+"\n", x+8, y+4, ci)
	}

	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// routePoints returns the polyline of one route: worker → center → tasks.
func routePoints(in *model.Instance, w *model.Worker, c *model.Center, tasks []model.TaskID) []geo.Point {
	pts := []geo.Point{w.Loc, c.Loc}
	for _, tid := range tasks {
		pts = append(pts, in.Task(tid).Loc)
	}
	return pts
}

// partitionDiagram computes the clipped Voronoi cell polygons of the
// instance's centers.
func partitionDiagram(in *model.Instance) ([]geo.Polygon, error) {
	_, d, err := core.Partition(in)
	if err != nil {
		return nil, err
	}
	return d.Cells, nil
}
