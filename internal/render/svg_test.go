package render

import (
	"bytes"
	"strings"
	"testing"

	"imtao/internal/core"
	"imtao/internal/geo"
	"imtao/internal/model"
	"imtao/internal/workload"
)

func testInstance(t *testing.T) *model.Instance {
	t.Helper()
	p := workload.Defaults(workload.SYN)
	p.NumTasks, p.NumWorkers, p.NumCenters = 30, 10, 4
	raw, err := workload.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	in, _, err := core.Partition(raw)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestInstanceSVG(t *testing.T) {
	in := testInstance(t)
	var buf bytes.Buffer
	if err := Instance(&buf, in, nil, Options{ShowCells: true}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "<svg") || !strings.HasSuffix(strings.TrimSpace(out), "</svg>") {
		t.Fatal("not a complete SVG document")
	}
	if strings.Count(out, "<circle") < 4 {
		t.Error("missing center/task glyphs")
	}
	if strings.Count(out, "<polygon") < 4 {
		t.Error("missing Voronoi cells")
	}
	if strings.Count(out, "<rect") < 10 {
		t.Error("missing worker glyphs")
	}
}

func TestInstanceSVGWithSolution(t *testing.T) {
	in := testInstance(t)
	rep, err := core.Run(in, core.Config{Method: core.Method{Assigner: core.Seq, Collab: core.BDC}})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	err = Instance(&buf, in, rep.Solution, Options{ShowCells: true, ShowRoutes: true, ShowTransfers: true})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "<polyline") {
		t.Error("missing route polylines")
	}
	if rep.Transfers > 0 && !strings.Contains(out, "stroke-dasharray") {
		t.Error("missing transfer arrows")
	}
}

func TestInstanceSVGDegenerateBounds(t *testing.T) {
	in := &model.Instance{
		Centers: []model.Center{{ID: 0, Loc: geo.Pt(0, 0)}},
		Speed:   1,
	}
	var buf bytes.Buffer
	if err := Instance(&buf, in, nil, Options{}); err == nil {
		t.Error("degenerate bounds must error")
	}
}
