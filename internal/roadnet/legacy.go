package roadnet

import (
	"container/heap"
	"math"
	"sync"

	"imtao/internal/geo"
)

// LegacyNetwork is the pre-oracle road network implementation — a global
// mutex in front of a map cache, full-cache eviction on overflow, and boxed
// container/heap Dijkstra per miss — frozen verbatim as the baseline the
// oracle microbenchmarks and BENCH_oracle.json measure against. It is not
// wired into the pipeline; use Network.
type LegacyNetwork struct {
	bounds       geo.Rect
	nx, ny       int
	stepX, stepY float64
	speed        float64
	congestion   []float64

	mu       sync.Mutex
	cache    map[int][]float64
	cacheCap int
}

// NewLegacy builds the baseline network with the same geometry semantics as
// New. Benchmark use only.
func NewLegacy(bounds geo.Rect, nx, ny int, speed float64) (*LegacyNetwork, error) {
	if _, err := New(bounds, nx, ny, speed); err != nil {
		return nil, err
	}
	n := &LegacyNetwork{
		bounds: bounds,
		nx:     nx, ny: ny,
		stepX:      bounds.Width() / float64(nx-1),
		stepY:      bounds.Height() / float64(ny-1),
		speed:      speed,
		congestion: make([]float64, nx*ny),
		cache:      make(map[int][]float64),
		cacheCap:   512,
	}
	for i := range n.congestion {
		n.congestion[i] = 1
	}
	return n, nil
}

// SetCongestionDisk mirrors Network.SetCongestionDisk.
func (n *LegacyNetwork) SetCongestionDisk(p geo.Point, radius, factor float64) {
	if factor < 1 {
		factor = 1
	}
	for id := 0; id < n.nx*n.ny; id++ {
		if n.nodeLoc(id).Dist(p) <= radius {
			n.congestion[id] = factor
		}
	}
	n.mu.Lock()
	n.cache = make(map[int][]float64)
	n.mu.Unlock()
}

// FlushCache drops every cached distance table (benchmark support, so the
// miss path can be measured repeatedly).
func (n *LegacyNetwork) FlushCache() {
	n.mu.Lock()
	n.cache = make(map[int][]float64)
	n.mu.Unlock()
}

func (n *LegacyNetwork) nodeLoc(id int) geo.Point {
	x, y := id%n.nx, id/n.nx
	return geo.Pt(n.bounds.Min.X+float64(x)*n.stepX, n.bounds.Min.Y+float64(y)*n.stepY)
}

func (n *LegacyNetwork) nearestNode(p geo.Point) int {
	x := int(math.Round((p.X - n.bounds.Min.X) / n.stepX))
	y := int(math.Round((p.Y - n.bounds.Min.Y) / n.stepY))
	if x < 0 {
		x = 0
	}
	if x >= n.nx {
		x = n.nx - 1
	}
	if y < 0 {
		y = 0
	}
	if y >= n.ny {
		y = n.ny - 1
	}
	return y*n.nx + x
}

// TravelTime is the baseline query path: snap, global-mutex cache lookup,
// boxed-heap Dijkstra on miss.
func (n *LegacyNetwork) TravelTime(a, b geo.Point) float64 {
	sa, sb := n.nearestNode(a), n.nearestNode(b)
	snap := (a.Dist(n.nodeLoc(sa)) + b.Dist(n.nodeLoc(sb))) / n.speed
	if sa == sb {
		return snap
	}
	return snap + n.shortest(sa)[sb]
}

func (n *LegacyNetwork) shortest(src int) []float64 {
	n.mu.Lock()
	if d, ok := n.cache[src]; ok {
		n.mu.Unlock()
		return d
	}
	n.mu.Unlock()
	dist := n.dijkstra(src)
	n.mu.Lock()
	if len(n.cache) >= n.cacheCap {
		n.cache = make(map[int][]float64) // simple full eviction
	}
	n.cache[src] = dist
	n.mu.Unlock()
	return dist
}

func (n *LegacyNetwork) dijkstra(src int) []float64 {
	total := n.nx * n.ny
	dist := make([]float64, total)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	pq := &legacyHeap{{id: src, d: 0}}
	for pq.Len() > 0 {
		cur := heap.Pop(pq).(legacyEntry)
		if cur.d > dist[cur.id] {
			continue
		}
		x, y := cur.id%n.nx, cur.id/n.nx
		for _, nb := range [4][2]int{{x - 1, y}, {x + 1, y}, {x, y - 1}, {x, y + 1}} {
			if nb[0] < 0 || nb[0] >= n.nx || nb[1] < 0 || nb[1] >= n.ny {
				continue
			}
			nid := nb[1]*n.nx + nb[0]
			step := n.stepX
			if nb[0] == x {
				step = n.stepY
			}
			factor := math.Max(n.congestion[cur.id], n.congestion[nid])
			nd := cur.d + step*factor/n.speed
			if nd < dist[nid] {
				dist[nid] = nd
				heap.Push(pq, legacyEntry{id: nid, d: nd})
			}
		}
	}
	return dist
}

type legacyEntry struct {
	id int
	d  float64
}

type legacyHeap []legacyEntry

func (h legacyHeap) Len() int            { return len(h) }
func (h legacyHeap) Less(i, j int) bool  { return h[i].d < h[j].d }
func (h legacyHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *legacyHeap) Push(x interface{}) { *h = append(*h, x.(legacyEntry)) }
func (h *legacyHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
