// Package roadnet provides a grid road network with shortest-path travel
// times — a drop-in model.TravelMetric that replaces the paper's
// straight-line travel model with street-constrained movement.
//
// The network is a 4-connected lattice over the service area. Each edge
// carries a travel time derived from the base speed and an optional
// per-cell congestion factor; a query snaps both endpoints to their nearest
// lattice nodes, reads the road distance between the nodes from the
// distance oracle, and adds the snap legs at base speed. With congestion 1
// everywhere the metric is the Manhattan-style road distance, always ≥ the
// Euclidean one.
//
// # Distance oracle
//
// Queries are served by a per-source distance-table oracle (DESIGN.md §10):
//
//   - The adjacency is a flat CSR array built once at New/SetCongestion
//     time, so the search touches no maps and no interface values.
//   - Cache misses run a monotone bucket-queue search (Dial's algorithm)
//     that exploits the lattice's bounded edge-weight ratio; a typed binary
//     heap covers pathological congestion ratios.
//   - Distance tables live in a sharded clock-LRU cache; concurrent misses
//     on the same source are deduplicated (singleflight), and hot sources
//     survive overflow instead of being wiped with the whole cache.
//   - The metric is symmetric, so one table answers both query directions.
//     The serving table is chosen by a pure function of the two endpoint
//     nodes (pinned sources first, then the smaller node id) — never by
//     cache state — keeping results bit-identical at any parallelism.
//   - PrecomputeSources pins hot sources (center locations, typically) so
//     runs start with their tables resident and exempt from eviction.
package roadnet

import (
	"errors"
	"math"
	"sync"
	"sync/atomic"

	"imtao/internal/geo"
	"imtao/internal/obs"
)

// traceHook pairs a tracer with the span every search parents to; held
// behind one pointer so queries load both with a single atomic read.
type traceHook struct {
	tr     *obs.Tracer
	parent obs.SpanID
}

// Cache and search counters, shared by every Network in the process (the
// pipeline normally runs one). Per-network numbers are available via Stats.
var (
	mCacheHits = obs.Default.Counter("imtao_roadnet_cache_hits_total",
		"distance-table cache hits (pinned tables included)")
	mCacheMisses = obs.Default.Counter("imtao_roadnet_cache_misses_total",
		"distance-table cache misses")
	mDijkstraRuns = obs.Default.Counter("imtao_roadnet_dijkstra_runs_total",
		"full shortest-path searches executed (concurrent same-source misses share one)")
	mCacheEvictions = obs.Default.Counter("imtao_roadnet_cache_evictions_total",
		"distance tables evicted (capacity pressure or congestion reshape)")
	mSingleflight = obs.Default.Counter("imtao_roadnet_singleflight_waits_total",
		"queries that waited on another goroutine's in-flight search instead of duplicating it")
	mPinnedSources = obs.Default.Gauge("imtao_roadnet_pinned_sources",
		"sources pinned by PrecomputeSources (eviction-exempt distance tables)")
	mDijkstraSeconds = obs.Default.Quantile("imtao_roadnet_dijkstra_seconds",
		"wall time of one full shortest-path search — the oracle's miss "+
			"path; a rising p99 means the cache is thrashing or congestion "+
			"reshapes are forcing rebuilds")
)

// Network is an immutable-after-build grid road network with a cached
// distance oracle. Build one with New, optionally shape congestion with
// SetCongestion and warm hot sources with PrecomputeSources, then hand it to
// model.Instance.Metric. TravelTime and TravelTimeNodes are safe for
// concurrent use; the mutators (SetCongestion*, PrecomputeSources,
// SetCacheCapacity, FlushCache) are not — reshape only between runs.
type Network struct {
	bounds       geo.Rect
	nx, ny       int // nodes per axis
	stepX, stepY float64
	speed        float64
	invSpeed     float64 // 1/speed — the hot path multiplies, never divides
	// congestion[node] ≥ 1 multiplies the time of edges incident to the
	// node (max of the two endpoints is used per edge).
	congestion []float64

	// CSR adjacency, rebuilt by New and the SetCongestion mutators. adjTime
	// holds the edge travel time in hours, so the search does no arithmetic
	// beyond one addition per relaxation.
	rowStart []int32
	adjNode  []int32
	adjTime  []float64
	minEdge  float64 // smallest edge time — the Dial bucket width
	buckets  int     // Dial ring size; 0 selects the binary-heap fallback

	cache   *sourceCache
	scratch sync.Pool // *searchScratch

	// trace, when non-nil, parents a "dijkstra" span on every full
	// shortest-path search (cache misses and pinned-table builds). Stored
	// atomically so SetTrace is safe against concurrent queries.
	trace atomic.Pointer[traceHook]

	// Pinned sources (PrecomputeSources): always-resident distance tables,
	// looked up without locks. pinnedIdx[node] indexes pinnedDist, -1 when
	// the node is not pinned.
	pinnedIdx  []int32
	pinnedDist [][]float64
	pinnedSrcs []int32 // pinned nodes in first-registration order
}

// maxDialBuckets caps the Dial ring. A ring needs maxEdge/minEdge buckets;
// beyond this the congestion ratio is pathological and the typed binary heap
// is the better search.
const maxDialBuckets = 1 << 14

// defaultCacheCap is the default number of cached distance tables (pinned
// tables are exempt and uncounted).
const defaultCacheCap = 1024

// New builds a grid network with nx × ny nodes over bounds, travelling at
// the given base speed (distance units per hour).
func New(bounds geo.Rect, nx, ny int, speed float64) (*Network, error) {
	if nx < 2 || ny < 2 {
		return nil, errors.New("roadnet: need at least a 2x2 grid")
	}
	if speed <= 0 {
		return nil, errors.New("roadnet: speed must be positive")
	}
	if bounds.Width() <= 0 || bounds.Height() <= 0 {
		return nil, errors.New("roadnet: bounds must have positive area")
	}
	n := &Network{
		bounds: bounds,
		nx:     nx, ny: ny,
		stepX:      bounds.Width() / float64(nx-1),
		stepY:      bounds.Height() / float64(ny-1),
		speed:      speed,
		invSpeed:   1 / speed,
		congestion: make([]float64, nx*ny),
	}
	for i := range n.congestion {
		n.congestion[i] = 1
	}
	n.pinnedIdx = make([]int32, nx*ny)
	for i := range n.pinnedIdx {
		n.pinnedIdx[i] = -1
	}
	n.cache = newSourceCache(nx*ny, defaultCacheCap)
	n.scratch.New = func() any { return &searchScratch{} }
	n.rebuild()
	return n, nil
}

// Nodes returns the node count.
func (n *Network) Nodes() int { return n.nx * n.ny }

// NodeLoc returns the location of node id.
func (n *Network) NodeLoc(id int) geo.Point {
	x, y := id%n.nx, id/n.nx
	return geo.Pt(n.bounds.Min.X+float64(x)*n.stepX, n.bounds.Min.Y+float64(y)*n.stepY)
}

// rebuild derives the CSR adjacency from the current congestion field and
// sizes the Dial ring. Called by New and the SetCongestion mutators.
func (n *Network) rebuild() {
	total := n.Nodes()
	if n.rowStart == nil {
		n.rowStart = make([]int32, total+1)
		// 4-connected lattice: interior nodes have 4 edges; the exact count
		// is 2·(nx·(ny−1) + ny·(nx−1)) directed entries.
		edges := 2 * (n.nx*(n.ny-1) + n.ny*(n.nx-1))
		n.adjNode = make([]int32, edges)
		n.adjTime = make([]float64, edges)
	}
	minEdge, maxEdge := math.Inf(1), 0.0
	e := int32(0)
	for id := 0; id < total; id++ {
		n.rowStart[id] = e
		x, y := id%n.nx, id/n.nx
		cu := n.congestion[id]
		// Fixed neighbour order (left, right, down, up) keeps every search
		// fully deterministic.
		if x > 0 {
			e = n.addEdge(e, id, id-1, n.stepX, cu)
		}
		if x < n.nx-1 {
			e = n.addEdge(e, id, id+1, n.stepX, cu)
		}
		if y > 0 {
			e = n.addEdge(e, id, id-n.nx, n.stepY, cu)
		}
		if y < n.ny-1 {
			e = n.addEdge(e, id, id+n.nx, n.stepY, cu)
		}
		for k := n.rowStart[id]; k < e; k++ {
			w := n.adjTime[k]
			if w < minEdge {
				minEdge = w
			}
			if w > maxEdge {
				maxEdge = w
			}
		}
	}
	n.rowStart[total] = e
	n.minEdge = minEdge
	b := int(maxEdge/minEdge) + 2
	if b > maxDialBuckets {
		b = 0 // heap fallback
	}
	n.buckets = b
}

func (n *Network) addEdge(e int32, u, v int, step, cu float64) int32 {
	f := cu
	if cv := n.congestion[v]; cv > f {
		f = cv
	}
	n.adjNode[e] = int32(v)
	n.adjTime[e] = step * f / n.speed
	return e + 1
}

// invalidate drops every cached distance table (counting only tables that
// actually existed as evictions) and recomputes the pinned tables against
// the new congestion field.
func (n *Network) invalidate() {
	n.rebuild()
	n.cache.purge()
	for i, src := range n.pinnedSrcs {
		n.pinnedDist[i] = n.runSearch(src)
	}
}

// SetCongestion sets the slowdown factor (≥ 1) of the node nearest to p;
// edges touching the node take factor× longer. Setting congestion rebuilds
// the adjacency and resets the query cache.
func (n *Network) SetCongestion(p geo.Point, factor float64) {
	if factor < 1 {
		factor = 1
	}
	n.congestion[n.nearestNode(p)] = factor
	n.invalidate()
}

// SetCongestionDisk applies the factor to every node within radius of p.
func (n *Network) SetCongestionDisk(p geo.Point, radius, factor float64) {
	if factor < 1 {
		factor = 1
	}
	for id := 0; id < n.Nodes(); id++ {
		if n.NodeLoc(id).Dist(p) <= radius {
			n.congestion[id] = factor
		}
	}
	n.invalidate()
}

// SetCacheCapacity bounds the number of resident unpinned distance tables.
// Not safe concurrently with queries.
func (n *Network) SetCacheCapacity(tables int) {
	if tables < 1 {
		tables = 1
	}
	n.cache.setCapacity(tables)
}

// FlushCache drops every cached unpinned distance table. Pinned tables stay.
func (n *Network) FlushCache() {
	n.cache.purge()
}

// SetTrace attaches a tracer: every full shortest-path search records a
// "dijkstra" span parented to parent (normally the pipeline's run span —
// core.Run wires this automatically when the instance metric is a Network).
// A nil tracer detaches. Safe concurrently with queries; spans started
// before a detach still complete.
func (n *Network) SetTrace(tr *obs.Tracer, parent obs.SpanID) {
	if tr == nil {
		n.trace.Store(nil)
		return
	}
	n.trace.Store(&traceHook{tr: tr, parent: parent})
}

// PrecomputeSources computes and pins the distance tables of the nodes
// nearest to the given points. Pinned tables are exempt from eviction, are
// read without locks, and win the which-endpoint-serves tie against unpinned
// nodes, so warming the hot sources of a run (center locations, typically)
// removes both the cold-start searches and the cache traffic they would
// otherwise cause under contention. Idempotent; not safe concurrently with
// queries. Pins survive SetCongestion (tables are recomputed).
func (n *Network) PrecomputeSources(pts []geo.Point) {
	for _, p := range pts {
		src := int32(n.nearestNode(p))
		if n.pinnedIdx[src] >= 0 {
			continue
		}
		n.pinnedIdx[src] = int32(len(n.pinnedDist))
		n.pinnedDist = append(n.pinnedDist, n.runSearch(src))
		n.pinnedSrcs = append(n.pinnedSrcs, src)
		n.cache.markSearched(src)
	}
	mPinnedSources.Set(float64(len(n.pinnedSrcs)))
}

func (n *Network) nearestNode(p geo.Point) int {
	x := int(math.Round((p.X - n.bounds.Min.X) / n.stepX))
	y := int(math.Round((p.Y - n.bounds.Min.Y) / n.stepY))
	if x < 0 {
		x = 0
	}
	if x >= n.nx {
		x = n.nx - 1
	}
	if y < 0 {
		y = 0
	}
	if y >= n.ny {
		y = n.ny - 1
	}
	return y*n.nx + x
}

// SnapNode implements model.NodeMetric: the nearest lattice node to p and
// the straight-line snap distance from p to it.
func (n *Network) SnapNode(p geo.Point) (int32, float64) {
	id := n.nearestNode(p)
	return int32(id), p.Dist(n.NodeLoc(id))
}

// MaxSpeed implements model.SpeedBounded: the base speed bounds effective
// travel speed because congestion factors are clamped ≥ 1 (each edge takes
// at least its geometric length over base speed), the road path between two
// nodes is at least as long as the straight line between them, and the snap
// legs run at base speed — so TravelTime(a,b) ≥ a.Dist(b)/speed.
func (n *Network) MaxSpeed() float64 { return n.speed }

// TravelTime implements model.TravelMetric: snap both points to the grid,
// take the shortest road path between the nodes, and add the snap legs at
// base speed.
func (n *Network) TravelTime(a, b geo.Point) float64 {
	sa, la := n.SnapNode(a)
	sb, lb := n.SnapNode(b)
	return n.TravelTimeNodes(sa, la, sb, lb)
}

// TravelTimeNodes implements model.NodeMetric: the travel time between two
// pre-snapped points, each given as (node, snap-leg distance). This is the
// hot-loop entry — with memoized snaps it costs one addition and one
// distance-table read on the cache-hit path.
//
// The serving table is picked by a pure function of the node pair and the
// pinned set — pinned endpoint first, then the smaller id — so the answer
// never depends on cache state and stays bit-identical across parallelism
// levels (DESIGN.md §10). Symmetry of the metric makes either table correct;
// picking one canonically also means a query and its reverse share a single
// table and a single search.
func (n *Network) TravelTimeNodes(aNode int32, aLeg float64, bNode int32, bLeg float64) float64 {
	snap := (aLeg + bLeg) * n.invSpeed
	if aNode == bNode {
		return snap
	}
	src, dst, pi := aNode, bNode, n.pinnedIdx[aNode]
	if pb := n.pinnedIdx[bNode]; (pi >= 0) != (pb >= 0) {
		if pb >= 0 {
			src, dst, pi = bNode, aNode, pb
		}
	} else if bNode < aNode {
		src, dst, pi = bNode, aNode, pb
	}
	if pi >= 0 {
		mCacheHits.Inc()
		return snap + n.pinnedDist[pi][dst]
	}
	return snap + n.table(src)[dst]
}

// orient exposes the canonical table-selection rule of TravelTimeNodes for
// tests and documentation.
func (n *Network) orient(a, b int32) (src, dst int32) {
	pa, pb := n.pinnedIdx[a] >= 0, n.pinnedIdx[b] >= 0
	if pa != pb {
		if pa {
			return a, b
		}
		return b, a
	}
	if a < b {
		return a, b
	}
	return b, a
}

// table returns the distance table of src, computing it on a miss. Misses
// for the same source are shared: the first goroutine runs the search, the
// rest wait on its result (singleflight).
func (n *Network) table(src int32) []float64 {
	e, owner := n.cache.acquire(src)
	if owner {
		mCacheMisses.Inc()
		e.dist = n.runSearch(src)
		e.publish()
		return e.dist
	}
	mCacheHits.Inc()
	if !e.done.Load() {
		mSingleflight.Inc()
		<-e.ready
	}
	return e.dist
}

// Stats is a point-in-time snapshot of one network's oracle counters.
type Stats struct {
	// DijkstraRuns counts full shortest-path searches executed, pinned
	// precomputation included.
	DijkstraRuns int64
	// UniqueSources counts distinct source nodes ever searched. With a
	// capacity that avoids refaults this equals DijkstraRuns — the
	// no-duplicate-work invariant of the singleflight cache.
	UniqueSources int64
	// Entries is the number of resident unpinned distance tables.
	Entries int
	// Pinned is the number of pinned distance tables.
	Pinned int
	// Evictions counts tables dropped for capacity or congestion reshape.
	Evictions int64
}

// Stats returns this network's oracle counters.
func (n *Network) Stats() Stats {
	s := n.cache.stats()
	s.Pinned = len(n.pinnedSrcs)
	return s
}
