// Package roadnet provides a grid road network with Dijkstra shortest-path
// travel times — a drop-in model.TravelMetric that replaces the paper's
// straight-line travel model with street-constrained movement.
//
// The network is a 4-connected lattice over the service area. Each edge
// carries a travel time derived from the base speed and an optional
// per-cell congestion factor; a query snaps both endpoints to their nearest
// lattice nodes, runs (cached) Dijkstra from the source node, and adds the
// snap legs at base speed. With congestion 1 everywhere the metric is the
// Manhattan-style road distance, always ≥ the Euclidean one.
package roadnet

import (
	"container/heap"
	"errors"
	"math"
	"sync"
	"time"

	"imtao/internal/geo"
	"imtao/internal/obs"
)

// Cache and search counters, shared by every Network in the process (the
// pipeline normally runs one). Lock-wait timing needs a time.Now pair per
// query, so it only records when obs.EnableTiming is on.
var (
	mCacheHits = obs.Default.Counter("imtao_roadnet_cache_hits_total",
		"Dijkstra source-cache hits")
	mCacheMisses = obs.Default.Counter("imtao_roadnet_cache_misses_total",
		"Dijkstra source-cache misses")
	mDijkstraRuns = obs.Default.Counter("imtao_roadnet_dijkstra_runs_total",
		"full Dijkstra searches executed (duplicates under concurrent misses included)")
	mCacheEvictions = obs.Default.Counter("imtao_roadnet_cache_evictions_total",
		"full cache evictions (capacity reached or congestion reshaped)")
	mLockWait = obs.Default.Histogram("imtao_roadnet_lock_wait_seconds",
		"time spent acquiring the cache mutex per query (only with timing enabled)",
		obs.TimeBuckets)
)

// Network is an immutable-after-build grid road network.
// Build one with New, optionally shape congestion with SetCongestion, then
// hand it to model.Instance.Metric. Queries are cached per source node; the
// cache is guarded by a mutex, so TravelTime may be called from the parallel
// IMTAO engine's worker goroutines. The SetCongestion mutators are not
// concurrency-safe — reshape congestion only between runs.
type Network struct {
	bounds       geo.Rect
	nx, ny       int // nodes per axis
	stepX, stepY float64
	speed        float64
	// congestion[node] ≥ 1 multiplies the time of edges incident to the
	// node (max of the two endpoints is used per edge).
	congestion []float64

	mu       sync.Mutex
	cache    map[int][]float64
	cacheCap int
}

// New builds a grid network with nx × ny nodes over bounds, travelling at
// the given base speed (distance units per hour).
func New(bounds geo.Rect, nx, ny int, speed float64) (*Network, error) {
	if nx < 2 || ny < 2 {
		return nil, errors.New("roadnet: need at least a 2x2 grid")
	}
	if speed <= 0 {
		return nil, errors.New("roadnet: speed must be positive")
	}
	if bounds.Width() <= 0 || bounds.Height() <= 0 {
		return nil, errors.New("roadnet: bounds must have positive area")
	}
	n := &Network{
		bounds: bounds,
		nx:     nx, ny: ny,
		stepX:      bounds.Width() / float64(nx-1),
		stepY:      bounds.Height() / float64(ny-1),
		speed:      speed,
		congestion: make([]float64, nx*ny),
		cache:      make(map[int][]float64),
		cacheCap:   512,
	}
	for i := range n.congestion {
		n.congestion[i] = 1
	}
	return n, nil
}

// Nodes returns the node count.
func (n *Network) Nodes() int { return n.nx * n.ny }

// NodeLoc returns the location of node id.
func (n *Network) NodeLoc(id int) geo.Point {
	x, y := id%n.nx, id/n.nx
	return geo.Pt(n.bounds.Min.X+float64(x)*n.stepX, n.bounds.Min.Y+float64(y)*n.stepY)
}

// SetCongestion sets the slowdown factor (≥ 1) of the node nearest to p;
// edges touching the node take factor× longer. Setting congestion resets
// the query cache.
func (n *Network) SetCongestion(p geo.Point, factor float64) {
	if factor < 1 {
		factor = 1
	}
	n.congestion[n.nearestNode(p)] = factor
	n.mu.Lock()
	n.cache = make(map[int][]float64)
	n.mu.Unlock()
	mCacheEvictions.Inc()
}

// SetCongestionDisk applies the factor to every node within radius of p.
func (n *Network) SetCongestionDisk(p geo.Point, radius, factor float64) {
	if factor < 1 {
		factor = 1
	}
	for id := 0; id < n.Nodes(); id++ {
		if n.NodeLoc(id).Dist(p) <= radius {
			n.congestion[id] = factor
		}
	}
	n.mu.Lock()
	n.cache = make(map[int][]float64)
	n.mu.Unlock()
	mCacheEvictions.Inc()
}

func (n *Network) nearestNode(p geo.Point) int {
	x := int(math.Round((p.X - n.bounds.Min.X) / n.stepX))
	y := int(math.Round((p.Y - n.bounds.Min.Y) / n.stepY))
	if x < 0 {
		x = 0
	}
	if x >= n.nx {
		x = n.nx - 1
	}
	if y < 0 {
		y = 0
	}
	if y >= n.ny {
		y = n.ny - 1
	}
	return y*n.nx + x
}

// TravelTime implements model.TravelMetric: snap both points to the grid,
// take the shortest road path between the nodes, and add the snap legs at
// base speed.
func (n *Network) TravelTime(a, b geo.Point) float64 {
	sa, sb := n.nearestNode(a), n.nearestNode(b)
	snap := (a.Dist(n.NodeLoc(sa)) + b.Dist(n.NodeLoc(sb))) / n.speed
	if sa == sb {
		return snap
	}
	return snap + n.shortest(sa)[sb]
}

// shortest returns (and caches) the Dijkstra distance array from src.
// Concurrent callers missing on the same source may both run Dijkstra; the
// duplicated work is harmless (the result is identical) and keeps the search
// itself outside the lock.
func (n *Network) shortest(src int) []float64 {
	n.lock()
	if d, ok := n.cache[src]; ok {
		n.mu.Unlock()
		mCacheHits.Inc()
		return d
	}
	n.mu.Unlock()
	mCacheMisses.Inc()
	dist := n.dijkstra(src)
	mDijkstraRuns.Inc()
	n.lock()
	if len(n.cache) >= n.cacheCap {
		n.cache = make(map[int][]float64) // simple full eviction
		mCacheEvictions.Inc()
	}
	n.cache[src] = dist
	n.mu.Unlock()
	return dist
}

// lock acquires the cache mutex, recording the wait when timing is enabled.
func (n *Network) lock() {
	if !obs.TimingOn() {
		n.mu.Lock()
		return
	}
	t0 := time.Now()
	n.mu.Lock()
	mLockWait.Observe(time.Since(t0).Seconds())
}

func (n *Network) dijkstra(src int) []float64 {
	total := n.Nodes()
	dist := make([]float64, total)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	pq := &nodeHeap{{id: src, d: 0}}
	for pq.Len() > 0 {
		cur := heap.Pop(pq).(nodeEntry)
		if cur.d > dist[cur.id] {
			continue
		}
		x, y := cur.id%n.nx, cur.id/n.nx
		for _, nb := range [4][2]int{{x - 1, y}, {x + 1, y}, {x, y - 1}, {x, y + 1}} {
			if nb[0] < 0 || nb[0] >= n.nx || nb[1] < 0 || nb[1] >= n.ny {
				continue
			}
			nid := nb[1]*n.nx + nb[0]
			step := n.stepX
			if nb[0] == x {
				step = n.stepY
			}
			factor := math.Max(n.congestion[cur.id], n.congestion[nid])
			nd := cur.d + step*factor/n.speed
			if nd < dist[nid] {
				dist[nid] = nd
				heap.Push(pq, nodeEntry{id: nid, d: nd})
			}
		}
	}
	return dist
}

type nodeEntry struct {
	id int
	d  float64
}

type nodeHeap []nodeEntry

func (h nodeHeap) Len() int            { return len(h) }
func (h nodeHeap) Less(i, j int) bool  { return h[i].d < h[j].d }
func (h nodeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x interface{}) { *h = append(*h, x.(nodeEntry)) }
func (h *nodeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
