package roadnet

import (
	"math"
	"time"

	"imtao/internal/obs"
)

// searchScratch is the reusable per-search working set: the Dial bucket
// ring, the settled-epoch marks, and the typed heap of the fallback. One
// scratch serves many searches without reallocating; the Network keeps a
// sync.Pool of them so concurrent searches never contend on scratch.
type searchScratch struct {
	ring  [][]int32
	mark  []int32 // mark[v] == epoch ⇒ v settled in the current search
	epoch int32
	heap  []heapItem
}

// runSearch computes the exact shortest-path distance table from src over
// the CSR adjacency. The result array is freshly allocated (it outlives the
// call inside the cache); all other working memory comes from the scratch
// pool. Every search is fully deterministic: fixed neighbour order, a
// monotone bucket queue (or a typed heap ordered by (distance, id)), and
// settled nodes are never relaxed again.
func (n *Network) runSearch(src int32) []float64 {
	// A full search is the oracle's expensive path (a cache miss or a
	// pinned-table build), so a span per search — and a quantile sample —
	// is cheap relative to the work it times.
	t0 := time.Now()
	defer func() { mDijkstraSeconds.ObserveDuration(time.Since(t0)) }()
	if h := n.trace.Load(); h != nil {
		ts := h.tr.Start(h.parent, "dijkstra", obs.F("src", int(src)))
		defer func() {
			ts.End(obs.F("pinned", n.pinnedIdx[src] >= 0))
		}()
	}
	total := n.Nodes()
	dist := make([]float64, total)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0

	s := n.scratch.Get().(*searchScratch)
	if len(s.mark) < total {
		s.mark = make([]int32, total)
		s.epoch = 0
	}
	s.epoch++
	if s.epoch == math.MaxInt32 { // epoch wrap: reset marks once per 2^31 searches
		for i := range s.mark {
			s.mark[i] = 0
		}
		s.epoch = 1
	}

	if n.buckets > 0 {
		n.dial(src, dist, s)
	} else {
		n.heapSearch(src, dist, s)
	}
	n.scratch.Put(s)
	n.cache.runs.Add(1)
	mDijkstraRuns.Inc()
	return dist
}

// dial is Dijkstra with a monotone bucket queue (Dial's algorithm). The
// bucket width is the minimum edge time, which makes every label in the
// active bucket final: two labels in one bucket differ by less than one
// edge, so neither can improve the other. The ring has maxEdge/minEdge + 2
// slots — enough that a tentative label (≤ active + maxEdge) never collides
// with the active bucket from behind. No heap, no interface boxing, and
// relaxation is one compare + append.
func (n *Network) dial(src int32, dist []float64, s *searchScratch) {
	ringSize := n.buckets
	if cap(s.ring) < ringSize {
		s.ring = make([][]int32, ringSize)
	}
	ring := s.ring[:ringSize]
	delta := n.minEdge

	ring[0] = append(ring[0][:0], src)
	pending := 1
	for abs := 0; pending > 0; abs++ {
		slot := abs % ringSize
		// Index loop: relaxations may append to the active bucket (labels
		// that round down onto it), so len is re-read every iteration.
		for i := 0; i < len(ring[slot]); i++ {
			u := ring[slot][i]
			pending--
			if s.mark[u] == s.epoch {
				continue // stale entry: settled from an earlier bucket
			}
			s.mark[u] = s.epoch
			du := dist[u]
			for e := n.rowStart[u]; e < n.rowStart[u+1]; e++ {
				v := n.adjNode[e]
				if s.mark[v] == s.epoch {
					continue
				}
				nd := du + n.adjTime[e]
				if nd < dist[v] {
					dist[v] = nd
					b := int(nd / delta)
					// Float-rounding guards: a label belongs to
					// [abs, abs+ringSize-1] by construction; clamp the
					// pathological half-ulp cases back into the window.
					if b < abs {
						b = abs
					} else if b > abs+ringSize-1 {
						b = abs + ringSize - 1
					}
					ring[b%ringSize] = append(ring[b%ringSize], v)
					pending++
				}
			}
		}
		ring[slot] = ring[slot][:0]
	}
}

// heapItem is one typed binary-heap element — no interface{} boxing, no
// per-push allocation (the backing array lives in the scratch).
type heapItem struct {
	d  float64
	id int32
}

// heapSearch is the Dijkstra fallback for pathological congestion ratios
// where the Dial ring would be enormous. Ordering is (distance, id) so the
// settle order — and with it the result — is deterministic.
func (n *Network) heapSearch(src int32, dist []float64, s *searchScratch) {
	h := s.heap[:0]
	h = heapPush(h, heapItem{0, src})
	for len(h) > 0 {
		var it heapItem
		it, h = heapPop(h)
		u := it.id
		if s.mark[u] == s.epoch {
			continue
		}
		s.mark[u] = s.epoch
		du := dist[u]
		for e := n.rowStart[u]; e < n.rowStart[u+1]; e++ {
			v := n.adjNode[e]
			if s.mark[v] == s.epoch {
				continue
			}
			nd := du + n.adjTime[e]
			if nd < dist[v] {
				dist[v] = nd
				h = heapPush(h, heapItem{nd, v})
			}
		}
	}
	s.heap = h
}

func heapLess(a, b heapItem) bool {
	if a.d != b.d {
		return a.d < b.d
	}
	return a.id < b.id
}

func heapPush(h []heapItem, it heapItem) []heapItem {
	h = append(h, it)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !heapLess(h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	return h
}

func heapPop(h []heapItem) (heapItem, []heapItem) {
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(h) && heapLess(h[l], h[small]) {
			small = l
		}
		if r < len(h) && heapLess(h[r], h[small]) {
			small = r
		}
		if small == i {
			break
		}
		h[i], h[small] = h[small], h[i]
		i = small
	}
	return top, h
}
