package roadnet

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"imtao/internal/geo"
)

// randomCongestion shapes a reproducible random congestion field: a handful
// of disks with factors in [1, 5).
func randomCongestion(n *Network, rng *rand.Rand) {
	for i := 0; i < 4; i++ {
		p := geo.Pt(rng.Float64()*100, rng.Float64()*100)
		n.SetCongestionDisk(p, 5+rng.Float64()*15, 1+rng.Float64()*4)
	}
}

// TravelTime must be exactly symmetric — not approximately. The oracle
// serves both directions of a pair from one canonical table (orient), so any
// asymmetry would be a table-selection bug that breaks the bit-identical
// determinism contract of the parallel pipeline.
func TestPropertySymmetryExact(t *testing.T) {
	n := grid(t, 21, 21, 10)
	rng := rand.New(rand.NewSource(301))
	randomCongestion(n, rng)
	// Pin a few sources so the test also crosses the pinned/unpinned orient
	// branch.
	n.PrecomputeSources([]geo.Point{geo.Pt(10, 10), geo.Pt(90, 90)})
	for i := 0; i < 500; i++ {
		a := geo.Pt(rng.Float64()*100, rng.Float64()*100)
		b := geo.Pt(rng.Float64()*100, rng.Float64()*100)
		ab, ba := n.TravelTime(a, b), n.TravelTime(b, a)
		if ab != ba {
			t.Fatalf("TravelTime not bit-symmetric: %v vs %v for %v<->%v", ab, ba, a, b)
		}
	}
}

// Road travel between node-aligned points can never beat the straight line
// at base speed: every edge is at least as long as its Euclidean projection
// and congestion only slows it further.
func TestPropertyDominatesEuclideanExact(t *testing.T) {
	n := grid(t, 15, 15, 20)
	rng := rand.New(rand.NewSource(302))
	randomCongestion(n, rng)
	for i := 0; i < 300; i++ {
		a := n.NodeLoc(rng.Intn(n.Nodes()))
		b := n.NodeLoc(rng.Intn(n.Nodes()))
		road := n.TravelTime(a, b)
		straight := a.Dist(b) / 20
		if road < straight-1e-9 {
			t.Fatalf("road %v beats straight %v for nodes %v->%v", road, straight, a, b)
		}
	}
}

// Node-to-node road distances form a true metric, so the triangle inequality
// must hold exactly (up to float summation noise) under any congestion
// field. The snap legs of off-node points can violate it, which is why this
// property is stated on node-aligned points.
func TestPropertyTriangleUnderRandomCongestion(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		n := grid(t, 13, 13, 15)
		rng := rand.New(rand.NewSource(400 + seed))
		randomCongestion(n, rng)
		for i := 0; i < 200; i++ {
			a := n.NodeLoc(rng.Intn(n.Nodes()))
			b := n.NodeLoc(rng.Intn(n.Nodes()))
			c := n.NodeLoc(rng.Intn(n.Nodes()))
			ac := n.TravelTime(a, c)
			detour := n.TravelTime(a, b) + n.TravelTime(b, c)
			if ac > detour+1e-9 {
				t.Fatalf("seed %d: triangle violated: d(a,c)=%v > %v via %v", seed, ac, detour, b)
			}
		}
	}
}

// The oracle must compute the same distances as the frozen legacy
// implementation — Dial's algorithm and the CSR adjacency are a faster
// search, not a different metric.
func TestPropertyOracleMatchesLegacy(t *testing.T) {
	bounds := geo.NewRect(geo.Pt(0, 0), geo.Pt(100, 100))
	n, err := New(bounds, 17, 17, 12)
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLegacy(bounds, 17, 17, 12)
	if err != nil {
		t.Fatal(err)
	}
	n.SetCongestionDisk(geo.Pt(40, 60), 25, 3.5)
	l.SetCongestionDisk(geo.Pt(40, 60), 25, 3.5)
	rng := rand.New(rand.NewSource(303))
	for i := 0; i < 300; i++ {
		a := geo.Pt(rng.Float64()*100, rng.Float64()*100)
		b := geo.Pt(rng.Float64()*100, rng.Float64()*100)
		got, want := n.TravelTime(a, b), l.TravelTime(a, b)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("oracle %v != legacy %v for %v->%v", got, want, a, b)
		}
	}
}

// Concurrent misses on one source must share a single search — the
// singleflight acceptance criterion: dijkstra_runs == unique sources.
func TestSingleflightConcurrentMiss(t *testing.T) {
	n := grid(t, 31, 31, 10)
	const goroutines = 32
	var start, done sync.WaitGroup
	start.Add(1)
	done.Add(goroutines)
	vals := make([]float64, goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer done.Done()
			start.Wait()
			// All queries orient onto source node 5 (min id, unpinned).
			vals[g] = n.TravelTimeNodes(5, 0, int32(600+g), 0)
		}(g)
	}
	start.Done()
	done.Wait()
	s := n.Stats()
	if s.DijkstraRuns != 1 || s.UniqueSources != 1 {
		t.Fatalf("concurrent same-source misses duplicated work: runs=%d unique=%d",
			s.DijkstraRuns, s.UniqueSources)
	}
	for g, v := range vals {
		if v <= 0 || math.IsInf(v, 1) {
			t.Fatalf("goroutine %d read a bogus distance %v", g, v)
		}
	}
}

// With capacity at the node count no table is ever refaulted, so every
// search corresponds to exactly one unique source — the zero-duplicate-work
// invariant the scale benchmark asserts.
func TestUniqueSourceAccounting(t *testing.T) {
	n := grid(t, 21, 21, 10)
	n.SetCacheCapacity(n.Nodes())
	rng := rand.New(rand.NewSource(304))
	for i := 0; i < 2000; i++ {
		a := geo.Pt(rng.Float64()*100, rng.Float64()*100)
		b := geo.Pt(rng.Float64()*100, rng.Float64()*100)
		n.TravelTime(a, b)
	}
	s := n.Stats()
	if s.DijkstraRuns != s.UniqueSources {
		t.Fatalf("duplicate searches: runs=%d unique=%d", s.DijkstraRuns, s.UniqueSources)
	}
	if s.Evictions != 0 {
		t.Fatalf("evictions with capacity == node count: %d", s.Evictions)
	}
}

// Clock eviction gives re-referenced tables a second chance: a source
// touched between misses survives a stream of cold sources through its
// shard, where the old implementation wiped the whole cache.
func TestClockEvictionKeepsHotSources(t *testing.T) {
	n := grid(t, 31, 31, 10)
	n.SetCacheCapacity(2 * cacheShardCount) // two tables per shard
	const hot = int32(0)
	dst := int32(n.Nodes() - 1)
	n.TravelTimeNodes(hot, 0, dst, 0)
	n.TravelTimeNodes(hot, 0, dst, 0) // second touch sets the clock bit
	// Stream cold sources through shard 0 (ids ≡ 0 mod shard count), touching
	// the hot source between each miss.
	for s := int32(cacheShardCount); s < 40*cacheShardCount; s += cacheShardCount {
		n.TravelTimeNodes(s, 0, dst, 0)
		n.TravelTimeNodes(hot, 0, dst, 0)
	}
	st := n.Stats()
	if st.Evictions == 0 {
		t.Fatal("no eviction pressure; test is vacuous")
	}
	// A refault of the hot source would make runs exceed unique sources
	// (cold sources are never re-queried).
	if st.DijkstraRuns != st.UniqueSources {
		t.Fatalf("hot source was evicted and refaulted: runs=%d unique=%d",
			st.DijkstraRuns, st.UniqueSources)
	}
}

// SetCongestion on an empty cache must not count evictions (satellite fix:
// the old code bumped the eviction counter even when there was nothing to
// evict).
func TestCongestionNoSpuriousEvictions(t *testing.T) {
	n := grid(t, 11, 11, 10)
	before := mCacheEvictions.Value()
	n.SetCongestion(geo.Pt(50, 50), 3)       // cache is empty
	n.SetCongestionDisk(geo.Pt(0, 0), 20, 2) // still empty
	if got := mCacheEvictions.Value(); got != before {
		t.Fatalf("evictions counted on an empty cache: %d -> %d", before, got)
	}
	if s := n.Stats(); s.Evictions != 0 {
		t.Fatalf("per-network evictions on an empty cache: %d", s.Evictions)
	}
	// With a resident table the reshape must count it.
	n.TravelTime(geo.Pt(5, 5), geo.Pt(95, 95))
	n.SetCongestion(geo.Pt(50, 50), 2)
	if s := n.Stats(); s.Evictions == 0 {
		t.Fatal("congestion reshape dropped a table without counting it")
	}
}

// Pinned tables answer without cache traffic, are idempotent to re-pin, and
// are recomputed — not dropped — by congestion reshapes.
func TestPrecomputeSources(t *testing.T) {
	n := grid(t, 21, 21, 10)
	ctr := geo.Pt(50, 50)
	n.PrecomputeSources([]geo.Point{ctr})
	n.PrecomputeSources([]geo.Point{ctr}) // idempotent
	if s := n.Stats(); s.Pinned != 1 || s.DijkstraRuns != 1 {
		t.Fatalf("pin not idempotent: pinned=%d runs=%d", s.Pinned, s.DijkstraRuns)
	}
	far := geo.Pt(95, 95)
	before := n.TravelTime(ctr, far)
	if s := n.Stats(); s.Entries != 0 {
		t.Fatalf("pinned query went through the cache: %d entries", s.Entries)
	}
	// Congestion reshape recomputes the pinned table in place. Congest the
	// whole grid so no free detour can hide a stale table.
	n.SetCongestionDisk(geo.Pt(50, 50), 200, 4)
	after := n.TravelTime(ctr, far)
	if s := n.Stats(); s.Pinned != 1 {
		t.Fatalf("pin lost across congestion reshape: pinned=%d", s.Pinned)
	}
	if after <= before {
		t.Fatalf("pinned table not recomputed: %v -> %v", before, after)
	}
	// The pinned value must equal a cold computation of the same pair.
	n2 := grid(t, 21, 21, 10)
	n2.SetCongestionDisk(geo.Pt(50, 50), 200, 4)
	if want := n2.TravelTime(ctr, far); after != want {
		t.Fatalf("pinned table diverged from cold computation: %v vs %v", after, want)
	}
}

// The heap fallback must agree with the Dial search: force it by asking for
// a congestion ratio beyond the ring cap.
func TestHeapFallbackMatchesDial(t *testing.T) {
	bounds := geo.NewRect(geo.Pt(0, 0), geo.Pt(100, 100))
	dial, err := New(bounds, 15, 15, 10)
	if err != nil {
		t.Fatal(err)
	}
	heap, err := New(bounds, 15, 15, 10)
	if err != nil {
		t.Fatal(err)
	}
	if dial.buckets == 0 {
		t.Fatal("baseline network unexpectedly on the heap path")
	}
	heap.buckets = 0 // force the typed-heap fallback on identical weights
	rng := rand.New(rand.NewSource(305))
	for i := 0; i < 200; i++ {
		a := geo.Pt(rng.Float64()*100, rng.Float64()*100)
		b := geo.Pt(rng.Float64()*100, rng.Float64()*100)
		if d, h := dial.TravelTime(a, b), heap.TravelTime(a, b); d != h {
			t.Fatalf("dial %v != heap %v for %v->%v", d, h, a, b)
		}
	}
	// A pathological congestion ratio must select the heap automatically.
	extreme, err := New(bounds, 5, 5, 10)
	if err != nil {
		t.Fatal(err)
	}
	extreme.SetCongestion(geo.Pt(50, 50), float64(2*maxDialBuckets))
	if extreme.buckets != 0 {
		t.Fatalf("extreme congestion ratio kept the Dial ring: %d buckets", extreme.buckets)
	}
	if d := extreme.TravelTime(geo.Pt(0, 0), geo.Pt(100, 100)); math.IsInf(d, 1) || d <= 0 {
		t.Fatalf("heap fallback produced %v", d)
	}
}
