package roadnet

import (
	"sync"
	"sync/atomic"
)

// sourceCache is the sharded distance-table cache of the oracle.
//
// Node ids are dense integers, so the table index is a flat array of atomic
// entry pointers rather than a map: the cache-hit path is one atomic load
// plus one atomic flag store (the clock reference bit) — no hashing, no
// locks, no shared mutable state. Writers (the miss path) serialize on a
// per-shard mutex; shard s owns the nodes congruent to s modulo
// cacheShardCount, so misses on different shards insert concurrently.
//
// Concurrent misses on the same source are deduplicated: the first caller
// becomes the owner of a fresh entry and runs the search; later callers find
// the entry and wait on its ready channel (singleflight).
//
// Eviction is clock (second-chance) per shard: a hand walks the shard's
// slots, skipping in-flight entries, dropping entries whose reference bit is
// clear and clearing the bit of the rest. Hot sources — re-referenced
// between misses — therefore survive overflow, unlike the previous
// whole-cache wipe.
type sourceCache struct {
	entries  []atomic.Pointer[cacheEntry] // node id → entry
	shards   [cacheShardCount]cacheShard
	perShard atomic.Int64 // resident-table budget per shard

	searched  []atomic.Bool // node → ever searched (unique-source accounting)
	unique    atomic.Int64
	runs      atomic.Int64
	evictions atomic.Int64
}

const cacheShardCount = 16

type cacheShard struct {
	mu       sync.Mutex
	resident int // finished + in-flight entries owned by this shard
	hand     int // clock position, in shard-slot units
}

type cacheEntry struct {
	dist  []float64
	ready chan struct{}
	done  atomic.Bool
	ref   atomic.Bool // clock bit: referenced since the last eviction scan
}

// publish marks the entry's table ready and wakes singleflight waiters.
func (e *cacheEntry) publish() {
	e.done.Store(true)
	close(e.ready)
}

func newSourceCache(nodes, capacity int) *sourceCache {
	c := &sourceCache{
		entries:  make([]atomic.Pointer[cacheEntry], nodes),
		searched: make([]atomic.Bool, nodes),
	}
	c.setCapacity(capacity)
	return c
}

func (c *sourceCache) setCapacity(capacity int) {
	per := (capacity + cacheShardCount - 1) / cacheShardCount
	if per < 1 {
		per = 1
	}
	c.perShard.Store(int64(per))
}

// acquire returns the entry for src and whether the caller owns it. An owner
// must fill e.dist and call e.publish; a non-owner may need to wait on
// e.ready before reading e.dist (see cacheEntry.done).
func (c *sourceCache) acquire(src int32) (e *cacheEntry, owner bool) {
	if e := c.entries[src].Load(); e != nil {
		// Check-before-store: for hot entries the clock bit is usually
		// already set, and an atomic load is far cheaper than the store.
		if !e.ref.Load() {
			e.ref.Store(true)
		}
		return e, false
	}
	sh := &c.shards[int(src)%cacheShardCount]
	sh.mu.Lock()
	if e := c.entries[src].Load(); e != nil {
		// Lost the creation race: another goroutine installed this entry
		// between our load and the lock.
		sh.mu.Unlock()
		e.ref.Store(true)
		return e, false
	}
	c.evictLocked(int(src)%cacheShardCount, sh)
	e = &cacheEntry{ready: make(chan struct{})}
	c.entries[src].Store(e)
	sh.resident++
	c.markSearched(src)
	sh.mu.Unlock()
	return e, true
}

// evictLocked applies the clock policy to one shard until an insertion fits
// its budget. In-flight entries (search not finished) are never evicted.
// Caller holds the shard mutex.
func (c *sourceCache) evictLocked(shard int, sh *cacheShard) {
	limit := int(c.perShard.Load())
	slots := (len(c.entries) - shard + cacheShardCount - 1) / cacheShardCount
	for sh.resident >= limit {
		evicted := false
		// Up to two passes: the first clears reference bits, the second
		// catches the entries that just lost theirs.
		for scanned := 0; scanned < 2*slots; scanned++ {
			node := shard + sh.hand*cacheShardCount
			sh.hand++
			if sh.hand >= slots {
				sh.hand = 0
			}
			e := c.entries[node].Load()
			if e == nil || !e.done.Load() {
				continue
			}
			if e.ref.Swap(false) {
				continue // second chance: hot entries survive
			}
			c.entries[node].Store(nil)
			sh.resident--
			c.evictions.Add(1)
			mCacheEvictions.Inc()
			evicted = true
			break
		}
		if !evicted {
			return // everything in flight: allow temporary overflow
		}
	}
}

// purge drops every entry, returning how many were dropped. Used by
// congestion reshapes and FlushCache; not safe concurrently with queries
// (like every Network mutator), so no search is in flight here.
func (c *sourceCache) purge() int {
	dropped := 0
	for s := range c.shards {
		c.shards[s].mu.Lock()
	}
	for i := range c.entries {
		if c.entries[i].Load() != nil {
			c.entries[i].Store(nil)
			dropped++
		}
	}
	for s := range c.shards {
		c.shards[s].resident = 0
		c.shards[s].hand = 0
		c.shards[s].mu.Unlock()
	}
	c.evictions.Add(int64(dropped))
	mCacheEvictions.Add(int64(dropped))
	return dropped
}

// markSearched records src in the unique-source set.
func (c *sourceCache) markSearched(src int32) {
	if !c.searched[src].Swap(true) {
		c.unique.Add(1)
	}
}

func (c *sourceCache) stats() Stats {
	entries := 0
	for s := range c.shards {
		c.shards[s].mu.Lock()
		entries += c.shards[s].resident
		c.shards[s].mu.Unlock()
	}
	return Stats{
		DijkstraRuns:  c.runs.Load(),
		UniqueSources: c.unique.Load(),
		Entries:       entries,
		Evictions:     c.evictions.Load(),
	}
}
