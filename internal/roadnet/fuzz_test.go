package roadnet

import (
	"math"
	"testing"

	"imtao/internal/geo"
)

// FuzzNearestNode checks the snap clamp: any point — inside the bounds, far
// outside them, or outright non-finite — must snap to a valid node id, and
// SnapNode's leg must be non-negative. The seeds cover the corners, the
// exact bounds, and the IEEE specials; `go test` replays them on every run.
func FuzzNearestNode(f *testing.F) {
	seeds := [][2]float64{
		{0, 0}, {100, 100}, {50, 50},
		{-1e9, 1e9}, {1e300, -1e300},
		{math.NaN(), 50}, {50, math.NaN()},
		{math.Inf(1), math.Inf(-1)},
		{math.Nextafter(0, -1), math.Nextafter(100, 101)},
	}
	for _, s := range seeds {
		f.Add(s[0], s[1])
	}
	n, err := New(geo.NewRect(geo.Pt(0, 0), geo.Pt(100, 100)), 13, 9, 10)
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, x, y float64) {
		p := geo.Pt(x, y)
		id := n.nearestNode(p)
		if id < 0 || id >= n.Nodes() {
			t.Fatalf("nearestNode(%v) = %d out of [0,%d)", p, id, n.Nodes())
		}
		node, leg := n.SnapNode(p)
		if int(node) != id {
			t.Fatalf("SnapNode(%v) node %d != nearestNode %d", p, node, id)
		}
		// leg is NaN for non-finite inputs (distance to NaN); finite inputs
		// must give a finite non-negative leg.
		if !math.IsNaN(x) && !math.IsNaN(y) && !math.IsInf(x, 0) && !math.IsInf(y, 0) {
			if math.IsNaN(leg) || leg < 0 {
				t.Fatalf("SnapNode(%v) leg = %v", p, leg)
			}
		}
	})
}
