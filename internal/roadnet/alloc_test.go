package roadnet

import (
	"testing"

	"imtao/internal/geo"
	"imtao/internal/model"
)

// TestTravelTimeRefHitZeroAlloc pins the oracle query that dominates every
// assigner inner loop: model.Instance.TravelTimeRef with memoized snaps
// against a resident distance table. After the first query warms the table,
// the hit path is an addition plus one table read — it must never touch the
// heap (DESIGN.md §13).
func TestTravelTimeRefHitZeroAlloc(t *testing.T) {
	n, err := New(benchBounds(), 16, 16, 1000)
	if err != nil {
		t.Fatal(err)
	}
	in := &model.Instance{
		Speed:  1,
		Bounds: benchBounds(),
		Metric: n,
		Centers: []model.Center{
			{ID: 0, Loc: geo.Pt(123, 456)},
		},
		Tasks: []model.Task{
			{ID: 0, Center: 0, Loc: geo.Pt(1830, 1711), Expiry: 1e6},
		},
		Workers: []model.Worker{
			{ID: 0, Home: 0, Loc: geo.Pt(900, 300), MaxT: 4},
		},
	}
	in.PrepareMetric()
	cref, tref, wref := in.CenterRef(0), in.TaskRef(0), in.WorkerRef(0)
	if cref.Node < 0 || tref.Node < 0 || wref.Node < 0 {
		t.Fatal("PrepareMetric did not snap the entities")
	}
	c, task, w := in.Centers[0].Loc, in.Tasks[0].Loc, in.Workers[0].Loc
	// Warm the distance tables (the first query per source runs the search).
	in.TravelTimeRef(c, cref, task, tref)
	in.TravelTimeRef(w, wref, c, cref)
	in.TravelTimeRef(task, tref, w, wref)

	allocs := testing.AllocsPerRun(100, func() {
		benchSink = in.TravelTimeRef(c, cref, task, tref)
		benchSink += in.TravelTimeRef(w, wref, c, cref)
		benchSink += in.TravelTimeRef(task, tref, w, wref)
	})
	if allocs != 0 {
		t.Fatalf("TravelTimeRef hit path allocates: %.2f allocs/query batch (want 0)", allocs)
	}
}
