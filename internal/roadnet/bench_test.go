package roadnet

import (
	"testing"

	"imtao/internal/geo"
)

// The before/after pairs below measure the two paths the issue's acceptance
// criterion cares about: the cache-hit path (one query against a resident
// table) and the miss path (a full shortest-path search). Oracle vs the
// frozen LegacyNetwork, same geometry, same pairs.

const benchGrid = 64

func benchBounds() geo.Rect { return geo.NewRect(geo.Pt(0, 0), geo.Pt(2000, 2000)) }

var benchSink float64

func BenchmarkTravelTimeHitOracle(b *testing.B) {
	n, err := New(benchBounds(), benchGrid, benchGrid, 1000)
	if err != nil {
		b.Fatal(err)
	}
	a, c := geo.Pt(123, 456), geo.Pt(1830, 1711)
	n.TravelTime(a, c) // warm
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSink = n.TravelTime(a, c)
	}
}

func BenchmarkTravelTimeHitLegacy(b *testing.B) {
	n, err := NewLegacy(benchBounds(), benchGrid, benchGrid, 1000)
	if err != nil {
		b.Fatal(err)
	}
	a, c := geo.Pt(123, 456), geo.Pt(1830, 1711)
	n.TravelTime(a, c) // warm
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSink = n.TravelTime(a, c)
	}
}

// The ref path is the pipeline's actual hot loop after model.PrepareMetric:
// snaps are memoized, so a query is an addition plus one table read.
func BenchmarkTravelTimeNodesRef(b *testing.B) {
	n, err := New(benchBounds(), benchGrid, benchGrid, 1000)
	if err != nil {
		b.Fatal(err)
	}
	aN, aL := n.SnapNode(geo.Pt(123, 456))
	cN, cL := n.SnapNode(geo.Pt(1830, 1711))
	n.TravelTimeNodes(aN, aL, cN, cL) // warm
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSink = n.TravelTimeNodes(aN, aL, cN, cL)
	}
}

// Pinned tables skip the cache entirely — the first leg of every route in a
// warmed run.
func BenchmarkTravelTimeNodesPinned(b *testing.B) {
	n, err := New(benchBounds(), benchGrid, benchGrid, 1000)
	if err != nil {
		b.Fatal(err)
	}
	src := geo.Pt(123, 456)
	n.PrecomputeSources([]geo.Point{src})
	aN, aL := n.SnapNode(src)
	cN, cL := n.SnapNode(geo.Pt(1830, 1711))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSink = n.TravelTimeNodes(aN, aL, cN, cL)
	}
}

func BenchmarkTravelTimeMissOracle(b *testing.B) {
	n, err := New(benchBounds(), benchGrid, benchGrid, 1000)
	if err != nil {
		b.Fatal(err)
	}
	a, c := geo.Pt(123, 456), geo.Pt(1830, 1711)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.FlushCache()
		benchSink = n.TravelTime(a, c)
	}
}

func BenchmarkTravelTimeMissLegacy(b *testing.B) {
	n, err := NewLegacy(benchBounds(), benchGrid, benchGrid, 1000)
	if err != nil {
		b.Fatal(err)
	}
	a, c := geo.Pt(123, 456), geo.Pt(1830, 1711)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.mu.Lock()
		n.cache = make(map[int][]float64)
		n.mu.Unlock()
		benchSink = n.TravelTime(a, c)
	}
}

// Concurrent hits on one hot pair: the oracle's lock-free snapshot read vs
// the legacy global mutex.
func BenchmarkTravelTimeHitParallelOracle(b *testing.B) {
	n, err := New(benchBounds(), benchGrid, benchGrid, 1000)
	if err != nil {
		b.Fatal(err)
	}
	a, c := geo.Pt(123, 456), geo.Pt(1830, 1711)
	n.TravelTime(a, c)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			benchSink = n.TravelTime(a, c)
		}
	})
}

func BenchmarkTravelTimeHitParallelLegacy(b *testing.B) {
	n, err := NewLegacy(benchBounds(), benchGrid, benchGrid, 1000)
	if err != nil {
		b.Fatal(err)
	}
	a, c := geo.Pt(123, 456), geo.Pt(1830, 1711)
	n.TravelTime(a, c)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			benchSink = n.TravelTime(a, c)
		}
	})
}
