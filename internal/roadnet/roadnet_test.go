package roadnet

import (
	"math"
	"math/rand"
	"testing"

	"imtao/internal/core"
	"imtao/internal/geo"
	"imtao/internal/routing"
	"imtao/internal/workload"
)

func grid(t *testing.T, nx, ny int, speed float64) *Network {
	t.Helper()
	n, err := New(geo.NewRect(geo.Pt(0, 0), geo.Pt(100, 100)), nx, ny, speed)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestNewErrors(t *testing.T) {
	b := geo.NewRect(geo.Pt(0, 0), geo.Pt(10, 10))
	if _, err := New(b, 1, 5, 10); err == nil {
		t.Error("nx<2 must fail")
	}
	if _, err := New(b, 5, 5, 0); err == nil {
		t.Error("zero speed must fail")
	}
	if _, err := New(geo.Rect{}, 5, 5, 10); err == nil {
		t.Error("empty bounds must fail")
	}
}

func TestTravelTimeManhattanOnGrid(t *testing.T) {
	n := grid(t, 11, 11, 10) // 10-unit steps, speed 10 → 1h per step
	// Node-aligned points: pure Manhattan distance.
	got := n.TravelTime(geo.Pt(0, 0), geo.Pt(30, 40))
	if math.Abs(got-7) > 1e-9 {
		t.Fatalf("TravelTime = %v, want 7 (3+4 steps at 1h)", got)
	}
	// Symmetry.
	if back := n.TravelTime(geo.Pt(30, 40), geo.Pt(0, 0)); math.Abs(back-got) > 1e-9 {
		t.Fatalf("asymmetric metric: %v vs %v", got, back)
	}
	// Identity (same snap node): only the snap legs remain.
	if d := n.TravelTime(geo.Pt(1, 1), geo.Pt(2, 2)); d <= 0 || d > 1 {
		t.Fatalf("near-identity time = %v", d)
	}
	if d := n.TravelTime(geo.Pt(50, 50), geo.Pt(50, 50)); d != 0 {
		t.Fatalf("self time = %v", d)
	}
}

func TestTravelTimeDominatesEuclidean(t *testing.T) {
	n := grid(t, 21, 21, 10)
	rng := rand.New(rand.NewSource(211))
	for i := 0; i < 200; i++ {
		a := geo.Pt(rng.Float64()*100, rng.Float64()*100)
		b := geo.Pt(rng.Float64()*100, rng.Float64()*100)
		road := n.TravelTime(a, b)
		straight := a.Dist(b) / 10
		// Road travel can never beat straight-line at the same speed
		// (allowing snap rounding slack of one cell).
		if road < straight-(100.0/20)/10 {
			t.Fatalf("road %v beats straight %v for %v->%v", road, straight, a, b)
		}
	}
}

func TestCongestionSlowsPaths(t *testing.T) {
	n := grid(t, 11, 11, 10)
	before := n.TravelTime(geo.Pt(0, 50), geo.Pt(100, 50))
	// Congest a wall through the middle.
	n.SetCongestionDisk(geo.Pt(50, 50), 12, 5)
	after := n.TravelTime(geo.Pt(0, 50), geo.Pt(100, 50))
	if after <= before {
		t.Fatalf("congestion did not slow the path: %v -> %v", before, after)
	}
	// Dijkstra may route around the congestion: after must not exceed the
	// fully congested straight path.
	if after > before*5+1e-9 {
		t.Fatalf("slower than the worst case: %v", after)
	}
	// Point congestion variant resets cache and applies.
	n2 := grid(t, 11, 11, 10)
	n2.SetCongestion(geo.Pt(50, 50), 4)
	if n2.congestion[n2.nearestNode(geo.Pt(50, 50))] != 4 {
		t.Fatal("SetCongestion did not apply")
	}
	// Factors below 1 clamp to 1.
	n2.SetCongestion(geo.Pt(50, 50), 0.2)
	if n2.congestion[n2.nearestNode(geo.Pt(50, 50))] != 1 {
		t.Fatal("factor clamp failed")
	}
}

func TestTriangleInequalityApprox(t *testing.T) {
	n := grid(t, 15, 15, 20)
	rng := rand.New(rand.NewSource(212))
	slack := 2 * (100.0 / 14) / 20 // two snap legs of one cell
	for i := 0; i < 100; i++ {
		a := geo.Pt(rng.Float64()*100, rng.Float64()*100)
		b := geo.Pt(rng.Float64()*100, rng.Float64()*100)
		c := geo.Pt(rng.Float64()*100, rng.Float64()*100)
		if n.TravelTime(a, c) > n.TravelTime(a, b)+n.TravelTime(b, c)+slack {
			t.Fatalf("triangle inequality badly violated at %v %v %v", a, b, c)
		}
	}
}

func TestCacheConsistency(t *testing.T) {
	n := grid(t, 11, 11, 10)
	a, b := geo.Pt(5, 5), geo.Pt(95, 95)
	first := n.TravelTime(a, b)
	for i := 0; i < 10; i++ {
		if got := n.TravelTime(a, b); got != first {
			t.Fatalf("cached query differs: %v vs %v", got, first)
		}
	}
	// Force cache eviction by querying many sources.
	n.SetCacheCapacity(4)
	rng := rand.New(rand.NewSource(213))
	for i := 0; i < 30; i++ {
		n.TravelTime(geo.Pt(rng.Float64()*100, rng.Float64()*100), b)
	}
	if got := n.TravelTime(a, b); got != first {
		t.Fatalf("post-eviction query differs: %v vs %v", got, first)
	}
}

// End to end: the whole IMTAO pipeline runs on a road network and
// collaboration still helps. This is the §V-E style robustness check for
// the travel-model assumption.
func TestIMTAOOnRoadNetwork(t *testing.T) {
	p := workload.Defaults(workload.SYN)
	p.NumTasks, p.NumWorkers, p.NumCenters = 150, 40, 8
	p.Expiry = 1.5 // road detours need more slack than straight lines
	raw, err := workload.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	net, err := New(raw.Bounds, 41, 41, p.Speed)
	if err != nil {
		t.Fatal(err)
	}
	raw.Metric = net
	in, _, err := core.Partition(raw)
	if err != nil {
		t.Fatal(err)
	}
	woc, err := core.Run(in, core.Config{Method: core.Method{Assigner: core.Seq, Collab: core.WoC}})
	if err != nil {
		t.Fatal(err)
	}
	bdc, err := core.Run(in, core.Config{Method: core.Method{Assigner: core.Seq, Collab: core.BDC}})
	if err != nil {
		t.Fatal(err)
	}
	if err := routing.SolutionFeasible(in, bdc.Solution); err != nil {
		t.Fatal(err)
	}
	if woc.Assigned == 0 {
		t.Fatal("nothing assigned under the road metric; expiry too tight?")
	}
	if bdc.Assigned < woc.Assigned {
		t.Fatalf("BDC %d < w/o-C %d under road travel", bdc.Assigned, woc.Assigned)
	}
	// The road metric must actually bind: assignment under roads can't
	// exceed the straight-line one.
	inStraight := in.Clone()
	inStraight.Metric = nil
	straight, err := core.Run(inStraight, core.Config{Method: core.Method{Assigner: core.Seq, Collab: core.WoC}})
	if err != nil {
		t.Fatal(err)
	}
	if woc.Assigned > straight.Assigned {
		t.Fatalf("road travel (%d) beat straight-line (%d)?!", woc.Assigned, straight.Assigned)
	}
}
