// Package core assembles the IMTAO framework (paper §III, Fig. 2): the
// Voronoi service-area partition (Algorithm 1), the center-independent task
// assignment phase, and the game-theoretic inter-center workforce transfer
// phase, wired together with the bi-directional optimization loop.
//
// The package also names the eight evaluated methods of the paper —
// {Seq, Opt} × {BDC, RBDC, DC, w/o-C} — so the experiment harness, the CLI
// and the examples all speak the same vocabulary.
package core

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"imtao/internal/assign"
	"imtao/internal/collab"
	"imtao/internal/geo"
	"imtao/internal/metrics"
	"imtao/internal/model"
	"imtao/internal/obs"
	"imtao/internal/provenance"
	"imtao/internal/voronoi"
)

// Pipeline-level metrics: run and phase latencies land in histograms so a
// /metrics scrape sees the latency distribution across runs, not just the
// last Report.
var (
	mRuns = obs.Default.Counter("imtao_runs_total",
		"IMTAO pipeline runs executed")
	mPartitions = obs.Default.Counter("imtao_partitions_total",
		"Voronoi service-area partitions computed")
	mPartitionSeconds = obs.Default.Histogram("imtao_partition_seconds",
		"wall-clock latency of the Voronoi partition", obs.TimeBuckets)
	mPhase1Seconds = obs.Default.Histogram("imtao_phase1_seconds",
		"wall-clock latency of phase 1 (center-independent assignment)", obs.TimeBuckets)
	mPhase2Seconds = obs.Default.Histogram("imtao_phase2_seconds",
		"wall-clock latency of phase 2 (collaboration game)", obs.TimeBuckets)
	mCenterSeconds = obs.Default.Quantile("imtao_phase1_center_seconds",
		"wall time of one center's phase-1 assignment; the p99/p50 spread "+
			"exposes straggler centers that cap phase-1 parallel speedup")
)

// AssignerKind selects the per-center assignment algorithm.
type AssignerKind int

const (
	// Seq is the sequential task assignment heuristic (paper Algorithm 2).
	Seq AssignerKind = iota
	// Opt is the optimal per-center assignment baseline.
	Opt
)

// String implements fmt.Stringer.
func (a AssignerKind) String() string {
	if a == Opt {
		return "Opt"
	}
	return "Seq"
}

// CollabKind selects the phase-2 collaboration strategy.
type CollabKind int

const (
	// BDC is the paper's bi-directional collaboration: min-ratio recipient
	// selection with full per-center reassignment.
	BDC CollabKind = iota
	// RBDC is BDC with random recipient selection.
	RBDC
	// DC is decomposed collaboration: dispatched workers only receive
	// leftover tasks.
	DC
	// WoC disables collaboration entirely (w/o-C).
	WoC
)

// String implements fmt.Stringer.
func (c CollabKind) String() string {
	switch c {
	case RBDC:
		return "RBDC"
	case DC:
		return "DC"
	case WoC:
		return "w/o-C"
	default:
		return "BDC"
	}
}

// Method is one of the eight evaluated method combinations.
type Method struct {
	Assigner AssignerKind
	Collab   CollabKind
}

// String renders the paper's method naming, e.g. "Seq-BDC".
func (m Method) String() string { return m.Assigner.String() + "-" + m.Collab.String() }

// Methods lists all eight combinations in the paper's presentation order.
func Methods() []Method {
	var out []Method
	for _, a := range []AssignerKind{Seq, Opt} {
		for _, c := range []CollabKind{BDC, RBDC, DC, WoC} {
			out = append(out, Method{a, c})
		}
	}
	return out
}

// ParseMethod parses names like "Seq-BDC" or "opt-w/o-c" (case-insensitive).
func ParseMethod(s string) (Method, error) {
	for _, m := range Methods() {
		if equalFold(m.String(), s) {
			return m, nil
		}
	}
	return Method{}, fmt.Errorf("core: unknown method %q", s)
}

func equalFold(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		ca, cb := a[i], b[i]
		if 'A' <= ca && ca <= 'Z' {
			ca += 'a' - 'A'
		}
		if 'A' <= cb && cb <= 'Z' {
			cb += 'a' - 'A'
		}
		if ca != cb {
			return false
		}
	}
	return true
}

// Config controls one IMTAO run.
type Config struct {
	Method Method
	// Seed drives the RBDC recipient choice; other methods are
	// deterministic and ignore it.
	Seed int64
	// OptBudget caps the per-center branch-and-bound time of the Opt
	// assigner; zero means run to optimality.
	OptBudget time.Duration
	// Parallelism bounds the worker goroutines of both phases: phase-1
	// per-center assignment runs concurrently across centers, and phase-2
	// best-response trials run concurrently within each game iteration.
	// 0 means GOMAXPROCS; 1 forces the legacy serial pipeline. Output is
	// bit-identical at every setting on deterministic assigners (Seq
	// always; Opt with a zero time budget).
	Parallelism int
	// MaxGameIterations caps the phase-2 collaboration game. 0 means the
	// natural bound (every worker transferred once plus every center
	// dropped once) — the paper's setting. The scale benchmark sets a cap
	// so 100k-task runs finish in bounded time; capped runs are still
	// feasible solutions, just not necessarily at equilibrium.
	MaxGameIterations int
	// Observer receives the run's structured event stream: run_start,
	// per-center phase-1 statistics, phase latency spans, one game_iter per
	// collaboration iteration, and run_end. Nil disables emission (the
	// no-op default); see internal/obs for the event vocabulary.
	Observer obs.Observer
	// Tracer records the run's hierarchical span tree — run → phase1 →
	// per-center spans and run → phase2 → game iterations → trials, plus
	// metric-preparation and oracle Dijkstra spans — into a bounded
	// in-memory trace exportable as a Perfetto timeline
	// (obs.Tracer.WriteChromeTrace). Nil (the default) disables tracing at
	// zero cost: no span IDs are allocated and no clock is read.
	Tracer *obs.Tracer
	// Shards > 1 routes phase 2 through the region-sharded game engine
	// (collab.RunSharded, DESIGN.md §15–16): centers are partitioned into
	// that many geographic shards by task-weighted k-means (seeded by Seed),
	// shard-local best-response games run concurrently, and boundary workers
	// are settled by the component-parallel exchange. ShardAuto asks the
	// engine to pick the count itself from the instance's interference
	// profile (the decision lands in Report.Shard.Auto). Methods the sharded
	// engine cannot prove equivalent or convergent for (RBDC's random
	// recipients, budgeted Opt) fall back to the unsharded game; Report.Shard
	// records what actually ran. 0 or 1 is the ordinary single-game engine.
	Shards int
	// ShardParallelism bounds the goroutines playing shard games
	// concurrently; 0 means GOMAXPROCS. Output is bit-identical at every
	// setting.
	ShardParallelism int
	// Prov, when non-nil, records the run's full decision provenance into
	// the given ledger — phase-1 routes and deadline-rejection scan events,
	// every phase-2 iteration with its trials and prune decisions, shard and
	// exchange structure, the final routes with cost breakdown, and (for the
	// Sequential assigner with collaboration on) the equilibrium
	// certificate. The same ledger is returned on Report.Provenance. Nil
	// (the default) keeps every recording hook at a single pointer check —
	// the engines' zero-allocation steady state is unchanged.
	Prov *provenance.Ledger
}

// ShardAuto as Config.Shards lets the sharded engine probe the instance and
// pick the shard count itself (collab.ShardAuto; imtao.WithShards(0) at the
// public surface).
const ShardAuto = collab.ShardAuto

// Report is the outcome of an IMTAO run.
type Report struct {
	Method   Method
	Solution *model.Solution
	// Phase1Assigned is the assigned count after the center-independent
	// phase, before any collaboration.
	Phase1Assigned   int
	Phase1Unfairness float64
	// Phase1Ratios is the per-center ratio vector after phase 1 — the game's
	// starting state, and iteration 0 of any convergence curve.
	Phase1Ratios []float64
	Assigned     int
	Ratios       []float64
	Unfairness   float64
	Transfers    int
	Trace        []collab.TraceStep
	Iterations   int
	Phase1Time   time.Duration
	Phase2Time   time.Duration
	// Shard describes the sharded engine's partition and reconciliation work
	// when Config.Shards > 1 engaged it (a one-shard report when the run
	// fell back to the unsharded game); nil for ordinary runs.
	Shard *collab.ShardReport
	// Provenance is the run's decision ledger when Config.Prov requested
	// one — Config.Prov itself, fully populated; nil otherwise. Query it in
	// memory (provenance.Replay, the explain helpers), or stream it to JSONL
	// with Ledger.WriteTo for cmd/imtao-explain.
	Provenance *provenance.Ledger
}

// ErrUnpartitioned is returned by Run when the instance has tasks or workers
// not attached to any center.
var ErrUnpartitioned = errors.New("core: instance has unattached tasks or workers; call Partition first")

// Partition attaches every task and worker of the instance to its nearest
// center using a Voronoi diagram over the center locations — paper
// Algorithm 1. It returns a new instance; the input is not modified.
func Partition(in *model.Instance) (*model.Instance, *voronoi.Diagram, error) {
	if len(in.Centers) == 0 {
		return nil, nil, voronoi.ErrTooFewSites
	}
	sites := make([]geo.Point, len(in.Centers))
	for i, c := range in.Centers {
		sites[i] = c.Loc
	}
	t0 := time.Now()
	diagram, err := voronoi.NewDiagram(sites, in.Bounds)
	if err != nil {
		return nil, nil, err
	}
	out := in.Clone()
	for ci := range out.Centers {
		out.Centers[ci].Tasks = nil
		out.Centers[ci].Workers = nil
	}
	for ti := range out.Tasks {
		c := model.CenterID(diagram.NearestSite(out.Tasks[ti].Loc))
		out.Tasks[ti].Center = c
		out.Centers[c].Tasks = append(out.Centers[c].Tasks, model.TaskID(ti))
	}
	for wi := range out.Workers {
		c := model.CenterID(diagram.NearestSite(out.Workers[wi].Loc))
		out.Workers[wi].Home = c
		out.Centers[c].Workers = append(out.Centers[c].Workers, model.WorkerID(wi))
	}
	mPartitions.Inc()
	mPartitionSeconds.Observe(time.Since(t0).Seconds())
	return out, diagram, nil
}

// Run executes the two-phase IMTAO pipeline on a partitioned instance.
func Run(in *model.Instance, cfg Config) (*Report, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	for _, t := range in.Tasks {
		if t.Center == model.NoCenter {
			return nil, ErrUnpartitioned
		}
	}
	for _, w := range in.Workers {
		if w.Home == model.NoCenter {
			return nil, ErrUnpartitioned
		}
	}

	assigner := collab.Assigner(assign.Sequential)
	// PruneAuto covers the Sequential assigner; the Opt closure needs an
	// explicit mode. Unbudgeted Optimal admits exact pruning (its VTDS
	// enumeration grows from feasible singletons, so an inadmissible worker
	// contributes no candidate set), while a time budget makes trials
	// wall-clock dependent — pruning must stay off there.
	prune := collab.PruneAuto
	if cfg.Method.Assigner == Opt {
		budget := cfg.OptBudget
		assigner = func(in *model.Instance, c *model.Center, ws []model.WorkerID, ts []model.TaskID) assign.Result {
			return assign.OptimalOpt(in, c, ws, ts, assign.OptimalOptions{TimeBudget: budget})
		}
		if budget > 0 {
			prune = collab.PruneOff
		} else {
			prune = collab.PruneOn
		}
	}

	prov := cfg.Prov
	if prov != nil {
		engine := "game"
		scope := provenance.ScopeFull
		switch cfg.Method.Collab {
		case WoC:
			engine, scope = "none", provenance.ScopeNone
		case DC:
			scope = provenance.ScopeLeftover
		}
		if engine == "game" && (cfg.Shards > 1 || cfg.Shards == ShardAuto) {
			engine = "sharded"
		}
		prov.Start(provenance.Meta{
			Method: cfg.Method.String(), Engine: engine, Scope: scope,
			Centers: len(in.Centers), Workers: len(in.Workers),
			Tasks: len(in.Tasks), Seed: cfg.Seed,
		})
	}

	o := cfg.Observer
	if o == nil {
		o = obs.Nop
	}
	tr := cfg.Tracer
	mRuns.Inc()
	runSpan := obs.StartSpan(o, "run_end", obs.F("method", cfg.Method.String()))
	var runTS obs.TraceSpan
	if tr != nil {
		runTS = tr.Start(0, "run",
			obs.F("method", cfg.Method.String()),
			obs.F("centers", len(in.Centers)),
			obs.F("workers", len(in.Workers)),
			obs.F("tasks", len(in.Tasks)))
	}
	if obs.Enabled(o) {
		o.Event("run_start",
			obs.F("method", cfg.Method.String()),
			obs.F("centers", len(in.Centers)),
			obs.F("workers", len(in.Workers)),
			obs.F("tasks", len(in.Tasks)),
			obs.F("parallelism", cfg.Parallelism))
	}

	// Distance-oracle warm-up: memoize entity→node snaps and precompute the
	// center source tables once per run. Every route starts at a center, so
	// the center tables answer the first leg of every trial the game plays;
	// the remaining sources fill in lazily through the oracle's cache. With
	// a tracer attached, the oracle records one span per Dijkstra table
	// build (pinned warm-up here, cache misses later) under the run span.
	if tr != nil {
		if st, ok := in.Metric.(interface {
			SetTrace(*obs.Tracer, obs.SpanID)
		}); ok {
			st.SetTrace(tr, runTS.ID())
			defer st.SetTrace(nil, 0)
		}
	}
	prepTS := tr.Start(runTS.ID(), "prepare_metric")
	in.PrepareMetric()
	if pc, ok := in.Metric.(interface{ PrecomputeSources([]geo.Point) }); ok {
		locs := make([]geo.Point, len(in.Centers))
		for i := range in.Centers {
			locs[i] = in.Centers[i].Loc
		}
		pc.PrecomputeSources(locs)
	}
	prepTS.End()

	// Phase 1: center-independent task assignment. Centers are independent
	// by construction (the Voronoi partition is disjoint), so they are
	// assigned concurrently, each result landing in its fixed slot — the
	// output is identical to the serial loop at any parallelism.
	t0 := time.Now()
	phase1 := make([]assign.Result, len(in.Centers))
	par := cfg.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	if par > len(in.Centers) {
		par = len(in.Centers)
	}
	var p1TS obs.TraceSpan
	if tr != nil {
		p1TS = tr.Start(runTS.ID(), "phase1", obs.F("parallelism", par))
	}
	// runCenter assigns one center, wrapped in a phase1_center span when
	// traced; it runs on the caller or on worker goroutines — the span
	// parent link is captured here, so the tree survives the fan-out.
	runCenter := func(ci int) {
		c := in.Center(model.CenterID(ci))
		// With a ledger attached, the Sequential path routes through the
		// scan-observer hook so phase-1 deadline rejections are recorded per
		// center (recorders write disjoint slots — safe under the fan-out).
		assignC := func() assign.Result {
			if prov != nil && cfg.Method.Assigner == Seq {
				return assign.SequentialOpt(in, c, c.Workers, c.Tasks,
					assign.Options{Scan: prov.ScanRecorder(model.CenterID(ci))})
			}
			return assigner(in, c, c.Workers, c.Tasks)
		}
		ct0 := time.Now()
		if tr == nil {
			phase1[ci] = assignC()
			mCenterSeconds.ObserveDuration(time.Since(ct0))
			return
		}
		cs := tr.Start(p1TS.ID(), "phase1_center", obs.F("center", ci))
		r := assignC()
		mCenterSeconds.ObserveDuration(time.Since(ct0))
		cs.End(
			obs.F("assigned", r.AssignedCount()),
			obs.F("left_workers", len(r.LeftWorkers)),
			obs.F("left_tasks", len(r.LeftTasks)))
		phase1[ci] = r
	}
	if par <= 1 {
		for ci := range in.Centers {
			runCenter(ci)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(par)
		for g := 0; g < par; g++ {
			go func() {
				defer wg.Done()
				for {
					ci := int(next.Add(1) - 1)
					if ci >= len(in.Centers) {
						return
					}
					runCenter(ci)
				}
			}()
		}
		wg.Wait()
	}
	phase1Time := time.Since(t0)
	mPhase1Seconds.Observe(phase1Time.Seconds())
	if tr != nil {
		p1TS.End(obs.F("centers", len(in.Centers)))
	}

	rep := &Report{Method: cfg.Method, Phase1Time: phase1Time}
	p1sol := collab.NoCollaboration(in, phase1)
	rep.Phase1Assigned = p1sol.AssignedCount()
	rep.Phase1Ratios = metrics.Ratios(in, p1sol)
	rep.Phase1Unfairness = metrics.Unfairness(rep.Phase1Ratios)
	if prov != nil {
		prov.RecordPhase1(in, phase1, rep.Phase1Ratios)
	}
	if obs.Enabled(o) {
		for ci := range phase1 {
			r := &phase1[ci]
			o.Event("phase1_center",
				obs.F("center", ci),
				obs.F("assigned", r.AssignedCount()),
				obs.F("left_workers", len(r.LeftWorkers)),
				obs.F("left_tasks", len(r.LeftTasks)),
				obs.F("rho", rep.Phase1Ratios[ci]),
				obs.F("tasks_scanned", r.Stats.TasksScanned),
				obs.F("deadline_rejections", r.Stats.DeadlineRejections),
				obs.F("route_extensions", r.Stats.RouteExtensions))
		}
		o.Event("phase1",
			obs.F("assigned", rep.Phase1Assigned),
			obs.F("unfairness", rep.Phase1Unfairness),
			obs.F("phi", metrics.Phi(rep.Phase1Ratios)),
			obs.F("duration_ms", obs.DurationMs(phase1Time)))
	}

	// Phase 2: inter-center workforce transfer.
	t1 := time.Now()
	var p2TS obs.TraceSpan
	if tr != nil {
		p2TS = tr.Start(runTS.ID(), "phase2", obs.F("collab", cfg.Method.Collab.String()))
	}
	switch cfg.Method.Collab {
	case WoC:
		rep.Solution = p1sol
	default:
		ccfg := collab.Config{
			Assigner:      assigner,
			Parallelism:   cfg.Parallelism,
			MaxIterations: cfg.MaxGameIterations,
			Prune:         prune,
			Obs:           cfg.Observer,
			Tracer:        tr,
			TraceParent:   p2TS.ID(),
		}
		switch cfg.Method.Collab {
		case RBDC:
			ccfg.Recipient = collab.RandomRecipient
			ccfg.Rng = rand.New(rand.NewSource(cfg.Seed))
		case DC:
			ccfg.Scope = collab.LeftoverOnly
		}
		if cfg.Shards > 1 || cfg.Shards == ShardAuto {
			out, srep := collab.RunSharded(in, phase1, collab.ShardConfig{
				Config:           ccfg,
				Shards:           cfg.Shards,
				Seed:             cfg.Seed,
				ShardParallelism: cfg.ShardParallelism,
				Ledger:           prov,
			})
			rep.Solution = out.Solution
			rep.Trace = out.Trace
			rep.Iterations = out.Iterations
			rep.Shard = &srep
		} else {
			if prov != nil {
				ccfg.Prov = prov.NewGameLog(provenance.StageGame, -1)
			}
			out := collab.Run(in, phase1, ccfg)
			rep.Solution = out.Solution
			rep.Trace = out.Trace
			rep.Iterations = out.Iterations
		}
	}
	rep.Phase2Time = time.Since(t1)
	mPhase2Seconds.Observe(rep.Phase2Time.Seconds())
	if tr != nil {
		p2TS.End(
			obs.F("iterations", rep.Iterations),
			obs.F("transfers", len(rep.Solution.Transfers)))
	}

	rep.Assigned = rep.Solution.AssignedCount()
	rep.Ratios = metrics.Ratios(in, rep.Solution)
	rep.Unfairness = metrics.Unfairness(rep.Ratios)
	rep.Transfers = len(rep.Solution.Transfers)
	if prov != nil {
		// Final sections and the certificate build OUTSIDE the phase timers:
		// provenance-on Phase2Time stays comparable to a plain run, and the
		// certificate's candidate sweep is an offline re-validation aid, not
		// engine work.
		if s := rep.Shard; s != nil {
			prov.RecordShard(provenance.ShardInfo{
				Shards:            s.Shards,
				ShardOf:           s.ShardOf,
				BoundaryWorkers:   s.BoundaryWorkers,
				ExclusiveWorkers:  s.ExclusiveWorkers,
				EmptyCut:          s.EmptyCut,
				Components:        s.Components,
				ExchangeIters:     s.ExchangeIterations,
				ExchangeTransfers: s.ExchangeTransfers,
			})
		}
		prov.RecordFinal(in, rep.Solution, rep.Unfairness)
		// The certificate's exact sweep accelerations are proven for the
		// Sequential assigner only; Opt runs (and w/o-C, which plays no
		// game) ship without one.
		if cfg.Method.Assigner == Seq && cfg.Method.Collab != WoC {
			prov.Cert = provenance.BuildCertificate(in, rep.Solution, prov.Meta.Scope)
		}
		rep.Provenance = prov
	}
	if obs.Enabled(o) {
		o.Event("phase2",
			obs.F("iterations", rep.Iterations),
			obs.F("transfers", rep.Transfers),
			obs.F("assigned", rep.Assigned),
			obs.F("unfairness", rep.Unfairness),
			obs.F("phi", metrics.Phi(rep.Ratios)),
			obs.F("duration_ms", obs.DurationMs(rep.Phase2Time)))
	}
	runSpan.End(
		obs.F("assigned", rep.Assigned),
		obs.F("unfairness", rep.Unfairness),
		obs.F("transfers", rep.Transfers),
		obs.F("iterations", rep.Iterations))
	if tr != nil {
		runTS.End(
			obs.F("assigned", rep.Assigned),
			obs.F("unfairness", rep.Unfairness),
			obs.F("transfers", rep.Transfers),
			obs.F("iterations", rep.Iterations))
	}
	return rep, nil
}
