package core

import (
	"math"
	"testing"

	"imtao/internal/model"
	"imtao/internal/workload"
)

// Golden regression values: the full pipeline is deterministic, so the
// exact outcomes at the Table I default setting are pinned here. If an
// intentional algorithm change shifts these numbers, update the table and
// the derived figures in EXPERIMENTS.md together.
func TestGoldenDefaultsSeed1(t *testing.T) {
	golden := []struct {
		dataset  workload.Dataset
		method   Method
		assigned int
		unfair   float64
	}{
		{workload.SYN, Method{Seq, WoC}, 340, 0.342},
		{workload.SYN, Method{Seq, BDC}, 377, 0.077},
		{workload.GM, Method{Seq, WoC}, 334, 0.339},
		{workload.GM, Method{Seq, BDC}, 357, 0.148},
	}
	cache := map[workload.Dataset]*model.Instance{}
	for _, g := range golden {
		in, ok := cache[g.dataset]
		if !ok {
			p := workload.Defaults(g.dataset)
			p.Seed = 1
			raw, err := workload.Generate(p)
			if err != nil {
				t.Fatal(err)
			}
			in, _, err = Partition(raw)
			if err != nil {
				t.Fatal(err)
			}
			cache[g.dataset] = in
		}
		rep, err := Run(in, Config{Method: g.method, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Assigned != g.assigned {
			t.Errorf("%v %v: assigned %d, golden %d", g.dataset, g.method, rep.Assigned, g.assigned)
		}
		if math.Abs(rep.Unfairness-g.unfair) > 5e-4 {
			t.Errorf("%v %v: unfairness %.4f, golden %.3f", g.dataset, g.method, rep.Unfairness, g.unfair)
		}
	}
}
