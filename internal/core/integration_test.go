package core

import (
	"reflect"
	"testing"

	"imtao/internal/collab"
	"imtao/internal/metrics"
	"imtao/internal/routing"
	"imtao/internal/workload"
)

// Full-pipeline integration tests at the paper's operating scale: generate →
// partition → both phases → verify every cross-module invariant at once.

func TestIntegrationPaperScaleAllSeqMethods(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale integration skipped with -short")
	}
	for _, d := range []workload.Dataset{workload.GM, workload.SYN} {
		for _, seed := range []int64{1, 2} {
			p := workload.Defaults(d)
			p.Seed = seed
			raw, err := workload.Generate(p)
			if err != nil {
				t.Fatal(err)
			}
			in, _, err := Partition(raw)
			if err != nil {
				t.Fatal(err)
			}
			if err := in.Validate(); err != nil {
				t.Fatalf("%v seed %d: %v", d, seed, err)
			}

			var woc *Report
			for _, m := range []Method{{Seq, WoC}, {Seq, DC}, {Seq, RBDC}, {Seq, BDC}} {
				rep, err := Run(in, Config{Method: m, Seed: seed})
				if err != nil {
					t.Fatalf("%v %v seed %d: %v", d, m, seed, err)
				}
				// Cross-module invariant 1: every route is a VTDS and the
				// solution is structurally consistent.
				if err := routing.SolutionFeasible(in, rep.Solution); err != nil {
					t.Fatalf("%v %v seed %d: %v", d, m, seed, err)
				}
				// Invariant 2: reported metrics recompute identically.
				if got := metrics.SolutionUnfairness(in, rep.Solution); got != rep.Unfairness {
					t.Fatalf("%v %v: unfairness mismatch", d, m)
				}
				if got := rep.Solution.AssignedCount(); got != rep.Assigned {
					t.Fatalf("%v %v: count mismatch", d, m)
				}
				// Invariant 3: transfers only move unused-at-source workers
				// across distinct centers, each at most once.
				seen := map[int]bool{}
				for _, tr := range rep.Solution.Transfers {
					if tr.Src == tr.Dst {
						t.Fatalf("%v %v: self transfer", d, m)
					}
					if seen[int(tr.Worker)] {
						t.Fatalf("%v %v: worker moved twice", d, m)
					}
					seen[int(tr.Worker)] = true
					if in.Worker(tr.Worker).Home != tr.Src {
						t.Fatalf("%v %v: transfer source mismatch", d, m)
					}
				}
				switch m.Collab {
				case WoC:
					woc = rep
				case BDC:
					// Invariant 4: the paper's headline — BDC dominates the
					// no-collaboration baseline on both objectives at the
					// default setting.
					if rep.Assigned < woc.Assigned {
						t.Fatalf("%v seed %d: BDC %d < w/o-C %d", d, seed, rep.Assigned, woc.Assigned)
					}
					if rep.Unfairness > woc.Unfairness+1e-9 {
						t.Fatalf("%v seed %d: BDC unfairness %v > w/o-C %v",
							d, seed, rep.Unfairness, woc.Unfairness)
					}
					// Invariant 5: the BDC outcome is a best-response fixed
					// point (pure Nash equilibrium of the collaboration game).
					if err := collab.VerifyEquilibrium(in, rep.Solution, nil); err != nil {
						t.Fatalf("%v seed %d: %v", d, seed, err)
					}
				}
			}
		}
	}
}

func TestIntegrationExtremeParameters(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*workload.Params)
	}{
		{"one center", func(p *workload.Params) { p.NumCenters = 1 }},
		{"more centers than entities", func(p *workload.Params) {
			p.NumCenters = 40
			p.NumTasks, p.NumWorkers = 10, 5
		}},
		{"no workers", func(p *workload.Params) { p.NumWorkers = 0 }},
		{"no tasks", func(p *workload.Params) { p.NumTasks = 0 }},
		{"capacity zero", func(p *workload.Params) { p.MaxT = 0 }},
		{"tiny expiry", func(p *workload.Params) { p.Expiry = 1e-6 }},
		{"huge expiry", func(p *workload.Params) { p.Expiry = 1e6 }},
		{"single worker single task", func(p *workload.Params) {
			p.NumWorkers, p.NumTasks, p.NumCenters = 1, 1, 1
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			p := workload.Defaults(workload.SYN)
			p.NumTasks, p.NumWorkers, p.NumCenters = 60, 15, 5
			c.mutate(&p)
			raw, err := workload.Generate(p)
			if err != nil {
				t.Fatal(err)
			}
			in, _, err := Partition(raw)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := Run(in, Config{Method: Method{Seq, BDC}})
			if err != nil {
				t.Fatal(err)
			}
			if err := routing.SolutionFeasible(in, rep.Solution); err != nil {
				t.Fatal(err)
			}
			if rep.Assigned < 0 || rep.Assigned > len(in.Tasks) {
				t.Fatalf("assigned = %d of %d", rep.Assigned, len(in.Tasks))
			}
			if rep.Unfairness < -1e-12 || rep.Unfairness > 1+1e-12 {
				t.Fatalf("unfairness = %v", rep.Unfairness)
			}
		})
	}
}

// Determinism across the whole pipeline: identical parameters produce
// byte-identical outcomes for the deterministic methods.
func TestIntegrationDeterminism(t *testing.T) {
	p := workload.Defaults(workload.GM)
	p.NumTasks, p.NumWorkers, p.NumCenters = 200, 50, 10
	run := func() *Report {
		raw, err := workload.Generate(p)
		if err != nil {
			t.Fatal(err)
		}
		in, _, err := Partition(raw)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := Run(in, Config{Method: Method{Seq, BDC}})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if a.Assigned != b.Assigned || a.Unfairness != b.Unfairness || a.Transfers != b.Transfers {
		t.Fatal("pipeline is not deterministic")
	}
	if len(a.Trace) != len(b.Trace) {
		t.Fatal("trace length differs")
	}
	for i := range a.Trace {
		// Per-iteration wall clock is outside the determinism contract.
		sa, sb := a.Trace[i], b.Trace[i]
		sa.Duration, sb.Duration = 0, 0
		if !reflect.DeepEqual(sa, sb) {
			t.Fatalf("trace step %d differs: %+v vs %+v", i, sa, sb)
		}
	}
}

// Topology robustness: the paper's conclusion (collaboration helps on both
// objectives) must hold on structured city topologies, not just uniform or
// Gaussian scatter.
func TestIntegrationPresetTopologies(t *testing.T) {
	for _, preset := range []workload.Preset{workload.Corridor, workload.TwinCities, workload.RingRoad} {
		t.Run(preset.String(), func(t *testing.T) {
			p := workload.Defaults(workload.SYN)
			p.NumTasks, p.NumWorkers, p.NumCenters = 200, 50, 10
			p.Seed = 3
			raw, err := workload.GeneratePreset(preset, p)
			if err != nil {
				t.Fatal(err)
			}
			in, _, err := Partition(raw)
			if err != nil {
				t.Fatal(err)
			}
			woc, err := Run(in, Config{Method: Method{Seq, WoC}})
			if err != nil {
				t.Fatal(err)
			}
			bdc, err := Run(in, Config{Method: Method{Seq, BDC}})
			if err != nil {
				t.Fatal(err)
			}
			if err := routing.SolutionFeasible(in, bdc.Solution); err != nil {
				t.Fatal(err)
			}
			if bdc.Assigned < woc.Assigned {
				t.Errorf("BDC %d < w/o-C %d on %v", bdc.Assigned, woc.Assigned, preset)
			}
			if bdc.Unfairness > woc.Unfairness+1e-9 {
				t.Errorf("BDC unfairness %v > w/o-C %v on %v", bdc.Unfairness, woc.Unfairness, preset)
			}
		})
	}
}
