package core

import (
	"testing"
	"time"

	"imtao/internal/metrics"
	"imtao/internal/model"
	"imtao/internal/routing"
	"imtao/internal/workload"
)

func defaultInstance(t *testing.T, d workload.Dataset, seed int64) *model.Instance {
	t.Helper()
	p := workload.Defaults(d)
	p.NumTasks, p.NumWorkers, p.NumCenters = 120, 30, 6
	p.Seed = seed
	raw, err := workload.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	in, _, err := Partition(raw)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestMethodsAndParse(t *testing.T) {
	ms := Methods()
	if len(ms) != 8 {
		t.Fatalf("expected 8 methods, got %d", len(ms))
	}
	names := map[string]bool{}
	for _, m := range ms {
		names[m.String()] = true
		got, err := ParseMethod(m.String())
		if err != nil || got != m {
			t.Errorf("ParseMethod(%q) = %v, %v", m.String(), got, err)
		}
	}
	for _, want := range []string{"Seq-BDC", "Seq-RBDC", "Seq-DC", "Seq-w/o-C", "Opt-BDC", "Opt-RBDC", "Opt-DC", "Opt-w/o-C"} {
		if !names[want] {
			t.Errorf("missing method %q", want)
		}
	}
	if _, err := ParseMethod("seq-bdc"); err != nil {
		t.Error("parse must be case-insensitive")
	}
	if _, err := ParseMethod("bogus"); err == nil {
		t.Error("bogus method must error")
	}
}

func TestPartitionAttachesEverything(t *testing.T) {
	p := workload.Defaults(workload.SYN)
	p.NumTasks, p.NumWorkers, p.NumCenters = 100, 25, 7
	raw, err := workload.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	in, diagram, err := Partition(raw)
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	if diagram == nil || len(diagram.Cells) != 7 {
		t.Fatal("diagram missing")
	}
	totalT, totalW := 0, 0
	for _, c := range in.Centers {
		totalT += len(c.Tasks)
		totalW += len(c.Workers)
	}
	if totalT != 100 || totalW != 25 {
		t.Fatalf("partition lost entities: %d tasks, %d workers", totalT, totalW)
	}
	// Nearest-center property.
	for _, task := range in.Tasks {
		for _, c := range in.Centers {
			if task.Loc.Dist2(c.Loc) < task.Loc.Dist2(in.Centers[task.Center].Loc)-1e-9 {
				t.Fatalf("task %d not attached to nearest center", task.ID)
			}
		}
	}
	// Original untouched.
	if raw.Tasks[0].Center != model.NoCenter {
		t.Fatal("Partition mutated its input")
	}
}

func TestRunRequiresPartition(t *testing.T) {
	p := workload.Defaults(workload.SYN)
	p.NumTasks, p.NumWorkers, p.NumCenters = 10, 5, 2
	raw, err := workload.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(raw, Config{}); err == nil {
		t.Fatal("unpartitioned instance must be rejected")
	}
}

func TestRunSeqMethodsEndToEnd(t *testing.T) {
	in := defaultInstance(t, workload.SYN, 3)
	var woc, bdc, dc *Report
	for _, m := range []Method{{Seq, WoC}, {Seq, BDC}, {Seq, DC}, {Seq, RBDC}} {
		rep, err := Run(in, Config{Method: m, Seed: 11})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if err := routing.SolutionFeasible(in, rep.Solution); err != nil {
			t.Fatalf("%v: infeasible solution: %v", m, err)
		}
		if rep.Assigned != rep.Solution.AssignedCount() {
			t.Fatalf("%v: report count mismatch", m)
		}
		if got := metrics.Unfairness(rep.Ratios); got != rep.Unfairness {
			t.Fatalf("%v: unfairness mismatch", m)
		}
		switch m.Collab {
		case WoC:
			woc = rep
		case BDC:
			bdc = rep
		case DC:
			dc = rep
		}
	}
	if bdc.Assigned < woc.Assigned {
		t.Fatalf("BDC %d < w/o-C %d", bdc.Assigned, woc.Assigned)
	}
	if dc.Assigned < woc.Assigned {
		t.Fatalf("DC %d < w/o-C %d", dc.Assigned, woc.Assigned)
	}
	if woc.Transfers != 0 {
		t.Fatal("w/o-C must not transfer workers")
	}
	if bdc.Phase1Assigned != woc.Assigned {
		t.Fatalf("phase-1 count %d should equal w/o-C %d", bdc.Phase1Assigned, woc.Assigned)
	}
}

func TestRunOptSmall(t *testing.T) {
	p := workload.Defaults(workload.SYN)
	p.NumTasks, p.NumWorkers, p.NumCenters = 40, 12, 4
	p.Seed = 9
	raw, err := workload.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	in, _, err := Partition(raw)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := Run(in, Config{Method: Method{Seq, WoC}})
	if err != nil {
		t.Fatal(err)
	}
	opt, err := Run(in, Config{Method: Method{Opt, WoC}, OptBudget: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if opt.Assigned < seq.Assigned {
		t.Fatalf("Opt %d < Seq %d", opt.Assigned, seq.Assigned)
	}
	if err := routing.SolutionFeasible(in, opt.Solution); err != nil {
		t.Fatal(err)
	}
}

func TestRunDeterministicPerSeed(t *testing.T) {
	in := defaultInstance(t, workload.GM, 4)
	a, err := Run(in, Config{Method: Method{Seq, RBDC}, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(in, Config{Method: Method{Seq, RBDC}, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if a.Assigned != b.Assigned || a.Unfairness != b.Unfairness || a.Transfers != b.Transfers {
		t.Fatal("same seed must reproduce the run")
	}
}

func TestRunTraceMatchesTransfers(t *testing.T) {
	in := defaultInstance(t, workload.GM, 8)
	rep, err := Run(in, Config{Method: Method{Seq, BDC}})
	if err != nil {
		t.Fatal(err)
	}
	accepted := 0
	for _, s := range rep.Trace {
		if s.Accepted {
			accepted++
		}
	}
	if accepted != rep.Transfers {
		t.Fatalf("accepted steps %d != transfers %d", accepted, rep.Transfers)
	}
	if rep.Iterations < len(rep.Trace) {
		t.Fatalf("iterations %d < trace length %d", rep.Iterations, len(rep.Trace))
	}
}

func TestKindStrings(t *testing.T) {
	if Seq.String() != "Seq" || Opt.String() != "Opt" {
		t.Error("AssignerKind strings")
	}
	if BDC.String() != "BDC" || RBDC.String() != "RBDC" || DC.String() != "DC" || WoC.String() != "w/o-C" {
		t.Error("CollabKind strings")
	}
}

func TestRunOptBDCSmall(t *testing.T) {
	p := workload.Defaults(workload.SYN)
	p.NumTasks, p.NumWorkers, p.NumCenters = 30, 10, 3
	p.Seed = 12
	raw, err := workload.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	in, _, err := Partition(raw)
	if err != nil {
		t.Fatal(err)
	}
	woc, err := Run(in, Config{Method: Method{Opt, WoC}, OptBudget: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	bdc, err := Run(in, Config{Method: Method{Opt, BDC}, OptBudget: 200 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if err := routing.SolutionFeasible(in, bdc.Solution); err != nil {
		t.Fatal(err)
	}
	if bdc.Assigned < woc.Assigned {
		t.Fatalf("Opt-BDC %d < Opt-w/o-C %d", bdc.Assigned, woc.Assigned)
	}
}
