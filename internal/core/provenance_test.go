package core

import (
	"bytes"
	"testing"

	"imtao/internal/model"
	"imtao/internal/provenance"
	"imtao/internal/workload"
)

// provInstance generates a partitioned paper-default instance for the
// provenance property suite.
func provInstance(t *testing.T, mutate func(*workload.Params)) *model.Instance {
	t.Helper()
	p := workload.Defaults(workload.SYN)
	if mutate != nil {
		mutate(&p)
	}
	raw, err := workload.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	in, _, err := Partition(raw)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// TestProvenanceReplayReconstructsSolution is the ledger-completeness
// property: replaying a provenance ledger — with no instance, assigner or
// game — reconstructs the run's exact final assignment, fingerprint-equal
// to the live Report, across every collaboration method on the unsharded
// engine for both assigners.
func TestProvenanceReplayReconstructsSolution(t *testing.T) {
	type tc struct {
		name string
		cfg  Config
		in   func(t *testing.T) *model.Instance
	}
	seqIn := func(t *testing.T) *model.Instance { return provInstance(t, nil) }
	// Opt's branch-and-bound only stays fast on a small instance; a zero
	// budget keeps it deterministic (budgeted Opt trials are wall-clock
	// dependent and not replay-stable).
	optIn := func(t *testing.T) *model.Instance {
		return provInstance(t, func(p *workload.Params) {
			p.NumTasks, p.NumWorkers, p.NumCenters, p.Seed = 60, 20, 4, 7
		})
	}
	var cases []tc
	for _, ck := range []CollabKind{BDC, RBDC, DC, WoC} {
		cases = append(cases, tc{
			name: Method{Seq, ck}.String(),
			cfg:  Config{Method: Method{Seq, ck}, Seed: 3},
			in:   seqIn,
		})
		cases = append(cases, tc{
			name: Method{Opt, ck}.String(),
			cfg:  Config{Method: Method{Opt, ck}, Seed: 3},
			in:   optIn,
		})
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			in := c.in(t)
			cfg := c.cfg
			cfg.Prov = provenance.NewLedger()
			rep, err := Run(in, cfg)
			if err != nil {
				t.Fatal(err)
			}
			assertReplayMatches(t, rep)
		})
	}
}

// TestProvenanceReplaySharded extends the replay property to the sharded
// engine: empty and non-empty interference cuts, with the merge interleave
// re-derived from the recorded per-step ρ values.
func TestProvenanceReplaySharded(t *testing.T) {
	for _, shards := range []int{2, 4, 8} {
		for _, ck := range []CollabKind{BDC, DC} {
			m := Method{Seq, ck}
			t.Run(m.String()+"/shards="+string(rune('0'+shards)), func(t *testing.T) {
				in := provInstance(t, func(p *workload.Params) { p.Seed = int64(shards) })
				cfg := Config{Method: m, Seed: 5, Shards: shards,
					Prov: provenance.NewLedger()}
				rep, err := Run(in, cfg)
				if err != nil {
					t.Fatal(err)
				}
				if rep.Shard == nil {
					t.Fatal("sharded run produced no shard report")
				}
				assertReplayMatches(t, rep)
				if rep.Provenance.Shard == nil {
					t.Error("ledger missing shard section")
				}
			})
		}
	}
}

// TestProvenanceReplayCappedRun: an iteration-capped game must still replay
// exactly (the certificate just won't claim equilibrium).
func TestProvenanceReplayCappedRun(t *testing.T) {
	in := provInstance(t, nil)
	cfg := Config{Method: Method{Seq, BDC}, MaxGameIterations: 5,
		Prov: provenance.NewLedger()}
	rep, err := Run(in, cfg)
	if err != nil {
		t.Fatal(err)
	}
	assertReplayMatches(t, rep)
}

func assertReplayMatches(t *testing.T, rep *Report) {
	t.Helper()
	l := rep.Provenance
	if l == nil {
		t.Fatal("Report.Provenance is nil with Config.Prov set")
	}
	if l.Final == nil {
		t.Fatal("ledger has no final section")
	}
	want := provenance.SolutionFingerprint(rep.Solution)
	if l.Final.Fingerprint != want {
		t.Fatalf("final fingerprint %016x, solution %016x", l.Final.Fingerprint, want)
	}
	rr, err := provenance.Replay(l)
	if err != nil {
		t.Fatal(err)
	}
	if got := provenance.SolutionFingerprint(rr.Solution); got != want {
		t.Fatalf("replay fingerprint %016x, live solution %016x", got, want)
	}
	if got, wantN := rr.Solution.AssignedCount(), rep.Assigned; got != wantN {
		t.Fatalf("replay assigned %d, report %d", got, wantN)
	}
	if got, wantN := len(rr.Solution.Transfers), rep.Transfers; got != wantN {
		t.Fatalf("replay transfers %d, report %d", got, wantN)
	}
}

// TestProvenanceCertificate checks the certificate round-trip: the run's
// certificate re-validates offline from (instance, solution) alone, and a
// tampered certificate is rejected.
func TestProvenanceCertificate(t *testing.T) {
	for _, ck := range []CollabKind{BDC, DC} {
		m := Method{Seq, ck}
		t.Run(m.String(), func(t *testing.T) {
			in := provInstance(t, nil)
			cfg := Config{Method: m, Prov: provenance.NewLedger()}
			rep, err := Run(in, cfg)
			if err != nil {
				t.Fatal(err)
			}
			cert := rep.Provenance.Cert
			if cert == nil {
				t.Fatal("no certificate on a Seq collaboration run")
			}
			if !cert.Equilibrium {
				t.Fatal("uncapped run's certificate does not claim equilibrium")
			}
			if err := cert.Verify(in, rep.Solution); err != nil {
				t.Fatalf("certificate failed offline re-validation: %v", err)
			}
			if len(cert.Centers) > 0 {
				bad := *cert
				bad.Centers = append([]provenance.Witness(nil), cert.Centers...)
				bad.Centers[0].Hash ^= 1
				if err := bad.Verify(in, rep.Solution); err == nil {
					t.Fatal("tampered witness hash passed verification")
				}
			}
			bad := *cert
			bad.SolutionFP ^= 1
			if err := bad.Verify(in, rep.Solution); err == nil {
				t.Fatal("tampered fingerprint passed verification")
			}
		})
	}
}

// TestProvenanceCappedNoEquilibriumClaim: a hard-capped game must not
// certify equilibrium when improving deviations remain.
func TestProvenanceCappedNoEquilibriumClaim(t *testing.T) {
	in := provInstance(t, nil)
	cfg := Config{Method: Method{Seq, BDC}, MaxGameIterations: 1,
		Prov: provenance.NewLedger()}
	rep, err := Run(in, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cert := rep.Provenance.Cert
	if cert == nil {
		t.Fatal("no certificate")
	}
	// One iteration into a paper-default instance cannot be at equilibrium
	// (the reference run needs >1); the certificate must agree — and still
	// verify offline, Equilibrium=false included.
	if rep.Iterations >= 1 && rep.Transfers >= 1 && cert.Equilibrium {
		// Only meaningful if the full game would have gone further.
		full, err := Run(in, Config{Method: Method{Seq, BDC}})
		if err != nil {
			t.Fatal(err)
		}
		if full.Transfers > rep.Transfers {
			t.Fatal("capped run certified equilibrium with transfers remaining")
		}
	}
	if err := cert.Verify(in, rep.Solution); err != nil {
		t.Fatalf("capped-run certificate failed re-validation: %v", err)
	}
}

// TestProvenancePhase1Scans: the Sequential phase-1 path records its
// deadline-rejection scan events, and they agree with the Stats counters.
func TestProvenancePhase1Scans(t *testing.T) {
	in := provInstance(t, nil)
	cfg := Config{Method: Method{Seq, WoC}, Prov: provenance.NewLedger()}
	rep, err := Run(in, cfg)
	if err != nil {
		t.Fatal(err)
	}
	l := rep.Provenance
	total := 0
	for _, evs := range l.Scans {
		total += len(evs)
		for _, e := range evs {
			if e.Arrive <= e.Expiry {
				t.Fatalf("scan event (w%d,s%d) arrive %v ≤ expiry %v — not a rejection",
					e.Worker, e.Task, e.Arrive, e.Expiry)
			}
		}
	}
	if total == 0 {
		t.Fatal("paper-default phase 1 recorded no deadline rejections")
	}
}

// TestProvenanceJSONLRoundTripReplay: a ledger survives serialization — the
// written-then-reread ledger replays to the same fingerprint and carries a
// certificate that still verifies.
func TestProvenanceJSONLRoundTripReplay(t *testing.T) {
	in := provInstance(t, nil)
	cfg := Config{Method: Method{Seq, BDC}, Seed: 3, Shards: 2,
		Prov: provenance.NewLedger()}
	rep, err := Run(in, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := rep.Provenance.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := provenance.ReadLedger(&buf)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := provenance.Replay(back)
	if err != nil {
		t.Fatal(err)
	}
	want := provenance.SolutionFingerprint(rep.Solution)
	if got := provenance.SolutionFingerprint(rr.Solution); got != want {
		t.Fatalf("reread replay fingerprint %016x, live %016x", got, want)
	}
	if back.Cert == nil {
		t.Fatal("certificate lost in serialization")
	}
	if err := back.Cert.Verify(in, rep.Solution); err != nil {
		t.Fatalf("reread certificate failed verification: %v", err)
	}
	if back.IterCount() != rep.Provenance.IterCount() ||
		back.TrialCount() != rep.Provenance.TrialCount() {
		t.Fatalf("record counts changed: iters %d→%d trials %d→%d",
			rep.Provenance.IterCount(), back.IterCount(),
			rep.Provenance.TrialCount(), back.TrialCount())
	}
}
