package workload

import (
	"bytes"
	"math"
	"testing"

	"imtao/internal/geo"
	"imtao/internal/model"
)

func TestDefaults(t *testing.T) {
	for _, d := range []Dataset{SYN, GM} {
		p := Defaults(d)
		if p.NumCenters != 20 || p.NumWorkers != 100 || p.NumTasks != 400 ||
			p.Expiry != 1.0 || p.MaxT != 4 {
			t.Errorf("%v defaults = %+v", d, p)
		}
		if err := p.Validate(); err != nil {
			t.Errorf("%v defaults invalid: %v", d, err)
		}
	}
}

func TestParamsValidate(t *testing.T) {
	bad := []Params{
		{NumCenters: 0, Expiry: 1},
		{NumCenters: 5, NumTasks: -1, Expiry: 1},
		{NumCenters: 5, Expiry: 0},
		{NumCenters: 5, Expiry: 1, MaxT: -1},
		{NumCenters: 5, Expiry: 1, Speed: -3},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: expected error for %+v", i, p)
		}
	}
}

func TestGenerateCountsAndBounds(t *testing.T) {
	for _, d := range []Dataset{SYN, GM} {
		p := Defaults(d)
		p.NumTasks, p.NumWorkers, p.NumCenters = 50, 20, 5
		in, err := Generate(p)
		if err != nil {
			t.Fatal(err)
		}
		if len(in.Tasks) != 50 || len(in.Workers) != 20 || len(in.Centers) != 5 {
			t.Fatalf("%v: counts %d/%d/%d", d, len(in.Tasks), len(in.Workers), len(in.Centers))
		}
		for _, task := range in.Tasks {
			if !in.Bounds.Contains(task.Loc) {
				t.Fatalf("%v: task outside bounds: %v", d, task.Loc)
			}
			if task.Center != model.NoCenter {
				t.Fatalf("%v: generated instance must be unpartitioned", d)
			}
			if task.Expiry != p.Expiry || task.Reward != p.Reward {
				t.Fatalf("%v: task params not applied", d)
			}
		}
		for _, w := range in.Workers {
			if !in.Bounds.Contains(w.Loc) {
				t.Fatalf("%v: worker outside bounds", d)
			}
			if w.MaxT != p.MaxT {
				t.Fatalf("%v: worker MaxT not applied", d)
			}
		}
		if in.Speed != p.Speed {
			t.Fatalf("%v: speed not applied", d)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := Defaults(GM)
	p.Seed = 42
	a, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Tasks {
		if !a.Tasks[i].Loc.Eq(b.Tasks[i].Loc) {
			t.Fatal("same seed produced different tasks")
		}
	}
	p.Seed = 43
	c, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Tasks {
		if !a.Tasks[i].Loc.Eq(c.Tasks[i].Loc) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical tasks")
	}
}

func TestGenerateZeroSpeedDefaults(t *testing.T) {
	p := Defaults(SYN)
	p.Speed = 0
	in, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	if in.Speed != DefaultSpeed {
		t.Fatalf("speed = %v, want DefaultSpeed", in.Speed)
	}
}

// GM's distinguishing feature versus SYN is that supply tracks demand:
// workers congregate where tasks are, so the mean worker-to-nearest-task
// distance must be clearly smaller than under the uniform dataset.
func TestGMWorkersTrackTasks(t *testing.T) {
	pg, ps := Defaults(GM), Defaults(SYN)
	pg.Seed, ps.Seed = 5, 5
	gm, err := Generate(pg)
	if err != nil {
		t.Fatal(err)
	}
	syn, err := Generate(ps)
	if err != nil {
		t.Fatal(err)
	}
	if g, s := meanWorkerTaskDist(gm), meanWorkerTaskDist(syn); g > 0.8*s {
		t.Fatalf("GM worker->task dist %v not clearly below SYN %v", g, s)
	}
}

func meanWorkerTaskDist(in *model.Instance) float64 {
	var sum float64
	for _, w := range in.Workers {
		best := math.Inf(1)
		for _, task := range in.Tasks {
			if d := w.Loc.Dist(task.Loc); d < best {
				best = d
			}
		}
		sum += best
	}
	return sum / float64(len(in.Workers))
}

func TestParseDataset(t *testing.T) {
	if d, err := ParseDataset("gm"); err != nil || d != GM {
		t.Errorf("gm: %v %v", d, err)
	}
	if d, err := ParseDataset("SYN"); err != nil || d != SYN {
		t.Errorf("SYN: %v %v", d, err)
	}
	if _, err := ParseDataset("nope"); err == nil {
		t.Error("expected error")
	}
	if GM.String() != "GM" || SYN.String() != "SYN" {
		t.Error("String() mismatch")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	p := Defaults(GM)
	p.NumTasks, p.NumWorkers, p.NumCenters = 30, 10, 4
	in, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, in); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertSameInstance(t, in, got)
}

func TestCSVRoundTrip(t *testing.T) {
	p := Defaults(SYN)
	p.NumTasks, p.NumWorkers, p.NumCenters = 25, 8, 3
	in, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, in); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertSameInstance(t, in, got)
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(bytes.NewBufferString("kind,x,y,expiry,reward,maxT,speed\nalien,1,2,3,4,5,6\n")); err == nil {
		t.Error("unknown kind must error")
	}
	if _, err := ReadCSV(bytes.NewBufferString("bad csv\"")); err == nil {
		t.Error("malformed csv must error")
	}
}

func TestReadJSONError(t *testing.T) {
	if _, err := ReadJSON(bytes.NewBufferString("{nope")); err == nil {
		t.Error("malformed json must error")
	}
}

func assertSameInstance(t *testing.T, want, got *model.Instance) {
	t.Helper()
	if got.Speed != want.Speed {
		t.Fatalf("speed %v != %v", got.Speed, want.Speed)
	}
	if !got.Bounds.Min.Eq(want.Bounds.Min) || !got.Bounds.Max.Eq(want.Bounds.Max) {
		t.Fatal("bounds mismatch")
	}
	if len(got.Centers) != len(want.Centers) || len(got.Tasks) != len(want.Tasks) || len(got.Workers) != len(want.Workers) {
		t.Fatal("count mismatch")
	}
	for i := range want.Centers {
		if !got.Centers[i].Loc.Eq(want.Centers[i].Loc) {
			t.Fatalf("center %d location mismatch", i)
		}
	}
	for i := range want.Tasks {
		if !got.Tasks[i].Loc.Eq(want.Tasks[i].Loc) ||
			math.Abs(got.Tasks[i].Expiry-want.Tasks[i].Expiry) > 1e-12 ||
			math.Abs(got.Tasks[i].Reward-want.Tasks[i].Reward) > 1e-12 {
			t.Fatalf("task %d mismatch", i)
		}
	}
	for i := range want.Workers {
		if !got.Workers[i].Loc.Eq(want.Workers[i].Loc) || got.Workers[i].MaxT != want.Workers[i].MaxT {
			t.Fatalf("worker %d mismatch", i)
		}
	}
}

func TestSolutionJSONRoundTrip(t *testing.T) {
	// Build a small instance + hand solution, round-trip it.
	p := Defaults(SYN)
	p.NumTasks, p.NumWorkers, p.NumCenters = 6, 3, 2
	in, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	// Manual partition: everything to center 0 except task 5 / worker 2.
	for i := range in.Tasks {
		c := model.CenterID(0)
		if i == 5 {
			c = 1
		}
		in.Tasks[i].Center = c
		in.Centers[c].Tasks = append(in.Centers[c].Tasks, model.TaskID(i))
	}
	for i := range in.Workers {
		c := model.CenterID(0)
		if i == 2 {
			c = 1
		}
		in.Workers[i].Home = c
		in.Centers[c].Workers = append(in.Centers[c].Workers, model.WorkerID(i))
	}
	sol := model.NewSolution(in)
	sol.PerCenter[0].Routes = []model.Route{
		{Worker: 0, Center: 0, Tasks: []model.TaskID{0, 2}},
		{Worker: 1, Center: 0, Tasks: []model.TaskID{1}},
	}
	sol.PerCenter[1].Routes = []model.Route{{Worker: 2, Center: 1, Tasks: []model.TaskID{5}}}
	sol.Transfers = []model.Transfer{{Src: 0, Dst: 1, Worker: 1}}

	var buf bytes.Buffer
	if err := WriteSolutionJSON(&buf, sol); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSolutionJSON(&buf, in)
	if err != nil {
		t.Fatal(err)
	}
	if got.AssignedCount() != sol.AssignedCount() {
		t.Fatalf("count %d != %d", got.AssignedCount(), sol.AssignedCount())
	}
	if len(got.Transfers) != 1 || got.Transfers[0] != sol.Transfers[0] {
		t.Fatalf("transfers = %v", got.Transfers)
	}
	for ci := range sol.PerCenter {
		if len(got.PerCenter[ci].Routes) != len(sol.PerCenter[ci].Routes) {
			t.Fatalf("center %d route count differs", ci)
		}
	}
}

func TestReadSolutionJSONRejectsInconsistent(t *testing.T) {
	p := Defaults(SYN)
	p.NumTasks, p.NumWorkers, p.NumCenters = 2, 1, 1
	in, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	in.Tasks[0].Center, in.Tasks[1].Center = 0, 0
	in.Centers[0].Tasks = []model.TaskID{0, 1}
	in.Workers[0].Home = 0
	in.Centers[0].Workers = []model.WorkerID{0}

	// Duplicate task across routes.
	bad := `{"centers":[{"center":0,"routes":[{"worker":0,"tasks":[0,0]}]}]}`
	if _, err := ReadSolutionJSON(bytes.NewBufferString(bad), in); err == nil {
		t.Error("duplicate-task solution accepted")
	}
	// Unknown center.
	bad = `{"centers":[{"center":7,"routes":[]}]}`
	if _, err := ReadSolutionJSON(bytes.NewBufferString(bad), in); err == nil {
		t.Error("unknown-center solution accepted")
	}
	// Garbage.
	if _, err := ReadSolutionJSON(bytes.NewBufferString("{"), in); err == nil {
		t.Error("malformed json accepted")
	}
}

func TestGeneratePresets(t *testing.T) {
	for _, preset := range []Preset{Corridor, TwinCities, RingRoad} {
		p := Defaults(SYN)
		p.NumTasks, p.NumWorkers, p.NumCenters = 100, 30, 6
		in, err := GeneratePreset(preset, p)
		if err != nil {
			t.Fatalf("%v: %v", preset, err)
		}
		if len(in.Tasks) != 100 || len(in.Workers) != 30 || len(in.Centers) != 6 {
			t.Fatalf("%v: counts wrong", preset)
		}
		for _, task := range in.Tasks {
			if !in.Bounds.Contains(task.Loc) {
				t.Fatalf("%v: task outside bounds", preset)
			}
		}
	}
	if Corridor.String() != "Corridor" || TwinCities.String() != "TwinCities" || RingRoad.String() != "RingRoad" {
		t.Error("preset names")
	}
}

func TestGeneratePresetShapes(t *testing.T) {
	p := Defaults(SYN)
	p.NumTasks, p.NumWorkers, p.NumCenters = 400, 50, 8
	p.Seed = 7

	// Corridor: y-coordinates hug the mid line.
	corr, err := GeneratePreset(Corridor, p)
	if err != nil {
		t.Fatal(err)
	}
	off := 0
	for _, task := range corr.Tasks {
		if math.Abs(task.Loc.Y-Side/2) > Side*0.25 {
			off++
		}
	}
	if off > len(corr.Tasks)/20 {
		t.Errorf("corridor: %d/%d tasks far off the band", off, len(corr.Tasks))
	}

	// TwinCities: x-coordinates avoid the middle.
	twin, err := GeneratePreset(TwinCities, p)
	if err != nil {
		t.Fatal(err)
	}
	mid := 0
	for _, task := range twin.Tasks {
		if math.Abs(task.Loc.X-Side/2) < Side*0.1 {
			mid++
		}
	}
	if mid > len(twin.Tasks)/10 {
		t.Errorf("twin cities: %d/%d tasks in the gap", mid, len(twin.Tasks))
	}

	// RingRoad: radii concentrate around 0.35*Side.
	ring, err := GeneratePreset(RingRoad, p)
	if err != nil {
		t.Fatal(err)
	}
	center := geo.Pt(Side/2, Side/2)
	offRing := 0
	for _, task := range ring.Tasks {
		r := task.Loc.Dist(center)
		if math.Abs(r-Side*0.35) > Side*0.15 {
			offRing++
		}
	}
	if offRing > len(ring.Tasks)/10 {
		t.Errorf("ring road: %d/%d tasks off the ring", offRing, len(ring.Tasks))
	}
}

func TestGeneratePresetErrors(t *testing.T) {
	bad := Params{NumCenters: 0, Expiry: 1}
	if _, err := GeneratePreset(Corridor, bad); err == nil {
		t.Error("invalid params accepted")
	}
	if _, err := GeneratePreset(Preset(99), Defaults(SYN)); err == nil {
		t.Error("unknown preset accepted")
	}
}

func TestRewardJitter(t *testing.T) {
	p := Defaults(SYN)
	p.RewardJitter = 0.5
	p.NumTasks = 200
	in, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, task := range in.Tasks {
		if task.Reward < p.Reward*0.5-1e-9 || task.Reward > p.Reward*1.5+1e-9 {
			t.Fatalf("reward %v outside jitter range", task.Reward)
		}
		lo = math.Min(lo, task.Reward)
		hi = math.Max(hi, task.Reward)
	}
	if hi-lo < p.Reward*0.5 {
		t.Errorf("rewards barely spread: [%v, %v]", lo, hi)
	}
	p.RewardJitter = 1.0
	if err := p.Validate(); err == nil {
		t.Error("jitter 1.0 must be rejected")
	}
	p.RewardJitter = -0.1
	if err := p.Validate(); err == nil {
		t.Error("negative jitter must be rejected")
	}
}
