package workload

import (
	"encoding/json"
	"fmt"
	"io"

	"imtao/internal/model"
)

// solutionJSON serialises a platform-wide assignment for archival and
// replay (imtao-sim -save / -replay).
type solutionJSON struct {
	Centers   []centerSolJSON `json:"centers"`
	Transfers []transferJSON  `json:"transfers,omitempty"`
}

type centerSolJSON struct {
	Center int         `json:"center"`
	Routes []routeJSON `json:"routes,omitempty"`
}

type routeJSON struct {
	Worker int   `json:"worker"`
	Tasks  []int `json:"tasks"`
}

type transferJSON struct {
	Src    int `json:"src"`
	Dst    int `json:"dst"`
	Worker int `json:"worker"`
}

// WriteSolutionJSON serialises a solution.
func WriteSolutionJSON(w io.Writer, sol *model.Solution) error {
	out := solutionJSON{}
	for ci := range sol.PerCenter {
		cs := centerSolJSON{Center: ci}
		for _, r := range sol.PerCenter[ci].Routes {
			rt := routeJSON{Worker: int(r.Worker), Tasks: make([]int, len(r.Tasks))}
			for i, t := range r.Tasks {
				rt.Tasks[i] = int(t)
			}
			cs.Routes = append(cs.Routes, rt)
		}
		out.Centers = append(out.Centers, cs)
	}
	for _, tr := range sol.Transfers {
		out.Transfers = append(out.Transfers, transferJSON{
			Src: int(tr.Src), Dst: int(tr.Dst), Worker: int(tr.Worker),
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ReadSolutionJSON deserialises a solution written by WriteSolutionJSON and
// validates it against the instance (structural consistency only; run
// routing.SolutionFeasible for the temporal checks).
func ReadSolutionJSON(r io.Reader, in *model.Instance) (*model.Solution, error) {
	var raw solutionJSON
	if err := json.NewDecoder(r).Decode(&raw); err != nil {
		return nil, fmt.Errorf("workload: decoding solution: %w", err)
	}
	sol := model.NewSolution(in)
	for _, cs := range raw.Centers {
		if cs.Center < 0 || cs.Center >= len(in.Centers) {
			return nil, fmt.Errorf("workload: solution references center %d", cs.Center)
		}
		for _, rt := range cs.Routes {
			route := model.Route{
				Worker: model.WorkerID(rt.Worker),
				Center: model.CenterID(cs.Center),
				Tasks:  make([]model.TaskID, len(rt.Tasks)),
			}
			for i, t := range rt.Tasks {
				route.Tasks[i] = model.TaskID(t)
			}
			sol.PerCenter[cs.Center].Routes = append(sol.PerCenter[cs.Center].Routes, route)
		}
	}
	for _, tr := range raw.Transfers {
		sol.Transfers = append(sol.Transfers, model.Transfer{
			Src: model.CenterID(tr.Src), Dst: model.CenterID(tr.Dst), Worker: model.WorkerID(tr.Worker),
		})
	}
	if err := sol.CheckConsistency(in); err != nil {
		return nil, fmt.Errorf("workload: loaded solution inconsistent: %w", err)
	}
	return sol, nil
}
