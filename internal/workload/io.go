package workload

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"imtao/internal/geo"
	"imtao/internal/model"
)

// instanceJSON is the serialised form of an instance. Center membership
// lists are not stored: partitioning is recomputed on load when needed,
// keeping files small and eliminating inconsistency.
type instanceJSON struct {
	Speed   float64      `json:"speed"`
	Bounds  [4]float64   `json:"bounds"` // minX, minY, maxX, maxY
	Centers [][2]float64 `json:"centers"`
	Tasks   []taskJSON   `json:"tasks"`
	Workers []workerJSON `json:"workers"`
}

type taskJSON struct {
	X      float64 `json:"x"`
	Y      float64 `json:"y"`
	Expiry float64 `json:"expiry"`
	Reward float64 `json:"reward"`
}

type workerJSON struct {
	X    float64 `json:"x"`
	Y    float64 `json:"y"`
	MaxT int     `json:"maxT"`
}

// WriteJSON serialises an instance (ignoring any existing partition).
func WriteJSON(w io.Writer, in *model.Instance) error {
	out := instanceJSON{
		Speed:  in.Speed,
		Bounds: [4]float64{in.Bounds.Min.X, in.Bounds.Min.Y, in.Bounds.Max.X, in.Bounds.Max.Y},
	}
	for _, c := range in.Centers {
		out.Centers = append(out.Centers, [2]float64{c.Loc.X, c.Loc.Y})
	}
	for _, t := range in.Tasks {
		out.Tasks = append(out.Tasks, taskJSON{X: t.Loc.X, Y: t.Loc.Y, Expiry: t.Expiry, Reward: t.Reward})
	}
	for _, wk := range in.Workers {
		out.Workers = append(out.Workers, workerJSON{X: wk.Loc.X, Y: wk.Loc.Y, MaxT: wk.MaxT})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ReadJSON deserialises an instance written by WriteJSON. The result is
// unpartitioned.
func ReadJSON(r io.Reader) (*model.Instance, error) {
	var raw instanceJSON
	if err := json.NewDecoder(r).Decode(&raw); err != nil {
		return nil, fmt.Errorf("workload: decoding instance: %w", err)
	}
	in := &model.Instance{
		Speed:  raw.Speed,
		Bounds: geo.NewRect(geo.Pt(raw.Bounds[0], raw.Bounds[1]), geo.Pt(raw.Bounds[2], raw.Bounds[3])),
	}
	for i, c := range raw.Centers {
		in.Centers = append(in.Centers, model.Center{ID: model.CenterID(i), Loc: geo.Pt(c[0], c[1])})
	}
	for i, t := range raw.Tasks {
		in.Tasks = append(in.Tasks, model.Task{
			ID: model.TaskID(i), Center: model.NoCenter,
			Loc: geo.Pt(t.X, t.Y), Expiry: t.Expiry, Reward: t.Reward,
		})
	}
	for i, wk := range raw.Workers {
		in.Workers = append(in.Workers, model.Worker{
			ID: model.WorkerID(i), Home: model.NoCenter,
			Loc: geo.Pt(wk.X, wk.Y), MaxT: wk.MaxT,
		})
	}
	return in, nil
}

// WriteCSV writes the instance as three CSV sections (centers, tasks,
// workers), each introduced by a header row. The format is meant for
// eyeballing and spreadsheet import.
func WriteCSV(w io.Writer, in *model.Instance) error {
	cw := csv.NewWriter(w)
	defer cw.Flush()
	rows := [][]string{{"kind", "x", "y", "expiry", "reward", "maxT", "speed"}}
	rows = append(rows, []string{"meta", f(in.Bounds.Min.X), f(in.Bounds.Min.Y), f(in.Bounds.Max.X), f(in.Bounds.Max.Y), "", f(in.Speed)})
	for _, c := range in.Centers {
		rows = append(rows, []string{"center", f(c.Loc.X), f(c.Loc.Y), "", "", "", ""})
	}
	for _, t := range in.Tasks {
		rows = append(rows, []string{"task", f(t.Loc.X), f(t.Loc.Y), f(t.Expiry), f(t.Reward), "", ""})
	}
	for _, wk := range in.Workers {
		rows = append(rows, []string{"worker", f(wk.Loc.X), f(wk.Loc.Y), "", "", strconv.Itoa(wk.MaxT), ""})
	}
	return cw.WriteAll(rows)
}

// ReadCSV parses the format written by WriteCSV into an unpartitioned
// instance.
func ReadCSV(r io.Reader) (*model.Instance, error) {
	cr := csv.NewReader(r)
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("workload: reading csv: %w", err)
	}
	in := &model.Instance{}
	for i, rec := range records {
		if i == 0 {
			continue // header
		}
		if len(rec) < 7 {
			return nil, fmt.Errorf("workload: csv row %d has %d fields", i, len(rec))
		}
		switch rec[0] {
		case "meta":
			minX, _ := strconv.ParseFloat(rec[1], 64)
			minY, _ := strconv.ParseFloat(rec[2], 64)
			maxX, _ := strconv.ParseFloat(rec[3], 64)
			maxY, _ := strconv.ParseFloat(rec[4], 64)
			in.Bounds = geo.NewRect(geo.Pt(minX, minY), geo.Pt(maxX, maxY))
			in.Speed, _ = strconv.ParseFloat(rec[6], 64)
		case "center":
			x, _ := strconv.ParseFloat(rec[1], 64)
			y, _ := strconv.ParseFloat(rec[2], 64)
			in.Centers = append(in.Centers, model.Center{ID: model.CenterID(len(in.Centers)), Loc: geo.Pt(x, y)})
		case "task":
			x, _ := strconv.ParseFloat(rec[1], 64)
			y, _ := strconv.ParseFloat(rec[2], 64)
			e, _ := strconv.ParseFloat(rec[3], 64)
			rw, _ := strconv.ParseFloat(rec[4], 64)
			in.Tasks = append(in.Tasks, model.Task{
				ID: model.TaskID(len(in.Tasks)), Center: model.NoCenter,
				Loc: geo.Pt(x, y), Expiry: e, Reward: rw,
			})
		case "worker":
			x, _ := strconv.ParseFloat(rec[1], 64)
			y, _ := strconv.ParseFloat(rec[2], 64)
			mt, _ := strconv.Atoi(rec[5])
			in.Workers = append(in.Workers, model.Worker{
				ID: model.WorkerID(len(in.Workers)), Home: model.NoCenter,
				Loc: geo.Pt(x, y), MaxT: mt,
			})
		default:
			return nil, fmt.Errorf("workload: csv row %d has unknown kind %q", i, rec[0])
		}
	}
	return in, nil
}

func f(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
