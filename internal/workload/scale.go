package workload

import (
	"fmt"
	"strconv"
	"strings"
)

// ScaleParams returns the parameter point of the distance-oracle scale
// benchmark for a task count: the paper's default density ratios stretched
// to benchmark size — one worker per four tasks, and one center per 200
// tasks (floored at the paper's 20 so small sizes stay comparable to
// Table I). Expiry, capacity, speed and reward stay at the paper defaults;
// the service area is the fixed [0, Side]² square, so larger sizes mean
// denser demand, exactly the regime a 100k-task run stresses.
func ScaleParams(d Dataset, tasks int) Params {
	p := Defaults(d)
	p.NumTasks = tasks
	p.NumWorkers = tasks / 4
	if p.NumWorkers < 1 {
		p.NumWorkers = 1
	}
	p.NumCenters = tasks / 200
	if p.NumCenters < 20 {
		p.NumCenters = 20
	}
	return p
}

// ParseScaleSize parses benchmark size spellings like "10k", "100K", "1m",
// "1M" or a plain integer task count.
func ParseScaleSize(s string) (int, error) {
	s = strings.TrimSpace(s)
	mult := 1
	if n := strings.TrimRight(s, "kK"); n != s {
		mult, s = 1000, n
	} else if n := strings.TrimRight(s, "mM"); n != s {
		mult, s = 1_000_000, n
	}
	v, err := strconv.Atoi(s)
	if err != nil || v <= 0 {
		return 0, fmt.Errorf("workload: bad scale size %q", s)
	}
	return v * mult, nil
}
