// Package workload generates the experiment datasets of paper §VI-A:
//
//   - SYN — locations of centers, workers and delivery points drawn
//     uniformly from the 2-D square [0, 2000]².
//
//   - GM — a gMission-like dataset. The paper uses the real open gMission
//     traces; this module is offline, so GM is simulated with a seeded
//     mixture-of-Gaussians generator that reproduces the property the
//     paper's evaluation depends on: skewed, clustered spatial density for
//     workers and tasks, with center locations drawn uniformly at random
//     exactly as the paper does ("we simulate |C| distribution centers by
//     randomly generating their locations"). See DESIGN.md §4.
//
// Generators return unpartitioned instances (every task and worker has
// Center == NoCenter); core.Partition attaches them to centers.
package workload

import (
	"errors"
	"fmt"
	"math/rand"

	"imtao/internal/geo"
	"imtao/internal/model"
)

// Dataset selects a generator family.
type Dataset int

const (
	// SYN is the synthetic uniform dataset.
	SYN Dataset = iota
	// GM is the simulated gMission-like clustered dataset.
	GM
)

// String implements fmt.Stringer.
func (d Dataset) String() string {
	if d == GM {
		return "GM"
	}
	return "SYN"
}

// ParseDataset parses "GM"/"gm"/"SYN"/"syn".
func ParseDataset(s string) (Dataset, error) {
	switch s {
	case "GM", "gm", "Gm":
		return GM, nil
	case "SYN", "syn", "Syn":
		return SYN, nil
	}
	return SYN, fmt.Errorf("workload: unknown dataset %q", s)
}

// Side is the side length of the square service area used by both datasets.
const Side = 2000.0

// DefaultSpeed is the uniform worker speed in distance units per hour.
// It is calibrated (see DESIGN.md §5) so the paper's default operating point
// (|S|=400, |W|=100, |C|=20, e=1h, maxT=4) reproduces the paper's numbers:
// Seq-w/o-C assigns ≈322/400 on SYN with U_ρ ≈ 0.29 (paper: 324, 0.29) and
// slightly more on GM, leaving the demand-supply gap that collaboration
// then narrows.
const DefaultSpeed = 1000.0

// Params specifies one generated instance, mirroring paper Table I.
type Params struct {
	Dataset    Dataset
	NumCenters int
	NumWorkers int
	NumTasks   int
	// Expiry is the uniform task expiration time e in hours.
	Expiry float64
	// MaxT is the uniform worker capacity w.maxT.
	MaxT int
	// Reward is the base task reward s.r.
	Reward float64
	// RewardJitter, in [0, 1), spreads rewards uniformly over
	// [Reward·(1−j), Reward·(1+j)]. The paper fixes rewards at 1 (j = 0);
	// the reward-objective ablation uses heterogeneous rewards.
	RewardJitter float64
	// Speed is the uniform travel speed; 0 selects DefaultSpeed.
	Speed float64
	// Seed drives all randomness; equal Params generate equal instances.
	Seed int64
	// Clusters is the number of density clusters for GM; 0 selects a
	// dataset-appropriate default. Ignored for SYN.
	Clusters int
}

// Defaults returns the paper's default parameter setting (underlined in
// Table I) for the given dataset.
func Defaults(d Dataset) Params {
	return Params{
		Dataset:    d,
		NumCenters: 20,
		NumWorkers: 100,
		NumTasks:   400,
		Expiry:     1.0,
		MaxT:       4,
		Reward:     1,
		Speed:      DefaultSpeed,
		Seed:       1,
	}
}

// Validate checks parameter sanity.
func (p Params) Validate() error {
	switch {
	case p.NumCenters <= 0:
		return errors.New("workload: NumCenters must be positive")
	case p.NumWorkers < 0 || p.NumTasks < 0:
		return errors.New("workload: negative entity count")
	case p.Expiry <= 0:
		return errors.New("workload: Expiry must be positive")
	case p.MaxT < 0:
		return errors.New("workload: MaxT must be non-negative")
	case p.Speed < 0:
		return errors.New("workload: Speed must be non-negative")
	case p.RewardJitter < 0 || p.RewardJitter >= 1:
		return errors.New("workload: RewardJitter must be in [0, 1)")
	default:
		return nil
	}
}

// Generate builds an unpartitioned instance according to the parameters.
func Generate(p Params) (*model.Instance, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	speed := p.Speed
	if speed == 0 {
		speed = DefaultSpeed
	}
	rng := rand.New(rand.NewSource(p.Seed))
	in := &model.Instance{
		Speed:  speed,
		Bounds: geo.NewRect(geo.Pt(0, 0), geo.Pt(Side, Side)),
	}

	// Centers: uniformly random in both datasets (paper §VI-A). Rejection
	// sampling keeps centers pairwise distinct for the Voronoi diagram.
	for len(in.Centers) < p.NumCenters {
		loc := uniformPoint(rng)
		dup := false
		for _, c := range in.Centers {
			if c.Loc.Eq(loc) {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		in.Centers = append(in.Centers, model.Center{ID: model.CenterID(len(in.Centers)), Loc: loc})
	}

	var sample func() geo.Point
	switch p.Dataset {
	case GM:
		nClusters := p.Clusters
		if nClusters <= 0 {
			nClusters = 12
		}
		sample = clusterSampler(rng, nClusters)
	default:
		sample = func() geo.Point { return uniformPoint(rng) }
	}

	for i := 0; i < p.NumTasks; i++ {
		reward := p.Reward
		if p.RewardJitter > 0 {
			reward *= 1 + (2*rng.Float64()-1)*p.RewardJitter
		}
		in.Tasks = append(in.Tasks, model.Task{
			ID:     model.TaskID(i),
			Center: model.NoCenter,
			Loc:    sample(),
			Expiry: p.Expiry,
			Reward: reward,
		})
	}
	for i := 0; i < p.NumWorkers; i++ {
		loc := sample()
		if p.Dataset == GM && len(in.Tasks) > 0 {
			// gMission workers congregate where tasks are: supply tracks
			// demand. Place each worker near a random task location.
			t := in.Tasks[rng.Intn(len(in.Tasks))]
			loc = clampToArea(geo.Pt(
				t.Loc.X+rng.NormFloat64()*Side*0.02,
				t.Loc.Y+rng.NormFloat64()*Side*0.02,
			))
		}
		in.Workers = append(in.Workers, model.Worker{
			ID:   model.WorkerID(i),
			Home: model.NoCenter,
			Loc:  loc,
			MaxT: p.MaxT,
		})
	}
	return in, nil
}

func uniformPoint(rng *rand.Rand) geo.Point {
	return geo.Pt(rng.Float64()*Side, rng.Float64()*Side)
}

// clusterSampler returns a sampler from a mixture of isotropic Gaussians
// with uniformly placed means, mimicking gMission's campus-style clustered
// density. Samples are clamped to the service area.
func clusterSampler(rng *rand.Rand, n int) func() geo.Point {
	type cluster struct {
		mean   geo.Point
		sigma  float64
		weight float64
	}
	clusters := make([]cluster, n)
	var total float64
	for i := range clusters {
		clusters[i] = cluster{
			mean:   uniformPoint(rng),
			sigma:  Side * (0.06 + 0.12*rng.Float64()),
			weight: 0.5 + rng.Float64(),
		}
		total += clusters[i].weight
	}
	return func() geo.Point {
		// A uniform background component keeps sparse regions populated,
		// as in the real gMission traces (clumps over a covered city, not
		// isolated islands).
		if rng.Float64() < 0.35 {
			return uniformPoint(rng)
		}
		r := rng.Float64() * total
		var c cluster
		for _, cl := range clusters {
			if r -= cl.weight; r <= 0 {
				c = cl
				break
			}
			c = cl
		}
		p := geo.Pt(
			c.mean.X+rng.NormFloat64()*c.sigma,
			c.mean.Y+rng.NormFloat64()*c.sigma,
		)
		return clampToArea(p)
	}
}

func clampToArea(p geo.Point) geo.Point {
	if p.X < 0 {
		p.X = 0
	}
	if p.X > Side {
		p.X = Side
	}
	if p.Y < 0 {
		p.Y = 0
	}
	if p.Y > Side {
		p.Y = Side
	}
	return p
}
