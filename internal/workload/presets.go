package workload

import (
	"fmt"
	"math"
	"math/rand"

	"imtao/internal/geo"
	"imtao/internal/model"
)

// Preset names a structured city topology beyond the paper's two datasets.
// Presets stress the collaboration machinery in specific ways and back the
// topology-robustness tests: the paper's conclusions should not depend on
// uniform or Gaussian geometry.
type Preset int

const (
	// Corridor is a linear city: everything concentrated along a band
	// (think a coastal strip or a river town). Centers far down the line
	// cannot realistically help each other.
	Corridor Preset = iota
	// TwinCities is a bimodal metro: two dense cores with a sparse gap.
	// Collaboration within a core is cheap, across cores expensive.
	TwinCities
	// RingRoad places demand along an annulus around an empty center —
	// every center has exactly two natural neighbours.
	RingRoad
	// Hotspot is a heterogeneous-density city (arXiv 2310.12433's regime):
	// most demand piles into one dense downtown core while the rest spreads
	// thinly across the whole area. Centers placed uniformly end up with
	// wildly uneven task loads — the stress case for count-balanced shard
	// partitions, and the preset the task-weighted partitioner is measured
	// on.
	Hotspot
)

// String implements fmt.Stringer.
func (p Preset) String() string {
	switch p {
	case TwinCities:
		return "TwinCities"
	case RingRoad:
		return "RingRoad"
	case Hotspot:
		return "Hotspot"
	default:
		return "Corridor"
	}
}

// GeneratePreset builds an unpartitioned instance with the given topology.
// Counts, expiry, capacity and speed come from params (the Dataset field is
// ignored); the preset only shapes the geometry.
func GeneratePreset(preset Preset, p Params) (*model.Instance, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	speed := p.Speed
	if speed == 0 {
		speed = DefaultSpeed
	}
	rng := rand.New(rand.NewSource(p.Seed))
	in := &model.Instance{
		Speed:  speed,
		Bounds: geo.NewRect(geo.Pt(0, 0), geo.Pt(Side, Side)),
	}
	var sample func() geo.Point
	// Centers follow the demand topology unless the preset overrides it
	// (Hotspot spreads centers uniformly so the demand skew lands on them).
	var centerSample func() geo.Point
	switch preset {
	case Corridor:
		// A horizontal band through the middle, 15% of the height wide.
		sample = func() geo.Point {
			return clampToArea(geo.Pt(
				rng.Float64()*Side,
				Side/2+rng.NormFloat64()*Side*0.075,
			))
		}
	case TwinCities:
		sample = func() geo.Point {
			cx := Side * 0.25
			if rng.Intn(2) == 1 {
				cx = Side * 0.75
			}
			return clampToArea(geo.Pt(
				cx+rng.NormFloat64()*Side*0.08,
				Side/2+rng.NormFloat64()*Side*0.10,
			))
		}
	case RingRoad:
		sample = func() geo.Point {
			theta := rng.Float64() * 2 * math.Pi
			r := Side*0.35 + rng.NormFloat64()*Side*0.04
			return clampToArea(geo.Pt(
				Side/2+r*math.Cos(theta),
				Side/2+r*math.Sin(theta),
			))
		}
	case Hotspot:
		// 70% of demand in a tight downtown core, the rest uniform across
		// the whole area.
		sample = func() geo.Point {
			if rng.Float64() < 0.7 {
				return clampToArea(geo.Pt(
					Side*0.3+rng.NormFloat64()*Side*0.05,
					Side*0.3+rng.NormFloat64()*Side*0.05,
				))
			}
			return geo.Pt(rng.Float64()*Side, rng.Float64()*Side)
		}
		// Uniform centers: the ones near the core drown in tasks, the rest
		// starve — maximal per-center load heterogeneity.
		centerSample = func() geo.Point {
			return geo.Pt(rng.Float64()*Side, rng.Float64()*Side)
		}
	default:
		return nil, fmt.Errorf("workload: unknown preset %v", preset)
	}
	if centerSample == nil {
		centerSample = sample
	}

	// Centers cover every demand region.
	for len(in.Centers) < p.NumCenters {
		loc := centerSample()
		dup := false
		for _, c := range in.Centers {
			if c.Loc.Eq(loc) {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		in.Centers = append(in.Centers, model.Center{ID: model.CenterID(len(in.Centers)), Loc: loc})
	}
	for i := 0; i < p.NumTasks; i++ {
		in.Tasks = append(in.Tasks, model.Task{
			ID: model.TaskID(i), Center: model.NoCenter,
			Loc: sample(), Expiry: p.Expiry, Reward: p.Reward,
		})
	}
	for i := 0; i < p.NumWorkers; i++ {
		in.Workers = append(in.Workers, model.Worker{
			ID: model.WorkerID(i), Home: model.NoCenter,
			Loc: sample(), MaxT: p.MaxT,
		})
	}
	return in, nil
}
