// Package model defines the spatial-crowdsourcing entities of the CMCTA
// problem (paper §II): distribution centers, workers, spatial tasks, delivery
// routes and whole-platform problem instances, together with the travel-time
// model of Eq. 1 (constant speed, Euclidean distance, zero handling time).
package model

import (
	"errors"
	"fmt"

	"imtao/internal/geo"
)

// TaskID identifies a task; it is the task's index in Instance.Tasks.
type TaskID int

// WorkerID identifies a worker; it is the worker's index in Instance.Workers.
type WorkerID int

// CenterID identifies a distribution center; it is the center's index in
// Instance.Centers.
type CenterID int

// NoCenter marks a task or worker not (yet) attached to any center.
const NoCenter CenterID = -1

// Task is a spatial task s = (c, l, e, r) per paper Definition 3.
type Task struct {
	ID     TaskID
	Center CenterID  // s.c — the center the task belongs to (fixed)
	Loc    geo.Point // s.l — delivery location
	Expiry float64   // s.e — deadline in hours from the planning instant
	Reward float64   // s.r — requester's reward
}

// Worker is a worker w = (c, l, maxT) per paper Definition 2.
type Worker struct {
	ID   WorkerID
	Home CenterID  // w.c — the center the worker primarily works for
	Loc  geo.Point // w.l — current location
	MaxT int       // w.maxT — capacity (max tasks per delivery run)
}

// Center is a distribution center c = (l, S, W) per paper Definition 1.
// Tasks and Workers hold the IDs attached to this center by the service-area
// partition.
type Center struct {
	ID      CenterID
	Loc     geo.Point
	Tasks   []TaskID
	Workers []WorkerID
}

// TravelMetric computes the travel time in hours between two locations.
// Instances default to straight-line travel at the uniform Speed; a custom
// metric (e.g. a road network from the roadnet package) can replace it.
type TravelMetric interface {
	TravelTime(a, b geo.Point) float64
}

// SpeedBounded is an optional TravelMetric extension declaring a global
// speed bound v such that TravelTime(a, b) ≥ a.Dist(b)/v for every pair of
// points. It lets the phase-2 admissibility pruning translate a travel-time
// admission radius into a Euclidean one servable by a spatial index; metrics
// without the interface fall back to exact per-worker travel-time checks.
type SpeedBounded interface {
	// MaxSpeed returns the bound v in distance units per hour; it must be
	// positive and may be conservative (larger than the true top speed).
	MaxSpeed() float64
}

// NodeMetric is a TravelMetric backed by a network of nodes (e.g. the
// roadnet distance oracle). Queries against such a metric decompose into
// snapping each point to a node plus a node-to-node lookup; the snap is a
// pure function of the point, so PrepareMetric memoizes it per entity and
// the assignment hot loops call TravelTimeNodes with the cached snaps
// instead of re-deriving them on every TravelTime call.
type NodeMetric interface {
	TravelMetric
	// SnapNode returns the metric's node nearest to p and the straight-line
	// snap distance from p to that node.
	SnapNode(p geo.Point) (node int32, leg float64)
	// TravelTimeNodes returns the travel time between two pre-snapped
	// points, each given as (node, snap-leg distance). It must equal
	// TravelTime of the original points exactly.
	TravelTimeNodes(aNode int32, aLeg float64, bNode int32, bLeg float64) float64
}

// NodeRef is one memoized snap: an entity location resolved to its metric
// node and snap-leg distance. The zero value is not valid; an absent snap
// (no node metric, or an entity added after PrepareMetric) has Node < 0 and
// routes the query through the generic TravelTime path.
type NodeRef struct {
	Node int32
	Leg  float64
}

// Valid reports whether the ref carries a memoized snap.
func (r NodeRef) Valid() bool { return r.Node >= 0 }

// noRef marks an entity without a memoized snap.
var noRef = NodeRef{Node: -1}

// metricPrep is the per-instance snap memo built by PrepareMetric. It is
// immutable after construction and shared by Clone, so concurrent
// phase-2 trials read it without synchronisation.
type metricPrep struct {
	nm      NodeMetric
	tasks   []NodeRef
	workers []NodeRef
	centers []NodeRef
}

// TaskHot packs the task fields read by the assignment hot loops — location,
// deadline and the memoized metric snap — into one contiguous 40-byte record.
// The cold fields (Reward, Center, ID) stay in Task; the inner trial-replay
// loop walks []TaskHot instead of striding through the wider Task structs and
// the separate snap memo, so each candidate costs one cache line.
type TaskHot struct {
	Loc    geo.Point
	Expiry float64
	Ref    NodeRef
}

// WorkerHot is the worker counterpart of TaskHot: location, snap and
// capacity, everything the serve loop reads per worker.
type WorkerHot struct {
	Loc  geo.Point
	Ref  NodeRef
	MaxT int32
}

// CenterHot is the center counterpart: pick-up location and snap.
type CenterHot struct {
	Loc geo.Point
	Ref NodeRef
}

// hotSlab is the structure-of-arrays view of an instance, built by EnsureHot
// and immutable afterwards, so Clone shares it exactly like the snap memo.
type hotSlab struct {
	metric  TravelMetric
	prep    *metricPrep
	tasks   []TaskHot
	workers []WorkerHot
	centers []CenterHot
}

// Instance is a complete CMCTA problem instance: the platform's centers,
// tasks and workers plus the shared travel-speed parameter.
// All tasks and workers are indexed by their IDs: Tasks[i].ID == TaskID(i).
type Instance struct {
	Centers []Center
	Tasks   []Task
	Workers []Worker
	// Speed is the uniform worker travel speed in distance units per hour,
	// used by the default straight-line metric (and as a fallback scale).
	Speed float64
	// Bounds is the service area; Voronoi cells are clipped to it.
	Bounds geo.Rect
	// Metric, when non-nil, replaces the straight-line travel-time model —
	// e.g. a road network. Every algorithm in this repository calls
	// TravelTime, so swapping the metric re-targets the whole pipeline.
	Metric TravelMetric

	// prep is the entity→node snap memo for NodeMetric metrics, built by
	// PrepareMetric and shared (immutably) across Clones.
	prep *metricPrep

	// hot is the SoA slab built by EnsureHot and shared (immutably) across
	// Clones; nil until an engine entry point asks for it.
	hot *hotSlab
}

// Errors returned by Validate.
var (
	ErrNoSpeed      = errors.New("model: speed must be positive")
	ErrBadID        = errors.New("model: entity ID does not match its index")
	ErrBadReference = errors.New("model: dangling center reference")
)

// Validate checks the structural invariants the algorithms rely on:
// positive speed, IDs equal to indices, and center membership lists that
// agree with the per-entity Center/Home fields.
func (in *Instance) Validate() error {
	if in.Speed <= 0 {
		return ErrNoSpeed
	}
	for i, c := range in.Centers {
		if c.ID != CenterID(i) {
			return fmt.Errorf("%w: center %d has ID %d", ErrBadID, i, c.ID)
		}
	}
	for i, s := range in.Tasks {
		if s.ID != TaskID(i) {
			return fmt.Errorf("%w: task %d has ID %d", ErrBadID, i, s.ID)
		}
		if s.Center != NoCenter && (int(s.Center) < 0 || int(s.Center) >= len(in.Centers)) {
			return fmt.Errorf("%w: task %d -> center %d", ErrBadReference, i, s.Center)
		}
	}
	for i, w := range in.Workers {
		if w.ID != WorkerID(i) {
			return fmt.Errorf("%w: worker %d has ID %d", ErrBadID, i, w.ID)
		}
		if w.Home != NoCenter && (int(w.Home) < 0 || int(w.Home) >= len(in.Centers)) {
			return fmt.Errorf("%w: worker %d -> center %d", ErrBadReference, i, w.Home)
		}
		if w.MaxT < 0 {
			return fmt.Errorf("model: worker %d has negative MaxT %d", i, w.MaxT)
		}
	}
	for ci, c := range in.Centers {
		for _, t := range c.Tasks {
			if int(t) < 0 || int(t) >= len(in.Tasks) || in.Tasks[t].Center != CenterID(ci) {
				return fmt.Errorf("%w: center %d lists task %d", ErrBadReference, ci, t)
			}
		}
		for _, w := range c.Workers {
			if int(w) < 0 || int(w) >= len(in.Workers) || in.Workers[w].Home != CenterID(ci) {
				return fmt.Errorf("%w: center %d lists worker %d", ErrBadReference, ci, w)
			}
		}
	}
	return nil
}

// TravelTime returns the travel time in hours between two locations — the
// tt(·,·) of Eq. 1. The default is straight-line distance at the uniform
// speed; a non-nil Metric overrides it.
func (in *Instance) TravelTime(a, b geo.Point) float64 {
	if in.Metric != nil {
		return in.Metric.TravelTime(a, b)
	}
	return a.Dist(b) / in.Speed
}

// PrepareMetric memoizes the point→node snap of every task, worker and
// center location when Metric is a NodeMetric (the roadnet distance
// oracle), so the assignment hot loops stop re-deriving snaps on every
// TravelTime call. A no-op for straight-line instances and non-node
// metrics. Idempotent for an unchanged metric; call it again after swapping
// Metric or appending entities. Not safe concurrently with itself, but the
// memo is immutable once built and Clone shares it, so prepared instances
// are safe for the parallel engine.
func (in *Instance) PrepareMetric() {
	nm, ok := in.Metric.(NodeMetric)
	if !ok {
		in.prep = nil
		return
	}
	if p := in.prep; p != nil && p.nm == nm &&
		len(p.tasks) == len(in.Tasks) && len(p.workers) == len(in.Workers) && len(p.centers) == len(in.Centers) {
		return
	}
	p := &metricPrep{
		nm:      nm,
		tasks:   make([]NodeRef, len(in.Tasks)),
		workers: make([]NodeRef, len(in.Workers)),
		centers: make([]NodeRef, len(in.Centers)),
	}
	for i := range in.Tasks {
		p.tasks[i].Node, p.tasks[i].Leg = nm.SnapNode(in.Tasks[i].Loc)
	}
	for i := range in.Workers {
		p.workers[i].Node, p.workers[i].Leg = nm.SnapNode(in.Workers[i].Loc)
	}
	for i := range in.Centers {
		p.centers[i].Node, p.centers[i].Leg = nm.SnapNode(in.Centers[i].Loc)
	}
	in.prep = p
}

// TaskRef returns the memoized snap of a task location, or an invalid ref
// when the instance has no prepared node metric.
func (in *Instance) TaskRef(id TaskID) NodeRef {
	if p := in.prep; p != nil && int(id) < len(p.tasks) {
		return p.tasks[id]
	}
	return noRef
}

// WorkerRef returns the memoized snap of a worker location.
func (in *Instance) WorkerRef(id WorkerID) NodeRef {
	if p := in.prep; p != nil && int(id) < len(p.workers) {
		return p.workers[id]
	}
	return noRef
}

// CenterRef returns the memoized snap of a center location.
func (in *Instance) CenterRef(id CenterID) NodeRef {
	if p := in.prep; p != nil && int(id) < len(p.centers) {
		return p.centers[id]
	}
	return noRef
}

// TravelTimeRef is TravelTime with memoized snaps: when both refs are valid
// and a node metric is prepared, the query skips snapping entirely and goes
// straight to the metric's node-to-node path; otherwise it falls back to
// TravelTime(a, b). Both paths return bit-identical values for the same
// points, so mixing them (e.g. unprepared test callers) cannot change
// results — only speed.
func (in *Instance) TravelTimeRef(a geo.Point, ar NodeRef, b geo.Point, br NodeRef) float64 {
	if p := in.prep; p != nil && ar.Node >= 0 && br.Node >= 0 {
		return p.nm.TravelTimeNodes(ar.Node, ar.Leg, br.Node, br.Leg)
	}
	return in.TravelTime(a, b)
}

// EnsureHot (re)builds the SoA slab: parallel []TaskHot / []WorkerHot /
// []CenterHot arrays packing the hot-loop fields of every entity, including
// the PrepareMetric snaps when present. O(1) when the slab is already fresh
// (same metric, same snap memo, same entity counts), so engine entry points
// call it unconditionally. Call PrepareMetric first when using a node metric,
// or the slab memoizes the unprepared (fallback) refs. Not safe concurrently
// with itself; the built slab is immutable and shared by Clone, so prepared
// instances are safe for the parallel engine.
func (in *Instance) EnsureHot() {
	if h := in.hot; h != nil && h.metric == in.Metric && h.prep == in.prep &&
		len(h.tasks) == len(in.Tasks) && len(h.workers) == len(in.Workers) && len(h.centers) == len(in.Centers) {
		return
	}
	h := &hotSlab{
		metric:  in.Metric,
		prep:    in.prep,
		tasks:   make([]TaskHot, len(in.Tasks)),
		workers: make([]WorkerHot, len(in.Workers)),
		centers: make([]CenterHot, len(in.Centers)),
	}
	for i := range in.Tasks {
		t := &in.Tasks[i]
		h.tasks[i] = TaskHot{Loc: t.Loc, Expiry: t.Expiry, Ref: in.TaskRef(t.ID)}
	}
	for i := range in.Workers {
		w := &in.Workers[i]
		h.workers[i] = WorkerHot{Loc: w.Loc, Ref: in.WorkerRef(w.ID), MaxT: int32(w.MaxT)}
	}
	for i := range in.Centers {
		c := &in.Centers[i]
		h.centers[i] = CenterHot{Loc: c.Loc, Ref: in.CenterRef(c.ID)}
	}
	in.hot = h
}

// HotTasks returns the task slab (nil before EnsureHot). Index by TaskID.
func (in *Instance) HotTasks() []TaskHot {
	if in.hot == nil {
		return nil
	}
	return in.hot.tasks
}

// HotWorkers returns the worker slab (nil before EnsureHot). Index by WorkerID.
func (in *Instance) HotWorkers() []WorkerHot {
	if in.hot == nil {
		return nil
	}
	return in.hot.workers
}

// HotCenters returns the center slab (nil before EnsureHot). Index by CenterID.
func (in *Instance) HotCenters() []CenterHot {
	if in.hot == nil {
		return nil
	}
	return in.hot.centers
}

// Task returns the task with the given ID.
func (in *Instance) Task(id TaskID) *Task { return &in.Tasks[id] }

// Worker returns the worker with the given ID.
func (in *Instance) Worker(id WorkerID) *Worker { return &in.Workers[id] }

// Center returns the center with the given ID.
func (in *Instance) Center(id CenterID) *Center { return &in.Centers[id] }

// Clone returns a deep copy of the instance. The collaboration game mutates
// center membership during what-if evaluation, so cheap cloning matters.
func (in *Instance) Clone() *Instance {
	out := &Instance{
		Centers: make([]Center, len(in.Centers)),
		Tasks:   append([]Task(nil), in.Tasks...),
		Workers: append([]Worker(nil), in.Workers...),
		Speed:   in.Speed,
		Bounds:  in.Bounds,
		Metric:  in.Metric, // metrics are immutable; sharing is safe
		prep:    in.prep,   // snap memo is immutable once built
		hot:     in.hot,    // SoA slab is immutable once built
	}
	for i, c := range in.Centers {
		out.Centers[i] = Center{
			ID:      c.ID,
			Loc:     c.Loc,
			Tasks:   append([]TaskID(nil), c.Tasks...),
			Workers: append([]WorkerID(nil), c.Workers...),
		}
	}
	return out
}

// Route is a worker's delivery run out of one pick-up center: the worker
// travels to Center, picks up all deliveries and visits Tasks in order
// (paper Definition 4). An empty Tasks slice means the worker is unused.
// Center may differ from the worker's home when the worker was dispatched by
// the inter-center workforce transfer.
type Route struct {
	Worker WorkerID
	Center CenterID
	Tasks  []TaskID
}

// Assignment is the spatial task assignment A(c) of one center (paper
// Definition 8): one route per worker serving the center, including borrowed
// workers.
type Assignment struct {
	Center CenterID
	Routes []Route
}

// AssignedCount returns the number of tasks assigned in A(c).
func (a *Assignment) AssignedCount() int {
	n := 0
	for _, r := range a.Routes {
		n += len(r.Tasks)
	}
	return n
}

// Transfer is one inter-center workforce transfer tuple (c_src, c_dst, w)
// per paper Definition 6.
type Transfer struct {
	Src    CenterID
	Dst    CenterID
	Worker WorkerID
}

// Solution is a platform-wide task assignment A = {A(c)} for all centers,
// together with the transfers that produced it.
type Solution struct {
	PerCenter []Assignment // indexed by CenterID
	Transfers []Transfer   // the union of all BWS(c) at the end of the game
}

// NewSolution returns an empty solution shell for an instance: one empty
// assignment per center.
func NewSolution(in *Instance) *Solution {
	s := &Solution{PerCenter: make([]Assignment, len(in.Centers))}
	for i := range s.PerCenter {
		s.PerCenter[i].Center = CenterID(i)
	}
	return s
}

// AssignedCount returns the total number of assigned tasks across centers —
// the paper's primary optimization objective.
func (s *Solution) AssignedCount() int {
	n := 0
	for i := range s.PerCenter {
		n += s.PerCenter[i].AssignedCount()
	}
	return n
}

// AssignedTasks returns the set of assigned task IDs.
func (s *Solution) AssignedTasks() map[TaskID]bool {
	out := make(map[TaskID]bool)
	for i := range s.PerCenter {
		for _, r := range s.PerCenter[i].Routes {
			for _, t := range r.Tasks {
				out[t] = true
			}
		}
	}
	return out
}

// Clone returns a deep copy of the solution.
func (s *Solution) Clone() *Solution {
	out := &Solution{
		PerCenter: make([]Assignment, len(s.PerCenter)),
		Transfers: append([]Transfer(nil), s.Transfers...),
	}
	for i, a := range s.PerCenter {
		routes := make([]Route, len(a.Routes))
		for j, r := range a.Routes {
			routes[j] = Route{Worker: r.Worker, Center: r.Center, Tasks: append([]TaskID(nil), r.Tasks...)}
		}
		out.PerCenter[i] = Assignment{Center: a.Center, Routes: routes}
	}
	return out
}

// CheckConsistency verifies solution sanity against an instance: every task
// assigned at most once, every worker routed at most once, route centers in
// range, and tasks delivered by the center that owns them (tasks never move
// between centers — only workers do; paper §I).
func (s *Solution) CheckConsistency(in *Instance) error {
	if len(s.PerCenter) != len(in.Centers) {
		return fmt.Errorf("model: solution covers %d centers, instance has %d", len(s.PerCenter), len(in.Centers))
	}
	seenTask := make(map[TaskID]CenterID)
	seenWorker := make(map[WorkerID]CenterID)
	for ci := range s.PerCenter {
		a := &s.PerCenter[ci]
		if a.Center != CenterID(ci) {
			return fmt.Errorf("model: assignment %d labelled center %d", ci, a.Center)
		}
		for _, r := range a.Routes {
			if int(r.Worker) < 0 || int(r.Worker) >= len(in.Workers) {
				return fmt.Errorf("model: route references worker %d", r.Worker)
			}
			if prev, dup := seenWorker[r.Worker]; dup {
				return fmt.Errorf("model: worker %d routed by both center %d and %d", r.Worker, prev, ci)
			}
			seenWorker[r.Worker] = CenterID(ci)
			if r.Center != CenterID(ci) {
				return fmt.Errorf("model: route in assignment %d picks up at center %d", ci, r.Center)
			}
			for _, t := range r.Tasks {
				if int(t) < 0 || int(t) >= len(in.Tasks) {
					return fmt.Errorf("model: route references task %d", t)
				}
				if prev, dup := seenTask[t]; dup {
					return fmt.Errorf("model: task %d assigned by both center %d and %d", t, prev, ci)
				}
				seenTask[t] = CenterID(ci)
				if in.Tasks[t].Center != CenterID(ci) {
					return fmt.Errorf("model: task %d belongs to center %d but delivered by %d",
						t, in.Tasks[t].Center, ci)
				}
			}
		}
	}
	return nil
}
