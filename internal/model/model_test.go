package model

import (
	"strings"
	"testing"

	"imtao/internal/geo"
)

// tinyInstance builds a 2-center, 2-worker, 3-task instance used across the
// model tests.
func tinyInstance() *Instance {
	in := &Instance{
		Centers: []Center{
			{ID: 0, Loc: geo.Pt(0, 0), Tasks: []TaskID{0, 1}, Workers: []WorkerID{0}},
			{ID: 1, Loc: geo.Pt(100, 0), Tasks: []TaskID{2}, Workers: []WorkerID{1}},
		},
		Tasks: []Task{
			{ID: 0, Center: 0, Loc: geo.Pt(10, 0), Expiry: 1, Reward: 1},
			{ID: 1, Center: 0, Loc: geo.Pt(0, 10), Expiry: 1, Reward: 1},
			{ID: 2, Center: 1, Loc: geo.Pt(110, 0), Expiry: 1, Reward: 1},
		},
		Workers: []Worker{
			{ID: 0, Home: 0, Loc: geo.Pt(5, 5), MaxT: 4},
			{ID: 1, Home: 1, Loc: geo.Pt(95, 0), MaxT: 4},
		},
		Speed:  100,
		Bounds: geo.NewRect(geo.Pt(0, 0), geo.Pt(200, 100)),
	}
	return in
}

func TestValidateOK(t *testing.T) {
	if err := tinyInstance().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Instance)
		want   string
	}{
		{"zero speed", func(in *Instance) { in.Speed = 0 }, "speed"},
		{"bad center id", func(in *Instance) { in.Centers[1].ID = 5 }, "ID"},
		{"bad task id", func(in *Instance) { in.Tasks[0].ID = 9 }, "ID"},
		{"bad worker id", func(in *Instance) { in.Workers[0].ID = 9 }, "ID"},
		{"task dangling center", func(in *Instance) { in.Tasks[0].Center = 7 }, "center"},
		{"worker dangling center", func(in *Instance) { in.Workers[0].Home = 7 }, "center"},
		{"negative maxT", func(in *Instance) { in.Workers[0].MaxT = -1 }, "MaxT"},
		{"center lists foreign task", func(in *Instance) { in.Centers[0].Tasks = []TaskID{2} }, "lists task"},
		{"center lists foreign worker", func(in *Instance) { in.Centers[0].Workers = []WorkerID{1} }, "lists worker"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			in := tinyInstance()
			c.mutate(in)
			err := in.Validate()
			if err == nil {
				t.Fatal("expected error")
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not mention %q", err, c.want)
			}
		})
	}
}

func TestTravelTime(t *testing.T) {
	in := tinyInstance()
	got := in.TravelTime(geo.Pt(0, 0), geo.Pt(100, 0))
	if got != 1 {
		t.Errorf("TravelTime = %v, want 1", got)
	}
}

func TestCloneIsDeep(t *testing.T) {
	in := tinyInstance()
	cp := in.Clone()
	cp.Centers[0].Tasks[0] = 99
	cp.Tasks[0].Expiry = 42
	cp.Workers[0].MaxT = 0
	if in.Centers[0].Tasks[0] == 99 || in.Tasks[0].Expiry == 42 || in.Workers[0].MaxT == 0 {
		t.Fatal("Clone shares memory with the original")
	}
}

func TestSolutionCounts(t *testing.T) {
	in := tinyInstance()
	s := NewSolution(in)
	if s.AssignedCount() != 0 {
		t.Fatal("fresh solution must be empty")
	}
	s.PerCenter[0].Routes = []Route{{Worker: 0, Center: 0, Tasks: []TaskID{0, 1}}}
	s.PerCenter[1].Routes = []Route{{Worker: 1, Center: 1, Tasks: []TaskID{2}}}
	if got := s.AssignedCount(); got != 3 {
		t.Errorf("AssignedCount = %d", got)
	}
	tasks := s.AssignedTasks()
	if len(tasks) != 3 || !tasks[0] || !tasks[1] || !tasks[2] {
		t.Errorf("AssignedTasks = %v", tasks)
	}
}

func TestSolutionCloneIsDeep(t *testing.T) {
	in := tinyInstance()
	s := NewSolution(in)
	s.PerCenter[0].Routes = []Route{{Worker: 0, Center: 0, Tasks: []TaskID{0}}}
	s.Transfers = []Transfer{{Src: 0, Dst: 1, Worker: 0}}
	cp := s.Clone()
	cp.PerCenter[0].Routes[0].Tasks[0] = 1
	cp.Transfers[0].Worker = 9
	if s.PerCenter[0].Routes[0].Tasks[0] == 1 || s.Transfers[0].Worker == 9 {
		t.Fatal("Clone shares memory with the original")
	}
}

func TestCheckConsistencyOK(t *testing.T) {
	in := tinyInstance()
	s := NewSolution(in)
	s.PerCenter[0].Routes = []Route{{Worker: 0, Center: 0, Tasks: []TaskID{0, 1}}}
	s.PerCenter[1].Routes = []Route{{Worker: 1, Center: 1, Tasks: []TaskID{2}}}
	if err := s.CheckConsistency(in); err != nil {
		t.Fatal(err)
	}
}

func TestCheckConsistencyViolations(t *testing.T) {
	in := tinyInstance()
	cases := []struct {
		name  string
		build func() *Solution
		want  string
	}{
		{"duplicate task", func() *Solution {
			s := NewSolution(in)
			s.PerCenter[0].Routes = []Route{{Worker: 0, Center: 0, Tasks: []TaskID{0, 0}}}
			return s
		}, "assigned by both"},
		{"duplicate worker", func() *Solution {
			s := NewSolution(in)
			s.PerCenter[0].Routes = []Route{
				{Worker: 0, Center: 0, Tasks: []TaskID{0}},
				{Worker: 0, Center: 0, Tasks: []TaskID{1}},
			}
			return s
		}, "routed by both"},
		{"foreign task", func() *Solution {
			s := NewSolution(in)
			s.PerCenter[0].Routes = []Route{{Worker: 0, Center: 0, Tasks: []TaskID{2}}}
			return s
		}, "belongs to center"},
		{"wrong pickup center", func() *Solution {
			s := NewSolution(in)
			s.PerCenter[0].Routes = []Route{{Worker: 0, Center: 1, Tasks: []TaskID{0}}}
			return s
		}, "picks up"},
		{"unknown worker", func() *Solution {
			s := NewSolution(in)
			s.PerCenter[0].Routes = []Route{{Worker: 42, Center: 0, Tasks: nil}}
			return s
		}, "references worker"},
		{"unknown task", func() *Solution {
			s := NewSolution(in)
			s.PerCenter[0].Routes = []Route{{Worker: 0, Center: 0, Tasks: []TaskID{42}}}
			return s
		}, "references task"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.build().CheckConsistency(in)
			if err == nil {
				t.Fatal("expected error")
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not mention %q", err, c.want)
			}
		})
	}
}

func TestAssignmentAssignedCount(t *testing.T) {
	a := Assignment{Routes: []Route{
		{Tasks: []TaskID{1, 2}},
		{Tasks: nil},
		{Tasks: []TaskID{3}},
	}}
	if got := a.AssignedCount(); got != 3 {
		t.Errorf("AssignedCount = %d", got)
	}
}

func TestDebugStrings(t *testing.T) {
	r := Route{Worker: 3, Center: 1, Tasks: []TaskID{5, 9, 2}}
	if got := r.String(); got != "w3@c1 -> [5 9 2]" {
		t.Errorf("Route.String = %q", got)
	}
	tr := Transfer{Src: 0, Dst: 2, Worker: 4}
	if got := tr.String(); got != "w4: c0=>c2" {
		t.Errorf("Transfer.String = %q", got)
	}
	in := tinyInstance()
	s := NewSolution(in)
	s.PerCenter[0].Routes = []Route{{Worker: 0, Center: 0, Tasks: []TaskID{0, 1}}}
	s.Transfers = []Transfer{tr}
	if got := s.Summary(); got != "assigned=2 transfers=1 per-center=[2 0]" {
		t.Errorf("Solution.Summary = %q", got)
	}
	if got := in.Summary(); !strings.Contains(got, "centers=2") || !strings.Contains(got, "tasks=3") {
		t.Errorf("Instance.Summary = %q", got)
	}
}
