package model

import (
	"fmt"
	"strings"
)

// Debug-friendly string forms. These show up in test failures, trace dumps
// and the simulation CLI; they are not stable serialization formats (use
// the workload package's JSON/CSV writers for that).

// String renders a route like "w3@c1 -> [5 9 2]".
func (r Route) String() string {
	ids := make([]string, len(r.Tasks))
	for i, t := range r.Tasks {
		ids[i] = fmt.Sprintf("%d", t)
	}
	return fmt.Sprintf("w%d@c%d -> [%s]", r.Worker, r.Center, strings.Join(ids, " "))
}

// String renders a transfer like "w4: c0=>c2".
func (t Transfer) String() string {
	return fmt.Sprintf("w%d: c%d=>c%d", t.Worker, t.Src, t.Dst)
}

// Summary returns a one-line description of the solution: totals and
// per-center assigned counts.
func (s *Solution) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "assigned=%d transfers=%d per-center=[", s.AssignedCount(), len(s.Transfers))
	for i := range s.PerCenter {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d", s.PerCenter[i].AssignedCount())
	}
	b.WriteByte(']')
	return b.String()
}

// Summary returns a one-line description of the instance shape.
func (in *Instance) Summary() string {
	return fmt.Sprintf("centers=%d workers=%d tasks=%d speed=%g area=%gx%g",
		len(in.Centers), len(in.Workers), len(in.Tasks), in.Speed,
		in.Bounds.Width(), in.Bounds.Height())
}
