package experiments

import (
	"strings"
	"testing"

	"imtao/internal/stats"
	"imtao/internal/workload"
)

// Full-scale shape verification: run the real paper sweeps at the actual
// Table I parameters (Seq methods, one seed for speed) and assert every
// qualitative claim holds. Skipped with -short.
func TestPaperShapesFullScale(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale sweep skipped with -short")
	}
	for _, id := range []string{"fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10"} {
		e, ok := Lookup(id)
		if !ok {
			t.Fatalf("missing %s", id)
		}
		res, err := Run(e, Options{Seeds: []int64{1}})
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range CheckShapes(res) {
			t.Errorf("shape violation: %s", v)
		}
	}
}

// Synthetic results exercise the violation paths of CheckShapes.
func TestCheckShapesDetectsViolations(t *testing.T) {
	mk := func(id, sweep string, vals []float64, bdcA, wocA, bdcU, wocU [][]float64) *Result {
		e := Experiment{ID: id, SweepName: sweep, SweepValues: vals, Dataset: workload.SYN}
		r := &Result{Experiment: e, Methods: SeqMethods(), Cells: map[string][]Cell{}}
		fill := func(name string, as, us [][]float64) {
			cells := make([]Cell, len(vals))
			for i := range vals {
				cells[i] = Cell{
					Assigned:   stats.Summarize(as[i]),
					Unfairness: stats.Summarize(us[i]),
				}
			}
			r.Cells[name] = cells
		}
		fill("Seq-BDC", bdcA, bdcU)
		fill("Seq-w/o-C", wocA, wocU)
		return r
	}
	one := func(vs ...float64) [][]float64 {
		out := make([][]float64, len(vs))
		for i, v := range vs {
			out[i] = []float64{v}
		}
		return out
	}

	// Healthy |S| sweep: no violations.
	good := mk("figX", "|S|", []float64{400, 800},
		one(350, 390), one(330, 380), one(0.1, 0.1), one(0.3, 0.3))
	if v := CheckShapes(good); len(v) != 0 {
		t.Fatalf("healthy result flagged: %v", v)
	}

	// BDC below w/o-C: claim 1 fires.
	badBDC := mk("figX", "|S|", []float64{400, 800},
		one(300, 390), one(330, 380), one(0.1, 0.1), one(0.3, 0.3))
	if v := CheckShapes(badBDC); len(v) == 0 || !strings.Contains(v[0], "Seq-BDC assigned") {
		t.Fatalf("missed BDC<WoC: %v", v)
	}

	// Falling |S| curve: claim 3 fires.
	falling := mk("figX", "|S|", []float64{400, 800},
		one(390, 350), one(380, 330), one(0.1, 0.1), one(0.3, 0.3))
	if v := CheckShapes(falling); len(v) == 0 {
		t.Fatal("missed falling |S| curve")
	}

	// |C| sweep where w/o-C improves: claim 5 fires.
	improving := mk("figX", "|C|", []float64{20, 60},
		one(350, 360), one(330, 360), one(0.1, 0.1), one(0.3, 0.3))
	if v := CheckShapes(improving); len(v) == 0 {
		t.Fatal("missed improving w/o-C under |C|")
	}

	// e sweep without saturation: claim 6 fires.
	unsaturated := mk("figX", "e (h)", []float64{1, 1.5, 2},
		one(350, 360, 370), one(330, 350, 378), one(0.1, 0.1, 0.1), one(0.3, 0.3, 0.3))
	if v := CheckShapes(unsaturated); len(v) == 0 {
		t.Fatal("missed unsaturated w/o-C under e")
	}
}
