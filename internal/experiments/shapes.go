package experiments

import (
	"fmt"
)

// CheckShapes verifies the paper's qualitative claims on a completed
// experiment and returns a list of violations (empty = all shapes hold).
// Claims are endpoint-based with a small tolerance so that seed noise on
// reduced sweeps does not produce false alarms; EXPERIMENTS.md records the
// full-scale outcomes.
//
// Checked claims:
//
//  1. Seq-BDC assigns at least as many tasks as Seq-w/o-C at every sweep
//     point (collaboration helps).
//  2. Seq-BDC's unfairness never exceeds Seq-w/o-C's by more than tol.
//  3. |S| sweeps: every method's assigned count rises from the first to
//     the last point (more tasks to choose from).
//  4. |W| sweeps: assigned rises and Seq-BDC unfairness falls, first to
//     last (more workers → fuller, fairer assignment).
//  5. |C| sweeps: Seq-w/o-C assigned falls and its unfairness rises, first
//     to last (fragmentation hurts the no-collaboration baseline).
//  6. e sweeps: Seq-w/o-C saturates (last two points within satTol) while
//     Seq-BDC keeps gaining from the first to the last point.
func CheckShapes(r *Result) []string {
	const tol = 1e-9
	var bad []string
	e := r.Experiment
	bdc, haveBDC := r.Cells["Seq-BDC"]
	woc, haveWoC := r.Cells["Seq-w/o-C"]

	if haveBDC && haveWoC {
		for vi := range e.SweepValues {
			if bdc[vi].Assigned.Mean < woc[vi].Assigned.Mean-tol {
				bad = append(bad, fmt.Sprintf(
					"%s: Seq-BDC assigned %.1f < Seq-w/o-C %.1f at %s=%g",
					e.ID, bdc[vi].Assigned.Mean, woc[vi].Assigned.Mean, e.SweepName, e.SweepValues[vi]))
			}
			if bdc[vi].Unfairness.Mean > woc[vi].Unfairness.Mean+0.02 {
				bad = append(bad, fmt.Sprintf(
					"%s: Seq-BDC unfairness %.3f above Seq-w/o-C %.3f at %s=%g",
					e.ID, bdc[vi].Unfairness.Mean, woc[vi].Unfairness.Mean, e.SweepName, e.SweepValues[vi]))
			}
		}
	}

	last := len(e.SweepValues) - 1
	if last < 1 {
		return bad
	}
	switch e.SweepName {
	case "|S|":
		for name, cells := range r.Cells {
			if cells[last].Assigned.Mean < cells[0].Assigned.Mean-tol {
				bad = append(bad, fmt.Sprintf("%s: %s assigned fell over the |S| sweep", e.ID, name))
			}
		}
	case "|W|":
		for name, cells := range r.Cells {
			if cells[last].Assigned.Mean < cells[0].Assigned.Mean-tol {
				bad = append(bad, fmt.Sprintf("%s: %s assigned fell over the |W| sweep", e.ID, name))
			}
		}
		if haveBDC && bdc[last].Unfairness.Mean > bdc[0].Unfairness.Mean+0.02 {
			bad = append(bad, fmt.Sprintf("%s: Seq-BDC unfairness rose over the |W| sweep", e.ID))
		}
	case "|C|":
		if haveWoC {
			if woc[last].Assigned.Mean > woc[0].Assigned.Mean+tol {
				bad = append(bad, fmt.Sprintf("%s: Seq-w/o-C assigned rose over the |C| sweep", e.ID))
			}
			if woc[last].Unfairness.Mean < woc[0].Unfairness.Mean-0.02 {
				bad = append(bad, fmt.Sprintf("%s: Seq-w/o-C unfairness fell over the |C| sweep", e.ID))
			}
		}
	case "e (h)":
		if haveWoC {
			const satTol = 0.02 // relative saturation tolerance
			a, b := woc[last-1].Assigned.Mean, woc[last].Assigned.Mean
			if b > a*(1+satTol) {
				bad = append(bad, fmt.Sprintf(
					"%s: Seq-w/o-C keeps growing at large e (%.1f -> %.1f), expected saturation",
					e.ID, a, b))
			}
		}
		if haveBDC && bdc[last].Assigned.Mean < bdc[0].Assigned.Mean-tol {
			bad = append(bad, fmt.Sprintf("%s: Seq-BDC assigned fell over the e sweep", e.ID))
		}
	}
	return bad
}
