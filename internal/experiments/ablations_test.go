package experiments

import (
	"strings"
	"testing"

	"imtao/internal/workload"
)

func TestAblationsRegistry(t *testing.T) {
	ids := Ablations()
	if len(ids) != 6 {
		t.Fatalf("ablations = %v", ids)
	}
	if _, err := RunAblation("bogus", workload.SYN, []int64{1}); err == nil {
		t.Fatal("unknown ablation must error")
	}
}

func TestRunAblationIndexVariantsAgree(t *testing.T) {
	res, err := RunAblation("index", workload.SYN, []int64{1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// The grid and the linear scan must give identical assignments — the
	// index is a pure performance choice.
	if res.Rows[0].Assigned.Mean != res.Rows[1].Assigned.Mean {
		t.Fatalf("index changed the outcome: %v vs %v",
			res.Rows[0].Assigned.Mean, res.Rows[1].Assigned.Mean)
	}
	if !strings.Contains(res.Table(), "grid (default)") {
		t.Error("table rendering broken")
	}
}

func TestRunAblationWorkerOrder(t *testing.T) {
	res, err := RunAblation("worker-order", workload.SYN, []int64{1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Assigned.Mean <= 0 {
			t.Fatalf("variant %q assigned nothing", row.Variant)
		}
	}
}

func TestRunAblationRecipientPolicy(t *testing.T) {
	res, err := RunAblation("recipient-policy", workload.SYN, []int64{1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	var minRatioU, randomU float64
	for _, row := range res.Rows {
		switch {
		case strings.HasPrefix(row.Variant, "min-ratio"):
			minRatioU = row.Unfairness.Mean
		case strings.HasPrefix(row.Variant, "random"):
			randomU = row.Unfairness.Mean
		}
	}
	// The paper's min-ratio rule should not be less fair than random
	// selection (its whole point).
	if minRatioU > randomU+1e-9 {
		t.Errorf("min-ratio unfairness %v worse than random %v", minRatioU, randomU)
	}
}

func TestRunAblationCenterPlacement(t *testing.T) {
	res, err := RunAblation("center-placement", workload.GM, []int64{1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	var random, kmeans float64
	for _, row := range res.Rows {
		if row.Assigned.Mean <= 0 {
			t.Fatalf("variant %q assigned nothing", row.Variant)
		}
		switch row.Variant {
		case "random (paper)":
			random = row.Assigned.Mean
		case "k-means of demand":
			kmeans = row.Assigned.Mean
		}
	}
	// On the clustered GM dataset, siting centers at the demand must not be
	// worse than random placement.
	if kmeans < random {
		t.Errorf("k-means placement %v below random %v on GM", kmeans, random)
	}
}

func TestRunAblationRewardObjective(t *testing.T) {
	res, err := RunAblation("reward-objective", workload.SYN, []int64{1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Assigned.Mean <= 0 {
			t.Fatalf("variant %q assigned nothing", row.Variant)
		}
	}
}

func TestRunAblationAssigner(t *testing.T) {
	res, err := RunAblation("assigner", workload.SYN, []int64{1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Assigned.Mean <= 0 {
			t.Fatalf("variant %q assigned nothing", row.Variant)
		}
	}
}
