package experiments

import (
	"encoding/csv"
	"io"
	"strconv"
)

// WriteCSV emits the experiment result as tidy CSV: one row per
// (method, sweep value, metric) with mean, std and sample count — the
// format downstream plotting tools expect.
func (r *Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	defer cw.Flush()
	if err := cw.Write([]string{
		"experiment", "dataset", "sweep", "value", "method", "metric", "mean", "std", "n",
	}); err != nil {
		return err
	}
	e := r.Experiment
	for _, m := range r.Methods {
		name := m.String()
		for vi, v := range e.SweepValues {
			c := r.Cells[name][vi]
			rows := []struct {
				metric string
				mean   float64
				std    float64
				n      int
			}{
				{"assigned", c.Assigned.Mean, c.Assigned.Std, c.Assigned.N},
				{"unfairness", c.Unfairness.Mean, c.Unfairness.Std, c.Unfairness.N},
				{"cpu_seconds", c.CPUSeconds.Mean, c.CPUSeconds.Std, c.CPUSeconds.N},
			}
			for _, row := range rows {
				if err := cw.Write([]string{
					e.ID, e.Dataset.String(), e.SweepName, ftoa(v), name,
					row.metric, ftoa(row.mean), ftoa(row.std), strconv.Itoa(row.n),
				}); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// WriteCSV emits the convergence trace as CSV (iteration, assigned,
// unfairness, potential).
func (c *ConvergenceResult) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	defer cw.Flush()
	if err := cw.Write([]string{"dataset", "seed", "iteration", "assigned", "unfairness", "phi"}); err != nil {
		return err
	}
	for _, p := range c.Points {
		if err := cw.Write([]string{
			c.Dataset.String(), strconv.FormatInt(c.Seed, 10),
			strconv.Itoa(p.Iteration), strconv.Itoa(p.Assigned), ftoa(p.Unfairness), ftoa(p.Phi),
		}); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV emits the ablation result as CSV.
func (r *AblationResult) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	defer cw.Flush()
	if err := cw.Write([]string{"ablation", "dataset", "variant", "metric", "mean", "std", "n"}); err != nil {
		return err
	}
	for _, row := range r.Rows {
		for _, m := range []struct {
			metric string
			mean   float64
			std    float64
			n      int
		}{
			{"assigned", row.Assigned.Mean, row.Assigned.Std, row.Assigned.N},
			{"unfairness", row.Unfairness.Mean, row.Unfairness.Std, row.Unfairness.N},
			{"cpu_seconds", row.CPUSeconds.Mean, row.CPUSeconds.Std, row.CPUSeconds.N},
		} {
			if err := cw.Write([]string{
				r.Name, r.Dataset.String(), row.Variant, m.metric,
				ftoa(m.mean), ftoa(m.std), strconv.Itoa(m.n),
			}); err != nil {
				return err
			}
		}
	}
	return nil
}

func ftoa(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
