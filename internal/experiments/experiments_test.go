package experiments

import (
	"bytes"
	"strings"
	"testing"

	"imtao/internal/core"
	"imtao/internal/workload"
)

func TestRegistryCoversAllFigures(t *testing.T) {
	reg := Registry()
	want := []string{"fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10"}
	if len(reg) != len(want) {
		t.Fatalf("registry has %d entries, want %d", len(reg), len(want))
	}
	for i, id := range want {
		if reg[i].ID != id {
			t.Errorf("registry[%d] = %s, want %s", i, reg[i].ID, id)
		}
		if len(reg[i].SweepValues) != 5 {
			t.Errorf("%s sweeps %d values, paper uses 5", id, len(reg[i].SweepValues))
		}
		if reg[i].Apply == nil {
			t.Errorf("%s has no Apply", id)
		}
	}
	// Sweep values match Table I.
	if e, _ := Lookup("fig5"); e.SweepValues[0] != 80 || e.SweepValues[4] != 120 {
		t.Error("fig5 worker sweep mismatch with Table I (GM)")
	}
	if e, _ := Lookup("fig6"); e.SweepValues[0] != 100 || e.SweepValues[4] != 200 {
		t.Error("fig6 worker sweep mismatch with Table I (SYN)")
	}
	if _, ok := Lookup("nope"); ok {
		t.Error("Lookup must fail for unknown id")
	}
}

// smallExperiment shrinks an experiment so the sweep finishes quickly while
// keeping its structure.
func smallExperiment(id string) Experiment {
	e, _ := Lookup(id)
	e.SweepValues = e.SweepValues[:2]
	orig := e.Apply
	e.Apply = func(p *workload.Params, v float64) {
		p.NumTasks = 80
		p.NumWorkers = 20
		p.NumCenters = 5
		orig(p, v)
		// Scale the swept dimension down except expiry.
		switch e.SweepName {
		case "|S|":
			p.NumTasks = int(v / 5)
		case "|W|":
			p.NumWorkers = int(v / 5)
		case "|C|":
			p.NumCenters = int(v / 4)
		}
	}
	return e
}

func TestRunProducesCompleteCells(t *testing.T) {
	e := smallExperiment("fig3")
	res, err := Run(e, Options{Seeds: []int64{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Methods) != 4 {
		t.Fatalf("default methods = %d, want 4 Seq methods", len(res.Methods))
	}
	for _, m := range res.Methods {
		cells := res.Cells[m.String()]
		if len(cells) != len(e.SweepValues) {
			t.Fatalf("%s has %d cells", m, len(cells))
		}
		for i, c := range cells {
			if c.Assigned.N != 2 {
				t.Fatalf("%s cell %d aggregated %d seeds", m, i, c.Assigned.N)
			}
			if c.Assigned.Mean <= 0 {
				t.Fatalf("%s cell %d assigned nothing", m, i)
			}
			if c.CPUSeconds.Mean < 0 {
				t.Fatalf("%s cell %d negative time", m, i)
			}
		}
	}
}

func TestRunShapeBDCBeatsWoC(t *testing.T) {
	e := smallExperiment("fig4")
	res, err := Run(e, Options{Seeds: []int64{1, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	for vi := range e.SweepValues {
		bdc := res.Cells["Seq-BDC"][vi].Assigned.Mean
		woc := res.Cells["Seq-w/o-C"][vi].Assigned.Mean
		if bdc < woc {
			t.Errorf("sweep %d: Seq-BDC %.1f < Seq-w/o-C %.1f", vi, bdc, woc)
		}
	}
}

func TestTableAndPlotsRender(t *testing.T) {
	e := smallExperiment("fig3")
	res, err := Run(e, Options{Seeds: []int64{1}})
	if err != nil {
		t.Fatal(err)
	}
	table := res.Table()
	for _, want := range []string{"Fig. 3", "assigned tasks", "unfairness", "CPU", "Seq-BDC", "Seq-w/o-C"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
	plots := res.Plots()
	if !strings.Contains(plots, "Seq-BDC") || !strings.Contains(plots, "+---") {
		t.Errorf("plots look wrong:\n%s", plots)
	}
}

func TestConvergenceTraceShape(t *testing.T) {
	// Shrunken Fig. 11: run at full defaults is slow for a unit test, so we
	// call the underlying pieces with a smaller |C| through the public entry
	// point after checking it accepts the paper's parameters. Here we verify
	// the monotone shape the paper reports.
	res, err := Convergence(workload.SYN, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) < 2 {
		t.Fatalf("convergence trace too short: %d points", len(res.Points))
	}
	for i := 1; i < len(res.Points); i++ {
		if res.Points[i].Assigned < res.Points[i-1].Assigned {
			t.Fatalf("assigned decreased at point %d", i)
		}
	}
	// Unfairness at the end should not exceed the starting unfairness.
	if res.Points[len(res.Points)-1].Unfairness > res.Points[0].Unfairness+1e-9 {
		t.Errorf("unfairness did not improve: %v -> %v",
			res.Points[0].Unfairness, res.Points[len(res.Points)-1].Unfairness)
	}
	out := res.Render()
	if !strings.Contains(out, "Fig. 11") || !strings.Contains(out, "iteration") {
		t.Errorf("render missing headers:\n%s", out)
	}
}

func TestTableI(t *testing.T) {
	out := TableI()
	for _, want := range []string{"Table I", "|S|", "|W|", "|C|", "Expiration", "maxT"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table I missing %q", want)
		}
	}
}

func TestCPUSplit(t *testing.T) {
	e := smallExperiment("fig3")
	res, err := Run(e, Options{Seeds: []int64{1}, Methods: []core.Method{
		{Assigner: core.Seq, Collab: core.WoC},
		{Assigner: core.Opt, Collab: core.WoC},
	}})
	if err != nil {
		t.Fatal(err)
	}
	seqMean, optMean, haveOpt := res.CPUSplit()
	if !haveOpt {
		t.Fatal("Opt method ran but CPUSplit reports none")
	}
	if seqMean <= 0 || optMean <= 0 {
		t.Fatalf("means: seq=%v opt=%v", seqMean, optMean)
	}
	if optMean < seqMean {
		t.Errorf("Opt (%v) should cost more CPU than Seq (%v)", optMean, seqMean)
	}
}

func TestBestMethodByAssigned(t *testing.T) {
	e := smallExperiment("fig4")
	res, err := Run(e, Options{Seeds: []int64{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	best := res.BestMethodByAssigned()
	if len(best) != len(e.SweepValues) {
		t.Fatalf("best = %v", best)
	}
	for _, name := range best {
		if name == "Seq-w/o-C" {
			t.Errorf("w/o-C should never be the strict best when collaboration helps; got %v", best)
		}
	}
}

func TestSeqAndAllMethods(t *testing.T) {
	if got := SeqMethods(); len(got) != 4 {
		t.Errorf("SeqMethods = %d", len(got))
	}
	if got := AllMethods(); len(got) != 8 {
		t.Errorf("AllMethods = %d", len(got))
	}
}

func TestRunDefaults(t *testing.T) {
	// Shrink by running on the small SYN defaults via seeds only — the
	// default setting itself is quick with Seq methods.
	res, err := RunDefaults(workload.SYN, SeqMethods(), []int64{1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	var bdc, woc float64
	for _, r := range res.Rows {
		switch r.Method.String() {
		case "Seq-BDC":
			bdc = r.Assigned.Mean
		case "Seq-w/o-C":
			woc = r.Assigned.Mean
		}
		if r.Assigned.Mean <= 0 {
			t.Fatalf("method %v assigned nothing", r.Method)
		}
	}
	if bdc < woc {
		t.Fatalf("Seq-BDC %v < Seq-w/o-C %v at defaults", bdc, woc)
	}
	if !strings.Contains(res.Table(), "Seq-BDC") {
		t.Error("table render broken")
	}
}

func TestRunParallelMatchesSequential(t *testing.T) {
	e := smallExperiment("fig3")
	seq, err := Run(e, Options{Seeds: []int64{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Run(e, Options{Seeds: []int64{1, 2}, Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range seq.Methods {
		name := m.String()
		for vi := range e.SweepValues {
			a, b := seq.Cells[name][vi], par.Cells[name][vi]
			if a.Assigned.Mean != b.Assigned.Mean || a.Unfairness.Mean != b.Unfairness.Mean {
				t.Fatalf("%s cell %d differs between sequential and parallel runs", name, vi)
			}
		}
	}
}

func TestRunDynamicSweep(t *testing.T) {
	res, err := RunDynamicSweep(workload.SYN, []int64{1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(res.Intervals)*2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Completion.Mean < 0 || row.Completion.Mean > 1 {
			t.Fatalf("completion = %v", row.Completion.Mean)
		}
		if row.MeanLatency.Mean < 0 {
			t.Fatalf("latency = %v", row.MeanLatency.Mean)
		}
	}
	// At short batch intervals BDC completes at least as much as w/o-C.
	// (At very long intervals the greedy first batch can route workers far
	// from later demand, so snapshot dominance does not compose over time —
	// a genuine dynamic effect the sweep exists to expose.)
	byInterval := map[float64]map[string]float64{}
	for _, row := range res.Rows {
		if byInterval[row.IntervalHours] == nil {
			byInterval[row.IntervalHours] = map[string]float64{}
		}
		byInterval[row.IntervalHours][row.Method.String()] = row.Completion.Mean
	}
	for iv, ms := range byInterval {
		if iv <= 0.25 && ms["Seq-BDC"] < ms["Seq-w/o-C"]-1e-9 {
			t.Errorf("interval %v: BDC completion %v below w/o-C %v", iv, ms["Seq-BDC"], ms["Seq-w/o-C"])
		}
	}
	if !strings.Contains(res.Table(), "batch (min)") {
		t.Error("table render broken")
	}
}

func TestRunHeadroom(t *testing.T) {
	res, err := RunHeadroom(workload.SYN, []int64{1}, 800)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	vals := map[string]float64{}
	for _, row := range res.Rows {
		vals[row.Name] = row.Assigned.Mean
	}
	if vals["Seq-BDC"] < vals["Seq-w/o-C"] {
		t.Error("BDC below w/o-C in headroom run")
	}
	if vals["annealing"] < vals["Seq-w/o-C"] {
		t.Error("annealing below the home placement")
	}
	if !strings.Contains(res.Table(), "annealing") {
		t.Error("table render broken")
	}
}

func TestRunCapacitySweep(t *testing.T) {
	res, err := RunCapacitySweep(workload.SYN, []int64{1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(res.Values)*2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Assigned must not fall as capacity rises, per method.
	byMethod := map[string][]float64{}
	for _, row := range res.Rows {
		byMethod[row.Method.String()] = append(byMethod[row.Method.String()], row.Assigned.Mean)
	}
	for name, series := range byMethod {
		for i := 1; i < len(series); i++ {
			if series[i] < series[i-1]-1e-9 {
				t.Errorf("%s assigned fell from maxT idx %d to %d: %v", name, i-1, i, series)
			}
		}
	}
	if !strings.Contains(res.Table(), "maxT") {
		t.Error("table render broken")
	}
}

func TestWriteReport(t *testing.T) {
	var buf bytes.Buffer
	err := WriteReport(&buf, ReportOptions{
		Seeds:   []int64{1},
		Figures: []string{"fig3"},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# IMTAO reproduction report",
		"Default setting",
		"Fig. 3",
		"shape check",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
	if werr := WriteReport(&buf, ReportOptions{Figures: []string{"nope"}, Seeds: []int64{1}}); werr == nil {
		t.Error("unknown figure must error")
	}
}

func TestDefaultsSignificance(t *testing.T) {
	res, err := RunDefaults(workload.SYN, SeqMethods(), []int64{1, 2, 3, 4, 5}, 0)
	if err != nil {
		t.Fatal(err)
	}
	bdc := core.Method{Assigner: core.Seq, Collab: core.BDC}
	woc := core.Method{Assigner: core.Seq, Collab: core.WoC}
	tStat, p, err := res.Significance(bdc, woc)
	if err != nil {
		t.Fatal(err)
	}
	if tStat <= 0 {
		t.Fatalf("t = %v, BDC should dominate", tStat)
	}
	// BDC beats w/o-C on every seed by a wide margin: strongly significant.
	if p > 0.05 {
		t.Fatalf("p = %v, expected significance across 5 seeds", p)
	}
	if _, _, err := res.Significance(bdc, core.Method{Assigner: core.Opt, Collab: core.BDC}); err == nil {
		t.Error("missing method must error")
	}
}
