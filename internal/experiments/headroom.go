package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"imtao/internal/anneal"
	"imtao/internal/core"
	"imtao/internal/stats"
	"imtao/internal/workload"
)

// The headroom analysis: how much of the globally reachable improvement does
// IMTAO's restricted game capture? A simulated-annealing search over ALL
// worker→center placements bounds the achievable assignment from above
// (approximately); the gap between Seq-BDC and the annealer is the price of
// the game's locality and equilibrium semantics.

// HeadroomRow is one method's aggregate in the headroom comparison.
type HeadroomRow struct {
	Name       string
	Assigned   stats.Summary
	Unfairness stats.Summary
	CPUSeconds stats.Summary
}

// HeadroomResult is a completed headroom analysis.
type HeadroomResult struct {
	Dataset workload.Dataset
	Seeds   []int64
	Rows    []HeadroomRow
}

// RunHeadroom compares Seq-w/o-C, Seq-BDC and the annealing comparator at
// the Table I default setting.
func RunHeadroom(d workload.Dataset, seeds []int64, annealIters int) (*HeadroomResult, error) {
	if len(seeds) == 0 {
		seeds = []int64{1, 2, 3}
	}
	if annealIters <= 0 {
		annealIters = 4000
	}
	res := &HeadroomResult{Dataset: d, Seeds: seeds}
	type agg struct{ a, u, c []float64 }
	aggs := map[string]*agg{
		"Seq-w/o-C": {}, "Seq-BDC": {}, "annealing": {},
	}
	for _, seed := range seeds {
		p := workload.Defaults(d)
		p.Seed = seed
		raw, err := workload.Generate(p)
		if err != nil {
			return nil, err
		}
		in, _, err := core.Partition(raw)
		if err != nil {
			return nil, err
		}
		for _, m := range []core.Method{
			{Assigner: core.Seq, Collab: core.WoC},
			{Assigner: core.Seq, Collab: core.BDC},
		} {
			rep, err := core.Run(in, core.Config{Method: m, Seed: seed})
			if err != nil {
				return nil, err
			}
			a := aggs[m.String()]
			a.a = append(a.a, float64(rep.Assigned))
			a.u = append(a.u, rep.Unfairness)
			a.c = append(a.c, (rep.Phase1Time + rep.Phase2Time).Seconds())
		}
		t0 := time.Now()
		ann, err := anneal.Optimize(in, anneal.Config{
			Iterations: annealIters,
			Rng:        rand.New(rand.NewSource(seed)),
		})
		if err != nil {
			return nil, err
		}
		a := aggs["annealing"]
		a.a = append(a.a, float64(ann.Assigned))
		a.u = append(a.u, ann.Unfairness)
		a.c = append(a.c, time.Since(t0).Seconds())
	}
	for _, name := range []string{"Seq-w/o-C", "Seq-BDC", "annealing"} {
		a := aggs[name]
		res.Rows = append(res.Rows, HeadroomRow{
			Name:       name,
			Assigned:   stats.Summarize(a.a),
			Unfairness: stats.Summarize(a.u),
			CPUSeconds: stats.Summarize(a.c),
		})
	}
	return res, nil
}

// Table renders the headroom analysis.
func (r *HeadroomResult) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Headroom vs global search (%s, Table I defaults, seeds=%v)\n", r.Dataset, r.Seeds)
	fmt.Fprintf(&b, "  %-12s %10s %12s %12s\n", "method", "assigned", "U_rho", "cpu (s)")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-12s %10.1f %12.3f %12.5f\n",
			row.Name, row.Assigned.Mean, row.Unfairness.Mean, row.CPUSeconds.Mean)
	}
	return b.String()
}
