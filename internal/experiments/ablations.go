package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"imtao/internal/assign"
	"imtao/internal/collab"
	"imtao/internal/core"
	"imtao/internal/geo"
	"imtao/internal/matching"
	"imtao/internal/metrics"
	"imtao/internal/model"
	"imtao/internal/stats"
	"imtao/internal/voronoi"
	"imtao/internal/workload"
)

// The ablation studies of DESIGN.md §6 — design choices the paper fixes
// that we vary to see how much they matter. Each ablation runs at the
// Table I default parameter setting over a seed set and reports assigned
// tasks and unfairness per variant.

// AblationRow is one variant's aggregated outcome.
type AblationRow struct {
	Variant    string
	Assigned   stats.Summary
	Unfairness stats.Summary
	CPUSeconds stats.Summary
}

// AblationResult is one completed ablation.
type AblationResult struct {
	Name    string
	Dataset workload.Dataset
	Seeds   []int64
	Rows    []AblationRow
}

// Table renders the ablation as a text table.
func (r *AblationResult) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: %s (%s, seeds=%v)\n", r.Name, r.Dataset, r.Seeds)
	fmt.Fprintf(&b, "  %-24s %10s %12s %12s\n", "variant", "assigned", "U_rho", "cpu (s)")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-24s %10.1f %12.3f %12.5f\n",
			row.Variant, row.Assigned.Mean, row.Unfairness.Mean, row.CPUSeconds.Mean)
	}
	return b.String()
}

// Ablations lists the available ablation IDs.
func Ablations() []string {
	return []string{"worker-order", "recipient-policy", "assigner", "index", "center-placement", "reward-objective"}
}

// RunAblation executes one ablation by ID at the default setting of the
// given dataset.
func RunAblation(id string, d workload.Dataset, seeds []int64) (*AblationResult, error) {
	if len(seeds) == 0 {
		seeds = []int64{1, 2, 3}
	}
	switch id {
	case "worker-order":
		return ablateWorkerOrder(d, seeds)
	case "recipient-policy":
		return ablateRecipientPolicy(d, seeds)
	case "assigner":
		return ablateAssigner(d, seeds)
	case "index":
		return ablateIndex(d, seeds)
	case "center-placement":
		return ablateCenterPlacement(d, seeds)
	case "reward-objective":
		return ablateRewardObjective(d, seeds)
	}
	return nil, fmt.Errorf("experiments: unknown ablation %q", id)
}

// prepInstance generates and partitions a default instance.
func prepInstance(d workload.Dataset, seed int64) (*model.Instance, error) {
	p := workload.Defaults(d)
	p.Seed = seed
	raw, err := workload.Generate(p)
	if err != nil {
		return nil, err
	}
	in, _, err := core.Partition(raw)
	return in, err
}

// phase1With runs the center-independent phase with the given assigner.
func phase1With(in *model.Instance, a collab.Assigner) []assign.Result {
	out := make([]assign.Result, len(in.Centers))
	for ci := range in.Centers {
		c := in.Center(model.CenterID(ci))
		out[ci] = a(in, c, c.Workers, c.Tasks)
	}
	return out
}

type variantRun func(in *model.Instance, seed int64) (assigned int, unfair float64)

func collect(name string, d workload.Dataset, seeds []int64, variants []string, run func(v string) variantRun) (*AblationResult, error) {
	res := &AblationResult{Name: name, Dataset: d, Seeds: seeds}
	for _, v := range variants {
		var as, us, ts []float64
		fn := run(v)
		for _, seed := range seeds {
			in, err := prepInstance(d, seed)
			if err != nil {
				return nil, err
			}
			t0 := time.Now()
			a, u := fn(in, seed)
			ts = append(ts, time.Since(t0).Seconds())
			as = append(as, float64(a))
			us = append(us, u)
		}
		res.Rows = append(res.Rows, AblationRow{
			Variant:    v,
			Assigned:   stats.Summarize(as),
			Unfairness: stats.Summarize(us),
			CPUSeconds: stats.Summarize(ts),
		})
	}
	return res, nil
}

// ablateWorkerOrder varies the Algorithm 2 worker ordering (paper:
// marginal-first) in phase 1, with BDC collaboration on top.
func ablateWorkerOrder(d workload.Dataset, seeds []int64) (*AblationResult, error) {
	orders := map[string]assign.WorkerOrder{
		"marginal-first (paper)": assign.MarginalFirst,
		"nearest-first":          assign.NearestFirst,
		"by-id":                  assign.ByID,
		"random":                 assign.RandomOrder,
	}
	return collect("worker ordering in Algorithm 2", d, seeds,
		[]string{"marginal-first (paper)", "nearest-first", "by-id", "random"},
		func(v string) variantRun {
			ord := orders[v]
			return func(in *model.Instance, seed int64) (int, float64) {
				a := func(in *model.Instance, c *model.Center, ws []model.WorkerID, ts []model.TaskID) assign.Result {
					opt := assign.Options{Order: ord}
					if ord == assign.RandomOrder {
						opt.Rng = rand.New(rand.NewSource(seed))
					}
					return assign.SequentialOpt(in, c, ws, ts, opt)
				}
				p1 := phase1With(in, a)
				out := collab.Run(in, p1, collab.Config{Assigner: a})
				return out.Solution.AssignedCount(), metrics.SolutionUnfairness(in, out.Solution)
			}
		})
}

// ablateRecipientPolicy varies the recipient-selection rule of Algorithm 3.
func ablateRecipientPolicy(d workload.Dataset, seeds []int64) (*AblationResult, error) {
	policies := map[string]collab.RecipientPolicy{
		"min-ratio (paper)": collab.MinRatio,
		"random (RBDC)":     collab.RandomRecipient,
		"max-leftover":      collab.MaxLeftover,
	}
	return collect("recipient selection in Algorithm 3", d, seeds,
		[]string{"min-ratio (paper)", "random (RBDC)", "max-leftover"},
		func(v string) variantRun {
			pol := policies[v]
			return func(in *model.Instance, seed int64) (int, float64) {
				p1 := phase1With(in, assign.Sequential)
				cfg := collab.Config{Recipient: pol, Assigner: assign.Sequential}
				if pol == collab.RandomRecipient {
					cfg.Rng = rand.New(rand.NewSource(seed))
				}
				out := collab.Run(in, p1, cfg)
				return out.Solution.AssignedCount(), metrics.SolutionUnfairness(in, out.Solution)
			}
		})
}

// ablateAssigner compares phase-1 assigners: the paper's sequential greedy,
// the round-matching (Hungarian) baseline, and the budgeted exact Opt.
func ablateAssigner(d workload.Dataset, seeds []int64) (*AblationResult, error) {
	roundMatching := func(in *model.Instance, c *model.Center, ws []model.WorkerID, ts []model.TaskID) assign.Result {
		r := matching.RoundMatching(in, c, ws, ts)
		return assign.Result{Routes: r.Routes, LeftWorkers: r.LeftWorkers, LeftTasks: r.LeftTasks}
	}
	budgetedOpt := func(in *model.Instance, c *model.Center, ws []model.WorkerID, ts []model.TaskID) assign.Result {
		return assign.OptimalOpt(in, c, ws, ts, assign.OptimalOptions{TimeBudget: 50 * time.Millisecond})
	}
	assigners := map[string]collab.Assigner{
		"sequential (paper)": assign.Sequential,
		"round-matching":     roundMatching,
		"opt (50ms budget)":  budgetedOpt,
	}
	return collect("phase-1 assignment algorithm", d, seeds,
		[]string{"sequential (paper)", "round-matching", "opt (50ms budget)"},
		func(v string) variantRun {
			a := assigners[v]
			return func(in *model.Instance, seed int64) (int, float64) {
				p1 := phase1With(in, a)
				out := collab.Run(in, p1, collab.Config{Assigner: a})
				return out.Solution.AssignedCount(), metrics.SolutionUnfairness(in, out.Solution)
			}
		})
}

// ablateCenterPlacement compares where the platform sites its centers:
// uniformly at random (the paper), at the k-means of the task demand, or at
// a Lloyd-relaxed (area-balanced) layout. Tasks and workers stay identical;
// only center locations move before partitioning.
func ablateCenterPlacement(d workload.Dataset, seeds []int64) (*AblationResult, error) {
	place := func(v string, in *model.Instance, seed int64) error {
		switch v {
		case "random (paper)":
			return nil
		case "k-means of demand":
			pts := make([]geo.Point, len(in.Tasks))
			for i, t := range in.Tasks {
				pts[i] = t.Loc
			}
			centers, err := voronoi.KMeans(rand.New(rand.NewSource(seed)), pts, len(in.Centers), 40)
			if err != nil {
				return err
			}
			for i := range in.Centers {
				in.Centers[i].Loc = centers[i]
			}
			return nil
		case "lloyd (balanced area)":
			sites := make([]geo.Point, len(in.Centers))
			for i, c := range in.Centers {
				sites[i] = c.Loc
			}
			relaxed, err := voronoi.Lloyd(sites, in.Bounds, 30, 1e-3)
			if err != nil {
				return err
			}
			for i := range in.Centers {
				in.Centers[i].Loc = relaxed[i]
			}
			return nil
		}
		return fmt.Errorf("unknown placement %q", v)
	}
	res := &AblationResult{Name: "center placement", Dataset: d, Seeds: seeds}
	for _, v := range []string{"random (paper)", "k-means of demand", "lloyd (balanced area)"} {
		var as, us, ts []float64
		for _, seed := range seeds {
			p := workload.Defaults(d)
			p.Seed = seed
			raw, err := workload.Generate(p)
			if err != nil {
				return nil, err
			}
			if err := place(v, raw, seed); err != nil {
				return nil, err
			}
			in, _, err := core.Partition(raw)
			if err != nil {
				return nil, err
			}
			t0 := time.Now()
			rep, err := core.Run(in, core.Config{Method: core.Method{Assigner: core.Seq, Collab: core.BDC}})
			if err != nil {
				return nil, err
			}
			ts = append(ts, time.Since(t0).Seconds())
			as = append(as, float64(rep.Assigned))
			us = append(us, rep.Unfairness)
		}
		res.Rows = append(res.Rows, AblationRow{
			Variant:    v,
			Assigned:   stats.Summarize(as),
			Unfairness: stats.Summarize(us),
			CPUSeconds: stats.Summarize(ts),
		})
	}
	return res, nil
}

// ablateRewardObjective compares the paper's count-greedy Algorithm 2 with
// the reward-per-travel-hour variant on a heterogeneous-reward workload
// (RewardJitter 0.8). "Assigned" stays the paper's metric; the interesting
// column is the unfairness/assigned trade the reward-greedy makes, and the
// per-variant reward totals appear in the test assertions.
func ablateRewardObjective(d workload.Dataset, seeds []int64) (*AblationResult, error) {
	variants := map[string]collab.Assigner{
		"count-greedy (paper)": assign.Sequential,
		"reward-greedy":        assign.SequentialByReward,
	}
	res := &AblationResult{Name: "phase-1 objective under heterogeneous rewards", Dataset: d, Seeds: seeds}
	for _, v := range []string{"count-greedy (paper)", "reward-greedy"} {
		a := variants[v]
		var as, us, ts []float64
		for _, seed := range seeds {
			p := workload.Defaults(d)
			p.Seed = seed
			p.RewardJitter = 0.8
			raw, err := workload.Generate(p)
			if err != nil {
				return nil, err
			}
			in, _, err := core.Partition(raw)
			if err != nil {
				return nil, err
			}
			t0 := time.Now()
			p1 := phase1With(in, a)
			out := collab.Run(in, p1, collab.Config{Assigner: a})
			ts = append(ts, time.Since(t0).Seconds())
			as = append(as, float64(out.Solution.AssignedCount()))
			us = append(us, metrics.SolutionUnfairness(in, out.Solution))
		}
		res.Rows = append(res.Rows, AblationRow{
			Variant:    v,
			Assigned:   stats.Summarize(as),
			Unfairness: stats.Summarize(us),
			CPUSeconds: stats.Summarize(ts),
		})
	}
	return res, nil
}

// ablateIndex compares the nearest-task index backing Algorithm 2.
func ablateIndex(d workload.Dataset, seeds []int64) (*AblationResult, error) {
	return collect("nearest-task index in Algorithm 2", d, seeds,
		[]string{"grid (default)", "linear scan"},
		func(v string) variantRun {
			linear := v == "linear scan"
			return func(in *model.Instance, seed int64) (int, float64) {
				a := func(in *model.Instance, c *model.Center, ws []model.WorkerID, ts []model.TaskID) assign.Result {
					return assign.SequentialOpt(in, c, ws, ts, assign.Options{LinearScan: linear})
				}
				p1 := phase1With(in, a)
				out := collab.Run(in, p1, collab.Config{Assigner: a})
				return out.Solution.AssignedCount(), metrics.SolutionUnfairness(in, out.Solution)
			}
		})
}
