package experiments

import (
	"fmt"
	"strings"

	"imtao/internal/core"
	"imtao/internal/stats"
	"imtao/internal/workload"
)

// The capacity study (beyond the paper): the paper fixes w.maxT = 4; this
// sweep varies it and shows where per-run capacity stops being the binding
// constraint (|W|·maxT crosses |S|) and the deadline takes over.

// CapacityRow aggregates one (maxT, method) cell.
type CapacityRow struct {
	MaxT       int
	Method     core.Method
	Assigned   stats.Summary
	Unfairness stats.Summary
}

// CapacityResult is a completed capacity sweep.
type CapacityResult struct {
	Dataset workload.Dataset
	Seeds   []int64
	Values  []int
	Rows    []CapacityRow
}

// RunCapacitySweep sweeps maxT over {1, 2, 3, 4, 6, 8} at otherwise default
// parameters, comparing Seq-BDC and Seq-w/o-C.
func RunCapacitySweep(d workload.Dataset, seeds []int64) (*CapacityResult, error) {
	if len(seeds) == 0 {
		seeds = []int64{1, 2, 3}
	}
	values := []int{1, 2, 3, 4, 6, 8}
	methods := []core.Method{
		{Assigner: core.Seq, Collab: core.BDC},
		{Assigner: core.Seq, Collab: core.WoC},
	}
	res := &CapacityResult{Dataset: d, Seeds: seeds, Values: values}
	for _, maxT := range values {
		for _, m := range methods {
			var as, us []float64
			for _, seed := range seeds {
				p := workload.Defaults(d)
				p.MaxT = maxT
				p.Seed = seed
				raw, err := workload.Generate(p)
				if err != nil {
					return nil, err
				}
				in, _, err := core.Partition(raw)
				if err != nil {
					return nil, err
				}
				rep, err := core.Run(in, core.Config{Method: m, Seed: seed})
				if err != nil {
					return nil, err
				}
				as = append(as, float64(rep.Assigned))
				us = append(us, rep.Unfairness)
			}
			res.Rows = append(res.Rows, CapacityRow{
				MaxT: maxT, Method: m,
				Assigned:   stats.Summarize(as),
				Unfairness: stats.Summarize(us),
			})
		}
	}
	return res, nil
}

// Table renders the capacity sweep.
func (r *CapacityResult) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Capacity sweep (%s, maxT varied, seeds=%v)\n", r.Dataset, r.Seeds)
	fmt.Fprintf(&b, "  %-8s %-10s %10s %12s\n", "maxT", "method", "assigned", "U_rho")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-8d %-10s %10.1f %12.3f\n",
			row.MaxT, row.Method, row.Assigned.Mean, row.Unfairness.Mean)
	}
	return b.String()
}
