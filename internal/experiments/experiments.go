// Package experiments defines one runnable experiment per table and figure
// of the paper's evaluation (§VI): the Table I parameter grid and Figs. 3–11,
// each as a parameter sweep over datasets GM and SYN comparing the eight
// methods {Seq, Opt} × {BDC, RBDC, DC, w/o-C} on the paper's three metrics —
// number of assigned tasks, collaboration unfairness U_ρ and CPU time.
package experiments

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"imtao/internal/core"
	"imtao/internal/metrics"
	"imtao/internal/obs"
	"imtao/internal/stats"
	"imtao/internal/textplot"
	"imtao/internal/workload"
)

// Experiment is a parameter sweep reproducing one figure.
type Experiment struct {
	ID     string // e.g. "fig3"
	Title  string // e.g. "Effect of |S| on GM"
	Figure string // paper anchor, e.g. "Fig. 3"

	Dataset     workload.Dataset
	SweepName   string    // e.g. "|S|"
	SweepValues []float64 // x axis
	// Apply sets the swept parameter on the workload params.
	Apply func(p *workload.Params, v float64)
}

// Registry returns all figure experiments keyed by ID, in presentation
// order. Fig. 11 (convergence) has a dedicated entry point, Convergence.
func Registry() []Experiment {
	taskSweep := []float64{400, 500, 600, 700, 800}
	centerSweep := []float64{20, 30, 40, 50, 60}
	expirySweep := []float64{1.00, 1.25, 1.50, 1.75, 2.00}
	setTasks := func(p *workload.Params, v float64) { p.NumTasks = int(v) }
	setWorkers := func(p *workload.Params, v float64) { p.NumWorkers = int(v) }
	setCenters := func(p *workload.Params, v float64) { p.NumCenters = int(v) }
	setExpiry := func(p *workload.Params, v float64) { p.Expiry = v }

	return []Experiment{
		{ID: "fig3", Title: "Effect of |S| on GM", Figure: "Fig. 3",
			Dataset: workload.GM, SweepName: "|S|", SweepValues: taskSweep, Apply: setTasks},
		{ID: "fig4", Title: "Effect of |S| on SYN", Figure: "Fig. 4",
			Dataset: workload.SYN, SweepName: "|S|", SweepValues: taskSweep, Apply: setTasks},
		{ID: "fig5", Title: "Effect of |W| on GM", Figure: "Fig. 5",
			Dataset: workload.GM, SweepName: "|W|",
			SweepValues: []float64{80, 90, 100, 110, 120}, Apply: setWorkers},
		{ID: "fig6", Title: "Effect of |W| on SYN", Figure: "Fig. 6",
			Dataset: workload.SYN, SweepName: "|W|",
			SweepValues: []float64{100, 125, 150, 175, 200}, Apply: setWorkers},
		{ID: "fig7", Title: "Effect of |C| on GM", Figure: "Fig. 7",
			Dataset: workload.GM, SweepName: "|C|", SweepValues: centerSweep, Apply: setCenters},
		{ID: "fig8", Title: "Effect of |C| on SYN", Figure: "Fig. 8",
			Dataset: workload.SYN, SweepName: "|C|", SweepValues: centerSweep, Apply: setCenters},
		{ID: "fig9", Title: "Effect of e on GM", Figure: "Fig. 9",
			Dataset: workload.GM, SweepName: "e (h)", SweepValues: expirySweep, Apply: setExpiry},
		{ID: "fig10", Title: "Effect of e on SYN", Figure: "Fig. 10",
			Dataset: workload.SYN, SweepName: "e (h)", SweepValues: expirySweep, Apply: setExpiry},
	}
}

// Lookup finds an experiment by ID.
func Lookup(id string) (Experiment, bool) {
	for _, e := range Registry() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// Options tunes a run.
type Options struct {
	// Seeds are the dataset seeds averaged over; default {1, 2, 3}.
	Seeds []int64
	// Methods to compare; default: the four Seq methods. (The Opt methods
	// reproduce the paper's finding that they cost orders of magnitude more
	// CPU; enable them explicitly and expect long runs.)
	Methods []core.Method
	// OptBudget bounds the Opt assigner's per-center search; default 200ms.
	OptBudget time.Duration
	// Parallel runs up to this many (sweep value, seed) cells concurrently;
	// 0 or 1 runs sequentially. Methods within a cell share the instance
	// and still run in order, keeping RBDC seeding deterministic.
	Parallel int
	// Progress, when non-nil, receives one line per completed sweep cell.
	// Calls may come from concurrent workers when Parallel > 1.
	Progress func(string)
}

func (o *Options) fill() {
	if len(o.Seeds) == 0 {
		o.Seeds = []int64{1, 2, 3}
	}
	if len(o.Methods) == 0 {
		o.Methods = []core.Method{
			{Assigner: core.Seq, Collab: core.BDC},
			{Assigner: core.Seq, Collab: core.RBDC},
			{Assigner: core.Seq, Collab: core.DC},
			{Assigner: core.Seq, Collab: core.WoC},
		}
	}
	if o.OptBudget == 0 {
		o.OptBudget = 200 * time.Millisecond
	}
}

// SeqMethods returns the four sequential-assigner methods.
func SeqMethods() []core.Method {
	return []core.Method{
		{Assigner: core.Seq, Collab: core.BDC},
		{Assigner: core.Seq, Collab: core.RBDC},
		{Assigner: core.Seq, Collab: core.DC},
		{Assigner: core.Seq, Collab: core.WoC},
	}
}

// AllMethods returns all eight paper methods.
func AllMethods() []core.Method { return core.Methods() }

// Cell aggregates one (method, sweep value) cell over seeds.
type Cell struct {
	Assigned   stats.Summary
	Unfairness stats.Summary
	CPUSeconds stats.Summary
}

// Result is a completed experiment.
type Result struct {
	Experiment Experiment
	Methods    []core.Method
	Seeds      []int64
	// Cells[methodName][sweepIndex]
	Cells map[string][]Cell
}

// Run executes the sweep. With opt.Parallel > 1 the (sweep value, seed)
// cells run concurrently; results are aggregated in a fixed order so output
// is identical either way.
func Run(e Experiment, opt Options) (*Result, error) {
	opt.fill()
	res := &Result{
		Experiment: e,
		Methods:    opt.Methods,
		Seeds:      opt.Seeds,
		Cells:      make(map[string][]Cell),
	}
	for _, m := range opt.Methods {
		res.Cells[m.String()] = make([]Cell, len(e.SweepValues))
	}

	// One work unit per (sweep value, seed); outputs indexed by position so
	// aggregation order is deterministic regardless of completion order.
	type cellOut struct {
		assigned, unfair, cpu float64
	}
	nv, ns, nm := len(e.SweepValues), len(opt.Seeds), len(opt.Methods)
	outs := make([]cellOut, nv*ns*nm)
	errs := make([]error, nv*ns)

	runCell := func(vi, si int) {
		v, seed := e.SweepValues[vi], opt.Seeds[si]
		p := workload.Defaults(e.Dataset)
		p.Seed = seed
		e.Apply(&p, v)
		raw, err := workload.Generate(p)
		if err != nil {
			errs[vi*ns+si] = fmt.Errorf("experiments: generating %s %s=%v: %w", e.ID, e.SweepName, v, err)
			return
		}
		in, _, err := core.Partition(raw)
		if err != nil {
			errs[vi*ns+si] = fmt.Errorf("experiments: partitioning %s: %w", e.ID, err)
			return
		}
		for mi, m := range opt.Methods {
			rep, err := core.Run(in, core.Config{Method: m, Seed: seed, OptBudget: opt.OptBudget})
			if err != nil {
				errs[vi*ns+si] = fmt.Errorf("experiments: running %s %v: %w", e.ID, m, err)
				return
			}
			outs[(vi*ns+si)*nm+mi] = cellOut{
				assigned: float64(rep.Assigned),
				unfair:   rep.Unfairness,
				cpu:      (rep.Phase1Time + rep.Phase2Time).Seconds(),
			}
			if opt.Progress != nil {
				opt.Progress(fmt.Sprintf("%s %s=%g seed=%d %s: assigned=%d U=%.3f t=%s",
					e.ID, e.SweepName, v, seed, m, rep.Assigned, rep.Unfairness,
					rep.Phase1Time+rep.Phase2Time))
			}
		}
	}

	if opt.Parallel > 1 {
		sem := make(chan struct{}, opt.Parallel)
		var wg sync.WaitGroup
		for vi := 0; vi < nv; vi++ {
			for si := 0; si < ns; si++ {
				wg.Add(1)
				sem <- struct{}{}
				go func(vi, si int) {
					defer wg.Done()
					defer func() { <-sem }()
					runCell(vi, si)
				}(vi, si)
			}
		}
		wg.Wait()
	} else {
		for vi := 0; vi < nv; vi++ {
			for si := 0; si < ns; si++ {
				runCell(vi, si)
			}
		}
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	for vi := 0; vi < nv; vi++ {
		for mi, m := range opt.Methods {
			var as, us, cs []float64
			for si := 0; si < ns; si++ {
				o := outs[(vi*ns+si)*nm+mi]
				as = append(as, o.assigned)
				us = append(us, o.unfair)
				cs = append(cs, o.cpu)
			}
			res.Cells[m.String()][vi] = Cell{
				Assigned:   stats.Summarize(as),
				Unfairness: stats.Summarize(us),
				CPUSeconds: stats.Summarize(cs),
			}
		}
	}
	return res, nil
}

// methodNames returns the result's method names in run order.
func (r *Result) methodNames() []string {
	out := make([]string, len(r.Methods))
	for i, m := range r.Methods {
		out[i] = m.String()
	}
	return out
}

// Table renders the three metric tables (assigned, unfairness, CPU) in the
// row/series layout of the paper's figures.
func (r *Result) Table() string {
	var b strings.Builder
	e := r.Experiment
	fmt.Fprintf(&b, "%s — %s (%s, seeds=%v)\n", e.Figure, e.Title, e.Dataset, r.Seeds)
	metricTable(&b, r, "(a) number of assigned tasks", func(c Cell) float64 { return c.Assigned.Mean })
	metricTable(&b, r, "(b) collaboration unfairness U_rho", func(c Cell) float64 { return c.Unfairness.Mean })
	metricTable(&b, r, "(c) CPU time (seconds)", func(c Cell) float64 { return c.CPUSeconds.Mean })
	return b.String()
}

func metricTable(b *strings.Builder, r *Result, title string, pick func(Cell) float64) {
	e := r.Experiment
	fmt.Fprintf(b, "\n  %s\n", title)
	fmt.Fprintf(b, "  %-10s", e.SweepName+" =")
	for _, v := range e.SweepValues {
		fmt.Fprintf(b, " %10g", v)
	}
	fmt.Fprintln(b)
	for _, name := range r.methodNames() {
		fmt.Fprintf(b, "  %-10s", name)
		for _, c := range r.Cells[name] {
			v := pick(c)
			if strings.Contains(title, "CPU") {
				fmt.Fprintf(b, " %10.4g", v)
			} else {
				fmt.Fprintf(b, " %10.3f", v)
			}
		}
		fmt.Fprintln(b)
	}
}

// Plots renders the three ASCII charts for the experiment.
func (r *Result) Plots() string {
	var b strings.Builder
	ticks := make([]string, len(r.Experiment.SweepValues))
	for i, v := range r.Experiment.SweepValues {
		ticks[i] = fmt.Sprintf("%g", v)
	}
	for _, m := range []struct {
		title string
		pick  func(Cell) float64
	}{
		{"assigned tasks", func(c Cell) float64 { return c.Assigned.Mean }},
		{"unfairness U_rho", func(c Cell) float64 { return c.Unfairness.Mean }},
		{"CPU seconds", func(c Cell) float64 { return c.CPUSeconds.Mean }},
	} {
		ch := textplot.Chart{
			Title:  fmt.Sprintf("%s — %s: %s", r.Experiment.Figure, r.Experiment.Title, m.title),
			XLabel: r.Experiment.SweepName,
			YLabel: m.title,
			XTicks: ticks,
		}
		for _, name := range r.methodNames() {
			vals := make([]float64, len(r.Cells[name]))
			for i, c := range r.Cells[name] {
				vals[i] = m.pick(c)
			}
			ch.Series = append(ch.Series, textplot.Series{Name: name, Values: vals})
		}
		b.WriteString(ch.Render())
		b.WriteString("\n")
	}
	return b.String()
}

// ConvergencePoint is one game iteration of the Fig. 11 trace.
type ConvergencePoint struct {
	Iteration  int
	Assigned   int
	Unfairness float64
	// Phi is the game potential Φ = Σρ_i after the iteration (for iteration
	// 0, after phase 1) — the monotone witness of convergence.
	Phi float64
}

// ConvergenceResult is the Fig. 11 reproduction for one dataset.
type ConvergenceResult struct {
	Dataset workload.Dataset
	Seed    int64
	Points  []ConvergencePoint
}

// Convergence reproduces Fig. 11: the per-iteration assigned count,
// unfairness and potential Φ of the Seq-BDC game at |C| = 50 (paper
// setting), other parameters at defaults.
func Convergence(d workload.Dataset, seed int64) (*ConvergenceResult, error) {
	return ConvergenceObserved(d, seed, nil)
}

// ConvergenceObserved is Convergence with a telemetry observer attached to
// the run (nil disables it) — the hook behind imtao-bench -trace.
func ConvergenceObserved(d workload.Dataset, seed int64, o obs.Observer) (*ConvergenceResult, error) {
	p := workload.Defaults(d)
	p.NumCenters = 50
	p.Seed = seed
	raw, err := workload.Generate(p)
	if err != nil {
		return nil, err
	}
	in, _, err := core.Partition(raw)
	if err != nil {
		return nil, err
	}
	rep, err := core.Run(in, core.Config{
		Method:   core.Method{Assigner: core.Seq, Collab: core.BDC},
		Observer: o,
	})
	if err != nil {
		return nil, err
	}
	res := &ConvergenceResult{Dataset: d, Seed: seed}
	res.Points = append(res.Points, ConvergencePoint{
		Iteration: 0, Assigned: rep.Phase1Assigned, Unfairness: rep.Phase1Unfairness,
		Phi: metrics.Phi(rep.Phase1Ratios),
	})
	for _, step := range rep.Trace {
		if step.Accepted {
			res.Points = append(res.Points, ConvergencePoint{
				Iteration: step.Iteration, Assigned: step.Assigned,
				Unfairness: step.Unfairness, Phi: step.Phi,
			})
		}
	}
	return res, nil
}

// Render renders the convergence trace as a table plus chart.
func (c *ConvergenceResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 11 — Convergence of Seq-BDC on %s (|C|=50, seed=%d)\n", c.Dataset, c.Seed)
	fmt.Fprintf(&b, "  %-10s %-10s %-10s %-10s\n", "iteration", "assigned", "U_rho", "phi")
	for _, p := range c.Points {
		fmt.Fprintf(&b, "  %-10d %-10d %-10.4f %-10.4f\n", p.Iteration, p.Assigned, p.Unfairness, p.Phi)
	}
	assigned := make([]float64, len(c.Points))
	unfair := make([]float64, len(c.Points))
	phi := make([]float64, len(c.Points))
	ticks := make([]string, len(c.Points))
	for i, p := range c.Points {
		assigned[i] = float64(p.Assigned)
		unfair[i] = p.Unfairness
		phi[i] = p.Phi
		ticks[i] = fmt.Sprintf("%d", p.Iteration)
	}
	b.WriteString(textplot.Chart{
		Title: "assigned tasks per accepted game iteration", XTicks: sparseTicks(ticks),
		Series: []textplot.Series{{Name: "assigned", Values: assigned}},
	}.Render())
	b.WriteString(textplot.Chart{
		Title: "unfairness per accepted game iteration", XTicks: sparseTicks(ticks),
		Series: []textplot.Series{{Name: "U_rho", Values: unfair}},
	}.Render())
	b.WriteString(textplot.Chart{
		Title: "potential Phi per accepted game iteration", XTicks: sparseTicks(ticks),
		Series: []textplot.Series{{Name: "Phi", Values: phi}},
	}.Render())
	return b.String()
}

func sparseTicks(ticks []string) []string {
	if len(ticks) <= 8 {
		return ticks
	}
	out := make([]string, len(ticks))
	step := (len(ticks) + 7) / 8
	for i := range ticks {
		if i%step == 0 || i == len(ticks)-1 {
			out[i] = ticks[i]
		}
	}
	return out
}

// TableI renders the experiment-parameter table of the paper.
func TableI() string {
	var b strings.Builder
	b.WriteString("Table I — Experiment Parameters (defaults marked *)\n")
	rows := []struct{ name, gm, syn string }{
		{"Number of tasks |S|", "*400, 500, 600, 700, 800", "*400, 500, 600, 700, 800"},
		{"Number of workers |W|", "80, 90, *100, 110, 120", "*100, 125, 150, 175, 200"},
		{"Number of centers |C|", "*20, 30, 40, 50, 60", "*20, 30, 40, 50, 60"},
		{"Expiration time e (h)", "*1.00, 1.25, 1.50, 1.75, 2.00", "*1.00, 1.25, 1.50, 1.75, 2.00"},
		{"Worker capacity maxT", "4", "4"},
		{"Task reward s.r", "1", "1"},
	}
	fmt.Fprintf(&b, "  %-24s %-32s %-32s\n", "Parameter", "GM", "SYN")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-24s %-32s %-32s\n", r.name, r.gm, r.syn)
	}
	return b.String()
}

// CPUSplit summarises the CPU-time magnitude gap the paper highlights
// (Seq methods in milliseconds, Opt methods in the thousands of seconds):
// it returns the mean CPU seconds of the Seq and Opt method groups.
func (r *Result) CPUSplit() (seqMean, optMean float64, haveOpt bool) {
	var seqVals, optVals []float64
	for _, m := range r.Methods {
		for _, c := range r.Cells[m.String()] {
			if m.Assigner == core.Opt {
				optVals = append(optVals, c.CPUSeconds.Mean)
			} else {
				seqVals = append(seqVals, c.CPUSeconds.Mean)
			}
		}
	}
	return stats.Summarize(seqVals).Mean, stats.Summarize(optVals).Mean, len(optVals) > 0
}

// BestMethodByAssigned returns, per sweep point, the method achieving the
// highest mean assigned count — a convenience for shape assertions in tests
// and EXPERIMENTS.md generation.
func (r *Result) BestMethodByAssigned() []string {
	out := make([]string, len(r.Experiment.SweepValues))
	names := r.methodNames()
	sort.Strings(names)
	for vi := range r.Experiment.SweepValues {
		best, bestV := "", -1.0
		for _, name := range names {
			if v := r.Cells[name][vi].Assigned.Mean; v > bestV {
				best, bestV = name, v
			}
		}
		out[vi] = best
	}
	return out
}
