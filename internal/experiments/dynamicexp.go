package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"imtao/internal/core"
	"imtao/internal/dynamic"
	"imtao/internal/stats"
	"imtao/internal/workload"
)

// The dynamic-arrival experiment (extension of paper §V-E): sweep the batch
// interval and measure the completion-rate / latency trade-off of batched
// IMTAO under a rush-hour arrival stream, with and without collaboration.

// DynamicRow aggregates one (interval, method) cell.
type DynamicRow struct {
	IntervalHours float64
	Method        core.Method
	Completion    stats.Summary // fraction of arrived tasks delivered
	MeanLatency   stats.Summary // hours from arrival to delivery
	Expired       stats.Summary
}

// DynamicResult is a completed dynamic sweep.
type DynamicResult struct {
	Dataset   workload.Dataset
	Seeds     []int64
	Intervals []float64
	Rows      []DynamicRow
}

// RunDynamicSweep executes the batch-interval sweep: a 4-hour rush-hour day
// with ~3 tasks per worker overall, batch intervals from 5 to 60 minutes,
// comparing Seq-BDC against Seq-w/o-C.
func RunDynamicSweep(d workload.Dataset, seeds []int64) (*DynamicResult, error) {
	if len(seeds) == 0 {
		seeds = []int64{1, 2, 3}
	}
	intervals := []float64{1.0 / 12, 0.25, 0.5, 1.0} // 5, 15, 30, 60 minutes
	methods := []core.Method{
		{Assigner: core.Seq, Collab: core.BDC},
		{Assigner: core.Seq, Collab: core.WoC},
	}
	res := &DynamicResult{Dataset: d, Seeds: seeds, Intervals: intervals}

	for _, interval := range intervals {
		for _, m := range methods {
			var comp, lat, exp []float64
			for _, seed := range seeds {
				p := workload.Defaults(d)
				p.NumTasks = 0 // arrivals replace the static task list
				p.NumCenters = 10
				p.NumWorkers = 50
				p.Seed = seed
				base, err := workload.Generate(p)
				if err != nil {
					return nil, err
				}
				attached, _, err := core.Partition(base)
				if err != nil {
					return nil, err
				}
				rng := rand.New(rand.NewSource(seed))
				arrivals := dynamic.RushHourArrivals(rng,
					40, 120, 1.5, 0.6, 4.0, // base 40/h, peak +120/h at t=1.5h
					0.75, 1, // 45-minute promise
					dynamic.UniformSampler(rng, attached.Bounds))
				out, err := dynamic.Simulate(attached, arrivals, dynamic.Config{
					BatchInterval: interval, Method: m, Seed: seed,
				})
				if err != nil {
					return nil, err
				}
				comp = append(comp, out.CompletionRate())
				lat = append(lat, out.MeanLatency())
				exp = append(exp, float64(out.TotalExpired))
			}
			res.Rows = append(res.Rows, DynamicRow{
				IntervalHours: interval,
				Method:        m,
				Completion:    stats.Summarize(comp),
				MeanLatency:   stats.Summarize(lat),
				Expired:       stats.Summarize(exp),
			})
		}
	}
	return res, nil
}

// Table renders the dynamic sweep.
func (r *DynamicResult) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Dynamic batching sweep (%s, rush-hour arrivals, seeds=%v)\n", r.Dataset, r.Seeds)
	fmt.Fprintf(&b, "  %-12s %-10s %12s %16s %10s\n",
		"batch (min)", "method", "completion", "latency (min)", "expired")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-12.0f %-10s %11.1f%% %16.1f %10.1f\n",
			row.IntervalHours*60, row.Method, 100*row.Completion.Mean,
			60*row.MeanLatency.Mean, row.Expired.Mean)
	}
	return b.String()
}
