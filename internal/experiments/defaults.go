package experiments

import (
	"fmt"
	"strings"
	"time"

	"imtao/internal/core"
	"imtao/internal/stats"
	"imtao/internal/workload"
)

// DefaultsComparison runs every requested method at the Table I default
// parameter setting — the headline comparison quoted in README.md and
// EXPERIMENTS.md.
type DefaultsComparison struct {
	Dataset workload.Dataset
	Seeds   []int64
	Rows    []DefaultsRow
}

// DefaultsRow is one method's aggregate at the default setting.
type DefaultsRow struct {
	Method         core.Method
	Assigned       stats.Summary
	Unfairness     stats.Summary
	CPUSeconds     stats.Summary
	Transfers      stats.Summary
	GameIterations stats.Summary
	// RawAssigned and RawUnfairness hold the per-seed observations in seed
	// order, enabling paired significance tests between methods.
	RawAssigned   []float64
	RawUnfairness []float64
}

// RunDefaults executes the defaults comparison.
func RunDefaults(d workload.Dataset, methods []core.Method, seeds []int64, optBudget time.Duration) (*DefaultsComparison, error) {
	if len(seeds) == 0 {
		seeds = []int64{1, 2, 3}
	}
	if len(methods) == 0 {
		methods = SeqMethods()
	}
	if optBudget == 0 {
		optBudget = 200 * time.Millisecond
	}
	res := &DefaultsComparison{Dataset: d, Seeds: seeds}
	type agg struct{ a, u, c, tr, it []float64 }
	aggs := make([]agg, len(methods))
	for _, seed := range seeds {
		p := workload.Defaults(d)
		p.Seed = seed
		raw, err := workload.Generate(p)
		if err != nil {
			return nil, err
		}
		in, _, err := core.Partition(raw)
		if err != nil {
			return nil, err
		}
		for mi, m := range methods {
			rep, err := core.Run(in, core.Config{Method: m, Seed: seed, OptBudget: optBudget})
			if err != nil {
				return nil, err
			}
			aggs[mi].a = append(aggs[mi].a, float64(rep.Assigned))
			aggs[mi].u = append(aggs[mi].u, rep.Unfairness)
			aggs[mi].c = append(aggs[mi].c, (rep.Phase1Time + rep.Phase2Time).Seconds())
			aggs[mi].tr = append(aggs[mi].tr, float64(rep.Transfers))
			aggs[mi].it = append(aggs[mi].it, float64(rep.Iterations))
		}
	}
	for mi, m := range methods {
		res.Rows = append(res.Rows, DefaultsRow{
			Method:         m,
			Assigned:       stats.Summarize(aggs[mi].a),
			Unfairness:     stats.Summarize(aggs[mi].u),
			CPUSeconds:     stats.Summarize(aggs[mi].c),
			Transfers:      stats.Summarize(aggs[mi].tr),
			GameIterations: stats.Summarize(aggs[mi].it),
			RawAssigned:    aggs[mi].a,
			RawUnfairness:  aggs[mi].u,
		})
	}
	return res, nil
}

// Significance runs a paired t-test on the per-seed assigned counts of two
// methods (a − b). The runs share instances per seed, so pairing is exact.
func (d *DefaultsComparison) Significance(a, b core.Method) (tStat, pValue float64, err error) {
	var ra, rb []float64
	for _, row := range d.Rows {
		if row.Method == a {
			ra = row.RawAssigned
		}
		if row.Method == b {
			rb = row.RawAssigned
		}
	}
	if ra == nil || rb == nil {
		return 0, 0, fmt.Errorf("experiments: methods %v / %v not in the comparison", a, b)
	}
	return stats.PairedT(ra, rb)
}

// Table renders the comparison.
func (d *DefaultsComparison) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Default-setting comparison (%s, Table I defaults, seeds=%v)\n", d.Dataset, d.Seeds)
	fmt.Fprintf(&b, "  %-10s %10s %10s %11s %10s %10s\n",
		"method", "assigned", "U_rho", "cpu (s)", "transfers", "game-iters")
	for _, r := range d.Rows {
		fmt.Fprintf(&b, "  %-10s %10.1f %10.3f %11.5f %10.1f %10.1f\n",
			r.Method, r.Assigned.Mean, r.Unfairness.Mean, r.CPUSeconds.Mean,
			r.Transfers.Mean, r.GameIterations.Mean)
	}
	return b.String()
}
