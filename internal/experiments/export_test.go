package experiments

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"

	"imtao/internal/workload"
)

func TestResultWriteCSV(t *testing.T) {
	e := smallExperiment("fig3")
	res, err := Run(e, Options{Seeds: []int64{1}})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	// header + methods × sweep values × 3 metrics.
	want := 1 + len(res.Methods)*len(e.SweepValues)*3
	if len(rows) != want {
		t.Fatalf("rows = %d, want %d", len(rows), want)
	}
	if strings.Join(rows[0], ",") != "experiment,dataset,sweep,value,method,metric,mean,std,n" {
		t.Fatalf("header = %v", rows[0])
	}
	seenMetrics := map[string]bool{}
	for _, r := range rows[1:] {
		if len(r) != 9 {
			t.Fatalf("row width = %d", len(r))
		}
		seenMetrics[r[5]] = true
	}
	for _, m := range []string{"assigned", "unfairness", "cpu_seconds"} {
		if !seenMetrics[m] {
			t.Errorf("metric %s missing", m)
		}
	}
}

func TestConvergenceWriteCSV(t *testing.T) {
	res, err := Convergence(workload.SYN, 1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(res.Points)+1 {
		t.Fatalf("rows = %d, want %d", len(rows), len(res.Points)+1)
	}
}

func TestAblationWriteCSV(t *testing.T) {
	res, err := RunAblation("index", workload.SYN, []int64{1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1+len(res.Rows)*3 {
		t.Fatalf("rows = %d", len(rows))
	}
}
