package provenance

import (
	"fmt"
	"hash/fnv"

	"imtao/internal/assign"
	"imtao/internal/metrics"
	"imtao/internal/model"
)

// rhoEps mirrors collab's strict-improvement epsilon: a deviation counts as
// improving only when it raises ρ by more than this.
const rhoEps = 1e-12

// Witness is one center's best-response evidence: the candidate sweep the
// equilibrium claim rests on, compressed to counters, the best deviation
// found, and a hash of every (candidate, trial outcome) pair so a checker
// can confirm it reproduced the exact same sweep.
type Witness struct {
	Center     model.CenterID
	TaskCount  int
	Assigned   int
	Rho        float64
	Slack      float64 // admission slack used to prune the pool
	Candidates int     // pool candidates examined (pruned included)
	Pruned     int     // cut by the admission radius without a trial
	BestRho    float64 // best deviation ratio over evaluated candidates
	BestWorker model.WorkerID
	Hash       uint64 // FNV-1a over the sweep, see witnessHash
}

// Certificate is a machine-checkable equilibrium certificate: per-center
// best-response witnesses over the final solution, the solution fingerprint
// they are bound to, and the resulting verdict. Built by the run (from
// VerifyEquilibrium's sweep semantics) for the Sequential assigner;
// Certificate.Verify re-validates it offline from (instance, solution)
// without re-running the phase-2 game.
//
// Fully-loaded centers (ρ ≥ 1) carry no witness: no deviation can improve
// them, exactly as VerifyEquilibrium skips them.
type Certificate struct {
	Scope       string // the run's phase-2 scope (Meta.Scope)
	SolutionFP  uint64
	Phi         float64 // potential Σρ over all centers
	Eps         float64 // the strict-improvement epsilon (rhoEps)
	Equilibrium bool    // no witness found an improving deviation
	Centers     []Witness
}

// BuildCertificate computes the certificate of a solution under the
// Sequential assigner — the same sweep VerifyEquilibrium performs, with the
// same exact accelerations (admission-slack pruning, prefix-resume trials),
// recorded as witnesses instead of just a verdict. It never fails: a
// non-equilibrium solution (e.g. an iteration-capped run) yields a valid
// certificate with Equilibrium=false and the improving witness in evidence.
//
// scope selects the deviation class probed: ScopeFull re-assigns a center's
// full task set per candidate (the BDC/RBDC game's move), ScopeLeftover
// hands the candidate only the center's unassigned tasks (DC's move — prior
// routes stay frozen, exactly as in the game).
func BuildCertificate(in *model.Instance, sol *model.Solution, scope string) *Certificate {
	in.PrepareMetric()
	cert := &Certificate{
		Scope:       scope,
		SolutionFP:  SolutionFingerprint(sol),
		Eps:         rhoEps,
		Equilibrium: true,
	}

	used := make(map[model.WorkerID]bool)
	borrowed := make(map[model.WorkerID]bool)
	borrowedBy := make(map[model.CenterID][]model.WorkerID)
	lentFrom := make(map[model.CenterID]map[model.WorkerID]bool)
	for ci := range sol.PerCenter {
		for _, r := range sol.PerCenter[ci].Routes {
			used[r.Worker] = true
		}
	}
	for _, tr := range sol.Transfers {
		borrowed[tr.Worker] = true
		borrowedBy[tr.Dst] = append(borrowedBy[tr.Dst], tr.Worker)
		if lentFrom[tr.Src] == nil {
			lentFrom[tr.Src] = make(map[model.WorkerID]bool)
		}
		lentFrom[tr.Src][tr.Worker] = true
	}
	var pool []model.WorkerID
	for _, w := range in.Workers {
		if !used[w.ID] && !borrowed[w.ID] {
			pool = append(pool, w.ID)
		}
	}

	for ci := range in.Centers {
		center := in.Center(model.CenterID(ci))
		assigned := sol.PerCenter[ci].AssignedCount()
		rho := metrics.Ratio(assigned, len(center.Tasks))
		cert.Phi += rho
		if rho >= 1 {
			continue
		}
		var workers []model.WorkerID
		for _, w := range center.Workers {
			if !lentFrom[model.CenterID(ci)][w] {
				workers = append(workers, w)
			}
		}
		workers = append(workers, borrowedBy[model.CenterID(ci)]...)

		var leftTasks []model.TaskID
		if scope == ScopeLeftover {
			served := make(map[model.TaskID]bool, assigned)
			for _, r := range sol.PerCenter[ci].Routes {
				for _, t := range r.Tasks {
					served[t] = true
				}
			}
			for _, t := range center.Tasks {
				if !served[t] {
					leftTasks = append(leftTasks, t)
				}
			}
		}

		wit := sweepCenter(in, center, workers, pool, leftTasks, assigned, rho)
		if wit.BestRho > rho+rhoEps {
			cert.Equilibrium = false
		}
		cert.Centers = append(cert.Centers, wit)
	}
	return cert
}

// sweepCenter runs one center's best-response candidate sweep and condenses
// it into a witness. workers is the center's current worker set (own minus
// lent, plus borrowed); pool is the globally available candidates. A
// non-nil leftTasks switches to the DC deviation class: the candidate alone
// serves the leftover tasks, prior routes frozen.
func sweepCenter(in *model.Instance, center *model.Center, workers, pool []model.WorkerID,
	leftTasks []model.TaskID, assigned int, rho float64) Witness {

	wit := Witness{
		Center: center.ID, TaskCount: len(center.Tasks), Assigned: assigned,
		Rho: rho, BestRho: rho, BestWorker: model.WorkerID(-1),
	}
	leftover := leftTasks != nil
	if leftover {
		wit.Slack = assign.AdmissionSlack(in, center, leftTasks)
	} else {
		wit.Slack = assign.AdmissionSlack(in, center, center.Tasks)
	}

	h := fnv.New64a()
	var b [8]byte
	word := func(vs ...int64) {
		for _, v := range vs {
			for i := range b {
				b[i] = byte(v >> (8 * i))
			}
			h.Write(b[:])
		}
	}

	var runner *assign.TrialRunner
	for _, cand := range pool {
		if in.Worker(cand).Home == center.ID {
			continue
		}
		wit.Candidates++
		if !assign.WorkerAdmissible(in, center, cand, wit.Slack) {
			wit.Pruned++
			word(int64(cand), -1)
			continue
		}
		var n int
		if leftover {
			trial := assign.Sequential(in, center, []model.WorkerID{cand}, leftTasks)
			n = assigned + trial.AssignedCount()
		} else {
			var trial assign.Result
			if runner == nil {
				baseline := assign.Sequential(in, center, workers, center.Tasks)
				if base, ok := assign.NewTrialBase(in, center, workers, baseline.Routes, baseline.LeftTasks); ok {
					runner = base.NewRunner()
					defer runner.Release()
				}
			}
			if runner != nil {
				trial = runner.Trial(cand)
			} else {
				trial = assign.Sequential(in, center,
					append(append([]model.WorkerID(nil), workers...), cand), center.Tasks)
			}
			n = trial.AssignedCount()
		}
		word(int64(cand), int64(n))
		if newRho := metrics.Ratio(n, len(center.Tasks)); newRho > wit.BestRho+rhoEps {
			wit.BestRho = newRho
			wit.BestWorker = cand
		}
	}
	wit.Hash = h.Sum64()
	return wit
}

// Verify re-validates a certificate offline against the instance and
// solution it claims to certify: the fingerprint must bind, every witness
// sweep must reproduce byte-for-byte (same candidates, same prune cuts,
// same trial outcomes — compared by hash), and the equilibrium verdict must
// follow from the witnesses. It re-runs only per-center candidate trials —
// never the phase-2 game itself. A nil error means the certificate is
// sound.
func (c *Certificate) Verify(in *model.Instance, sol *model.Solution) error {
	if fp := SolutionFingerprint(sol); fp != c.SolutionFP {
		return fmt.Errorf("provenance: certificate binds solution %016x, got %016x", c.SolutionFP, fp)
	}
	fresh := BuildCertificate(in, sol, c.Scope)
	if len(fresh.Centers) != len(c.Centers) {
		return fmt.Errorf("provenance: certificate lists %d witnesses, recomputation yields %d",
			len(c.Centers), len(fresh.Centers))
	}
	for i := range fresh.Centers {
		got, want := &fresh.Centers[i], &c.Centers[i]
		if got.Center != want.Center {
			return fmt.Errorf("provenance: witness %d is for center %d, recomputation visits center %d",
				i, want.Center, got.Center)
		}
		if got.Hash != want.Hash {
			return fmt.Errorf("provenance: center %d witness hash %016x, recomputation %016x — sweep diverged",
				want.Center, want.Hash, got.Hash)
		}
		if got.Candidates != want.Candidates || got.Pruned != want.Pruned {
			return fmt.Errorf("provenance: center %d sweep shape (%d cands, %d pruned) vs recomputed (%d, %d)",
				want.Center, want.Candidates, want.Pruned, got.Candidates, got.Pruned)
		}
		if got.BestRho != want.BestRho || got.BestWorker != want.BestWorker {
			return fmt.Errorf("provenance: center %d best deviation (ρ=%v via worker %d) vs recomputed (ρ=%v via %d)",
				want.Center, want.BestRho, want.BestWorker, got.BestRho, got.BestWorker)
		}
	}
	if fresh.Equilibrium != c.Equilibrium {
		return fmt.Errorf("provenance: certificate claims equilibrium=%v, witnesses say %v",
			c.Equilibrium, fresh.Equilibrium)
	}
	return nil
}
