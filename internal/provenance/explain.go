package provenance

import (
	"fmt"

	"imtao/internal/model"
)

// Explain queries: ledger → attribution. Each query replays the ledger once
// and walks the serialized step stream, so answers reflect the exact order
// the engines executed (or its proven-equivalent merge).

// TaskEvent is one phase-2 custody change of a task: an accepted step whose
// route delta picked the task up or dropped it.
type TaskEvent struct {
	StepIndex int // position in the serialized step stream
	Stage     string
	Shard     int
	Iter      int
	Worker    model.WorkerID // the worker gaining or losing the task
	Gained    bool           // false: the reassignment dropped it
}

// TaskFinal is the task's final placement with its cost context.
type TaskFinal struct {
	Worker model.WorkerID
	Center model.CenterID
	Pos    int     // 0-based position on the route
	Arrive float64 // arrival time, hours from dispatch
	Expiry float64
}

// TaskStory is the full recorded lifecycle of one task.
type TaskStory struct {
	Task   model.TaskID
	Center model.CenterID // owning center; -1 when the task is not in the ledger
	// Phase 1: the greedy pass's verdict.
	Phase1Worker model.WorkerID // -1: left unassigned by phase 1
	Phase1Pos    int
	Rejections   []ScanEvent // deadline scans that passed over this task
	// Phase 2: custody changes in serialized step order.
	Events []TaskEvent
	Final  *TaskFinal // nil: unassigned at the end of the run
}

// WhyTask reconstructs one task's lifecycle: who owned it after the
// partition, what phase 1 did with it, every phase-2 reassignment that
// changed its custody, and where (whether) it ended up.
func WhyTask(l *Ledger, task model.TaskID) (*TaskStory, error) {
	st := &TaskStory{Task: task, Center: -1, Phase1Worker: -1}
	for i := range l.Phase1 {
		p := &l.Phase1[i]
		for _, rt := range p.Routes {
			for pos, t := range rt.Tasks {
				if t == task {
					st.Center, st.Phase1Worker, st.Phase1Pos = p.Center, rt.Worker, pos
				}
			}
		}
		if st.Center < 0 {
			for _, t := range p.LeftTasks {
				if t == task {
					st.Center = p.Center
				}
			}
		}
		if st.Center >= 0 {
			break
		}
	}
	if st.Center < 0 {
		return nil, fmt.Errorf("provenance: task %d not recorded in any center's phase-1 section", task)
	}
	for _, e := range l.Scans[st.Center] {
		if e.Task == task {
			st.Rejections = append(st.Rejections, e)
		}
	}

	rr, err := Replay(l)
	if err != nil {
		return nil, err
	}
	// Tasks never change centers — only steps reassigning the owning center
	// can move this task between workers.
	cur := st.Phase1Worker
	for si, s := range rr.Steps {
		it := s.Iter
		if !it.Accepted || it.Recipient != st.Center {
			continue
		}
		var after model.WorkerID = -1
		inDelta := false
		for _, rt := range s.Log.RouteDelta(it) {
			for _, t := range rt.Tasks {
				if t == task {
					after, inDelta = rt.Worker, true
				}
			}
		}
		if !it.Replace && !inDelta {
			continue // append-only delta without the task: custody unchanged
		}
		if after == cur {
			continue
		}
		if cur >= 0 && after < 0 {
			st.Events = append(st.Events, TaskEvent{StepIndex: si, Stage: s.Log.Stage,
				Shard: s.Log.Shard, Iter: it.Iter, Worker: cur, Gained: false})
		} else if after >= 0 {
			st.Events = append(st.Events, TaskEvent{StepIndex: si, Stage: s.Log.Stage,
				Shard: s.Log.Shard, Iter: it.Iter, Worker: after, Gained: true})
		}
		cur = after
	}

	if l.Final != nil {
		for i := range l.Final.Routes {
			rt := &l.Final.Routes[i]
			for pos, t := range rt.Tasks {
				if t == task {
					st.Final = &TaskFinal{Worker: rt.Worker, Center: rt.Center,
						Pos: pos, Arrive: rt.Arrive[pos], Expiry: rt.Expiry[pos]}
				}
			}
		}
	}
	return st, nil
}

// WorkerTrial is one step at which a worker was evaluated as a transfer
// candidate.
type WorkerTrial struct {
	StepIndex int
	Stage     string
	Shard     int
	Iter      int
	Recipient model.CenterID
	Assigned  int32 // tasks the trial would serve
	Mode      uint8 // TrialMemo / TrialFull / TrialResumed
	Chosen    bool  // this step accepted this worker
}

// PruneEvent is one step at which a pool worker was cut by the admission
// radius without a trial.
type PruneEvent struct {
	StepIndex int
	Stage     string
	Shard     int
	Iter      int
	Recipient model.CenterID
	Slack     float64
}

// WorkerStory is the full recorded lifecycle of one worker.
type WorkerStory struct {
	Worker model.WorkerID
	Home   model.CenterID // -1 when the worker is not in the ledger
	// Phase 1.
	Phase1Tasks []model.TaskID // nil: leftover (entered the phase-2 pool)
	Pool        bool
	// Phase 2.
	Trials       []WorkerTrial
	Pruned       []PruneEvent
	Transfer     *model.Transfer // the accepted dispatch, if any
	TransferStep int             // step index of the dispatch; -1 otherwise
	// Final.
	FinalCenter model.CenterID // -1: unused at the end
	FinalTasks  []model.TaskID
}

// WhyNotWorker reconstructs one worker's lifecycle — in particular why an
// idle worker was never dispatched: it served its home center in phase 1 (and
// so never entered the pool), or it was admission-pruned at distance, or its
// trials never improved any recipient enough.
func WhyNotWorker(l *Ledger, worker model.WorkerID) (*WorkerStory, error) {
	st := &WorkerStory{Worker: worker, Home: -1, TransferStep: -1, FinalCenter: -1}
	for i := range l.Phase1 {
		p := &l.Phase1[i]
		for _, rt := range p.Routes {
			if rt.Worker == worker {
				st.Home = p.Center
				st.Phase1Tasks = rt.Tasks
			}
		}
		for _, w := range p.LeftWorkers {
			if w == worker {
				st.Home = p.Center
				st.Pool = true
			}
		}
	}
	if st.Home < 0 {
		return nil, fmt.Errorf("provenance: worker %d not recorded in any center's phase-1 section", worker)
	}

	rr, err := Replay(l)
	if err != nil {
		return nil, err
	}
	inPool := st.Pool
	for si, s := range rr.Steps {
		it := s.Iter
		tried := false
		for _, tr := range s.Log.Trials(it) {
			if tr.Worker == worker {
				tried = true
				st.Trials = append(st.Trials, WorkerTrial{StepIndex: si,
					Stage: s.Log.Stage, Shard: s.Log.Shard, Iter: it.Iter,
					Recipient: it.Recipient, Assigned: tr.Assigned, Mode: tr.Mode,
					Chosen: it.Accepted && it.Worker == worker})
			}
		}
		// A pool worker absent from a step's trials while the admission
		// radius cut candidates was (with overwhelming likelihood) one of the
		// cuts — the ledger records the count and slack, not the identities.
		if inPool && !tried && it.Pruned > 0 && it.Slack >= 0 {
			st.Pruned = append(st.Pruned, PruneEvent{StepIndex: si,
				Stage: s.Log.Stage, Shard: s.Log.Shard, Iter: it.Iter,
				Recipient: it.Recipient, Slack: it.Slack})
		}
		if it.Accepted && it.Worker == worker {
			st.Transfer = &model.Transfer{Src: it.Source, Dst: it.Recipient, Worker: worker}
			st.TransferStep = si
			inPool = false
		}
	}

	if l.Final != nil {
		for i := range l.Final.Routes {
			rt := &l.Final.Routes[i]
			if rt.Worker == worker {
				st.FinalCenter = rt.Center
				st.FinalTasks = rt.Tasks
			}
		}
	}
	return st, nil
}

// ChainStep is one phase-2 step touching a center — an incoming dispatch
// offer (accepted or rejected) or an outgoing loss of a pool worker.
type ChainStep struct {
	StepIndex  int
	Stage      string
	Shard      int
	Iter       int
	Accepted   bool
	Worker     model.WorkerID
	Source     model.CenterID
	Recipient  model.CenterID
	RhoBefore  float64
	RhoAfter   float64
	Phi        float64
	Candidates int // trials evaluated at this step
	PrunedN    int
}

// CenterChain is one center's phase-2 history with its start and end state.
type CenterChain struct {
	Center        model.CenterID
	Phase1        *CenterPhase1 // nil if the ledger lacks the section
	Steps         []ChainStep   // steps with this center as recipient or source
	Witness       *Witness      // this center's certificate witness, if any
	FinalAssigned int
	FinalRho      float64
}

// TransferChain reconstructs one center's phase-2 history: every step that
// offered it a worker (with the Δρ/ΔΦ evidence) and every accepted dispatch
// that pulled a worker from its pool, in serialized order.
func TransferChain(l *Ledger, center model.CenterID) (*CenterChain, error) {
	if int(center) < 0 || int(center) >= l.Meta.Centers {
		return nil, fmt.Errorf("provenance: center %d out of range (%d centers)", center, l.Meta.Centers)
	}
	ch := &CenterChain{Center: center}
	for i := range l.Phase1 {
		if l.Phase1[i].Center == center {
			ch.Phase1 = &l.Phase1[i]
		}
	}
	rr, err := Replay(l)
	if err != nil {
		return nil, err
	}
	for si, s := range rr.Steps {
		it := s.Iter
		if it.Recipient != center && !(it.Accepted && it.Source == center) {
			continue
		}
		ch.Steps = append(ch.Steps, ChainStep{StepIndex: si, Stage: s.Log.Stage,
			Shard: s.Log.Shard, Iter: it.Iter, Accepted: it.Accepted,
			Worker: it.Worker, Source: it.Source, Recipient: it.Recipient,
			RhoBefore: it.RhoBefore, RhoAfter: it.RhoAfter, Phi: it.Phi,
			Candidates: it.TrialN, PrunedN: it.Pruned})
	}
	if l.Cert != nil {
		for i := range l.Cert.Centers {
			if l.Cert.Centers[i].Center == center {
				ch.Witness = &l.Cert.Centers[i]
			}
		}
	}
	for i := range rr.Solution.PerCenter[center].Routes {
		ch.FinalAssigned += len(rr.Solution.PerCenter[center].Routes[i].Tasks)
	}
	if ch.Phase1 != nil && ch.Phase1.Tasks > 0 {
		ch.FinalRho = float64(ch.FinalAssigned) / float64(ch.Phase1.Tasks)
		if ch.FinalRho > 1 {
			ch.FinalRho = 1
		}
	}
	return ch, nil
}

// TaskMove is one task whose final worker differs between two ledgers.
type TaskMove struct {
	Task             model.TaskID
	WorkerA, WorkerB model.WorkerID // -1: unassigned in that ledger
}

// LedgerDiff is the comparison of two runs' ledgers.
type LedgerDiff struct {
	MetaDiffs []string // human-readable "field: a vs b" lines
	// Step-stream comparison (serialized order).
	StepsA, StepsB     int
	FirstDivergence    int    // index of the first differing step; -1: streams agree
	DivergeA, DivergeB string // the differing steps, rendered; "" at equal length
	// Final-state comparison.
	FingerprintEqual bool
	OnlyA, OnlyB     []model.TaskID // tasks assigned in exactly one run
	Moved            []TaskMove     // assigned in both, to different workers
}

// DiffLedgers compares two ledgers: run metadata, the serialized step streams
// (finding the first step where the runs diverged), and the final
// assignments (tasks gained, lost or moved between the runs).
func DiffLedgers(a, b *Ledger) (*LedgerDiff, error) {
	d := &LedgerDiff{FirstDivergence: -1}
	diffMeta := func(field, va, vb string) {
		if va != vb {
			d.MetaDiffs = append(d.MetaDiffs, fmt.Sprintf("%s: %s vs %s", field, va, vb))
		}
	}
	diffMeta("method", a.Meta.Method, b.Meta.Method)
	diffMeta("engine", a.Meta.Engine, b.Meta.Engine)
	diffMeta("scope", a.Meta.Scope, b.Meta.Scope)
	diffMeta("centers", fmt.Sprint(a.Meta.Centers), fmt.Sprint(b.Meta.Centers))
	diffMeta("workers", fmt.Sprint(a.Meta.Workers), fmt.Sprint(b.Meta.Workers))
	diffMeta("tasks", fmt.Sprint(a.Meta.Tasks), fmt.Sprint(b.Meta.Tasks))
	diffMeta("seed", fmt.Sprint(a.Meta.Seed), fmt.Sprint(b.Meta.Seed))

	ra, err := Replay(a)
	if err != nil {
		return nil, fmt.Errorf("ledger A: %w", err)
	}
	rb, err := Replay(b)
	if err != nil {
		return nil, fmt.Errorf("ledger B: %w", err)
	}
	d.StepsA, d.StepsB = len(ra.Steps), len(rb.Steps)
	renderStep := func(s StepRef) string {
		it := s.Iter
		verdict := "reject"
		if it.Accepted {
			verdict = fmt.Sprintf("accept w%d %d→%d", it.Worker, it.Source, it.Recipient)
		}
		return fmt.Sprintf("%s[%d] iter %d: center %d ρ=%.4f %s",
			s.Log.Stage, s.Log.Shard, it.Iter, it.Recipient, it.RhoBefore, verdict)
	}
	n := d.StepsA
	if d.StepsB < n {
		n = d.StepsB
	}
	for i := 0; i < n; i++ {
		ia, ib := ra.Steps[i].Iter, rb.Steps[i].Iter
		if ia.Recipient != ib.Recipient || ia.Accepted != ib.Accepted ||
			ia.Worker != ib.Worker || ia.Source != ib.Source ||
			ia.RhoBefore != ib.RhoBefore {
			d.FirstDivergence = i
			d.DivergeA, d.DivergeB = renderStep(ra.Steps[i]), renderStep(rb.Steps[i])
			break
		}
	}
	if d.FirstDivergence < 0 && d.StepsA != d.StepsB {
		d.FirstDivergence = n
		if d.StepsA > n {
			d.DivergeA = renderStep(ra.Steps[n])
		}
		if d.StepsB > n {
			d.DivergeB = renderStep(rb.Steps[n])
		}
	}

	d.FingerprintEqual = SolutionFingerprint(ra.Solution) == SolutionFingerprint(rb.Solution)
	workerOf := func(sol *model.Solution) map[model.TaskID]model.WorkerID {
		m := make(map[model.TaskID]model.WorkerID)
		for ci := range sol.PerCenter {
			for _, rt := range sol.PerCenter[ci].Routes {
				for _, t := range rt.Tasks {
					m[t] = rt.Worker
				}
			}
		}
		return m
	}
	wa, wb := workerOf(ra.Solution), workerOf(rb.Solution)
	maxT := a.Meta.Tasks
	if b.Meta.Tasks > maxT {
		maxT = b.Meta.Tasks
	}
	for t := 0; t < maxT; t++ {
		tid := model.TaskID(t)
		va, oka := wa[tid]
		vb, okb := wb[tid]
		switch {
		case oka && !okb:
			d.OnlyA = append(d.OnlyA, tid)
		case okb && !oka:
			d.OnlyB = append(d.OnlyB, tid)
		case oka && okb && va != vb:
			d.Moved = append(d.Moved, TaskMove{Task: tid, WorkerA: va, WorkerB: vb})
		}
	}
	return d, nil
}
