package provenance

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"imtao/internal/model"
	"imtao/internal/obs"
)

// JSONL serialization of a Ledger. WriteTo streams the ledger through the
// internal/obs JSONL encoder as prov_* record types — every line carries the
// stream-wide seq/t_ms/schema_version envelope — and ReadLedger parses the
// stream back into an equivalent Ledger, rejecting records written under a
// different schema version. Record types, in emission order:
//
//	prov_meta      run metadata (one)
//	prov_phase1    one center's phase-1 summary (per center, center order)
//	prov_p1route   one phase-1 route (grouped after its prov_phase1)
//	prov_scan      one phase-1 deadline-rejection scan event
//	prov_log       game-log header (shards ascending, then exchange
//	               components ascending — the order Replay depends on)
//	prov_iter      one game iteration, trials and route delta inlined
//	prov_shard     sharded-engine partition summary (at most one)
//	prov_final     final outcome incl. transfer log (one)
//	prov_route     one final route with its cost breakdown
//	prov_cert      equilibrium certificate header (at most one)
//	prov_witness   one center's best-response witness
//
// Unknown events (e.g. a run trace sharing the stream) are skipped, so a
// ledger can be read back out of a combined observability file.

// Wire shapes for the nested payloads. Flat record fields reuse the ledger
// structs' JSON tags directly.
type trialWire struct {
	W model.WorkerID `json:"w"`
	N int32          `json:"n"`
	M uint8          `json:"m"`
}

type routeWire struct {
	W model.WorkerID `json:"w"`
	T []model.TaskID `json:"t"`
}

type transferWire struct {
	Src model.CenterID `json:"src"`
	Dst model.CenterID `json:"dst"`
	W   model.WorkerID `json:"w"`
}

// WriteTo streams the ledger as schema-versioned JSONL. It implements
// io.WriterTo; the byte count is the total written.
func (l *Ledger) WriteTo(w io.Writer) (int64, error) {
	cw := &countWriter{w: w}
	j := obs.NewJSONL(cw)

	j.Event("prov_meta",
		obs.F("method", l.Meta.Method), obs.F("engine", l.Meta.Engine),
		obs.F("scope", l.Meta.Scope), obs.F("centers", l.Meta.Centers),
		obs.F("workers", l.Meta.Workers), obs.F("tasks", l.Meta.Tasks),
		obs.F("seed", l.Meta.Seed))

	for i := range l.Phase1 {
		p := &l.Phase1[i]
		j.Event("prov_phase1",
			obs.F("center", p.Center), obs.F("tasks", p.Tasks),
			obs.F("assigned", p.Assigned), obs.F("rho", p.Rho),
			obs.F("left_workers", p.LeftWorkers), obs.F("left_tasks", p.LeftTasks))
		for _, rt := range p.Routes {
			j.Event("prov_p1route",
				obs.F("center", p.Center), obs.F("w", rt.Worker), obs.F("t", rt.Tasks))
		}
	}
	for ci, evs := range l.Scans {
		for _, e := range evs {
			j.Event("prov_scan",
				obs.F("center", ci), obs.F("w", e.Worker), obs.F("task", e.Task),
				obs.F("arrive", e.Arrive), obs.F("expiry", e.Expiry))
		}
	}

	for _, g := range l.Logs {
		j.Event("prov_log",
			obs.F("stage", g.Stage), obs.F("shard", g.Shard), obs.F("iters", len(g.Iters)))
		for i := range g.Iters {
			it := &g.Iters[i]
			trials := make([]trialWire, it.TrialN)
			for k, tr := range g.Trials(it) {
				trials[k] = trialWire{W: tr.Worker, N: tr.Assigned, M: tr.Mode}
			}
			routes := make([]routeWire, it.RouteN)
			for k, rt := range g.RouteDelta(it) {
				routes[k] = routeWire{W: rt.Worker, T: rt.Tasks}
			}
			j.Event("prov_iter",
				obs.F("iter", it.Iter), obs.F("recipient", it.Recipient),
				obs.F("accepted", it.Accepted), obs.F("w", it.Worker),
				obs.F("source", it.Source), obs.F("rho_before", it.RhoBefore),
				obs.F("rho_after", it.RhoAfter), obs.F("phi", it.Phi),
				obs.F("pruned", it.Pruned), obs.F("slack", it.Slack),
				obs.F("memo_hits", it.MemoHits), obs.F("replace", it.Replace),
				obs.F("trials", trials), obs.F("routes", routes))
		}
	}

	if s := l.Shard; s != nil {
		j.Event("prov_shard",
			obs.F("shards", s.Shards), obs.F("shard_of", s.ShardOf),
			obs.F("boundary_workers", s.BoundaryWorkers),
			obs.F("exclusive_workers", s.ExclusiveWorkers),
			obs.F("empty_cut", s.EmptyCut), obs.F("components", s.Components),
			obs.F("exchange_iters", s.ExchangeIters),
			obs.F("exchange_transfers", s.ExchangeTransfers))
	}

	if f := l.Final; f != nil {
		transfers := make([]transferWire, len(f.Transfers))
		for i, tr := range f.Transfers {
			transfers[i] = transferWire{Src: tr.Src, Dst: tr.Dst, W: tr.Worker}
		}
		j.Event("prov_final",
			obs.F("assigned", f.Assigned), obs.F("unfairness", f.Unfairness),
			obs.F("fingerprint", f.Fingerprint), obs.F("transfers", transfers))
		for i := range f.Routes {
			rt := &f.Routes[i]
			j.Event("prov_route",
				obs.F("w", rt.Worker), obs.F("center", rt.Center),
				obs.F("t", rt.Tasks), obs.F("arrive", rt.Arrive),
				obs.F("expiry", rt.Expiry), obs.F("hours", rt.Hours))
		}
	}

	if c := l.Cert; c != nil {
		j.Event("prov_cert",
			obs.F("scope", c.Scope), obs.F("fingerprint", c.SolutionFP),
			obs.F("phi", c.Phi), obs.F("eps", c.Eps),
			obs.F("equilibrium", c.Equilibrium), obs.F("witnesses", len(c.Centers)))
		for i := range c.Centers {
			wt := &c.Centers[i]
			j.Event("prov_witness",
				obs.F("center", wt.Center), obs.F("task_count", wt.TaskCount),
				obs.F("assigned", wt.Assigned), obs.F("rho", wt.Rho),
				obs.F("slack", wt.Slack), obs.F("candidates", wt.Candidates),
				obs.F("pruned", wt.Pruned), obs.F("best_rho", wt.BestRho),
				obs.F("best_worker", wt.BestWorker), obs.F("hash", wt.Hash))
		}
	}
	return cw.n, j.Err()
}

type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// ReadLedger parses a JSONL stream written by WriteTo back into a Ledger.
// Every prov_* record must carry the current obs.SchemaVersion — a stream
// written by a different schema is rejected on its first provenance record
// rather than misparsed. Events of other types are skipped.
func ReadLedger(r io.Reader) (*Ledger, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<26)
	l := NewLedger()
	var cur *GameLog
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var probe struct {
			Schema *int   `json:"schema_version"`
			Event  string `json:"event"`
		}
		if err := json.Unmarshal(raw, &probe); err != nil {
			return nil, fmt.Errorf("provenance: line %d: %w", line, err)
		}
		if len(probe.Event) < 5 || probe.Event[:5] != "prov_" {
			continue
		}
		// The historical unversioned stream is schema version 1.
		v := 1
		if probe.Schema != nil {
			v = *probe.Schema
		}
		if err := obs.CheckSchemaVersion(v); err != nil {
			return nil, fmt.Errorf("provenance: line %d: %w", line, err)
		}
		if err := l.readRecord(probe.Event, raw, &cur); err != nil {
			return nil, fmt.Errorf("provenance: line %d (%s): %w", line, probe.Event, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("provenance: %w", err)
	}
	return l, nil
}

// readRecord dispatches one provenance record into the ledger. cur tracks
// the game log open for prov_iter records.
func (l *Ledger) readRecord(event string, raw []byte, cur **GameLog) error {
	switch event {
	case "prov_meta":
		var m struct {
			Method  string `json:"method"`
			Engine  string `json:"engine"`
			Scope   string `json:"scope"`
			Centers int    `json:"centers"`
			Workers int    `json:"workers"`
			Tasks   int    `json:"tasks"`
			Seed    int64  `json:"seed"`
		}
		if err := json.Unmarshal(raw, &m); err != nil {
			return err
		}
		l.Start(Meta{Method: m.Method, Engine: m.Engine, Scope: m.Scope,
			Centers: m.Centers, Workers: m.Workers, Tasks: m.Tasks, Seed: m.Seed})

	case "prov_phase1":
		var p struct {
			Center      model.CenterID   `json:"center"`
			Tasks       int              `json:"tasks"`
			Assigned    int              `json:"assigned"`
			Rho         float64          `json:"rho"`
			LeftWorkers []model.WorkerID `json:"left_workers"`
			LeftTasks   []model.TaskID   `json:"left_tasks"`
		}
		if err := json.Unmarshal(raw, &p); err != nil {
			return err
		}
		if int(p.Center) != len(l.Phase1) {
			return fmt.Errorf("phase-1 record for center %d arrived out of order (have %d)",
				p.Center, len(l.Phase1))
		}
		l.Phase1 = append(l.Phase1, CenterPhase1{
			Center: p.Center, Tasks: p.Tasks, Assigned: p.Assigned, Rho: p.Rho,
			LeftWorkers: p.LeftWorkers, LeftTasks: p.LeftTasks})

	case "prov_p1route":
		var p struct {
			Center model.CenterID `json:"center"`
			W      model.WorkerID `json:"w"`
			T      []model.TaskID `json:"t"`
		}
		if err := json.Unmarshal(raw, &p); err != nil {
			return err
		}
		if int(p.Center) >= len(l.Phase1) {
			return fmt.Errorf("route for center %d precedes its phase-1 record", p.Center)
		}
		cp := &l.Phase1[p.Center]
		cp.Routes = append(cp.Routes, RecordedRoute{Worker: p.W, Tasks: p.T})

	case "prov_scan":
		var s struct {
			Center int            `json:"center"`
			W      model.WorkerID `json:"w"`
			Task   model.TaskID   `json:"task"`
			Arrive float64        `json:"arrive"`
			Expiry float64        `json:"expiry"`
		}
		if err := json.Unmarshal(raw, &s); err != nil {
			return err
		}
		if s.Center < 0 || s.Center >= len(l.Scans) {
			return fmt.Errorf("scan event for unknown center %d", s.Center)
		}
		l.Scans[s.Center] = append(l.Scans[s.Center],
			ScanEvent{Worker: s.W, Task: s.Task, Arrive: s.Arrive, Expiry: s.Expiry})

	case "prov_log":
		var g struct {
			Stage string `json:"stage"`
			Shard int    `json:"shard"`
		}
		if err := json.Unmarshal(raw, &g); err != nil {
			return err
		}
		*cur = l.NewGameLog(g.Stage, g.Shard)

	case "prov_iter":
		if *cur == nil {
			return fmt.Errorf("iteration record precedes any prov_log header")
		}
		var it struct {
			Iter      int            `json:"iter"`
			Recipient model.CenterID `json:"recipient"`
			Accepted  bool           `json:"accepted"`
			W         model.WorkerID `json:"w"`
			Source    model.CenterID `json:"source"`
			RhoBefore float64        `json:"rho_before"`
			RhoAfter  float64        `json:"rho_after"`
			Phi       float64        `json:"phi"`
			Pruned    int            `json:"pruned"`
			Slack     float64        `json:"slack"`
			MemoHits  int            `json:"memo_hits"`
			Replace   bool           `json:"replace"`
			Trials    []trialWire    `json:"trials"`
			Routes    []routeWire    `json:"routes"`
		}
		if err := json.Unmarshal(raw, &it); err != nil {
			return err
		}
		g := *cur
		rec := IterRec{
			Iter: it.Iter, Recipient: it.Recipient, Accepted: it.Accepted,
			Worker: it.W, Source: it.Source,
			RhoBefore: it.RhoBefore, RhoAfter: it.RhoAfter, Phi: it.Phi,
			Pruned: it.Pruned, Slack: it.Slack, MemoHits: it.MemoHits,
			TrialOff: len(g.trials), TrialN: len(it.Trials),
			RouteOff: len(g.routes), RouteN: len(it.Routes), Replace: it.Replace,
		}
		for _, tr := range it.Trials {
			g.trials = append(g.trials, TrialRec{Worker: tr.W, Assigned: tr.N, Mode: tr.M})
		}
		for _, rt := range it.Routes {
			g.routes = append(g.routes, RecordedRoute{
				Worker: rt.W, Tasks: g.taskArb.Copy(rt.T)})
		}
		g.Iters = append(g.Iters, rec)

	case "prov_shard":
		var s struct {
			Shards            int   `json:"shards"`
			ShardOf           []int `json:"shard_of"`
			BoundaryWorkers   int   `json:"boundary_workers"`
			ExclusiveWorkers  int   `json:"exclusive_workers"`
			EmptyCut          bool  `json:"empty_cut"`
			Components        int   `json:"components"`
			ExchangeIters     int   `json:"exchange_iters"`
			ExchangeTransfers int   `json:"exchange_transfers"`
		}
		if err := json.Unmarshal(raw, &s); err != nil {
			return err
		}
		l.Shard = &ShardInfo{Shards: s.Shards, ShardOf: s.ShardOf,
			BoundaryWorkers: s.BoundaryWorkers, ExclusiveWorkers: s.ExclusiveWorkers,
			EmptyCut: s.EmptyCut, Components: s.Components,
			ExchangeIters: s.ExchangeIters, ExchangeTransfers: s.ExchangeTransfers}

	case "prov_final":
		var f struct {
			Assigned    int            `json:"assigned"`
			Unfairness  float64        `json:"unfairness"`
			Fingerprint uint64         `json:"fingerprint"`
			Transfers   []transferWire `json:"transfers"`
		}
		if err := json.Unmarshal(raw, &f); err != nil {
			return err
		}
		fin := &Final{Assigned: f.Assigned, Unfairness: f.Unfairness,
			Fingerprint: f.Fingerprint,
			Transfers:   make([]model.Transfer, len(f.Transfers))}
		for i, tr := range f.Transfers {
			fin.Transfers[i] = model.Transfer{Src: tr.Src, Dst: tr.Dst, Worker: tr.W}
		}
		l.Final = fin

	case "prov_route":
		if l.Final == nil {
			return fmt.Errorf("final route precedes the prov_final record")
		}
		var rt struct {
			W      model.WorkerID `json:"w"`
			Center model.CenterID `json:"center"`
			T      []model.TaskID `json:"t"`
			Arrive []float64      `json:"arrive"`
			Expiry []float64      `json:"expiry"`
			Hours  float64        `json:"hours"`
		}
		if err := json.Unmarshal(raw, &rt); err != nil {
			return err
		}
		l.Final.Routes = append(l.Final.Routes, FinalRoute{
			Worker: rt.W, Center: rt.Center, Tasks: rt.T,
			Arrive: rt.Arrive, Expiry: rt.Expiry, Hours: rt.Hours})

	case "prov_cert":
		var c struct {
			Scope       string  `json:"scope"`
			Fingerprint uint64  `json:"fingerprint"`
			Phi         float64 `json:"phi"`
			Eps         float64 `json:"eps"`
			Equilibrium bool    `json:"equilibrium"`
		}
		if err := json.Unmarshal(raw, &c); err != nil {
			return err
		}
		l.Cert = &Certificate{Scope: c.Scope, SolutionFP: c.Fingerprint,
			Phi: c.Phi, Eps: c.Eps, Equilibrium: c.Equilibrium}

	case "prov_witness":
		if l.Cert == nil {
			return fmt.Errorf("witness precedes the prov_cert record")
		}
		var w struct {
			Center     model.CenterID `json:"center"`
			TaskCount  int            `json:"task_count"`
			Assigned   int            `json:"assigned"`
			Rho        float64        `json:"rho"`
			Slack      float64        `json:"slack"`
			Candidates int            `json:"candidates"`
			Pruned     int            `json:"pruned"`
			BestRho    float64        `json:"best_rho"`
			BestWorker model.WorkerID `json:"best_worker"`
			Hash       uint64         `json:"hash"`
		}
		if err := json.Unmarshal(raw, &w); err != nil {
			return err
		}
		l.Cert.Centers = append(l.Cert.Centers, Witness{
			Center: w.Center, TaskCount: w.TaskCount, Assigned: w.Assigned,
			Rho: w.Rho, Slack: w.Slack, Candidates: w.Candidates, Pruned: w.Pruned,
			BestRho: w.BestRho, BestWorker: w.BestWorker, Hash: w.Hash})

	default:
		// Forward compatibility within the same schema version: a prov_*
		// record type this build does not know is an error — the schema
		// version should have been bumped.
		return fmt.Errorf("unknown provenance record type")
	}
	return nil
}
