package provenance

import (
	"fmt"

	"imtao/internal/model"
)

// StepRef points at one iteration of one log, in globally serialized order.
type StepRef struct {
	Log  *GameLog
	Iter *IterRec
}

// ReplayResult is a deterministic reconstruction of the recorded run: the
// final solution rebuilt from the ledger alone, plus the global serialized
// step order the engines executed (or, for the sharded engine, the order
// the merge replay proves they are equivalent to) — the substrate of every
// explain query.
type ReplayResult struct {
	Solution *model.Solution
	Steps    []StepRef
}

// Replay reconstructs the run's exact final solution from the ledger — no
// instance, no assigner, no game. Phase-1 routes seed the state; the game
// logs then replay in the engine's global order:
//
//   - a single game log (unsharded engine) applies sequentially;
//   - multiple game logs with no exchange log (sharded, empty cut) merge by
//     the live min-(ρ, center ID) recipient rule — which the ledger
//     re-derives from each step's recorded RhoBefore, since every center's
//     steps live in exactly one log and its recorded ρ IS the live ρ at
//     that step (mergeIndependent's synthesized stranded rejects change no
//     state and are safely absent);
//   - game logs followed by exchange logs (sharded, non-empty cut) apply
//     the game logs sequentially in shard order — reproducing the
//     prior-transfer concatenation — then the exchange logs sequentially
//     (serialized reconcile) or by the same min-(ρ, id) merge
//     (component-parallel reconcile).
//
// The returned solution fingerprints identically to the live Report's
// (SolutionFingerprint) — the property the ledger's completeness is pinned
// against.
func Replay(l *Ledger) (*ReplayResult, error) {
	if l.Phase1 == nil {
		return nil, fmt.Errorf("provenance: ledger has no phase-1 section — cannot replay")
	}
	r := &replayer{
		sol: &model.Solution{PerCenter: make([]model.Assignment, l.Meta.Centers)},
	}
	for ci := range r.sol.PerCenter {
		r.sol.PerCenter[ci].Center = model.CenterID(ci)
	}
	for i := range l.Phase1 {
		p := &l.Phase1[i]
		if int(p.Center) >= len(r.sol.PerCenter) {
			return nil, fmt.Errorf("provenance: phase-1 center %d out of range (%d centers)", p.Center, l.Meta.Centers)
		}
		routes := make([]model.Route, len(p.Routes))
		for j, rt := range p.Routes {
			routes[j] = model.Route{Worker: rt.Worker, Center: p.Center,
				Tasks: append([]model.TaskID(nil), rt.Tasks...)}
		}
		r.sol.PerCenter[p.Center].Routes = routes
	}

	var gameLogs, exchLogs []*GameLog
	for _, g := range l.Logs {
		switch g.Stage {
		case StageGame:
			gameLogs = append(gameLogs, g)
		case StageExchange:
			exchLogs = append(exchLogs, g)
		default:
			return nil, fmt.Errorf("provenance: unknown log stage %q", g.Stage)
		}
	}

	switch {
	case len(gameLogs) == 0 && len(exchLogs) == 0:
		// w/o-C: phase 1 is final.
	case len(exchLogs) == 0 && len(gameLogs) == 1:
		r.applySeq(gameLogs[0])
	case len(exchLogs) == 0:
		// Empty interference cut: the shard games are the global game's
		// per-shard subsequences.
		r.applyMerged(gameLogs)
	default:
		// Non-empty cut: phase-A outcomes concatenate in shard order (the
		// prior-transfer log), then the exchange settles the boundary.
		for _, g := range gameLogs {
			r.applySeq(g)
		}
		if len(exchLogs) == 1 {
			r.applySeq(exchLogs[0])
		} else {
			r.applyMerged(exchLogs)
		}
	}
	if r.sol.AssignedCount() == 0 && l.Final != nil && l.Final.Assigned != 0 {
		return nil, fmt.Errorf("provenance: replay assigned 0 tasks, final section records %d", l.Final.Assigned)
	}
	return &ReplayResult{Solution: r.sol, Steps: r.steps}, nil
}

type replayer struct {
	sol   *model.Solution
	steps []StepRef
}

// applySeq replays one log's steps in recorded order.
func (r *replayer) applySeq(g *GameLog) {
	for i := range g.Iters {
		r.apply(g, &g.Iters[i])
	}
}

// applyMerged k-way merges several logs' steps by the live min-(ρ, center)
// recipient rule: among the log heads, the step whose recipient has the
// lowest ρ — its recorded RhoBefore — goes first, ties by center ID. Ties
// across logs cannot collide (each center's steps live in one log; within a
// log the head order is preserved by construction).
func (r *replayer) applyMerged(logs []*GameLog) {
	pos := make([]int, len(logs))
	for {
		best := -1
		var bestRho float64
		var bestR model.CenterID
		for k, g := range logs {
			if pos[k] >= len(g.Iters) {
				continue
			}
			h := &g.Iters[pos[k]]
			if best < 0 || h.RhoBefore < bestRho ||
				(h.RhoBefore == bestRho && h.Recipient < bestR) {
				best, bestRho, bestR = k, h.RhoBefore, h.Recipient
			}
		}
		if best < 0 {
			return
		}
		r.apply(logs[best], &logs[best].Iters[pos[best]])
		pos[best]++
	}
}

// apply executes one step against the replay state: accepted steps extend
// the transfer log and install the recipient's recorded route delta.
func (r *replayer) apply(g *GameLog, it *IterRec) {
	r.steps = append(r.steps, StepRef{Log: g, Iter: it})
	if !it.Accepted {
		return
	}
	r.sol.Transfers = append(r.sol.Transfers,
		model.Transfer{Src: it.Source, Dst: it.Recipient, Worker: it.Worker})
	delta := g.RouteDelta(it)
	pc := &r.sol.PerCenter[it.Recipient]
	if it.Replace {
		pc.Routes = pc.Routes[:0]
	}
	for _, rt := range delta {
		pc.Routes = append(pc.Routes, model.Route{Worker: rt.Worker,
			Center: it.Recipient, Tasks: append([]model.TaskID(nil), rt.Tasks...)})
	}
}
