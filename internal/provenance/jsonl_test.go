package provenance

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"imtao/internal/assign"
	"imtao/internal/model"
	"imtao/internal/obs"
)

// testLedger builds a small hand-rolled ledger exercising every record type.
func testLedger() *Ledger {
	l := NewLedger()
	l.Start(Meta{Method: "Seq-BDC", Engine: "sharded", Scope: ScopeFull,
		Centers: 2, Workers: 3, Tasks: 4, Seed: 42})
	l.Phase1 = []CenterPhase1{
		{Center: 0, Tasks: 3, Assigned: 2, Rho: 2.0 / 3,
			LeftWorkers: []model.WorkerID{2}, LeftTasks: []model.TaskID{3},
			Routes: []RecordedRoute{{Worker: 0, Tasks: []model.TaskID{0, 1}}}},
		{Center: 1, Tasks: 1, Assigned: 0, Rho: 0,
			Routes: nil},
	}
	l.Scans[0] = []ScanEvent{{Worker: 0, Task: 3, Arrive: 2.5, Expiry: 2.0}}
	g := l.NewGameLog(StageGame, 0)
	g.RecordIter(IterInfo{Iter: 1, Recipient: 1, Accepted: true, Worker: 2,
		Source: 0, RhoBefore: 0, RhoAfter: 1, Phi: 5.0 / 3, Pruned: 1, Slack: 1.5},
		[]model.WorkerID{2},
		[]assign.Result{{Routes: []model.Route{{Worker: 2, Center: 1, Tasks: []model.TaskID{3}}}}},
		[]int{0}, false,
		[]model.Route{{Worker: 2, Center: 1, Tasks: []model.TaskID{3}}}, true)
	l.RecordShard(ShardInfo{Shards: 2, ShardOf: []int{0, 1},
		BoundaryWorkers: 1, ExclusiveWorkers: 2, EmptyCut: false,
		Components: 1, ExchangeIters: 3, ExchangeTransfers: 1})
	l.Final = &Final{Assigned: 3, Unfairness: 0.25, Fingerprint: 0xdeadbeefcafef00d,
		Transfers: []model.Transfer{{Src: 0, Dst: 1, Worker: 2}},
		Routes: []FinalRoute{{Worker: 2, Center: 1, Tasks: []model.TaskID{3},
			Arrive: []float64{1.5}, Expiry: []float64{2}, Hours: 1.5}}}
	l.Cert = &Certificate{Scope: ScopeFull, SolutionFP: 0xdeadbeefcafef00d,
		Phi: 5.0 / 3, Eps: rhoEps, Equilibrium: true,
		Centers: []Witness{{Center: 0, TaskCount: 3, Assigned: 2, Rho: 2.0 / 3,
			Slack: 1.5, Candidates: 2, Pruned: 1, BestRho: 2.0 / 3,
			BestWorker: -1, Hash: 0x123456789abcdef0}}}
	return l
}

func TestJSONLRoundTrip(t *testing.T) {
	l := testLedger()
	var buf bytes.Buffer
	if _, err := l.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadLedger(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Meta != l.Meta {
		t.Errorf("meta %+v, want %+v", got.Meta, l.Meta)
	}
	if len(got.Phase1) != 2 || len(got.Phase1[0].Routes) != 1 ||
		got.Phase1[0].Routes[0].Worker != 0 || len(got.Phase1[0].Routes[0].Tasks) != 2 {
		t.Errorf("phase1 mismatch: %+v", got.Phase1)
	}
	if len(got.Scans[0]) != 1 || got.Scans[0][0] != l.Scans[0][0] {
		t.Errorf("scans mismatch: %+v", got.Scans)
	}
	if len(got.Logs) != 1 || got.Logs[0].Stage != StageGame || got.Logs[0].Shard != 0 ||
		len(got.Logs[0].Iters) != 1 {
		t.Fatalf("logs mismatch: %+v", got.Logs)
	}
	gi, wi := got.Logs[0].Iters[0], l.Logs[0].Iters[0]
	if gi != wi {
		t.Errorf("iter %+v, want %+v", gi, wi)
	}
	if got.Shard == nil {
		t.Fatal("shard section lost")
	}
	if got.Shard.Shards != 2 || got.Shard.ExchangeIters != 3 || len(got.Shard.ShardOf) != 2 {
		t.Errorf("shard mismatch: %+v", got.Shard)
	}
	if got.Final.Fingerprint != l.Final.Fingerprint || len(got.Final.Transfers) != 1 ||
		got.Final.Transfers[0] != l.Final.Transfers[0] || len(got.Final.Routes) != 1 ||
		got.Final.Routes[0].Hours != 1.5 {
		t.Errorf("final mismatch: %+v", got.Final)
	}
	if got.Cert == nil || got.Cert.SolutionFP != l.Cert.SolutionFP ||
		len(got.Cert.Centers) != 1 || got.Cert.Centers[0] != l.Cert.Centers[0] {
		t.Errorf("cert mismatch: %+v", got.Cert)
	}
}

// TestReadLedgerRejectsSchemaMismatch: satellite 2 — a reader built against
// this schema refuses both older stamped versions and the historical
// unversioned (v1) stream.
func TestReadLedgerRejectsSchemaMismatch(t *testing.T) {
	for name, line := range map[string]string{
		"older":       `{"seq":1,"t_ms":0.0,"schema_version":1,"event":"prov_meta","method":"Seq-BDC"}`,
		"newer":       fmt.Sprintf(`{"seq":1,"t_ms":0.0,"schema_version":%d,"event":"prov_meta","method":"Seq-BDC"}`, obs.SchemaVersion+1),
		"unversioned": `{"seq":1,"t_ms":0.0,"event":"prov_meta","method":"Seq-BDC"}`,
	} {
		if _, err := ReadLedger(strings.NewReader(line + "\n")); err == nil {
			t.Errorf("%s stream accepted, want schema rejection", name)
		} else if !strings.Contains(err.Error(), "schema_version") {
			t.Errorf("%s stream: error %q does not mention schema_version", name, err)
		}
	}
}

// TestReadLedgerSkipsForeignEvents: non-provenance events sharing the stream
// (a run trace, runtime samples) are ignored; unknown prov_* types are not.
func TestReadLedgerSkipsForeignEvents(t *testing.T) {
	stream := fmt.Sprintf(`{"seq":1,"t_ms":0.0,"schema_version":%[1]d,"event":"run_start","method":"Seq-BDC"}
{"seq":2,"t_ms":0.1,"schema_version":%[1]d,"event":"prov_meta","method":"Seq-BDC","engine":"game","scope":"full","centers":1,"workers":1,"tasks":1,"seed":9}
{"seq":3,"t_ms":0.2,"schema_version":%[1]d,"event":"game_iter","iter":1}
`, obs.SchemaVersion)
	l, err := ReadLedger(strings.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	if l.Meta.Seed != 9 || l.Meta.Centers != 1 {
		t.Errorf("meta not parsed around foreign events: %+v", l.Meta)
	}
	bad := fmt.Sprintf(`{"seq":1,"t_ms":0.0,"schema_version":%d,"event":"prov_wat"}`, obs.SchemaVersion)
	if _, err := ReadLedger(strings.NewReader(bad + "\n")); err == nil {
		t.Error("unknown prov_* record type accepted")
	}
}
