// Package provenance is the assignment decision ledger of DESIGN.md §17: a
// compact, machine-readable record of WHY every task ended up assigned,
// transferred or stranded. A Ledger captures the full lifecycle of one IMTAO
// run — phase-1 routes and deadline-rejection scan events, every phase-2
// best-response iteration (recipient choice, admission-radius pruning, trial
// outcomes with their memo/resume provenance, accepted and rejected
// dispatches with Δρ/ΔΦ), shard and boundary-exchange structure under the
// sharded engine, and the final routes with per-task arrival times — plus an
// equilibrium Certificate of per-center best-response witnesses that
// re-validates offline without re-running the game.
//
// The ledger is attached via imtao.WithProvenance and returned on
// Report.Provenance; Ledger.WriteTo streams it through the internal/obs
// JSONL encoder (schema-versioned prov_* record types) and ReadLedger parses
// it back, so cmd/imtao-explain can answer "why task T / why-not worker W /
// transfer chain for center C" from a file long after the run.
//
// Recording discipline: every hook on the engines' hot paths is a single
// nil-check when no ledger is attached (the AllocsPerRun gates in
// internal/collab pin the disabled path at zero allocations), and the
// enabled path appends fixed-size records into growing arenas — bounded,
// amortized-constant overhead per iteration (gated on the 100k game bench).
//
// Replay(l) deterministically reconstructs the run's exact final solution
// from the ledger alone — including the sharded engine's min-(ρ, center)
// merge interleave, re-derived from the per-step ρ values rather than
// recorded — which is both the property test anchoring the ledger's
// completeness (fingerprint match against the live Report) and the
// attribution engine behind the explain queries.
package provenance

import (
	"sync"

	"imtao/internal/assign"
	"imtao/internal/model"
	"imtao/internal/slab"
)

// Stage labels for GameLog.Stage.
const (
	// StageGame marks a phase-A (or unsharded) best-response game log.
	StageGame = "game"
	// StageExchange marks a boundary-reconcile exchange game log (one per
	// conflict component, or a single serialized one).
	StageExchange = "exchange"
)

// Scope labels for Meta.Scope and Certificate.Scope.
const (
	// ScopeFull: phase-2 deviations re-assign the recipient's full task set
	// (BDC/RBDC).
	ScopeFull = "full"
	// ScopeLeftover: deviations only serve leftover tasks (DC).
	ScopeLeftover = "leftover"
	// ScopeNone: no phase 2 at all (w/o-C).
	ScopeNone = "none"
)

// Trial evaluation modes recorded per candidate.
const (
	// TrialMemo: the trial came from the cross-iteration cache.
	TrialMemo = uint8(iota)
	// TrialFull: a complete assigner run.
	TrialFull
	// TrialResumed: served by the prefix-resume engine.
	TrialResumed
)

// Meta describes the run a ledger records.
type Meta struct {
	Method  string
	Engine  string // "game", "sharded" or "none" (w/o-C)
	Scope   string // "full" (BDC/RBDC), "leftover" (DC) or "none"
	Centers int
	Workers int
	Tasks   int
	Seed    int64
}

// RecordedRoute is one worker's route as recorded in the ledger — phase-1
// routes and per-iteration route deltas alike.
type RecordedRoute struct {
	Worker model.WorkerID
	Tasks  []model.TaskID
}

// CenterPhase1 is one center's phase-1 outcome: the game's starting state.
type CenterPhase1 struct {
	Center      model.CenterID
	Tasks       int // |S_c|
	Assigned    int
	Rho         float64
	LeftWorkers []model.WorkerID
	LeftTasks   []model.TaskID
	Routes      []RecordedRoute
}

// ScanEvent is one phase-1 deadline rejection: worker's greedy sequence at
// its center ended because the nearest remaining task would be reached after
// its expiry (paper Algorithm 2 line 11 — under uniform expiry the first
// failing nearest task ends the sequence).
type ScanEvent struct {
	Worker model.WorkerID
	Task   model.TaskID
	Arrive float64
	Expiry float64
}

// IterRec is one recorded game iteration. Trial and route-delta payloads
// live in the owning GameLog's arenas, indexed by the Off/N pairs.
type IterRec struct {
	Iter      int // stage-local, 1-based
	Recipient model.CenterID
	Accepted  bool
	Worker    model.WorkerID // dispatched worker (accepted only)
	Source    model.CenterID // its home center (accepted only)
	RhoBefore float64
	RhoAfter  float64
	Phi       float64 // stage-local potential after the step
	Pruned    int     // pool candidates cut by the admission radius
	Slack     float64 // admission slack that did the cutting; -1 = pruning off
	MemoHits  int
	// TrialOff/TrialN index the log's trial arena: one TrialRec per
	// considered candidate, in candidate (ascending worker ID) order.
	TrialOff, TrialN int
	// RouteOff/RouteN index the log's route arena: the recipient's new
	// routes after an accepted step. Replace true means the delta is the
	// recipient's complete new route set (FullReassign); false appends to
	// the existing set (DC's LeftoverOnly). Rejected steps carry no delta.
	RouteOff, RouteN int
	Replace          bool
}

// TrialRec is one candidate's evaluated (or cached) trial outcome.
type TrialRec struct {
	Worker   model.WorkerID
	Assigned int32 // tasks the trial assignment would serve
	Mode     uint8 // TrialMemo / TrialFull / TrialResumed
}

// GameLog records one best-response game: the unsharded engine's single
// game, one phase-A shard game, or one boundary-exchange (component) game.
// Logs are created in deterministic order (shards ascending, then exchange
// components ascending) — Replay relies on that order.
type GameLog struct {
	Stage string
	Shard int // shard / component index; -1 for a global game
	Iters []IterRec

	trials  []TrialRec
	routes  []RecordedRoute
	taskArb slab.Arena[model.TaskID]
}

// Trials returns the trial records of one iteration.
func (l *GameLog) Trials(it *IterRec) []TrialRec {
	return l.trials[it.TrialOff : it.TrialOff+it.TrialN]
}

// RouteDelta returns the recorded route delta of one accepted iteration.
func (l *GameLog) RouteDelta(it *IterRec) []RecordedRoute {
	return l.routes[it.RouteOff : it.RouteOff+it.RouteN]
}

// IterInfo is the per-iteration summary the game engine hands to
// RecordIter; it mirrors collab.TraceStep without importing it (collab
// imports this package).
type IterInfo struct {
	Iter      int
	Recipient model.CenterID
	Accepted  bool
	Worker    model.WorkerID
	Source    model.CenterID
	RhoBefore float64
	RhoAfter  float64
	Phi       float64
	Pruned    int
	Slack     float64 // pass -1 when pruning was off this iteration
}

// RecordIter appends one iteration to the log. trials[i] is the outcome for
// cands[i]; missIdx lists (ascending) the candidate indices that were
// evaluated fresh rather than served from the memo, and resumed tells
// whether fresh evaluations went through the prefix-resume engine.
// newRoutes is the recipient's accepted route delta (nil on rejects):
// its complete new route set when replace, the appended routes otherwise.
// The route tasks are deep-copied into the log's arena — callers may
// recycle them immediately.
func (l *GameLog) RecordIter(info IterInfo, cands []model.WorkerID,
	trials []assign.Result, missIdx []int, resumed bool,
	newRoutes []model.Route, replace bool) {

	rec := IterRec{
		Iter: info.Iter, Recipient: info.Recipient, Accepted: info.Accepted,
		Worker: info.Worker, Source: info.Source,
		RhoBefore: info.RhoBefore, RhoAfter: info.RhoAfter, Phi: info.Phi,
		Pruned: info.Pruned, Slack: info.Slack,
		MemoHits: len(cands) - len(missIdx),
		TrialOff: len(l.trials), TrialN: len(cands),
		RouteOff: len(l.routes), RouteN: len(newRoutes), Replace: replace,
	}
	freshMode := TrialFull
	if resumed {
		freshMode = TrialResumed
	}
	mi := 0
	for i, w := range cands {
		mode := TrialMemo
		if mi < len(missIdx) && missIdx[mi] == i {
			mode = freshMode
			mi++
		}
		l.trials = appendGrown(l.trials, TrialRec{
			Worker: w, Assigned: int32(trials[i].AssignedCount()), Mode: mode})
	}
	for _, rt := range newRoutes {
		l.routes = appendGrown(l.routes, RecordedRoute{
			Worker: rt.Worker, Tasks: l.taskArb.Copy(rt.Tasks)})
	}
	l.Iters = appendGrown(l.Iters, rec)
}

// ShardInfo describes the sharded engine's partition, mirroring the fields
// of collab.ShardReport the replay and explain paths need.
type ShardInfo struct {
	Shards            int
	ShardOf           []int
	BoundaryWorkers   int
	ExclusiveWorkers  int
	EmptyCut          bool
	Components        int
	ExchangeIters     int
	ExchangeTransfers int
}

// FinalRoute is one final route with its cost breakdown: per-task arrival
// times against expiries, and the route's total duration in hours.
type FinalRoute struct {
	Worker model.WorkerID
	Center model.CenterID
	Tasks  []model.TaskID
	Arrive []float64 // arrival time at each task, hours from dispatch
	Expiry []float64 // each task's expiry, hours
	Hours  float64   // total route duration (center leg included)
}

// Final is the run's outcome section.
type Final struct {
	Assigned    int
	Unfairness  float64
	Fingerprint uint64 // SolutionFingerprint of the final solution
	Transfers   []model.Transfer
	Routes      []FinalRoute
}

// Ledger is one run's full decision record. Create with NewLedger, attach
// via imtao.WithProvenance (core.Config.Prov), then query in memory or
// WriteTo/ReadLedger a JSONL file.
//
// Concurrency: phase-1 scan recorders write disjoint per-center slots and
// shard games write disjoint pre-created GameLogs, so recording needs no
// locking on the hot paths; NewGameLog itself is mutex-guarded.
type Ledger struct {
	mu sync.Mutex

	Meta   Meta
	Phase1 []CenterPhase1
	// Scans[c] holds center c's phase-1 deadline-rejection events
	// (Sequential assigner only; Optimal's search has no single rejection
	// point worth recording).
	Scans [][]ScanEvent
	// Logs in creation order: phase-A game logs in shard order, then
	// exchange logs in component order. An unsharded run has one StageGame
	// log with Shard -1; a w/o-C run has none.
	Logs  []*GameLog
	Shard *ShardInfo
	Final *Final
	Cert  *Certificate
}

// NewLedger returns an empty ledger ready to attach to a run.
func NewLedger() *Ledger { return &Ledger{} }

// Start records the run metadata and sizes the per-center sections.
func (l *Ledger) Start(m Meta) {
	l.Meta = m
	l.Scans = make([][]ScanEvent, m.Centers)
}

// NewGameLog creates, registers and returns the next game log. Call in
// deterministic order (see Ledger.Logs); safe for concurrent use, though
// the engines create logs before fanning out.
func (l *Ledger) NewGameLog(stage string, shard int) *GameLog {
	g := &GameLog{Stage: stage, Shard: shard}
	l.mu.Lock()
	l.Logs = append(l.Logs, g)
	l.mu.Unlock()
	return g
}

// ScanRecorder returns center ci's phase-1 scan observer (assign.Options
// Scan hook). Recorders for distinct centers may record concurrently.
func (l *Ledger) ScanRecorder(ci model.CenterID) assign.ScanObserver {
	return &scanRecorder{l: l, ci: ci}
}

type scanRecorder struct {
	l  *Ledger
	ci model.CenterID
}

func (s *scanRecorder) RejectDeadline(w model.WorkerID, t model.TaskID, arrive, expiry float64) {
	s.l.Scans[s.ci] = append(s.l.Scans[s.ci],
		ScanEvent{Worker: w, Task: t, Arrive: arrive, Expiry: expiry})
}

// RecordPhase1 captures the phase-1 per-center outcomes — the game's
// starting state and the replay's base layer. rhos is the per-center ratio
// vector (metrics.Ratios order).
func (l *Ledger) RecordPhase1(in *model.Instance, phase1 []assign.Result, rhos []float64) {
	l.Phase1 = make([]CenterPhase1, len(phase1))
	for ci := range phase1 {
		r := &phase1[ci]
		cp := CenterPhase1{
			Center:      model.CenterID(ci),
			Tasks:       len(in.Centers[ci].Tasks),
			Assigned:    r.AssignedCount(),
			Rho:         rhos[ci],
			LeftWorkers: append([]model.WorkerID(nil), r.LeftWorkers...),
			LeftTasks:   append([]model.TaskID(nil), r.LeftTasks...),
			Routes:      make([]RecordedRoute, len(r.Routes)),
		}
		for i := range r.Routes {
			cp.Routes[i] = RecordedRoute{
				Worker: r.Routes[i].Worker,
				Tasks:  append([]model.TaskID(nil), r.Routes[i].Tasks...),
			}
		}
		l.Phase1[ci] = cp
	}
}

// RecordShard captures the sharded engine's partition summary.
func (l *Ledger) RecordShard(s ShardInfo) { l.Shard = &s }

// RecordFinal captures the run's final solution: the transfer log, every
// route with its per-task arrival-time cost breakdown, and the solution
// fingerprint the replay property is pinned against.
func (l *Ledger) RecordFinal(in *model.Instance, sol *model.Solution, unfairness float64) {
	f := &Final{
		Assigned:    sol.AssignedCount(),
		Unfairness:  unfairness,
		Fingerprint: SolutionFingerprint(sol),
		Transfers:   append([]model.Transfer(nil), sol.Transfers...),
	}
	for ci := range sol.PerCenter {
		c := in.Center(model.CenterID(ci))
		cref := in.CenterRef(model.CenterID(ci))
		for _, rt := range sol.PerCenter[ci].Routes {
			fr := FinalRoute{
				Worker: rt.Worker,
				Center: model.CenterID(ci),
				Tasks:  append([]model.TaskID(nil), rt.Tasks...),
				Arrive: make([]float64, len(rt.Tasks)),
				Expiry: make([]float64, len(rt.Tasks)),
			}
			w := in.Worker(rt.Worker)
			t := in.TravelTimeRef(w.Loc, in.WorkerRef(rt.Worker), c.Loc, cref)
			cur, curRef := c.Loc, cref
			for i, tid := range rt.Tasks {
				task := in.Task(tid)
				tref := in.TaskRef(tid)
				t += in.TravelTimeRef(cur, curRef, task.Loc, tref)
				fr.Arrive[i] = t
				fr.Expiry[i] = task.Expiry
				cur, curRef = task.Loc, tref
			}
			fr.Hours = t
			f.Routes = append(f.Routes, fr)
		}
	}
	l.Final = f
}

// IterCount returns the total recorded iterations across all logs.
func (l *Ledger) IterCount() int {
	n := 0
	for _, g := range l.Logs {
		n += len(g.Iters)
	}
	return n
}

// TrialCount returns the total recorded trial records across all logs.
func (l *Ledger) TrialCount() int {
	n := 0
	for _, g := range l.Logs {
		n += len(g.trials)
	}
	return n
}

// appendGrown is append with geometric headroom floored well above the
// built-in small-slice growth — the logs grow by a few records per
// iteration for hundreds of iterations.
func appendGrown[T any](s []T, v T) []T {
	if len(s) == cap(s) {
		need := len(s) + 1
		c := 2 * cap(s)
		if c < need+need/4+16 {
			c = need + need/4 + 16
		}
		grown := make([]T, len(s), c)
		copy(grown, s)
		s = grown
	}
	return append(s, v)
}
