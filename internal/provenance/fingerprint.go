package provenance

import (
	"hash/fnv"

	"imtao/internal/model"
)

// SolutionFingerprint hashes every route and transfer of a solution, in
// order, into one FNV-1a value. It is the determinism anchor shared by the
// bench cross-checks, the ledger's Final record, and the Replay property:
// two solutions fingerprint equal iff they list the same routes with the
// same task orders and the same transfer log.
func SolutionFingerprint(s *model.Solution) uint64 {
	h := fnv.New64a()
	var b [8]byte
	word := func(vs ...int64) {
		for _, v := range vs {
			for i := range b {
				b[i] = byte(v >> (8 * i))
			}
			h.Write(b[:])
		}
	}
	for _, a := range s.PerCenter {
		word(int64(a.Center), int64(len(a.Routes)))
		for _, r := range a.Routes {
			word(int64(r.Worker), int64(r.Center), int64(len(r.Tasks)))
			for _, t := range r.Tasks {
				word(int64(t))
			}
		}
	}
	for _, t := range s.Transfers {
		word(int64(t.Src), int64(t.Dst), int64(t.Worker))
	}
	return h.Sum64()
}
