package routing

import (
	"math"
	"math/rand"
	"testing"

	"imtao/internal/geo"
	"imtao/internal/model"
)

// Held–Karp must agree exactly with brute force on every instance small
// enough to brute-force, including deadline-constrained ones.
func TestHeldKarpMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(131))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(7)
		xs := make([]float64, n)
		in := lineInstance(xs, 1)
		for i := range in.Tasks {
			in.Tasks[i].Loc = geo.Pt(rng.Float64()*30-15, rng.Float64()*30-15)
			in.Tasks[i].Expiry = 5 + rng.Float64()*40
		}
		in.Workers[0].MaxT = n
		w, c := in.Worker(0), in.Center(0)
		ids := make([]model.TaskID, n)
		for i := range ids {
			ids[i] = model.TaskID(i)
		}
		hk, hkOK := heldKarp(in, w, c, ids)
		brute, bruteOK := bruteBest(in, w, c, ids)
		if hkOK != bruteOK {
			t.Fatalf("trial %d: feasibility mismatch hk=%v brute=%v", trial, hkOK, bruteOK)
		}
		if !hkOK {
			continue
		}
		if !OrderFeasible(in, w, c, hk) {
			t.Fatalf("trial %d: held-karp returned infeasible order %v", trial, hk)
		}
		ht, bt := TravelTime(in, w, c, hk), TravelTime(in, w, c, brute)
		if math.Abs(ht-bt) > 1e-9 {
			t.Fatalf("trial %d: held-karp travel %v != optimal %v", trial, ht, bt)
		}
	}
}

func TestHeldKarpTightDeadlines(t *testing.T) {
	// Force a non-greedy order: the far task must be first.
	in := lineInstance([]float64{2, 0}, 100)
	in.Tasks[1].Loc = geo.Pt(0, 5)
	in.Tasks[1].Expiry = 5
	w, c := in.Worker(0), in.Center(0)
	got, ok := heldKarp(in, w, c, []model.TaskID{0, 1})
	if !ok {
		t.Fatal("a feasible order exists")
	}
	if got[0] != 1 || got[1] != 0 {
		t.Fatalf("order = %v, want [1 0]", got)
	}
}

func TestHeldKarpInfeasible(t *testing.T) {
	in := lineInstance([]float64{50}, 10)
	w, c := in.Worker(0), in.Center(0)
	if _, ok := heldKarp(in, w, c, []model.TaskID{0}); ok {
		t.Fatal("unreachable task accepted")
	}
}

func TestHeldKarpEmptyAndOversize(t *testing.T) {
	in := lineInstance([]float64{1}, 100)
	w, c := in.Worker(0), in.Center(0)
	if got, ok := heldKarp(in, w, c, nil); !ok || got != nil {
		t.Error("empty set must be trivially feasible")
	}
	big := make([]model.TaskID, HeldKarpLimit+1)
	if _, ok := heldKarp(in, w, c, big); ok {
		t.Error("oversize set must report !ok (delegates to heuristic elsewhere)")
	}
}

// BestOrder in the Held–Karp band (ExactLimit < n ≤ HeldKarpLimit) returns
// a feasible order that is no worse than the heuristic path.
func TestBestOrderHeldKarpBand(t *testing.T) {
	rng := rand.New(rand.NewSource(132))
	n := ExactLimit + 3
	xs := make([]float64, n)
	in := lineInstance(xs, 1e9)
	for i := range in.Tasks {
		in.Tasks[i].Loc = geo.Pt(rng.Float64()*100, rng.Float64()*100)
	}
	in.Workers[0].MaxT = n
	w, c := in.Worker(0), in.Center(0)
	ids := make([]model.TaskID, n)
	for i := range ids {
		ids[i] = model.TaskID(i)
	}
	got, ok := BestOrder(in, w, c, ids)
	if !ok || !OrderFeasible(in, w, c, got) {
		t.Fatal("HK band BestOrder failed")
	}
	heur, ok := bestOrderHeuristic(in, w, c, ids)
	if !ok {
		t.Fatal("heuristic failed on open deadlines")
	}
	if TravelTime(in, w, c, got) > TravelTime(in, w, c, heur)+1e-9 {
		t.Fatalf("exact HK %v worse than heuristic %v",
			TravelTime(in, w, c, got), TravelTime(in, w, c, heur))
	}
}

// BestOrder beyond HeldKarpLimit exercises the heuristic path.
func TestBestOrderBeyondHeldKarp(t *testing.T) {
	rng := rand.New(rand.NewSource(133))
	n := HeldKarpLimit + 3
	xs := make([]float64, n)
	in := lineInstance(xs, 1e9)
	for i := range in.Tasks {
		in.Tasks[i].Loc = geo.Pt(rng.Float64()*100, rng.Float64()*100)
	}
	in.Workers[0].MaxT = n
	w, c := in.Worker(0), in.Center(0)
	ids := make([]model.TaskID, n)
	for i := range ids {
		ids[i] = model.TaskID(i)
	}
	got, ok := BestOrder(in, w, c, ids)
	if !ok || len(got) != n || !OrderFeasible(in, w, c, got) {
		t.Fatal("heuristic BestOrder failed")
	}
}

func BenchmarkHeldKarp12(b *testing.B) {
	rng := rand.New(rand.NewSource(134))
	n := 12
	xs := make([]float64, n)
	in := lineInstance(xs, 1e9)
	for i := range in.Tasks {
		in.Tasks[i].Loc = geo.Pt(rng.Float64()*100, rng.Float64()*100)
	}
	in.Workers[0].MaxT = n
	w, c := in.Worker(0), in.Center(0)
	ids := make([]model.TaskID, n)
	for i := range ids {
		ids[i] = model.TaskID(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := heldKarp(in, w, c, ids); !ok {
			b.Fatal("infeasible")
		}
	}
}
