package routing

import (
	"math"

	"imtao/internal/model"
)

// HeldKarpLimit is the largest stop count handled by the bitmask dynamic
// program. 2^15 × 15 states ≈ 500k — well under a millisecond.
const HeldKarpLimit = 15

// heldKarp finds the minimum-travel-time feasible order over tasks using the
// Held–Karp dynamic program extended with deadline feasibility: a DP state
// (visited set, last task) stores the minimal completion time of the last
// task; transitions that would violate the next task's deadline are pruned.
// Minimising the arrival time at every prefix is exact for the travel-time
// objective and sound for feasibility: if any order of set S ending at task
// j is feasible, the minimal-time one is.
//
// ok is false when no feasible order exists.
func heldKarp(in *model.Instance, w *model.Worker, c *model.Center, tasks []model.TaskID) ([]model.TaskID, bool) {
	n := len(tasks)
	if n == 0 {
		return nil, true
	}
	if n > HeldKarpLimit {
		return nil, false
	}
	cref := in.CenterRef(c.ID)
	start := in.TravelTimeRef(w.Loc, in.WorkerRef(w.ID), c.Loc, cref)

	// Distance matrix: d0[j] from center to task j, d[i][j] between tasks.
	d0 := make([]float64, n)
	d := make([][]float64, n)
	deadline := make([]float64, n)
	for i := 0; i < n; i++ {
		ti := in.Task(tasks[i])
		ri := in.TaskRef(tasks[i])
		d0[i] = in.TravelTimeRef(c.Loc, cref, ti.Loc, ri)
		deadline[i] = ti.Expiry
		d[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			d[i][j] = in.TravelTimeRef(ti.Loc, ri, in.Task(tasks[j]).Loc, in.TaskRef(tasks[j]))
		}
	}

	size := 1 << n
	const inf = math.MaxFloat64
	// dp[mask*n + j] = minimal completion time of task j having visited mask.
	dp := make([]float64, size*n)
	parent := make([]int8, size*n)
	for i := range dp {
		dp[i] = inf
	}
	for j := 0; j < n; j++ {
		t := start + d0[j]
		if t <= deadline[j]+timeEps {
			dp[(1<<j)*n+j] = t
			parent[(1<<j)*n+j] = -1
		}
	}
	for mask := 1; mask < size; mask++ {
		for j := 0; j < n; j++ {
			if mask&(1<<j) == 0 {
				continue
			}
			cur := dp[mask*n+j]
			if cur == inf {
				continue
			}
			for k := 0; k < n; k++ {
				if mask&(1<<k) != 0 {
					continue
				}
				t := cur + d[j][k]
				if t > deadline[k]+timeEps {
					continue
				}
				nm := mask | 1<<k
				if t < dp[nm*n+k] {
					dp[nm*n+k] = t
					parent[nm*n+k] = int8(j)
				}
			}
		}
	}

	full := size - 1
	bestJ, bestT := -1, inf
	for j := 0; j < n; j++ {
		if dp[full*n+j] < bestT {
			bestJ, bestT = j, dp[full*n+j]
		}
	}
	if bestJ < 0 {
		return nil, false
	}
	// Reconstruct.
	order := make([]model.TaskID, n)
	mask, j := full, bestJ
	for i := n - 1; i >= 0; i-- {
		order[i] = tasks[j]
		pj := parent[mask*n+j]
		mask &^= 1 << j
		if pj < 0 {
			break
		}
		j = int(pj)
	}
	return order, true
}
