// Package routing evaluates delivery sequences against the travel model of
// the paper: Eq. 1 completion times, the VTDS validity predicate of
// Definition 5, and the minimum-travel-time ordering that Definition 5
// prescribes when several feasible sequences exist.
//
// The orderings are deadline-constrained open TSP paths starting at the
// worker's pick-up center. Sequences are tiny (bounded by w.maxT, 4 in the
// paper), so exact permutation search is used up to ExactLimit stops; larger
// sequences — possible in the extension packages — fall back to a
// nearest-neighbour construction with 2-opt improvement and a deadline
// repair pass.
package routing

import (
	"math"

	"imtao/internal/geo"
	"imtao/internal/model"
)

// ExactLimit is the largest sequence length solved by exhaustive permutation
// search in BestOrder. 8! = 40320 orders, microseconds of work.
const ExactLimit = 8

// CompletionTimes returns, for each position i of order, the time
// t_{w,c,R}(s_i.l) at which worker w completes the i-th task when picking up
// at center c — exactly Eq. 1 of the paper. An empty order yields nil.
func CompletionTimes(in *model.Instance, w *model.Worker, c *model.Center, order []model.TaskID) []float64 {
	if len(order) == 0 {
		return nil
	}
	out := make([]float64, len(order))
	cref := in.CenterRef(c.ID)
	t := in.TravelTimeRef(w.Loc, in.WorkerRef(w.ID), c.Loc, cref)
	cur, curRef := c.Loc, cref
	for i, id := range order {
		loc := in.Task(id).Loc
		ref := in.TaskRef(id)
		t += in.TravelTimeRef(cur, curRef, loc, ref)
		out[i] = t
		cur, curRef = loc, ref
	}
	return out
}

// TravelTime returns the total travel time of the order, from the worker's
// location through the center to the last delivery.
func TravelTime(in *model.Instance, w *model.Worker, c *model.Center, order []model.TaskID) float64 {
	if len(order) == 0 {
		return 0
	}
	times := CompletionTimes(in, w, c, order)
	return times[len(times)-1]
}

// OrderFeasible reports whether the given delivery order is a valid task
// delivery sequence: every task completes no later than its expiry
// (Definition 5) and the order respects the worker's capacity.
func OrderFeasible(in *model.Instance, w *model.Worker, c *model.Center, order []model.TaskID) bool {
	if len(order) > w.MaxT {
		return false
	}
	if len(order) == 0 {
		return true
	}
	cref := in.CenterRef(c.ID)
	t := in.TravelTimeRef(w.Loc, in.WorkerRef(w.ID), c.Loc, cref)
	cur, curRef := c.Loc, cref
	for _, id := range order {
		task := in.Task(id)
		ref := in.TaskRef(id)
		t += in.TravelTimeRef(cur, curRef, task.Loc, ref)
		if t > task.Expiry+timeEps {
			return false
		}
		cur, curRef = task.Loc, ref
	}
	return true
}

// timeEps absorbs floating-point noise in deadline comparisons.
const timeEps = 1e-9

// BestOrder searches for a feasible delivery order over tasks with minimal
// total travel time. ok is false when no feasible order exists (the task set
// is not a VTDS for this worker). The input slice is not modified.
//
// Up to ExactLimit tasks the search is exact branch-and-bound over
// permutations (pruning on deadline violations and on the incumbent travel
// time); between ExactLimit and HeldKarpLimit it switches to the exact
// Held–Karp dynamic program with deadline pruning. Beyond that it is
// heuristic: earliest-deadline-first and nearest-neighbour constructions
// followed by feasibility-preserving 2-opt.
func BestOrder(in *model.Instance, w *model.Worker, c *model.Center, tasks []model.TaskID) ([]model.TaskID, bool) {
	n := len(tasks)
	if n == 0 {
		return nil, true
	}
	if n > w.MaxT {
		return nil, false
	}
	if n <= ExactLimit {
		return bestOrderExact(in, w, c, tasks)
	}
	if n <= HeldKarpLimit {
		return heldKarp(in, w, c, tasks)
	}
	return bestOrderHeuristic(in, w, c, tasks)
}

func bestOrderExact(in *model.Instance, w *model.Worker, c *model.Center, tasks []model.TaskID) ([]model.TaskID, bool) {
	n := len(tasks)
	perm := append([]model.TaskID(nil), tasks...)
	best := make([]model.TaskID, 0, n)
	bestT := math.Inf(1)
	cref := in.CenterRef(c.ID)
	start := in.TravelTimeRef(w.Loc, in.WorkerRef(w.ID), c.Loc, cref)

	var rec func(depth int, t float64, cur geo.Point, curRef model.NodeRef)
	rec = func(depth int, t float64, cur geo.Point, curRef model.NodeRef) {
		if t >= bestT {
			return // incumbent already better
		}
		if depth == n {
			bestT = t
			best = append(best[:0], perm...)
			return
		}
		for i := depth; i < n; i++ {
			perm[depth], perm[i] = perm[i], perm[depth]
			task := in.Task(perm[depth])
			ref := in.TaskRef(perm[depth])
			nt := t + in.TravelTimeRef(cur, curRef, task.Loc, ref)
			if nt <= task.Expiry+timeEps {
				rec(depth+1, nt, task.Loc, ref)
			}
			perm[depth], perm[i] = perm[i], perm[depth]
		}
	}
	rec(0, start, c.Loc, cref)
	if math.IsInf(bestT, 1) {
		return nil, false
	}
	return best, true
}

func bestOrderHeuristic(in *model.Instance, w *model.Worker, c *model.Center, tasks []model.TaskID) ([]model.TaskID, bool) {
	candidates := [][]model.TaskID{
		nearestNeighborOrder(in, c, tasks),
		earliestDeadlineOrder(in, tasks),
	}
	var best []model.TaskID
	bestT := math.Inf(1)
	for _, cand := range candidates {
		cand = twoOptFeasible(in, w, c, cand)
		if !OrderFeasible(in, w, c, cand) {
			continue
		}
		if t := TravelTime(in, w, c, cand); t < bestT {
			bestT = t
			best = cand
		}
	}
	if best == nil {
		return nil, false
	}
	return best, true
}

// nearestNeighborOrder builds an order by repeatedly visiting the closest
// remaining task, starting from the center.
func nearestNeighborOrder(in *model.Instance, c *model.Center, tasks []model.TaskID) []model.TaskID {
	remaining := append([]model.TaskID(nil), tasks...)
	out := make([]model.TaskID, 0, len(tasks))
	cur := c.Loc
	for len(remaining) > 0 {
		bi, bd := 0, math.Inf(1)
		for i, id := range remaining {
			if d := cur.Dist2(in.Task(id).Loc); d < bd {
				bi, bd = i, d
			}
		}
		id := remaining[bi]
		out = append(out, id)
		cur = in.Task(id).Loc
		remaining[bi] = remaining[len(remaining)-1]
		remaining = remaining[:len(remaining)-1]
	}
	return out
}

// earliestDeadlineOrder sorts tasks by expiry ascending (ties by ID).
func earliestDeadlineOrder(in *model.Instance, tasks []model.TaskID) []model.TaskID {
	out := append([]model.TaskID(nil), tasks...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0; j-- {
			a, b := in.Task(out[j-1]), in.Task(out[j])
			if b.Expiry < a.Expiry || (b.Expiry == a.Expiry && b.ID < a.ID) {
				out[j-1], out[j] = out[j], out[j-1]
			} else {
				break
			}
		}
	}
	return out
}

// twoOptFeasible applies 2-opt segment reversals that strictly reduce travel
// time while keeping the order feasible (or keeping it no less feasible than
// before — reversals are only accepted when the result passes the full
// deadline check).
func twoOptFeasible(in *model.Instance, w *model.Worker, c *model.Center, order []model.TaskID) []model.TaskID {
	out := append([]model.TaskID(nil), order...)
	n := len(out)
	if n < 3 {
		return out
	}
	improved := true
	cur := TravelTime(in, w, c, out)
	feasible := OrderFeasible(in, w, c, out)
	for improved {
		improved = false
		for i := 0; i < n-1; i++ {
			for j := i + 1; j < n; j++ {
				reverse(out, i, j)
				nf := OrderFeasible(in, w, c, out)
				nt := TravelTime(in, w, c, out)
				if (nf && !feasible) || (nf == feasible && nt < cur-timeEps) {
					cur, feasible, improved = nt, nf, true
				} else {
					reverse(out, i, j)
				}
			}
		}
	}
	return out
}

func reverse(a []model.TaskID, i, j int) {
	for i < j {
		a[i], a[j] = a[j], a[i]
		i++
		j--
	}
}

// RouteFeasible is OrderFeasible lifted to a model.Route.
func RouteFeasible(in *model.Instance, r *model.Route) bool {
	w := in.Worker(r.Worker)
	c := in.Center(r.Center)
	return OrderFeasible(in, w, c, r.Tasks)
}

// SolutionFeasible verifies every route of a solution against Definition 5
// and the structural consistency checks of the model package.
func SolutionFeasible(in *model.Instance, s *model.Solution) error {
	if err := s.CheckConsistency(in); err != nil {
		return err
	}
	for ci := range s.PerCenter {
		for ri := range s.PerCenter[ci].Routes {
			r := &s.PerCenter[ci].Routes[ri]
			if !RouteFeasible(in, r) {
				return &InfeasibleRouteError{Center: model.CenterID(ci), Route: *r}
			}
		}
	}
	return nil
}

// InfeasibleRouteError reports a route violating deadline or capacity.
type InfeasibleRouteError struct {
	Center model.CenterID
	Route  model.Route
}

func (e *InfeasibleRouteError) Error() string {
	return "routing: infeasible route for worker in center"
}
