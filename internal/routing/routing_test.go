package routing

import (
	"math"
	"math/rand"
	"testing"

	"imtao/internal/geo"
	"imtao/internal/model"
)

// lineInstance puts one center at the origin and tasks along the x-axis;
// speed 1 so distances are times.
func lineInstance(taskXs []float64, expiry float64) *model.Instance {
	in := &model.Instance{
		Centers: []model.Center{{ID: 0, Loc: geo.Pt(0, 0)}},
		Speed:   1,
		Bounds:  geo.NewRect(geo.Pt(-100, -100), geo.Pt(100, 100)),
	}
	for i, x := range taskXs {
		in.Tasks = append(in.Tasks, model.Task{
			ID: model.TaskID(i), Center: 0, Loc: geo.Pt(x, 0), Expiry: expiry, Reward: 1,
		})
		in.Centers[0].Tasks = append(in.Centers[0].Tasks, model.TaskID(i))
	}
	in.Workers = []model.Worker{{ID: 0, Home: 0, Loc: geo.Pt(0, 0), MaxT: 10}}
	in.Centers[0].Workers = []model.WorkerID{0}
	return in
}

func TestCompletionTimesEq1(t *testing.T) {
	in := lineInstance([]float64{2, 5}, 100)
	in.Workers[0].Loc = geo.Pt(0, 3) // 3 units from the center
	w, c := in.Worker(0), in.Center(0)
	got := CompletionTimes(in, w, c, []model.TaskID{0, 1})
	// t(s1) = tt(w,c) + tt(c,s1) = 3 + 2 = 5; t(s2) = 5 + tt(s1,s2) = 5 + 3 = 8.
	want := []float64{5, 8}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Errorf("completion[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if CompletionTimes(in, w, c, nil) != nil {
		t.Error("empty order must give nil")
	}
}

func TestTravelTime(t *testing.T) {
	in := lineInstance([]float64{2, 5}, 100)
	w, c := in.Worker(0), in.Center(0)
	if got := TravelTime(in, w, c, []model.TaskID{0, 1}); math.Abs(got-5) > 1e-9 {
		t.Errorf("TravelTime = %v, want 5", got)
	}
	if got := TravelTime(in, w, c, nil); got != 0 {
		t.Errorf("empty TravelTime = %v", got)
	}
}

func TestOrderFeasible(t *testing.T) {
	in := lineInstance([]float64{2, 5}, 6)
	w, c := in.Worker(0), in.Center(0)
	if !OrderFeasible(in, w, c, []model.TaskID{0, 1}) {
		t.Error("0,1 completes at 2 and 5, both within 6")
	}
	// Reversed order: task 0 completes at 5+3=8 > 6.
	if OrderFeasible(in, w, c, []model.TaskID{1, 0}) {
		t.Error("1,0 violates the deadline of task 0")
	}
	// Capacity.
	in.Workers[0].MaxT = 1
	if OrderFeasible(in, w, c, []model.TaskID{0, 1}) {
		t.Error("capacity 1 cannot take 2 tasks")
	}
	if !OrderFeasible(in, w, c, nil) {
		t.Error("empty order is always feasible")
	}
}

func TestBestOrderPicksMinTravel(t *testing.T) {
	in := lineInstance([]float64{2, 5, 9}, 100)
	w, c := in.Worker(0), in.Center(0)
	got, ok := BestOrder(in, w, c, []model.TaskID{2, 0, 1})
	if !ok {
		t.Fatal("feasible set reported infeasible")
	}
	want := []model.TaskID{0, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("BestOrder = %v, want %v", got, want)
		}
	}
}

func TestBestOrderRespectsDeadlines(t *testing.T) {
	// Task 1 is far but urgent; pure distance order would visit task 0 first
	// and miss it. Off-axis layout so the detour through task 0 is real.
	in := lineInstance([]float64{2, 5}, 100)
	in.Tasks[1].Loc = geo.Pt(0, 5)
	in.Tasks[1].Expiry = 5
	in.Tasks[0].Expiry = 100
	w, c := in.Worker(0), in.Center(0)
	got, ok := BestOrder(in, w, c, []model.TaskID{0, 1})
	if !ok {
		t.Fatal("a feasible order exists: 1 then 0")
	}
	if got[0] != 1 || got[1] != 0 {
		t.Fatalf("BestOrder = %v, want [1 0]", got)
	}
}

func TestBestOrderInfeasible(t *testing.T) {
	in := lineInstance([]float64{50}, 10) // 50 units away, deadline 10
	w, c := in.Worker(0), in.Center(0)
	if _, ok := BestOrder(in, w, c, []model.TaskID{0}); ok {
		t.Error("unreachable task must be infeasible")
	}
	// Over capacity.
	in = lineInstance([]float64{1, 2, 3}, 100)
	in.Workers[0].MaxT = 2
	if _, ok := BestOrder(in.Clone(), in.Worker(0), in.Center(0), []model.TaskID{0, 1, 2}); ok {
		t.Error("over-capacity set must be infeasible")
	}
	// Empty set is trivially feasible.
	if got, ok := BestOrder(in, in.Worker(0), in.Center(0), nil); !ok || got != nil {
		t.Errorf("empty set: %v, %v", got, ok)
	}
}

func TestBestOrderDoesNotMutateInput(t *testing.T) {
	in := lineInstance([]float64{5, 2, 9}, 100)
	w, c := in.Worker(0), in.Center(0)
	tasks := []model.TaskID{0, 1, 2}
	if _, ok := BestOrder(in, w, c, tasks); !ok {
		t.Fatal("feasible")
	}
	if tasks[0] != 0 || tasks[1] != 1 || tasks[2] != 2 {
		t.Fatalf("input mutated: %v", tasks)
	}
}

// Property: the exact search result is feasible and no permutation beats it.
func TestBestOrderExactIsOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(5)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64()*20 - 10
		}
		in := lineInstance(xs, 5+rng.Float64()*20)
		// Random 2-D scatter rather than a line, to exercise geometry.
		for i := range in.Tasks {
			in.Tasks[i].Loc = geo.Pt(rng.Float64()*20-10, rng.Float64()*20-10)
			in.Tasks[i].Expiry = 5 + rng.Float64()*25
		}
		w, c := in.Worker(0), in.Center(0)
		ids := make([]model.TaskID, n)
		for i := range ids {
			ids[i] = model.TaskID(i)
		}
		got, ok := BestOrder(in, w, c, ids)
		bestBrute, okBrute := bruteBest(in, w, c, ids)
		if ok != okBrute {
			t.Fatalf("trial %d: feasibility mismatch exact=%v brute=%v", trial, ok, okBrute)
		}
		if !ok {
			continue
		}
		if !OrderFeasible(in, w, c, got) {
			t.Fatalf("trial %d: BestOrder returned infeasible order", trial)
		}
		gt, bt := TravelTime(in, w, c, got), TravelTime(in, w, c, bestBrute)
		if gt > bt+1e-9 {
			t.Fatalf("trial %d: BestOrder travel %v worse than brute %v", trial, gt, bt)
		}
	}
}

func bruteBest(in *model.Instance, w *model.Worker, c *model.Center, ids []model.TaskID) ([]model.TaskID, bool) {
	var best []model.TaskID
	bestT := math.Inf(1)
	perm := append([]model.TaskID(nil), ids...)
	var rec func(k int)
	rec = func(k int) {
		if k == len(perm) {
			if OrderFeasible(in, w, c, perm) {
				if tt := TravelTime(in, w, c, perm); tt < bestT {
					bestT = tt
					best = append([]model.TaskID(nil), perm...)
				}
			}
			return
		}
		for i := k; i < len(perm); i++ {
			perm[k], perm[i] = perm[i], perm[k]
			rec(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	rec(0)
	return best, best != nil
}

func TestBestOrderHeuristicLargeSet(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	n := ExactLimit + 4 // force the heuristic path
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = rng.Float64() * 30
	}
	in := lineInstance(xs, 1e9)
	in.Workers[0].MaxT = n
	w, c := in.Worker(0), in.Center(0)
	ids := make([]model.TaskID, n)
	for i := range ids {
		ids[i] = model.TaskID(i)
	}
	got, ok := BestOrder(in, w, c, ids)
	if !ok || len(got) != n {
		t.Fatalf("heuristic failed: ok=%v len=%d", ok, len(got))
	}
	if !OrderFeasible(in, w, c, got) {
		t.Fatal("heuristic order infeasible")
	}
	// On a line with generous deadlines, NN+2-opt should find the sorted
	// sweep (optimal); allow 10% slack for safety.
	sorted := earliestDeadlineOrder(in, ids) // same expiry → sorted by ID = input order
	_ = sorted
	best := TravelTime(in, w, c, nearestNeighborOrder(in, c, ids))
	if tt := TravelTime(in, w, c, got); tt > best+1e-9 {
		t.Errorf("2-opt result %v worse than plain NN %v", tt, best)
	}
}

func TestSolutionFeasible(t *testing.T) {
	in := lineInstance([]float64{2, 5}, 6)
	s := model.NewSolution(in)
	s.PerCenter[0].Routes = []model.Route{{Worker: 0, Center: 0, Tasks: []model.TaskID{0, 1}}}
	if err := SolutionFeasible(in, s); err != nil {
		t.Fatalf("feasible solution rejected: %v", err)
	}
	s.PerCenter[0].Routes[0].Tasks = []model.TaskID{1, 0} // misses deadline of 0
	if err := SolutionFeasible(in, s); err == nil {
		t.Fatal("infeasible route accepted")
	}
}

func TestRouteFeasible(t *testing.T) {
	in := lineInstance([]float64{2}, 6)
	r := model.Route{Worker: 0, Center: 0, Tasks: []model.TaskID{0}}
	if !RouteFeasible(in, &r) {
		t.Error("route should be feasible")
	}
	in.Tasks[0].Expiry = 1
	if RouteFeasible(in, &r) {
		t.Error("route should be infeasible after deadline tightening")
	}
}

func BenchmarkBestOrder4(b *testing.B) {
	rng := rand.New(rand.NewSource(23))
	in := lineInstance([]float64{1, 2, 3, 4}, 1e9)
	for i := range in.Tasks {
		in.Tasks[i].Loc = geo.Pt(rng.Float64()*100, rng.Float64()*100)
	}
	w, c := in.Worker(0), in.Center(0)
	ids := []model.TaskID{0, 1, 2, 3}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BestOrder(in, w, c, ids)
	}
}

// Property: when the identity order is feasible, BestOrder's travel time
// never exceeds it.
func TestBestOrderNeverWorseThanIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(220))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(6)
		xs := make([]float64, n)
		in := lineInstance(xs, 1e6)
		for i := range in.Tasks {
			in.Tasks[i].Loc = geo.Pt(rng.Float64()*50, rng.Float64()*50)
		}
		in.Workers[0].MaxT = n
		w, c := in.Worker(0), in.Center(0)
		ids := make([]model.TaskID, n)
		for i := range ids {
			ids[i] = model.TaskID(i)
		}
		if !OrderFeasible(in, w, c, ids) {
			continue
		}
		best, ok := BestOrder(in, w, c, ids)
		if !ok {
			t.Fatalf("trial %d: identity feasible but BestOrder infeasible", trial)
		}
		if TravelTime(in, w, c, best) > TravelTime(in, w, c, ids)+1e-9 {
			t.Fatalf("trial %d: BestOrder worse than identity", trial)
		}
	}
}
