package dynamic

import (
	"math/rand"
	"strings"
	"testing"

	"imtao/internal/core"
	"imtao/internal/geo"
	"imtao/internal/model"
)

// base builds a two-center instance with idle workers and no tasks.
func base() *model.Instance {
	return &model.Instance{
		Centers: []model.Center{
			{ID: 0, Loc: geo.Pt(100, 100)},
			{ID: 1, Loc: geo.Pt(900, 100)},
		},
		Workers: []model.Worker{
			{ID: 0, Home: 0, Loc: geo.Pt(90, 110), MaxT: 4},
			{ID: 1, Home: 0, Loc: geo.Pt(110, 90), MaxT: 4},
			{ID: 2, Home: 1, Loc: geo.Pt(910, 90), MaxT: 4},
		},
		Speed:  500,
		Bounds: geo.NewRect(geo.Pt(0, 0), geo.Pt(1000, 200)),
	}
}

func seqBDC() core.Method { return core.Method{Assigner: core.Seq, Collab: core.BDC} }

func TestSimulateValidation(t *testing.T) {
	if _, err := Simulate(base(), nil, Config{BatchInterval: 0, Method: seqBDC()}); err == nil {
		t.Error("zero batch interval must fail")
	}
	if _, err := Simulate(&model.Instance{Speed: 1}, nil, Config{BatchInterval: 1, Method: seqBDC()}); err == nil {
		t.Error("no centers must fail")
	}
	in := base()
	in.Speed = 0
	if _, err := Simulate(in, nil, Config{BatchInterval: 1, Method: seqBDC()}); err == nil {
		t.Error("zero speed must fail")
	}
	bad := []Arrival{{ArriveAt: 0, Loc: geo.Pt(1, 1), Expiry: 0}}
	if _, err := Simulate(base(), bad, Config{BatchInterval: 1, Method: seqBDC()}); err == nil {
		t.Error("non-positive expiry must fail")
	}
}

func TestSimulateEmptyArrivals(t *testing.T) {
	res, err := Simulate(base(), nil, Config{BatchInterval: 0.5, Method: seqBDC()})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalArrived != 0 || res.TotalAssigned != 0 || res.Leftover != 0 {
		t.Fatalf("empty sim: %+v", res)
	}
	if res.CompletionRate() != 1 {
		t.Errorf("empty completion rate = %v", res.CompletionRate())
	}
}

func TestSimulateSingleBatchAssignsEverything(t *testing.T) {
	arrivals := []Arrival{
		{ArriveAt: 0, Loc: geo.Pt(120, 100), Expiry: 1, Reward: 1},
		{ArriveAt: 0, Loc: geo.Pt(80, 120), Expiry: 1, Reward: 1},
		{ArriveAt: 0, Loc: geo.Pt(920, 110), Expiry: 1, Reward: 1},
	}
	res, err := Simulate(base(), arrivals, Config{BatchInterval: 0.5, Method: seqBDC()})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalAssigned != 3 {
		t.Fatalf("assigned %d, want 3 (%+v)", res.TotalAssigned, res)
	}
	if res.TotalExpired != 0 || res.Leftover != 0 {
		t.Fatalf("expired/leftover: %+v", res)
	}
}

func TestSimulateWorkersBusyAcrossBatches(t *testing.T) {
	// Two waves to the same center: with batch 0.25h and routes lasting
	// ~0.1h, the same workers should serve both waves.
	arrivals := []Arrival{
		{ArriveAt: 0, Loc: geo.Pt(120, 100), Expiry: 1, Reward: 1},
		{ArriveAt: 0, Loc: geo.Pt(130, 110), Expiry: 1, Reward: 1},
		{ArriveAt: 0.3, Loc: geo.Pt(120, 95), Expiry: 1, Reward: 1},
		{ArriveAt: 0.3, Loc: geo.Pt(140, 100), Expiry: 1, Reward: 1},
	}
	res, err := Simulate(base(), arrivals, Config{BatchInterval: 0.25, Method: seqBDC()})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalAssigned != 4 {
		t.Fatalf("assigned %d, want 4", res.TotalAssigned)
	}
	if len(res.Batches) < 3 {
		t.Fatalf("batches: %d", len(res.Batches))
	}
}

func TestSimulateExpiry(t *testing.T) {
	// A task arriving at t=0 with a 0.2h deadline is already expired by the
	// first batch it could be scheduled in if the interval is 0.25h... it is
	// ingested at t=0 though (queue <= t), so it is schedulable at t=0. Use
	// an arrival between batches instead: arrives 0.01, expires 0.2, first
	// batch that sees it is t=0.25 — too late.
	arrivals := []Arrival{
		{ArriveAt: 0.01, Loc: geo.Pt(120, 100), Expiry: 0.2, Reward: 1},
	}
	res, err := Simulate(base(), arrivals, Config{BatchInterval: 0.25, Method: seqBDC()})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalExpired != 1 || res.TotalAssigned != 0 {
		t.Fatalf("expired=%d assigned=%d, want 1/0", res.TotalExpired, res.TotalAssigned)
	}
}

func TestSimulateConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	var arrivals []Arrival
	for i := 0; i < 60; i++ {
		arrivals = append(arrivals, Arrival{
			ArriveAt: rng.Float64() * 2,
			Loc:      geo.Pt(rng.Float64()*1000, rng.Float64()*200),
			Expiry:   0.2 + rng.Float64(),
			Reward:   1,
		})
	}
	res, err := Simulate(base(), arrivals, Config{BatchInterval: 0.25, Method: seqBDC()})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.TotalAssigned + res.TotalExpired + res.Leftover; got != res.TotalArrived {
		t.Fatalf("conservation broken: %d+%d+%d != %d",
			res.TotalAssigned, res.TotalExpired, res.Leftover, res.TotalArrived)
	}
	if res.CompletionRate() < 0 || res.CompletionRate() > 1 {
		t.Fatalf("completion rate %v", res.CompletionRate())
	}
}

func TestSimulateCollaborationHelpsOverTime(t *testing.T) {
	// Heavy load near center 0 only: BDC should beat w/o-C by pulling the
	// center-1 worker across.
	rng := rand.New(rand.NewSource(82))
	var arrivals []Arrival
	for i := 0; i < 40; i++ {
		arrivals = append(arrivals, Arrival{
			ArriveAt: rng.Float64() * 1.5,
			Loc:      geo.Pt(50+rng.Float64()*200, 50+rng.Float64()*100),
			Expiry:   0.5,
			Reward:   1,
		})
	}
	woc, err := Simulate(base(), arrivals, Config{BatchInterval: 0.25,
		Method: core.Method{Assigner: core.Seq, Collab: core.WoC}})
	if err != nil {
		t.Fatal(err)
	}
	bdc, err := Simulate(base(), arrivals, Config{BatchInterval: 0.25, Method: seqBDC()})
	if err != nil {
		t.Fatal(err)
	}
	if bdc.TotalAssigned < woc.TotalAssigned {
		t.Fatalf("BDC %d < w/o-C %d over time", bdc.TotalAssigned, woc.TotalAssigned)
	}
}

func TestSimulateDoesNotMutateInputs(t *testing.T) {
	in := base()
	arrivals := []Arrival{
		{ArriveAt: 0.5, Loc: geo.Pt(120, 100), Expiry: 1, Reward: 1},
		{ArriveAt: 0.1, Loc: geo.Pt(130, 100), Expiry: 1, Reward: 1},
	}
	if _, err := Simulate(in, arrivals, Config{BatchInterval: 0.25, Method: seqBDC()}); err != nil {
		t.Fatal(err)
	}
	if arrivals[0].ArriveAt != 0.5 || arrivals[1].ArriveAt != 0.1 {
		t.Fatal("arrival slice reordered in place")
	}
	if in.Workers[0].Loc != geo.Pt(90, 110) {
		t.Fatal("base instance mutated")
	}
}

func TestMeanLatency(t *testing.T) {
	// Empty simulation: no latency.
	res, err := Simulate(base(), nil, Config{BatchInterval: 0.5, Method: seqBDC()})
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanLatency() != 0 {
		t.Errorf("empty latency = %v", res.MeanLatency())
	}
	// One task arriving at t=0, assigned in the first batch: latency equals
	// travel time (worker -> center -> task) and is bounded by the expiry.
	arrivals := []Arrival{{ArriveAt: 0, Loc: geo.Pt(120, 100), Expiry: 1, Reward: 1}}
	res, err = Simulate(base(), arrivals, Config{BatchInterval: 0.25, Method: seqBDC()})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalAssigned != 1 {
		t.Fatalf("assigned = %d", res.TotalAssigned)
	}
	if l := res.MeanLatency(); l <= 0 || l > 1 {
		t.Errorf("latency = %v, want within (0, 1]", l)
	}
	// A later arrival must wait for the next batch boundary: latency grows.
	late := []Arrival{{ArriveAt: 0.01, Loc: geo.Pt(120, 100), Expiry: 1, Reward: 1}}
	res2, err := Simulate(base(), late, Config{BatchInterval: 0.25, Method: seqBDC()})
	if err != nil {
		t.Fatal(err)
	}
	if res2.TotalAssigned == 1 && res2.MeanLatency() <= res.MeanLatency() {
		t.Errorf("waiting for the batch should add latency: %v vs %v",
			res2.MeanLatency(), res.MeanLatency())
	}
}

func TestResultTable(t *testing.T) {
	arrivals := []Arrival{{ArriveAt: 0, Loc: geo.Pt(120, 100), Expiry: 1, Reward: 1}}
	res, err := Simulate(base(), arrivals, Config{BatchInterval: 0.5, Method: seqBDC()})
	if err != nil {
		t.Fatal(err)
	}
	out := res.Table()
	for _, want := range []string{"t (h)", "pending", "totals:", "mean latency"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}
