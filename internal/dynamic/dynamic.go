// Package dynamic implements the batched dynamic-arrival extension the
// paper's discussion (§V-E) names as future work: tasks arrive over time
// instead of being known upfront. The simulator slices time into batches;
// at each batch boundary it snapshots the pending tasks and the workers who
// are idle at that moment, runs the IMTAO pipeline on the snapshot, commits
// the resulting routes (workers become busy until their last delivery), and
// carries unassigned, unexpired tasks into the next batch.
package dynamic

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"imtao/internal/core"
	"imtao/internal/geo"
	"imtao/internal/metrics"
	"imtao/internal/model"
	"imtao/internal/routing"
)

// Arrival is one task arriving at a point in time. Deadline is relative:
// the task expires Expiry hours after ArriveAt.
type Arrival struct {
	ArriveAt float64 // hours from simulation start
	Loc      geo.Point
	Expiry   float64 // relative deadline in hours
	Reward   float64
}

// Config controls a simulation.
type Config struct {
	// BatchInterval is the assignment cadence in hours.
	BatchInterval float64
	// Method is the IMTAO method run on each batch snapshot.
	Method core.Method
	// Seed feeds randomized methods.
	Seed int64
}

// BatchStats summarises one batch.
type BatchStats struct {
	Time        float64 // batch start, hours
	Pending     int     // tasks awaiting assignment at the batch start
	IdleWorkers int
	Assigned    int // newly assigned in this batch
	Expired     int // tasks dropped because their deadline passed
	Unfairness  float64
}

// Result is a completed simulation.
type Result struct {
	Batches       []BatchStats
	TotalArrived  int
	TotalAssigned int
	TotalExpired  int
	// Leftover counts tasks still pending when the simulation ended.
	Leftover int

	latencySum float64
	latencyN   int
}

// MeanLatency returns the mean hours between a task's arrival and its
// delivery, over all assigned tasks (0 when nothing was assigned). Batching
// adds waiting time on top of travel, so this quantifies the cost of the
// batch interval.
func (r *Result) MeanLatency() float64 {
	if r.latencyN == 0 {
		return 0
	}
	return r.latencySum / float64(r.latencyN)
}

// CompletionRate returns assigned/arrived.
func (r *Result) CompletionRate() float64 {
	if r.TotalArrived == 0 {
		return 1
	}
	return float64(r.TotalAssigned) / float64(r.TotalArrived)
}

// Table renders the per-batch statistics as a fixed-width text table.
func (r *Result) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %-8s %-8s %-9s %-8s %-8s\n",
		"t (h)", "pending", "idle", "assigned", "expired", "U_rho")
	for _, s := range r.Batches {
		fmt.Fprintf(&b, "%-8.2f %-8d %-8d %-9d %-8d %-8.3f\n",
			s.Time, s.Pending, s.IdleWorkers, s.Assigned, s.Expired, s.Unfairness)
	}
	fmt.Fprintf(&b, "totals: arrived %d, assigned %d, expired %d, leftover %d, mean latency %.2fh\n",
		r.TotalArrived, r.TotalAssigned, r.TotalExpired, r.Leftover, r.MeanLatency())
	return b.String()
}

// Simulate runs the batched simulation. The base instance provides centers,
// workers and the travel model; its task list is ignored (arrivals replace
// it). Workers start at their instance locations and, after a delivery run,
// become idle at their last drop-off location.
func Simulate(base *model.Instance, arrivals []Arrival, cfg Config) (*Result, error) {
	if cfg.BatchInterval <= 0 {
		return nil, errors.New("dynamic: BatchInterval must be positive")
	}
	if len(base.Centers) == 0 {
		return nil, errors.New("dynamic: instance has no centers")
	}
	if base.Speed <= 0 {
		return nil, model.ErrNoSpeed
	}
	for i, a := range arrivals {
		if a.Expiry <= 0 {
			return nil, fmt.Errorf("dynamic: arrival %d has non-positive expiry", i)
		}
	}

	// Sort arrivals chronologically without mutating the caller's slice.
	queue := append([]Arrival(nil), arrivals...)
	sort.SliceStable(queue, func(i, j int) bool { return queue[i].ArriveAt < queue[j].ArriveAt })

	type workerState struct {
		loc      geo.Point
		busyTill float64
	}
	workers := make([]workerState, len(base.Workers))
	for i, w := range base.Workers {
		workers[i] = workerState{loc: w.Loc}
	}

	type pendingTask struct {
		loc      geo.Point
		arrived  float64 // absolute arrival time
		deadline float64 // absolute
		reward   float64
	}
	var pending []pendingTask

	res := &Result{TotalArrived: len(arrivals)}
	horizon := cfg.BatchInterval
	if n := len(queue); n > 0 {
		last := queue[n-1].ArriveAt
		for horizon <= last {
			horizon += cfg.BatchInterval
		}
	}
	// One extra batch past the last arrival so late tasks get a chance.
	horizon += cfg.BatchInterval

	qi := 0
	for t := 0.0; t < horizon; t += cfg.BatchInterval {
		// Ingest arrivals up to the batch start.
		for qi < len(queue) && queue[qi].ArriveAt <= t {
			a := queue[qi]
			pending = append(pending, pendingTask{
				loc: a.Loc, arrived: a.ArriveAt, deadline: a.ArriveAt + a.Expiry, reward: a.Reward,
			})
			qi++
		}
		// Expire stale tasks: even an instant pickup could not serve them.
		alive := pending[:0]
		expired := 0
		for _, p := range pending {
			if p.deadline <= t {
				expired++
			} else {
				alive = append(alive, p)
			}
		}
		pending = alive
		res.TotalExpired += expired

		// Idle workers.
		var idle []int
		for i := range workers {
			if workers[i].busyTill <= t {
				idle = append(idle, i)
			}
		}

		stats := BatchStats{Time: t, Pending: len(pending), IdleWorkers: len(idle), Expired: expired}
		if len(pending) > 0 && len(idle) > 0 {
			// Build the batch snapshot: deadlines become relative to t.
			snap := &model.Instance{Speed: base.Speed, Bounds: base.Bounds}
			for _, c := range base.Centers {
				snap.Centers = append(snap.Centers, model.Center{ID: c.ID, Loc: c.Loc})
			}
			for i, p := range pending {
				snap.Tasks = append(snap.Tasks, model.Task{
					ID: model.TaskID(i), Center: model.NoCenter,
					Loc: p.loc, Expiry: p.deadline - t, Reward: p.reward,
				})
			}
			for i, wi := range idle {
				snap.Workers = append(snap.Workers, model.Worker{
					ID: model.WorkerID(i), Home: model.NoCenter,
					Loc: workers[wi].loc, MaxT: base.Workers[wi].MaxT,
				})
			}
			part, _, err := core.Partition(snap)
			if err != nil {
				return nil, fmt.Errorf("dynamic: batch at t=%.2f: %w", t, err)
			}
			rep, err := core.Run(part, core.Config{Method: cfg.Method, Seed: cfg.Seed})
			if err != nil {
				return nil, fmt.Errorf("dynamic: batch at t=%.2f: %w", t, err)
			}
			stats.Assigned = rep.Assigned
			stats.Unfairness = rep.Unfairness
			res.TotalAssigned += rep.Assigned

			// Commit: mark served tasks, advance the busy windows of the
			// workers that got routes.
			served := make([]bool, len(pending))
			for ci := range rep.Solution.PerCenter {
				for _, route := range rep.Solution.PerCenter[ci].Routes {
					if len(route.Tasks) == 0 {
						continue
					}
					w := part.Worker(route.Worker)
					c := part.Center(route.Center)
					times := routing.CompletionTimes(part, w, c, route.Tasks)
					realWorker := idle[int(route.Worker)]
					workers[realWorker].busyTill = t + times[len(times)-1]
					workers[realWorker].loc = part.Task(route.Tasks[len(route.Tasks)-1]).Loc
					for k, tid := range route.Tasks {
						served[int(tid)] = true
						// Latency: absolute completion minus arrival.
						res.latencySum += t + times[k] - pending[int(tid)].arrived
						res.latencyN++
					}
				}
			}
			remaining := pending[:0]
			for i, p := range pending {
				if !served[i] {
					remaining = append(remaining, p)
				}
			}
			pending = remaining
		} else {
			stats.Unfairness = metrics.Unfairness(nil)
		}
		res.Batches = append(res.Batches, stats)
	}
	res.Leftover = len(pending)
	return res, nil
}
