package dynamic_test

import (
	"fmt"
	"math/rand"

	"imtao/internal/core"
	"imtao/internal/dynamic"
	"imtao/internal/geo"
	"imtao/internal/model"
)

// A one-center platform receiving a small Poisson stream of orders,
// re-planned every 15 minutes with Seq-BDC.
func ExampleSimulate() {
	platform := &model.Instance{
		Centers: []model.Center{{ID: 0, Loc: geo.Pt(50, 50)}},
		Workers: []model.Worker{
			{ID: 0, Home: 0, Loc: geo.Pt(45, 50), MaxT: 4},
			{ID: 1, Home: 0, Loc: geo.Pt(55, 50), MaxT: 4},
		},
		Speed:  200,
		Bounds: geo.NewRect(geo.Pt(0, 0), geo.Pt(100, 100)),
	}
	rng := rand.New(rand.NewSource(3))
	arrivals := dynamic.PoissonArrivals(rng, 12, 1.0, 0.75, 1,
		dynamic.UniformSampler(rng, platform.Bounds))

	res, err := dynamic.Simulate(platform, arrivals, dynamic.Config{
		BatchInterval: 0.25,
		Method:        core.Method{Assigner: core.Seq, Collab: core.BDC},
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("conservation:", res.TotalAssigned+res.TotalExpired+res.Leftover == res.TotalArrived)
	fmt.Println("some deliveries made:", res.TotalAssigned > 0)
	// Output:
	// conservation: true
	// some deliveries made: true
}
