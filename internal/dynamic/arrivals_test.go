package dynamic

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"imtao/internal/geo"
)

func bounds() geo.Rect { return geo.NewRect(geo.Pt(0, 0), geo.Pt(100, 100)) }

func TestPoissonArrivalsRate(t *testing.T) {
	rng := rand.New(rand.NewSource(181))
	sampler := UniformSampler(rng, bounds())
	const rate, horizon = 40.0, 10.0
	got := PoissonArrivals(rng, rate, horizon, 1, 1, sampler)
	// Expected count = rate*horizon = 400; allow ±20 %.
	if n := float64(len(got)); math.Abs(n-rate*horizon) > 0.2*rate*horizon {
		t.Fatalf("count %v far from expectation %v", n, rate*horizon)
	}
	for i, a := range got {
		if a.ArriveAt < 0 || a.ArriveAt >= horizon {
			t.Fatalf("arrival %d out of horizon: %v", i, a.ArriveAt)
		}
		if !bounds().Contains(a.Loc) {
			t.Fatalf("arrival %d outside bounds", i)
		}
		if i > 0 && got[i].ArriveAt < got[i-1].ArriveAt {
			t.Fatal("arrivals out of order")
		}
	}
}

func TestPoissonArrivalsDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(182))
	s := UniformSampler(rng, bounds())
	if got := PoissonArrivals(rng, 0, 10, 1, 1, s); got != nil {
		t.Error("zero rate must be empty")
	}
	if got := PoissonArrivals(rng, 10, 0, 1, 1, s); got != nil {
		t.Error("zero horizon must be empty")
	}
}

func TestRushHourArrivalsPeak(t *testing.T) {
	rng := rand.New(rand.NewSource(183))
	s := UniformSampler(rng, bounds())
	got := RushHourArrivals(rng, 10, 200, 2.0, 0.4, 4.0, 1, 1, s)
	if len(got) < 50 {
		t.Fatalf("too few arrivals: %d", len(got))
	}
	// Count arrivals near the peak vs. in the first hour: the peak window
	// must be much denser.
	var nearPeak, early int
	for _, a := range got {
		if math.Abs(a.ArriveAt-2.0) < 0.5 {
			nearPeak++
		}
		if a.ArriveAt < 1.0 {
			early++
		}
	}
	if nearPeak <= 2*early {
		t.Fatalf("peak not pronounced: %d near peak vs %d early", nearPeak, early)
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i].ArriveAt < got[j].ArriveAt }) {
		t.Fatal("arrivals out of order")
	}
}

func TestRushHourArrivalsDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(184))
	s := UniformSampler(rng, bounds())
	if got := RushHourArrivals(rng, 0, 0, 1, 1, 10, 1, 1, s); got != nil {
		t.Error("zero rates must be empty")
	}
	if got := RushHourArrivals(rng, 5, 5, 1, 1, 0, 1, 1, s); got != nil {
		t.Error("zero horizon must be empty")
	}
	// Non-positive sigma falls back to a default rather than dividing by 0.
	if got := RushHourArrivals(rng, 5, 5, 1, 0, 2, 1, 1, s); len(got) == 0 {
		t.Error("sigma fallback failed")
	}
}

func TestGeneratedArrivalsDriveSimulate(t *testing.T) {
	rng := rand.New(rand.NewSource(185))
	in := base()
	sampler := UniformSampler(rng, in.Bounds)
	arrivals := PoissonArrivals(rng, 30, 2, 0.8, 1, sampler)
	res, err := Simulate(in, arrivals, Config{BatchInterval: 0.25, Method: seqBDC()})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalArrived != len(arrivals) {
		t.Fatal("arrival count mismatch")
	}
	if res.TotalAssigned+res.TotalExpired+res.Leftover != res.TotalArrived {
		t.Fatal("conservation broken")
	}
}
