package dynamic

import (
	"math"
	"math/rand"

	"imtao/internal/geo"
)

// Arrival-stream generators for the dynamic extension: a homogeneous
// Poisson process and a rush-hour (inhomogeneous) process. Both draw
// locations from a caller-supplied sampler so they compose with any of the
// workload generators or presets.

// PoissonArrivals generates a homogeneous Poisson arrival stream with the
// given rate (tasks per hour) over [0, horizon) hours. Locations come from
// sample; every task gets the same relative expiry and reward.
func PoissonArrivals(rng *rand.Rand, rate, horizon, expiry, reward float64, sample func() geo.Point) []Arrival {
	if rate <= 0 || horizon <= 0 {
		return nil
	}
	var out []Arrival
	t := 0.0
	for {
		t += rng.ExpFloat64() / rate
		if t >= horizon {
			return out
		}
		out = append(out, Arrival{ArriveAt: t, Loc: sample(), Expiry: expiry, Reward: reward})
	}
}

// RushHourArrivals generates an inhomogeneous Poisson stream whose rate
// follows a Gaussian bump: baseRate plus peakRate·exp(−(t−peakAt)²/2σ²),
// thinned from the max-rate homogeneous process. It models a delivery
// platform's lunch or dinner rush.
func RushHourArrivals(rng *rand.Rand, baseRate, peakRate, peakAt, sigma, horizon, expiry, reward float64, sample func() geo.Point) []Arrival {
	if horizon <= 0 || baseRate < 0 || peakRate < 0 || (baseRate == 0 && peakRate == 0) {
		return nil
	}
	if sigma <= 0 {
		sigma = 0.5
	}
	maxRate := baseRate + peakRate
	rate := func(t float64) float64 {
		d := (t - peakAt) / sigma
		return baseRate + peakRate*math.Exp(-d*d/2)
	}
	var out []Arrival
	t := 0.0
	for {
		t += rng.ExpFloat64() / maxRate
		if t >= horizon {
			return out
		}
		if rng.Float64()*maxRate <= rate(t) {
			out = append(out, Arrival{ArriveAt: t, Loc: sample(), Expiry: expiry, Reward: reward})
		}
	}
}

// UniformSampler returns a sampler drawing uniformly from bounds.
func UniformSampler(rng *rand.Rand, bounds geo.Rect) func() geo.Point {
	return func() geo.Point {
		return geo.Pt(
			bounds.Min.X+rng.Float64()*bounds.Width(),
			bounds.Min.Y+rng.Float64()*bounds.Height(),
		)
	}
}
