package geo

import (
	"math"
	"sort"
)

// Polygon is a simple polygon given by its vertices in order. Voronoi cells
// produced by the partitioner are convex counter-clockwise polygons, but the
// predicates here work for any simple polygon unless stated otherwise.
type Polygon []Point

// Area returns the signed area of the polygon: positive for counter-clockwise
// winding, negative for clockwise.
func (pg Polygon) Area() float64 {
	n := len(pg)
	if n < 3 {
		return 0
	}
	var s float64
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		s += pg[i].Cross(pg[j])
	}
	return s / 2
}

// Centroid returns the area centroid of the polygon. For degenerate polygons
// (fewer than three vertices or zero area) it falls back to the vertex mean.
func (pg Polygon) Centroid() Point {
	n := len(pg)
	if n == 0 {
		return Point{}
	}
	a := pg.Area()
	if n < 3 || math.Abs(a) < Eps {
		var c Point
		for _, p := range pg {
			c = c.Add(p)
		}
		return c.Scale(1 / float64(n))
	}
	var cx, cy float64
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		w := pg[i].Cross(pg[j])
		cx += (pg[i].X + pg[j].X) * w
		cy += (pg[i].Y + pg[j].Y) * w
	}
	k := 1 / (6 * a)
	return Point{cx * k, cy * k}
}

// Contains reports whether p lies inside the polygon (boundary inclusive)
// using the winding-free ray-crossing rule.
func (pg Polygon) Contains(p Point) bool {
	n := len(pg)
	if n < 3 {
		return false
	}
	inside := false
	for i, j := 0, n-1; i < n; j, i = i, i+1 {
		a, b := pg[i], pg[j]
		if (Segment{a, b}).Dist(p) <= Eps {
			return true // on the boundary
		}
		if (a.Y > p.Y) != (b.Y > p.Y) {
			x := a.X + (p.Y-a.Y)/(b.Y-a.Y)*(b.X-a.X)
			if p.X < x {
				inside = !inside
			}
		}
	}
	return inside
}

// Perimeter returns the total boundary length of the polygon.
func (pg Polygon) Perimeter() float64 {
	n := len(pg)
	if n < 2 {
		return 0
	}
	var s float64
	for i := 0; i < n; i++ {
		s += pg[i].Dist(pg[(i+1)%n])
	}
	return s
}

// ClipHalfPlane returns the part of the convex polygon on the side of the
// line through a and b where Orientation(a, b, p) >= 0 (the left side of the
// directed line a->b). This is the Sutherland–Hodgman step used to clip
// Voronoi cells to the bounding box and to intersect half-planes.
func (pg Polygon) ClipHalfPlane(a, b Point) Polygon {
	n := len(pg)
	if n == 0 {
		return nil
	}
	dir := b.Sub(a)
	side := func(p Point) float64 { return dir.Cross(p.Sub(a)) }
	out := make(Polygon, 0, n+2)
	for i := 0; i < n; i++ {
		cur, nxt := pg[i], pg[(i+1)%n]
		sc, sn := side(cur), side(nxt)
		if sc >= -Eps {
			out = append(out, cur)
		}
		if (sc > Eps && sn < -Eps) || (sc < -Eps && sn > Eps) {
			t := sc / (sc - sn)
			out = append(out, cur.Lerp(nxt, t))
		}
	}
	return out
}

// ClipRect returns the intersection of the convex polygon with rectangle r.
func (pg Polygon) ClipRect(r Rect) Polygon {
	out := pg
	out = out.ClipHalfPlane(r.Min, Pt(r.Max.X, r.Min.Y)) // bottom
	out = out.ClipHalfPlane(Pt(r.Max.X, r.Min.Y), r.Max) // right
	out = out.ClipHalfPlane(r.Max, Pt(r.Min.X, r.Max.Y)) // top
	out = out.ClipHalfPlane(Pt(r.Min.X, r.Max.Y), r.Min) // left
	return out
}

// RectPolygon returns r as a counter-clockwise polygon.
func RectPolygon(r Rect) Polygon {
	return Polygon{
		r.Min,
		Pt(r.Max.X, r.Min.Y),
		r.Max,
		Pt(r.Min.X, r.Max.Y),
	}
}

// ConvexHull returns the convex hull of pts in counter-clockwise order using
// Andrew's monotone chain. Collinear points on the hull boundary are dropped.
// The input slice is not modified. Degenerate inputs (0, 1 or 2 points, or
// all-collinear sets) return what remains after duplicate removal.
func ConvexHull(pts []Point) Polygon {
	n := len(pts)
	if n == 0 {
		return nil
	}
	sorted := make([]Point, n)
	copy(sorted, pts)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].X != sorted[j].X {
			return sorted[i].X < sorted[j].X
		}
		return sorted[i].Y < sorted[j].Y
	})
	// Deduplicate.
	uniq := sorted[:1]
	for _, p := range sorted[1:] {
		if !p.Eq(uniq[len(uniq)-1]) {
			uniq = append(uniq, p)
		}
	}
	n = len(uniq)
	if n < 3 {
		return Polygon(uniq)
	}
	hull := make(Polygon, 0, 2*n)
	// Lower hull.
	for _, p := range uniq {
		for len(hull) >= 2 && Orientation(hull[len(hull)-2], hull[len(hull)-1], p) <= 0 {
			hull = hull[:len(hull)-1]
		}
		hull = append(hull, p)
	}
	// Upper hull.
	lower := len(hull) + 1
	for i := n - 2; i >= 0; i-- {
		p := uniq[i]
		for len(hull) >= lower && Orientation(hull[len(hull)-2], hull[len(hull)-1], p) <= 0 {
			hull = hull[:len(hull)-1]
		}
		hull = append(hull, p)
	}
	return hull[:len(hull)-1]
}
