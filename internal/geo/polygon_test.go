package geo

import (
	"math"
	"math/rand"
	"testing"
)

func square(side float64) Polygon {
	return Polygon{Pt(0, 0), Pt(side, 0), Pt(side, side), Pt(0, side)}
}

func TestPolygonArea(t *testing.T) {
	sq := square(2)
	if got := sq.Area(); math.Abs(got-4) > Eps {
		t.Errorf("area = %v", got)
	}
	// Clockwise winding flips the sign.
	cw := Polygon{Pt(0, 0), Pt(0, 2), Pt(2, 2), Pt(2, 0)}
	if got := cw.Area(); math.Abs(got+4) > Eps {
		t.Errorf("cw area = %v", got)
	}
	if got := (Polygon{Pt(0, 0), Pt(1, 1)}).Area(); got != 0 {
		t.Errorf("degenerate area = %v", got)
	}
}

func TestPolygonCentroid(t *testing.T) {
	sq := square(2)
	if got := sq.Centroid(); !got.Eq(Pt(1, 1)) {
		t.Errorf("centroid = %v", got)
	}
	tri := Polygon{Pt(0, 0), Pt(3, 0), Pt(0, 3)}
	if got := tri.Centroid(); !got.Eq(Pt(1, 1)) {
		t.Errorf("triangle centroid = %v", got)
	}
	// Degenerate falls back to vertex mean.
	seg := Polygon{Pt(0, 0), Pt(2, 0)}
	if got := seg.Centroid(); !got.Eq(Pt(1, 0)) {
		t.Errorf("degenerate centroid = %v", got)
	}
}

func TestPolygonContains(t *testing.T) {
	sq := square(4)
	if !sq.Contains(Pt(2, 2)) {
		t.Error("interior point")
	}
	if !sq.Contains(Pt(0, 2)) {
		t.Error("boundary point")
	}
	if !sq.Contains(Pt(0, 0)) {
		t.Error("vertex")
	}
	if sq.Contains(Pt(5, 2)) || sq.Contains(Pt(-1, -1)) {
		t.Error("exterior point")
	}
	// Concave polygon (L-shape).
	l := Polygon{Pt(0, 0), Pt(4, 0), Pt(4, 2), Pt(2, 2), Pt(2, 4), Pt(0, 4)}
	if !l.Contains(Pt(1, 3)) || !l.Contains(Pt(3, 1)) {
		t.Error("L-shape interior")
	}
	if l.Contains(Pt(3, 3)) {
		t.Error("L-shape notch is exterior")
	}
}

func TestPolygonPerimeter(t *testing.T) {
	if got := square(3).Perimeter(); math.Abs(got-12) > Eps {
		t.Errorf("perimeter = %v", got)
	}
	if got := (Polygon{Pt(0, 0)}).Perimeter(); got != 0 {
		t.Errorf("single point perimeter = %v", got)
	}
}

func TestClipHalfPlane(t *testing.T) {
	sq := square(4)
	// Keep left of the upward vertical line x=2 (directed (2,0)->(2,4) keeps x<=2).
	got := sq.ClipHalfPlane(Pt(2, 0), Pt(2, 4))
	if math.Abs(got.Area()-8) > 1e-6 {
		t.Errorf("clipped area = %v, polygon %v", got.Area(), got)
	}
	for _, p := range got {
		if p.X > 2+Eps {
			t.Errorf("vertex %v on wrong side", p)
		}
	}
	// Clipping away everything yields an empty polygon.
	gone := sq.ClipHalfPlane(Pt(-1, 0), Pt(-1, 4)) // keeps x <= -1
	if len(gone) != 0 {
		t.Errorf("expected empty polygon, got %v", gone)
	}
	// Clipping with a line fully outside keeps everything.
	all := sq.ClipHalfPlane(Pt(10, 0), Pt(10, 4)) // keeps x <= 10
	if math.Abs(all.Area()-16) > 1e-6 {
		t.Errorf("expected full polygon, area %v", all.Area())
	}
}

func TestClipRect(t *testing.T) {
	tri := Polygon{Pt(-2, -2), Pt(6, -2), Pt(2, 6)}
	r := NewRect(Pt(0, 0), Pt(4, 4))
	got := tri.ClipRect(r)
	if got.Area() <= 0 || got.Area() > r.Area()+Eps {
		t.Fatalf("clip area out of bounds: %v", got.Area())
	}
	for _, p := range got {
		if !r.Expand(1e-6).Contains(p) {
			t.Errorf("clipped vertex %v outside rect", p)
		}
	}
}

func TestRectPolygon(t *testing.T) {
	r := NewRect(Pt(0, 0), Pt(2, 3))
	pg := RectPolygon(r)
	if math.Abs(pg.Area()-6) > Eps {
		t.Errorf("area = %v", pg.Area())
	}
	if pg.Area() < 0 {
		t.Error("must be CCW")
	}
}

func TestConvexHullSquarePlusInterior(t *testing.T) {
	pts := []Point{
		Pt(0, 0), Pt(4, 0), Pt(4, 4), Pt(0, 4), // hull
		Pt(2, 2), Pt(1, 3), Pt(3, 1), // interior
		Pt(2, 0), // on edge (collinear, dropped)
	}
	h := ConvexHull(pts)
	if len(h) != 4 {
		t.Fatalf("hull size = %d (%v)", len(h), h)
	}
	if math.Abs(h.Area()-16) > Eps {
		t.Errorf("hull area = %v", h.Area())
	}
}

func TestConvexHullDegenerate(t *testing.T) {
	if h := ConvexHull(nil); h != nil {
		t.Errorf("nil input: %v", h)
	}
	if h := ConvexHull([]Point{Pt(1, 1)}); len(h) != 1 {
		t.Errorf("single point: %v", h)
	}
	if h := ConvexHull([]Point{Pt(1, 1), Pt(1, 1), Pt(1, 1)}); len(h) != 1 {
		t.Errorf("duplicates: %v", h)
	}
	h := ConvexHull([]Point{Pt(0, 0), Pt(1, 1), Pt(2, 2), Pt(3, 3)})
	if len(h) != 2 {
		t.Errorf("collinear input hull: %v", h)
	}
}

// Property: every input point is inside (or on) the hull, and the hull is convex.
func TestConvexHullProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 3 + rng.Intn(60)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Pt(rng.Float64()*1000, rng.Float64()*1000)
		}
		h := ConvexHull(pts)
		if len(h) < 3 {
			t.Fatalf("trial %d: degenerate hull from random points", trial)
		}
		if h.Area() <= 0 {
			t.Fatalf("trial %d: hull not CCW (area %v)", trial, h.Area())
		}
		for i := range h {
			a, b, c := h[i], h[(i+1)%len(h)], h[(i+2)%len(h)]
			if Orientation(a, b, c) < 0 {
				t.Fatalf("trial %d: hull has a clockwise turn at %d", trial, i)
			}
		}
		for _, p := range pts {
			if !h.Contains(p) {
				t.Fatalf("trial %d: hull does not contain input point %v", trial, p)
			}
		}
	}
}

// Property: Sutherland–Hodgman clipping never increases area and the result
// stays inside the clip rect.
func TestClipRectProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	r := NewRect(Pt(200, 200), Pt(800, 800))
	for trial := 0; trial < 50; trial++ {
		n := 3 + rng.Intn(10)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Pt(rng.Float64()*1000, rng.Float64()*1000)
		}
		pg := ConvexHull(pts)
		if len(pg) < 3 {
			continue
		}
		clipped := pg.ClipRect(r)
		if a := clipped.Area(); a < -Eps || a > pg.Area()+1e-6 || a > r.Area()+1e-6 {
			t.Fatalf("trial %d: clip area %v vs poly %v rect %v", trial, a, pg.Area(), r.Area())
		}
		for _, p := range clipped {
			if !r.Expand(1e-6).Contains(p) {
				t.Fatalf("trial %d: clipped vertex %v escapes rect", trial, p)
			}
		}
	}
}

// Property: ClipHalfPlane output lies on the kept side and inside the
// original polygon (up to boundary fuzz), and clipping is idempotent.
func TestClipHalfPlaneProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 40; trial++ {
		pts := make([]Point, 4+rng.Intn(8))
		for i := range pts {
			pts[i] = Pt(rng.Float64()*100, rng.Float64()*100)
		}
		pg := ConvexHull(pts)
		if len(pg) < 3 {
			continue
		}
		a := Pt(rng.Float64()*100, rng.Float64()*100)
		b := Pt(rng.Float64()*100, rng.Float64()*100)
		if a.Eq(b) {
			continue
		}
		clipped := pg.ClipHalfPlane(a, b)
		for _, p := range clipped {
			if Orientation(a, b, p) < 0 && (Segment{a, b}).Dist(p) > 1e-6 {
				t.Fatalf("trial %d: vertex %v on the cut side", trial, p)
			}
		}
		if clipped.Area() > pg.Area()+1e-6 {
			t.Fatalf("trial %d: clip grew the polygon", trial)
		}
		again := clipped.ClipHalfPlane(a, b)
		if math.Abs(again.Area()-clipped.Area()) > 1e-6 {
			t.Fatalf("trial %d: clipping is not idempotent: %v vs %v",
				trial, clipped.Area(), again.Area())
		}
	}
}
