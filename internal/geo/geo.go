// Package geo provides the 2-D geometric primitives used throughout the
// IMTAO reproduction: points, rectangles, segments, and the distance
// arithmetic that the spatial-crowdsourcing model is built on.
//
// All coordinates are plain float64 Euclidean coordinates. The paper's
// synthetic dataset lives in [0,2000]^2 and its gMission-like dataset in an
// arbitrary bounded planar region, so a flat Euclidean model is exactly what
// the original system uses.
package geo

import (
	"fmt"
	"math"
)

// Eps is the tolerance used for approximate floating-point comparisons in
// geometric predicates. It is deliberately coarse relative to machine epsilon
// because inputs are city-scale coordinates where nanometre precision is
// meaningless.
const Eps = 1e-9

// Point is a location in the plane.
type Point struct {
	X, Y float64
}

// Pt is shorthand for constructing a Point.
func Pt(x, y float64) Point { return Point{X: x, Y: y} }

// String renders the point as "(x, y)" with compact precision.
func (p Point) String() string { return fmt.Sprintf("(%.6g, %.6g)", p.X, p.Y) }

// Add returns p + q component-wise.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p - q component-wise.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by k.
func (p Point) Scale(k float64) Point { return Point{p.X * k, p.Y * k} }

// Dot returns the dot product of p and q treated as vectors.
func (p Point) Dot(q Point) float64 { return p.X*q.X + p.Y*q.Y }

// Cross returns the z-component of the cross product of p and q treated as
// vectors. Positive means q is counter-clockwise from p.
func (p Point) Cross(q Point) float64 { return p.X*q.Y - p.Y*q.X }

// Norm returns the Euclidean length of p treated as a vector.
func (p Point) Norm() float64 { return math.Hypot(p.X, p.Y) }

// Norm2 returns the squared Euclidean length of p treated as a vector.
func (p Point) Norm2() float64 { return p.X*p.X + p.Y*p.Y }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 { return math.Hypot(p.X-q.X, p.Y-q.Y) }

// Dist2 returns the squared Euclidean distance between p and q. It is the
// comparison key of choice in nearest-neighbour loops because it avoids the
// square root.
func (p Point) Dist2(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Eq reports whether p and q coincide within Eps in both coordinates.
func (p Point) Eq(q Point) bool {
	return math.Abs(p.X-q.X) <= Eps && math.Abs(p.Y-q.Y) <= Eps
}

// Lerp returns the linear interpolation p + t*(q-p).
func (p Point) Lerp(q Point, t float64) Point {
	return Point{p.X + t*(q.X-p.X), p.Y + t*(q.Y-p.Y)}
}

// Mid returns the midpoint of p and q.
func Mid(p, q Point) Point { return Point{(p.X + q.X) / 2, (p.Y + q.Y) / 2} }

// Orientation classifies the turn a->b->c.
// It returns +1 for counter-clockwise, -1 for clockwise and 0 for collinear
// (within Eps scaled by the magnitudes involved).
func Orientation(a, b, c Point) int {
	v := b.Sub(a).Cross(c.Sub(a))
	scale := math.Max(1, math.Max(b.Sub(a).Norm(), c.Sub(a).Norm()))
	switch {
	case v > Eps*scale:
		return 1
	case v < -Eps*scale:
		return -1
	default:
		return 0
	}
}

// Rect is an axis-aligned rectangle with Min at the lower-left corner and Max
// at the upper-right corner.
type Rect struct {
	Min, Max Point
}

// NewRect returns the rectangle spanned by two arbitrary corner points.
func NewRect(a, b Point) Rect {
	return Rect{
		Min: Point{math.Min(a.X, b.X), math.Min(a.Y, b.Y)},
		Max: Point{math.Max(a.X, b.X), math.Max(a.Y, b.Y)},
	}
}

// Width returns the horizontal extent of r.
func (r Rect) Width() float64 { return r.Max.X - r.Min.X }

// Height returns the vertical extent of r.
func (r Rect) Height() float64 { return r.Max.Y - r.Min.Y }

// Area returns the area of r.
func (r Rect) Area() float64 { return r.Width() * r.Height() }

// Center returns the center point of r.
func (r Rect) Center() Point { return Mid(r.Min, r.Max) }

// Contains reports whether p lies inside r (boundary inclusive).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Min.X-Eps && p.X <= r.Max.X+Eps &&
		p.Y >= r.Min.Y-Eps && p.Y <= r.Max.Y+Eps
}

// Intersects reports whether r and s overlap (boundary touching counts).
func (r Rect) Intersects(s Rect) bool {
	return r.Min.X <= s.Max.X+Eps && s.Min.X <= r.Max.X+Eps &&
		r.Min.Y <= s.Max.Y+Eps && s.Min.Y <= r.Max.Y+Eps
}

// Expand returns r grown by d on every side. Negative d shrinks.
func (r Rect) Expand(d float64) Rect {
	return Rect{
		Min: Point{r.Min.X - d, r.Min.Y - d},
		Max: Point{r.Max.X + d, r.Max.Y + d},
	}
}

// Dist2 returns the squared distance from p to the closest point of r
// (zero when p is inside). Used for KD-tree pruning.
func (r Rect) Dist2(p Point) float64 {
	dx := math.Max(0, math.Max(r.Min.X-p.X, p.X-r.Max.X))
	dy := math.Max(0, math.Max(r.Min.Y-p.Y, p.Y-r.Max.Y))
	return dx*dx + dy*dy
}

// Union returns the smallest rectangle containing both r and s.
func (r Rect) Union(s Rect) Rect {
	return Rect{
		Min: Point{math.Min(r.Min.X, s.Min.X), math.Min(r.Min.Y, s.Min.Y)},
		Max: Point{math.Max(r.Max.X, s.Max.X), math.Max(r.Max.Y, s.Max.Y)},
	}
}

// BoundingRect returns the axis-aligned bounding rectangle of pts.
// It panics if pts is empty; callers always have at least one point.
func BoundingRect(pts []Point) Rect {
	if len(pts) == 0 {
		panic("geo: BoundingRect of empty slice")
	}
	r := Rect{Min: pts[0], Max: pts[0]}
	for _, p := range pts[1:] {
		r.Min.X = math.Min(r.Min.X, p.X)
		r.Min.Y = math.Min(r.Min.Y, p.Y)
		r.Max.X = math.Max(r.Max.X, p.X)
		r.Max.Y = math.Max(r.Max.Y, p.Y)
	}
	return r
}

// Segment is a directed line segment from A to B.
type Segment struct {
	A, B Point
}

// Len returns the segment's length.
func (s Segment) Len() float64 { return s.A.Dist(s.B) }

// Midpoint returns the segment's midpoint.
func (s Segment) Midpoint() Point { return Mid(s.A, s.B) }

// ClosestPoint returns the point on s closest to p.
func (s Segment) ClosestPoint(p Point) Point {
	d := s.B.Sub(s.A)
	l2 := d.Norm2()
	if l2 == 0 {
		return s.A
	}
	t := p.Sub(s.A).Dot(d) / l2
	t = math.Max(0, math.Min(1, t))
	return s.A.Lerp(s.B, t)
}

// Dist returns the distance from p to segment s.
func (s Segment) Dist(p Point) float64 { return p.Dist(s.ClosestPoint(p)) }

// Intersect reports whether segments s and t properly intersect or touch,
// and returns the intersection point when they cross at a single point.
// For overlapping collinear segments it reports ok=true with the midpoint of
// the overlap region's first shared endpoint — collaboration code only needs
// the boolean.
func (s Segment) Intersect(t Segment) (Point, bool) {
	r := s.B.Sub(s.A)
	d := t.B.Sub(t.A)
	denom := r.Cross(d)
	diff := t.A.Sub(s.A)
	if math.Abs(denom) < Eps {
		// Parallel. Collinear overlap check.
		if math.Abs(diff.Cross(r)) > Eps {
			return Point{}, false
		}
		// Collinear: project t endpoints onto s.
		l2 := r.Norm2()
		if l2 == 0 {
			if s.A.Eq(t.A) || s.A.Eq(t.B) {
				return s.A, true
			}
			return Point{}, false
		}
		t0 := diff.Dot(r) / l2
		t1 := t.B.Sub(s.A).Dot(r) / l2
		lo, hi := math.Min(t0, t1), math.Max(t0, t1)
		if hi < -Eps || lo > 1+Eps {
			return Point{}, false
		}
		tm := math.Max(0, lo)
		return s.A.Lerp(s.B, math.Min(1, tm)), true
	}
	u := diff.Cross(d) / denom
	v := diff.Cross(r) / denom
	if u < -Eps || u > 1+Eps || v < -Eps || v > 1+Eps {
		return Point{}, false
	}
	return s.A.Lerp(s.B, u), true
}

// Circumcenter returns the center of the circle through a, b and c, and
// reports false if the points are (nearly) collinear.
func Circumcenter(a, b, c Point) (Point, bool) {
	d := 2 * (a.X*(b.Y-c.Y) + b.X*(c.Y-a.Y) + c.X*(a.Y-b.Y))
	scale := math.Max(1, a.Norm()+b.Norm()+c.Norm())
	if math.Abs(d) < Eps*scale {
		return Point{}, false
	}
	a2, b2, c2 := a.Norm2(), b.Norm2(), c.Norm2()
	ux := (a2*(b.Y-c.Y) + b2*(c.Y-a.Y) + c2*(a.Y-b.Y)) / d
	uy := (a2*(c.X-b.X) + b2*(a.X-c.X) + c2*(b.X-a.X)) / d
	return Point{ux, uy}, true
}

// InCircumcircle reports whether p lies strictly inside the circumcircle of
// the counter-clockwise triangle (a, b, c). It is the incircle predicate at
// the heart of Delaunay triangulation.
func InCircumcircle(a, b, c, p Point) bool {
	ax, ay := a.X-p.X, a.Y-p.Y
	bx, by := b.X-p.X, b.Y-p.Y
	cx, cy := c.X-p.X, c.Y-p.Y
	det := (ax*ax+ay*ay)*(bx*cy-cx*by) -
		(bx*bx+by*by)*(ax*cy-cx*ay) +
		(cx*cx+cy*cy)*(ax*by-bx*ay)
	return det > Eps
}
