package geo

import (
	"math"
	"testing"
)

// Fuzz targets exercise the geometric predicates with adversarial float
// inputs. Under plain `go test` the seed corpus runs as regular tests; use
// `go test -fuzz FuzzX ./internal/geo` for continuous fuzzing.

func sane(vs ...float64) bool {
	for _, v := range vs {
		if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e7 {
			return false
		}
	}
	return true
}

func FuzzSegmentIntersectSymmetry(f *testing.F) {
	f.Add(0.0, 0.0, 4.0, 4.0, 0.0, 4.0, 4.0, 0.0)
	f.Add(1.0, 1.0, 2.0, 2.0, 3.0, 3.0, 4.0, 4.0)
	f.Add(0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 1.0, 1.0)
	f.Fuzz(func(t *testing.T, ax, ay, bx, by, cx, cy, dx, dy float64) {
		if !sane(ax, ay, bx, by, cx, cy, dx, dy) {
			t.Skip()
		}
		s := Segment{Pt(ax, ay), Pt(bx, by)}
		u := Segment{Pt(cx, cy), Pt(dx, dy)}
		_, ok1 := s.Intersect(u)
		_, ok2 := u.Intersect(s)
		if ok1 != ok2 {
			t.Fatalf("intersection not symmetric: %v vs %v for %v %v", ok1, ok2, s, u)
		}
		if ok1 {
			p, _ := s.Intersect(u)
			// The reported point must lie (approximately) on both segments.
			scale := 1 + s.Len() + u.Len()
			if s.Dist(p) > 1e-6*scale || u.Dist(p) > 1e-6*scale {
				t.Fatalf("intersection point %v off the segments (%v, %v)", p, s.Dist(p), u.Dist(p))
			}
		}
	})
}

func FuzzClosestPointIsClosest(f *testing.F) {
	f.Add(0.0, 0.0, 10.0, 0.0, 5.0, 3.0)
	f.Add(1.0, 1.0, 1.0, 1.0, 0.0, 0.0)
	f.Fuzz(func(t *testing.T, ax, ay, bx, by, px, py float64) {
		if !sane(ax, ay, bx, by, px, py) {
			t.Skip()
		}
		s := Segment{Pt(ax, ay), Pt(bx, by)}
		p := Pt(px, py)
		cp := s.ClosestPoint(p)
		d := p.Dist(cp)
		// No sampled point on the segment may be closer.
		for i := 0; i <= 10; i++ {
			q := s.A.Lerp(s.B, float64(i)/10)
			if p.Dist(q) < d-1e-9*(1+d) {
				t.Fatalf("sample %v closer than ClosestPoint %v", q, cp)
			}
		}
	})
}

func FuzzConvexHullContainsInput(f *testing.F) {
	f.Add(0.0, 0.0, 4.0, 0.0, 4.0, 4.0, 0.0, 4.0, 2.0, 2.0)
	f.Add(1.0, 1.0, 2.0, 2.0, 3.0, 3.0, 4.0, 4.0, 5.0, 5.0)
	f.Fuzz(func(t *testing.T, x1, y1, x2, y2, x3, y3, x4, y4, x5, y5 float64) {
		if !sane(x1, y1, x2, y2, x3, y3, x4, y4, x5, y5) {
			t.Skip()
		}
		pts := []Point{Pt(x1, y1), Pt(x2, y2), Pt(x3, y3), Pt(x4, y4), Pt(x5, y5)}
		h := ConvexHull(pts)
		if len(h) < 3 {
			return // degenerate input
		}
		if h.Area() <= 0 {
			t.Fatalf("hull not CCW: area %v", h.Area())
		}
		// Containment with scale-aware slack.
		scale := 1.0
		for _, p := range pts {
			scale = math.Max(scale, p.Norm())
		}
		grown := make(Polygon, len(h))
		c := h.Centroid()
		for i, p := range h {
			grown[i] = c.Add(p.Sub(c).Scale(1 + 1e-6))
		}
		for _, p := range pts {
			if !grown.Contains(p) {
				t.Fatalf("hull (area %v) misses input point %v at scale %v", h.Area(), p, scale)
			}
		}
	})
}
