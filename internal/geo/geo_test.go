package geo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPointArithmetic(t *testing.T) {
	p, q := Pt(1, 2), Pt(3, -4)
	if got := p.Add(q); got != Pt(4, -2) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Sub(q); got != Pt(-2, 6) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Scale(2); got != Pt(2, 4) {
		t.Errorf("Scale = %v", got)
	}
	if got := p.Dot(q); got != 3-8 {
		t.Errorf("Dot = %v", got)
	}
	if got := p.Cross(q); got != -4-6 {
		t.Errorf("Cross = %v", got)
	}
}

func TestDist(t *testing.T) {
	cases := []struct {
		a, b Point
		want float64
	}{
		{Pt(0, 0), Pt(3, 4), 5},
		{Pt(1, 1), Pt(1, 1), 0},
		{Pt(-1, 0), Pt(1, 0), 2},
	}
	for _, c := range cases {
		if got := c.a.Dist(c.b); math.Abs(got-c.want) > Eps {
			t.Errorf("Dist(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
		if got := c.a.Dist2(c.b); math.Abs(got-c.want*c.want) > Eps {
			t.Errorf("Dist2(%v,%v) = %v, want %v", c.a, c.b, got, c.want*c.want)
		}
	}
}

func TestDist2MatchesDist(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		a, b := Pt(clamp(ax), clamp(ay)), Pt(clamp(bx), clamp(by))
		d := a.Dist(b)
		return math.Abs(a.Dist2(b)-d*d) <= 1e-6*(1+d*d)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// clamp keeps quick-generated values within city scale so floating error
// bounds stay meaningful.
func clamp(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return math.Mod(v, 1e4)
}

func TestOrientation(t *testing.T) {
	a, b := Pt(0, 0), Pt(1, 0)
	if Orientation(a, b, Pt(1, 1)) != 1 {
		t.Error("expected CCW")
	}
	if Orientation(a, b, Pt(1, -1)) != -1 {
		t.Error("expected CW")
	}
	if Orientation(a, b, Pt(2, 0)) != 0 {
		t.Error("expected collinear")
	}
}

func TestLerpMid(t *testing.T) {
	a, b := Pt(0, 0), Pt(10, 20)
	if got := a.Lerp(b, 0.5); !got.Eq(Mid(a, b)) {
		t.Errorf("Lerp(0.5) = %v, Mid = %v", got, Mid(a, b))
	}
	if got := a.Lerp(b, 0); !got.Eq(a) {
		t.Errorf("Lerp(0) = %v", got)
	}
	if got := a.Lerp(b, 1); !got.Eq(b) {
		t.Errorf("Lerp(1) = %v", got)
	}
}

func TestRectBasics(t *testing.T) {
	r := NewRect(Pt(4, 5), Pt(1, 2)) // corners in arbitrary order
	if r.Min != Pt(1, 2) || r.Max != Pt(4, 5) {
		t.Fatalf("NewRect normalisation failed: %+v", r)
	}
	if r.Width() != 3 || r.Height() != 3 {
		t.Errorf("width/height = %v/%v", r.Width(), r.Height())
	}
	if r.Area() != 9 {
		t.Errorf("area = %v", r.Area())
	}
	if !r.Contains(Pt(2, 3)) || !r.Contains(Pt(1, 2)) || r.Contains(Pt(0, 0)) {
		t.Error("Contains misbehaves")
	}
	if !r.Contains(r.Center()) {
		t.Error("center must be inside")
	}
}

func TestRectIntersects(t *testing.T) {
	a := NewRect(Pt(0, 0), Pt(2, 2))
	b := NewRect(Pt(1, 1), Pt(3, 3))
	c := NewRect(Pt(5, 5), Pt(6, 6))
	d := NewRect(Pt(2, 0), Pt(4, 2)) // touching edge
	if !a.Intersects(b) || !b.Intersects(a) {
		t.Error("overlapping rects must intersect")
	}
	if a.Intersects(c) {
		t.Error("disjoint rects must not intersect")
	}
	if !a.Intersects(d) {
		t.Error("touching rects count as intersecting")
	}
}

func TestRectDist2(t *testing.T) {
	r := NewRect(Pt(0, 0), Pt(2, 2))
	if got := r.Dist2(Pt(1, 1)); got != 0 {
		t.Errorf("inside dist2 = %v", got)
	}
	if got := r.Dist2(Pt(5, 2)); got != 9 {
		t.Errorf("side dist2 = %v", got)
	}
	if got := r.Dist2(Pt(5, 6)); got != 9+16 {
		t.Errorf("corner dist2 = %v", got)
	}
}

func TestRectUnionExpand(t *testing.T) {
	a := NewRect(Pt(0, 0), Pt(1, 1))
	b := NewRect(Pt(2, 2), Pt(3, 3))
	u := a.Union(b)
	if u.Min != Pt(0, 0) || u.Max != Pt(3, 3) {
		t.Errorf("union = %+v", u)
	}
	e := a.Expand(1)
	if e.Min != Pt(-1, -1) || e.Max != Pt(2, 2) {
		t.Errorf("expand = %+v", e)
	}
}

func TestBoundingRect(t *testing.T) {
	pts := []Point{Pt(3, 1), Pt(-1, 4), Pt(2, -2)}
	r := BoundingRect(pts)
	if r.Min != Pt(-1, -2) || r.Max != Pt(3, 4) {
		t.Errorf("bounding rect = %+v", r)
	}
	for _, p := range pts {
		if !r.Contains(p) {
			t.Errorf("bounding rect must contain %v", p)
		}
	}
}

func TestBoundingRectPanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on empty input")
		}
	}()
	BoundingRect(nil)
}

func TestSegmentClosestPoint(t *testing.T) {
	s := Segment{Pt(0, 0), Pt(10, 0)}
	cases := []struct {
		p, want Point
	}{
		{Pt(5, 3), Pt(5, 0)},
		{Pt(-2, 1), Pt(0, 0)},
		{Pt(12, -1), Pt(10, 0)},
	}
	for _, c := range cases {
		if got := s.ClosestPoint(c.p); !got.Eq(c.want) {
			t.Errorf("ClosestPoint(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if got := s.Dist(Pt(5, 3)); math.Abs(got-3) > Eps {
		t.Errorf("Dist = %v", got)
	}
	// Degenerate zero-length segment.
	z := Segment{Pt(1, 1), Pt(1, 1)}
	if got := z.ClosestPoint(Pt(5, 5)); !got.Eq(Pt(1, 1)) {
		t.Errorf("degenerate closest = %v", got)
	}
}

func TestSegmentIntersect(t *testing.T) {
	s := Segment{Pt(0, 0), Pt(4, 4)}
	u := Segment{Pt(0, 4), Pt(4, 0)}
	p, ok := s.Intersect(u)
	if !ok || !p.Eq(Pt(2, 2)) {
		t.Errorf("crossing: got %v, %v", p, ok)
	}
	// Parallel, non-collinear.
	if _, ok := s.Intersect(Segment{Pt(0, 1), Pt(4, 5)}); ok {
		t.Error("parallel segments must not intersect")
	}
	// Disjoint on the same line.
	if _, ok := s.Intersect(Segment{Pt(5, 5), Pt(6, 6)}); ok {
		t.Error("disjoint collinear segments must not intersect")
	}
	// Touching at an endpoint.
	if _, ok := s.Intersect(Segment{Pt(4, 4), Pt(8, 0)}); !ok {
		t.Error("touching segments must intersect")
	}
	// Collinear overlap.
	if _, ok := s.Intersect(Segment{Pt(2, 2), Pt(6, 6)}); !ok {
		t.Error("overlapping collinear segments must intersect")
	}
}

func TestCircumcenter(t *testing.T) {
	c, ok := Circumcenter(Pt(0, 0), Pt(2, 0), Pt(0, 2))
	if !ok || !c.Eq(Pt(1, 1)) {
		t.Errorf("circumcenter = %v, ok=%v", c, ok)
	}
	if _, ok := Circumcenter(Pt(0, 0), Pt(1, 1), Pt(2, 2)); ok {
		t.Error("collinear points have no circumcenter")
	}
}

func TestCircumcenterEquidistant(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		a := Pt(rng.Float64()*1000, rng.Float64()*1000)
		b := Pt(rng.Float64()*1000, rng.Float64()*1000)
		c := Pt(rng.Float64()*1000, rng.Float64()*1000)
		ctr, ok := Circumcenter(a, b, c)
		if !ok {
			continue
		}
		da, db, dc := ctr.Dist(a), ctr.Dist(b), ctr.Dist(c)
		if math.Abs(da-db) > 1e-6*da || math.Abs(da-dc) > 1e-6*da {
			t.Fatalf("circumcenter not equidistant: %v %v %v", da, db, dc)
		}
	}
}

func TestInCircumcircle(t *testing.T) {
	a, b, c := Pt(0, 0), Pt(4, 0), Pt(0, 4) // CCW, circumcircle centered (2,2) r=2√2
	if !InCircumcircle(a, b, c, Pt(2, 2)) {
		t.Error("center must be inside")
	}
	if InCircumcircle(a, b, c, Pt(10, 10)) {
		t.Error("far point must be outside")
	}
	if InCircumcircle(a, b, c, Pt(4, 4)) {
		t.Error("point on circle must not be strictly inside")
	}
}
