// Package skills implements the multi-skilled extension the paper's
// discussion (§V-E) names as future work: tasks demand skill sets and only
// workers possessing every required skill may deliver them. The package
// provides a skill-aware variant of the sequential task assignment
// (Algorithm 2 with a compatibility filter on the nearest-task query) and a
// compatibility report used to detect unservable tasks up front.
package skills

import (
	"fmt"
	"math/bits"
	"sort"

	"imtao/internal/index"
	"imtao/internal/model"
)

// Set is a bitmask of up to 64 skills.
type Set uint64

// Of builds a Set from skill indices (0–63).
func Of(skills ...int) Set {
	var s Set
	for _, k := range skills {
		s |= 1 << uint(k)
	}
	return s
}

// Has reports whether s contains every skill in req.
func (s Set) Has(req Set) bool { return s&req == req }

// Count returns the number of skills in the set.
func (s Set) Count() int { return bits.OnesCount64(uint64(s)) }

// Profile attaches skill information to an instance: Required[t] is the
// skill set task t demands; Owned[w] is the skill set worker w possesses.
// Missing entries default to zero (no requirement / no skills).
type Profile struct {
	Required map[model.TaskID]Set
	Owned    map[model.WorkerID]Set
}

// NewProfile returns an empty profile.
func NewProfile() *Profile {
	return &Profile{
		Required: make(map[model.TaskID]Set),
		Owned:    make(map[model.WorkerID]Set),
	}
}

// Compatible reports whether worker w may deliver task t.
func (p *Profile) Compatible(w model.WorkerID, t model.TaskID) bool {
	return p.Owned[w].Has(p.Required[t])
}

// Unservable returns the tasks of the given set no worker in the given set
// can deliver, regardless of geometry — a planning red flag.
func (p *Profile) Unservable(tasks []model.TaskID, workers []model.WorkerID) []model.TaskID {
	var out []model.TaskID
	for _, t := range tasks {
		ok := false
		for _, w := range workers {
			if p.Compatible(w, t) {
				ok = true
				break
			}
		}
		if !ok {
			out = append(out, t)
		}
	}
	return out
}

// Result mirrors assign.Result for the skill-aware assigner.
type Result struct {
	Routes      []model.Route
	LeftWorkers []model.WorkerID
	LeftTasks   []model.TaskID
}

// AssignedCount returns the number of tasks assigned.
func (r *Result) AssignedCount() int {
	n := 0
	for _, rt := range r.Routes {
		n += len(rt.Tasks)
	}
	return n
}

// Sequential is Algorithm 2 with skill compatibility: each worker greedily
// takes the nearest unassigned task it is qualified for, subject to the
// usual capacity and deadline constraints.
func Sequential(in *model.Instance, c *model.Center, workers []model.WorkerID, tasks []model.TaskID, prof *Profile) Result {
	res := Result{}
	if len(workers) == 0 {
		res.LeftTasks = append([]model.TaskID(nil), tasks...)
		return res
	}
	order := append([]model.WorkerID(nil), workers...)
	sort.Slice(order, func(i, j int) bool {
		di := in.Worker(order[i]).Loc.Dist2(c.Loc)
		dj := in.Worker(order[j]).Loc.Dist2(c.Loc)
		if di != dj {
			return di > dj // marginal first, as in the paper
		}
		return order[i] < order[j]
	})

	items := make([]index.Item, len(tasks))
	for i, id := range tasks {
		items[i] = index.Item{ID: int(id), Point: in.Task(id).Loc}
	}
	tree := index.NewKDTree(items)
	assigned := make(map[model.TaskID]bool, len(tasks))

	for _, wid := range order {
		w := in.Worker(wid)
		route := model.Route{Worker: wid, Center: c.ID}
		t := in.TravelTime(w.Loc, c.Loc)
		cur := c.Loc
		for len(route.Tasks) < w.MaxT {
			item, ok := tree.Nearest(cur, func(it index.Item) bool {
				tid := model.TaskID(it.ID)
				return !assigned[tid] && prof.Compatible(wid, tid)
			})
			if !ok {
				break
			}
			tid := model.TaskID(item.ID)
			task := in.Task(tid)
			arrive := t + in.TravelTime(cur, task.Loc)
			if arrive > task.Expiry+1e-9 {
				break
			}
			assigned[tid] = true
			route.Tasks = append(route.Tasks, tid)
			t = arrive
			cur = task.Loc
		}
		if len(route.Tasks) == 0 {
			res.LeftWorkers = append(res.LeftWorkers, wid)
		} else {
			res.Routes = append(res.Routes, route)
		}
	}
	for _, id := range tasks {
		if !assigned[id] {
			res.LeftTasks = append(res.LeftTasks, id)
		}
	}
	sort.Slice(res.LeftTasks, func(i, j int) bool { return res.LeftTasks[i] < res.LeftTasks[j] })
	sort.Slice(res.LeftWorkers, func(i, j int) bool { return res.LeftWorkers[i] < res.LeftWorkers[j] })
	return res
}

// String renders a Set like {0,3,7}.
func (s Set) String() string {
	out := "{"
	first := true
	for k := 0; k < 64; k++ {
		if s&(1<<uint(k)) != 0 {
			if !first {
				out += ","
			}
			out += fmt.Sprintf("%d", k)
			first = false
		}
	}
	return out + "}"
}
