package skills

import (
	"math/rand"
	"testing"

	"imtao/internal/assign"
	"imtao/internal/collab"
	"imtao/internal/geo"
	"imtao/internal/model"
	"imtao/internal/routing"
)

func TestSetOperations(t *testing.T) {
	s := Of(0, 3, 7)
	if !s.Has(Of(0)) || !s.Has(Of(3, 7)) || !s.Has(0) {
		t.Error("Has failed on subsets")
	}
	if s.Has(Of(1)) || s.Has(Of(0, 1)) {
		t.Error("Has accepted missing skills")
	}
	if s.Count() != 3 {
		t.Errorf("Count = %d", s.Count())
	}
	if got := s.String(); got != "{0,3,7}" {
		t.Errorf("String = %q", got)
	}
	if got := Of().String(); got != "{}" {
		t.Errorf("empty String = %q", got)
	}
}

func scene(workerLocs, taskLocs []geo.Point) *model.Instance {
	in := &model.Instance{
		Centers: []model.Center{{ID: 0, Loc: geo.Pt(0, 0)}},
		Speed:   1,
		Bounds:  geo.NewRect(geo.Pt(-500, -500), geo.Pt(500, 500)),
	}
	for i, l := range taskLocs {
		in.Tasks = append(in.Tasks, model.Task{ID: model.TaskID(i), Center: 0, Loc: l, Expiry: 1000, Reward: 1})
		in.Centers[0].Tasks = append(in.Centers[0].Tasks, model.TaskID(i))
	}
	for i, l := range workerLocs {
		in.Workers = append(in.Workers, model.Worker{ID: model.WorkerID(i), Home: 0, Loc: l, MaxT: 4})
		in.Centers[0].Workers = append(in.Centers[0].Workers, model.WorkerID(i))
	}
	return in
}

func TestProfileCompatible(t *testing.T) {
	p := NewProfile()
	p.Required[0] = Of(1)
	p.Owned[0] = Of(1, 2)
	if !p.Compatible(0, 0) {
		t.Error("qualified worker rejected")
	}
	p.Owned[1] = Of(2)
	if p.Compatible(1, 0) {
		t.Error("unqualified worker accepted")
	}
	// No requirement → anyone qualifies, even with no skills.
	if !p.Compatible(2, 1) {
		t.Error("skill-free task must accept anyone")
	}
}

func TestUnservable(t *testing.T) {
	p := NewProfile()
	p.Required[0] = Of(5)
	p.Required[1] = 0
	p.Owned[0] = Of(1)
	got := p.Unservable([]model.TaskID{0, 1}, []model.WorkerID{0})
	if len(got) != 1 || got[0] != 0 {
		t.Fatalf("Unservable = %v", got)
	}
}

func TestSequentialRespectsSkills(t *testing.T) {
	// Two tasks: task 0 needs the "fridge van" skill, task 1 needs nothing.
	// Worker 0 has the skill, worker 1 does not. Task 0 is nearest to both.
	in := scene(
		[]geo.Point{geo.Pt(0, 1), geo.Pt(1, 0)},
		[]geo.Point{geo.Pt(2, 0), geo.Pt(50, 0)},
	)
	prof := NewProfile()
	prof.Required[0] = Of(0)
	prof.Owned[0] = Of(0)

	res := Sequential(in, in.Center(0), in.Centers[0].Workers, in.Centers[0].Tasks, prof)
	if res.AssignedCount() != 2 {
		t.Fatalf("assigned %d, want 2", res.AssignedCount())
	}
	for _, r := range res.Routes {
		for _, tid := range r.Tasks {
			if !prof.Compatible(r.Worker, tid) {
				t.Fatalf("worker %d delivered task %d without the skills", r.Worker, tid)
			}
		}
	}
}

func TestSequentialSkillsBlockEverything(t *testing.T) {
	in := scene([]geo.Point{geo.Pt(0, 1)}, []geo.Point{geo.Pt(2, 0)})
	prof := NewProfile()
	prof.Required[0] = Of(9) // nobody has skill 9
	res := Sequential(in, in.Center(0), in.Centers[0].Workers, in.Centers[0].Tasks, prof)
	if res.AssignedCount() != 0 {
		t.Fatal("unqualified assignment happened")
	}
	if len(res.LeftWorkers) != 1 || len(res.LeftTasks) != 1 {
		t.Fatalf("leftovers wrong: %+v", res)
	}
}

func TestSequentialNoSkillsMatchesPlain(t *testing.T) {
	// With an empty profile the skill-aware assigner must behave like a
	// plain greedy nearest assigner: everything reachable gets assigned.
	rng := rand.New(rand.NewSource(91))
	wl := make([]geo.Point, 4)
	tl := make([]geo.Point, 15)
	for i := range wl {
		wl[i] = geo.Pt(rng.Float64()*100-50, rng.Float64()*100-50)
	}
	for i := range tl {
		tl[i] = geo.Pt(rng.Float64()*100-50, rng.Float64()*100-50)
	}
	in := scene(wl, tl)
	res := Sequential(in, in.Center(0), in.Centers[0].Workers, in.Centers[0].Tasks, NewProfile())
	if res.AssignedCount() != 15 {
		t.Fatalf("assigned %d, want all 15 (capacity 4×4=16 ≥ 15, no deadline pressure)", res.AssignedCount())
	}
	for _, r := range res.Routes {
		if !routing.OrderFeasible(in, in.Worker(r.Worker), in.Center(0), r.Tasks) {
			t.Fatalf("infeasible route %v", r)
		}
	}
}

func TestSequentialEmptyWorkers(t *testing.T) {
	in := scene(nil, []geo.Point{geo.Pt(1, 0)})
	res := Sequential(in, in.Center(0), nil, in.Centers[0].Tasks, NewProfile())
	if res.AssignedCount() != 0 || len(res.LeftTasks) != 1 {
		t.Fatalf("empty workers: %+v", res)
	}
}

// Property: routes never violate skills, capacity or deadlines, and task
// conservation holds.
func TestSequentialSkillInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	for trial := 0; trial < 30; trial++ {
		nw, nt := 1+rng.Intn(6), 1+rng.Intn(20)
		wl := make([]geo.Point, nw)
		tl := make([]geo.Point, nt)
		for i := range wl {
			wl[i] = geo.Pt(rng.Float64()*200-100, rng.Float64()*200-100)
		}
		for i := range tl {
			tl[i] = geo.Pt(rng.Float64()*200-100, rng.Float64()*200-100)
		}
		in := scene(wl, tl)
		for i := range in.Tasks {
			in.Tasks[i].Expiry = 50 + rng.Float64()*300
		}
		prof := NewProfile()
		for i := 0; i < nt; i++ {
			if rng.Intn(2) == 0 {
				prof.Required[model.TaskID(i)] = Of(rng.Intn(4))
			}
		}
		for i := 0; i < nw; i++ {
			prof.Owned[model.WorkerID(i)] = Set(rng.Intn(16))
		}
		res := Sequential(in, in.Center(0), in.Centers[0].Workers, in.Centers[0].Tasks, prof)
		seen := map[model.TaskID]bool{}
		for _, r := range res.Routes {
			if !routing.OrderFeasible(in, in.Worker(r.Worker), in.Center(0), r.Tasks) {
				t.Fatalf("trial %d: infeasible route", trial)
			}
			for _, tid := range r.Tasks {
				if seen[tid] {
					t.Fatalf("trial %d: duplicate task", trial)
				}
				seen[tid] = true
				if !prof.Compatible(r.Worker, tid) {
					t.Fatalf("trial %d: skill violation", trial)
				}
			}
		}
		if len(seen)+len(res.LeftTasks) != nt {
			t.Fatalf("trial %d: conservation broken", trial)
		}
	}
}

// Skill-aware collaboration end to end: a skill-constrained Sequential
// wrapped as a collab.Assigner drives the full Algorithm 3 loop, and the
// final solution never hands a task to an unqualified worker.
func TestSkillAwareCollaboration(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	in := &model.Instance{
		Centers: []model.Center{
			{ID: 0, Loc: geo.Pt(100, 100)},
			{ID: 1, Loc: geo.Pt(400, 100)},
		},
		Speed:  500,
		Bounds: geo.NewRect(geo.Pt(0, 0), geo.Pt(500, 200)),
	}
	prof := NewProfile()
	for i := 0; i < 24; i++ {
		c := model.CenterID(0)
		base := geo.Pt(100, 100)
		if i >= 8 { // two thirds of the load near center 1
			c = 1
			base = geo.Pt(400, 100)
		}
		id := model.TaskID(i)
		in.Tasks = append(in.Tasks, model.Task{
			ID: id, Center: c,
			Loc:    geo.Pt(base.X+rng.Float64()*60-30, base.Y+rng.Float64()*60-30),
			Expiry: 1, Reward: 1,
		})
		in.Centers[c].Tasks = append(in.Centers[c].Tasks, id)
		if i%3 == 0 {
			prof.Required[id] = Of(0) // every third task needs the skill
		}
	}
	for i := 0; i < 6; i++ {
		c := model.CenterID(0)
		base := geo.Pt(100, 100)
		if i >= 4 {
			c = 1
			base = geo.Pt(400, 100)
		}
		id := model.WorkerID(i)
		in.Workers = append(in.Workers, model.Worker{
			ID: id, Home: c,
			Loc:  geo.Pt(base.X+rng.Float64()*40-20, base.Y+rng.Float64()*40-20),
			MaxT: 4,
		})
		in.Centers[c].Workers = append(in.Centers[c].Workers, id)
		if i%2 == 0 {
			prof.Owned[id] = Of(0)
		}
	}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}

	assigner := func(in *model.Instance, c *model.Center, ws []model.WorkerID, ts []model.TaskID) assign.Result {
		r := Sequential(in, c, ws, ts, prof)
		return assign.Result{Routes: r.Routes, LeftWorkers: r.LeftWorkers, LeftTasks: r.LeftTasks}
	}
	p1 := make([]assign.Result, len(in.Centers))
	for ci := range in.Centers {
		c := in.Center(model.CenterID(ci))
		p1[ci] = assigner(in, c, c.Workers, c.Tasks)
	}
	base := collab.NoCollaboration(in, p1).AssignedCount()
	out := collab.Run(in, p1, collab.Config{Assigner: assigner})
	if err := routing.SolutionFeasible(in, out.Solution); err != nil {
		t.Fatal(err)
	}
	if out.Solution.AssignedCount() < base {
		t.Fatalf("collaboration lost tasks: %d -> %d", base, out.Solution.AssignedCount())
	}
	for ci := range out.Solution.PerCenter {
		for _, r := range out.Solution.PerCenter[ci].Routes {
			for _, tid := range r.Tasks {
				if !prof.Compatible(r.Worker, tid) {
					t.Fatalf("unqualified delivery: worker %d task %d", r.Worker, tid)
				}
			}
		}
	}
}
