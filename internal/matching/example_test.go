package matching_test

import (
	"fmt"

	"imtao/internal/matching"
)

// Three couriers, three orders: the Hungarian algorithm finds the cheapest
// one-to-one pairing. Inf forbids a pairing entirely.
func ExampleHungarian() {
	cost := [][]float64{
		{4, 1, 3},
		{2, 0, 5},
		{3, 2, matching.Inf}, // courier 2 cannot take order 2
	}
	match, total := matching.Hungarian(cost)
	fmt.Println("assignment:", match)
	fmt.Println("total cost:", total)
	// Output:
	// assignment: [2 1 0]
	// total cost: 6
}
