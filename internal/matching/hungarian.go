// Package matching provides minimum-cost bipartite matching (the Hungarian
// algorithm in its O(n³) Jonker–Volgenant potential formulation) and a
// round-based matching task assigner built on it.
//
// The matching assigner is an extra baseline beyond the paper's Seq/Opt
// pair: it is the classic spatial-crowdsourcing approach — repeatedly solve
// a worker↔task assignment problem minimizing travel time, one task per
// worker per round — and makes a natural ablation reference for the
// sequential heuristic (DESIGN.md §6).
package matching

import (
	"math"

	"imtao/internal/geo"
	"imtao/internal/model"
	"imtao/internal/routing"
)

// Inf marks a forbidden pairing in a cost matrix.
var Inf = math.Inf(1)

// Hungarian solves min-cost assignment on an n×m cost matrix (n rows ≤
// matched to m columns). It returns rowMatch where rowMatch[i] is the column
// assigned to row i or -1, and the total cost of the matching. Entries set
// to Inf are never matched. The matrix may be rectangular; at most
// min(n, m) pairs are produced, and rows whose only available pairings are
// Inf stay unmatched.
func Hungarian(cost [][]float64) ([]int, float64) {
	n := len(cost)
	if n == 0 {
		return nil, 0
	}
	m := len(cost[0])
	if m == 0 {
		return make([]int, n), 0
	}
	// The JV algorithm needs rows ≤ columns; transpose if needed.
	if n > m {
		t := make([][]float64, m)
		for j := range t {
			t[j] = make([]float64, n)
			for i := 0; i < n; i++ {
				t[j][i] = cost[i][j]
			}
		}
		colMatch, total := Hungarian(t)
		rowMatch := make([]int, n)
		for i := range rowMatch {
			rowMatch[i] = -1
		}
		for j, i := range colMatch {
			if i >= 0 {
				rowMatch[i] = j
			}
		}
		return rowMatch, total
	}

	// Potentials u (rows), v (columns); way[j] = predecessor column on the
	// alternating path; p[j] = row matched to column j (1-based internal).
	const none = 0
	u := make([]float64, n+1)
	v := make([]float64, m+1)
	p := make([]int, m+1) // column -> row (0 = free)
	way := make([]int, m+1)

	for i := 1; i <= n; i++ {
		p[0] = i
		j0 := 0
		minv := make([]float64, m+1)
		used := make([]bool, m+1)
		for j := range minv {
			minv[j] = Inf
		}
		for {
			used[j0] = true
			i0 := p[j0]
			delta := Inf
			j1 := -1
			for j := 1; j <= m; j++ {
				if used[j] {
					continue
				}
				cur := cost[i0-1][j-1] - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			if math.IsInf(delta, 1) {
				// No augmenting path with finite cost: row i stays free.
				j0 = -1
				break
			}
			for j := 0; j <= m; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == none {
				break
			}
		}
		if j0 < 0 {
			continue
		}
		// Augment along the path.
		for j0 != 0 {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
		}
	}

	rowMatch := make([]int, n)
	for i := range rowMatch {
		rowMatch[i] = -1
	}
	var total float64
	for j := 1; j <= m; j++ {
		if p[j] != none && !math.IsInf(cost[p[j]-1][j-1], 1) {
			rowMatch[p[j]-1] = j - 1
			total += cost[p[j]-1][j-1]
		}
	}
	// Drop any Inf pairings the potentials may have left (possible when a
	// row has no finite column at all).
	return rowMatch, total
}

// Result mirrors assign.Result for the matching assigner.
type Result struct {
	Routes      []model.Route
	LeftWorkers []model.WorkerID
	LeftTasks   []model.TaskID
}

// AssignedCount returns the number of tasks assigned.
func (r *Result) AssignedCount() int {
	n := 0
	for _, rt := range r.Routes {
		n += len(rt.Tasks)
	}
	return n
}

// RoundMatching assigns tasks in a center by repeated minimum-cost
// matchings: in each round every worker with remaining capacity is matched
// to at most one unassigned task (cost = incremental travel time, Inf if the
// deadline would be missed), the matching is committed, and workers advance
// to their delivery locations. Rounds repeat until no worker can take any
// remaining task.
func RoundMatching(in *model.Instance, c *model.Center, workers []model.WorkerID, tasks []model.TaskID) Result {
	res := Result{}
	type wstate struct {
		id    model.WorkerID
		loc   geo.Point
		t     float64 // elapsed time on route
		taken int
		route []model.TaskID
	}
	states := make([]*wstate, 0, len(workers))
	for _, wid := range workers {
		w := in.Worker(wid)
		states = append(states, &wstate{id: wid, loc: c.Loc, t: in.TravelTime(w.Loc, c.Loc)})
	}
	remaining := append([]model.TaskID(nil), tasks...)

	for {
		// Active workers this round.
		var active []*wstate
		for _, ws := range states {
			if ws.taken < in.Worker(ws.id).MaxT {
				active = append(active, ws)
			}
		}
		if len(active) == 0 || len(remaining) == 0 {
			break
		}
		cost := make([][]float64, len(active))
		finite := false
		for i, ws := range active {
			cost[i] = make([]float64, len(remaining))
			for j, tid := range remaining {
				task := in.Task(tid)
				tt := in.TravelTime(ws.loc, task.Loc)
				if ws.t+tt > task.Expiry+1e-9 {
					cost[i][j] = Inf
				} else {
					cost[i][j] = tt
					finite = true
				}
			}
		}
		if !finite {
			break
		}
		match, _ := Hungarian(cost)
		progressed := false
		taken := make([]bool, len(remaining))
		for i, j := range match {
			if j < 0 || math.IsInf(cost[i][j], 1) {
				continue
			}
			ws := active[i]
			tid := remaining[j]
			task := in.Task(tid)
			ws.t += cost[i][j]
			ws.loc = task.Loc
			ws.taken++
			ws.route = append(ws.route, tid)
			taken[j] = true
			progressed = true
		}
		if !progressed {
			break
		}
		next := remaining[:0]
		for j, tid := range remaining {
			if !taken[j] {
				next = append(next, tid)
			}
		}
		remaining = next
	}

	for _, ws := range states {
		if len(ws.route) == 0 {
			res.LeftWorkers = append(res.LeftWorkers, ws.id)
		} else {
			res.Routes = append(res.Routes, model.Route{Worker: ws.id, Center: c.ID, Tasks: ws.route})
		}
	}
	res.LeftTasks = remaining
	return res
}

// Feasible cross-checks every produced route against the routing rules.
func (r *Result) Feasible(in *model.Instance) bool {
	for i := range r.Routes {
		if !routing.RouteFeasible(in, &r.Routes[i]) {
			return false
		}
	}
	return true
}
