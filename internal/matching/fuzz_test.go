package matching

import (
	"math"
	"testing"
)

// FuzzHungarianAgainstBrute cross-checks the Hungarian solver against the
// exhaustive reference on fuzzer-chosen 3×3 matrices, including forbidden
// (negative-encoded) entries.
func FuzzHungarianAgainstBrute(f *testing.F) {
	f.Add(4.0, 1.0, 3.0, 2.0, 0.0, 5.0, 3.0, 2.0, 2.0)
	f.Add(-1.0, 1.0, -1.0, -1.0, -1.0, -1.0, 1.0, 1.0, 1.0)
	f.Add(0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
	f.Fuzz(func(t *testing.T, a, b, c, d, e, g, h, i, j float64) {
		raw := []float64{a, b, c, d, e, g, h, i, j}
		cost := make([][]float64, 3)
		for r := 0; r < 3; r++ {
			cost[r] = make([]float64, 3)
			for col := 0; col < 3; col++ {
				v := raw[r*3+col]
				if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e6 {
					t.Skip()
				}
				if v < 0 {
					cost[r][col] = Inf // negative encodes "forbidden"
				} else {
					cost[r][col] = math.Round(v*100) / 100
				}
			}
		}
		match, total := Hungarian(cost)
		wantSize, wantCost := bruteMatch(cost)
		size := 0
		var checkCost float64
		cols := map[int]bool{}
		for r, col := range match {
			if col < 0 {
				continue
			}
			if cols[col] {
				t.Fatalf("column %d used twice", col)
			}
			cols[col] = true
			if math.IsInf(cost[r][col], 1) {
				t.Fatalf("matched a forbidden cell (%d,%d)", r, col)
			}
			size++
			checkCost += cost[r][col]
		}
		if size != wantSize {
			t.Fatalf("size %d != brute %d for %v", size, wantSize, cost)
		}
		if math.Abs(total-wantCost) > 1e-6 || math.Abs(checkCost-wantCost) > 1e-6 {
			t.Fatalf("cost %v (sum %v) != brute %v for %v", total, checkCost, wantCost, cost)
		}
	})
}
