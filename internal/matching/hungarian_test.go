package matching

import (
	"math"
	"math/rand"
	"testing"

	"imtao/internal/geo"
	"imtao/internal/model"
)

func TestHungarianTiny(t *testing.T) {
	cost := [][]float64{
		{4, 1, 3},
		{2, 0, 5},
		{3, 2, 2},
	}
	match, total := Hungarian(cost)
	if math.Abs(total-5) > 1e-9 { // 1 + 2 + 2
		t.Fatalf("total = %v, want 5 (match %v)", total, match)
	}
	seen := map[int]bool{}
	for i, j := range match {
		if j < 0 {
			t.Fatalf("row %d unmatched on complete matrix", i)
		}
		if seen[j] {
			t.Fatalf("column %d matched twice", j)
		}
		seen[j] = true
	}
}

func TestHungarianRectangular(t *testing.T) {
	// 2 rows, 3 columns.
	cost := [][]float64{
		{10, 1, 7},
		{1, 10, 7},
	}
	match, total := Hungarian(cost)
	if math.Abs(total-2) > 1e-9 {
		t.Fatalf("total = %v, want 2", total)
	}
	if match[0] != 1 || match[1] != 0 {
		t.Fatalf("match = %v", match)
	}
	// 3 rows, 2 columns (transposed path).
	cost = [][]float64{
		{10, 1},
		{1, 10},
		{5, 5},
	}
	match, total = Hungarian(cost)
	if math.Abs(total-2) > 1e-9 {
		t.Fatalf("transposed total = %v, want 2", total)
	}
	unmatched := 0
	for _, j := range match {
		if j < 0 {
			unmatched++
		}
	}
	if unmatched != 1 {
		t.Fatalf("exactly one row must stay unmatched, got %d (%v)", unmatched, match)
	}
}

func TestHungarianEmpty(t *testing.T) {
	if m, total := Hungarian(nil); m != nil || total != 0 {
		t.Error("nil matrix")
	}
	if m, total := Hungarian([][]float64{{}}); len(m) != 1 || total != 0 {
		t.Error("zero columns")
	}
}

func TestHungarianInfForbidden(t *testing.T) {
	cost := [][]float64{
		{Inf, 1},
		{Inf, Inf},
	}
	match, total := Hungarian(cost)
	if match[0] != 1 || match[1] != -1 {
		t.Fatalf("match = %v", match)
	}
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("total = %v", total)
	}
}

// bruteMatch finds the min-cost maximum matching by exhaustive search.
func bruteMatch(cost [][]float64) (int, float64) {
	n := len(cost)
	if n == 0 {
		return 0, 0
	}
	m := len(cost[0])
	bestSize, bestCost := 0, math.Inf(1)
	usedCols := make([]bool, m)
	var rec func(row, size int, total float64)
	rec = func(row, size int, total float64) {
		if row == n {
			if size > bestSize || (size == bestSize && total < bestCost) {
				bestSize, bestCost = size, total
			}
			return
		}
		rec(row+1, size, total) // leave row unmatched
		for j := 0; j < m; j++ {
			if !usedCols[j] && !math.IsInf(cost[row][j], 1) {
				usedCols[j] = true
				rec(row+1, size+1, total+cost[row][j])
				usedCols[j] = false
			}
		}
	}
	rec(0, 0, 0)
	if bestSize == 0 {
		bestCost = 0
	}
	return bestSize, bestCost
}

// Property: on random small matrices (finite entries), Hungarian matches the
// brute-force optimum.
func TestHungarianMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 80; trial++ {
		n, m := 1+rng.Intn(5), 1+rng.Intn(5)
		cost := make([][]float64, n)
		for i := range cost {
			cost[i] = make([]float64, m)
			for j := range cost[i] {
				cost[i][j] = math.Round(rng.Float64()*100) / 10
			}
		}
		match, total := Hungarian(cost)
		wantSize, wantCost := bruteMatch(cost)
		size := 0
		for _, j := range match {
			if j >= 0 {
				size++
			}
		}
		if size != wantSize {
			t.Fatalf("trial %d: size %d != %d (cost %v)", trial, size, wantSize, cost)
		}
		if math.Abs(total-wantCost) > 1e-6 {
			t.Fatalf("trial %d: cost %v != %v for %v", trial, total, wantCost, cost)
		}
	}
}

func centerScene(workerLocs, taskLocs []geo.Point, expiry float64, maxT int) *model.Instance {
	in := &model.Instance{
		Centers: []model.Center{{ID: 0, Loc: geo.Pt(0, 0)}},
		Speed:   1,
		Bounds:  geo.NewRect(geo.Pt(-1000, -1000), geo.Pt(1000, 1000)),
	}
	for i, l := range taskLocs {
		in.Tasks = append(in.Tasks, model.Task{ID: model.TaskID(i), Center: 0, Loc: l, Expiry: expiry, Reward: 1})
		in.Centers[0].Tasks = append(in.Centers[0].Tasks, model.TaskID(i))
	}
	for i, l := range workerLocs {
		in.Workers = append(in.Workers, model.Worker{ID: model.WorkerID(i), Home: 0, Loc: l, MaxT: maxT})
		in.Centers[0].Workers = append(in.Centers[0].Workers, model.WorkerID(i))
	}
	return in
}

func TestRoundMatchingBasic(t *testing.T) {
	in := centerScene(
		[]geo.Point{geo.Pt(0, 0), geo.Pt(0, 0)},
		[]geo.Point{geo.Pt(5, 0), geo.Pt(-5, 0), geo.Pt(6, 0)},
		100, 4,
	)
	res := RoundMatching(in, in.Center(0), in.Centers[0].Workers, in.Centers[0].Tasks)
	if res.AssignedCount() != 3 {
		t.Fatalf("assigned %d, want 3", res.AssignedCount())
	}
	if !res.Feasible(in) {
		t.Fatal("infeasible routes")
	}
}

func TestRoundMatchingCapacityAndDeadline(t *testing.T) {
	in := centerScene(
		[]geo.Point{geo.Pt(0, 0)},
		[]geo.Point{geo.Pt(1, 0), geo.Pt(2, 0), geo.Pt(3, 0)},
		100, 2,
	)
	res := RoundMatching(in, in.Center(0), in.Centers[0].Workers, in.Centers[0].Tasks)
	if res.AssignedCount() != 2 {
		t.Fatalf("capacity: assigned %d, want 2", res.AssignedCount())
	}
	in2 := centerScene([]geo.Point{geo.Pt(0, 0)}, []geo.Point{geo.Pt(50, 0)}, 10, 4)
	res2 := RoundMatching(in2, in2.Center(0), in2.Centers[0].Workers, in2.Centers[0].Tasks)
	if res2.AssignedCount() != 0 {
		t.Fatal("deadline: unreachable task assigned")
	}
	if len(res2.LeftWorkers) != 1 || len(res2.LeftTasks) != 1 {
		t.Fatalf("leftovers: %+v", res2)
	}
}

// Property: RoundMatching always yields feasible, conservation-respecting
// results on random scenes.
func TestRoundMatchingInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	for trial := 0; trial < 30; trial++ {
		nw, nt := 1+rng.Intn(6), 1+rng.Intn(25)
		wl := make([]geo.Point, nw)
		tl := make([]geo.Point, nt)
		for i := range wl {
			wl[i] = geo.Pt(rng.Float64()*200-100, rng.Float64()*200-100)
		}
		for i := range tl {
			tl[i] = geo.Pt(rng.Float64()*200-100, rng.Float64()*200-100)
		}
		in := centerScene(wl, tl, 30+rng.Float64()*300, 1+rng.Intn(4))
		res := RoundMatching(in, in.Center(0), in.Centers[0].Workers, in.Centers[0].Tasks)
		if !res.Feasible(in) {
			t.Fatalf("trial %d: infeasible", trial)
		}
		seen := map[model.TaskID]bool{}
		for _, r := range res.Routes {
			for _, tid := range r.Tasks {
				if seen[tid] {
					t.Fatalf("trial %d: duplicate task", trial)
				}
				seen[tid] = true
			}
		}
		if len(seen)+len(res.LeftTasks) != nt {
			t.Fatalf("trial %d: conservation", trial)
		}
		if len(res.Routes)+len(res.LeftWorkers) != nw {
			t.Fatalf("trial %d: worker conservation", trial)
		}
	}
}
